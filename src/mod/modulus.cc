/**
 * @file
 * Out-of-line Modulus operations (exponentiation, inversion, reduction).
 */
#include "mod/modulus.h"

namespace mqx {

U128
Modulus::pow(const U128& base, const U128& exponent) const
{
    U128 b = reduce(base);
    U128 result{1};
    if (q_ == U128{1})
        return U128{0};
    for (int i = exponent.bits() - 1; i >= 0; --i) {
        result = mul(result, result);
        if (exponent.bit(i))
            result = mul(result, b);
    }
    return result;
}

U128
Modulus::inverse(const U128& a) const
{
    checkArg(!a.isZero(), "Modulus::inverse: zero has no inverse");
    // Fermat's little theorem: a^(q-2) mod q for prime q.
    U128 e = q_ - U128{2};
    U128 inv = pow(a, e);
    checkArg(mul(inv, reduce(a)) == U128{1},
             "Modulus::inverse: modulus is not prime");
    return inv;
}

U128
Modulus::reduce(const U128& x) const
{
    if (x < q_)
        return x;
    return mod128(x, q_);
}

} // namespace mqx
