/**
 * @file
 * Explicit instantiations of the double-word modular arithmetic templates
 * for the two supported word widths. Keeps the template code compiled and
 * warning-checked even in builds that only use one width.
 */
#include "mod/dword_ops.h"

namespace mqx {
namespace mod {

template struct DW<uint32_t>;
template struct DW<uint64_t>;
template class Barrett<uint32_t>;
template class Barrett<uint64_t>;

template DW<uint32_t> addMod<uint32_t>(const DW<uint32_t>&, const DW<uint32_t>&,
                                       const DW<uint32_t>&);
template DW<uint64_t> addMod<uint64_t>(const DW<uint64_t>&, const DW<uint64_t>&,
                                       const DW<uint64_t>&);
template DW<uint32_t> subMod<uint32_t>(const DW<uint32_t>&, const DW<uint32_t>&,
                                       const DW<uint32_t>&);
template DW<uint64_t> subMod<uint64_t>(const DW<uint64_t>&, const DW<uint64_t>&,
                                       const DW<uint64_t>&);
template DW<uint32_t> mulModSchool<uint32_t>(const DW<uint32_t>&,
                                             const DW<uint32_t>&,
                                             const Barrett<uint32_t>&);
template DW<uint64_t> mulModSchool<uint64_t>(const DW<uint64_t>&,
                                             const DW<uint64_t>&,
                                             const Barrett<uint64_t>&);
template DW<uint32_t> mulModKaratsuba<uint32_t>(const DW<uint32_t>&,
                                                const DW<uint32_t>&,
                                                const Barrett<uint32_t>&);
template DW<uint64_t> mulModKaratsuba<uint64_t>(const DW<uint64_t>&,
                                                const DW<uint64_t>&,
                                                const Barrett<uint64_t>&);

} // namespace mod
} // namespace mqx
