/**
 * @file
 * Range-contract type system for the Shoup/Harvey lazy-reduction
 * pipeline (PR 4-5).
 *
 * The lazy butterflies are correct only under a range discipline that
 * used to live in comments: operands sit in [0, 2q) between stages,
 * transients reach [0, 4q), twiddles are canonical (< q), and
 * 4q < beta = 2^(2w) (guaranteed by the Barrett headroom requirement
 * bits(q) <= 2w - 4). This header turns that discipline into types:
 *
 *     Lazy<Bound::Q>     — canonical value in [0, q)
 *     Lazy<Bound::TwoQ>  — lazy operand in [0, 2q)
 *     Lazy<Bound::FourQ> — butterfly transient in [0, 4q)
 *
 * with the contract algebra expressed as overloads over those types:
 *
 *     addModLazy    : TwoQ  + TwoQ          -> FourQ   (raw sum)
 *     subModLazyRaw : TwoQ  - TwoQ  (+2q)   -> FourQ   (never negative)
 *     condSubDw     : FourQ (-2q if >= 2q)  -> TwoQ
 *     mulModShoup   : FourQ x (w < q)       -> TwoQ    (Shoup quotient)
 *     canonicalize  : TwoQ  (-q if >= q)    -> Q
 *
 * Widening (Q -> TwoQ -> FourQ) is implicit; every other mixing of
 * bounds refuses to compile. Feeding a transient back into an add
 * without the conditional subtract, multiplying by a non-canonical
 * twiddle, or double-subtracting are all type errors — the negative
 * compile tests in tests/fixtures/range_violation.cc pin this down.
 *
 * Two arithmetic policies let the SAME butterfly source instantiate
 * both ways (see pease_impl.h):
 *
 *     LazyOps        — plain DW<W> values, zero overhead; the compiled
 *                      production arithmetic, bit-for-bit the PR 4-5
 *                      kernels.
 *     CheckedLazyOps — Lazy<Bound>-typed values; compiles the range
 *                      contracts. With MQX_RANGE_AUDIT additionally
 *                      asserts every intermediate against its static
 *                      bound using the live q at runtime.
 *
 * MQX_RANGE_AUDIT (CMake option, off by default) switches the default
 * policy of the scalar kernels to CheckedLazyOps, so the whole NTT /
 * negacyclic / Shoup test suite runs with every scalar-path
 * intermediate dynamically bound-checked. Release builds keep LazyOps
 * and pay nothing.
 */
#pragma once

#include <cstdio>
#include <cstdlib>

#include "mod/dword_ops.h"

namespace mqx {
namespace mod {

/** Static range bound, as a multiple of the modulus q. */
enum class Bound : unsigned
{
    Q = 1,     ///< canonical: value in [0, q)
    TwoQ = 2,  ///< lazy operand: value in [0, 2q)
    FourQ = 4, ///< butterfly transient: value in [0, 4q)
};

/** The bound as its multiple-of-q factor. */
constexpr unsigned
boundMultiple(Bound b)
{
    return static_cast<unsigned>(b);
}

namespace detail {

/**
 * MQX_RANGE_AUDIT hook: verify v < multiple * q with the live q.
 * Compiled out entirely (and never called) unless the audit mode is on;
 * kept out-of-line-able so the checked algebra stays readable.
 */
template <typename W>
inline void
auditBound(const DW<W>& v, Bound bound, const DW<W>& q, const char* where)
{
#if defined(MQX_RANGE_AUDIT) && MQX_RANGE_AUDIT
    // bound * q never overflows the double word: q has >= 4 bits of
    // headroom (Barrett requirement), so 4q < 2^(2w).
    DW<W> limit = q;
    for (unsigned m = 1; m < boundMultiple(bound); m <<= 1)
        limit = shl1Dw(limit);
    if (!(v < limit)) {
        std::fprintf(stderr,
                     "MQX_RANGE_AUDIT violation in %s: value hi=%llx lo=%llx "
                     "exceeds %ux q (q hi=%llx lo=%llx)\n",
                     where, static_cast<unsigned long long>(v.hi),
                     static_cast<unsigned long long>(v.lo),
                     boundMultiple(bound),
                     static_cast<unsigned long long>(q.hi),
                     static_cast<unsigned long long>(q.lo));
        std::abort();
    }
#else
    (void)v;
    (void)bound;
    (void)q;
    (void)where;
#endif
}

} // namespace detail

/**
 * A double word carrying its range bound in the type. Construction is
 * explicit (fromRaw trusts the caller and is the only entry point from
 * untyped storage); widening to a looser bound is implicit; every
 * arithmetic transition goes through the contract algebra below.
 * Zero overhead: the only member is the DW value, every operation is
 * constexpr-inlined, and the audit hook is compiled out unless
 * MQX_RANGE_AUDIT is defined.
 */
template <Bound B, typename W = uint64_t>
class Lazy
{
  public:
    static constexpr Bound kBound = B;
    using Word = W;

    /**
     * Wrap an untyped value, asserting (audit mode) that it honours the
     * declared bound. The trusted boundary: loads from storage whose
     * range is established by the kernel's own invariants.
     */
    static constexpr Lazy
    fromRaw(const DW<W>& v)
    {
        return Lazy(v);
    }

    /** Same, with an audit check against the live q. */
    static constexpr Lazy
    fromRaw(const DW<W>& v, const DW<W>& q, const char* where)
    {
        detail::auditBound(v, B, q, where);
        return Lazy(v);
    }

    /** Implicit WIDENING from a tighter bound (Q -> TwoQ -> FourQ). */
    template <Bound B2>
        requires(boundMultiple(B2) < boundMultiple(B))
    constexpr Lazy(const Lazy<B2, W>& tighter) : v_(tighter.raw())
    {
    }

    /** The untyped value (stores, interop with the unchecked kernels). */
    constexpr const DW<W>& raw() const { return v_; }

  private:
    explicit constexpr Lazy(const DW<W>& v) : v_(v) {}
    DW<W> v_{};
};

// ---------------------------------------------------------------------------
// The contract algebra. Each function takes the live q (and 2q where the
// operation uses it) so the audit mode can verify bounds; the unchecked
// arithmetic underneath is EXACTLY the dword_ops.h lazy pipeline.
// ---------------------------------------------------------------------------

/**
 * Lazy butterfly sum: [0,2q) + [0,2q) -> [0,4q). The raw double-word
 * add — no reduction — so the result is a transient that must pass
 * through condSubDw() or mulModShoup() before the next stage.
 */
template <typename W>
constexpr Lazy<Bound::FourQ, W>
addModLazy(const Lazy<Bound::TwoQ, W>& a, const Lazy<Bound::TwoQ, W>& b,
           const DW<W>& q)
{
    detail::auditBound(a.raw(), Bound::TwoQ, q, "addModLazy(a)");
    detail::auditBound(b.raw(), Bound::TwoQ, q, "addModLazy(b)");
    DW<W> t;
    addDw(a.raw(), b.raw(), t);
    auto r = Lazy<Bound::FourQ, W>::fromRaw(t);
    detail::auditBound(r.raw(), Bound::FourQ, q, "addModLazy(result)");
    return r;
}

/**
 * Lazy butterfly difference: a - b + 2q in (0, 4q) for a, b in [0,2q).
 * The +2q bias keeps the raw subtraction non-negative without a branch;
 * the Shoup multiply (or a condSubDw) absorbs the bias.
 */
template <typename W>
constexpr Lazy<Bound::FourQ, W>
subModLazyRaw(const Lazy<Bound::TwoQ, W>& a, const Lazy<Bound::TwoQ, W>& b,
              const DW<W>& q2, const DW<W>& q)
{
    detail::auditBound(a.raw(), Bound::TwoQ, q, "subModLazyRaw(a)");
    detail::auditBound(b.raw(), Bound::TwoQ, q, "subModLazyRaw(b)");
    DW<W> d;
    addDw(a.raw(), q2, d);
    subDw(d, b.raw(), d);
    auto r = Lazy<Bound::FourQ, W>::fromRaw(d);
    detail::auditBound(r.raw(), Bound::FourQ, q, "subModLazyRaw(result)");
    return r;
}

/**
 * Conditional subtract of 2q: the FourQ -> TwoQ transition between
 * butterfly stages. (The only legal reduction of a transient besides
 * the Shoup multiply.)
 */
template <typename W>
constexpr Lazy<Bound::TwoQ, W>
condSubDw(const Lazy<Bound::FourQ, W>& x, const DW<W>& q2, const DW<W>& q)
{
    detail::auditBound(x.raw(), Bound::FourQ, q, "condSubDw(x)");
    auto r = Lazy<Bound::TwoQ, W>::fromRaw(condSubDw(x.raw(), q2));
    detail::auditBound(r.raw(), Bound::TwoQ, q, "condSubDw(result)");
    return r;
}

/**
 * Final canonicalization: TwoQ -> Q via one conditional subtract of q.
 * Fused into the last forward stage / the inverse n^-1 scaling pass.
 */
template <typename W>
constexpr Lazy<Bound::Q, W>
canonicalize(const Lazy<Bound::TwoQ, W>& x, const DW<W>& q)
{
    detail::auditBound(x.raw(), Bound::TwoQ, q, "canonicalize(x)");
    auto r = Lazy<Bound::Q, W>::fromRaw(condSubDw(x.raw(), q));
    detail::auditBound(r.raw(), Bound::Q, q, "canonicalize(result)");
    return r;
}

/**
 * Shoup/Harvey multiply by a CANONICAL fixed multiplicand w < q with
 * precomputed quotient wq: any transient a < 4q in, [0, 2q) out. The
 * twiddle's canonicity is part of the contract — the w parameter only
 * accepts Lazy<Q> (plan tables are canonical by construction), which is
 * what makes "multiplied by an unreduced value" a compile error.
 */
template <typename W>
constexpr Lazy<Bound::TwoQ, W>
mulModShoup(const Lazy<Bound::FourQ, W>& a, const Lazy<Bound::Q, W>& w,
            const DW<W>& wq, const DW<W>& q,
            MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::auditBound(a.raw(), Bound::FourQ, q, "mulModShoup(a)");
    detail::auditBound(w.raw(), Bound::Q, q, "mulModShoup(w)");
    auto r = Lazy<Bound::TwoQ, W>::fromRaw(
        mulModShoup(a.raw(), w.raw(), wq, q, algo));
    detail::auditBound(r.raw(), Bound::TwoQ, q, "mulModShoup(result)");
    return r;
}

// ---------------------------------------------------------------------------
// Arithmetic policies: the scalar lazy butterfly cores in pease_impl.h
// are templated over one of these, so the identical source instantiates
// as the zero-overhead production kernel (LazyOps) and as the
// contract-checked kernel (CheckedLazyOps).
// ---------------------------------------------------------------------------

/**
 * Unchecked policy: all value types are plain DW<uint64_t>; each
 * operation is exactly the dword_ops.h call the PR 4-5 kernels made.
 */
struct LazyOps
{
    using V2q = DW<uint64_t>; ///< stage operand, [0, 2q)
    using V4q = DW<uint64_t>; ///< transient, [0, 4q)
    using Vq = DW<uint64_t>;  ///< canonical, [0, q)

    static constexpr V2q
    load2q(const uint64_t* hi, const uint64_t* lo, size_t i,
           const DW<uint64_t>& /*q*/)
    {
        return DW<uint64_t>{hi[i], lo[i]};
    }

    static constexpr Vq
    twiddle(const DW<uint64_t>& w, const DW<uint64_t>& /*q*/)
    {
        return w;
    }

    static constexpr V4q
    add(const V2q& a, const V2q& b, const DW<uint64_t>& /*q*/)
    {
        DW<uint64_t> t;
        addDw(a, b, t);
        return t;
    }

    static constexpr V4q
    subRaw(const V2q& a, const V2q& b, const DW<uint64_t>& q2,
           const DW<uint64_t>& /*q*/)
    {
        DW<uint64_t> d;
        addDw(a, q2, d);
        subDw(d, b, d);
        return d;
    }

    static constexpr V2q
    condSub2q(const V4q& x, const DW<uint64_t>& q2, const DW<uint64_t>& /*q*/)
    {
        return condSubDw(x, q2);
    }

    static constexpr Vq
    canon(const V2q& x, const DW<uint64_t>& q)
    {
        return condSubDw(x, q);
    }

    static constexpr V2q
    mulShoup(const V4q& a, const Vq& w, const DW<uint64_t>& wq,
             const DW<uint64_t>& q, MulAlgo algo)
    {
        return mulModShoup(a, w, wq, q, algo);
    }

    static constexpr void
    store(uint64_t* hi, uint64_t* lo, size_t i, const DW<uint64_t>& v)
    {
        hi[i] = v.hi;
        lo[i] = v.lo;
    }
};

/**
 * Contract-checked policy: values carry their bound in the type, every
 * transition runs through the Lazy algebra above (and, under
 * MQX_RANGE_AUDIT, is dynamically asserted against the live q). The
 * underlying arithmetic is the same dword_ops.h pipeline, so
 * instantiating a kernel with this policy is bit-identical to LazyOps.
 */
struct CheckedLazyOps
{
    using V2q = Lazy<Bound::TwoQ>;
    using V4q = Lazy<Bound::FourQ>;
    using Vq = Lazy<Bound::Q>;

    static constexpr V2q
    load2q(const uint64_t* hi, const uint64_t* lo, size_t i,
           const DW<uint64_t>& q)
    {
        return V2q::fromRaw(DW<uint64_t>{hi[i], lo[i]}, q, "load2q");
    }

    static constexpr Vq
    twiddle(const DW<uint64_t>& w, const DW<uint64_t>& q)
    {
        return Vq::fromRaw(w, q, "twiddle");
    }

    static constexpr V4q
    add(const V2q& a, const V2q& b, const DW<uint64_t>& q)
    {
        return addModLazy(a, b, q);
    }

    static constexpr V4q
    subRaw(const V2q& a, const V2q& b, const DW<uint64_t>& q2,
           const DW<uint64_t>& q)
    {
        return subModLazyRaw(a, b, q2, q);
    }

    static constexpr V2q
    condSub2q(const V4q& x, const DW<uint64_t>& q2, const DW<uint64_t>& q)
    {
        return condSubDw(x, q2, q);
    }

    static constexpr Vq
    canon(const V2q& x, const DW<uint64_t>& q)
    {
        return canonicalize(x, q);
    }

    static constexpr V2q
    mulShoup(const V4q& a, const Vq& w, const DW<uint64_t>& wq,
             const DW<uint64_t>& q, MulAlgo algo)
    {
        return mulModShoup(a, w, wq, q, algo);
    }

    template <Bound B>
    static constexpr void
    store(uint64_t* hi, uint64_t* lo, size_t i, const Lazy<B>& v)
    {
        hi[i] = v.raw().hi;
        lo[i] = v.raw().lo;
    }
};

/**
 * The policy the production scalar kernels instantiate. MQX_RANGE_AUDIT
 * builds run every scalar-path butterfly through the checked algebra
 * with dynamic bound assertions; regular builds compile the unchecked
 * policy (identical codegen to the pre-contract kernels).
 */
#if defined(MQX_RANGE_AUDIT) && MQX_RANGE_AUDIT
using DefaultLazyOps = CheckedLazyOps;
#else
using DefaultLazyOps = LazyOps;
#endif

} // namespace mod
} // namespace mqx
