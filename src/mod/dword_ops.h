/**
 * @file
 * Scalar double-word modular arithmetic (paper Section 3.1).
 *
 * Everything here is templated on the machine word type W. The value of a
 * double word is hi * 2^w + lo with w = bits(W) (paper Eq. 5, w0 = w).
 * Two instantiations matter:
 *
 *  - W = uint64_t: the production 128-bit arithmetic. This is the
 *    Listing-1 variant that computes with single words only — the shape
 *    that translates 1:1 to SIMD lanes.
 *  - W = uint32_t: a 64-bit double word whose every operation can be
 *    checked against native uint64_t / __int128 arithmetic. The test
 *    suite uses it as a perfect oracle for the shared algorithm.
 *
 * The modular operations implement Eq. 2 (addition), Eq. 3 (subtraction),
 * and Barrett-reduced multiplication (Eq. 4) with both the schoolbook
 * (Eq. 8) and Karatsuba (Eq. 9) product. Barrett requires
 * bits(q) <= 2w - 4 so that mu fits in a double word (Section 2.1).
 */
#pragma once

#include <cstdint>
#include <type_traits>

#include "bigint/biguint.h"
#include "core/backend.h" // MulAlgo
#include "core/config.h"
#include "u128/u128.h"

namespace mqx {
namespace mod {

/** Single-word carry/borrow/multiply primitives for a word type W. */
template <typename W>
struct WordOps;

template <>
struct WordOps<uint64_t>
{
    static constexpr int kBits = 64;

    static constexpr uint64_t
    addc(uint64_t a, uint64_t b, uint64_t ci, uint64_t& out)
    {
        return addc64(a, b, ci, out);
    }

    static constexpr uint64_t
    subb(uint64_t a, uint64_t b, uint64_t bi, uint64_t& out)
    {
        return subb64(a, b, bi, out);
    }

    static constexpr void
    mulWide(uint64_t a, uint64_t b, uint64_t& hi, uint64_t& lo)
    {
        mulWide64(a, b, hi, lo);
    }
};

template <>
struct WordOps<uint32_t>
{
    static constexpr int kBits = 32;

    static constexpr uint32_t
    addc(uint32_t a, uint32_t b, uint32_t ci, uint32_t& out)
    {
        uint64_t s = static_cast<uint64_t>(a) + b + ci;
        out = static_cast<uint32_t>(s);
        return static_cast<uint32_t>(s >> 32);
    }

    static constexpr uint32_t
    subb(uint32_t a, uint32_t b, uint32_t bi, uint32_t& out)
    {
        uint64_t d = static_cast<uint64_t>(a) - b - bi;
        out = static_cast<uint32_t>(d);
        return static_cast<uint32_t>((d >> 32) & 1);
    }

    static constexpr void
    mulWide(uint32_t a, uint32_t b, uint32_t& hi, uint32_t& lo)
    {
        uint64_t p = static_cast<uint64_t>(a) * b;
        hi = static_cast<uint32_t>(p >> 32);
        lo = static_cast<uint32_t>(p);
    }
};

/** Double word: value = hi * 2^w + lo (paper Eq. 5). */
template <typename W>
struct DW
{
    W hi = 0;
    W lo = 0;

    friend constexpr bool
    operator==(const DW& a, const DW& b)
    {
        return a.hi == b.hi && a.lo == b.lo;
    }

    friend constexpr bool
    operator<(const DW& a, const DW& b)
    {
        return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
    }

    friend constexpr bool operator!=(const DW& a, const DW& b) { return !(a == b); }
    friend constexpr bool operator>=(const DW& a, const DW& b) { return !(a < b); }

    constexpr bool isZero() const { return hi == 0 && lo == 0; }

    constexpr int
    bits() const
    {
        int n = 0;
        for (W x = hi; x; x >>= 1)
            ++n;
        if (n)
            return n + WordOps<W>::kBits;
        for (W x = lo; x; x >>= 1)
            ++n;
        return n;
    }
};

/** Quad word holding a full double-word product; w0 least significant. */
template <typename W>
struct QW
{
    W w0 = 0;
    W w1 = 0;
    W w2 = 0;
    W w3 = 0;
};

/** DW<uint64_t> <-> U128 (identical layout semantics). */
constexpr DW<uint64_t>
toDw(const U128& v)
{
    return DW<uint64_t>{v.hi, v.lo};
}

constexpr U128
fromDw(const DW<uint64_t>& v)
{
    return U128::fromParts(v.hi, v.lo);
}

/** Wrap-around double-word addition; returns the carry out (0/1). */
template <typename W>
constexpr W
addDw(const DW<W>& a, const DW<W>& b, DW<W>& out)
{
    W c = WordOps<W>::addc(a.lo, b.lo, 0, out.lo);
    return WordOps<W>::addc(a.hi, b.hi, c, out.hi);
}

/** Wrap-around double-word subtraction; returns the borrow out (0/1). */
template <typename W>
constexpr W
subDw(const DW<W>& a, const DW<W>& b, DW<W>& out)
{
    W br = WordOps<W>::subb(a.lo, b.lo, 0, out.lo);
    return WordOps<W>::subb(a.hi, b.hi, br, out.hi);
}

/**
 * Full double-word product via the schoolbook method (Eq. 8): four
 * widening word multiplies plus carry propagation.
 */
template <typename W>
constexpr QW<W>
mulFullSchool(const DW<W>& a, const DW<W>& b)
{
    using Ops = WordOps<W>;
    W p00h = 0, p00l = 0, p01h = 0, p01l = 0;
    W p10h = 0, p10l = 0, p11h = 0, p11l = 0;
    Ops::mulWide(a.lo, b.lo, p00h, p00l); // a1*b1
    Ops::mulWide(a.lo, b.hi, p01h, p01l); // a1*b0
    Ops::mulWide(a.hi, b.lo, p10h, p10l); // a0*b1
    Ops::mulWide(a.hi, b.hi, p11h, p11l); // a0*b0

    QW<W> r;
    r.w0 = p00l;
    W c = Ops::addc(p00h, p01l, 0, r.w1);
    W c2 = Ops::addc(p01h, p11l, c, r.w2);
    Ops::addc(p11h, 0, c2, r.w3);
    c = Ops::addc(r.w1, p10l, 0, r.w1);
    c2 = Ops::addc(r.w2, p10h, c, r.w2);
    r.w3 += c2;
    return r;
}

/**
 * Full double-word product via Karatsuba (Eq. 9): three widening word
 * multiplies; the cross term (a0+a1)(b0+b1) - a0b0 - a1b1 needs explicit
 * carry handling because the sums can overflow one word.
 */
template <typename W>
constexpr QW<W>
mulFullKaratsuba(const DW<W>& a, const DW<W>& b)
{
    using Ops = WordOps<W>;
    W llh = 0, lll = 0; // a1*b1
    W hhh = 0, hhl = 0; // a0*b0
    Ops::mulWide(a.lo, b.lo, llh, lll);
    Ops::mulWide(a.hi, b.hi, hhh, hhl);

    // sa = a0 + a1 (with carry ca), sb = b0 + b1 (with carry cb).
    W sa = 0, sb = 0;
    W ca = Ops::addc(a.hi, a.lo, 0, sa);
    W cb = Ops::addc(b.hi, b.lo, 0, sb);

    // mid = sa*sb + (ca ? sb : 0)*2^w + (cb ? sa : 0)*2^w + ca*cb*2^2w,
    // a 3-word quantity; m0 least significant.
    W mh = 0, ml = 0;
    Ops::mulWide(sa, sb, mh, ml);
    W m0 = ml, m1 = mh, m2 = ca & cb;
    if (ca) {
        W c = Ops::addc(m1, sb, 0, m1);
        m2 += c;
    }
    if (cb) {
        W c = Ops::addc(m1, sa, 0, m1);
        m2 += c;
    }

    // mid -= a0b0 + a1b1 (fits: mid >= both by construction).
    W br = Ops::subb(m0, lll, 0, m0);
    br = Ops::subb(m1, llh, br, m1);
    m2 -= br;
    br = Ops::subb(m0, hhl, 0, m0);
    br = Ops::subb(m1, hhh, br, m1);
    m2 -= br;

    // r = a0b0*2^2w + mid*2^w + a1b1.
    QW<W> r;
    r.w0 = lll;
    W c = Ops::addc(llh, m0, 0, r.w1);
    W c2 = Ops::addc(hhl, m1, c, r.w2);
    Ops::addc(hhh, m2, c2, r.w3);
    return r;
}

/**
 * Truncating right shift of a quad word to a double word.
 * The caller guarantees the true value of (x >> s) fits in 2 words;
 * s must be in [1, 2w).
 */
template <typename W>
constexpr DW<W>
shrQwToDw(const QW<W>& x, int s)
{
    constexpr int w = WordOps<W>::kBits;
    DW<W> r;
    if (s >= w) {
        int t = s - w;
        if (t == 0) {
            r.lo = x.w1;
            r.hi = x.w2;
        } else {
            r.lo = static_cast<W>((x.w1 >> t) | (x.w2 << (w - t)));
            r.hi = static_cast<W>((x.w2 >> t) | (x.w3 << (w - t)));
        }
    } else {
        r.lo = static_cast<W>((x.w0 >> s) | (x.w1 << (w - s)));
        r.hi = static_cast<W>((x.w1 >> s) | (x.w2 << (w - s)));
    }
    return r;
}

/** Low double word (wrap-around) of the product a*b. */
template <typename W>
constexpr DW<W>
mulLowDw(const DW<W>& a, const DW<W>& b)
{
    using Ops = WordOps<W>;
    W ph = 0, pl = 0;
    Ops::mulWide(a.lo, b.lo, ph, pl);
    DW<W> r;
    r.lo = pl;
    r.hi = static_cast<W>(ph + static_cast<W>(a.lo * b.hi) +
                          static_cast<W>(a.hi * b.lo));
    return r;
}

/**
 * Precomputed Barrett parameters for a fixed modulus q (Eq. 4).
 *
 * mu = floor(2^(2b) / q) where b = bits(q); mu fits in a double word for
 * any q with 2 <= b <= 2w - 4. The reduction uses the classic HAC-14.42
 * estimate, which leaves a remainder in [0, 3q) — at most two conditional
 * subtractions.
 */
template <typename W>
class Barrett
{
  public:
    /**
     * @throws InvalidArgument if q < 2 or bits(q) > 2w - 4 (the paper's
     * Barrett headroom requirement, e.g. 124 bits for 128-bit words).
     */
    static Barrett
    make(const DW<W>& q)
    {
        constexpr int w = WordOps<W>::kBits;
        int b = q.bits();
        checkArg(b >= 2, "Barrett: modulus must be >= 2");
        checkArg(b <= 2 * w - 4,
                 "Barrett: modulus exceeds 2w-4 bits (mu would overflow)");

        // mu = floor(2^(2b) / q), computed with BigUInt on the setup path.
        // Reassemble q from its W-sized halves (value = hi * 2^w + lo).
        BigUInt qb = (BigUInt{static_cast<uint64_t>(q.hi)} << w) +
                     BigUInt{static_cast<uint64_t>(q.lo)};
        BigUInt mu_big = (BigUInt{1} << (2 * b)) / qb;
        U128 mu128 = mu_big.toU128();

        Barrett br;
        br.q_ = q;
        if constexpr (w == 64) {
            br.mu_.hi = static_cast<W>(mu128.hi);
            br.mu_.lo = static_cast<W>(mu128.lo);
        } else {
            br.mu_.hi = static_cast<W>(mu128.lo >> w);
            br.mu_.lo = static_cast<W>(mu128.lo);
        }
        br.qbits_ = b;
        return br;
    }

    const DW<W>& q() const { return q_; }
    const DW<W>& mu() const { return mu_; }
    int qbits() const { return qbits_; }

    /**
     * Reduce a full product x = a*b (a, b < q) to x mod q.
     */
    constexpr DW<W>
    reduce(const QW<W>& x) const
    {
        // x1 = floor(x / 2^(b-1)): fits in a double word since x < 2^2b.
        DW<W> x1 = shrQwToDw(x, qbits_ - 1);
        // e = floor(x1 * mu / 2^(b+1)): the quotient estimate.
        QW<W> p = mulFullSchool(x1, mu_);
        DW<W> e = shrQwToDw(p, qbits_ + 1);
        // c = (x - e*q) mod 2^2w; the true value is < 3q so the low
        // double word is exact.
        DW<W> eq = mulLowDw(e, q_);
        DW<W> xlow{x.w1, x.w0};
        DW<W> c;
        subDw(xlow, eq, c);
        // At most two correction subtractions (HAC 14.42).
        if (c >= q_)
            subDw(c, q_, c);
        if (c >= q_)
            subDw(c, q_, c);
        return c;
    }

  private:
    DW<W> q_{};
    DW<W> mu_{};
    int qbits_ = 0;
};

/**
 * Modular addition c = a + b mod q for a, b < q (Eq. 2 lifted to double
 * words — the branch-free Listing-1 dataflow).
 */
template <typename W>
constexpr DW<W>
addMod(const DW<W>& a, const DW<W>& b, const DW<W>& q)
{
    DW<W> t;
    W carry = addDw(a, b, t);          // t = a + b, carry out c2
    DW<W> d;
    W borrow = subDw(t, q, d);         // d = t - q
    // Select d when (carry:t) >= q, i.e. carry set or t >= q.
    bool take_d = carry || !borrow;
    DW<W> c;
    c.hi = take_d ? d.hi : t.hi;
    c.lo = take_d ? d.lo : t.lo;
    return c;
}

/** Modular subtraction c = a - b mod q for a, b < q (Eq. 3 + Eq. 7). */
template <typename W>
constexpr DW<W>
subMod(const DW<W>& a, const DW<W>& b, const DW<W>& q)
{
    DW<W> d;
    W borrow = subDw(a, b, d);
    DW<W> dq;
    addDw(d, q, dq);
    DW<W> c;
    c.hi = borrow ? dq.hi : d.hi;
    c.lo = borrow ? dq.lo : d.lo;
    return c;
}

/**
 * Double-word left shift by one: 2x with the cross-word carry. The
 * lazy-reduction kernels use it for the 2q bound (q has >= 4 bits of
 * double-word headroom, so 2q never overflows).
 */
template <typename W>
constexpr DW<W>
shl1Dw(const DW<W>& x)
{
    constexpr int w = WordOps<W>::kBits;
    return DW<W>{static_cast<W>((x.hi << 1) | (x.lo >> (w - 1))),
                 static_cast<W>(x.lo << 1)};
}

/**
 * Conditional canonicalizing subtract: x - b when x >= b, else x
 * (branch-free select). The lazy-reduction pipeline uses it with
 * b = 2q between stages and b = q for final canonicalization.
 */
template <typename W>
constexpr DW<W>
condSubDw(const DW<W>& x, const DW<W>& b)
{
    DW<W> d;
    W borrow = subDw(x, b, d);
    DW<W> r;
    r.hi = borrow ? x.hi : d.hi;
    r.lo = borrow ? x.lo : d.lo;
    return r;
}

/**
 * Shoup companion of a fixed multiplicand: wq = floor(w * 2^(2w0) / q)
 * with w0 = bits(W), i.e. the precomputed quotient that lets
 * mulModShoup() skip Barrett's estimate product entirely.
 *
 * Setup-path only (one BigUInt division per table entry).
 *
 * @throws InvalidArgument unless w < q (required for wq to fit in a
 * double word).
 */
template <typename W>
inline DW<W>
shoupPrecompute(const DW<W>& w, const DW<W>& q)
{
    constexpr int kb = WordOps<W>::kBits;
    checkArg(w < q, "shoupPrecompute: multiplicand must be < q");
    BigUInt wb = (BigUInt{static_cast<uint64_t>(w.hi)} << kb) +
                 BigUInt{static_cast<uint64_t>(w.lo)};
    BigUInt qb = (BigUInt{static_cast<uint64_t>(q.hi)} << kb) +
                 BigUInt{static_cast<uint64_t>(q.lo)};
    BigUInt wq_big = (wb << (2 * kb)) / qb;
    U128 wq128 = wq_big.toU128();

    DW<W> wq;
    if constexpr (kb == 64) {
        wq.hi = static_cast<W>(wq128.hi);
        wq.lo = static_cast<W>(wq128.lo);
    } else {
        wq.hi = static_cast<W>(wq128.lo >> kb);
        wq.lo = static_cast<W>(wq128.lo);
    }
    return wq;
}

/**
 * Shoup/Harvey modular multiplication by a fixed w with precomputed
 * quotient wq = shoupPrecompute(w, q): with beta = 2^(2w0),
 *
 *     h = floor(a * wq / beta)        (one full product, top half)
 *     r = (a*w - h*q) mod beta        (two low products)
 *
 * Since wq = (w*beta - r0)/q with r0 in [0, q), the estimate satisfies
 * floor(a*w/q) - 1 <= h <= floor(a*w/q) for ANY double word a, so
 *
 *     r = a*w mod q  +  (0 or q)   — i.e. r is in [0, 2q).
 *
 * No shifts, no correction subtractions: this replaces Barrett's three
 * full double-word products per butterfly with one full product and two
 * low halves, and the [0, 2q) result feeds the lazy butterfly directly.
 * Callers needing a canonical value finish with condSubDw(r, q).
 *
 * Requires w < q and 2q < beta (any Barrett-compatible q qualifies);
 * a is unrestricted — in particular the lazy range [0, 4q) is fine.
 * @p algo selects the product algorithm for the quotient estimate, the
 * same knob the Barrett path exposes (Section 5.5 ablation).
 */
template <typename W>
constexpr DW<W>
mulModShoup(const DW<W>& a, const DW<W>& w, const DW<W>& wq, const DW<W>& q,
            MulAlgo algo = MulAlgo::Schoolbook)
{
    QW<W> p = algo == MulAlgo::Schoolbook ? mulFullSchool(a, wq)
                                          : mulFullKaratsuba(a, wq);
    DW<W> h{p.w3, p.w2};
    DW<W> aw = mulLowDw(a, w);
    DW<W> hq = mulLowDw(h, q);
    DW<W> r;
    subDw(aw, hq, r);
    return r;
}

/** Modular multiplication, schoolbook product + Barrett reduction. */
template <typename W>
constexpr DW<W>
mulModSchool(const DW<W>& a, const DW<W>& b, const Barrett<W>& br)
{
    return br.reduce(mulFullSchool(a, b));
}

/** Modular multiplication, Karatsuba product + Barrett reduction. */
template <typename W>
constexpr DW<W>
mulModKaratsuba(const DW<W>& a, const DW<W>& b, const Barrett<W>& br)
{
    return br.reduce(mulFullKaratsuba(a, b));
}

} // namespace mod
} // namespace mqx
