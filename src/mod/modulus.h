/**
 * @file
 * Public convenience wrapper around one modulus: validated construction,
 * precomputed Barrett parameters, and both scalar variants of the paper's
 * double-word modular arithmetic.
 *
 * The paper implements two scalar versions (Section 3.1): one computing
 * in native 128-bit values ("used for benchmarking, as it allows the
 * compiler to exploit specialized assembly instructions such as add with
 * carry") and one using only 64-bit words (Listing 1; "essential for
 * SIMD-vectorized implementations"). Modulus exposes both; they are
 * bit-identical and the test suite checks that.
 */
#pragma once

#include "core/backend.h" // MulAlgo, Reduction
#include "mod/dword_ops.h"
#include "u128/u128.h"

namespace mqx {

/**
 * A fixed modulus q with all precomputation required by the kernels.
 * Copyable value type; cheap to pass by const reference.
 */
class Modulus
{
  public:
    /**
     * @param q modulus, 2 <= q < 2^124 (Barrett headroom, Section 2.1).
     * @throws InvalidArgument outside that range.
     */
    explicit Modulus(const U128& q)
        : q_(q), barrett_(mod::Barrett<uint64_t>::make(mod::toDw(q)))
    {
    }

    const U128& value() const { return q_; }
    int bits() const { return barrett_.qbits(); }
    const mod::Barrett<uint64_t>& barrett() const { return barrett_; }

    /** mu = floor(2^(2 bits(q)) / q). */
    U128 mu() const { return mod::fromDw(barrett_.mu()); }

    // -- Word-only variant (Listing 1 shape; translates to SIMD) --------

    U128
    addWords(const U128& a, const U128& b) const
    {
        return mod::fromDw(mod::addMod(mod::toDw(a), mod::toDw(b),
                                       mod::toDw(q_)));
    }

    U128
    subWords(const U128& a, const U128& b) const
    {
        return mod::fromDw(mod::subMod(mod::toDw(a), mod::toDw(b),
                                       mod::toDw(q_)));
    }

    U128
    mulWords(const U128& a, const U128& b,
             MulAlgo algo = MulAlgo::Schoolbook) const
    {
        auto da = mod::toDw(a), db = mod::toDw(b);
        return mod::fromDw(algo == MulAlgo::Schoolbook
                               ? mod::mulModSchool(da, db, barrett_)
                               : mod::mulModKaratsuba(da, db, barrett_));
    }

    // -- Native variant (unsigned __int128 when available) ---------------

    /** c = a + b mod q for a, b < q. */
    U128
    add(const U128& a, const U128& b) const
    {
#if MQX_HAVE_INT128
        unsigned __int128 s = a.toNative() + b.toNative();
        unsigned __int128 qn = q_.toNative();
        if (s >= qn)
            s -= qn;
        return U128::fromNative(s);
#else
        return addWords(a, b);
#endif
    }

    /** c = a - b mod q for a, b < q. */
    U128
    sub(const U128& a, const U128& b) const
    {
#if MQX_HAVE_INT128
        unsigned __int128 an = a.toNative(), bn = b.toNative();
        unsigned __int128 d = an - bn;
        if (an < bn)
            d += q_.toNative();
        return U128::fromNative(d);
#else
        return subWords(a, b);
#endif
    }

    /** c = a * b mod q for a, b < q (Barrett; schoolbook by default). */
    U128
    mul(const U128& a, const U128& b,
        MulAlgo algo = MulAlgo::Schoolbook) const
    {
        return mulWords(a, b, algo);
    }

    /** a^e mod q, square-and-multiply over the scalar mulmod. */
    U128 pow(const U128& base, const U128& exponent) const;

    /** Multiplicative inverse via Fermat (q must be prime). */
    U128 inverse(const U128& a) const;

    /** Reduce an arbitrary 128-bit value into [0, q). */
    U128 reduce(const U128& x) const;

  private:
    U128 q_;
    mod::Barrett<uint64_t> barrett_;
};

} // namespace mqx
