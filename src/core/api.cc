/**
 * @file
 * Backend taxonomy helpers and runtime dispatch policy.
 */
#include "core/backend.h"

#include "core/config.h"
#include "core/cpu_features.h"

namespace mqx {

std::string
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return "Scalar";
      case Backend::Portable:
        return "Portable";
      case Backend::Avx2:
        return "AVX2";
      case Backend::Avx512:
        return "AVX-512";
      case Backend::MqxEmulate:
        return "MQX (emulated)";
      case Backend::MqxPisa:
        return "MQX";
    }
    return "unknown";
}

std::string
mqxVariantName(MqxVariant v)
{
    switch (v) {
      case MqxVariant::MulOnly:
        return "+M";
      case MqxVariant::CarryOnly:
        return "+C";
      case MqxVariant::Full:
        return "+M,C";
      case MqxVariant::MulhiCarry:
        return "+Mh,C";
      case MqxVariant::FullPredicated:
        return "+M,C,P";
    }
    return "unknown";
}

std::vector<Backend>
correctBackends()
{
    return {Backend::Scalar, Backend::Portable, Backend::Avx2,
            Backend::Avx512, Backend::MqxEmulate};
}

bool
backendAvailable(Backend b)
{
    const CpuFeatures& f = hostCpuFeatures();
    switch (b) {
      case Backend::Scalar:
      case Backend::Portable:
        return true;
      case Backend::Avx2:
        return MQX_BUILD_AVX2 && f.avx2;
      case Backend::Avx512:
      case Backend::MqxEmulate:
      case Backend::MqxPisa:
        return MQX_BUILD_AVX512 && f.hasAvx512();
    }
    return false;
}

Backend
bestBackend()
{
    if (backendAvailable(Backend::Avx512))
        return Backend::Avx512;
    if (backendAvailable(Backend::Avx2))
        return Backend::Avx2;
    // No SIMD: prefer Portable — it models the 8-lane SIMD kernels in
    // plain C++, so dispatch exercises the same algorithms (and data
    // layout) as the vector tiers — before the last-resort Scalar path.
    if (backendAvailable(Backend::Portable))
        return Backend::Portable;
    return Backend::Scalar;
}

} // namespace mqx
