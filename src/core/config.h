/**
 * @file
 * Build configuration, feature-detection macros, and common error types
 * shared by every mqxlib module.
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#define MQX_VERSION_MAJOR 1
#define MQX_VERSION_MINOR 0
#define MQX_VERSION_PATCH 0

/** Native 128-bit integer support (GCC/Clang on 64-bit targets). */
#if defined(__SIZEOF_INT128__)
#define MQX_HAVE_INT128 1
#else
#define MQX_HAVE_INT128 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define MQX_FORCE_INLINE inline __attribute__((always_inline))
#define MQX_NO_INLINE __attribute__((noinline))
#define MQX_RESTRICT __restrict__
#else
#define MQX_FORCE_INLINE inline
#define MQX_NO_INLINE
#define MQX_RESTRICT
#endif

/**
 * Set by the build system on translation units compiled with AVX-512 /
 * AVX2 code-generation flags; the compiler defines the feature macros.
 */
#if defined(__AVX512F__) && defined(__AVX512DQ__)
#define MQX_TU_HAS_AVX512 1
#else
#define MQX_TU_HAS_AVX512 0
#endif
#if defined(__AVX2__)
#define MQX_TU_HAS_AVX2 1
#else
#define MQX_TU_HAS_AVX2 0
#endif

namespace mqx {

/**
 * Thrown when a caller passes parameters the library cannot work with
 * (invalid modulus, non-power-of-two NTT size, mismatched vector lengths).
 * This is always a usage error, never an internal library bug.
 */
class InvalidArgument : public std::invalid_argument
{
  public:
    using std::invalid_argument::invalid_argument;
};

/**
 * Thrown when an operation is requested for a backend that is not
 * available (not compiled in, or the host CPU lacks the instructions).
 */
class BackendUnavailable : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Throw InvalidArgument with @p msg if @p ok is false. */
inline void
checkArg(bool ok, const char* msg)
{
    if (!ok)
        throw InvalidArgument(msg);
}

/** Library version as "major.minor.patch". */
inline std::string
versionString()
{
    return std::to_string(MQX_VERSION_MAJOR) + "." +
           std::to_string(MQX_VERSION_MINOR) + "." +
           std::to_string(MQX_VERSION_PATCH);
}

} // namespace mqx
