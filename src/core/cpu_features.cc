/**
 * @file
 * CPUID-based feature detection.
 */
#include "core/cpu_features.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define MQX_HOST_IS_X86 1
#else
#define MQX_HOST_IS_X86 0
#endif

namespace mqx {

namespace {

CpuFeatures
detect()
{
    CpuFeatures f;
#if MQX_HOST_IS_X86
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid(0, &eax, &ebx, &ecx, &edx)) {
        char vendor[13] = {};
        std::memcpy(vendor + 0, &ebx, 4);
        std::memcpy(vendor + 4, &edx, 4);
        std::memcpy(vendor + 8, &ecx, 4);
        f.vendor = vendor;
    }
    unsigned max_leaf = eax;
    if (max_leaf >= 7 && __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        f.avx2 = (ebx >> 5) & 1;
        f.avx512f = (ebx >> 16) & 1;
        f.avx512dq = (ebx >> 17) & 1;
        f.avx512bw = (ebx >> 30) & 1;
        f.avx512vl = (ebx >> 31) & 1;
    }
    // Brand string from extended leaves 0x80000002..4.
    std::array<unsigned, 12> brand{};
    bool have_brand = true;
    for (unsigned i = 0; i < 3; ++i) {
        if (!__get_cpuid(0x80000002u + i, &brand[4 * i + 0], &brand[4 * i + 1],
                         &brand[4 * i + 2], &brand[4 * i + 3])) {
            have_brand = false;
            break;
        }
    }
    if (have_brand) {
        char text[49] = {};
        std::memcpy(text, brand.data(), 48);
        f.brand = text;
        // Trim leading spaces Intel pads with.
        size_t start = f.brand.find_first_not_of(' ');
        if (start != std::string::npos)
            f.brand = f.brand.substr(start);
    }
#endif
    return f;
}

} // namespace

const CpuFeatures&
hostCpuFeatures()
{
    static const CpuFeatures features = detect();
    return features;
}

} // namespace mqx
