/**
 * @file
 * Cache-line-aligned storage for SIMD-friendly residue arrays.
 */
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace mqx {

/**
 * Minimal aligned dynamic array. Vector registers load 64 bytes at a
 * time; keeping residue arrays 64-byte aligned makes every SIMD load an
 * aligned full-line access. Only the operations the kernels need are
 * provided (no incremental growth).
 */
template <typename T, size_t Alignment = 64>
class AlignedVec
{
  public:
    AlignedVec() = default;

    explicit AlignedVec(size_t count) { reset(count); }

    AlignedVec(const AlignedVec& other) { copyFrom(other); }

    AlignedVec(AlignedVec&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    AlignedVec&
    operator=(const AlignedVec& other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    AlignedVec&
    operator=(AlignedVec&& other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedVec() { release(); }

    /** Discard contents and allocate @p count zero-initialized elements. */
    void
    reset(size_t count)
    {
        release();
        if (count) {
            data_ = static_cast<T*>(::operator new[](
                count * sizeof(T), std::align_val_t{Alignment}));
            for (size_t i = 0; i < count; ++i)
                new (data_ + i) T{};
            size_ = count;
        }
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T* data() { return data_; }
    const T* data() const { return data_; }
    T& operator[](size_t i) { return data_[i]; }
    const T& operator[](size_t i) const { return data_[i]; }
    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

  private:
    void
    release()
    {
        if (data_) {
            for (size_t i = size_; i-- > 0;)
                data_[i].~T();
            ::operator delete[](data_, std::align_val_t{Alignment});
            data_ = nullptr;
            size_ = 0;
        }
    }

    void
    copyFrom(const AlignedVec& other)
    {
        reset(other.size_);
        for (size_t i = 0; i < size_; ++i)
            data_[i] = other.data_[i];
    }

    T* data_ = nullptr;
    size_t size_ = 0;
};

} // namespace mqx
