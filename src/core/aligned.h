/**
 * @file
 * Cache-line-aligned storage for SIMD-friendly residue arrays.
 *
 * The allocation primitives (alignedAlloc / alignedFree) are the single
 * funnel every residue buffer goes through: one ZMM register is 64
 * bytes, so 64-byte alignment makes every AVX-512 load a full aligned
 * cache-line access, and funnelling the allocations lets the layout
 * counters (core/layout_metrics.h) prove that a warmed-up kernel path
 * allocates nothing.
 */
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "core/layout_metrics.h"

namespace mqx {

/** Default alignment for residue storage: one AVX-512 register / cache line. */
inline constexpr size_t kResidueAlignment = 64;

/**
 * Allocate @p bytes of raw storage aligned to @p alignment (a power of
 * two). Counted in layout::metrics().aligned_allocs; release with
 * alignedFree using the same alignment. Returns nullptr for 0 bytes.
 */
inline void*
alignedAlloc(size_t bytes, size_t alignment = kResidueAlignment)
{
    if (bytes == 0)
        return nullptr;
    layout::noteAlignedAlloc();
    return ::operator new[](bytes, std::align_val_t{alignment});
}

/** Release storage obtained from alignedAlloc (nullptr is a no-op). */
inline void
alignedFree(void* p, size_t alignment = kResidueAlignment)
{
    if (p)
        ::operator delete[](p, std::align_val_t{alignment});
}

/**
 * Minimal aligned dynamic array on top of alignedAlloc. Only the
 * operations the kernels need are provided (no incremental growth);
 * move and swap hand over the allocation itself, so the alignment of a
 * buffer is fixed at allocation time and survives both.
 */
template <typename T, size_t Alignment = kResidueAlignment>
class AlignedVec
{
  public:
    AlignedVec() = default;

    explicit AlignedVec(size_t count) { reset(count); }

    AlignedVec(const AlignedVec& other) { copyFrom(other); }

    AlignedVec(AlignedVec&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    AlignedVec&
    operator=(const AlignedVec& other)
    {
        if (this != &other)
            copyFrom(other);
        return *this;
    }

    AlignedVec&
    operator=(AlignedVec&& other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedVec() { release(); }

    /** Discard contents and allocate @p count zero-initialized elements. */
    void
    reset(size_t count)
    {
        release();
        if (count) {
            data_ = static_cast<T*>(alignedAlloc(count * sizeof(T), Alignment));
            for (size_t i = 0; i < count; ++i)
                new (data_ + i) T{};
            size_ = count;
        }
    }

    /** Exchange buffers (no allocation, no copy; alignment rides along). */
    void
    swap(AlignedVec& other) noexcept
    {
        std::swap(data_, other.data_);
        std::swap(size_, other.size_);
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    T* data() { return data_; }
    const T* data() const { return data_; }
    T& operator[](size_t i) { return data_[i]; }
    const T& operator[](size_t i) const { return data_[i]; }
    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

  private:
    void
    release()
    {
        if (data_) {
            for (size_t i = size_; i-- > 0;)
                data_[i].~T();
            alignedFree(data_, Alignment);
            data_ = nullptr;
            size_ = 0;
        }
    }

    void
    copyFrom(const AlignedVec& other)
    {
        reset(other.size_);
        for (size_t i = 0; i < size_; ++i)
            data_[i] = other.data_[i];
    }

    T* data_ = nullptr;
    size_t size_ = 0;
};

template <typename T, size_t A>
void
swap(AlignedVec<T, A>& a, AlignedVec<T, A>& b) noexcept
{
    a.swap(b);
}

} // namespace mqx
