/**
 * @file
 * Split hi/lo residue-vector storage and views.
 *
 * All SIMD kernels consume 128-bit residues as two parallel uint64_t
 * arrays — one of high words, one of low words — so that a vector
 * register holds eight high (or low) words at once (paper Section 3.2:
 * "we divide the 128-bit input vector into two 64-bit vectors").
 *
 * Split hi/lo is the NATIVE storage format end to end: RnsPolynomial
 * channels are ResidueVectors and every kernel layer hands spans of
 * them straight down to the backends. The fromU128/toU128 adapters
 * exist only at the public big-integer boundary (fromCoefficients /
 * toCoefficients, reference comparators); each use is counted in
 * layout::metrics() so tests can assert the steady-state kernel path
 * performs zero layout conversions.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "core/aligned.h"
#include "core/layout_metrics.h"
#include "u128/u128.h"

namespace mqx {

/** Mutable split hi/lo view over a residue vector (non-owning). */
struct DSpan
{
    uint64_t* hi = nullptr;
    uint64_t* lo = nullptr;
    size_t n = 0;
};

/** Const split hi/lo view. */
struct DConstSpan
{
    const uint64_t* hi = nullptr;
    const uint64_t* lo = nullptr;
    size_t n = 0;

    DConstSpan() = default;
    /*implicit*/ DConstSpan(const DSpan& s) : hi(s.hi), lo(s.lo), n(s.n) {}
    DConstSpan(const uint64_t* h, const uint64_t* l, size_t count)
        : hi(h), lo(l), n(count)
    {
    }
};

/** True when the views alias the exact same hi and lo arrays. */
inline bool
sameSpan(DConstSpan a, DConstSpan b)
{
    return a.hi == b.hi && a.lo == b.lo && a.n == b.n;
}

namespace detail {

inline bool
rangesOverlap(const uint64_t* a, size_t an, const uint64_t* b, size_t bn)
{
    // std::less imposes a total order over ALL pointers; the built-in <
    // is unspecified for pointers into different allocations, which is
    // exactly what this guard compares.
    std::less<const uint64_t*> lt;
    return lt(a, b + bn) && lt(b, a + an);
}

} // namespace detail

/**
 * True when the views share any storage without being the exact same
 * span — the aliasing shape the in-place kernel APIs reject (exact
 * in == out aliasing is legal: every kernel loads a block before
 * storing it; a partial overlap would read half-written data).
 */
inline bool
spansPartiallyOverlap(DConstSpan a, DConstSpan b)
{
    if (sameSpan(a, b))
        return false;
    return detail::rangesOverlap(a.hi, a.n, b.hi, b.n) ||
           detail::rangesOverlap(a.lo, a.n, b.lo, b.n) ||
           detail::rangesOverlap(a.hi, a.n, b.lo, b.n) ||
           detail::rangesOverlap(a.lo, a.n, b.hi, b.n);
}

/** Owning split residue vector with 64-byte-aligned halves. */
class ResidueVector
{
  public:
    ResidueVector() = default;
    explicit ResidueVector(size_t n) : hi_(n), lo_(n) {}

    /**
     * Split an array-of-U128 into hi/lo halves. Adapter-boundary only:
     * each call is one counted O(n) layout conversion plus an
     * allocation — never use it on a steady-state kernel path.
     */
    static ResidueVector
    fromU128(const std::vector<U128>& values)
    {
        layout::noteFromU128();
        ResidueVector rv(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rv.set(i, values[i]);
        return rv;
    }

    /** Reassemble into array-of-U128 form (counted adapter, as above). */
    std::vector<U128>
    toU128() const
    {
        std::vector<U128> out;
        copyToU128(out);
        return out;
    }

    /**
     * fromU128 into existing storage: still one counted conversion, but
     * reuses the buffers when the size already matches (the
     * allocation-free flavour of the adapter).
     */
    void
    assignFromU128(const std::vector<U128>& values)
    {
        layout::noteFromU128();
        ensure(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            set(i, values[i]);
    }

    /** toU128 into an existing vector (counted; reuses @p out's capacity). */
    void
    copyToU128(std::vector<U128>& out) const
    {
        layout::noteToU128();
        out.resize(size());
        for (size_t i = 0; i < size(); ++i)
            out[i] = at(i);
    }

    size_t size() const { return hi_.size(); }
    bool empty() const { return hi_.empty(); }

    U128 at(size_t i) const { return U128::fromParts(hi_[i], lo_[i]); }

    void
    set(size_t i, const U128& v)
    {
        hi_[i] = v.hi;
        lo_[i] = v.lo;
    }

    /**
     * Make the vector exactly @p n elements long, reallocating ONLY
     * when the size actually changes (contents are unspecified after a
     * size change, preserved otherwise). The workspace-reuse primitive:
     * steady-state calls with a stable n never touch the heap.
     */
    void
    ensure(size_t n)
    {
        if (hi_.size() != n) {
            hi_.reset(n);
            lo_.reset(n);
        }
    }

    /** Zero every element in place (no allocation). */
    void
    zero()
    {
        if (!hi_.empty()) {
            std::memset(hi_.data(), 0, hi_.size() * sizeof(uint64_t));
            std::memset(lo_.data(), 0, lo_.size() * sizeof(uint64_t));
        }
    }

    /** Exchange buffers with @p other (no allocation, no copy). */
    void
    swap(ResidueVector& other) noexcept
    {
        hi_.swap(other.hi_);
        lo_.swap(other.lo_);
    }

    DSpan span() { return DSpan{hi_.data(), lo_.data(), hi_.size()}; }

    DConstSpan
    span() const
    {
        return DConstSpan{hi_.data(), lo_.data(), hi_.size()};
    }

  private:
    AlignedVec<uint64_t> hi_;
    AlignedVec<uint64_t> lo_;
};

inline void
swap(ResidueVector& a, ResidueVector& b) noexcept
{
    a.swap(b);
}

inline bool
operator==(const ResidueVector& a, const ResidueVector& b)
{
    if (a.size() != b.size())
        return false;
    DConstSpan sa = a.span(), sb = b.span();
    for (size_t i = 0; i < sa.n; ++i) {
        if (sa.hi[i] != sb.hi[i] || sa.lo[i] != sb.lo[i])
            return false;
    }
    return true;
}

inline bool
operator!=(const ResidueVector& a, const ResidueVector& b)
{
    return !(a == b);
}

} // namespace mqx
