/**
 * @file
 * Split hi/lo residue-vector storage and views.
 *
 * All SIMD kernels consume 128-bit residues as two parallel uint64_t
 * arrays — one of high words, one of low words — so that a vector
 * register holds eight high (or low) words at once (paper Section 3.2:
 * "we divide the 128-bit input vector into two 64-bit vectors").
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/aligned.h"
#include "u128/u128.h"

namespace mqx {

/** Mutable split hi/lo view over a residue vector (non-owning). */
struct DSpan
{
    uint64_t* hi = nullptr;
    uint64_t* lo = nullptr;
    size_t n = 0;
};

/** Const split hi/lo view. */
struct DConstSpan
{
    const uint64_t* hi = nullptr;
    const uint64_t* lo = nullptr;
    size_t n = 0;

    DConstSpan() = default;
    /*implicit*/ DConstSpan(const DSpan& s) : hi(s.hi), lo(s.lo), n(s.n) {}
    DConstSpan(const uint64_t* h, const uint64_t* l, size_t count)
        : hi(h), lo(l), n(count)
    {
    }
};

/** Owning split residue vector with 64-byte-aligned halves. */
class ResidueVector
{
  public:
    ResidueVector() = default;
    explicit ResidueVector(size_t n) : hi_(n), lo_(n) {}

    /** Split an array-of-U128 into hi/lo halves. */
    static ResidueVector
    fromU128(const std::vector<U128>& values)
    {
        ResidueVector rv(values.size());
        for (size_t i = 0; i < values.size(); ++i)
            rv.set(i, values[i]);
        return rv;
    }

    /** Reassemble into array-of-U128 form. */
    std::vector<U128>
    toU128() const
    {
        std::vector<U128> out(size());
        for (size_t i = 0; i < size(); ++i)
            out[i] = at(i);
        return out;
    }

    size_t size() const { return hi_.size(); }

    U128 at(size_t i) const { return U128::fromParts(hi_[i], lo_[i]); }

    void
    set(size_t i, const U128& v)
    {
        hi_[i] = v.hi;
        lo_[i] = v.lo;
    }

    DSpan span() { return DSpan{hi_.data(), lo_.data(), hi_.size()}; }

    DConstSpan
    span() const
    {
        return DConstSpan{hi_.data(), lo_.data(), hi_.size()};
    }

  private:
    AlignedVec<uint64_t> hi_;
    AlignedVec<uint64_t> lo_;
};

} // namespace mqx
