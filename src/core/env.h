/**
 * @file
 * Hardened environment-variable parsing (ISSUE 9 satellite).
 *
 * Tuning knobs like MQX_THREADS and MQX_PREFETCH_DIST are read from the
 * environment in process-wide one-shot initializers, so a malformed
 * value must degrade to the built-in default — never throw from a
 * static initializer, never silently clamp garbage to a surprising
 * number. envUint rejects empty strings, trailing garbage ("4x"),
 * negative values (strtoull would silently wrap them to huge unsigned
 * numbers), overflow, and out-of-policy values, falling back to
 * @p fallback and noting the event once per variable in telemetry
 * (counter `env.fallback.<VAR>`) so operators can see a typoed knob in
 * `snapshotJson()` instead of debugging a mystery thread count.
 */
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

#include "telemetry/telemetry.h"

namespace mqx {
namespace core {

namespace detail {

/** Bump `env.fallback.<VAR>` once per variable per process. */
inline void
noteEnvFallback(const char* var)
{
    static std::mutex mu;
    static auto& noted = *new std::set<std::string>();
    std::lock_guard<std::mutex> lock(mu);
    if (noted.insert(var).second)
        telemetry::counter(std::string("env.fallback.") + var).add(1);
}

} // namespace detail

/**
 * Parse @p var as an unsigned integer in [@p min_ok, @p max_ok].
 * Unset/empty returns @p fallback silently; any malformed or
 * out-of-range value returns @p fallback with a one-time telemetry
 * note.
 */
inline uint64_t
envUint(const char* var, uint64_t fallback, uint64_t min_ok = 0,
        uint64_t max_ok = UINT64_MAX)
{
    const char* env = std::getenv(var);
    if (!env || !*env)
        return fallback;
    // strtoull accepts a leading '-' and wraps the value; reject it.
    if (std::strchr(env, '-') != nullptr) {
        detail::noteEnvFallback(var);
        return fallback;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < min_ok ||
        v > max_ok) {
        detail::noteEnvFallback(var);
        return fallback;
    }
    return static_cast<uint64_t>(v);
}

} // namespace core
} // namespace mqx
