/**
 * @file
 * Channel-major interleaved batch layout (ROADMAP item 2).
 *
 * The batch kernels run one butterfly sweep over MANY residue channels
 * at once, so each stage's Shoup twiddle pair is loaded once and reused
 * across the whole batch instead of once per channel. To keep every
 * vector load contiguous, the split hi/lo channel vectors are packed
 * into channel-major tiles of one cache line each (ParPar's packed
 * multi-region layout, adapted to split 128-bit residues):
 *
 *     tile row r (elements 8r .. 8r+7 of every lane)
 *     ┌────────────┬────────────┬─────┬──────────────┐
 *     │ lane 0     │ lane 1     │ ... │ lane IL-1    │   × hi and lo
 *     │ e 8r..8r+7 │ e 8r..8r+7 │     │  e 8r..8r+7  │
 *     └────────────┴────────────┴─────┴──────────────┘
 *       8 words      8 words            8 words
 *
 * Element e of lane c lives at flat word
 *     index(e, c) = ((e/8)·IL + (c%IL))·8 + e%8     (+ group offset)
 * so a vector load of kLanes ≤ 8 consecutive elements of one lane
 * never crosses a lane boundary (every backend's kLanes divides 8).
 * Lanes beyond a multiple of IL go to further groups of IL lanes; a
 * final partial group is zero-padded so kernels always sweep whole
 * tiles.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "core/config.h"
#include "core/residue_span.h"

namespace mqx {

/** Geometry of one packed interleaved batch buffer. */
struct BatchLayout
{
    /** Words per lane-tile: one 64-byte cache line of uint64_t. */
    static constexpr size_t kTileWords = 8;

    size_t n = 0;     ///< elements per lane (multiple of kTileWords)
    size_t lanes = 0; ///< logical lanes packed (k; need not divide il)
    size_t il = 0;    ///< interleave factor (lanes per tile group)

    BatchLayout(size_t n_, size_t lanes_, size_t il_)
        : n(n_), lanes(lanes_), il(il_)
    {
        checkArg(n_ > 0 && n_ % kTileWords == 0,
                 "BatchLayout: n must be a positive multiple of 8");
        checkArg(lanes_ > 0, "BatchLayout: need at least one lane");
        checkArg(il_ > 0, "BatchLayout: interleave factor must be >= 1");
    }

    /** Tile groups of il lanes (the last may be partial → padded). */
    size_t groups() const { return (lanes + il - 1) / il; }

    /** Lanes including zero-padding up to a whole group. */
    size_t paddedLanes() const { return groups() * il; }

    /** Words per hi (or lo) array of the packed buffer. */
    size_t totalWords() const { return paddedLanes() * n; }

    /** Flat word index of element @p e of lane @p lane. */
    size_t
    index(size_t e, size_t lane) const
    {
        const size_t g = lane / il;
        const size_t c = lane % il;
        return g * il * n + ((e / kTileWords) * il + c) * kTileWords +
               e % kTileWords;
    }
};

namespace batch {

/**
 * Pack @p count channel spans (each layout.n elements, one per lane)
 * into the interleaved buffer @p dst. Padding lanes are zeroed so the
 * kernels can sweep them without reading garbage. Rejects any overlap
 * between @p dst and a source span.
 */
inline void
packLanes(const BatchLayout& layout, const DConstSpan* src, size_t count,
          DSpan dst)
{
    checkArg(src != nullptr && count == layout.lanes,
             "packLanes: source count must equal layout.lanes");
    checkArg(dst.n == layout.totalWords(),
             "packLanes: destination must be layout.totalWords() long");
    for (size_t c = 0; c < count; ++c) {
        checkArg(src[c].n == layout.n, "packLanes: lane length mismatch");
        checkArg(!sameSpan(src[c], dst) && !spansPartiallyOverlap(src[c], dst),
                 "packLanes: source lane overlaps destination");
    }
    const size_t w = BatchLayout::kTileWords;
    for (size_t c = 0; c < layout.paddedLanes(); ++c) {
        const size_t g = c / layout.il;
        const size_t base = g * layout.il * layout.n + (c % layout.il) * w;
        const size_t row = layout.il * w;
        if (c >= count) {
            for (size_t r = 0; r < layout.n / w; ++r) {
                std::memset(dst.hi + base + r * row, 0, w * sizeof(uint64_t));
                std::memset(dst.lo + base + r * row, 0, w * sizeof(uint64_t));
            }
            continue;
        }
        for (size_t r = 0; r < layout.n / w; ++r) {
            std::memcpy(dst.hi + base + r * row, src[c].hi + r * w,
                        w * sizeof(uint64_t));
            std::memcpy(dst.lo + base + r * row, src[c].lo + r * w,
                        w * sizeof(uint64_t));
        }
    }
}

/**
 * Unpack @p count lanes of the interleaved buffer @p src back into
 * per-channel spans (padding lanes are simply dropped). Rejects any
 * overlap between @p src and a destination span.
 */
inline void
unpackLanes(const BatchLayout& layout, DConstSpan src, DSpan* dst,
            size_t count)
{
    checkArg(dst != nullptr && count == layout.lanes,
             "unpackLanes: destination count must equal layout.lanes");
    checkArg(src.n == layout.totalWords(),
             "unpackLanes: source must be layout.totalWords() long");
    for (size_t c = 0; c < count; ++c) {
        checkArg(dst[c].n == layout.n, "unpackLanes: lane length mismatch");
        checkArg(!sameSpan(src, dst[c]) && !spansPartiallyOverlap(src, dst[c]),
                 "unpackLanes: destination lane overlaps source");
    }
    const size_t w = BatchLayout::kTileWords;
    for (size_t c = 0; c < count; ++c) {
        const size_t g = c / layout.il;
        const size_t base = g * layout.il * layout.n + (c % layout.il) * w;
        const size_t row = layout.il * w;
        for (size_t r = 0; r < layout.n / w; ++r) {
            std::memcpy(dst[c].hi + r * w, src.hi + base + r * row,
                        w * sizeof(uint64_t));
            std::memcpy(dst[c].lo + r * w, src.lo + base + r * row,
                        w * sizeof(uint64_t));
        }
    }
}

} // namespace batch
} // namespace mqx
