/**
 * @file
 * Host CPU feature detection (CPUID). Runtime dispatch uses this so that
 * binaries containing AVX-512 code paths stay safe on older CPUs.
 */
#pragma once

#include <string>

namespace mqx {

/** The SIMD features and identity of the host CPU. */
struct CpuFeatures
{
    bool avx2 = false;
    bool avx512f = false;
    bool avx512dq = false;
    bool avx512bw = false;
    bool avx512vl = false;
    std::string vendor;
    std::string brand;

    /** True when the full AVX-512 subset the kernels use is present. */
    bool
    hasAvx512() const
    {
        return avx512f && avx512dq && avx512bw && avx512vl;
    }
};

/** Detected once per process. */
const CpuFeatures& hostCpuFeatures();

} // namespace mqx
