/**
 * @file
 * The backend taxonomy shared by every kernel family (NTT, BLAS, raw
 * modular ops). Mirrors the implementation tiers of the paper's
 * evaluation (Section 5): scalar, AVX2, AVX-512, and MQX — the latter in
 * both functional-emulation and PISA performance-projection modes.
 */
#pragma once

#include <string>
#include <vector>

namespace mqx {

/** Kernel implementation tiers. */
enum class Backend
{
    Scalar,     ///< optimized scalar (native 128-bit, Section 3.1)
    Portable,   ///< plain-C++ 8-lane model of the SIMD kernels
    Avx2,       ///< 4-way AVX2 (Section 3.2)
    Avx512,     ///< 8-way AVX-512 (Listing 2)
    MqxEmulate, ///< MQX with Table-2 scalar emulation: bit-exact, slow
    MqxPisa,    ///< MQX with Table-3 proxy instructions: timing-faithful,
                ///< numerically wrong by design — benchmarking only
};

/**
 * MQX feature ablation variants (paper Fig. 6). "Base" in the figure is
 * plain AVX-512, i.e. Backend::Avx512.
 */
enum class MqxVariant
{
    MulOnly,        ///< +M: widening multiply only
    CarryOnly,      ///< +C: adc/sbb only
    Full,           ///< +M,C: the proposed MQX
    MulhiCarry,     ///< +Mh,C: multiply-high instead of widening multiply
    FullPredicated, ///< +M,C,P: MQX plus predicated adc/sbb
};

/** Fig. 6 label for a variant (e.g. "+M,C"). */
std::string mqxVariantName(MqxVariant v);

/** Human-readable backend name (matches the paper's figure legends). */
std::string backendName(Backend b);

/** All backends that produce correct results (excludes MqxPisa). */
std::vector<Backend> correctBackends();

/**
 * True if @p b can run on this process (compiled in and supported by
 * the host CPU).
 */
bool backendAvailable(Backend b);

/** Best available correct backend for production dispatch. */
Backend bestBackend();

} // namespace mqx
