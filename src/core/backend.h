/**
 * @file
 * The backend taxonomy shared by every kernel family (NTT, BLAS, raw
 * modular ops). Mirrors the implementation tiers of the paper's
 * evaluation (Section 5): scalar, AVX2, AVX-512, and MQX — the latter in
 * both functional-emulation and PISA performance-projection modes.
 */
#pragma once

#include <string>
#include <vector>

namespace mqx {

/** Kernel implementation tiers. */
enum class Backend
{
    Scalar,     ///< optimized scalar (native 128-bit, Section 3.1)
    Portable,   ///< plain-C++ 8-lane model of the SIMD kernels
    Avx2,       ///< 4-way AVX2 (Section 3.2)
    Avx512,     ///< 8-way AVX-512 (Listing 2)
    MqxEmulate, ///< MQX with Table-2 scalar emulation: bit-exact, slow
    MqxPisa,    ///< MQX with Table-3 proxy instructions: timing-faithful,
                ///< numerically wrong by design — benchmarking only
};

/** Which double-word multiplication algorithm to use (Section 5.5). */
enum class MulAlgo
{
    Schoolbook, ///< Eq. 8: four word multiplies (paper default — faster on CPUs)
    Karatsuba,  ///< Eq. 9: three word multiplies, more additions
};

/**
 * Reduction strategy for kernels whose multiplications have a fixed,
 * precomputable operand (NTT twiddles, twist tables, n^-1).
 *
 * ShoupLazy is the steady-state default: every twiddle carries a
 * precomputed quotient wq = floor(w * 2^128 / q) (Shoup/Harvey), the
 * butterfly multiply costs one full product plus two low products with
 * NO correction subtractions, and intermediate operands live in the
 * redundant range [0, 2q) — canonicalization to [0, q) is deferred to
 * one fused pass in the final stage (forward) or the n^-1 scaling
 * (inverse). Results are bit-identical to the Barrett path.
 *
 * Barrett keeps the paper's Eq.-4 full reduction per butterfly; it is
 * retained for the ablation benches and as the cross-check oracle.
 */
enum class Reduction
{
    ShoupLazy, ///< precomputed-quotient multiply, lazy [0, 2q) operands
    Barrett,   ///< full Barrett reduction per butterfly (paper Eq. 4)
};

/**
 * Butterfly stage fusion for the Pease NTT kernels.
 *
 * Radix4 (default) fuses two consecutive radix-2 stages into one pass:
 * each pass loads the pair of stages' operands once, applies both
 * butterfly layers in registers (Shoup-lazy arithmetic, transients
 * bounded by the same [0, 2q)/4q contract as the radix-2 path), and
 * stores once — ceil(logn/2) ping-pong sweeps instead of logn, plus a
 * single radix-2 pass when logn is odd. Outputs are bit-identical to
 * Radix2.
 *
 * Radix2 keeps one sweep per stage; it is retained for A/B traffic
 * measurements and figure reproduction. The fused kernels are built on
 * the Shoup-lazy arithmetic; Reduction::Barrett (the ablation baseline)
 * always runs the radix-2 stage loop regardless of this knob.
 *
 * Auto (the public-API default) resolves to the measured-fastest shape
 * for the (backend, n) pair via ntt::resolveStageFusion():
 * BENCH_ntt.json shows fusion is a pure win on Scalar (~1.1-1.2x at
 * every n) but slightly regresses the vector backends below the largest
 * sizes (fused_speedup 0.93-0.99 at n <= 16384), where the extra
 * shuffle work outweighs the saved sweeps. Backends never see Auto —
 * the dispatcher resolves it first.
 */
enum class StageFusion
{
    Radix4, ///< two stages per sweep (default steady state)
    Radix2, ///< one stage per sweep (A/B baseline)
    Auto,   ///< resolve per (backend, n) from the measured thresholds
};

/**
 * MQX feature ablation variants (paper Fig. 6). "Base" in the figure is
 * plain AVX-512, i.e. Backend::Avx512.
 */
enum class MqxVariant
{
    MulOnly,        ///< +M: widening multiply only
    CarryOnly,      ///< +C: adc/sbb only
    Full,           ///< +M,C: the proposed MQX
    MulhiCarry,     ///< +Mh,C: multiply-high instead of widening multiply
    FullPredicated, ///< +M,C,P: MQX plus predicated adc/sbb
};

/** Fig. 6 label for a variant (e.g. "+M,C"). */
std::string mqxVariantName(MqxVariant v);

/** Human-readable backend name (matches the paper's figure legends). */
std::string backendName(Backend b);

/** All backends that produce correct results (excludes MqxPisa). */
std::vector<Backend> correctBackends();

/**
 * True if @p b can run on this process (compiled in and supported by
 * the host CPU).
 */
bool backendAvailable(Backend b);

/** Best available correct backend for production dispatch. */
Backend bestBackend();

} // namespace mqx
