/**
 * @file
 * Process-wide counters for the two costs the split hi/lo refactor
 * eliminates from the steady-state kernel path: AoS<->SoA layout
 * conversions (ResidueVector::fromU128 / toU128) and aligned heap
 * allocations (AlignedVec growth).
 *
 * The counters are test/bench hooks, not a profiler: tests snapshot
 * them around a warmed-up op and assert the deltas are zero, and
 * bench_engine reports them per call to show what the SoA-native path
 * saves over the retained U128 adapter path. Relaxed atomics keep the
 * hooks free of ordering cost on the hot path (a counter bump is the
 * only overhead, and only where a conversion/allocation — the expensive
 * event — already happens).
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace mqx {
namespace layout {

/** Snapshot of the process-wide layout-cost counters. */
struct Metrics
{
    uint64_t from_u128;      ///< AoS -> SoA repacks (ResidueVector::fromU128)
    uint64_t to_u128;        ///< SoA -> AoS repacks (ResidueVector::toU128)
    uint64_t aligned_allocs; ///< 64-byte-aligned heap allocations

    uint64_t conversions() const { return from_u128 + to_u128; }
};

namespace detail {

inline std::atomic<uint64_t> from_u128_count{0};
inline std::atomic<uint64_t> to_u128_count{0};
inline std::atomic<uint64_t> aligned_alloc_count{0};

} // namespace detail

inline void
noteFromU128()
{
    detail::from_u128_count.fetch_add(1, std::memory_order_relaxed);
}

inline void
noteToU128()
{
    detail::to_u128_count.fetch_add(1, std::memory_order_relaxed);
}

inline void
noteAlignedAlloc()
{
    detail::aligned_alloc_count.fetch_add(1, std::memory_order_relaxed);
}

/** Current counter values (monotonic since process start or reset()). */
inline Metrics
metrics()
{
    return Metrics{
        detail::from_u128_count.load(std::memory_order_relaxed),
        detail::to_u128_count.load(std::memory_order_relaxed),
        detail::aligned_alloc_count.load(std::memory_order_relaxed),
    };
}

/** Zero every counter (single-threaded test/bench sections only). */
inline void
reset()
{
    detail::from_u128_count.store(0, std::memory_order_relaxed);
    detail::to_u128_count.store(0, std::memory_order_relaxed);
    detail::aligned_alloc_count.store(0, std::memory_order_relaxed);
}

/** Delta between two snapshots (b taken after a). */
inline Metrics
delta(const Metrics& a, const Metrics& b)
{
    return Metrics{b.from_u128 - a.from_u128, b.to_u128 - a.to_u128,
                   b.aligned_allocs - a.aligned_allocs};
}

} // namespace layout
} // namespace mqx
