/**
 * @file
 * Process-wide counters for the two costs the split hi/lo refactor
 * eliminates from the steady-state kernel path: AoS<->SoA layout
 * conversions (ResidueVector::fromU128 / toU128) and aligned heap
 * allocations (AlignedVec growth).
 *
 * The counters are test/bench hooks, not a profiler: tests snapshot
 * them around a warmed-up op and assert the deltas are zero, and
 * bench_engine reports them per call to show what the SoA-native path
 * saves over the retained U128 adapter path.
 *
 * Since the telemetry subsystem landed these are thin wrappers over
 * registry counters ("layout.from_u128" / "layout.to_u128" /
 * "layout.aligned_allocs"), so the layout costs appear in the unified
 * telemetry::snapshotJson() next to the span and pool accounting. The
 * hot-path cost is unchanged — one relaxed atomic add on a per-thread
 * shard, and only where a conversion/allocation (the expensive event)
 * already happens. Counters are always compiled, even in
 * MQX_TELEMETRY=OFF builds (only the span/histogram layer is gated).
 */
#pragma once

#include <cstdint>

#include "telemetry/telemetry.h"

namespace mqx {
namespace layout {

/** Snapshot of the process-wide layout-cost counters. */
struct Metrics
{
    uint64_t from_u128;      ///< AoS -> SoA repacks (ResidueVector::fromU128)
    uint64_t to_u128;        ///< SoA -> AoS repacks (ResidueVector::toU128)
    uint64_t aligned_allocs; ///< 64-byte-aligned heap allocations

    uint64_t conversions() const { return from_u128 + to_u128; }
};

namespace detail {

inline telemetry::Counter&
fromU128Counter()
{
    static telemetry::Counter& c = telemetry::counter("layout.from_u128");
    return c;
}

inline telemetry::Counter&
toU128Counter()
{
    static telemetry::Counter& c = telemetry::counter("layout.to_u128");
    return c;
}

inline telemetry::Counter&
alignedAllocCounter()
{
    static telemetry::Counter& c =
        telemetry::counter("layout.aligned_allocs");
    return c;
}

} // namespace detail

inline void
noteFromU128()
{
    detail::fromU128Counter().add(1);
}

inline void
noteToU128()
{
    detail::toU128Counter().add(1);
}

inline void
noteAlignedAlloc()
{
    detail::alignedAllocCounter().add(1);
}

/** Current counter values (monotonic since process start or reset()). */
inline Metrics
metrics()
{
    return Metrics{
        detail::fromU128Counter().value(),
        detail::toU128Counter().value(),
        detail::alignedAllocCounter().value(),
    };
}

/** Zero every counter (single-threaded test/bench sections only). */
inline void
reset()
{
    detail::fromU128Counter().reset();
    detail::toU128Counter().reset();
    detail::alignedAllocCounter().reset();
}

/** Delta between two snapshots (b taken after a). */
inline Metrics
delta(const Metrics& a, const Metrics& b)
{
    return Metrics{b.from_u128 - a.from_u128, b.to_u128 - a.to_u128,
                   b.aligned_allocs - a.aligned_allocs};
}

} // namespace layout
} // namespace mqx
