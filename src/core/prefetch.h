/**
 * @file
 * Sanctioned software-prefetch helpers (ROADMAP item 2).
 *
 * The interleaved batch kernels stream working sets that exceed L2 and
 * hide the resulting L3/DRAM latency by prefetching the tile that will
 * be consumed a few group-rows ahead — the `packpf` pattern ParPar uses
 * in its packed GF(2^16) multi-region kernels. All raw
 * `_mm_prefetch` / `__builtin_prefetch` intrinsics in the tree live in
 * THIS header; mqx-lint's `prefetch-hygiene` rule rejects them anywhere
 * else so the prefetch policy (hint level, distance) stays in one
 * place.
 *
 * The lookahead distance is a process-wide knob: `MQX_PREFETCH_DIST`
 * (group-rows ahead, default 2, 0 disables prefetching), read once on
 * first use. The default comes from a distance sweep of the batch NTT
 * at n = 4096, k = 8: 2 rows ahead beat 0/4/8/16 on both the AVX2 and
 * AVX-512 tiers — anything longer evicts lines the sweep is still
 * using, anything shorter leaves latency exposed at the stream head.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) ||            \
    defined(_M_IX86)
#define MQX_PREFETCH_X86 1
#include <immintrin.h>
#else
#define MQX_PREFETCH_X86 0
#endif

#include "core/config.h"
#include "core/env.h"

namespace mqx {
namespace core {

/**
 * Hint the cache hierarchy to pull the line holding @p p toward L1.
 * Purely advisory: prefetching an out-of-range address is harmless (the
 * hint never faults), so tail iterations may prefetch past the end of a
 * buffer without guarding.
 */
MQX_FORCE_INLINE void
prefetchRead(const void* p)
{
#if MQX_PREFETCH_X86
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#elif defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

/**
 * Lookahead distance in group-rows (one group-row = IL tiles = the
 * words one batch sweep consumes before advancing), from
 * `MQX_PREFETCH_DIST`. Valid range [0, 64]; 0 disables prefetching.
 * Malformed or out-of-range values fall back to the tuned default of 2
 * with a one-time `env.fallback.MQX_PREFETCH_DIST` telemetry note
 * (core/env.h), read once on first use.
 */
inline size_t
prefetchDistance()
{
    static const size_t dist = static_cast<size_t>(
        envUint("MQX_PREFETCH_DIST", /*fallback=*/2, /*min_ok=*/0,
                /*max_ok=*/64));
    return dist;
}

/**
 * Prefetch the hi/lo words @p ahead_words past @p idx in a split
 * residue buffer — the batch kernels' "next region" hint, issued once
 * per cache-line-sized tile.
 */
MQX_FORCE_INLINE void
prefetchNext(const uint64_t* hi, const uint64_t* lo, size_t idx,
             size_t ahead_words)
{
    prefetchRead(hi + idx + ahead_words);
    prefetchRead(lo + idx + ahead_words);
}

} // namespace core
} // namespace mqx
