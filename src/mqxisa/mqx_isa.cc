/**
 * @file
 * MQX support code: the opaque PISA globals and an instruction-level
 * batch API that lets ISA-flag-free code (the test suite) exercise the
 * Table-2 emulation semantics.
 */
#include "mqxisa/mqx_isa.h"

#include "core/config.h"

#if MQX_BUILD_AVX512
#include "mqxisa/isa_mqx.h"
#endif

namespace mqx {
namespace mqxisa {

// Opaque zeros: never written, but the compiler must assume they could
// be, which pins the PISA proxy instructions in place (Section 4.2's
// "carefully inspect the compiler-generated assembly" requirement).
volatile uint8_t g_pisa_opaque_zero_mask = 0;
uint64_t g_pisa_opaque_zero_vec[8] = {0, 0, 0, 0, 0, 0, 0, 0};

#if !MQX_BUILD_AVX512

// Portable-only build: the batch API must still link (callers check
// backendAvailable(Backend::MqxEmulate), which is false here, before
// calling), but the Table-2 emulation itself is AVX-512 code.
namespace {

[[noreturn]] void
notCompiled()
{
    throw BackendUnavailable("MQX batch API: built without AVX-512");
}

} // namespace

void
mqxAdcBatch8(const uint64_t[8], const uint64_t[8], uint8_t, uint64_t[8],
             uint8_t*)
{
    notCompiled();
}

void
mqxSbbBatch8(const uint64_t[8], const uint64_t[8], uint8_t, uint64_t[8],
             uint8_t*)
{
    notCompiled();
}

void
mqxMulWideBatch8(const uint64_t[8], const uint64_t[8], uint64_t[8],
                 uint64_t[8])
{
    notCompiled();
}

void
mqxPredicatedSbbBatch8(const uint64_t[8], const uint64_t[8], uint8_t, uint8_t,
                       uint64_t[8])
{
    notCompiled();
}

#else

void
mqxAdcBatch8(const uint64_t a[8], const uint64_t b[8], uint8_t carry_in,
             uint64_t out[8], uint8_t* carry_out)
{
    __m512i va = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(a));
    __m512i vb = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(b));
    __mmask8 co = 0;
    __m512i r = MqxIsa<MqxMode::Emulate>::adc(va, vb, carry_in, co);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(out), r);
    *carry_out = co;
}

void
mqxSbbBatch8(const uint64_t a[8], const uint64_t b[8], uint8_t borrow_in,
             uint64_t out[8], uint8_t* borrow_out)
{
    __m512i va = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(a));
    __m512i vb = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(b));
    __mmask8 bo = 0;
    __m512i r = MqxIsa<MqxMode::Emulate>::sbb(va, vb, borrow_in, bo);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(out), r);
    *borrow_out = bo;
}

void
mqxMulWideBatch8(const uint64_t a[8], const uint64_t b[8], uint64_t hi[8],
                 uint64_t lo[8])
{
    __m512i va = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(a));
    __m512i vb = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(b));
    __m512i vh, vl;
    MqxIsa<MqxMode::Emulate>::mulWide(va, vb, vh, vl);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(hi), vh);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(lo), vl);
}

void
mqxPredicatedSbbBatch8(const uint64_t a[8], const uint64_t b[8],
                       uint8_t borrow_in, uint8_t predicate, uint64_t out[8])
{
    __m512i va = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(a));
    __m512i vb = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(b));
    __m512i r = MqxIsa<MqxMode::Emulate, kMqxPredicated>::pSbb(
        va, vb, borrow_in, predicate);
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(out), r);
}

#endif // MQX_BUILD_AVX512

} // namespace mqxisa
} // namespace mqx
