/**
 * @file
 * ISA-flag-free surface of the MQX extension.
 *
 * Code that is not compiled with AVX-512 flags (tests, examples) cannot
 * include isa_mqx.h. This header exposes the instruction-level Table-2
 * emulation through plain-array batch calls so those clients can verify
 * and demonstrate MQX semantics. The full policy type lives in
 * mqxisa/isa_mqx.h for AVX-512-flagged TUs.
 */
#pragma once

#include <cstdint>

namespace mqx {
namespace mqxisa {

/**
 * _mm512_adc_epi64 emulation over plain arrays: per lane i,
 * out[i] = a[i] + b[i] + carry_in[i]; carry_out bit i set on overflow
 * (Table 2). carry_in/carry_out are 8-bit lane masks.
 */
void mqxAdcBatch8(const uint64_t a[8], const uint64_t b[8], uint8_t carry_in,
                  uint64_t out[8], uint8_t* carry_out);

/** _mm512_sbb_epi64 emulation (Table 2). */
void mqxSbbBatch8(const uint64_t a[8], const uint64_t b[8], uint8_t borrow_in,
                  uint64_t out[8], uint8_t* borrow_out);

/** _mm512_mul_epi64 widening-multiply emulation (Table 2). */
void mqxMulWideBatch8(const uint64_t a[8], const uint64_t b[8],
                      uint64_t hi[8], uint64_t lo[8]);

/**
 * Predicated subtract-with-borrow (+P variant, Section 5.5): per lane,
 * out[i] = predicate[i] ? a[i] - b[i] - borrow_in[i] : a[i]; no borrow
 * out.
 */
void mqxPredicatedSbbBatch8(const uint64_t a[8], const uint64_t b[8],
                            uint8_t borrow_in, uint8_t predicate,
                            uint64_t out[8]);

} // namespace mqxisa
} // namespace mqx
