/**
 * @file
 * MQX — the multi-word extension (paper Section 4).
 *
 * MQX adds three SIMD instructions to AVX-512 (Table 2):
 *
 *   _mm512_mul_epi64  widening multiply: per lane, 64x64 -> (hi, lo)
 *   _mm512_adc_epi64  add with carry-in mask, carry-out mask
 *   _mm512_sbb_epi64  subtract with borrow-in mask, borrow-out mask
 *
 * The instructions do not exist in silicon, so MqxIsa implements them in
 * two modes (Section 4.2):
 *
 *  - MqxMode::Emulate — per-lane scalar emulation exactly per Table 2.
 *    Bit-exact; used by every correctness test. ("With that flag turned
 *    on, each MQX instruction is emulated by a scalar implementation.")
 *
 *  - MqxMode::Pisa — performance projection using proxy ISA: each MQX
 *    instruction maps to its structurally-closest real AVX-512
 *    instruction (Table 3): mul -> vpmullq, adc -> masked vpaddq,
 *    sbb -> masked vpsubq. The results are numerically wrong by design;
 *    only the timing is meaningful. Initial carry masks are loaded from
 *    an opaque global so the compiler cannot constant-fold the masked
 *    proxies away (the paper: "we carefully inspect the compiler-
 *    generated assembly code to make sure no instructions are
 *    incorrectly pruned").
 *
 * The MqxFeatures template parameter reproduces the Fig. 6 ablation:
 * +M (widening multiply only), +C (carry/borrow only), +M,C (full MQX),
 * +Mh,C (multiply-high instead of full widening multiply, two
 * instructions), and +M,C,P (predicated adc/sbb variants). Features that
 * are off fall back to the AVX-512 emulation sequences.
 *
 * Include only from TUs compiled with AVX-512 flags.
 */
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "core/config.h"
#include "simd/isa_avx512.h"
#include "u128/u128.h"

#if !MQX_TU_HAS_AVX512
#error "isa_mqx.h included in a TU without AVX-512 codegen flags"
#endif

namespace mqx {
namespace mqxisa {

/** Execution mode for the proposed instructions (Section 4.2). */
enum class MqxMode
{
    Emulate, ///< Table-2 scalar emulation: correct results
    Pisa,    ///< Table-3 proxy instructions: projected timing, bogus data
};

/** Which MQX sub-features are enabled (Fig. 6 ablation axes). */
struct MqxFeatures
{
    bool wide_mul = true;    ///< _mm512_mul_epi64 (full widening multiply)
    bool mulhi_only = false; ///< model mul as separate mullo + mulhi (+Mh)
    bool carry = true;       ///< _mm512_adc/_mm512_sbb
    bool predicated = false; ///< predicated adc/sbb (+P)

    constexpr bool
    operator==(const MqxFeatures&) const = default;
};

inline constexpr MqxFeatures kMqxFull{true, false, true, false};     // +M,C
inline constexpr MqxFeatures kMqxMulOnly{true, false, false, false}; // +M
inline constexpr MqxFeatures kMqxCarryOnly{false, false, true, false}; // +C
inline constexpr MqxFeatures kMqxMulhi{false, true, true, false};    // +Mh,C
inline constexpr MqxFeatures kMqxPredicated{true, false, true, true}; // +M,C,P

/**
 * Opaque zero values defined in mqx_isa.cc. Reading them defeats
 * constant folding of the PISA proxy sequences without adding work to
 * the measured loop body (one load per kernel call).
 */
extern volatile uint8_t g_pisa_opaque_zero_mask;
extern uint64_t g_pisa_opaque_zero_vec[8];

/**
 * The MQX SIMD policy: Avx512Isa with adc/sbb/mulWide (and optionally
 * the predicated forms) replaced per mode and feature set.
 */
template <MqxMode Mode, MqxFeatures F = kMqxFull>
struct MqxIsa : simd::Avx512Isa
{
    using Base = simd::Avx512Isa;
    using V = Base::V;
    using M = Base::M;

    static constexpr bool kIsMqx = true;
    static constexpr bool kHasPredicated = F.predicated;
    static constexpr MqxMode kMode = Mode;
    static constexpr MqxFeatures kFeatures = F;

    static M
    initialCarryMask()
    {
        if constexpr (Mode == MqxMode::Pisa)
            return static_cast<M>(g_pisa_opaque_zero_mask);
        else
            return 0;
    }

    // -- _mm512_adc_epi64 ------------------------------------------------

    static V
    adc(V a, V b, M ci, M& co)
    {
        if constexpr (!F.carry) {
            return Base::adc(a, b, ci, co);
        } else if constexpr (Mode == MqxMode::Emulate) {
            alignas(64) uint64_t av[8], bv[8], cv[8];
            _mm512_store_si512(reinterpret_cast<__m512i*>(av), a);
            _mm512_store_si512(reinterpret_cast<__m512i*>(bv), b);
            M out = 0;
            for (int i = 0; i < 8; ++i) {
                // Table 2: co[i] = ((i128) a[i] + b[i] + ci[i]) >> 64.
                uint64_t carry = addc64(av[i], bv[i],
                                        static_cast<uint64_t>((ci >> i) & 1),
                                        cv[i]);
                out = static_cast<M>(out | (carry << i));
            }
            co = out;
            return _mm512_load_si512(reinterpret_cast<const __m512i*>(cv));
        } else {
            // PISA proxy (Table 3): one masked vector add.
            co = ci;
            return _mm512_mask_add_epi64(a, ci, a, b);
        }
    }

    // -- _mm512_sbb_epi64 ------------------------------------------------

    static V
    sbb(V a, V b, M bi, M& bo)
    {
        if constexpr (!F.carry) {
            return Base::sbb(a, b, bi, bo);
        } else if constexpr (Mode == MqxMode::Emulate) {
            alignas(64) uint64_t av[8], bv[8], cv[8];
            _mm512_store_si512(reinterpret_cast<__m512i*>(av), a);
            _mm512_store_si512(reinterpret_cast<__m512i*>(bv), b);
            M out = 0;
            for (int i = 0; i < 8; ++i) {
                // Table 2: bo[i] = ((i128) a[i] - b[i] - bi[i]) >> 127.
                uint64_t borrow = subb64(av[i], bv[i],
                                         static_cast<uint64_t>((bi >> i) & 1),
                                         cv[i]);
                out = static_cast<M>(out | (borrow << i));
            }
            bo = out;
            return _mm512_load_si512(reinterpret_cast<const __m512i*>(cv));
        } else {
            // PISA proxy (Table 3): one masked vector subtract.
            bo = bi;
            return _mm512_mask_sub_epi64(a, bi, a, b);
        }
    }

    // -- _mm512_mul_epi64 ------------------------------------------------

    static void
    mulWide(V a, V b, V& hi, V& lo)
    {
        if constexpr (F.mulhi_only) {
            // +Mh,C (Section 5.5): multiply-high as a second instruction
            // with multiply-low latency.
            if constexpr (Mode == MqxMode::Emulate) {
                mulWideEmu(a, b, hi, lo);
            } else {
                lo = _mm512_mullo_epi64(a, b);
                // Distinct instruction for the high half; XOR with an
                // opaque zero keeps the compiler from merging the two
                // multiplies (slightly conservative: one extra cheap op).
                V tweak = _mm512_loadu_si512(
                    const_cast<const uint64_t*>(g_pisa_opaque_zero_vec));
                hi = _mm512_mullo_epi64(_mm512_xor_si512(a, tweak), b);
            }
        } else if constexpr (!F.wide_mul) {
            Base::mulWide(a, b, hi, lo);
        } else if constexpr (Mode == MqxMode::Emulate) {
            mulWideEmu(a, b, hi, lo);
        } else {
            // PISA proxy (Table 3): the widening multiply is modeled as a
            // single vpmullq; both halves alias its result.
            lo = _mm512_mullo_epi64(a, b);
            hi = lo;
        }
    }

    // -- Predicated forms (+P, Section 5.5) -------------------------------

    /** pred ? a + b + ci : a; no carry-out. */
    static V
    pAdc(V a, V b, M ci, M pred)
    {
        static_assert(F.predicated, "pAdc requires the +P feature");
        if constexpr (Mode == MqxMode::Emulate) {
            alignas(64) uint64_t av[8], bv[8], cv[8];
            _mm512_store_si512(reinterpret_cast<__m512i*>(av), a);
            _mm512_store_si512(reinterpret_cast<__m512i*>(bv), b);
            for (int i = 0; i < 8; ++i) {
                uint64_t sum = 0;
                addc64(av[i], bv[i], static_cast<uint64_t>((ci >> i) & 1),
                       sum);
                cv[i] = ((pred >> i) & 1) ? sum : av[i];
            }
            return _mm512_load_si512(reinterpret_cast<const __m512i*>(cv));
        } else {
            return _mm512_mask_add_epi64(a, pred, a, b);
        }
    }

    /** pred ? a - b - bi : a; no borrow-out. */
    static V
    pSbb(V a, V b, M bi, M pred)
    {
        static_assert(F.predicated, "pSbb requires the +P feature");
        if constexpr (Mode == MqxMode::Emulate) {
            alignas(64) uint64_t av[8], bv[8], cv[8];
            _mm512_store_si512(reinterpret_cast<__m512i*>(av), a);
            _mm512_store_si512(reinterpret_cast<__m512i*>(bv), b);
            for (int i = 0; i < 8; ++i) {
                uint64_t diff = 0;
                subb64(av[i], bv[i], static_cast<uint64_t>((bi >> i) & 1),
                       diff);
                cv[i] = ((pred >> i) & 1) ? diff : av[i];
            }
            return _mm512_load_si512(reinterpret_cast<const __m512i*>(cv));
        } else {
            return _mm512_mask_sub_epi64(a, pred, a, b);
        }
    }

  private:
    /** Exact per-lane widening multiply (Table 2 emulation). */
    static void
    mulWideEmu(V a, V b, V& hi, V& lo)
    {
        alignas(64) uint64_t av[8], bv[8], hv[8], lv[8];
        _mm512_store_si512(reinterpret_cast<__m512i*>(av), a);
        _mm512_store_si512(reinterpret_cast<__m512i*>(bv), b);
        for (int i = 0; i < 8; ++i)
            mulWide64(av[i], bv[i], hv[i], lv[i]);
        hi = _mm512_load_si512(reinterpret_cast<const __m512i*>(hv));
        lo = _mm512_load_si512(reinterpret_cast<const __m512i*>(lv));
    }
};

/**
 * Paper-style intrinsic spellings (Table 2) over the emulation mode, for
 * examples and tests that want to read like the paper's listings.
 */
inline void
mqx_mm512_mul_epi64(__m512i* ch, __m512i* cl, __m512i a, __m512i b)
{
    MqxIsa<MqxMode::Emulate>::mulWide(a, b, *ch, *cl);
}

inline __m512i
mqx_mm512_adc_epi64(__m512i a, __m512i b, __mmask8 ci, __mmask8* co)
{
    return MqxIsa<MqxMode::Emulate>::adc(a, b, ci, *co);
}

inline __m512i
mqx_mm512_sbb_epi64(__m512i a, __m512i b, __mmask8 bi, __mmask8* bo)
{
    return MqxIsa<MqxMode::Emulate>::sbb(a, b, bi, *bo);
}

} // namespace mqxisa
} // namespace mqx
