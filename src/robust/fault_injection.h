/**
 * @file
 * Deterministic, seeded fault-injection harness (ISSUE 9 tentpole).
 *
 * Hot paths declare *named fault points* with MQX_FAULT_POINT("name")
 * (control-flow faults: thrown exception, allocation failure, stall) or
 * MQX_FAULT_POINT_DATA("name", span) (data faults: a single-bit flip in
 * the residue words the point just produced). In regular builds both
 * macros compile to `((void)0)` — zero code, zero branches. Configuring
 * with `-DMQX_FAULT_INJECTION=ON` defines MQX_FAULT_INJECTION_ENABLED=1
 * and the points become calls into the active FaultPlan, if any.
 *
 * Point naming convention: `<subsystem>.<site>` — e.g.
 * `plan_cache.alloc`, `workspace_pool.acquire`, `thread_pool.task`,
 * `rns.batch.pack`. Data points name the buffer they may corrupt:
 * `rns.polymul.out`, `rns.batch.out`, `rns.fma.out`, `rns.add.out`.
 *
 * The service layer (src/net/) adds BYTE points via
 * MQX_FAULT_POINT_BYTES("name", data, &len): `net.accept` (control),
 * `net.read` / `net.write` / `net.frame` (byte buffers). Byte points
 * accept two extra actions — FlipBit corrupts one seeded bit of the
 * buffer (torn/garbage frames), ShortRead truncates the length to a
 * seeded prefix (short reads, torn writes) — so socket-level chaos
 * (disconnects, stalled writes, slow-loris partial frames) replays
 * deterministically from a plan seed instead of depending on kernel
 * buffer timing.
 *
 * Determinism: whether a hit fires is a pure function of
 * (plan seed, point name, per-point hit index) — no wall clock, no
 * global RNG — so a workload replayed with the same seed on one thread
 * fires the same faults in the same places. Tests install a plan for a
 * scope with ScopedFaultInjection and read back per-point hit/fire
 * counts afterwards.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/residue_span.h"
#include "robust/status.h"

#ifndef MQX_FAULT_INJECTION_ENABLED
#define MQX_FAULT_INJECTION_ENABLED 0
#endif

namespace mqx {
namespace robust {

enum class FaultAction : uint8_t {
    /** Throw InjectedFault (StatusError, code FaultInjected). */
    Throw,
    /** Throw std::bad_alloc, as a failed allocation would. */
    BadAlloc,
    /** Sleep for FaultSpec::stall_ns (exercises deadlines). */
    Stall,
    /** Flip one seeded bit of the span at a data point; ignored (hit
     *  counted, never fires) at non-data points. */
    FlipBit,
    /** Truncate a byte point's length to a seeded prefix (short
     *  read / torn write); ignored at non-byte points. */
    ShortRead,
};

const char* faultActionName(FaultAction action);

/** What an armed point does when it fires. */
struct FaultSpec {
    FaultAction action = FaultAction::Throw;
    /** Per-hit firing probability in [0, 1]; 1.0 = every hit. */
    double probability = 1.0;
    /** Stop firing after this many fires (UINT64_MAX = unbounded). */
    uint64_t max_fires = UINT64_MAX;
    /** Never fire on the first @p skip_hits hits of the point. */
    uint64_t skip_hits = 0;
    /** Stall duration for FaultAction::Stall. */
    uint64_t stall_ns = 100000;
};

/** Exception thrown by FaultAction::Throw. */
class InjectedFault : public StatusError
{
  public:
    explicit InjectedFault(const std::string& point)
        : StatusError(Status(StatusCode::FaultInjected,
                             "fault point '" + point + "' fired"))
    {
    }
};

/** A seeded set of armed fault points; install via ScopedFaultInjection. */
class FaultPlan
{
  public:
    explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}

    FaultPlan&
    arm(std::string point, FaultSpec spec)
    {
        specs_[std::move(point)] = spec;
        return *this;
    }

    uint64_t seed() const { return seed_; }
    const std::map<std::string, FaultSpec, std::less<>>&
    specs() const
    {
        return specs_;
    }

  private:
    uint64_t seed_;
    std::map<std::string, FaultSpec, std::less<>> specs_;
};

struct FaultPointStats {
    uint64_t hits = 0;
    uint64_t fires = 0;
};

namespace detail {

struct ActivePlan;

/** Fault-point entry hooks (called by the macros; never call directly). */
void faultHit(const char* point);
void faultHitData(const char* point, DSpan data);
/** Byte-buffer flavour (src/net/): may flip bits in data or shrink *len. */
void faultHitBytes(const char* point, unsigned char* data, size_t* len);

} // namespace detail

/**
 * Installs @p plan process-wide for this object's lifetime. Exactly one
 * injection scope may be active at a time (a second construction
 * throws). The caller must quiesce all injected workloads before the
 * scope ends — points hit after destruction are simply inert, but stats
 * are only meaningful for hits inside the scope.
 */
class ScopedFaultInjection
{
  public:
    explicit ScopedFaultInjection(FaultPlan plan);
    ~ScopedFaultInjection();

    ScopedFaultInjection(const ScopedFaultInjection&) = delete;
    ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

    /** Hit/fire counts for one armed point (zeros if never hit). */
    FaultPointStats stats(const std::string& point) const;

    /** Hit/fire counts for every armed point, keyed by name. */
    std::map<std::string, FaultPointStats> allStats() const;

    /** Total fires across all points. */
    uint64_t totalFired() const;

  private:
    detail::ActivePlan* state_;
};

/** True when the tree was built with -DMQX_FAULT_INJECTION=ON. */
constexpr bool
faultInjectionCompiledIn()
{
    return MQX_FAULT_INJECTION_ENABLED != 0;
}

} // namespace robust
} // namespace mqx

#if MQX_FAULT_INJECTION_ENABLED
#define MQX_FAULT_POINT(name) ::mqx::robust::detail::faultHit(name)
#define MQX_FAULT_POINT_DATA(name, span)                                      \
    ::mqx::robust::detail::faultHitData(name, span)
#define MQX_FAULT_POINT_BYTES(name, data, len_ptr)                            \
    ::mqx::robust::detail::faultHitBytes(                                     \
        name, reinterpret_cast<unsigned char*>(data), len_ptr)
#else
#define MQX_FAULT_POINT(name) ((void)0)
#define MQX_FAULT_POINT_DATA(name, span) ((void)0)
#define MQX_FAULT_POINT_BYTES(name, data, len_ptr) ((void)0)
#endif
