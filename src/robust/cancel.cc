#include "robust/cancel.h"

#include <string>

#include "telemetry/telemetry.h"

namespace mqx {
namespace robust {

namespace {

telemetry::Counter&
cancelRequestsCounter()
{
    static telemetry::Counter& c = telemetry::counter("cancel.requests");
    return c;
}

telemetry::Counter&
deadlineMissesCounter()
{
    static telemetry::Counter& c = telemetry::counter("cancel.deadline_misses");
    return c;
}

} // namespace

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

CancelToken
CancelToken::withDeadlineNs(uint64_t budget_ns)
{
    CancelToken token;
    token.state_->deadline_ns = telemetry::nowNs() + budget_ns;
    return token;
}

void
CancelToken::requestCancel() const
{
    uint8_t expected = 0;
    if (state_->code.compare_exchange_strong(
            expected, static_cast<uint8_t>(StatusCode::Cancelled),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
        cancelRequestsCounter().add(1);
    }
}

bool
CancelToken::cancelled() const
{
    if (state_->code.load(std::memory_order_acquire) != 0)
        return true;
    if (state_->deadline_ns != 0 && telemetry::nowNs() >= state_->deadline_ns) {
        uint8_t expected = 0;
        if (state_->code.compare_exchange_strong(
                expected, static_cast<uint8_t>(StatusCode::DeadlineExceeded),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
            deadlineMissesCounter().add(1);
        }
        return true;
    }
    return false;
}

Status
CancelToken::status() const
{
    if (!cancelled())
        return Status();
    const auto code = static_cast<StatusCode>(
        state_->code.load(std::memory_order_acquire));
    if (code == StatusCode::DeadlineExceeded)
        return Status(code, "deadline exceeded");
    return Status(code, "operation cancelled");
}

void
CancelToken::checkpoint(const char* where) const
{
    if (!cancelled())
        return;
    Status s = status();
    throw StatusError(
        Status(s.code(), s.message() + " at " + std::string(where)));
}

} // namespace robust
} // namespace mqx
