#include "robust/fault_injection.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <new>
#include <string_view>
#include <thread>

#include "bench_util/rng.h"
#include "core/config.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace robust {

namespace {

telemetry::Counter&
armedCounter()
{
    static telemetry::Counter& c = telemetry::counter("fault.armed");
    return c;
}

telemetry::Counter&
firedCounter()
{
    static telemetry::Counter& c = telemetry::counter("fault.fired");
    return c;
}

uint64_t
fnv1a(std::string_view s)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

const char*
faultActionName(FaultAction action)
{
    switch (action) {
    case FaultAction::Throw:
        return "throw";
    case FaultAction::BadAlloc:
        return "bad_alloc";
    case FaultAction::Stall:
        return "stall";
    case FaultAction::FlipBit:
        return "flip_bit";
    case FaultAction::ShortRead:
        return "short_read";
    }
    return "unknown";
}

namespace detail {

struct Entry {
    FaultSpec spec;
    uint64_t name_hash = 0;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
};

struct ActivePlan {
    uint64_t seed = 0;
    std::map<std::string, Entry, std::less<>> entries;
};

namespace {

/** The installed plan; null when no ScopedFaultInjection is live. */
std::atomic<ActivePlan*> g_active{nullptr};

/**
 * Threads currently inside a fault point. Pinned BEFORE the g_active
 * load, so any thread holding a plan pointer keeps this nonzero until
 * it is done; ~ScopedFaultInjection clears g_active and then waits for
 * zero before freeing the plan. A pin after the clear sees null and
 * unpins without touching the plan. seq_cst pairs with the destructor's
 * store-then-load: without it the g_active load could hoist above the
 * pin (or the destructor's count read above its clear) and the plan
 * could be freed mid-use.
 */
std::atomic<uint64_t> g_readers{0};

/** RAII pin; survives the Throw/BadAlloc exits out of a fault point. */
struct PlanPin {
    ActivePlan* plan;

    PlanPin()
    {
        g_readers.fetch_add(1, std::memory_order_seq_cst);
        plan = g_active.load(std::memory_order_seq_cst);
        if (!plan)
            g_readers.fetch_sub(1, std::memory_order_release);
    }
    ~PlanPin()
    {
        if (plan)
            g_readers.fetch_sub(1, std::memory_order_release);
    }
    PlanPin(const PlanPin&) = delete;
    PlanPin& operator=(const PlanPin&) = delete;
};

/**
 * Decide whether hit number @p hit of @p e fires, claiming a slot
 * against max_fires. Pure in (seed, name_hash, hit) apart from the
 * max_fires claim, which keeps total fires exact under concurrency.
 * @p rng is left seeded for the fire's payload (bit choice).
 */
bool
claimFire(const ActivePlan& plan, Entry& e, uint64_t hit, SplitMix64& rng)
{
    const FaultSpec& spec = e.spec;
    if (hit < spec.skip_hits)
        return false;
    rng = SplitMix64(plan.seed ^ e.name_hash ^
                     (hit + 1) * 0x9e3779b97f4a7c15ull);
    if (spec.probability < 1.0) {
        const double u =
            static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
        if (u >= spec.probability)
            return false;
    }
    const uint64_t prev = e.fires.fetch_add(1, std::memory_order_relaxed);
    if (prev >= spec.max_fires) {
        e.fires.fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    firedCounter().add(1);
    return true;
}

[[noreturn]] void
throwFor(FaultAction action, const std::string& point)
{
    if (action == FaultAction::BadAlloc)
        throw std::bad_alloc();
    throw InjectedFault(point);
}

} // namespace

void
faultHit(const char* point)
{
    PlanPin pin;
    ActivePlan* plan = pin.plan;
    if (!plan)
        return;
    auto it = plan->entries.find(std::string_view(point));
    if (it == plan->entries.end())
        return;
    Entry& e = it->second;
    const uint64_t hit = e.hits.fetch_add(1, std::memory_order_relaxed);
    // FlipBit/ShortRead need a buffer; at a control point they stay inert.
    if (e.spec.action == FaultAction::FlipBit ||
        e.spec.action == FaultAction::ShortRead)
        return;
    SplitMix64 rng(0);
    if (!claimFire(*plan, e, hit, rng))
        return;
    if (e.spec.action == FaultAction::Stall) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(e.spec.stall_ns));
        return;
    }
    throwFor(e.spec.action, it->first);
}

void
faultHitData(const char* point, DSpan data)
{
    PlanPin pin;
    ActivePlan* plan = pin.plan;
    if (!plan)
        return;
    auto it = plan->entries.find(std::string_view(point));
    if (it == plan->entries.end())
        return;
    Entry& e = it->second;
    const uint64_t hit = e.hits.fetch_add(1, std::memory_order_relaxed);
    // ShortRead needs a length to shrink; at a residue data point it is
    // inert (hit counted, never fires), like FlipBit at control points.
    if (e.spec.action == FaultAction::ShortRead)
        return;
    SplitMix64 rng(0);
    if (!claimFire(*plan, e, hit, rng))
        return;
    switch (e.spec.action) {
    case FaultAction::FlipBit: {
        if (data.n == 0)
            return;
        // Seeded choice over all 128 bits of every residue word.
        const uint64_t word = rng.next() % (2 * data.n);
        const uint64_t bit = rng.next() % 64;
        uint64_t* lane = word < data.n ? data.lo : data.hi;
        lane[word % data.n] ^= uint64_t{1} << bit;
        return;
    }
    case FaultAction::Stall:
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(e.spec.stall_ns));
        return;
    case FaultAction::ShortRead:
        return; // unreachable (filtered above); keeps the switch total
    case FaultAction::Throw:
    case FaultAction::BadAlloc:
        throwFor(e.spec.action, it->first);
    }
}

void
faultHitBytes(const char* point, unsigned char* data, size_t* len)
{
    PlanPin pin;
    ActivePlan* plan = pin.plan;
    if (!plan)
        return;
    auto it = plan->entries.find(std::string_view(point));
    if (it == plan->entries.end())
        return;
    Entry& e = it->second;
    const uint64_t hit = e.hits.fetch_add(1, std::memory_order_relaxed);
    SplitMix64 rng(0);
    if (!claimFire(*plan, e, hit, rng))
        return;
    switch (e.spec.action) {
    case FaultAction::FlipBit: {
        if (*len == 0)
            return;
        const uint64_t byte = rng.next() % *len;
        data[byte] ^= static_cast<unsigned char>(
            1u << (rng.next() % 8));
        return;
    }
    case FaultAction::ShortRead: {
        // Truncate to a seeded strict prefix: the peer sees a torn
        // frame (write side) or the decoder a partial one (read side).
        if (*len == 0)
            return;
        *len = static_cast<size_t>(rng.next() % *len);
        return;
    }
    case FaultAction::Stall:
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(e.spec.stall_ns));
        return;
    case FaultAction::Throw:
    case FaultAction::BadAlloc:
        throwFor(e.spec.action, it->first);
    }
}

} // namespace detail

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan) : state_(nullptr)
{
    auto holder = std::make_unique<detail::ActivePlan>();
    holder->seed = plan.seed();
    for (const auto& [name, spec] : plan.specs()) {
        detail::Entry& e = holder->entries[name];
        e.spec = spec;
        e.name_hash = fnv1a(name);
    }
    detail::ActivePlan* expected = nullptr;
    checkArg(detail::g_active.compare_exchange_strong(
                 expected, holder.get(), std::memory_order_acq_rel,
                 std::memory_order_acquire),
             "ScopedFaultInjection: another fault-injection scope is active");
    state_ = holder.release();
    armedCounter().add(static_cast<uint64_t>(plan.specs().size()));
}

ScopedFaultInjection::~ScopedFaultInjection()
{
    // Disarm, then drain: a fault point that pinned before the clear
    // may still hold the plan pointer; freeing it out from under that
    // thread is a use-after-free. The wait is bounded by the longest
    // single fault action (a Stall sleeps stall_ns at most).
    detail::g_active.store(nullptr, std::memory_order_seq_cst);
    while (detail::g_readers.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
    delete state_;
}

FaultPointStats
ScopedFaultInjection::stats(const std::string& point) const
{
    auto it = state_->entries.find(point);
    if (it == state_->entries.end())
        return {};
    return {it->second.hits.load(std::memory_order_relaxed),
            it->second.fires.load(std::memory_order_relaxed)};
}

std::map<std::string, FaultPointStats>
ScopedFaultInjection::allStats() const
{
    std::map<std::string, FaultPointStats> out;
    for (const auto& [name, e] : state_->entries) {
        out[name] = {e.hits.load(std::memory_order_relaxed),
                     e.fires.load(std::memory_order_relaxed)};
    }
    return out;
}

uint64_t
ScopedFaultInjection::totalFired() const
{
    uint64_t total = 0;
    for (const auto& [name, e] : state_->entries)
        total += e.fires.load(std::memory_order_relaxed);
    return total;
}

} // namespace robust
} // namespace mqx
