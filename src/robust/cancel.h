/**
 * @file
 * Cooperative cancellation + deadlines for engine pipelines (ISSUE 9).
 *
 * A CancelToken is a cheap, copyable handle to shared cancellation
 * state. Producers call requestCancel() (or construct the token with a
 * deadline); consumers poll cancelled() at natural boundaries — the
 * ThreadPool checks before dispatching each parallelFor task, and the
 * staged polymul/fma channel bodies check between NTT stages
 * (forward → pointwise → inverse) — so a deadline that expires
 * mid-pipeline aborts within one stage rather than running the op to
 * completion. Abort is by exception (`StatusError` with Cancelled or
 * DeadlineExceeded), so RAII workspace leases unwind and the pool stays
 * consistent.
 *
 * Deadlines use telemetry::nowNs() (steady clock). The first observer
 * of an expired deadline latches the state to DeadlineExceeded and
 * bumps the `cancel.deadline_misses` counter exactly once; explicit
 * requestCancel() bumps `cancel.requests`. Polling a token with neither
 * a cancel request nor a deadline is one relaxed atomic load.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "robust/status.h"

namespace mqx {
namespace robust {

class CancelToken
{
  public:
    /** Token that never expires on its own; cancel via requestCancel(). */
    CancelToken();

    /** Token that trips @p budget_ns from now (telemetry::nowNs units). */
    static CancelToken withDeadlineNs(uint64_t budget_ns);

    /** Latch the token to Cancelled (idempotent, thread-safe). */
    void requestCancel() const;

    /**
     * True once cancelled or past the deadline. The expiry check is
     * lazy: the first caller to observe it latches DeadlineExceeded.
     */
    bool cancelled() const;

    /** OK while live; Cancelled / DeadlineExceeded once tripped. */
    Status status() const;

    /**
     * Throw StatusError(status()) when cancelled; no-op otherwise.
     * @p where names the pipeline stage for the error message.
     */
    void checkpoint(const char* where) const;

    bool hasDeadline() const { return state_->deadline_ns != 0; }

  private:
    struct State {
        /** 0 = live, else the uint8_t value of the tripped StatusCode. */
        std::atomic<uint8_t> code{0};
        /** Absolute telemetry::nowNs() deadline; 0 = none. */
        uint64_t deadline_ns = 0;
    };

    std::shared_ptr<State> state_;
};

} // namespace robust
} // namespace mqx
