/**
 * @file
 * Algebraic integrity checks for RNS kernel output (ISSUE 9 tentpole).
 *
 * Freivalds-style verification of negacyclic polymul: for c = a·b in
 * Z_q[x]/(x^n + 1), evaluate both sides at a point r = psi^(2j+1) — a
 * root of x^n + 1 (psi is the primitive 2n-th root the twist tables are
 * built from), so the ring reduction term vanishes and
 * a(r)·b(r) = c(r) holds *exactly* for correct output. The check is
 * O(n) (one pointwise multiply against a cached powers-of-r table plus
 * a horizontal mod-q sum per operand) versus the O(n log n) transform
 * it guards.
 *
 * Detection: a corrupted word c'[k] = c[k] ± 2^b perturbs c(r) by
 * δ·r^k with δ ≢ 0 (a power of two is never a multiple of an odd
 * prime q) and r invertible — so *any* single flipped residue word is
 * caught deterministically, at every evaluation point. The random
 * choice of j (drawn once per (q, n, seed) from VerifyOptions::seed)
 * only matters for adversarially structured multi-word errors, where
 * the miss probability is ≤ (terms)/n per channel.
 *
 * The guard-digest check covers linear ops the same way a guard prime
 * would without widening the basis: digest(p) = Σ p[i] mod q is linear,
 * so digest(a + b) = digest(a) + digest(b), and a single flipped word
 * shifts the digest by ±2^b mod q ≠ 0.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "core/residue_span.h"
#include "mod/modulus.h"
#include "u128/u128.h"

namespace mqx {
namespace robust {

enum class VerifyPolicy : uint8_t {
    /** No checks (default; zero overhead). */
    Off,
    /** Check every channel of every sample_period-th engine op. */
    Sample,
    /** Check every channel of every op. */
    Always,
};

const char* verifyPolicyName(VerifyPolicy policy);

/** Engine-level verification configuration (EngineOptions::verify). */
struct VerifyOptions {
    VerifyPolicy policy = VerifyPolicy::Off;
    /** Sample: check ops whose sequence number is ≡ 0 (mod this). */
    uint32_t sample_period = 8;
    /** Serial-path recompute attempts before DataCorruption surfaces. */
    uint32_t max_retries = 2;
    /** Seeds the per-(q, n) evaluation-point draw. */
    uint64_t seed = 0x5eedf00dcafe1234ull;
    /** Also digest-check linear ops (Engine::add). */
    bool guard_digest = false;
};

/**
 * Cached evaluation point for one (q, n, seed): r = psi^(2j+1) and the
 * table powers[i] = r^i used to evaluate polynomials with one pointwise
 * vmul. Built lazily on first check of a channel shape and shared
 * process-wide.
 */
struct EvalPoint {
    U128 r;
    ResidueVector powers;
};

std::shared_ptr<const EvalPoint> evalPointFor(const Modulus& m,
                                              const U128& psi, size_t n,
                                              uint64_t seed);

/** p(pt.r) mod q; tolerates out-of-range (corrupted) words in p. */
U128 evalAt(Backend backend, const Modulus& m, DConstSpan p,
            const EvalPoint& pt);

/** True iff a(r)·b(r) == c(r) at the cached point for (q, n, seed). */
bool checkNegacyclicPolymul(Backend backend, const Modulus& m,
                            const U128& psi, DConstSpan a, DConstSpan b,
                            DConstSpan c, uint64_t seed);

/** True iff Σ a_i(r)·b_i(r) == c(r) — the fused dot-product identity. */
bool checkNegacyclicFma(
    Backend backend, const Modulus& m, const U128& psi,
    const std::vector<std::pair<DConstSpan, DConstSpan>>& products,
    DConstSpan c, uint64_t seed);

/** Σ p[i] mod q — the linear guard digest of one channel. */
U128 channelDigest(const Modulus& m, DConstSpan p);

/** True iff digest(c) == digest(a) + digest(b) mod q. */
bool checkAddDigest(const Modulus& m, DConstSpan a, DConstSpan b,
                    DConstSpan c);

} // namespace robust
} // namespace mqx
