/**
 * @file
 * Typed error taxonomy for engine operations (ISSUE 9, ROADMAP item 1).
 *
 * The async polymul server needs to distinguish "caller gave up"
 * (Cancelled / DeadlineExceeded — drop the request), "kernel output
 * failed an integrity check and could not be repaired" (DataCorruption
 * — page someone), and "transient resource pressure"
 * (ResourceExhausted — retry with backoff). A bare std::runtime_error
 * collapses all of those into one catch block, so engine entry points
 * surface failures as `StatusError` carrying a `Status` with one of the
 * codes below. `Status` itself is a cheap value type usable on
 * non-throwing paths (the planned server's response codes).
 */
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace mqx {
namespace robust {

enum class StatusCode : uint8_t {
    Ok = 0,
    /** Caller requested cancellation via CancelToken::requestCancel(). */
    Cancelled,
    /** A CancelToken deadline expired while the operation was in flight. */
    DeadlineExceeded,
    /** An integrity check failed and bounded retries did not repair it. */
    DataCorruption,
    /** Allocation or pool capacity failure (maps std::bad_alloc). */
    ResourceExhausted,
    /** A fault-injection point fired (test builds only). */
    FaultInjected,
    /** Invariant violation that is a bug in mqx itself. */
    Internal,
    /**
     * The caller's request is malformed (bad shape, residues >= q,
     * unsupported wire version). Maps mqx::InvalidArgument at the
     * service boundary; never retryable — resending the same bytes
     * cannot succeed.
     */
    InvalidArgument,
};

inline const char*
statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "OK";
    case StatusCode::Cancelled:
        return "CANCELLED";
    case StatusCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
    case StatusCode::DataCorruption:
        return "DATA_CORRUPTION";
    case StatusCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
    case StatusCode::FaultInjected:
        return "FAULT_INJECTED";
    case StatusCode::Internal:
        return "INTERNAL";
    case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
    }
    return "UNKNOWN";
}

/**
 * True for codes a client may retry with backoff: transient resource
 * pressure (ResourceExhausted) and injected test faults (FaultInjected —
 * transient by construction). Cancelled/DeadlineExceeded mean the
 * request's budget is gone, DataCorruption needs a human, Internal is a
 * bug, and InvalidArgument will fail identically every time.
 */
inline bool
statusRetryable(StatusCode code)
{
    return code == StatusCode::ResourceExhausted ||
           code == StatusCode::FaultInjected;
}

/** Value-type result code + human-readable detail. */
class Status
{
  public:
    Status() = default;
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * Exception carrier for a non-OK Status. Derives from
 * std::runtime_error so existing catch sites keep working; new code
 * should catch StatusError first and branch on status().code().
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    const Status& status() const { return status_; }

  private:
    Status status_;
};

[[noreturn]] inline void
throwStatus(StatusCode code, std::string message)
{
    throw StatusError(Status(code, std::move(message)));
}

} // namespace robust
} // namespace mqx
