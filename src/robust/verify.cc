#include "robust/verify.h"

#include <map>
#include <mutex>
#include <tuple>

#include "bench_util/rng.h"
#include "blas/blas.h"
#include "core/config.h"

namespace mqx {
namespace robust {

const char*
verifyPolicyName(VerifyPolicy policy)
{
    switch (policy) {
    case VerifyPolicy::Off:
        return "off";
    case VerifyPolicy::Sample:
        return "sample";
    case VerifyPolicy::Always:
        return "always";
    }
    return "unknown";
}

namespace {

using EvalKey = std::tuple<uint64_t, uint64_t, size_t, uint64_t>;

std::mutex&
cacheMutex()
{
    static std::mutex m;
    return m;
}

std::map<EvalKey, std::shared_ptr<const EvalPoint>>&
evalCache()
{
    static auto& cache =
        *new std::map<EvalKey, std::shared_ptr<const EvalPoint>>();
    return cache;
}

/** Per-thread vmul destination so checks allocate only on growth. */
ResidueVector&
evalScratch(size_t n)
{
    thread_local ResidueVector scratch;
    scratch.ensure(n);
    return scratch;
}

/**
 * Horizontal mod-q sum of a span. The hot loop is branch-free native
 * adds: each lane accumulates mod 2^64 with a carry count, so the exact
 * span sum is
 *     lo_sum + 2^64·(lo_carry + hi_sum) + 2^128·hi_carry,
 * folded mod q with O(1) modular ops at the end. Corrupted words may
 * lie anywhere in [0, 2^128) — the raw sum absorbs them and the final
 * reduction is exact regardless.
 */
U128
modSum(const Modulus& m, DConstSpan p)
{
    uint64_t lo_sum = 0, lo_carry = 0, hi_sum = 0, hi_carry = 0;
    for (size_t i = 0; i < p.n; ++i) {
        lo_sum += p.lo[i];
        lo_carry += lo_sum < p.lo[i] ? 1 : 0;
        hi_sum += p.hi[i];
        hi_carry += hi_sum < p.hi[i] ? 1 : 0;
    }
    // mid = lo_carry + hi_sum is the 2^64 coefficient; it can itself
    // wrap one bit past 64, so carry it into a U128 before reducing.
    const uint64_t mid_lo = lo_carry + hi_sum;
    const uint64_t mid_hi = mid_lo < hi_sum ? 1 : 0;
    const U128 t64 = m.reduce(U128::fromParts(1, 0)); // 2^64 mod q
    const U128 t128 = m.mul(t64, t64);                // 2^128 mod q
    U128 acc = m.reduce(U128::fromParts(mid_hi, mid_lo));
    acc = m.mul(acc, t64);
    acc = m.add(acc, m.reduce(U128::fromParts(0, lo_sum)));
    return m.add(acc, m.mul(m.reduce(U128::fromParts(0, hi_carry)), t128));
}

} // namespace

std::shared_ptr<const EvalPoint>
evalPointFor(const Modulus& m, const U128& psi, size_t n, uint64_t seed)
{
    checkArg(n > 0, "evalPointFor: empty channel");
    const EvalKey key{m.value().hi, m.value().lo, n, seed};
    {
        std::lock_guard<std::mutex> lock(cacheMutex());
        auto it = evalCache().find(key);
        if (it != evalCache().end())
            return it->second;
    }
    // Build outside the lock; a racing duplicate build is harmless.
    auto pt = std::make_shared<EvalPoint>();
    SplitMix64 rng(seed ^ m.value().hi ^ m.value().lo ^
                   (static_cast<uint64_t>(n) * 0x9e3779b97f4a7c15ull));
    const uint64_t j = rng.next() % n;
    pt->r = m.pow(psi, U128::fromParts(0, 2 * j + 1));
    pt->powers.ensure(n);
    U128 power = U128::fromParts(0, 1);
    for (size_t i = 0; i < n; ++i) {
        pt->powers.set(i, power);
        power = m.mul(power, pt->r);
    }
    std::lock_guard<std::mutex> lock(cacheMutex());
    auto [it, inserted] = evalCache().emplace(key, std::move(pt));
    (void)inserted;
    return it->second;
}

U128
evalAt(Backend backend, const Modulus& m, DConstSpan p, const EvalPoint& pt)
{
    checkArg(p.n == pt.powers.size(), "evalAt: length mismatch");
    ResidueVector& scratch = evalScratch(p.n);
    blas::vmul(backend, m, p, pt.powers.span(), scratch.span());
    return modSum(m, scratch.span());
}

bool
checkNegacyclicPolymul(Backend backend, const Modulus& m, const U128& psi,
                       DConstSpan a, DConstSpan b, DConstSpan c,
                       uint64_t seed)
{
    auto pt = evalPointFor(m, psi, a.n, seed);
    const U128 ea = evalAt(backend, m, a, *pt);
    const U128 eb = evalAt(backend, m, b, *pt);
    const U128 ec = evalAt(backend, m, c, *pt);
    return m.mul(ea, eb) == ec;
}

bool
checkNegacyclicFma(
    Backend backend, const Modulus& m, const U128& psi,
    const std::vector<std::pair<DConstSpan, DConstSpan>>& products,
    DConstSpan c, uint64_t seed)
{
    auto pt = evalPointFor(m, psi, c.n, seed);
    U128 acc = U128::fromParts(0, 0);
    for (const auto& [a, b] : products) {
        const U128 ea = evalAt(backend, m, a, *pt);
        const U128 eb = evalAt(backend, m, b, *pt);
        acc = m.add(acc, m.mul(ea, eb));
    }
    return acc == evalAt(backend, m, c, *pt);
}

U128
channelDigest(const Modulus& m, DConstSpan p)
{
    return modSum(m, p);
}

bool
checkAddDigest(const Modulus& m, DConstSpan a, DConstSpan b, DConstSpan c)
{
    return channelDigest(m, c) ==
           m.add(channelDigest(m, a), channelDigest(m, b));
}

} // namespace robust
} // namespace mqx
