/**
 * @file
 * Scalar BLAS kernels using the native 128-bit modular arithmetic
 * (Section 3.1's benchmarking variant).
 */
#include "blas/blas_backends.h"

namespace mqx {
namespace blas {
namespace backends {

void
vaddScalar(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    checkArg(a.n == b.n && a.n == c.n, "vadd: length mismatch");
    for (size_t i = 0; i < a.n; ++i) {
        U128 r = m.add(U128::fromParts(a.hi[i], a.lo[i]),
                       U128::fromParts(b.hi[i], b.lo[i]));
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

void
vsubScalar(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    checkArg(a.n == b.n && a.n == c.n, "vsub: length mismatch");
    for (size_t i = 0; i < a.n; ++i) {
        U128 r = m.sub(U128::fromParts(a.hi[i], a.lo[i]),
                       U128::fromParts(b.hi[i], b.lo[i]));
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

void
vmulScalar(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c,
           MulAlgo algo)
{
    checkArg(a.n == b.n && a.n == c.n, "vmul: length mismatch");
    const auto& br = m.barrett();
    for (size_t i = 0; i < a.n; ++i) {
        mod::DW<uint64_t> da{a.hi[i], a.lo[i]}, db{b.hi[i], b.lo[i]};
        auto r = algo == MulAlgo::Schoolbook
                     ? mod::mulModSchool(da, db, br)
                     : mod::mulModKaratsuba(da, db, br);
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

void
axpyScalar(const Modulus& m, const U128& alpha, DConstSpan x, DSpan y,
           MulAlgo algo)
{
    checkArg(x.n == y.n, "axpy: length mismatch");
    const auto& br = m.barrett();
    const mod::DW<uint64_t> da = mod::toDw(alpha);
    for (size_t i = 0; i < x.n; ++i) {
        mod::DW<uint64_t> dx{x.hi[i], x.lo[i]};
        auto t = algo == MulAlgo::Schoolbook
                     ? mod::mulModSchool(da, dx, br)
                     : mod::mulModKaratsuba(da, dx, br);
        U128 r = m.add(mod::fromDw(t), U128::fromParts(y.hi[i], y.lo[i]));
        y.hi[i] = r.hi;
        y.lo[i] = r.lo;
    }
}


void
gemvScalar(const Modulus& m, DConstSpan matrix, DConstSpan x, DSpan y,
           size_t rows, size_t cols, MulAlgo algo)
{
    checkArg(matrix.n == rows * cols, "gemv: matrix size mismatch");
    checkArg(x.n == cols && y.n == rows, "gemv: vector size mismatch");
    const auto& br = m.barrett();
    for (size_t r = 0; r < rows; ++r) {
        const uint64_t* row_hi = matrix.hi + r * cols;
        const uint64_t* row_lo = matrix.lo + r * cols;
        U128 acc{0};
        for (size_t j = 0; j < cols; ++j) {
            mod::DW<uint64_t> da{row_hi[j], row_lo[j]};
            mod::DW<uint64_t> dx{x.hi[j], x.lo[j]};
            auto t = algo == MulAlgo::Schoolbook
                         ? mod::mulModSchool(da, dx, br)
                         : mod::mulModKaratsuba(da, dx, br);
            acc = m.add(acc, mod::fromDw(t));
        }
        y.hi[r] = acc.hi;
        y.lo[r] = acc.lo;
    }
}

} // namespace backends
} // namespace blas
} // namespace mqx
