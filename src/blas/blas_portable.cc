/**
 * @file
 * Portable-ISA BLAS kernels (plain C++ model of the SIMD dataflow).
 */
#include "blas/blas_backends.h"

#include "simd/batch_impl.h"
#include "simd/isa_portable.h"

namespace mqx {
namespace blas {
namespace backends {

void
vaddPortable(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    simd::vaddImpl<simd::PortableIsa>(m, a, b, c);
}

void
vsubPortable(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    simd::vsubImpl<simd::PortableIsa>(m, a, b, c);
}

void
vmulPortable(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c,
             MulAlgo algo)
{
    simd::vmulImpl<simd::PortableIsa>(m, a, b, c, algo);
}

void
axpyPortable(const Modulus& m, const U128& alpha, DConstSpan x, DSpan y,
             MulAlgo algo)
{
    simd::axpyImpl<simd::PortableIsa>(m, alpha, x, y, algo);
}


void
gemvPortable(const Modulus& m, DConstSpan matrix, DConstSpan x, DSpan y,
         size_t rows, size_t cols, MulAlgo algo)
{
    simd::gemvImpl<simd::PortableIsa>(m, matrix, x, y, rows, cols, algo);
}

} // namespace backends
} // namespace blas
} // namespace mqx
