/**
 * @file
 * Public BLAS dispatch over the backend tiers.
 */
#include "blas/blas.h"

#include "blas/blas_backends.h"
#include "core/config.h"

namespace mqx {
namespace blas {

namespace {

void
requireAvailable(Backend backend)
{
    if (!backendAvailable(backend)) {
        throw BackendUnavailable("BLAS backend not available on this host: " +
                                 backendName(backend));
    }
}

[[noreturn]] void
notCompiled(Backend backend)
{
    throw BackendUnavailable("BLAS backend not compiled in: " +
                             backendName(backend));
}

} // namespace

std::string
opName(Op op)
{
    switch (op) {
      case Op::VectorAdd:
        return "vector add";
      case Op::VectorSub:
        return "vector sub";
      case Op::VectorMul:
        return "vector mul";
      case Op::Axpy:
        return "axpy";
    }
    return "unknown";
}

void
vadd(Backend backend, const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        return backends::vaddScalar(m, a, b, c);
      case Backend::Portable:
        return backends::vaddPortable(m, a, b, c);
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        return backends::vaddAvx2(m, a, b, c);
#else
        notCompiled(backend);
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        return backends::vaddAvx512(m, a, b, c);
#else
        notCompiled(backend);
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        return backends::vaddMqx(false, m, a, b, c);
#else
        notCompiled(backend);
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        return backends::vaddMqx(true, m, a, b, c);
#else
        notCompiled(backend);
#endif
    }
    notCompiled(backend);
}

void
vsub(Backend backend, const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        return backends::vsubScalar(m, a, b, c);
      case Backend::Portable:
        return backends::vsubPortable(m, a, b, c);
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        return backends::vsubAvx2(m, a, b, c);
#else
        notCompiled(backend);
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        return backends::vsubAvx512(m, a, b, c);
#else
        notCompiled(backend);
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        return backends::vsubMqx(false, m, a, b, c);
#else
        notCompiled(backend);
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        return backends::vsubMqx(true, m, a, b, c);
#else
        notCompiled(backend);
#endif
    }
    notCompiled(backend);
}

void
vmul(Backend backend, const Modulus& m, DConstSpan a, DConstSpan b, DSpan c,
     MulAlgo algo)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        return backends::vmulScalar(m, a, b, c, algo);
      case Backend::Portable:
        return backends::vmulPortable(m, a, b, c, algo);
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        return backends::vmulAvx2(m, a, b, c, algo);
#else
        notCompiled(backend);
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        return backends::vmulAvx512(m, a, b, c, algo);
#else
        notCompiled(backend);
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        return backends::vmulMqx(false, m, a, b, c, algo);
#else
        notCompiled(backend);
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        return backends::vmulMqx(true, m, a, b, c, algo);
#else
        notCompiled(backend);
#endif
    }
    notCompiled(backend);
}

void
axpy(Backend backend, const Modulus& m, const U128& alpha, DConstSpan x,
     DSpan y, MulAlgo algo)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        return backends::axpyScalar(m, alpha, x, y, algo);
      case Backend::Portable:
        return backends::axpyPortable(m, alpha, x, y, algo);
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        return backends::axpyAvx2(m, alpha, x, y, algo);
#else
        notCompiled(backend);
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        return backends::axpyAvx512(m, alpha, x, y, algo);
#else
        notCompiled(backend);
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        return backends::axpyMqx(false, m, alpha, x, y, algo);
#else
        notCompiled(backend);
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        return backends::axpyMqx(true, m, alpha, x, y, algo);
#else
        notCompiled(backend);
#endif
    }
    notCompiled(backend);
}


void
gemv(Backend backend, const Modulus& m, DConstSpan matrix, DConstSpan x,
     DSpan y, size_t rows, size_t cols, MulAlgo algo)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        return backends::gemvScalar(m, matrix, x, y, rows, cols, algo);
      case Backend::Portable:
        return backends::gemvPortable(m, matrix, x, y, rows, cols, algo);
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        return backends::gemvAvx2(m, matrix, x, y, rows, cols, algo);
#else
        notCompiled(backend);
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        return backends::gemvAvx512(m, matrix, x, y, rows, cols, algo);
#else
        notCompiled(backend);
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        return backends::gemvMqx(false, m, matrix, x, y, rows, cols, algo);
#else
        notCompiled(backend);
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        return backends::gemvMqx(true, m, matrix, x, y, rows, cols, algo);
#else
        notCompiled(backend);
#endif
    }
    notCompiled(backend);
}

void
runOp(Op op, Backend backend, const Modulus& m, DConstSpan a, DConstSpan b,
      DSpan c, MulAlgo algo)
{
    switch (op) {
      case Op::VectorAdd:
        return vadd(backend, m, a, b, c);
      case Op::VectorSub:
        return vsub(backend, m, a, b, c);
      case Op::VectorMul:
        return vmul(backend, m, a, b, c, algo);
      case Op::Axpy: {
        // axpy updates in place: c must already contain y (= b's values);
        // alpha is the first element of a.
        checkArg(a.n >= 1, "runOp(axpy): empty alpha source");
        U128 alpha = U128::fromParts(a.hi[0], a.lo[0]);
        return axpy(backend, m, alpha, b, c, algo);
      }
    }
    throw InvalidArgument("runOp: unknown op");
}

} // namespace blas
} // namespace mqx
