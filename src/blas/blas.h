/**
 * @file
 * BLAS-style point-wise kernels over Z_q residue vectors (paper
 * Section 2.3 / 5.3): vector addition, vector subtraction, point-wise
 * vector multiplication, and axpy. Each is available on every backend
 * tier the paper evaluates.
 *
 * Vectors use the split hi/lo layout (core/residue_span.h); lengths are
 * arbitrary (the paper benchmarks length 1024).
 *
 * Aliasing: the output span may EXACTLY alias an input span (c == a or
 * c == b, in-place operation) — every backend processes one block (or
 * one element) at a time and loads its inputs before storing the
 * result. Partial overlaps are undefined; the layer above
 * (ntt::NegacyclicEngine's span API) rejects them.
 */
#pragma once

#include "core/backend.h"
#include "core/residue_span.h"
#include "mod/modulus.h"

namespace mqx {
namespace blas {

/** The four benchmarked operations (Fig. 4). */
enum class Op
{
    VectorAdd,
    VectorSub,
    VectorMul,
    Axpy,
};

/** Figure-4 label for @p op. */
std::string opName(Op op);

/** c[i] = a[i] + b[i] mod q. @throws BackendUnavailable, InvalidArgument. */
void vadd(Backend backend, const Modulus& m, DConstSpan a, DConstSpan b,
          DSpan c);

/** c[i] = a[i] - b[i] mod q. */
void vsub(Backend backend, const Modulus& m, DConstSpan a, DConstSpan b,
          DSpan c);

/** c[i] = a[i] * b[i] mod q (point-wise). */
void vmul(Backend backend, const Modulus& m, DConstSpan a, DConstSpan b,
          DSpan c, MulAlgo algo = MulAlgo::Schoolbook);

/** y[i] = alpha * x[i] + y[i] mod q. */
void axpy(Backend backend, const Modulus& m, const U128& alpha, DConstSpan x,
          DSpan y, MulAlgo algo = MulAlgo::Schoolbook);

/**
 * y = A x mod q (BLAS-2 gemv; Section 2.3 frames point-wise vector
 * multiplication as its special case). @p matrix is row-major
 * rows x cols in split hi/lo layout.
 */
void gemv(Backend backend, const Modulus& m, DConstSpan matrix, DConstSpan x,
          DSpan y, size_t rows, size_t cols,
          MulAlgo algo = MulAlgo::Schoolbook);

/**
 * Run @p op through the common 3-operand shape used by the benchmark
 * harness (axpy takes a[0] as alpha and writes into c, which must hold a
 * copy of b).
 */
void runOp(Op op, Backend backend, const Modulus& m, DConstSpan a,
           DConstSpan b, DSpan c, MulAlgo algo = MulAlgo::Schoolbook);

} // namespace blas
} // namespace mqx
