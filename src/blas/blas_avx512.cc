/**
 * @file
 * AVX-512 BLAS kernels (compiled with AVX-512 flags).
 */
#include "blas/blas_backends.h"

#include "simd/batch_impl.h"
#include "simd/isa_avx512.h"

namespace mqx {
namespace blas {
namespace backends {

void
vaddAvx512(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    simd::vaddImpl<simd::Avx512Isa>(m, a, b, c);
}

void
vsubAvx512(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    simd::vsubImpl<simd::Avx512Isa>(m, a, b, c);
}

void
vmulAvx512(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c,
           MulAlgo algo)
{
    simd::vmulImpl<simd::Avx512Isa>(m, a, b, c, algo);
}

void
axpyAvx512(const Modulus& m, const U128& alpha, DConstSpan x, DSpan y,
           MulAlgo algo)
{
    simd::axpyImpl<simd::Avx512Isa>(m, alpha, x, y, algo);
}


void
gemvAvx512(const Modulus& m, DConstSpan matrix, DConstSpan x, DSpan y,
         size_t rows, size_t cols, MulAlgo algo)
{
    simd::gemvImpl<simd::Avx512Isa>(m, matrix, x, y, rows, cols, algo);
}

} // namespace backends
} // namespace blas
} // namespace mqx
