/**
 * @file
 * AVX2 BLAS kernels (compiled with -mavx2).
 */
#include "blas/blas_backends.h"

#include "simd/batch_impl.h"
#include "simd/isa_avx2.h"

namespace mqx {
namespace blas {
namespace backends {

void
vaddAvx2(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    simd::vaddImpl<simd::Avx2Isa>(m, a, b, c);
}

void
vsubAvx2(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    simd::vsubImpl<simd::Avx2Isa>(m, a, b, c);
}

void
vmulAvx2(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c, MulAlgo algo)
{
    simd::vmulImpl<simd::Avx2Isa>(m, a, b, c, algo);
}

void
axpyAvx2(const Modulus& m, const U128& alpha, DConstSpan x, DSpan y,
         MulAlgo algo)
{
    simd::axpyImpl<simd::Avx2Isa>(m, alpha, x, y, algo);
}


void
gemvAvx2(const Modulus& m, DConstSpan matrix, DConstSpan x, DSpan y,
         size_t rows, size_t cols, MulAlgo algo)
{
    simd::gemvImpl<simd::Avx2Isa>(m, matrix, x, y, rows, cols, algo);
}

} // namespace backends
} // namespace blas
} // namespace mqx
