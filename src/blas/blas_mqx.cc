/**
 * @file
 * MQX BLAS kernels: Table-2 emulation (correct) and PISA proxy (timing)
 * modes, full feature set.
 */
#include "blas/blas_backends.h"

#include "mqxisa/isa_mqx.h"
#include "simd/batch_impl.h"

namespace mqx {
namespace blas {
namespace backends {

namespace {

using mqxisa::MqxIsa;
using mqxisa::MqxMode;

using EmuIsa = MqxIsa<MqxMode::Emulate>;
using PisaIsa = MqxIsa<MqxMode::Pisa>;

} // namespace

void
vaddMqx(bool pisa, const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    if (pisa)
        simd::vaddImpl<PisaIsa>(m, a, b, c);
    else
        simd::vaddImpl<EmuIsa>(m, a, b, c);
}

void
vsubMqx(bool pisa, const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    if (pisa)
        simd::vsubImpl<PisaIsa>(m, a, b, c);
    else
        simd::vsubImpl<EmuIsa>(m, a, b, c);
}

void
vmulMqx(bool pisa, const Modulus& m, DConstSpan a, DConstSpan b, DSpan c,
        MulAlgo algo)
{
    if (pisa)
        simd::vmulImpl<PisaIsa>(m, a, b, c, algo);
    else
        simd::vmulImpl<EmuIsa>(m, a, b, c, algo);
}

void
axpyMqx(bool pisa, const Modulus& m, const U128& alpha, DConstSpan x, DSpan y,
        MulAlgo algo)
{
    if (pisa)
        simd::axpyImpl<PisaIsa>(m, alpha, x, y, algo);
    else
        simd::axpyImpl<EmuIsa>(m, alpha, x, y, algo);
}


void
gemvMqx(bool pisa, const Modulus& m, DConstSpan matrix, DConstSpan x, DSpan y,
        size_t rows, size_t cols, MulAlgo algo)
{
    if (pisa)
        simd::gemvImpl<PisaIsa>(m, matrix, x, y, rows, cols, algo);
    else
        simd::gemvImpl<EmuIsa>(m, matrix, x, y, rows, cols, algo);
}

} // namespace backends
} // namespace blas
} // namespace mqx
