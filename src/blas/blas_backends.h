/**
 * @file
 * Internal per-backend BLAS entry points (one TU per ISA). Not public.
 */
#pragma once

#include "core/backend.h"
#include "core/residue_span.h"
#include "mod/modulus.h"

namespace mqx {
namespace blas {
namespace backends {

// Scalar (native 128-bit words).
void vaddScalar(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vsubScalar(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vmulScalar(const Modulus&, DConstSpan, DConstSpan, DSpan, MulAlgo);
void axpyScalar(const Modulus&, const U128&, DConstSpan, DSpan, MulAlgo);
void gemvScalar(const Modulus&, DConstSpan, DConstSpan, DSpan, size_t,
                size_t, MulAlgo);

// Portable 8-lane model.
void vaddPortable(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vsubPortable(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vmulPortable(const Modulus&, DConstSpan, DConstSpan, DSpan, MulAlgo);
void axpyPortable(const Modulus&, const U128&, DConstSpan, DSpan, MulAlgo);
void gemvPortable(const Modulus&, DConstSpan, DConstSpan, DSpan, size_t,
                  size_t, MulAlgo);

// AVX2.
void vaddAvx2(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vsubAvx2(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vmulAvx2(const Modulus&, DConstSpan, DConstSpan, DSpan, MulAlgo);
void axpyAvx2(const Modulus&, const U128&, DConstSpan, DSpan, MulAlgo);
void gemvAvx2(const Modulus&, DConstSpan, DConstSpan, DSpan, size_t, size_t,
              MulAlgo);

// AVX-512.
void vaddAvx512(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vsubAvx512(const Modulus&, DConstSpan, DConstSpan, DSpan);
void vmulAvx512(const Modulus&, DConstSpan, DConstSpan, DSpan, MulAlgo);
void axpyAvx512(const Modulus&, const U128&, DConstSpan, DSpan, MulAlgo);
void gemvAvx512(const Modulus&, DConstSpan, DConstSpan, DSpan, size_t,
                size_t, MulAlgo);

// MQX (full feature set); pisa selects the proxy timing mode.
void vaddMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan, DSpan);
void vsubMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan, DSpan);
void vmulMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan, DSpan,
             MulAlgo);
void axpyMqx(bool pisa, const Modulus&, const U128&, DConstSpan, DSpan,
             MulAlgo);
void gemvMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan, DSpan,
             size_t, size_t, MulAlgo);

} // namespace backends
} // namespace blas
} // namespace mqx
