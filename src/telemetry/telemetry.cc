/**
 * @file
 * Telemetry registry, snapshot/trace exporters, and the trace buffer.
 */
#include "telemetry/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace mqx {
namespace telemetry {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace {

bool
envDisabled()
{
    const char* env = std::getenv("MQX_TELEMETRY");
    if (!env)
        return false;
    return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "OFF") == 0;
}

std::atomic<bool>&
enabledFlag()
{
    static std::atomic<bool> flag{compiledIn() && !envDisabled()};
    return flag;
}

/**
 * Name-interned counters and span sites. Entries are unique_ptrs so
 * the references handed out stay stable across rehashes, and they are
 * never erased; std::map keeps snapshot key order deterministic.
 */
struct Registry
{
    mutable std::shared_mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
    std::map<std::string, std::unique_ptr<SpanSite>, std::less<>> spans;
    std::map<uint32_t, std::string> thread_names;

    static Registry&
    instance()
    {
        static Registry* reg = new Registry(); // never destroyed: sites
                                               // outlive static dtors
        return *reg;
    }
};

template <typename Map, typename Make>
auto&
findOrCreate(Map& map, std::string_view name, std::shared_mutex& mutex,
             Make make)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex);
        auto it = map.find(name);
        if (it != map.end())
            return *it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex);
    auto it = map.find(name);
    if (it == map.end())
        it = map.emplace(std::string(name), make()).first;
    return *it->second;
}

// ---------------------------------------------------------------------------
// Trace buffer: a fixed ring claimed with one atomic fetch_add per
// event. Each slot flips a ready flag with release semantics after its
// payload is written, so the exporter (acquire) never reads a
// half-written event; events past capacity are counted and dropped.
// ---------------------------------------------------------------------------

struct TraceSlot
{
    const char* name = nullptr;
    uint32_t tid = 0;
    uint64_t start_ns = 0;
    uint64_t dur_ns = 0;
    std::atomic<uint32_t> ready{0};
};

struct TraceBuffer
{
    std::atomic<bool> on{false};
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> dropped{0};
    std::vector<TraceSlot> slots;

    static TraceBuffer&
    instance()
    {
        static TraceBuffer* buf = new TraceBuffer();
        return *buf;
    }
};

uint32_t
laneId()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t lane =
        next.fetch_add(1, std::memory_order_relaxed);
    return lane;
}

void
appendJsonEscaped(std::string& out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
}

} // namespace

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(compiledIn() && on, std::memory_order_relaxed);
}

Counter&
counter(std::string_view name)
{
    Registry& reg = Registry::instance();
    return findOrCreate(reg.counters, name, reg.mutex,
                        [] { return std::make_unique<Counter>(); });
}

SpanSite&
spanSite(std::string_view name)
{
    Registry& reg = Registry::instance();
    return findOrCreate(reg.spans, name, reg.mutex, [&] {
        return std::make_unique<SpanSite>(std::string(name));
    });
}

void
Histogram::mergeCounts(std::array<uint64_t, kBuckets>& out) const
{
    out.fill(0);
    for (const Shard& s : shards_) {
        for (size_t i = 0; i < kBuckets; ++i) {
            uint64_t c = s.buckets[i].load(std::memory_order_relaxed);
            if (c)
                out[i] += c;
        }
    }
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::array<uint64_t, kBuckets> counts;
    mergeCounts(counts);
    HistogramSnapshot snap;
    for (uint64_t c : counts)
        snap.count += c;
    for (const Shard& s : shards_)
        snap.sum_ns += s.sum.load(std::memory_order_relaxed);
    snap.max_ns = max_.load(std::memory_order_relaxed);
    if (snap.count == 0)
        return snap;

    auto rank_value = [&](double q) -> uint64_t {
        uint64_t target = static_cast<uint64_t>(
            q * static_cast<double>(snap.count) + 0.9999999);
        target = std::max<uint64_t>(1, std::min(target, snap.count));
        uint64_t cum = 0;
        for (size_t i = 0; i < kBuckets; ++i) {
            cum += counts[i];
            if (cum >= target) {
                uint64_t lo, hi;
                bucketBounds(i, lo, hi);
                return hi;
            }
        }
        return snap.max_ns;
    };
    snap.p50_ns = rank_value(0.50);
    snap.p95_ns = rank_value(0.95);
    snap.p99_ns = rank_value(0.99);
    return snap;
}

uint64_t
Histogram::quantile(double q) const
{
    std::array<uint64_t, kBuckets> counts;
    mergeCounts(counts);
    uint64_t total = 0;
    for (uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0;
    uint64_t target = static_cast<uint64_t>(
        q * static_cast<double>(total) + 0.9999999);
    target = std::max<uint64_t>(1, std::min(target, total));
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        cum += counts[i];
        if (cum >= target) {
            uint64_t lo, hi;
            bucketBounds(i, lo, hi);
            return hi;
        }
    }
    return max_.load(std::memory_order_relaxed);
}

void
Histogram::reset()
{
    for (Shard& s : shards_) {
        for (auto& b : s.buckets)
            b.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
    }
    max_.store(0, std::memory_order_relaxed);
}

void
enableTracing(size_t capacity)
{
    TraceBuffer& buf = TraceBuffer::instance();
    buf.on.store(false, std::memory_order_relaxed);
    buf.slots = std::vector<TraceSlot>(std::max<size_t>(1, capacity));
    buf.next.store(0, std::memory_order_relaxed);
    buf.dropped.store(0, std::memory_order_relaxed);
    buf.on.store(true, std::memory_order_release);
}

void
disableTracing()
{
    TraceBuffer::instance().on.store(false, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return TraceBuffer::instance().on.load(std::memory_order_relaxed);
}

void
traceAppend(const char* name, uint64_t start_ns, uint64_t dur_ns)
{
    TraceBuffer& buf = TraceBuffer::instance();
    if (!buf.on.load(std::memory_order_acquire))
        return;
    const size_t idx = buf.next.fetch_add(1, std::memory_order_relaxed);
    if (idx >= buf.slots.size()) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    TraceSlot& slot = buf.slots[idx];
    slot.name = name;
    slot.tid = laneId();
    slot.start_ns = start_ns;
    slot.dur_ns = dur_ns;
    slot.ready.store(1, std::memory_order_release);
}

void
setThreadName(std::string name)
{
    Registry& reg = Registry::instance();
    std::unique_lock<std::shared_mutex> lock(reg.mutex);
    reg.thread_names[laneId()] = std::move(name);
}

std::string
traceJson()
{
    TraceBuffer& buf = TraceBuffer::instance();
    Registry& reg = Registry::instance();
    std::string out;
    out += "{\"traceEvents\": [";
    bool first = true;
    {
        std::shared_lock<std::shared_mutex> lock(reg.mutex);
        for (const auto& [lane, name] : reg.thread_names) {
            if (!first)
                out += ",";
            first = false;
            out += "\n  {\"ph\": \"M\", \"pid\": 1, \"tid\": " +
                   std::to_string(lane) +
                   ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
            appendJsonEscaped(out, name);
            out += "\"}}";
        }
    }
    const size_t used =
        std::min(buf.next.load(std::memory_order_relaxed), buf.slots.size());
    for (size_t i = 0; i < used; ++i) {
        const TraceSlot& slot = buf.slots[i];
        if (!slot.ready.load(std::memory_order_acquire))
            continue; // claimed but not yet written; skip
        if (!first)
            out += ",";
        first = false;
        // Chrome's "X" (complete) event; timestamps are microseconds
        // with the nanosecond remainder as three fractional digits.
        char stamp[64];
        std::snprintf(stamp, sizeof(stamp),
                      "\"ts\": %llu.%03llu, \"dur\": %llu.%03llu}",
                      static_cast<unsigned long long>(slot.start_ns / 1000),
                      static_cast<unsigned long long>(slot.start_ns % 1000),
                      static_cast<unsigned long long>(slot.dur_ns / 1000),
                      static_cast<unsigned long long>(slot.dur_ns % 1000));
        out += "\n  {\"ph\": \"X\", \"pid\": 1, \"tid\": " +
               std::to_string(slot.tid) + ", \"name\": \"";
        appendJsonEscaped(out, slot.name);
        out += "\", \"cat\": \"mqx\", ";
        out += stamp;
    }
    out += "\n], \"displayTimeUnit\": \"ns\", \"dropped_events\": " +
           std::to_string(buf.dropped.load(std::memory_order_relaxed)) +
           "}\n";
    return out;
}

std::string
snapshotJson()
{
    Registry& reg = Registry::instance();
    std::string out;
    out += "{\n  \"telemetry\": {\"compiled\": ";
    out += compiledIn() ? "true" : "false";
    out += ", \"enabled\": ";
    out += enabled() ? "true" : "false";
    out += "},\n  \"counters\": {";
    std::shared_lock<std::shared_mutex> lock(reg.mutex);
    bool first = true;
    for (const auto& [name, c] : reg.counters) {
        if (!first)
            out += ",";
        first = false;
        out += "\n    \"";
        appendJsonEscaped(out, name);
        out += "\": " + std::to_string(c->value());
    }
    out += "\n  },\n  \"spans\": {";
    first = true;
    for (const auto& [name, site] : reg.spans) {
        HistogramSnapshot s = site->hist.snapshot();
        if (!first)
            out += ",";
        first = false;
        out += "\n    \"";
        appendJsonEscaped(out, name);
        out += "\": {\"count\": " + std::to_string(s.count) +
               ", \"sum_ns\": " + std::to_string(s.sum_ns) +
               ", \"self_ns\": " + std::to_string(site->self_ns.value()) +
               ", \"p50_ns\": " + std::to_string(s.p50_ns) +
               ", \"p95_ns\": " + std::to_string(s.p95_ns) +
               ", \"p99_ns\": " + std::to_string(s.p99_ns) +
               ", \"max_ns\": " + std::to_string(s.max_ns) + "}";
    }
    out += "\n  }\n}\n";
    return out;
}

void
resetAll()
{
    Registry& reg = Registry::instance();
    std::shared_lock<std::shared_mutex> lock(reg.mutex);
    for (const auto& [name, c] : reg.counters)
        c->reset();
    for (const auto& [name, site] : reg.spans) {
        site->hist.reset();
        site->self_ns.reset();
    }
    TraceBuffer& buf = TraceBuffer::instance();
    buf.next.store(0, std::memory_order_relaxed);
    buf.dropped.store(0, std::memory_order_relaxed);
    for (TraceSlot& slot : buf.slots)
        slot.ready.store(0, std::memory_order_relaxed);
}

} // namespace telemetry
} // namespace mqx
