/**
 * @file
 * Kernel-level telemetry: a process-wide registry of named counters and
 * log-bucketed latency histograms, RAII timing spans with parent/child
 * attribution, and a bounded in-memory trace buffer exportable as
 * Chrome trace_event JSON.
 *
 * Design contract (the overhead budget the bench guard enforces):
 *
 *  - Counters are ALWAYS compiled. A bump is one relaxed atomic add on
 *    a per-thread shard (no cache-line ping-pong between pool workers),
 *    cheap enough that the layout/pool/plan-cache accounting stays on
 *    unconditionally — exactly like the old layout_metrics hooks.
 *  - Spans and histograms are the expensive part (two clock reads plus
 *    a histogram record per span). The MQX_SCOPED_SPAN instrumentation
 *    macro compiles to nothing when the build sets MQX_TELEMETRY=OFF
 *    (MQX_TELEMETRY_ENABLED=0), and when compiled in it still honours a
 *    runtime kill switch (setEnabled / the MQX_TELEMETRY env var), so a
 *    single binary can measure its own overhead.
 *  - Spans are placed at kernel-phase granularity (a whole transform, a
 *    whole point-wise pass, a transpose sweep) — microseconds of work
 *    per ~50 ns of instrumentation — never inside butterfly loops.
 *
 * Histogram quantile error: buckets are logarithmic with 2^kSubBits
 * linear sub-buckets per octave, so a reported quantile q satisfies
 * true_q <= q <= true_q + true_q/8 + 1 (12.5% relative, exact below 8).
 *
 * Attribution: spans nest through a thread-local stack; each span's
 * SELF time (duration minus same-thread child span durations) is
 * accumulated per site, so the self times of a span tree partition the
 * root's duration exactly — examples/telemetry_report.cpp sums them to
 * attribute a workload's wall time to named phases.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#ifndef MQX_TELEMETRY_ENABLED
#define MQX_TELEMETRY_ENABLED 1
#endif

namespace mqx {
namespace telemetry {

/** Monotonic nanoseconds (std::chrono::steady_clock). */
uint64_t nowNs();

/** True when the span/histogram layer was compiled in (MQX_TELEMETRY). */
constexpr bool
compiledIn()
{
    return MQX_TELEMETRY_ENABLED != 0;
}

/**
 * Runtime recording switch for the span layer (counters ignore it —
 * they are the always-on accounting tier). Defaults to on unless the
 * MQX_TELEMETRY environment variable is "0" or "off".
 */
bool enabled();
void setEnabled(bool on);

/** Small power-of-two shard count; one relaxed slot per thread group. */
constexpr size_t kCounterShards = 8;

/** Stable per-thread shard index in [0, kCounterShards). */
inline unsigned
threadShard()
{
    static std::atomic<unsigned> next{0};
    thread_local const unsigned shard =
        next.fetch_add(1, std::memory_order_relaxed) &
        (kCounterShards - 1);
    return shard;
}

/**
 * A named monotonic counter, sharded across cache lines so concurrent
 * pool workers never contend on one atomic. value() sums the shards;
 * reset() is for single-threaded test/bench sections only.
 */
class Counter
{
  public:
    void
    add(uint64_t v)
    {
        shards_[threadShard()].v.fetch_add(v, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const Shard& s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void
    reset()
    {
        for (Shard& s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Shard, kCounterShards> shards_{};
};

/** Aggregated view of one histogram (all quantiles in ns). */
struct HistogramSnapshot
{
    uint64_t count = 0;
    uint64_t sum_ns = 0;
    uint64_t max_ns = 0;
    uint64_t p50_ns = 0;
    uint64_t p95_ns = 0;
    uint64_t p99_ns = 0;
};

/**
 * Log-bucketed latency histogram: 8 linear sub-buckets per power of
 * two, covering the whole uint64 nanosecond range in 496 buckets.
 * Recording is one relaxed add into a per-thread-shard bucket plus a
 * relaxed max update; quantiles are computed on demand by merging the
 * shards (snapshot-time cost, not hot-path cost).
 */
class Histogram
{
  public:
    static constexpr unsigned kSubBits = 3; ///< 8 sub-buckets per octave
    static constexpr unsigned kSub = 1u << kSubBits;
    // Small values 0..kSub-1 get exact buckets, then each msb in
    // [kSubBits, 63] contributes kSub buckets: indices run up to
    // ((63 - kSubBits + 1) << kSubBits) | (kSub - 1) = 495.
    static constexpr size_t kBuckets = ((64 - kSubBits) << kSubBits) + kSub;
    static constexpr size_t kShards = 4;

    /** Bucket holding @p v; continuous, exact for v < 8. */
    static size_t
    bucketIndex(uint64_t v)
    {
        if (v < kSub)
            return static_cast<size_t>(v);
        const unsigned msb =
            63u - static_cast<unsigned>(__builtin_clzll(v));
        const unsigned shift = msb - kSubBits;
        return (static_cast<size_t>(msb - kSubBits + 1) << kSubBits) |
               static_cast<size_t>((v >> shift) & (kSub - 1));
    }

    /** Inclusive [lower, upper] value range of bucket @p i. */
    static void
    bucketBounds(size_t i, uint64_t& lower, uint64_t& upper)
    {
        if (i < kSub) {
            lower = upper = static_cast<uint64_t>(i);
            return;
        }
        const uint64_t block = i >> kSubBits; // >= 1
        const uint64_t sub = i & (kSub - 1);
        const unsigned msb = static_cast<unsigned>(block) + kSubBits - 1;
        const uint64_t width = uint64_t{1} << (msb - kSubBits);
        lower = (uint64_t{1} << msb) + sub * width;
        upper = lower + width - 1;
    }

    void
    record(uint64_t ns)
    {
        Shard& s = shards_[threadShard() & (kShards - 1)];
        s.buckets[bucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(ns, std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (ns > prev &&
               !max_.compare_exchange_weak(prev, ns,
                                           std::memory_order_relaxed)) {
        }
    }

    /** Merge the shards and derive count/sum/max/p50/p95/p99. */
    HistogramSnapshot snapshot() const;

    /**
     * Upper bound of the bucket holding the rank-ceil(q*count) value
     * (the quantile convention the snapshot fields use). 0 when empty.
     */
    uint64_t quantile(double q) const;

    /** Zero every bucket (single-threaded sections only). */
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<uint64_t>, kBuckets> buckets{};
        std::atomic<uint64_t> sum{0};
    };

    void mergeCounts(std::array<uint64_t, kBuckets>& out) const;

    std::array<Shard, kShards> shards_{};
    std::atomic<uint64_t> max_{0};
};

/**
 * One instrumentation site: the latency histogram plus the accumulated
 * SELF time (duration minus same-thread child span durations). Sites
 * are interned in the registry by name and never deallocated, so a
 * function-local static reference is safe from any thread.
 */
struct SpanSite
{
    explicit SpanSite(std::string site_name)
        : name(std::move(site_name))
    {
    }
    const std::string name;
    Histogram hist;
    Counter self_ns;
};

/**
 * The registry entry points: find-or-create by name. References stay
 * valid for the life of the process (entries are never removed; reset
 * zeroes values, not identities).
 */
Counter& counter(std::string_view name);
SpanSite& spanSite(std::string_view name);

/** Append one completed span to the trace buffer (no-op when off). */
void traceAppend(const char* name, uint64_t start_ns, uint64_t dur_ns);

/**
 * RAII timing span. Construction snapshots the clock and pushes onto
 * the thread-local span stack; destruction records the duration into
 * the site histogram, the self time (duration minus child durations)
 * into the site self counter, charges the duration to the parent span,
 * and appends a trace event when tracing is on. When recording is
 * disabled at runtime the constructor does a single atomic load and
 * nothing else. Use via MQX_SCOPED_SPAN so MQX_TELEMETRY=OFF builds
 * compile the whole thing away.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(SpanSite& site)
    {
        if (!enabled())
            return;
        site_ = &site;
        parent_ = tl_current;
        tl_current = this;
        start_ = nowNs();
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    ~ScopedSpan()
    {
        if (!site_)
            return;
        const uint64_t dur = nowNs() - start_;
        site_->hist.record(dur);
        site_->self_ns.add(dur > child_ns_ ? dur - child_ns_ : 0);
        if (parent_)
            parent_->child_ns_ += dur;
        tl_current = parent_;
        traceAppend(site_->name.c_str(), start_, dur);
    }

  private:
    inline static thread_local ScopedSpan* tl_current = nullptr;

    SpanSite* site_ = nullptr;
    ScopedSpan* parent_ = nullptr;
    uint64_t start_ = 0;
    uint64_t child_ns_ = 0;
};

/**
 * Bounded in-memory tracing. enableTracing() allocates a fixed ring of
 * @p capacity events and starts recording (events past capacity are
 * dropped, never reallocated); call it before the workload, not while
 * spans are running. traceJson() renders the Chrome trace_event format
 * that chrome://tracing and Perfetto load, one lane per thread.
 */
void enableTracing(size_t capacity);
void disableTracing();
bool tracingEnabled();
std::string traceJson();

/** Name this thread's trace lane (pool workers self-register). */
void setThreadName(std::string name);

/**
 * One JSON document with every registered counter and span site:
 * {"telemetry": {...}, "counters": {name: value},
 *  "spans": {name: {count, sum_ns, self_ns, p50_ns, p95_ns, p99_ns,
 *                   max_ns}}}.
 * Keys are sorted, so snapshots diff cleanly.
 */
std::string snapshotJson();

/** Zero every counter, histogram, and the trace buffer (tests/bench). */
void resetAll();

} // namespace telemetry
} // namespace mqx

/**
 * Instrumentation macro: a named RAII span, compiled away entirely in
 * MQX_TELEMETRY=OFF builds. The site lookup happens once per call site
 * (function-local static), so steady-state cost is the two clock reads
 * plus the histogram record.
 */
#if MQX_TELEMETRY_ENABLED
#define MQX_SCOPED_SPAN(var, name_literal)                                   \
    static ::mqx::telemetry::SpanSite& var##_site =                          \
        ::mqx::telemetry::spanSite(name_literal);                            \
    ::mqx::telemetry::ScopedSpan var(var##_site)
#else
#define MQX_SCOPED_SPAN(var, name_literal) ((void)0)
#endif
