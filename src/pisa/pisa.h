/**
 * @file
 * PISA — performance projection using proxy ISA (paper Section 4.2).
 *
 * PISA estimates the performance of a not-yet-implemented instruction by
 * substituting the structurally-closest existing instruction and
 * measuring real hardware. This module provides:
 *
 *  - the MQX proxy registry (Table 3),
 *  - the validation experiments (Table 5): apply the same methodology to
 *    *existing* instruction pairs where ground truth is measurable, and
 *  - the relative-error metric (Eq. 12) used in Table 6.
 *
 * For each validation pair we build the full NTT kernel twice: once with
 * the target instruction (ground truth) and once with its proxy
 * substituted. Both versions execute the same surrounding code; only the
 * instruction under study changes (the proxy build computes wrong values
 * by design, exactly as in the paper).
 */
#pragma once

#include <string>
#include <vector>

#include "core/backend.h"
#include "ntt/plan.h"

namespace mqx {
namespace pisa {

/** One target->proxy instruction mapping. */
struct ProxyMapping
{
    std::string target; ///< instruction being modeled
    std::string proxy;  ///< existing instruction standing in for it
    std::string note;   ///< why the proxy is structurally faithful
};

/** Table 3: the MQX instructions and their AVX-512 proxies. */
const std::vector<ProxyMapping>& mqxProxyTable();

/** The Table-5 validation experiments. */
enum class ValidationPair
{
    Avx2WideningMul, ///< _mm256_mul_epu32 vs _mm256_mullo_epi32
    Avx512MaskAdd,   ///< _mm512_mask_add_epi64 vs _mm512_add_epi64
    Avx512MaskSub,   ///< _mm512_mask_sub_epi64 vs _mm512_sub_epi64
};

/** All validation pairs in Table-5 order. */
std::vector<ValidationPair> validationPairs();

/** The Table-5 mapping for @p pair. */
ProxyMapping validationMapping(ValidationPair pair);

/**
 * Run one NTT with either the target instruction (ground truth) or the
 * proxy substituted (@p use_proxy). Backend is AVX2 for the widening-mul
 * pair and AVX-512 for the masked-op pairs.
 *
 * @throws BackendUnavailable if the needed ISA is absent.
 */
void runValidationNtt(ValidationPair pair, bool use_proxy,
                      const ntt::NttPlan& plan, DConstSpan in, DSpan out,
                      DSpan scratch);

/**
 * Relative error of a PISA projection (Eq. 12):
 * (t_target - t_proxy) / t_target * 100. Negative = PISA conservative.
 */
double relativeErrorPct(double t_target_ns, double t_proxy_ns);

} // namespace pisa
} // namespace mqx
