/**
 * @file
 * PISA validation, AVX-512 pairs (Table 5 rows 2-3): masked add/subtract
 * are the ground-truth instructions inside the NTT; the proxy builds
 * replace them with the plain add/subtract. Mirrors the conservative
 * methodology used for MQX's adc/sbb proxies: "we insert an extra
 * instruction and guard the output with volatile to preserve data
 * dependencies on the mask register" — here the proxy op simply ignores
 * the mask (wrong values, same instruction class and count).
 */
#include "ntt/pease_impl.h"
#include "pisa/pisa.h"
#include "simd/isa_avx512.h"

namespace mqx {
namespace pisa {
namespace detail {

namespace {

/** Avx512Isa with maskAdd proxied by the plain vector add. */
struct ProxyMaskAddIsa : simd::Avx512Isa
{
    static V
    maskAdd(V src, M m, V a, V b)
    {
        (void)src;
        (void)m;
        return _mm512_add_epi64(a, b);
    }
};

/** Avx512Isa with maskSub proxied by the plain vector subtract. */
struct ProxyMaskSubIsa : simd::Avx512Isa
{
    static V
    maskSub(V src, M m, V a, V b)
    {
        (void)src;
        (void)m;
        return _mm512_sub_epi64(a, b);
    }
};

} // namespace

void
runAvx512MaskAddNtt(bool use_proxy, const ntt::NttPlan& plan, DConstSpan in,
                    DSpan out, DSpan scratch)
{
    if (use_proxy)
        ntt::peaseForwardImpl<ProxyMaskAddIsa>(plan, in, out, scratch);
    else
        ntt::peaseForwardImpl<simd::Avx512Isa>(plan, in, out, scratch);
}

void
runAvx512MaskSubNtt(bool use_proxy, const ntt::NttPlan& plan, DConstSpan in,
                    DSpan out, DSpan scratch)
{
    if (use_proxy)
        ntt::peaseForwardImpl<ProxyMaskSubIsa>(plan, in, out, scratch);
    else
        ntt::peaseForwardImpl<simd::Avx512Isa>(plan, in, out, scratch);
}

} // namespace detail
} // namespace pisa
} // namespace mqx
