/**
 * @file
 * PISA validation, AVX2 pair (Table 5 row 1): the existing widening
 * multiply _mm256_mul_epu32 is the ground truth; the proxy build
 * replaces every occurrence inside the NTT's 64-bit widening multiply
 * with _mm256_mullo_epi32 — mirroring exactly how Table 3 models
 * _mm512_mul_epi64 with _mm512_mullo_epi64. Proxy results are wrong by
 * design; only timing is compared.
 */
#include "ntt/pease_impl.h"
#include "pisa/pisa.h"
#include "simd/isa_avx2.h"

namespace mqx {
namespace pisa {
namespace detail {

namespace {

/** Avx2Isa with the widening multiply's mul_epu32 swapped for mullo. */
struct Avx2ProxyMulIsa : simd::Avx2Isa
{
    static void
    mulWide(V a, V b, V& hi, V& lo)
    {
        const V mask32 = _mm256_set1_epi64x(0xffffffffll);
        V a_hi = _mm256_srli_epi64(a, 32);
        V b_hi = _mm256_srli_epi64(b, 32);
        // Proxy substitution: _mm256_mullo_epi32 in place of
        // _mm256_mul_epu32 (same operand shape, wrong numerics).
        V p0 = _mm256_mullo_epi32(a, b);
        V p1 = _mm256_mullo_epi32(a_hi, b);
        V p2 = _mm256_mullo_epi32(a, b_hi);
        V p3 = _mm256_mullo_epi32(a_hi, b_hi);
        V mid = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64(p0, 32),
                             _mm256_and_si256(p1, mask32)),
            _mm256_and_si256(p2, mask32));
        hi = _mm256_add_epi64(
            _mm256_add_epi64(p3, _mm256_srli_epi64(mid, 32)),
            _mm256_add_epi64(_mm256_srli_epi64(p1, 32),
                             _mm256_srli_epi64(p2, 32)));
        lo = _mm256_or_si256(_mm256_and_si256(p0, mask32),
                             _mm256_slli_epi64(mid, 32));
    }
};

} // namespace

void
runAvx2WideningMulNtt(bool use_proxy, const ntt::NttPlan& plan, DConstSpan in,
                      DSpan out, DSpan scratch)
{
    if (use_proxy)
        ntt::peaseForwardImpl<Avx2ProxyMulIsa>(plan, in, out, scratch);
    else
        ntt::peaseForwardImpl<simd::Avx2Isa>(plan, in, out, scratch);
}

} // namespace detail
} // namespace pisa
} // namespace mqx
