/**
 * @file
 * PISA registry and dispatch.
 */
#include "pisa/pisa.h"

#include "core/config.h"

namespace mqx {
namespace pisa {

// Implemented in the ISA-flagged TUs.
namespace detail {
void runAvx2WideningMulNtt(bool use_proxy, const ntt::NttPlan&, DConstSpan,
                           DSpan, DSpan);
void runAvx512MaskAddNtt(bool use_proxy, const ntt::NttPlan&, DConstSpan,
                         DSpan, DSpan);
void runAvx512MaskSubNtt(bool use_proxy, const ntt::NttPlan&, DConstSpan,
                         DSpan, DSpan);
} // namespace detail

const std::vector<ProxyMapping>&
mqxProxyTable()
{
    static const std::vector<ProxyMapping> table = {
        {"_mm512_mul_epi64", "_mm512_mullo_epi64",
         "widening multiply modeled by the existing 64-bit multiply-low"},
        {"_mm512_adc_epi64", "_mm512_mask_add_epi64",
         "add-with-carry modeled by a masked vector add"},
        {"_mm512_sbb_epi64", "_mm512_mask_sub_epi64",
         "subtract-with-borrow modeled by a masked vector subtract"},
    };
    return table;
}

std::vector<ValidationPair>
validationPairs()
{
    return {ValidationPair::Avx2WideningMul, ValidationPair::Avx512MaskAdd,
            ValidationPair::Avx512MaskSub};
}

ProxyMapping
validationMapping(ValidationPair pair)
{
    switch (pair) {
      case ValidationPair::Avx2WideningMul:
        return {"_mm256_mul_epu32", "_mm256_mullo_epi32",
                "existing AVX2 widening multiply as ground truth"};
      case ValidationPair::Avx512MaskAdd:
        return {"_mm512_mask_add_epi64", "_mm512_add_epi64",
                "masked add modeled by the plain add"};
      case ValidationPair::Avx512MaskSub:
        return {"_mm512_mask_sub_epi64", "_mm512_sub_epi64",
                "masked subtract modeled by the plain subtract"};
    }
    throw InvalidArgument("validationMapping: unknown pair");
}

void
// All parameters after `pair` are consumed only inside the ISA-gated
// blocks; a portable-only build preprocesses every use away.
runValidationNtt(ValidationPair pair, [[maybe_unused]] bool use_proxy,
                 [[maybe_unused]] const ntt::NttPlan& plan,
                 [[maybe_unused]] DConstSpan in, [[maybe_unused]] DSpan out,
                 [[maybe_unused]] DSpan scratch)
{
    switch (pair) {
      case ValidationPair::Avx2WideningMul:
#if MQX_BUILD_AVX2
        if (backendAvailable(Backend::Avx2)) {
            detail::runAvx2WideningMulNtt(use_proxy, plan, in, out, scratch);
            return;
        }
#endif
        throw BackendUnavailable("PISA validation needs AVX2");
      case ValidationPair::Avx512MaskAdd:
#if MQX_BUILD_AVX512
        if (backendAvailable(Backend::Avx512)) {
            detail::runAvx512MaskAddNtt(use_proxy, plan, in, out, scratch);
            return;
        }
#endif
        throw BackendUnavailable("PISA validation needs AVX-512");
      case ValidationPair::Avx512MaskSub:
#if MQX_BUILD_AVX512
        if (backendAvailable(Backend::Avx512)) {
            detail::runAvx512MaskSubNtt(use_proxy, plan, in, out, scratch);
            return;
        }
#endif
        throw BackendUnavailable("PISA validation needs AVX-512");
    }
    throw InvalidArgument("runValidationNtt: unknown pair");
}

double
relativeErrorPct(double t_target_ns, double t_proxy_ns)
{
    checkArg(t_target_ns > 0.0, "relativeErrorPct: non-positive target time");
    return (t_target_ns - t_proxy_ns) / t_target_ns * 100.0;
}

} // namespace pisa
} // namespace mqx
