/**
 * @file
 * GMP baseline implementation (mpz_t arithmetic).
 */
#include "baseline/gmp_kernels.h"

#if MQX_WITH_GMP

#include <gmp.h>

#include "mod/modulus.h"

namespace mqx {
namespace baseline {

namespace {

void
setU128(mpz_t out, const U128& v)
{
    mpz_set_ui(out, static_cast<unsigned long>(v.hi));
    mpz_mul_2exp(out, out, 64);
    mpz_add_ui(out, out, static_cast<unsigned long>(v.lo));
}

U128
getU128(const mpz_t v)
{
    mpz_t hi, lo;
    mpz_init(hi);
    mpz_init(lo);
    mpz_fdiv_q_2exp(hi, v, 64);
    mpz_fdiv_r_2exp(lo, v, 64);
    U128 r = U128::fromParts(mpz_get_ui(hi), mpz_get_ui(lo));
    mpz_clear(hi);
    mpz_clear(lo);
    return r;
}

} // namespace

/** mpz_t is an array type and cannot live in std::vector directly. */
struct MpzHolder
{
    mpz_t v;
};

struct GmpKernels::Impl
{
    mpz_t q;
    size_t n = 0;
    int logn = 0;
    std::vector<MpzHolder> pow_fwd;
    std::vector<MpzHolder> pow_inv;
    mpz_t n_inv;
    // Scratch residues reused across calls.
    mutable mpz_t t0, t1;

    explicit Impl(const U128& modulus)
    {
        mpz_init(q);
        setU128(q, modulus);
        mpz_init(n_inv);
        mpz_init2(t0, 256);
        mpz_init2(t1, 256);
    }

    ~Impl()
    {
        mpz_clear(q);
        mpz_clear(n_inv);
        mpz_clear(t0);
        mpz_clear(t1);
        for (auto& p : pow_fwd)
            mpz_clear(p.v);
        for (auto& p : pow_inv)
            mpz_clear(p.v);
    }
};

GmpKernels::GmpKernels(const U128& q) : impl_(new Impl(q)) {}

GmpKernels::GmpKernels(const ntt::NttPrime& prime, size_t n)
    : impl_(new Impl(prime.q))
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "GmpKernels: n must be a power of two");
    impl_->n = n;
    for (size_t t = n; t > 1; t >>= 1)
        ++impl_->logn;

    Modulus fast(prime.q);
    U128 omega = ntt::rootOfUnity(fast, U128{static_cast<uint64_t>(n)});
    U128 omega_inv = fast.inverse(omega);
    setU128(impl_->n_inv, fast.inverse(U128{static_cast<uint64_t>(n)}));

    impl_->pow_fwd.resize(n);
    impl_->pow_inv.resize(n);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < n; ++i) {
        mpz_init2(impl_->pow_fwd[i].v, 130);
        mpz_init2(impl_->pow_inv[i].v, 130);
        setU128(impl_->pow_fwd[i].v, acc_f);
        setU128(impl_->pow_inv[i].v, acc_i);
        acc_f = fast.mul(acc_f, omega);
        acc_i = fast.mul(acc_i, omega_inv);
    }
}

GmpKernels::~GmpKernels() { delete impl_; }

namespace {

void
gmpTransform(const GmpKernels::Impl* impl, std::vector<MpzHolder>& data,
             const std::vector<MpzHolder>& pow)
{
    size_t n = impl->n;
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (int b = 0; b < impl->logn; ++b)
            r |= ((i >> b) & 1) << (impl->logn - 1 - b);
        if (r > i)
            mpz_swap(data[i].v, data[r].v);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        size_t step = n / len;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < len / 2; ++j) {
                size_t lo = i + j, hi_idx = i + j + len / 2;
                // v = data[hi] * w mod q
                mpz_mul(impl->t0, data[hi_idx].v, pow[step * j].v);
                mpz_mod(impl->t0, impl->t0, impl->q);
                // data[hi] = u - v mod q; data[lo] = u + v mod q
                mpz_sub(impl->t1, data[lo].v, impl->t0);
                if (mpz_sgn(impl->t1) < 0)
                    mpz_add(impl->t1, impl->t1, impl->q);
                mpz_add(data[lo].v, data[lo].v, impl->t0);
                if (mpz_cmp(data[lo].v, impl->q) >= 0)
                    mpz_sub(data[lo].v, data[lo].v, impl->q);
                mpz_swap(data[hi_idx].v, impl->t1);
            }
        }
    }
}

std::vector<MpzHolder>
toMpz(const std::vector<U128>& values)
{
    std::vector<MpzHolder> out(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        mpz_init2(out[i].v, 130);
        setU128(out[i].v, values[i]);
    }
    return out;
}

void
fromMpz(std::vector<MpzHolder>& work, std::vector<U128>& values)
{
    for (size_t i = 0; i < values.size(); ++i) {
        values[i] = getU128(work[i].v);
        mpz_clear(work[i].v);
    }
}

} // namespace

void
GmpKernels::nttForward(std::vector<U128>& data) const
{
    checkArg(impl_->n != 0, "GmpKernels: constructed without NTT tables");
    checkArg(data.size() == impl_->n, "GmpKernels::nttForward: size mismatch");
    std::vector<MpzHolder> work = toMpz(data);
    gmpTransform(impl_, work, impl_->pow_fwd);
    fromMpz(work, data);
}

void
GmpKernels::nttInverse(std::vector<U128>& data) const
{
    checkArg(impl_->n != 0, "GmpKernels: constructed without NTT tables");
    checkArg(data.size() == impl_->n, "GmpKernels::nttInverse: size mismatch");
    std::vector<MpzHolder> work = toMpz(data);
    gmpTransform(impl_, work, impl_->pow_inv);
    for (auto& x : work) {
        mpz_mul(impl_->t0, x.v, impl_->n_inv);
        mpz_mod(x.v, impl_->t0, impl_->q);
    }
    fromMpz(work, data);
}

void
GmpKernels::vadd(const std::vector<U128>& a, const std::vector<U128>& b,
                 std::vector<U128>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "GmpKernels::vadd: length mismatch");
    for (size_t i = 0; i < a.size(); ++i) {
        setU128(impl_->t0, a[i]);
        setU128(impl_->t1, b[i]);
        mpz_add(impl_->t0, impl_->t0, impl_->t1);
        mpz_mod(impl_->t0, impl_->t0, impl_->q);
        c[i] = getU128(impl_->t0);
    }
}

void
GmpKernels::vsub(const std::vector<U128>& a, const std::vector<U128>& b,
                 std::vector<U128>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "GmpKernels::vsub: length mismatch");
    for (size_t i = 0; i < a.size(); ++i) {
        setU128(impl_->t0, a[i]);
        setU128(impl_->t1, b[i]);
        mpz_sub(impl_->t0, impl_->t0, impl_->t1);
        mpz_mod(impl_->t0, impl_->t0, impl_->q);
        c[i] = getU128(impl_->t0);
    }
}

void
GmpKernels::vmul(const std::vector<U128>& a, const std::vector<U128>& b,
                 std::vector<U128>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "GmpKernels::vmul: length mismatch");
    for (size_t i = 0; i < a.size(); ++i) {
        setU128(impl_->t0, a[i]);
        setU128(impl_->t1, b[i]);
        mpz_mul(impl_->t0, impl_->t0, impl_->t1);
        mpz_mod(impl_->t0, impl_->t0, impl_->q);
        c[i] = getU128(impl_->t0);
    }
}

void
GmpKernels::axpy(const U128& alpha, const std::vector<U128>& x,
                 std::vector<U128>& y) const
{
    checkArg(x.size() == y.size(), "GmpKernels::axpy: length mismatch");
    mpz_t a;
    mpz_init2(a, 130);
    setU128(a, alpha);
    for (size_t i = 0; i < x.size(); ++i) {
        setU128(impl_->t0, x[i]);
        mpz_mul(impl_->t0, impl_->t0, a);
        setU128(impl_->t1, y[i]);
        mpz_add(impl_->t0, impl_->t0, impl_->t1);
        mpz_mod(impl_->t0, impl_->t0, impl_->q);
        y[i] = getU128(impl_->t0);
    }
    mpz_clear(a);
}

U128
GmpKernels::mulModOracle(const U128& a, const U128& b, const U128& q)
{
    mpz_t ta, tb, tq;
    mpz_init(ta);
    mpz_init(tb);
    mpz_init(tq);
    setU128(ta, a);
    setU128(tb, b);
    setU128(tq, q);
    mpz_mul(ta, ta, tb);
    mpz_mod(ta, ta, tq);
    U128 r = getU128(ta);
    mpz_clear(ta);
    mpz_clear(tb);
    mpz_clear(tq);
    return r;
}

U128
GmpKernels::addModOracle(const U128& a, const U128& b, const U128& q)
{
    mpz_t ta, tb, tq;
    mpz_init(ta);
    mpz_init(tb);
    mpz_init(tq);
    setU128(ta, a);
    setU128(tb, b);
    setU128(tq, q);
    mpz_add(ta, ta, tb);
    mpz_mod(ta, ta, tq);
    U128 r = getU128(ta);
    mpz_clear(ta);
    mpz_clear(tb);
    mpz_clear(tq);
    return r;
}

} // namespace baseline
} // namespace mqx

#endif // MQX_WITH_GMP
