/**
 * @file
 * "OpenFHE-like" baseline: a generic 128-bit math backend.
 *
 * The paper's main NTT baseline is OpenFHE's built-in mathematical
 * backend for 128-bit integers (Sections 5.4, 8), which the paper
 * measures at roughly an order of magnitude slower than its optimized
 * scalar kernels. We reproduce that comparison point with a backend that
 * has the same structural properties as a generic FHE-library integer
 * layer (OpenFHE's ubint): fixed-size big integers, shift-subtract
 * modular reduction of the full product (no Barrett, no modulus
 * specialization), and a textbook iterative Cooley-Tukey NTT with
 * precomputed root powers. See DESIGN.md for the substitution rationale.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "ntt/prime.h"
#include "u128/u128.h"
#include "u128/u256.h"

namespace mqx {
namespace baseline {

/** Generic division-based modular arithmetic over one modulus. */
class OpenFheLikeModulus
{
  public:
    explicit OpenFheLikeModulus(const U128& q);

    const U128& value() const { return q_; }

    U128 addMod(const U128& a, const U128& b) const;
    U128 subMod(const U128& a, const U128& b) const;

    /** Full 256-bit product reduced by shift-subtract division. */
    U128 mulMod(const U128& a, const U128& b) const;

    U128 powMod(const U128& base, const U128& exponent) const;

  private:
    U128 q_;
    int qbits_;
};

/**
 * Textbook iterative Cooley-Tukey NTT over the generic backend
 * (natural-order input and output; bit-reversal applied internally).
 */
class OpenFheLikeNtt
{
  public:
    OpenFheLikeNtt(const ntt::NttPrime& prime, size_t n);

    size_t n() const { return n_; }
    const OpenFheLikeModulus& modulus() const { return mod_; }

    /** In-place forward transform. */
    void forward(std::vector<U128>& data) const;

    /** In-place inverse transform (including the n^-1 scaling). */
    void inverse(std::vector<U128>& data) const;

  private:
    void transform(std::vector<U128>& data, const std::vector<U128>& pow) const;

    OpenFheLikeModulus mod_;
    size_t n_;
    int logn_;
    std::vector<U128> pow_fwd_; ///< omega^i, i < n
    std::vector<U128> pow_inv_; ///< omega^-i
    U128 n_inv_;
};

/** BLAS-style ops over the generic backend (baseline for Fig. 4). */
class OpenFheLikeBlas
{
  public:
    explicit OpenFheLikeBlas(const U128& q) : mod_(q) {}

    void vadd(const std::vector<U128>& a, const std::vector<U128>& b,
              std::vector<U128>& c) const;
    void vsub(const std::vector<U128>& a, const std::vector<U128>& b,
              std::vector<U128>& c) const;
    void vmul(const std::vector<U128>& a, const std::vector<U128>& b,
              std::vector<U128>& c) const;
    void axpy(const U128& alpha, const std::vector<U128>& x,
              std::vector<U128>& y) const;

  private:
    OpenFheLikeModulus mod_;
};

} // namespace baseline
} // namespace mqx
