/**
 * @file
 * GMP baseline kernels — the paper's literal arbitrary-precision
 * baseline ("configured to perform exact integer arithmetic", Section
 * 5.3). Only built when GMP is found; BigUIntKernels is the always-
 * available substitute, and the test suite cross-checks the two.
 */
#pragma once

#include "core/config.h"

#if MQX_WITH_GMP

#include <cstddef>
#include <vector>

#include "ntt/prime.h"
#include "u128/u128.h"

namespace mqx {
namespace baseline {

/**
 * NTT + BLAS over mpz_t arithmetic. Residues are held as a persistent
 * mpz_t workspace so per-op allocations match steady-state GMP usage.
 */
class GmpKernels
{
  public:
    explicit GmpKernels(const U128& q);
    GmpKernels(const ntt::NttPrime& prime, size_t n);
    ~GmpKernels();

    GmpKernels(const GmpKernels&) = delete;
    GmpKernels& operator=(const GmpKernels&) = delete;

    /** In-place forward NTT over a U128 vector (converted internally). */
    void nttForward(std::vector<U128>& data) const;

    /** In-place inverse NTT. */
    void nttInverse(std::vector<U128>& data) const;

    void vadd(const std::vector<U128>& a, const std::vector<U128>& b,
              std::vector<U128>& c) const;
    void vsub(const std::vector<U128>& a, const std::vector<U128>& b,
              std::vector<U128>& c) const;
    void vmul(const std::vector<U128>& a, const std::vector<U128>& b,
              std::vector<U128>& c) const;
    void axpy(const U128& alpha, const std::vector<U128>& x,
              std::vector<U128>& y) const;

    /** Oracle hooks for the test suite. */
    static U128 mulModOracle(const U128& a, const U128& b, const U128& q);
    static U128 addModOracle(const U128& a, const U128& b, const U128& q);

    struct Impl; ///< pimpl keeps gmp.h out of this header

  private:
    Impl* impl_;
};

} // namespace baseline
} // namespace mqx

#endif // MQX_WITH_GMP
