/**
 * @file
 * Arbitrary-precision baseline kernels over BigUInt — the from-scratch
 * GMP substitute (paper Sections 5.3/5.4 benchmark GMP as the
 * arbitrary-precision baseline; DESIGN.md documents the substitution).
 * Cost profile: dynamic limb vectors, schoolbook multiply, Knuth-D
 * division for every modular reduction.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "bigint/biguint.h"
#include "ntt/prime.h"

namespace mqx {
namespace baseline {

/** NTT + BLAS over BigUInt arithmetic. */
class BigUIntKernels
{
  public:
    /** BLAS-only construction (no NTT tables). */
    explicit BigUIntKernels(const U128& q);

    /** NTT construction with precomputed root powers. */
    BigUIntKernels(const ntt::NttPrime& prime, size_t n);

    /** In-place forward NTT, natural order in and out. */
    void nttForward(std::vector<BigUInt>& data) const;

    /** In-place inverse NTT. */
    void nttInverse(std::vector<BigUInt>& data) const;

    void vadd(const std::vector<BigUInt>& a, const std::vector<BigUInt>& b,
              std::vector<BigUInt>& c) const;
    void vsub(const std::vector<BigUInt>& a, const std::vector<BigUInt>& b,
              std::vector<BigUInt>& c) const;
    void vmul(const std::vector<BigUInt>& a, const std::vector<BigUInt>& b,
              std::vector<BigUInt>& c) const;
    void axpy(const BigUInt& alpha, const std::vector<BigUInt>& x,
              std::vector<BigUInt>& y) const;

    /** Convert a residue vector into BigUInt form. */
    static std::vector<BigUInt> fromU128(const std::vector<U128>& values);

    /** Convert back (values must fit 128 bits). */
    static std::vector<U128> toU128(const std::vector<BigUInt>& values);

  private:
    void transform(std::vector<BigUInt>& data,
                   const std::vector<BigUInt>& pow) const;

    BigUInt q_;
    size_t n_ = 0;
    int logn_ = 0;
    std::vector<BigUInt> pow_fwd_;
    std::vector<BigUInt> pow_inv_;
    BigUInt n_inv_;
};

} // namespace baseline
} // namespace mqx
