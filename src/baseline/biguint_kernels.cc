/**
 * @file
 * BigUInt baseline kernel implementation.
 */
#include "baseline/biguint_kernels.h"

#include "mod/modulus.h"

namespace mqx {
namespace baseline {

BigUIntKernels::BigUIntKernels(const U128& q) : q_(BigUInt::fromU128(q)) {}

BigUIntKernels::BigUIntKernels(const ntt::NttPrime& prime, size_t n)
    : q_(BigUInt::fromU128(prime.q)), n_(n)
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "BigUIntKernels: n must be a power of two");
    for (size_t t = n; t > 1; t >>= 1)
        ++logn_;

    Modulus fast(prime.q);
    U128 omega = ntt::rootOfUnity(fast, U128{static_cast<uint64_t>(n)});
    U128 omega_inv = fast.inverse(omega);
    n_inv_ = BigUInt::fromU128(fast.inverse(U128{static_cast<uint64_t>(n)}));

    pow_fwd_.resize(n);
    pow_inv_.resize(n);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < n; ++i) {
        pow_fwd_[i] = BigUInt::fromU128(acc_f);
        pow_inv_[i] = BigUInt::fromU128(acc_i);
        acc_f = fast.mul(acc_f, omega);
        acc_i = fast.mul(acc_i, omega_inv);
    }
}

void
BigUIntKernels::transform(std::vector<BigUInt>& data,
                          const std::vector<BigUInt>& pow) const
{
    size_t n = n_;
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (int b = 0; b < logn_; ++b)
            r |= ((i >> b) & 1) << (logn_ - 1 - b);
        if (r > i)
            std::swap(data[i], data[r]);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        size_t step = n / len;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < len / 2; ++j) {
                const BigUInt& w = pow[step * j];
                BigUInt u = data[i + j];
                BigUInt v = BigUInt::mulMod(data[i + j + len / 2], w, q_);
                data[i + j] = BigUInt::addMod(u, v, q_);
                data[i + j + len / 2] = BigUInt::subMod(u, v, q_);
            }
        }
    }
}

void
BigUIntKernels::nttForward(std::vector<BigUInt>& data) const
{
    checkArg(n_ != 0, "BigUIntKernels: constructed without NTT tables");
    checkArg(data.size() == n_, "BigUIntKernels::nttForward: size mismatch");
    transform(data, pow_fwd_);
}

void
BigUIntKernels::nttInverse(std::vector<BigUInt>& data) const
{
    checkArg(n_ != 0, "BigUIntKernels: constructed without NTT tables");
    checkArg(data.size() == n_, "BigUIntKernels::nttInverse: size mismatch");
    transform(data, pow_inv_);
    for (auto& x : data)
        x = BigUInt::mulMod(x, n_inv_, q_);
}

void
BigUIntKernels::vadd(const std::vector<BigUInt>& a,
                     const std::vector<BigUInt>& b,
                     std::vector<BigUInt>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "BigUIntKernels::vadd: length mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        c[i] = BigUInt::addMod(a[i], b[i], q_);
}

void
BigUIntKernels::vsub(const std::vector<BigUInt>& a,
                     const std::vector<BigUInt>& b,
                     std::vector<BigUInt>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "BigUIntKernels::vsub: length mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        c[i] = BigUInt::subMod(a[i], b[i], q_);
}

void
BigUIntKernels::vmul(const std::vector<BigUInt>& a,
                     const std::vector<BigUInt>& b,
                     std::vector<BigUInt>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "BigUIntKernels::vmul: length mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        c[i] = BigUInt::mulMod(a[i], b[i], q_);
}

void
BigUIntKernels::axpy(const BigUInt& alpha, const std::vector<BigUInt>& x,
                     std::vector<BigUInt>& y) const
{
    checkArg(x.size() == y.size(), "BigUIntKernels::axpy: length mismatch");
    for (size_t i = 0; i < x.size(); ++i)
        y[i] = BigUInt::addMod(BigUInt::mulMod(alpha, x[i], q_), y[i], q_);
}

std::vector<BigUInt>
BigUIntKernels::fromU128(const std::vector<U128>& values)
{
    std::vector<BigUInt> out(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = BigUInt::fromU128(values[i]);
    return out;
}

std::vector<U128>
BigUIntKernels::toU128(const std::vector<BigUInt>& values)
{
    std::vector<U128> out(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        out[i] = values[i].toU128();
    return out;
}

} // namespace baseline
} // namespace mqx
