/**
 * @file
 * Generic division-based 128-bit backend implementation.
 */
#include "baseline/openfhe_like.h"

#include "core/config.h"

namespace mqx {
namespace baseline {

OpenFheLikeModulus::OpenFheLikeModulus(const U128& q) : q_(q)
{
    checkArg(q >= U128{2}, "OpenFheLikeModulus: modulus must be >= 2");
    qbits_ = q.bits();
}

U128
OpenFheLikeModulus::addMod(const U128& a, const U128& b) const
{
    // Generic path: works for any a, b < q; overflow cannot occur for
    // q < 2^127, which the 124-bit Barrett regime guarantees upstream.
    U128 s = a + b;
    if (s >= q_ || s < a)
        s -= q_;
    return s;
}

U128
OpenFheLikeModulus::subMod(const U128& a, const U128& b) const
{
    if (a < b)
        return a + q_ - b;
    return a - b;
}

U128
OpenFheLikeModulus::mulMod(const U128& a, const U128& b) const
{
    // Full double-width product followed by shift-subtract reduction —
    // the structure of a generic big-integer Mod (no precomputation,
    // no Barrett). This is the cost profile the paper's baselines pay.
    U256 r = mulFull128(a, b);
    const U256 q256 = U256::fromU128(q_);
    while (r >= q256) {
        int shift = r.bits() - qbits_;
        U256 t = q256 << shift;
        if (t > r)
            t >>= 1;
        r -= t;
    }
    return r.low128();
}

U128
OpenFheLikeModulus::powMod(const U128& base, const U128& exponent) const
{
    U128 result{1};
    U128 b = base;
    if (b >= q_)
        b = mod128(b, q_);
    for (int i = exponent.bits() - 1; i >= 0; --i) {
        result = mulMod(result, result);
        if (exponent.bit(i))
            result = mulMod(result, b);
    }
    return result;
}

OpenFheLikeNtt::OpenFheLikeNtt(const ntt::NttPrime& prime, size_t n)
    : mod_(prime.q), n_(n)
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "OpenFheLikeNtt: n must be a power of two");
    logn_ = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn_;

    // Root setup reuses the optimized library path (setup cost is not
    // part of any measured kernel).
    Modulus fast(prime.q);
    U128 omega = ntt::rootOfUnity(fast, U128{static_cast<uint64_t>(n)});
    U128 omega_inv = fast.inverse(omega);
    n_inv_ = fast.inverse(U128{static_cast<uint64_t>(n)});

    pow_fwd_.resize(n);
    pow_inv_.resize(n);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < n; ++i) {
        pow_fwd_[i] = acc_f;
        pow_inv_[i] = acc_i;
        acc_f = fast.mul(acc_f, omega);
        acc_i = fast.mul(acc_i, omega_inv);
    }
}

void
OpenFheLikeNtt::transform(std::vector<U128>& data,
                          const std::vector<U128>& pow) const
{
    // Bit-reversal permutation then iterative DIT butterflies.
    size_t n = n_;
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (int b = 0; b < logn_; ++b)
            r |= ((i >> b) & 1) << (logn_ - 1 - b);
        if (r > i)
            std::swap(data[i], data[r]);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        size_t step = n / len;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < len / 2; ++j) {
                const U128& w = pow[step * j];
                U128 u = data[i + j];
                U128 v = mod_.mulMod(data[i + j + len / 2], w);
                data[i + j] = mod_.addMod(u, v);
                data[i + j + len / 2] = mod_.subMod(u, v);
            }
        }
    }
}

void
OpenFheLikeNtt::forward(std::vector<U128>& data) const
{
    checkArg(data.size() == n_, "OpenFheLikeNtt::forward: size mismatch");
    transform(data, pow_fwd_);
}

void
OpenFheLikeNtt::inverse(std::vector<U128>& data) const
{
    checkArg(data.size() == n_, "OpenFheLikeNtt::inverse: size mismatch");
    transform(data, pow_inv_);
    for (auto& x : data)
        x = mod_.mulMod(x, n_inv_);
}

void
OpenFheLikeBlas::vadd(const std::vector<U128>& a, const std::vector<U128>& b,
                      std::vector<U128>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "OpenFheLikeBlas::vadd: length mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        c[i] = mod_.addMod(a[i], b[i]);
}

void
OpenFheLikeBlas::vsub(const std::vector<U128>& a, const std::vector<U128>& b,
                      std::vector<U128>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "OpenFheLikeBlas::vsub: length mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        c[i] = mod_.subMod(a[i], b[i]);
}

void
OpenFheLikeBlas::vmul(const std::vector<U128>& a, const std::vector<U128>& b,
                      std::vector<U128>& c) const
{
    checkArg(a.size() == b.size() && a.size() == c.size(),
             "OpenFheLikeBlas::vmul: length mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        c[i] = mod_.mulMod(a[i], b[i]);
}

void
OpenFheLikeBlas::axpy(const U128& alpha, const std::vector<U128>& x,
                      std::vector<U128>& y) const
{
    checkArg(x.size() == y.size(), "OpenFheLikeBlas::axpy: length mismatch");
    for (size_t i = 0; i < x.size(); ++i)
        y[i] = mod_.addMod(mod_.mulMod(alpha, x[i]), y[i]);
}

} // namespace baseline
} // namespace mqx
