/**
 * @file
 * AVX2 implementation of the SIMD ISA policy (paper Section 3.2).
 *
 * 4-way 64-bit lanes. AVX2 lacks both mask registers and unsigned 64-bit
 * compares, so masks are full vectors of all-ones/all-zeros lanes and
 * every unsigned compare pays a sign-bias XOR — "the comparison
 * operations ... require more instructions and additional handling
 * compared to AVX-512" (Section 3.2). It also lacks a 64-bit
 * multiply-low, so even mullo is reconstructed from 32-bit partial
 * products.
 *
 * Include only from TUs compiled with -mavx2.
 */
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "core/config.h"

#if !MQX_TU_HAS_AVX2
#error "isa_avx2.h included in a TU without AVX2 codegen flags"
#endif

namespace mqx {
namespace simd {

/** AVX2 SIMD policy: __m256i vectors, vector-typed masks. */
struct Avx2Isa
{
    static constexpr size_t kLanes = 4;
    static constexpr bool kIsMqx = false;
    static constexpr bool kHasPredicated = false;

    using V = __m256i;
    using M = __m256i; // all-ones lane = true

    static V set1(uint64_t x) { return _mm256_set1_epi64x(static_cast<long long>(x)); }

    static V
    loadu(const uint64_t* p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }

    static void
    storeu(uint64_t* p, V v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }

    static V add(V a, V b) { return _mm256_add_epi64(a, b); }
    static V sub(V a, V b) { return _mm256_sub_epi64(a, b); }
    static V and_(V a, V b) { return _mm256_and_si256(a, b); }
    static V or_(V a, V b) { return _mm256_or_si256(a, b); }

    /** 64-bit multiply-low, reconstructed from 32-bit partials. */
    static V
    mullo(V a, V b)
    {
        V a_hi = _mm256_srli_epi64(a, 32);
        V b_hi = _mm256_srli_epi64(b, 32);
        V p0 = _mm256_mul_epu32(a, b);
        V cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b),
                                   _mm256_mul_epu32(a, b_hi));
        return _mm256_add_epi64(p0, _mm256_slli_epi64(cross, 32));
    }

    static V
    srlCount(V a, unsigned s)
    {
        return _mm256_srl_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
    }

    static V
    sllCount(V a, unsigned s)
    {
        return _mm256_sll_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
    }

    static M
    cmpLtU(V a, V b)
    {
        // No unsigned compare in AVX2: bias both sides by 2^63 and use
        // the signed greater-than.
        const V bias = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
        return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                                  _mm256_xor_si256(a, bias));
    }

    static M
    cmpGtU(V a, V b)
    {
        return cmpLtU(b, a);
    }

    static M cmpEqU(V a, V b) { return _mm256_cmpeq_epi64(a, b); }

    static M
    cmpLeU(V a, V b)
    {
        return _mm256_or_si256(cmpLtU(a, b), cmpEqU(a, b));
    }

    static M maskOr(M a, M b) { return _mm256_or_si256(a, b); }
    static M maskAnd(M a, M b) { return _mm256_and_si256(a, b); }

    static M
    maskNot(M a)
    {
        return _mm256_xor_si256(a, _mm256_set1_epi64x(-1ll));
    }

    static M maskZero() { return _mm256_setzero_si256(); }
    static M initialCarryMask() { return maskZero(); }

    static V
    maskAdd(V src, M m, V a, V b)
    {
        return _mm256_blendv_epi8(src, _mm256_add_epi64(a, b), m);
    }

    static V
    maskSub(V src, M m, V a, V b)
    {
        return _mm256_blendv_epi8(src, _mm256_sub_epi64(a, b), m);
    }

    static V
    blend(M m, V a, V b)
    {
        return _mm256_blendv_epi8(a, b, m);
    }

    /** Add with carry (Table-1 shape; carries become 0/1 via mask AND). */
    static V
    adc(V a, V b, M ci, M& co)
    {
        const V one = _mm256_set1_epi64x(1);
        V t0 = _mm256_add_epi64(a, b);
        V t1 = _mm256_add_epi64(t0, _mm256_and_si256(ci, one));
        M q0 = cmpLtU(t0, a);  // carry from a + b
        M q1 = cmpLtU(t1, t0); // carry from + ci
        co = _mm256_or_si256(q0, q1);
        return t1;
    }

    /** Subtract with borrow. */
    static V
    sbb(V a, V b, M bi, M& bo)
    {
        const V one = _mm256_set1_epi64x(1);
        V bi1 = _mm256_and_si256(bi, one);
        M q0 = cmpLtU(a, b);
        V t0 = _mm256_sub_epi64(a, b);
        M q1 = cmpLtU(t0, bi1);
        V t1 = _mm256_sub_epi64(t0, bi1);
        bo = _mm256_or_si256(q0, q1);
        return t1;
    }

    /** Widening multiply from four 32-bit partial products. */
    static void
    mulWide(V a, V b, V& hi, V& lo)
    {
        const V mask32 = _mm256_set1_epi64x(0xffffffffll);
        V a_hi = _mm256_srli_epi64(a, 32);
        V b_hi = _mm256_srli_epi64(b, 32);
        V p0 = _mm256_mul_epu32(a, b);
        V p1 = _mm256_mul_epu32(a_hi, b);
        V p2 = _mm256_mul_epu32(a, b_hi);
        V p3 = _mm256_mul_epu32(a_hi, b_hi);
        V mid = _mm256_add_epi64(
            _mm256_add_epi64(_mm256_srli_epi64(p0, 32),
                             _mm256_and_si256(p1, mask32)),
            _mm256_and_si256(p2, mask32));
        hi = _mm256_add_epi64(
            _mm256_add_epi64(p3, _mm256_srli_epi64(mid, 32)),
            _mm256_add_epi64(_mm256_srli_epi64(p1, 32),
                             _mm256_srli_epi64(p2, 32)));
        lo = _mm256_or_si256(_mm256_and_si256(p0, mask32),
                             _mm256_slli_epi64(mid, 32));
    }

    static void
    interleave2(V u, V v, V& out_lo, V& out_hi)
    {
        V unp_lo = _mm256_unpacklo_epi64(u, v); // (u0, v0, u2, v2)
        V unp_hi = _mm256_unpackhi_epi64(u, v); // (u1, v1, u3, v3)
        out_lo = _mm256_permute2x128_si256(unp_lo, unp_hi, 0x20);
        out_hi = _mm256_permute2x128_si256(unp_lo, unp_hi, 0x31);
    }

    static void
    deinterleave2(V a, V b, V& even, V& odd)
    {
        V t0 = _mm256_permute2x128_si256(a, b, 0x20); // (a0, a1, b0, b1)
        V t1 = _mm256_permute2x128_si256(a, b, 0x31); // (a2, a3, b2, b3)
        even = _mm256_unpacklo_epi64(t0, t1);
        odd = _mm256_unpackhi_epi64(t0, t1);
    }
};

} // namespace simd
} // namespace mqx
