/**
 * @file
 * Double-word (128-bit) modular arithmetic kernels over the SIMD ISA
 * policy concept. Written once, instantiated for every backend:
 * PortableIsa, Avx2Isa, Avx512Isa, and the MqxIsa variants.
 *
 * Residues are carried as split hi/lo vectors (DV): one vector of high
 * words and one of low words per operand — eight 128-bit residues per
 * AVX-512 vector pair (paper Section 3.2, Figure 2).
 *
 * Two kernel shapes exist for add/sub, mirroring the paper:
 *  - addModBasic / subModBasic: the hand-tuned AVX-512 dataflow of
 *    Listing 2, using compares + masked ops (no carry abstractions).
 *    Variable names follow the listing (t30, t28, t29, a31, a35, ...).
 *  - addModMqx / subModMqx: the Listing-3 dataflow built on the
 *    adc/sbb/mulWide policy ops, which MQX implements in one instruction
 *    each. Instantiated with a basic ISA these expand to the Table-1
 *    emulation sequences, which is exactly the PISA comparison.
 *
 * Multiplication (schoolbook Eq. 8 / Karatsuba Eq. 9 + Barrett Eq. 4) is
 * a single template whose carry handling routes through Isa::adc/sbb —
 * so the identical dataflow is measured with AVX-512 emulated carries
 * and with MQX carries, as in the paper's Fig. 6 ablation.
 *
 * Note on Listing 3: the published listing derives the reduce condition
 * as (ehc1 | ehc), which misses the corner a+b >= q with equal high
 * words (eh == mh and el >= ml). The emulated kernels here add the
 * equality term so functional-correctness mode is exact; the deviation
 * is documented in DESIGN.md.
 */
#pragma once

#include "mod/modulus.h"

namespace mqx {
namespace simd {

/** A vector of double words: hi[i]:lo[i] is lane i's 128-bit residue. */
template <class Isa>
struct DV
{
    typename Isa::V hi;
    typename Isa::V lo;
};

/** A vector of quad words (full products); t0 least significant. */
template <class Isa>
struct QV
{
    typename Isa::V t0;
    typename Isa::V t1;
    typename Isa::V t2;
    typename Isa::V t3;
};

/** Per-call broadcast constants derived from the modulus. */
template <class Isa>
struct ModCtx
{
    typename Isa::V qh, ql;   ///< modulus high/low words
    typename Isa::V q2h, q2l; ///< 2q high/low words (lazy-reduction bound)
    typename Isa::V muh, mul; ///< Barrett mu high/low words
    typename Isa::V one;      ///< broadcast 1
    typename Isa::M z;        ///< initial carry mask (opaque under PISA)
    unsigned s1 = 0;          ///< Barrett shift b - 1
    unsigned s2 = 0;          ///< Barrett shift b + 1
};

/** Build the broadcast context from a prepared modulus. */
template <class Isa>
inline ModCtx<Isa>
makeModCtx(const Modulus& m)
{
    ModCtx<Isa> ctx;
    ctx.qh = Isa::set1(m.value().hi);
    ctx.ql = Isa::set1(m.value().lo);
    // 2q fits a double word: bits(q) <= 2w - 4.
    const mod::DW<uint64_t> q2 = mod::shl1Dw(mod::toDw(m.value()));
    ctx.q2h = Isa::set1(q2.hi);
    ctx.q2l = Isa::set1(q2.lo);
    ctx.muh = Isa::set1(m.mu().hi);
    ctx.mul = Isa::set1(m.mu().lo);
    ctx.one = Isa::set1(1);
    ctx.z = Isa::initialCarryMask();
    ctx.s1 = static_cast<unsigned>(m.bits() - 1);
    ctx.s2 = static_cast<unsigned>(m.bits() + 1);
    return ctx;
}

/** Load a DV from split arrays at offset @p j. */
template <class Isa>
inline DV<Isa>
loadDv(const uint64_t* hi, const uint64_t* lo, size_t j)
{
    return DV<Isa>{Isa::loadu(hi + j), Isa::loadu(lo + j)};
}

/** Store a DV to split arrays at offset @p j. */
template <class Isa>
inline void
storeDv(uint64_t* hi, uint64_t* lo, size_t j, const DV<Isa>& v)
{
    Isa::storeu(hi + j, v.hi);
    Isa::storeu(lo + j, v.lo);
}

// ---------------------------------------------------------------------
// Basic (Listing 2) add/sub
// ---------------------------------------------------------------------

/** Double-word modular addition, Listing-2 dataflow. */
template <class Isa>
inline DV<Isa>
addModBasic(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    auto t30 = Isa::add(a.lo, b.lo);
    M q1 = Isa::cmpLtU(t30, a.lo);
    M q2 = Isa::cmpLtU(t30, b.lo);
    M c1 = Isa::maskOr(q1, q2);
    auto t28 = Isa::add(a.hi, b.hi);
    auto t29 = Isa::maskAdd(t28, c1, t28, ctx.one);
    M q3 = Isa::cmpLtU(t29, a.hi);
    M q4 = Isa::cmpLtU(t29, b.hi);
    M c2 = Isa::maskOr(q3, q4);
    M a31 = Isa::cmpLtU(ctx.qh, t29);
    M a35 = Isa::cmpEqU(ctx.qh, t29);
    M a38 = Isa::cmpLeU(ctx.ql, t30);
    M a34 = Isa::maskAnd(a35, a38);
    M i27 = Isa::maskOr(a31, a34);
    M i28 = Isa::maskOr(c2, i27);
    auto d1 = Isa::sub(t30, ctx.ql);
    M b1 = Isa::maskNot(a38);
    auto d2 = Isa::sub(t29, ctx.qh);
    auto d3 = Isa::maskSub(d2, b1, d2, ctx.one);
    DV<Isa> c;
    c.hi = Isa::blend(i28, t29, d3);
    c.lo = Isa::blend(i28, t30, d1);
    return c;
}

/** Double-word modular subtraction (Eq. 3 + Eq. 7), compare/select form. */
template <class Isa>
inline DV<Isa>
subModBasic(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    M blo = Isa::cmpLtU(a.lo, b.lo);
    auto d_lo = Isa::sub(a.lo, b.lo);
    auto d_hi0 = Isa::sub(a.hi, b.hi);
    auto d_hi = Isa::maskSub(d_hi0, blo, d_hi0, ctx.one);
    M lt_hi = Isa::cmpLtU(a.hi, b.hi);
    M eq_hi = Isa::cmpEqU(a.hi, b.hi);
    M lt = Isa::maskOr(lt_hi, Isa::maskAnd(eq_hi, blo)); // a < b
    auto e_lo = Isa::add(d_lo, ctx.ql);
    M carry = Isa::cmpLtU(e_lo, d_lo);
    auto e_hi0 = Isa::add(d_hi, ctx.qh);
    auto e_hi = Isa::maskAdd(e_hi0, carry, e_hi0, ctx.one);
    DV<Isa> c;
    c.lo = Isa::blend(lt, d_lo, e_lo);
    c.hi = Isa::blend(lt, d_hi, e_hi);
    return c;
}

// ---------------------------------------------------------------------
// MQX-shape (Listing 3) add/sub
// ---------------------------------------------------------------------

/** Double-word modular addition, Listing-3 dataflow over adc/sbb. */
template <class Isa>
inline DV<Isa>
addModMqx(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    M elc, ehc;
    auto el = Isa::adc(a.lo, b.lo, ctx.z, elc);
    auto eh = Isa::adc(a.hi, b.hi, elc, ehc);
    M ehc1 = Isa::cmpLtU(ctx.qh, eh);
    // Equality corner the published listing omits: a+b >= q also when
    // the high words tie and the low word reaches ml.
    M eqh = Isa::cmpEqU(ctx.qh, eh);
    M gel = Isa::cmpLeU(ctx.ql, el);
    M ctrl = Isa::maskOr(Isa::maskOr(ehc1, ehc), Isa::maskAnd(eqh, gel));
    if constexpr (Isa::kHasPredicated) {
        // +P variant: predicated subtract-with-borrow removes the blends.
        M clc = Isa::cmpLtU(el, ctx.ql);
        DV<Isa> c;
        c.lo = Isa::pSbb(el, ctx.ql, ctx.z, ctrl);
        c.hi = Isa::pSbb(eh, ctx.qh, clc, ctrl);
        return c;
    } else {
        M clc, dummy;
        auto c1 = Isa::sbb(el, ctx.ql, ctx.z, clc);
        DV<Isa> c;
        c.lo = Isa::blend(ctrl, el, c1);
        auto c2 = Isa::sbb(eh, ctx.qh, clc, dummy);
        c.hi = Isa::blend(ctrl, eh, c2);
        return c;
    }
}

/** Double-word modular subtraction over sbb/adc. */
template <class Isa>
inline DV<Isa>
subModMqx(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    M blo, bo;
    auto dl = Isa::sbb(a.lo, b.lo, ctx.z, blo);
    auto dh = Isa::sbb(a.hi, b.hi, blo, bo); // bo <=> a < b
    if constexpr (Isa::kHasPredicated) {
        M c;
        DV<Isa> r;
        r.lo = Isa::pAdc(dl, ctx.ql, ctx.z, bo);
        c = Isa::cmpLtU(r.lo, dl); // carry created only in predicated lanes
        c = Isa::maskAnd(c, bo);
        r.hi = Isa::pAdc(dh, ctx.qh, c, bo);
        return r;
    } else {
        M c, dummy;
        auto el = Isa::adc(dl, ctx.ql, ctx.z, c);
        auto eh = Isa::adc(dh, ctx.qh, c, dummy);
        DV<Isa> r;
        r.lo = Isa::blend(bo, dl, el);
        r.hi = Isa::blend(bo, dh, eh);
        return r;
    }
}

// ---------------------------------------------------------------------
// Multiplication: full product + Barrett reduction
// ---------------------------------------------------------------------

/** Schoolbook full product (Eq. 8): four mulWide + carry chains. */
template <class Isa>
inline QV<Isa>
mulFullSchoolV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    typename Isa::V p00h, p00l, p01h, p01l, p10h, p10l, p11h, p11l;
    Isa::mulWide(a.lo, b.lo, p00h, p00l);
    Isa::mulWide(a.lo, b.hi, p01h, p01l);
    Isa::mulWide(a.hi, b.lo, p10h, p10l);
    Isa::mulWide(a.hi, b.hi, p11h, p11l);

    QV<Isa> r;
    r.t0 = p00l;
    M c, c2;
    r.t1 = Isa::adc(p00h, p01l, ctx.z, c);
    r.t2 = Isa::adc(p01h, p11l, c, c2);
    r.t3 = Isa::maskAdd(p11h, c2, p11h, ctx.one);
    r.t1 = Isa::adc(r.t1, p10l, ctx.z, c);
    r.t2 = Isa::adc(r.t2, p10h, c, c2);
    r.t3 = Isa::maskAdd(r.t3, c2, r.t3, ctx.one);
    return r;
}

/** Karatsuba full product (Eq. 9): three mulWide + fixups. */
template <class Isa>
inline QV<Isa>
mulFullKaratsubaV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    typename Isa::V llh, lll, hhh, hhl;
    Isa::mulWide(a.lo, b.lo, llh, lll);
    Isa::mulWide(a.hi, b.hi, hhh, hhl);

    M ca, cb;
    auto sa = Isa::adc(a.hi, a.lo, ctx.z, ca);
    auto sb = Isa::adc(b.hi, b.lo, ctx.z, cb);

    typename Isa::V mh, ml;
    Isa::mulWide(sa, sb, mh, ml);
    // mid (3 words m0:m1:m2) = sa*sb + ca*sb*2^w + cb*sa*2^w + ca*cb*2^2w
    auto m0 = ml;
    auto m1 = mh;
    auto m2 = Isa::maskAdd(Isa::set1(0), Isa::maskAnd(ca, cb), Isa::set1(0),
                           ctx.one);
    auto m1a = Isa::maskAdd(m1, ca, m1, sb);
    M ovf = Isa::maskAnd(ca, Isa::cmpLtU(m1a, m1));
    m2 = Isa::maskAdd(m2, ovf, m2, ctx.one);
    auto m1b = Isa::maskAdd(m1a, cb, m1a, sa);
    ovf = Isa::maskAnd(cb, Isa::cmpLtU(m1b, m1a));
    m2 = Isa::maskAdd(m2, ovf, m2, ctx.one);
    m1 = m1b;

    // mid -= a0b0; mid -= a1b1 (borrow-chained).
    M br;
    m0 = Isa::sbb(m0, lll, ctx.z, br);
    m1 = Isa::sbb(m1, llh, br, br);
    m2 = Isa::maskSub(m2, br, m2, ctx.one);
    m0 = Isa::sbb(m0, hhl, ctx.z, br);
    m1 = Isa::sbb(m1, hhh, br, br);
    m2 = Isa::maskSub(m2, br, m2, ctx.one);

    // r = hh*2^2w + mid*2^w + ll.
    QV<Isa> r;
    M c, c2;
    r.t0 = lll;
    r.t1 = Isa::adc(llh, m0, ctx.z, c);
    r.t2 = Isa::adc(hhl, m1, c, c2);
    r.t3 = Isa::adc(hhh, m2, c2, c);
    return r;
}

/**
 * Funnel shift: extract the double word (x >> s) from a quad word.
 * s is uniform across lanes and in [1, 127]; the caller guarantees the
 * true result fits in two words. srlCount/sllCount treat counts >= 64
 * as zero, which makes the s == 64 boundary fall out naturally.
 */
template <class Isa>
inline DV<Isa>
shrQwV(const QV<Isa>& x, unsigned s)
{
    DV<Isa> r;
    if (s >= 64) {
        unsigned t = s - 64;
        r.lo = Isa::or_(Isa::srlCount(x.t1, t), Isa::sllCount(x.t2, 64 - t));
        r.hi = Isa::or_(Isa::srlCount(x.t2, t), Isa::sllCount(x.t3, 64 - t));
    } else {
        r.lo = Isa::or_(Isa::srlCount(x.t0, s), Isa::sllCount(x.t1, 64 - s));
        r.hi = Isa::or_(Isa::srlCount(x.t1, s), Isa::sllCount(x.t2, 64 - s));
    }
    return r;
}

/** Low double word of the product a*b (3 mullo + 1 mulWide-high). */
template <class Isa>
inline DV<Isa>
mulLowDwV(const DV<Isa>& a, const DV<Isa>& b)
{
    typename Isa::V ph, pl;
    Isa::mulWide(a.lo, b.lo, ph, pl);
    DV<Isa> r;
    r.lo = pl;
    r.hi = Isa::add(ph, Isa::add(Isa::mullo(a.lo, b.hi),
                                 Isa::mullo(a.hi, b.lo)));
    return r;
}

/** Lane mask of (a >= b) over double words. */
template <class Isa>
inline typename Isa::M
cmpGeDwV(const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    M gt = Isa::cmpGtU(a.hi, b.hi);
    M eq = Isa::cmpEqU(a.hi, b.hi);
    M ge_lo = Isa::cmpLeU(b.lo, a.lo);
    return Isa::maskOr(gt, Isa::maskAnd(eq, ge_lo));
}

/**
 * Barrett reduction of a full product to [0, q) (Eq. 4, HAC-14.42
 * estimate, at most two correction subtractions).
 */
template <class Isa>
inline DV<Isa>
barrettReduceV(const ModCtx<Isa>& ctx, const QV<Isa>& x)
{
    using M = typename Isa::M;
    // Quotient estimate e = ((x >> (b-1)) * mu) >> (b+1).
    DV<Isa> x1 = shrQwV<Isa>(x, ctx.s1);
    DV<Isa> mu{ctx.muh, ctx.mul};
    QV<Isa> p = mulFullSchoolV<Isa>(ctx, x1, mu);
    DV<Isa> e = shrQwV<Isa>(p, ctx.s2);
    // c = (x - e*q) mod 2^128; true value < 3q so low words are exact.
    DV<Isa> q{ctx.qh, ctx.ql};
    DV<Isa> eq = mulLowDwV<Isa>(e, q);
    M br;
    DV<Isa> c;
    c.lo = Isa::sbb(x.t0, eq.lo, ctx.z, br);
    c.hi = Isa::sbb(x.t1, eq.hi, br, br);
    // Two correction rounds.
    for (int round = 0; round < 2; ++round) {
        M ge = cmpGeDwV<Isa>(c, q);
        M blo = Isa::cmpLtU(c.lo, ctx.ql);
        auto d_lo = Isa::sub(c.lo, ctx.ql);
        auto d_hi = Isa::sub(c.hi, ctx.qh);
        d_hi = Isa::maskSub(d_hi, blo, d_hi, ctx.one);
        c.lo = Isa::blend(ge, c.lo, d_lo);
        c.hi = Isa::blend(ge, c.hi, d_hi);
    }
    return c;
}

// ---------------------------------------------------------------------
// Shoup multiplication and lazy-reduction helpers
// ---------------------------------------------------------------------

/** Plain wrap-around double-word add (no modular reduction). */
template <class Isa>
inline DV<Isa>
addDwV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    M c;
    DV<Isa> r;
    r.lo = Isa::adc(a.lo, b.lo, ctx.z, c);
    r.hi = Isa::adc(a.hi, b.hi, c, c);
    return r;
}

/** Plain wrap-around double-word subtract (no modular correction). */
template <class Isa>
inline DV<Isa>
subDwV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    using M = typename Isa::M;
    M br;
    DV<Isa> r;
    r.lo = Isa::sbb(a.lo, b.lo, ctx.z, br);
    r.hi = Isa::sbb(a.hi, b.hi, br, br);
    return r;
}

/** Per-lane x >= b ? x - b : x — the lazy canonicalization step. */
template <class Isa>
inline DV<Isa>
condSubDwV(const ModCtx<Isa>& ctx, const DV<Isa>& x, typename Isa::V bh,
           typename Isa::V bl)
{
    using M = typename Isa::M;
    DV<Isa> b{bh, bl};
    M ge = cmpGeDwV<Isa>(x, b);
    M blo = Isa::cmpLtU(x.lo, bl);
    auto d_lo = Isa::sub(x.lo, bl);
    auto d_hi = Isa::sub(x.hi, bh);
    d_hi = Isa::maskSub(d_hi, blo, d_hi, ctx.one);
    DV<Isa> r;
    r.lo = Isa::blend(ge, x.lo, d_lo);
    r.hi = Isa::blend(ge, x.hi, d_hi);
    return r;
}

/**
 * Shoup/Harvey multiply by a fixed w with precomputed quotient wq
 * (see mod::mulModShoup): h = floor(a*wq / 2^128), r = a*w - h*q mod
 * 2^128, with r in [0, 2q) for ANY a. One full product plus two low
 * products — no Barrett shifts, no correction rounds.
 */
template <class Isa>
inline DV<Isa>
mulModShoupV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& w,
             const DV<Isa>& wq, MulAlgo algo = MulAlgo::Schoolbook)
{
    using M = typename Isa::M;
    QV<Isa> p = algo == MulAlgo::Schoolbook
                    ? mulFullSchoolV<Isa>(ctx, a, wq)
                    : mulFullKaratsubaV<Isa>(ctx, a, wq);
    DV<Isa> h{p.t3, p.t2};
    DV<Isa> aw = mulLowDwV<Isa>(a, w);
    DV<Isa> hq = mulLowDwV<Isa>(h, DV<Isa>{ctx.qh, ctx.ql});
    M br;
    DV<Isa> r;
    r.lo = Isa::sbb(aw.lo, hq.lo, ctx.z, br);
    r.hi = Isa::sbb(aw.hi, hq.hi, br, br);
    return r;
}

/**
 * Lazy modular add: inputs in [0, 2q), output in [0, 2q). The transient
 * sum reaches 4q — fine, q has >= 4 bits of double-word headroom — and
 * the only correction is one conditional subtract of 2q.
 */
template <class Isa>
inline DV<Isa>
addModLazyV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    return condSubDwV<Isa>(ctx, addDwV<Isa>(ctx, a, b), ctx.q2h, ctx.q2l);
}

/**
 * Lazy difference a - b + 2q for inputs in [0, 2q): the raw value in
 * (0, 4q) with NO reduction — exactly the operand shape mulModShoupV
 * accepts, so the forward butterfly feeds it straight into the twiddle
 * multiply.
 */
template <class Isa>
inline DV<Isa>
subModLazyRawV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    DV<Isa> q2{ctx.q2h, ctx.q2l};
    return subDwV<Isa>(ctx, addDwV<Isa>(ctx, a, q2), b);
}

/** Lazy modular subtract: inputs in [0, 2q), output in [0, 2q). */
template <class Isa>
inline DV<Isa>
subModLazyV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    return condSubDwV<Isa>(ctx, subModLazyRawV<Isa>(ctx, a, b), ctx.q2h,
                           ctx.q2l);
}

/** Modular multiplication: full product + Barrett reduction. */
template <class Isa>
inline DV<Isa>
mulModV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b,
        MulAlgo algo = MulAlgo::Schoolbook)
{
    QV<Isa> t = algo == MulAlgo::Schoolbook
                    ? mulFullSchoolV<Isa>(ctx, a, b)
                    : mulFullKaratsubaV<Isa>(ctx, a, b);
    return barrettReduceV<Isa>(ctx, t);
}

/** Backend-appropriate add: Listing-3 shape for MQX, Listing 2 otherwise. */
template <class Isa>
inline DV<Isa>
addModV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    if constexpr (Isa::kIsMqx)
        return addModMqx<Isa>(ctx, a, b);
    else
        return addModBasic<Isa>(ctx, a, b);
}

/** Backend-appropriate sub. */
template <class Isa>
inline DV<Isa>
subModV(const ModCtx<Isa>& ctx, const DV<Isa>& a, const DV<Isa>& b)
{
    if constexpr (Isa::kIsMqx)
        return subModMqx<Isa>(ctx, a, b);
    else
        return subModBasic<Isa>(ctx, a, b);
}

} // namespace simd
} // namespace mqx
