/**
 * @file
 * Batch (whole-vector) double-word modular kernels templated over a SIMD
 * ISA policy. These are the building blocks of the BLAS layer (paper
 * Section 2.3: "BLAS operations are essentially vector-based modular
 * arithmetic ... implemented by looping over scalar or SIMD modular
 * arithmetic").
 *
 * Each batch function processes full SIMD blocks and finishes any
 * remainder with the scalar double-word ops, so arbitrary lengths work
 * (the paper assumes power-of-two lengths that are multiples of the lane
 * count; we do not need to).
 */
#pragma once

#include "core/residue_span.h"
#include "simd/dw_kernels.h"

namespace mqx {
namespace simd {

/** c[i] = a[i] + b[i] mod q. */
template <class Isa>
void
vaddImpl(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    checkArg(a.n == b.n && a.n == c.n, "vadd: length mismatch");
    ModCtx<Isa> ctx = makeModCtx<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= a.n; i += Isa::kLanes) {
        DV<Isa> va = loadDv<Isa>(a.hi, a.lo, i);
        DV<Isa> vb = loadDv<Isa>(b.hi, b.lo, i);
        storeDv<Isa>(c.hi, c.lo, i, addModV<Isa>(ctx, va, vb));
    }
    mod::DW<uint64_t> q = mod::toDw(m.value());
    for (; i < a.n; ++i) {
        auto r = mod::addMod(mod::DW<uint64_t>{a.hi[i], a.lo[i]},
                             mod::DW<uint64_t>{b.hi[i], b.lo[i]}, q);
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

/** c[i] = a[i] - b[i] mod q. */
template <class Isa>
void
vsubImpl(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c)
{
    checkArg(a.n == b.n && a.n == c.n, "vsub: length mismatch");
    ModCtx<Isa> ctx = makeModCtx<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= a.n; i += Isa::kLanes) {
        DV<Isa> va = loadDv<Isa>(a.hi, a.lo, i);
        DV<Isa> vb = loadDv<Isa>(b.hi, b.lo, i);
        storeDv<Isa>(c.hi, c.lo, i, subModV<Isa>(ctx, va, vb));
    }
    mod::DW<uint64_t> q = mod::toDw(m.value());
    for (; i < a.n; ++i) {
        auto r = mod::subMod(mod::DW<uint64_t>{a.hi[i], a.lo[i]},
                             mod::DW<uint64_t>{b.hi[i], b.lo[i]}, q);
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

/** c[i] = a[i] * b[i] mod q (point-wise vector multiplication). */
template <class Isa>
void
vmulImpl(const Modulus& m, DConstSpan a, DConstSpan b, DSpan c,
         MulAlgo algo = MulAlgo::Schoolbook)
{
    checkArg(a.n == b.n && a.n == c.n, "vmul: length mismatch");
    ModCtx<Isa> ctx = makeModCtx<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= a.n; i += Isa::kLanes) {
        DV<Isa> va = loadDv<Isa>(a.hi, a.lo, i);
        DV<Isa> vb = loadDv<Isa>(b.hi, b.lo, i);
        storeDv<Isa>(c.hi, c.lo, i, mulModV<Isa>(ctx, va, vb, algo));
    }
    const auto& br = m.barrett();
    for (; i < a.n; ++i) {
        mod::DW<uint64_t> da{a.hi[i], a.lo[i]}, db{b.hi[i], b.lo[i]};
        auto r = algo == MulAlgo::Schoolbook
                     ? mod::mulModSchool(da, db, br)
                     : mod::mulModKaratsuba(da, db, br);
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

/**
 * y[r] = sum_j A[r][j] * x[j] mod q — modular general matrix-vector
 * product (BLAS-2 gemv; the paper notes point-wise vector
 * multiplication is its diagonal special case, Section 2.3). A is
 * row-major, rows x cols, split hi/lo like every residue container.
 * Per row: SIMD blocks of mulmod feed a lane accumulator (modular adds
 * never overflow because every partial stays < q), then the lanes are
 * folded scalar.
 */
template <class Isa>
void
gemvImpl(const Modulus& m, DConstSpan matrix, DConstSpan x, DSpan y,
         size_t rows, size_t cols, MulAlgo algo = MulAlgo::Schoolbook)
{
    checkArg(matrix.n == rows * cols, "gemv: matrix size mismatch");
    checkArg(x.n == cols && y.n == rows, "gemv: vector size mismatch");
    ModCtx<Isa> ctx = makeModCtx<Isa>(m);
    const auto& br = m.barrett();
    mod::DW<uint64_t> q = mod::toDw(m.value());

    for (size_t r = 0; r < rows; ++r) {
        const uint64_t* row_hi = matrix.hi + r * cols;
        const uint64_t* row_lo = matrix.lo + r * cols;
        DV<Isa> acc{Isa::set1(0), Isa::set1(0)};
        size_t j = 0;
        for (; j + Isa::kLanes <= cols; j += Isa::kLanes) {
            DV<Isa> va = loadDv<Isa>(row_hi, row_lo, j);
            DV<Isa> vx = loadDv<Isa>(x.hi, x.lo, j);
            DV<Isa> t = mulModV<Isa>(ctx, va, vx, algo);
            acc = addModV<Isa>(ctx, acc, t);
        }
        // Fold the lane accumulator, then the scalar tail.
        alignas(64) uint64_t acc_hi[Isa::kLanes], acc_lo[Isa::kLanes];
        Isa::storeu(acc_hi, acc.hi);
        Isa::storeu(acc_lo, acc.lo);
        mod::DW<uint64_t> sum{0, 0};
        for (size_t lane = 0; lane < Isa::kLanes; ++lane) {
            sum = mod::addMod(sum, mod::DW<uint64_t>{acc_hi[lane],
                                                     acc_lo[lane]},
                              q);
        }
        for (; j < cols; ++j) {
            mod::DW<uint64_t> da{row_hi[j], row_lo[j]};
            mod::DW<uint64_t> dx{x.hi[j], x.lo[j]};
            auto t = algo == MulAlgo::Schoolbook
                         ? mod::mulModSchool(da, dx, br)
                         : mod::mulModKaratsuba(da, dx, br);
            sum = mod::addMod(sum, t, q);
        }
        y.hi[r] = sum.hi;
        y.lo[r] = sum.lo;
    }
}

/** y[i] = alpha * x[i] + y[i] mod q (BLAS-1 axpy, Section 2.3). */
template <class Isa>
void
axpyImpl(const Modulus& m, const U128& alpha, DConstSpan x, DSpan y,
         MulAlgo algo = MulAlgo::Schoolbook)
{
    checkArg(x.n == y.n, "axpy: length mismatch");
    ModCtx<Isa> ctx = makeModCtx<Isa>(m);
    DV<Isa> va{Isa::set1(alpha.hi), Isa::set1(alpha.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= x.n; i += Isa::kLanes) {
        DV<Isa> vx = loadDv<Isa>(x.hi, x.lo, i);
        DV<Isa> vy = loadDv<Isa>(y.hi, y.lo, i);
        DV<Isa> t = mulModV<Isa>(ctx, va, vx, algo);
        storeDv<Isa>(y.hi, y.lo, i, addModV<Isa>(ctx, t, vy));
    }
    const auto& br = m.barrett();
    mod::DW<uint64_t> q = mod::toDw(m.value());
    mod::DW<uint64_t> da = mod::toDw(alpha);
    for (; i < x.n; ++i) {
        mod::DW<uint64_t> dx{x.hi[i], x.lo[i]}, dy{y.hi[i], y.lo[i]};
        auto t = algo == MulAlgo::Schoolbook ? mod::mulModSchool(da, dx, br)
                                             : mod::mulModKaratsuba(da, dx, br);
        auto r = mod::addMod(t, dy, q);
        y.hi[i] = r.hi;
        y.lo[i] = r.lo;
    }
}

} // namespace simd
} // namespace mqx
