/**
 * @file
 * Portable reference implementation of the SIMD ISA policy concept.
 *
 * Every vector backend in mqxlib implements the same small policy
 * interface; the kernels in simd/dw_kernels.h are written once against
 * it. PortableIsa is the plain-C++ model: V is an 8-lane uint64 array,
 * M an 8-bit lane mask. It defines the semantics the intrinsic-based
 * policies must match (the test suite verifies lane-exact agreement) and
 * doubles as the fallback backend on CPUs without AVX.
 *
 * Policy interface (all static):
 *   types   V (vector), M (mask); constant kLanes
 *   data    set1, loadu, storeu
 *   arith   add, sub, mullo, and_, or_, srlCount, sllCount
 *   compare cmpLtU, cmpLeU, cmpEqU, cmpGtU  (unsigned per-lane -> M)
 *   mask    maskOr, maskAnd, maskNot, maskZero
 *   select  maskAdd, maskSub (merge-masked), blend (m ? b : a)
 *   carry   adc, sbb (Table 1 / Table 2), mulWide (widening multiply)
 *   shuffle interleave2, deinterleave2 (Pease NTT stage wiring)
 */
#pragma once

#include <array>
#include <cstdint>

#include "core/config.h"
#include "u128/u128.h"

namespace mqx {
namespace simd {

/** Plain-array SIMD policy; semantic reference for all backends. */
struct PortableIsa
{
    static constexpr size_t kLanes = 8;
    static constexpr bool kIsMqx = false;
    static constexpr bool kHasPredicated = false;

    struct V
    {
        std::array<uint64_t, kLanes> l{};
    };

    using M = uint8_t; // bit i = lane i

    static V
    set1(uint64_t x)
    {
        V r;
        r.l.fill(x);
        return r;
    }

    static V
    loadu(const uint64_t* p)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = p[i];
        return r;
    }

    static void
    storeu(uint64_t* p, V v)
    {
        for (size_t i = 0; i < kLanes; ++i)
            p[i] = v.l[i];
    }

    static V
    add(V a, V b)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] + b.l[i];
        return r;
    }

    static V
    sub(V a, V b)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] - b.l[i];
        return r;
    }

    static V
    mullo(V a, V b)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] * b.l[i];
        return r;
    }

    static V
    and_(V a, V b)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] & b.l[i];
        return r;
    }

    static V
    or_(V a, V b)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = a.l[i] | b.l[i];
        return r;
    }

    /** Logical right shift by a uniform runtime count (>= 64 yields 0). */
    static V
    srlCount(V a, unsigned s)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = s >= 64 ? 0 : a.l[i] >> s;
        return r;
    }

    /** Logical left shift by a uniform runtime count (>= 64 yields 0). */
    static V
    sllCount(V a, unsigned s)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = s >= 64 ? 0 : a.l[i] << s;
        return r;
    }

    static M
    cmpLtU(V a, V b)
    {
        M m = 0;
        for (size_t i = 0; i < kLanes; ++i)
            m |= static_cast<M>((a.l[i] < b.l[i] ? 1 : 0) << i);
        return m;
    }

    static M
    cmpLeU(V a, V b)
    {
        M m = 0;
        for (size_t i = 0; i < kLanes; ++i)
            m |= static_cast<M>((a.l[i] <= b.l[i] ? 1 : 0) << i);
        return m;
    }

    static M
    cmpEqU(V a, V b)
    {
        M m = 0;
        for (size_t i = 0; i < kLanes; ++i)
            m |= static_cast<M>((a.l[i] == b.l[i] ? 1 : 0) << i);
        return m;
    }

    static M
    cmpGtU(V a, V b)
    {
        return cmpLtU(b, a);
    }

    static M maskOr(M a, M b) { return static_cast<M>(a | b); }
    static M maskAnd(M a, M b) { return static_cast<M>(a & b); }
    static M maskNot(M a) { return static_cast<M>(~a); }
    static M maskZero() { return 0; }
    static M initialCarryMask() { return 0; }

    /** Per-lane: m ? a + b : src. */
    static V
    maskAdd(V src, M m, V a, V b)
    {
        V r = src;
        for (size_t i = 0; i < kLanes; ++i) {
            if ((m >> i) & 1)
                r.l[i] = a.l[i] + b.l[i];
        }
        return r;
    }

    /** Per-lane: m ? a - b : src. */
    static V
    maskSub(V src, M m, V a, V b)
    {
        V r = src;
        for (size_t i = 0; i < kLanes; ++i) {
            if ((m >> i) & 1)
                r.l[i] = a.l[i] - b.l[i];
        }
        return r;
    }

    /** Per-lane: m ? b : a (matches _mm512_mask_blend semantics). */
    static V
    blend(M m, V a, V b)
    {
        V r;
        for (size_t i = 0; i < kLanes; ++i)
            r.l[i] = ((m >> i) & 1) ? b.l[i] : a.l[i];
        return r;
    }

    /** Add with carry-in/carry-out (Table 1 semantics). */
    static V
    adc(V a, V b, M ci, M& co)
    {
        V r;
        M c = 0;
        for (size_t i = 0; i < kLanes; ++i) {
            uint64_t out = 0;
            uint64_t carry = addc64(a.l[i], b.l[i],
                                    static_cast<uint64_t>((ci >> i) & 1), out);
            r.l[i] = out;
            c |= static_cast<M>(carry << i);
        }
        co = c;
        return r;
    }

    /** Subtract with borrow-in/borrow-out (Table 2 semantics). */
    static V
    sbb(V a, V b, M bi, M& bo)
    {
        V r;
        M c = 0;
        for (size_t i = 0; i < kLanes; ++i) {
            uint64_t out = 0;
            uint64_t borrow = subb64(a.l[i], b.l[i],
                                     static_cast<uint64_t>((bi >> i) & 1), out);
            r.l[i] = out;
            c |= static_cast<M>(borrow << i);
        }
        bo = c;
        return r;
    }

    /** Widening multiply: per-lane 64x64 -> (hi, lo) (Table 2). */
    static void
    mulWide(V a, V b, V& hi, V& lo)
    {
        for (size_t i = 0; i < kLanes; ++i)
            mulWide64(a.l[i], b.l[i], hi.l[i], lo.l[i]);
    }

    /**
     * Interleave two vectors element-wise:
     * out_lo = (u0, v0, u1, v1, ...), out_hi = (u_{L/2}, v_{L/2}, ...).
     * This is the Pease-stage output wiring y[2j] = u, y[2j+1] = v.
     */
    static void
    interleave2(V u, V v, V& out_lo, V& out_hi)
    {
        V a, b;
        for (size_t i = 0; i < kLanes / 2; ++i) {
            a.l[2 * i] = u.l[i];
            a.l[2 * i + 1] = v.l[i];
            b.l[2 * i] = u.l[kLanes / 2 + i];
            b.l[2 * i + 1] = v.l[kLanes / 2 + i];
        }
        out_lo = a;
        out_hi = b;
    }

    /** Inverse of interleave2: split into even- and odd-indexed lanes. */
    static void
    deinterleave2(V a, V b, V& even, V& odd)
    {
        V u, v;
        for (size_t i = 0; i < kLanes / 2; ++i) {
            u.l[i] = a.l[2 * i];
            v.l[i] = a.l[2 * i + 1];
            u.l[kLanes / 2 + i] = b.l[2 * i];
            v.l[kLanes / 2 + i] = b.l[2 * i + 1];
        }
        even = u;
        odd = v;
    }
};

} // namespace simd
} // namespace mqx
