/**
 * @file
 * AVX-512 implementation of the SIMD ISA policy (paper Section 3.2).
 *
 * 8-way 64-bit lanes, hardware mask registers (__mmask8), unsigned
 * compares. Two operations deserve comment because they are exactly the
 * bottlenecks MQX later removes (Section 4):
 *
 *  - adc/sbb: AVX-512 has no carry flags, so add-with-carry is the
 *    six-instruction sequence from Table 1 (two adds, a masked add, two
 *    unsigned compares, a mask OR).
 *  - mulWide: AVX-512 only provides multiply-low for 64-bit lanes
 *    (_mm512_mullo_epi64); the high half is reconstructed from four
 *    32-bit partial products via _mm512_mul_epu32.
 *
 * This header may only be included from translation units compiled with
 * -mavx512f -mavx512dq (the build system guarantees this).
 */
#pragma once

#include <immintrin.h>

#include <cstdint>

#include "core/config.h"

#if !MQX_TU_HAS_AVX512
#error "isa_avx512.h included in a TU without AVX-512 codegen flags"
#endif

namespace mqx {
namespace simd {

/** AVX-512 SIMD policy: __m512i vectors, __mmask8 masks. */
struct Avx512Isa
{
    static constexpr size_t kLanes = 8;
    static constexpr bool kIsMqx = false;
    static constexpr bool kHasPredicated = false;

    using V = __m512i;
    using M = __mmask8;

    static V set1(uint64_t x) { return _mm512_set1_epi64(static_cast<long long>(x)); }

    static V
    loadu(const uint64_t* p)
    {
        return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
    }

    static void
    storeu(uint64_t* p, V v)
    {
        _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
    }

    static V add(V a, V b) { return _mm512_add_epi64(a, b); }
    static V sub(V a, V b) { return _mm512_sub_epi64(a, b); }
    static V mullo(V a, V b) { return _mm512_mullo_epi64(a, b); }
    static V and_(V a, V b) { return _mm512_and_si512(a, b); }
    static V or_(V a, V b) { return _mm512_or_si512(a, b); }

    static V
    srlCount(V a, unsigned s)
    {
        return _mm512_srl_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
    }

    static V
    sllCount(V a, unsigned s)
    {
        return _mm512_sll_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
    }

    static M cmpLtU(V a, V b) { return _mm512_cmp_epu64_mask(a, b, _MM_CMPINT_LT); }
    static M cmpLeU(V a, V b) { return _mm512_cmp_epu64_mask(a, b, _MM_CMPINT_LE); }
    static M cmpEqU(V a, V b) { return _mm512_cmp_epu64_mask(a, b, _MM_CMPINT_EQ); }
    static M cmpGtU(V a, V b) { return _mm512_cmp_epu64_mask(a, b, _MM_CMPINT_NLE); }

    static M maskOr(M a, M b) { return static_cast<M>(a | b); }
    static M maskAnd(M a, M b) { return static_cast<M>(a & b); }
    static M maskNot(M a) { return static_cast<M>(~a); }
    static M maskZero() { return 0; }
    static M initialCarryMask() { return 0; }

    static V
    maskAdd(V src, M m, V a, V b)
    {
        return _mm512_mask_add_epi64(src, m, a, b);
    }

    static V
    maskSub(V src, M m, V a, V b)
    {
        return _mm512_mask_sub_epi64(src, m, a, b);
    }

    static V
    blend(M m, V a, V b)
    {
        return _mm512_mask_blend_epi64(m, a, b);
    }

    /**
     * Add with carry: the Table-1 AVX-512 sequence (six instructions).
     * MQX replaces this with a single vpadcq. As in addc64, the carries
     * of the two partial sums are tested (rather than the published
     * (t1 < a) | (t1 < b)) so the a == b == 2^64-1, carry-in corner is
     * exact at identical instruction count.
     */
    static V
    adc(V a, V b, M ci, M& co)
    {
        V t0 = _mm512_add_epi64(a, b);
        V one = _mm512_set1_epi64(1);
        V t1 = _mm512_mask_add_epi64(t0, ci, t0, one);
        M q0 = _mm512_cmp_epu64_mask(t0, a, _MM_CMPINT_LT);
        M q1 = _mm512_cmp_epu64_mask(t1, t0, _MM_CMPINT_LT);
        co = static_cast<M>(q0 | q1);
        return t1;
    }

    /**
     * Subtract with borrow, emulated symmetrically to adc:
     * borrow-out = (a < b) | (a - b < borrow-in).
     */
    static V
    sbb(V a, V b, M bi, M& bo)
    {
        V t0 = _mm512_sub_epi64(a, b);
        V one = _mm512_set1_epi64(1);
        M q0 = _mm512_cmp_epu64_mask(a, b, _MM_CMPINT_LT);
        V bi_v = _mm512_maskz_mov_epi64(bi, one);
        M q1 = _mm512_cmp_epu64_mask(t0, bi_v, _MM_CMPINT_LT);
        V t1 = _mm512_mask_sub_epi64(t0, bi, t0, one);
        bo = static_cast<M>(q0 | q1);
        return t1;
    }

    /**
     * Widening 64x64 multiply emulated with 32-bit partial products:
     * the low half is one vpmullq; the high half takes four
     * _mm512_mul_epu32 cross products plus shifts/adds. This emulation
     * cost is the "+M" motivation in the Fig. 6 ablation.
     */
    static void
    mulWide(V a, V b, V& hi, V& lo)
    {
        const V mask32 = _mm512_set1_epi64(0xffffffffll);
        V a_hi = _mm512_srli_epi64(a, 32);
        V b_hi = _mm512_srli_epi64(b, 32);
        V p0 = _mm512_mul_epu32(a, b);       // aL * bL
        V p1 = _mm512_mul_epu32(a_hi, b);    // aH * bL
        V p2 = _mm512_mul_epu32(a, b_hi);    // aL * bH
        V p3 = _mm512_mul_epu32(a_hi, b_hi); // aH * bH
        V mid = _mm512_add_epi64(
            _mm512_add_epi64(_mm512_srli_epi64(p0, 32),
                             _mm512_and_si512(p1, mask32)),
            _mm512_and_si512(p2, mask32));
        hi = _mm512_add_epi64(
            _mm512_add_epi64(p3, _mm512_srli_epi64(mid, 32)),
            _mm512_add_epi64(_mm512_srli_epi64(p1, 32),
                             _mm512_srli_epi64(p2, 32)));
        lo = _mm512_mullo_epi64(a, b);
    }

    static void
    interleave2(V u, V v, V& out_lo, V& out_hi)
    {
        // Indices select from the concatenation (u = 0..7, v = 8..15):
        // exactly the _mm512_permutex2var_epi64 pattern the paper cites.
        const V idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
        const V idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
        out_lo = _mm512_permutex2var_epi64(u, idx_lo, v);
        out_hi = _mm512_permutex2var_epi64(u, idx_hi, v);
    }

    static void
    deinterleave2(V a, V b, V& even, V& odd)
    {
        const V idx_even = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
        const V idx_odd = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
        even = _mm512_permutex2var_epi64(a, idx_even, b);
        odd = _mm512_permutex2var_epi64(a, idx_odd, b);
    }
};

} // namespace simd
} // namespace mqx
