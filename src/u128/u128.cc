/**
 * @file
 * Out-of-line U128 helpers: division and string conversion.
 */
#include "u128/u128.h"

#include <array>

namespace mqx {

void
divmod128(const U128& a, const U128& b, U128& quotient, U128& remainder)
{
    checkArg(!b.isZero(), "divmod128: division by zero");
    if (a < b) {
        quotient = U128{};
        remainder = a;
        return;
    }
    // Shift-subtract long division, skipping straight to the first
    // candidate bit using the bit-length difference.
    U128 q{};
    U128 r{};
    for (int i = a.bits() - 1; i >= 0; --i) {
        // r < b can still occupy 128 bits, so (r << 1) may carry into a
        // 129th bit; track it explicitly and fold it into the compare.
        uint64_t top = r.hi >> 63;
        r <<= 1;
        r.lo |= static_cast<uint64_t>(a.bit(i));
        if (top || r >= b) {
            r -= b;
            if (i < 64)
                q.lo |= uint64_t{1} << i;
            else
                q.hi |= uint64_t{1} << (i - 64);
        }
    }
    quotient = q;
    remainder = r;
}

U128
mod128(const U128& a, const U128& b)
{
    U128 q, r;
    divmod128(a, b, q, r);
    return r;
}

U128
u128FromString(const std::string& text)
{
    checkArg(!text.empty(), "u128FromString: empty string");
    U128 v{};
    if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
        checkArg(text.size() <= 2 + 32, "u128FromString: hex literal too wide");
        for (size_t i = 2; i < text.size(); ++i) {
            char c = text[i];
            uint64_t digit = 0;
            if (c >= '0' && c <= '9')
                digit = static_cast<uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<uint64_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<uint64_t>(c - 'A' + 10);
            else
                throw InvalidArgument("u128FromString: bad hex digit");
            v = (v << 4) | U128{digit};
        }
        return v;
    }
    for (char c : text) {
        checkArg(c >= '0' && c <= '9', "u128FromString: bad decimal digit");
        U128 times10 = (v << 3) + (v << 1);
        checkArg(times10 >= v || v.isZero(), "u128FromString: overflow");
        v = times10 + U128{static_cast<uint64_t>(c - '0')};
    }
    return v;
}

std::string
toString(const U128& v)
{
    if (v.isZero())
        return "0";
    std::string digits;
    U128 cur = v;
    const U128 ten{10};
    while (!cur.isZero()) {
        U128 q, r;
        divmod128(cur, ten, q, r);
        digits.push_back(static_cast<char>('0' + r.lo));
        cur = q;
    }
    return std::string(digits.rbegin(), digits.rend());
}

std::string
toHexString(const U128& v)
{
    static constexpr std::array<char, 16> kDigits = {
        '0', '1', '2', '3', '4', '5', '6', '7',
        '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
    if (v.isZero())
        return "0x0";
    std::string out = "0x";
    bool seen = false;
    for (int nibble = 31; nibble >= 0; --nibble) {
        int shift = nibble * 4;
        uint64_t d = (shift >= 64) ? (v.hi >> (shift - 64)) & 0xf
                                   : (v.lo >> shift) & 0xf;
        if (d != 0)
            seen = true;
        if (seen)
            out.push_back(kDigits[static_cast<size_t>(d)]);
    }
    return out;
}

} // namespace mqx
