/**
 * @file
 * Portable 128-bit unsigned integer type and the single-word carry /
 * widening primitives the whole library is built from.
 *
 * The paper (Section 2.2) represents a 128-bit double-word as
 * [x0, x1]_{2^w0} = x0 * 2^w0 + x1 with w0 = 64, where x0 is the high and
 * x1 the low machine word. U128 stores exactly that pair. When the
 * compiler provides `unsigned __int128` the primitives compile to the
 * obvious two-instruction sequences (MUL, ADC, SBB); a portable fallback
 * keeps the library correct on compilers without it.
 */
#pragma once

#include <cstdint>
#include <string>

#include "core/config.h"

namespace mqx {

/**
 * Add two 64-bit words plus a carry-in; write the 64-bit sum to @p out.
 *
 * Branch-free, two unsigned comparisons, as in the scalar column of
 * Table 1 of the paper. Note: the published snippet tests
 * (t1 < a) | (t1 < b), which misses the single corner a == b == 2^64-1
 * with carry-in 1; we test the two partial sums instead, which covers
 * every case at the same cost (the corner cannot arise inside the
 * paper's kernels, but this primitive is also the bedrock of BigUInt
 * and U256, where it can).
 *
 * @return the carry-out bit (0 or 1).
 */
MQX_FORCE_INLINE constexpr uint64_t
addc64(uint64_t a, uint64_t b, uint64_t carry_in, uint64_t& out)
{
    uint64_t t0 = a + b;
    uint64_t t1 = t0 + carry_in;
    uint64_t q0 = static_cast<uint64_t>(t0 < a); // carry from a + b
    uint64_t q1 = static_cast<uint64_t>(t1 < t0); // carry from + carry_in
    out = t1;
    return q0 | q1;
}

/**
 * Subtract @p b and a borrow-in from @p a; write the 64-bit difference to
 * @p out.
 *
 * @return the borrow-out bit (0 or 1).
 */
MQX_FORCE_INLINE constexpr uint64_t
subb64(uint64_t a, uint64_t b, uint64_t borrow_in, uint64_t& out)
{
    uint64_t t0 = a - b;
    uint64_t b0 = static_cast<uint64_t>(a < b);
    uint64_t t1 = t0 - borrow_in;
    uint64_t b1 = static_cast<uint64_t>(t0 < borrow_in);
    out = t1;
    return b0 | b1;
}

/**
 * Widening 64x64 -> 128 unsigned multiplication.
 *
 * This is the scalar equivalent of the proposed MQX instruction
 * `_mm512_mul_epi64` (Table 2): one multiply producing both halves.
 */
MQX_FORCE_INLINE constexpr void
mulWide64(uint64_t a, uint64_t b, uint64_t& hi, uint64_t& lo)
{
#if MQX_HAVE_INT128
    unsigned __int128 p =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    hi = static_cast<uint64_t>(p >> 64);
    lo = static_cast<uint64_t>(p);
#else
    // Portable 32-bit schoolbook decomposition.
    uint64_t a_lo = a & 0xffffffffu, a_hi = a >> 32;
    uint64_t b_lo = b & 0xffffffffu, b_hi = b >> 32;
    uint64_t p0 = a_lo * b_lo;
    uint64_t p1 = a_lo * b_hi;
    uint64_t p2 = a_hi * b_lo;
    uint64_t p3 = a_hi * b_hi;
    uint64_t mid = (p0 >> 32) + (p1 & 0xffffffffu) + (p2 & 0xffffffffu);
    lo = (p0 & 0xffffffffu) | (mid << 32);
    hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);
#endif
}

/** High 64 bits of the unsigned 64x64 product (MQX multiply-high). */
MQX_FORCE_INLINE constexpr uint64_t
mulHi64(uint64_t a, uint64_t b)
{
    uint64_t hi = 0, lo = 0;
    mulWide64(a, b, hi, lo);
    return hi;
}

/** Number of significant bits in @p x (0 for x == 0). */
MQX_FORCE_INLINE constexpr int
bitLength64(uint64_t x)
{
    int n = 0;
    while (x) {
        ++n;
        x >>= 1;
    }
    return n;
}

/**
 * A 128-bit unsigned integer stored as two 64-bit machine words.
 *
 * Value = hi * 2^64 + lo. All arithmetic is modulo 2^128 with
 * wrap-around, matching `unsigned __int128` semantics. The type is a
 * trivially-copyable aggregate so vectors of residues can be memcpy'd
 * and reinterpreted as hi/lo split arrays by the SIMD layer.
 */
struct U128
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    constexpr U128() = default;
    constexpr U128(uint64_t value) : lo(value), hi(0) {}

    /** Build from explicit high and low words (paper's INT128(hi, lo)). */
    static constexpr U128
    fromParts(uint64_t high, uint64_t low)
    {
        U128 r;
        r.hi = high;
        r.lo = low;
        return r;
    }

#if MQX_HAVE_INT128
    static constexpr U128
    fromNative(unsigned __int128 v)
    {
        return fromParts(static_cast<uint64_t>(v >> 64),
                         static_cast<uint64_t>(v));
    }

    constexpr unsigned __int128
    toNative() const
    {
        return (static_cast<unsigned __int128>(hi) << 64) | lo;
    }
#endif

    constexpr bool isZero() const { return (lo | hi) == 0; }

    /** Number of significant bits (0 for zero). */
    constexpr int
    bits() const
    {
        return hi ? 64 + bitLength64(hi) : bitLength64(lo);
    }

    /** Bit @p i (0 = least significant). */
    constexpr int
    bit(int i) const
    {
        return i < 64 ? static_cast<int>((lo >> i) & 1)
                      : static_cast<int>((hi >> (i - 64)) & 1);
    }

    friend constexpr bool
    operator==(const U128& a, const U128& b)
    {
        return a.lo == b.lo && a.hi == b.hi;
    }

    friend constexpr bool
    operator<(const U128& a, const U128& b)
    {
        return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
    }

    friend constexpr bool operator!=(const U128& a, const U128& b) { return !(a == b); }
    friend constexpr bool operator>(const U128& a, const U128& b) { return b < a; }
    friend constexpr bool operator<=(const U128& a, const U128& b) { return !(b < a); }
    friend constexpr bool operator>=(const U128& a, const U128& b) { return !(a < b); }

    friend constexpr U128
    operator+(const U128& a, const U128& b)
    {
        U128 r;
        uint64_t c = addc64(a.lo, b.lo, 0, r.lo);
        addc64(a.hi, b.hi, c, r.hi);
        return r;
    }

    friend constexpr U128
    operator-(const U128& a, const U128& b)
    {
        U128 r;
        uint64_t br = subb64(a.lo, b.lo, 0, r.lo);
        subb64(a.hi, b.hi, br, r.hi);
        return r;
    }

    /** Low 128 bits of the product (wrap-around multiply). */
    friend constexpr U128
    operator*(const U128& a, const U128& b)
    {
        uint64_t p_hi = 0, p_lo = 0;
        mulWide64(a.lo, b.lo, p_hi, p_lo);
        U128 r;
        r.lo = p_lo;
        r.hi = p_hi + a.lo * b.hi + a.hi * b.lo;
        return r;
    }

    friend constexpr U128
    operator&(const U128& a, const U128& b)
    {
        return fromParts(a.hi & b.hi, a.lo & b.lo);
    }

    friend constexpr U128
    operator|(const U128& a, const U128& b)
    {
        return fromParts(a.hi | b.hi, a.lo | b.lo);
    }

    friend constexpr U128
    operator^(const U128& a, const U128& b)
    {
        return fromParts(a.hi ^ b.hi, a.lo ^ b.lo);
    }

    friend constexpr U128
    operator<<(const U128& a, int s)
    {
        if (s == 0)
            return a;
        if (s >= 128)
            return U128{};
        if (s >= 64)
            return fromParts(a.lo << (s - 64), 0);
        return fromParts((a.hi << s) | (a.lo >> (64 - s)), a.lo << s);
    }

    friend constexpr U128
    operator>>(const U128& a, int s)
    {
        if (s == 0)
            return a;
        if (s >= 128)
            return U128{};
        if (s >= 64)
            return fromParts(0, a.hi >> (s - 64));
        return fromParts(a.hi >> s, (a.lo >> s) | (a.hi << (64 - s)));
    }

    U128& operator+=(const U128& b) { *this = *this + b; return *this; }
    U128& operator-=(const U128& b) { *this = *this - b; return *this; }
    U128& operator*=(const U128& b) { *this = *this * b; return *this; }
    U128& operator<<=(int s) { *this = *this << s; return *this; }
    U128& operator>>=(int s) { *this = *this >> s; return *this; }
};

/**
 * Long division: compute @p a / @p b and @p a % @p b.
 *
 * Shift-subtract division, O(bits(a)) iterations. This is a setup-path
 * helper (Barrett parameter computation, prime generation) — hot paths
 * never divide.
 *
 * @throws InvalidArgument if @p b is zero.
 */
void divmod128(const U128& a, const U128& b, U128& quotient, U128& remainder);

/** a mod b via divmod128. */
U128 mod128(const U128& a, const U128& b);

/** Parse a decimal or 0x-prefixed hex string. @throws InvalidArgument. */
U128 u128FromString(const std::string& text);

/** Decimal representation. */
std::string toString(const U128& v);

/** Hex representation, "0x" prefixed, no leading zeros. */
std::string toHexString(const U128& v);

} // namespace mqx
