/**
 * @file
 * Out-of-line U256 helpers (division, printing). These run on setup paths
 * only; precision and clarity beat speed here.
 */
#include "u128/u256.h"

namespace mqx {

void
divmod256(const U256& a, const U128& b, U256& quotient, U128& remainder)
{
    checkArg(!b.isZero(), "divmod256: division by zero");
    U256 q;
    U128 r{};
    for (int i = a.bits() - 1; i >= 0; --i) {
        // r = (r << 1) | bit; r always stays < b <= 2^128 - 1 so the
        // shifted value fits in 129 bits at most transiently; handle the
        // potential 129th bit explicitly.
        uint64_t top = r.hi >> 63;
        r <<= 1;
        r.lo |= static_cast<uint64_t>(a.bit(i));
        if (top || r >= b) {
            r -= b;
            q.limb[static_cast<size_t>(i / 64)] |= uint64_t{1} << (i % 64);
        }
    }
    quotient = q;
    remainder = r;
}

std::string
toString(const U256& v)
{
    if (v.isZero())
        return "0";
    std::string digits;
    U256 cur = v;
    const U128 ten{10};
    while (!cur.isZero()) {
        U256 q;
        U128 r;
        divmod256(cur, ten, q, r);
        digits.push_back(static_cast<char>('0' + r.lo));
        cur = q;
    }
    return std::string(digits.rbegin(), digits.rend());
}

} // namespace mqx
