/**
 * @file
 * 256-bit unsigned integer built from four 64-bit limbs.
 *
 * U256 exists for one purpose: holding the full product of two 128-bit
 * residues during Barrett reduction (Section 2.1 of the paper). Hot
 * kernels use only the limb operations that map to straight-line carry
 * chains; division is confined to setup paths.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "u128/u128.h"

namespace mqx {

/** 256-bit unsigned integer; limb[0] is least significant. */
struct U256
{
    std::array<uint64_t, 4> limb{0, 0, 0, 0};

    constexpr U256() = default;
    constexpr U256(uint64_t v) : limb{v, 0, 0, 0} {}

    static constexpr U256
    fromU128(const U128& v)
    {
        U256 r;
        r.limb[0] = v.lo;
        r.limb[1] = v.hi;
        return r;
    }

    /** Low 128 bits. */
    constexpr U128
    low128() const
    {
        return U128::fromParts(limb[1], limb[0]);
    }

    /** High 128 bits. */
    constexpr U128
    high128() const
    {
        return U128::fromParts(limb[3], limb[2]);
    }

    constexpr bool
    isZero() const
    {
        return (limb[0] | limb[1] | limb[2] | limb[3]) == 0;
    }

    constexpr int
    bits() const
    {
        for (int i = 3; i >= 0; --i) {
            if (limb[static_cast<size_t>(i)])
                return 64 * i + bitLength64(limb[static_cast<size_t>(i)]);
        }
        return 0;
    }

    constexpr int
    bit(int i) const
    {
        return static_cast<int>((limb[static_cast<size_t>(i / 64)] >> (i % 64)) & 1);
    }

    friend constexpr bool
    operator==(const U256& a, const U256& b)
    {
        return a.limb == b.limb;
    }

    friend constexpr bool
    operator<(const U256& a, const U256& b)
    {
        for (int i = 3; i >= 0; --i) {
            size_t k = static_cast<size_t>(i);
            if (a.limb[k] != b.limb[k])
                return a.limb[k] < b.limb[k];
        }
        return false;
    }

    friend constexpr bool operator!=(const U256& a, const U256& b) { return !(a == b); }
    friend constexpr bool operator>(const U256& a, const U256& b) { return b < a; }
    friend constexpr bool operator<=(const U256& a, const U256& b) { return !(b < a); }
    friend constexpr bool operator>=(const U256& a, const U256& b) { return !(a < b); }

    friend constexpr U256
    operator+(const U256& a, const U256& b)
    {
        U256 r;
        uint64_t c = 0;
        for (size_t i = 0; i < 4; ++i)
            c = addc64(a.limb[i], b.limb[i], c, r.limb[i]);
        return r;
    }

    friend constexpr U256
    operator-(const U256& a, const U256& b)
    {
        U256 r;
        uint64_t br = 0;
        for (size_t i = 0; i < 4; ++i)
            br = subb64(a.limb[i], b.limb[i], br, r.limb[i]);
        return r;
    }

    friend constexpr U256
    operator<<(const U256& a, int s)
    {
        U256 r;
        if (s >= 256)
            return r;
        int word = s / 64, bitoff = s % 64;
        for (int i = 3; i >= 0; --i) {
            uint64_t v = 0;
            int src = i - word;
            if (src >= 0) {
                v = a.limb[static_cast<size_t>(src)] << bitoff;
                if (bitoff && src - 1 >= 0)
                    v |= a.limb[static_cast<size_t>(src - 1)] >> (64 - bitoff);
            }
            r.limb[static_cast<size_t>(i)] = v;
        }
        return r;
    }

    friend constexpr U256
    operator>>(const U256& a, int s)
    {
        U256 r;
        if (s >= 256)
            return r;
        int word = s / 64, bitoff = s % 64;
        for (int i = 0; i < 4; ++i) {
            uint64_t v = 0;
            int src = i + word;
            if (src <= 3) {
                v = a.limb[static_cast<size_t>(src)] >> bitoff;
                if (bitoff && src + 1 <= 3)
                    v |= a.limb[static_cast<size_t>(src + 1)] << (64 - bitoff);
            }
            r.limb[static_cast<size_t>(i)] = v;
        }
        return r;
    }

    U256& operator+=(const U256& b) { *this = *this + b; return *this; }
    U256& operator-=(const U256& b) { *this = *this - b; return *this; }
    U256& operator<<=(int s) { *this = *this << s; return *this; }
    U256& operator>>=(int s) { *this = *this >> s; return *this; }
};

/**
 * Full 128x128 -> 256 product (schoolbook over 64-bit limbs, Eq. 8 of the
 * paper lifted one level: four widening word multiplies plus carry
 * propagation).
 */
constexpr U256
mulFull128(const U128& a, const U128& b)
{
    uint64_t p00_hi = 0, p00_lo = 0; // a.lo * b.lo
    uint64_t p01_hi = 0, p01_lo = 0; // a.lo * b.hi
    uint64_t p10_hi = 0, p10_lo = 0; // a.hi * b.lo
    uint64_t p11_hi = 0, p11_lo = 0; // a.hi * b.hi
    mulWide64(a.lo, b.lo, p00_hi, p00_lo);
    mulWide64(a.lo, b.hi, p01_hi, p01_lo);
    mulWide64(a.hi, b.lo, p10_hi, p10_lo);
    mulWide64(a.hi, b.hi, p11_hi, p11_lo);

    U256 r;
    r.limb[0] = p00_lo;
    uint64_t c = addc64(p00_hi, p01_lo, 0, r.limb[1]);
    uint64_t c2 = addc64(p01_hi, p11_lo, c, r.limb[2]);
    addc64(p11_hi, 0, c2, r.limb[3]);
    c = addc64(r.limb[1], p10_lo, 0, r.limb[1]);
    c2 = addc64(r.limb[2], p10_hi, c, r.limb[2]);
    r.limb[3] += c2;
    return r;
}

/**
 * 256 / 128 long division (shift-subtract). Setup-path only.
 * @throws InvalidArgument if @p b is zero.
 */
void divmod256(const U256& a, const U128& b, U256& quotient, U128& remainder);

/** Decimal representation (setup/debug paths). */
std::string toString(const U256& v);

} // namespace mqx
