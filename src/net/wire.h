/**
 * @file
 * Length-prefixed binary wire protocol for the polymul service
 * (ISSUE 10 tentpole; ROADMAP item 1).
 *
 * Every message is one frame: an 8-byte header
 *
 *     [u32 magic 'MQXS'] [u32 body_len]
 *
 * followed by body_len bytes of body. All integers are little-endian.
 *
 * Request body:
 *
 *     u8  msg_type (= 1)         u8  op (OpKind)
 *     u16 version (= kWireVersion)
 *     u64 request_id             u64 deadline_ns (relative budget, 0=none)
 *     u32 bits  u32 two_adicity  u32 channels(k)  u32 n  u32 operand_count
 *     payload: operand_count x k x n x (u64 lo, u64 hi)  residues
 *
 * Response body:
 *
 *     u8  msg_type (= 2)         u8  status_code (robust::StatusCode)
 *     u16 version
 *     u64 request_id
 *     u32 message_len            message_len bytes of detail text
 *     u32 bits  u32 two_adicity  u32 channels  u32 n
 *     payload: channels x n x (u64 lo, u64 hi)   (all-zero dims on error)
 *
 * Decoding is defensive by contract: every decoder is bounds-checked
 * against the received length, validates shape caps BEFORE computing
 * payload sizes (so a hostile header cannot overflow a size
 * multiplication), and returns a robust::Status — it never throws on
 * malformed input and never reads past the supplied buffer. The frame
 * fuzz test (tests/test_net_frame.cc) feeds every split point and
 * seeded mutations of valid frames through this layer under ASan.
 */
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/residue_span.h"
#include "robust/status.h"

namespace mqx {
namespace rns {
class RnsBasis;
}

namespace net {

/** 'M' 'Q' 'X' 'S' little-endian. */
constexpr uint32_t kFrameMagic = 0x5358514Du;
constexpr uint16_t kWireVersion = 1;
constexpr size_t kHeaderBytes = 8;

/** Shape caps: reject before any size arithmetic can overflow. */
constexpr uint32_t kMaxN = 1u << 20;
constexpr uint32_t kMaxChannels = 64;
constexpr uint32_t kMaxOperands = 256;
constexpr uint32_t kMaxMessageBytes = 4096;
/** Hard cap on a frame body; larger headers are a protocol error. */
constexpr uint32_t kMaxBodyBytes = 1u << 28;

enum class MsgType : uint8_t {
    Request = 1,
    Response = 2,
};

enum class OpKind : uint8_t {
    /** c = a * b mod (x^n + 1, Q); exactly 2 operands. */
    Polymul = 1,
    /** c = sum a_i * b_i; even operand count >= 2, pairs in order. */
    Fma = 2,
    /** c = a + b; exactly 2 operands. */
    Add = 3,
};

/** The (bits, two_adicity, channels) triple naming a deterministic
 *  RnsBasis — the server rebuilds/caches the basis from this spec. */
struct BasisSpec {
    uint32_t bits = 0;
    uint32_t two_adicity = 0;
    uint32_t channels = 0;

    bool
    operator==(const BasisSpec& o) const
    {
        return bits == o.bits && two_adicity == o.two_adicity &&
               channels == o.channels;
    }
};

struct Request {
    OpKind op = OpKind::Polymul;
    uint64_t request_id = 0;
    /** Relative latency budget in ns; 0 = no deadline. */
    uint64_t deadline_ns = 0;
    BasisSpec basis;
    uint32_t n = 0;
    /** operand_count * basis.channels vectors, each of length n;
     *  operand o's channel c lives at index o * channels + c. */
    std::vector<ResidueVector> operands;

    size_t operandCount() const
    {
        return basis.channels ? operands.size() / basis.channels : 0;
    }
};

struct Response {
    robust::StatusCode code = robust::StatusCode::Ok;
    uint64_t request_id = 0;
    std::string message;
    BasisSpec basis;
    uint32_t n = 0;
    /** basis.channels vectors of length n; empty on error. */
    std::vector<ResidueVector> channels;
};

/** Serialize a full frame (header + body). */
std::vector<uint8_t> encodeRequestFrame(const Request& req);
std::vector<uint8_t> encodeResponseFrame(const Response& resp);

/**
 * Parse a frame BODY (header already stripped by FrameReader).
 * Returns InvalidArgument on any malformed input; @p out is
 * unspecified on failure. Never throws, never over-reads.
 */
robust::Status decodeRequest(const uint8_t* body, size_t len, Request& out);
robust::Status decodeResponse(const uint8_t* body, size_t len, Response& out);

/**
 * Check every residue of every operand against its channel modulus;
 * InvalidArgument when any residue >= q_c. (Decoding checks shape;
 * this checks values, and needs the server's basis.)
 */
robust::Status validateResidues(const Request& req,
                                const rns::RnsBasis& basis);

/**
 * Incremental frame extractor for a byte stream that may arrive torn
 * at arbitrary boundaries. feed() appends raw bytes; next() yields one
 * complete frame body at a time. A bad magic or oversize length is a
 * hard protocol error: next() returns Error and the reader stays
 * poisoned (the connection must be dropped — framing is lost).
 */
class FrameReader
{
  public:
    enum class Next {
        NeedMore, ///< no complete frame buffered yet
        Frame,    ///< one body extracted into the out-param
        Error,    ///< protocol violation; see error()
    };

    void feed(const uint8_t* data, size_t len);

    /** Extract the next complete frame body, if any. */
    Next next(std::vector<uint8_t>& body);

    const robust::Status& error() const { return error_; }

    /** Bytes buffered but not yet consumed (tests). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    robust::Status error_;
    bool poisoned_ = false;
};

} // namespace net
} // namespace mqx
