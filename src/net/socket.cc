/**
 * @file
 * POSIX socket implementation — the tree's only raw-socket file (see
 * socket.h and the mqxlint net-hygiene rule).
 */
#include "net/socket.h"

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "robust/fault_injection.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace net {

namespace {

robust::Status
errnoStatus(const char* what, int err)
{
    // Transient kernel-side pressure retries cleanly; anything else is
    // a hard transport failure the caller maps to a dropped session.
    const robust::StatusCode code =
        (err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
         err == EAGAIN || err == ENOBUFS || err == EMFILE ||
         err == ENFILE)
            ? robust::StatusCode::ResourceExhausted
            : robust::StatusCode::Internal;
    return robust::Status(code, std::string(what) + ": " +
                                    std::strerror(err));
}

/** poll() one fd for @p events; returns ready(>0), timeout(0), err(<0). */
int
pollOne(int fd, short events, int timeout_ms)
{
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0 && errno == EINTR)
            continue;
        return rc;
    }
}

} // namespace

IoResult
Socket::readSome(uint8_t* buf, size_t cap, int timeout_ms)
{
    IoResult r;
    if (fd_ < 0) {
        r.status = robust::Status(robust::StatusCode::Internal,
                                  "readSome: closed socket");
        return r;
    }
    const int rc = pollOne(fd_, POLLIN, timeout_ms);
    if (rc == 0) {
        r.timed_out = true;
        return r;
    }
    if (rc < 0) {
        r.status = errnoStatus("poll", errno);
        return r;
    }
    for (;;) {
        const ssize_t got = ::recv(fd_, buf, cap, MSG_DONTWAIT);
        if (got > 0) {
            size_t eff = static_cast<size_t>(got);
            // May flip a bit (garbage frame) or shrink eff (short
            // read) under an installed plan; inert otherwise.
            MQX_FAULT_POINT_BYTES("net.read", buf, &eff);
            r.bytes = eff;
            return r;
        }
        if (got == 0) {
            r.eof = true;
            return r;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // poll() said readable but the data evaporated (spurious
            // wakeup); report a clean timeout tick.
            r.timed_out = true;
            return r;
        }
        r.status = errnoStatus("recv", errno);
        return r;
    }
}

robust::Status
Socket::writeAll(const uint8_t* data, size_t len, int timeout_ms)
{
    if (fd_ < 0)
        return robust::Status(robust::StatusCode::Internal,
                              "writeAll: closed socket");
#if MQX_FAULT_INJECTION_ENABLED
    // Byte faults need a mutable view; copy only in fault builds so
    // the regular path stays zero-overhead.
    std::vector<uint8_t> shadow(data, data + len);
    size_t eff = shadow.size();
    MQX_FAULT_POINT_BYTES("net.write", shadow.data(), &eff);
    data = shadow.data();
    len = eff; // a ShortRead fire turns this into a torn write
#endif
    const uint64_t start_ns = telemetry::nowNs();
    const uint64_t budget_ns =
        static_cast<uint64_t>(timeout_ms) * 1000000ull;
    size_t sent = 0;
    while (sent < len) {
        const uint64_t elapsed = telemetry::nowNs() - start_ns;
        if (elapsed >= budget_ns)
            return robust::Status(robust::StatusCode::DeadlineExceeded,
                                  "writeAll: stalled write timed out");
        const int remaining_ms =
            static_cast<int>((budget_ns - elapsed) / 1000000ull) + 1;
        const int rc = pollOne(fd_, POLLOUT, remaining_ms);
        if (rc == 0)
            continue; // deadline re-checked at loop head
        if (rc < 0)
            return errnoStatus("poll", errno);
        const ssize_t put = ::send(fd_, data + sent, len - sent,
                                   MSG_DONTWAIT | MSG_NOSIGNAL);
        if (put > 0) {
            sent += static_cast<size_t>(put);
            continue;
        }
        if (put < 0 &&
            (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
            continue;
        return errnoStatus("send", errno);
    }
    return robust::Status();
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
Socket::closeNow()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

robust::Status
ListenSocket::listenLoopback(uint16_t port, ListenSocket& out)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket", errno);
    Socket guard(fd); // closes fd on every early return below
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) < 0)
        return errnoStatus("bind", errno);
    if (::listen(fd, 64) < 0)
        return errnoStatus("listen", errno);
    socklen_t addrlen = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      &addrlen) < 0)
        return errnoStatus("getsockname", errno);
    out.closeNow();
    out.fd_ = guard.release();
    out.port_ = ntohs(addr.sin_port);
    return robust::Status();
}

robust::Status
ListenSocket::acceptOne(int timeout_ms, Socket& out, bool& timed_out)
{
    timed_out = false;
    if (fd_ < 0)
        return robust::Status(robust::StatusCode::Internal,
                              "acceptOne: closed listener");
    const int rc = pollOne(fd_, POLLIN, timeout_ms);
    if (rc == 0) {
        timed_out = true;
        return robust::Status();
    }
    if (rc < 0)
        return errnoStatus("poll", errno);
    // Chaos hook: an armed Throw here simulates accept-path failure
    // (fd exhaustion, interrupt storms) without real resource abuse.
    MQX_FAULT_POINT("net.accept");
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
            errno == ECONNABORTED) {
            timed_out = true;
            return robust::Status();
        }
        return errnoStatus("accept", errno);
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    out = Socket(fd);
    return robust::Status();
}

void
ListenSocket::closeNow()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        port_ = 0;
    }
}

robust::Status
connectLoopback(uint16_t port, int timeout_ms, Socket& out)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket", errno);
    Socket sock(fd);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) < 0)
        return errnoStatus("connect", errno);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    (void)timeout_ms; // loopback connect is immediate or refused
    out = std::move(sock);
    return robust::Status();
}

} // namespace net
} // namespace mqx
