/**
 * @file
 * Overload-resilient TCP polymul service (ISSUE 10 tentpole; ROADMAP
 * item 1: "serving kernels to millions of users").
 *
 * Architecture: one accept thread hands each connection to its own
 * session thread (bounded by max_sessions; overflow connections get an
 * immediate ResourceExhausted response and a close). Session threads
 * parse frames and ADMIT requests into one bounded queue — the
 * backpressure point: a full queue sheds the request immediately with
 * ResourceExhausted rather than queueing unboundedly, so p99 latency
 * of accepted work stays bounded at any offered load. Dispatcher
 * threads drain the queue, coalescing compatible in-flight polymul
 * requests (same basis/n, no deadline) into one
 * Engine::polymulNegacyclicBatch call — the batch-throughput path the
 * paper's kernels want — while deadline-bearing requests run
 * individually under their own CancelToken.
 *
 * Deadline propagation: a request's wire deadline_ns becomes a
 * CancelToken at ADMISSION, so time spent queued counts against the
 * budget; the token is handed to every Engine op and a blown budget
 * aborts between NTT stages with all workspace leases released
 * (returned as DeadlineExceeded).
 *
 * Graceful drain: stop() rejects new connections and new admissions,
 * finishes everything already admitted, then verifies the workspace
 * pool's leasedCount() == 0 — the invariant the chaos suite asserts
 * after every seeded torn-frame / disconnect / stall run.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/socket.h"
#include "net/wire.h"
#include "robust/cancel.h"

namespace mqx {
namespace net {

/**
 * Service tuning. Every knob has an MQX_SERVER_* environment override,
 * parsed through core/env.h envUint (fromEnv()): garbage or
 * out-of-policy values fall back to these defaults with a one-time
 * telemetry note, never a throw or a silent clamp.
 */
struct ServerOptions {
    /** TCP port on 127.0.0.1; 0 = kernel-assigned (read via port()). */
    uint16_t port = 0;
    /** Admission queue depth; overflow sheds with ResourceExhausted. */
    size_t queue_depth = 64;
    /** Concurrent session cap; overflow connections are rejected. */
    size_t max_sessions = 32;
    /** How long a dispatcher waits for coalescable requests (us). */
    uint64_t coalesce_window_us = 200;
    /** Idle session timeout (slow-loris guard), ms. */
    uint64_t idle_timeout_ms = 5000;
    /** Dispatcher thread count. */
    size_t dispatchers = 2;
    /** Engine construction options (threads, backend, verify, pool cap). */
    engine::EngineOptions engine;

    /** Defaults overridden by MQX_SERVER_PORT / _QUEUE_DEPTH /
     *  _MAX_SESSIONS / _COALESCE_WINDOW_US / _IDLE_TIMEOUT_MS /
     *  _DISPATCHERS (hardened envUint parsing). */
    static ServerOptions fromEnv();
};

/** What stop() observed while draining. */
struct DrainReport {
    /** queue empty, all dispatchers idle, leasedCount() == 0. */
    bool clean = false;
    /** Workspace leases still outstanding at drain end (0 if clean). */
    size_t leased_at_drain = 0;
    /** Requests completed (any status) over the server's lifetime. */
    uint64_t served = 0;
    /** Requests shed with ResourceExhausted (queue/backlog overflow). */
    uint64_t shed = 0;
};

class PolymulServer
{
  public:
    explicit PolymulServer(ServerOptions options = ServerOptions());
    ~PolymulServer();

    PolymulServer(const PolymulServer&) = delete;
    PolymulServer& operator=(const PolymulServer&) = delete;

    /** Bind, listen, and spin up accept/dispatcher threads. */
    robust::Status start();

    /** Graceful drain; idempotent (second call reports the first's
     *  outcome). Safe to call on a never-started server. */
    DrainReport stop();

    /** Bound port (valid after start()). */
    uint16_t port() const { return listener_.port(); }

    bool running() const { return running_.load(std::memory_order_acquire); }

    engine::Engine& engine() { return engine_; }

    struct Stats {
        uint64_t accepted = 0;          ///< connections accepted
        uint64_t sessions_rejected = 0; ///< connections over max_sessions
        uint64_t requests = 0;          ///< frames decoded into requests
        uint64_t served = 0;            ///< responses sent (any status)
        uint64_t shed = 0;              ///< ResourceExhausted admissions
        uint64_t deadline_misses = 0;   ///< DeadlineExceeded responses
        uint64_t protocol_errors = 0;   ///< malformed frames/requests
        uint64_t coalesced_batches = 0; ///< batches of size >= 2
        uint64_t coalesced_requests = 0;///< requests served via a batch
    };
    Stats stats() const;

  private:
    struct Session;

    /** One admitted request: everything a dispatcher needs. */
    struct Pending {
        std::shared_ptr<Session> session;
        Request request;
        robust::CancelToken token; ///< deadline-armed iff has_token
        bool has_token = false;
        uint64_t admit_ns = 0;
    };

    void acceptLoop();
    void sessionLoop(std::shared_ptr<Session> session);
    void dispatchLoop();

    /** Session thread → queue. False = shed (queue full or draining). */
    bool admit(Pending&& pending);

    void execute(std::vector<Pending>& batch);
    void executeOne(Pending& pending);
    Response runEngineOp(Pending& pending);
    void respond(Session& session, const Response& resp);
    void sendStatus(Session& session, uint64_t request_id,
                    robust::StatusCode code, const std::string& message);

    std::shared_ptr<rns::RnsBasis> basisFor(const BasisSpec& spec);

    ServerOptions options_;
    engine::Engine engine_;
    ListenSocket listener_;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stop_dispatch_{false};

    std::thread accept_thread_;
    std::vector<std::thread> dispatch_threads_;

    std::mutex sessions_mutex_;
    std::vector<std::shared_ptr<Session>> sessions_;

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;   ///< work available
    std::condition_variable drained_cv_; ///< queue empty + dispatchers idle
    std::deque<Pending> queue_;
    size_t busy_dispatchers_ = 0;

    std::mutex basis_mutex_;
    std::map<std::tuple<uint32_t, uint32_t, uint32_t>,
             std::shared_ptr<rns::RnsBasis>>
        basis_cache_;

    mutable std::mutex stats_mutex_;
    Stats stats_;

    bool stopped_ = false;
    DrainReport last_drain_;
};

} // namespace net
} // namespace mqx
