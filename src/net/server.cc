/**
 * @file
 * PolymulServer implementation. See server.h for the architecture
 * (accept → sessions → bounded admission queue → coalescing
 * dispatchers → engine) and the drain/backpressure contracts.
 */
#include "net/server.h"

#include <chrono>
#include <new>
#include <utility>

#include "core/env.h"
#include "robust/fault_injection.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace net {

namespace {

/** Largest coalesced batch one dispatcher assembles. */
constexpr size_t kMaxBatch = 16;
/** Accept/read poll tick: bounds shutdown latency, not throughput. */
constexpr int kPollTickMs = 20;
/** Budget for writing one response (stalled-peer guard). */
constexpr int kWriteTimeoutMs = 2000;

/**
 * Map whatever just flew out of the engine/codec onto the wire status
 * taxonomy. Call from inside a catch block only.
 */
robust::Status
currentExceptionStatus()
{
    try {
        throw;
    } catch (const robust::StatusError& e) {
        return e.status();
    } catch (const InvalidArgument& e) {
        return robust::Status(robust::StatusCode::InvalidArgument,
                              e.what());
    } catch (const std::bad_alloc&) {
        return robust::Status(robust::StatusCode::ResourceExhausted,
                              "allocation failed");
    } catch (const std::exception& e) {
        return robust::Status(robust::StatusCode::Internal, e.what());
    } catch (...) {
        return robust::Status(robust::StatusCode::Internal,
                              "unknown exception");
    }
}

bool
coalescable(const Request& req, bool has_token)
{
    // Deadline-bearing requests run alone under their own token: one
    // slow lane must not be able to cancel a whole batch.
    return req.op == OpKind::Polymul && !has_token;
}

} // namespace

/** One live connection: socket + reader thread + write serialization. */
struct PolymulServer::Session {
    Socket sock;
    std::thread thread;
    std::atomic<bool> stop{false};
    std::atomic<bool> done{false};
    std::mutex write_mutex;
};

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions o;
    o.port = static_cast<uint16_t>(
        core::envUint("MQX_SERVER_PORT", o.port, 0, 65535));
    o.queue_depth = static_cast<size_t>(core::envUint(
        "MQX_SERVER_QUEUE_DEPTH", o.queue_depth, 1, 1u << 16));
    o.max_sessions = static_cast<size_t>(core::envUint(
        "MQX_SERVER_MAX_SESSIONS", o.max_sessions, 1, 4096));
    o.coalesce_window_us = core::envUint(
        "MQX_SERVER_COALESCE_WINDOW_US", o.coalesce_window_us, 0, 1000000);
    o.idle_timeout_ms = core::envUint("MQX_SERVER_IDLE_TIMEOUT_MS",
                                      o.idle_timeout_ms, 1, 600000);
    o.dispatchers = static_cast<size_t>(
        core::envUint("MQX_SERVER_DISPATCHERS", o.dispatchers, 1, 64));
    return o;
}

PolymulServer::PolymulServer(ServerOptions options)
    : options_(std::move(options)), engine_(options_.engine)
{
}

PolymulServer::~PolymulServer()
{
    stop();
}

robust::Status
PolymulServer::start()
{
    checkArg(!running_.load(std::memory_order_acquire) && !stopped_,
             "PolymulServer::start: already started");
    robust::Status s =
        ListenSocket::listenLoopback(options_.port, listener_);
    if (!s.ok())
        return s;
    running_.store(true, std::memory_order_release);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    for (size_t i = 0; i < options_.dispatchers; ++i)
        dispatch_threads_.emplace_back([this] { dispatchLoop(); });
    return robust::Status();
}

void
PolymulServer::acceptLoop()
{
    while (!draining_.load(std::memory_order_acquire)) {
        Socket sock;
        bool timed_out = false;
        robust::Status s;
        try {
            s = listener_.acceptOne(kPollTickMs, sock, timed_out);
        } catch (const robust::StatusError&) {
            // Injected net.accept failure: drop this connection
            // attempt, keep serving.
            telemetry::counter("net.accept_faults").add(1);
            continue;
        }
        // Reap finished session threads so max_sessions counts live
        // connections, not historical ones.
        {
            std::lock_guard<std::mutex> lock(sessions_mutex_);
            for (auto it = sessions_.begin(); it != sessions_.end();) {
                if ((*it)->done.load(std::memory_order_acquire)) {
                    if ((*it)->thread.joinable())
                        (*it)->thread.join();
                    it = sessions_.erase(it);
                } else {
                    ++it;
                }
            }
        }
        if (!s.ok()) {
            if (draining_.load(std::memory_order_acquire))
                break;
            telemetry::counter("net.accept_errors").add(1);
            continue;
        }
        if (timed_out)
            continue;
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.accepted;
        }
        telemetry::counter("net.accepted").add(1);
        std::shared_ptr<Session> session;
        {
            std::lock_guard<std::mutex> lock(sessions_mutex_);
            if (sessions_.size() >= options_.max_sessions) {
                // Over the session cap: count the rejection first (a
                // peer that sees the response must also see the stat),
                // then tell it why before closing, so its client
                // backoff kicks in.
                {
                    std::lock_guard<std::mutex> slock(stats_mutex_);
                    ++stats_.sessions_rejected;
                }
                telemetry::counter("net.sessions_rejected").add(1);
                Response resp;
                resp.code = robust::StatusCode::ResourceExhausted;
                resp.message = "session limit reached";
                std::vector<uint8_t> frame = encodeResponseFrame(resp);
                try {
                    (void)sock.writeAll(frame.data(), frame.size(),
                                        kPollTickMs);
                } catch (const robust::StatusError&) {
                    // injected net.write fault: nothing to salvage
                }
                continue;
            }
            session = std::make_shared<Session>();
            session->sock = std::move(sock);
            sessions_.push_back(session);
        }
        session->thread =
            std::thread([this, session] { sessionLoop(session); });
    }
}

void
PolymulServer::sessionLoop(std::shared_ptr<Session> session)
{
    FrameReader reader;
    uint8_t buf[8192];
    uint64_t last_activity_ns = telemetry::nowNs();
    const uint64_t idle_budget_ns = options_.idle_timeout_ms * 1000000ull;
    bool alive = true;
    while (alive && !session->stop.load(std::memory_order_acquire)) {
        IoResult io;
        try {
            io = session->sock.readSome(buf, sizeof(buf), kPollTickMs);
        } catch (const robust::StatusError&) {
            // injected net.read Throw: treat as a dropped peer
            break;
        }
        if (!io.status.ok() || io.eof)
            break;
        if (io.timed_out) {
            if (telemetry::nowNs() - last_activity_ns > idle_budget_ns) {
                // Slow-loris guard: a peer trickling partial frames
                // (or nothing) cannot pin a session forever.
                telemetry::counter("net.idle_closed").add(1);
                break;
            }
            continue;
        }
        last_activity_ns = telemetry::nowNs();
        reader.feed(buf, io.bytes);
        std::vector<uint8_t> body;
        while (alive) {
            FrameReader::Next next = reader.next(body);
            if (next == FrameReader::Next::NeedMore)
                break;
            if (next == FrameReader::Next::Error) {
                // Framing is lost; nothing further on this connection
                // can be trusted. Tell the peer and hang up.
                {
                    std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.protocol_errors;
                }
                telemetry::counter("net.protocol_errors").add(1);
                sendStatus(*session, 0,
                           robust::StatusCode::InvalidArgument,
                           reader.error().message());
                alive = false;
                break;
            }
            size_t body_len = body.size();
            try {
                // Post-framing corruption hook: a FlipBit/ShortRead
                // here exercises the decoder's malformed-body paths.
                MQX_FAULT_POINT_BYTES("net.frame", body.data(),
                                      &body_len);
            } catch (const robust::StatusError&) {
                alive = false;
                break;
            }
            Request req;
            robust::Status decoded =
                decodeRequest(body.data(), body_len, req);
            if (!decoded.ok()) {
                {
                    std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.protocol_errors;
                }
                telemetry::counter("net.protocol_errors").add(1);
                // Framing itself was intact, so the session survives
                // a bad body — only this request is rejected.
                sendStatus(*session, req.request_id, decoded.code(),
                           decoded.message());
                continue;
            }
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.requests;
            }
            telemetry::counter("net.requests").add(1);
            const uint64_t request_id = req.request_id;
            Pending pending;
            pending.session = session;
            if (req.deadline_ns != 0) {
                // Token armed at ADMISSION: queueing time counts
                // against the caller's budget.
                pending.token =
                    robust::CancelToken::withDeadlineNs(req.deadline_ns);
                pending.has_token = true;
            }
            pending.request = std::move(req);
            pending.admit_ns = telemetry::nowNs();
            if (!admit(std::move(pending))) {
                {
                    std::lock_guard<std::mutex> lock(stats_mutex_);
                    ++stats_.shed;
                }
                telemetry::counter("net.shed").add(1);
                sendStatus(*session, request_id,
                           robust::StatusCode::ResourceExhausted,
                           "admission queue full");
            }
        }
    }
    {
        // write_mutex serializes the close against concurrent response
        // writes (dispatchers finishing this session's in-flight work)
        // and against stop()'s shutdownBoth.
        std::lock_guard<std::mutex> lock(session->write_mutex);
        session->sock.closeNow();
    }
    session->done.store(true, std::memory_order_release);
}

bool
PolymulServer::admit(Pending&& pending)
{
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (draining_.load(std::memory_order_acquire) ||
        queue_.size() >= options_.queue_depth)
        return false;
    queue_.push_back(std::move(pending));
    queue_cv_.notify_one();
    return true;
}

void
PolymulServer::dispatchLoop()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            // Timed wait: a notify stolen by a coalescing sibling can
            // never strand an item; worst case it waits one tick.
            queue_cv_.wait_for(lock, std::chrono::milliseconds(10), [&] {
                return stop_dispatch_.load(std::memory_order_acquire) ||
                       !queue_.empty();
            });
            if (queue_.empty()) {
                if (stop_dispatch_.load(std::memory_order_acquire))
                    return;
                continue;
            }
            ++busy_dispatchers_;
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
            if (coalescable(batch[0].request, batch[0].has_token)) {
                const BasisSpec spec = batch[0].request.basis;
                const uint32_t n = batch[0].request.n;
                auto harvest = [&] {
                    for (auto it = queue_.begin();
                         it != queue_.end() && batch.size() < kMaxBatch;) {
                        if (coalescable(it->request, it->has_token) &&
                            it->request.basis == spec &&
                            it->request.n == n) {
                            batch.push_back(std::move(*it));
                            it = queue_.erase(it);
                        } else {
                            ++it;
                        }
                    }
                };
                harvest();
                if (batch.size() < kMaxBatch &&
                    options_.coalesce_window_us > 0 &&
                    !stop_dispatch_.load(std::memory_order_acquire)) {
                    // Hold the lane open briefly: requests arriving
                    // within the window ride the same engine batch.
                    queue_cv_.wait_for(lock,
                                       std::chrono::microseconds(
                                           options_.coalesce_window_us));
                    harvest();
                }
            }
        }
        execute(batch);
        {
            std::lock_guard<std::mutex> lock(queue_mutex_);
            --busy_dispatchers_;
            if (queue_.empty() && busy_dispatchers_ == 0)
                drained_cv_.notify_all();
        }
    }
}

std::shared_ptr<rns::RnsBasis>
PolymulServer::basisFor(const BasisSpec& spec)
{
    const auto key =
        std::make_tuple(spec.bits, spec.two_adicity, spec.channels);
    std::lock_guard<std::mutex> lock(basis_mutex_);
    auto it = basis_cache_.find(key);
    if (it != basis_cache_.end())
        return it->second;
    // May throw InvalidArgument (unsatisfiable bits/two_adicity) —
    // mapped to a wire status by the caller.
    auto basis = std::make_shared<rns::RnsBasis>(
        static_cast<int>(spec.bits), static_cast<int>(spec.two_adicity),
        static_cast<int>(spec.channels));
    basis_cache_.emplace(key, basis);
    return basis;
}

namespace {

/** Move wire operands into an RnsPolynomial (no copy: buffer swap). */
rns::RnsPolynomial
assemblePoly(const rns::RnsBasis& basis, Request& req, size_t operand)
{
    rns::RnsPolynomial poly(basis, req.n);
    const size_t k = req.basis.channels;
    for (size_t c = 0; c < k; ++c)
        poly.channel(c).swap(req.operands[operand * k + c]);
    return poly;
}

void
extractChannels(rns::RnsPolynomial& poly, Response& resp)
{
    resp.basis.channels = static_cast<uint32_t>(poly.basis().size());
    resp.n = static_cast<uint32_t>(poly.n());
    resp.channels.resize(poly.basis().size());
    for (size_t c = 0; c < resp.channels.size(); ++c)
        resp.channels[c].swap(poly.channel(c));
}

} // namespace

Response
PolymulServer::runEngineOp(Pending& pending)
{
    Request& req = pending.request;
    Response resp;
    resp.request_id = req.request_id;
    const robust::CancelToken* token =
        pending.has_token ? &pending.token : nullptr;
    auto basis = basisFor(req.basis); // throws on bad spec
    robust::Status valid = validateResidues(req, *basis);
    if (!valid.ok()) {
        resp.code = valid.code();
        resp.message = valid.message();
        return resp;
    }
    if (token)
        pending.token.checkpoint("net.dispatch");
    rns::RnsPolynomial c(*basis, req.n);
    switch (req.op) {
    case OpKind::Polymul: {
        rns::RnsPolynomial a = assemblePoly(*basis, req, 0);
        rns::RnsPolynomial b = assemblePoly(*basis, req, 1);
        engine_.polymulNegacyclicInto(a, b, c, token);
        break;
    }
    case OpKind::Add: {
        rns::RnsPolynomial a = assemblePoly(*basis, req, 0);
        rns::RnsPolynomial b = assemblePoly(*basis, req, 1);
        engine_.addInto(a, b, c, token);
        break;
    }
    case OpKind::Fma: {
        const size_t pairs = req.operandCount() / 2;
        std::vector<rns::RnsPolynomial> polys;
        polys.reserve(pairs * 2);
        for (size_t p = 0; p < pairs * 2; ++p)
            polys.push_back(assemblePoly(*basis, req, p));
        std::vector<std::pair<const rns::RnsPolynomial*,
                              const rns::RnsPolynomial*>>
            products;
        products.reserve(pairs);
        for (size_t p = 0; p < pairs; ++p)
            products.emplace_back(&polys[2 * p], &polys[2 * p + 1]);
        engine_.fmaBatchInto(products, c, token);
        break;
    }
    }
    resp.code = robust::StatusCode::Ok;
    resp.basis = req.basis;
    extractChannels(c, resp);
    return resp;
}

void
PolymulServer::executeOne(Pending& pending)
{
    Response resp;
    resp.request_id = pending.request.request_id;
    try {
        resp = runEngineOp(pending);
    } catch (...) {
        robust::Status s = currentExceptionStatus();
        resp.code = s.code();
        resp.message = s.message();
        resp.basis = BasisSpec();
        resp.n = 0;
        resp.channels.clear();
    }
    if (resp.code == robust::StatusCode::DeadlineExceeded) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.deadline_misses;
    }
    telemetry::spanSite("net.request")
        .hist.record(telemetry::nowNs() - pending.admit_ns);
    respond(*pending.session, resp);
}

void
PolymulServer::execute(std::vector<Pending>& batch)
{
    if (batch.size() == 1) {
        executeOne(batch[0]);
        return;
    }
    // Coalesced path: every entry is a no-deadline polymul with the
    // same (basis, n) — one engine batch serves them all.
    std::shared_ptr<rns::RnsBasis> basis;
    try {
        basis = basisFor(batch[0].request.basis);
    } catch (...) {
        robust::Status s = currentExceptionStatus();
        for (Pending& p : batch)
            sendStatus(*p.session, p.request.request_id, s.code(),
                       s.message());
        return;
    }
    std::vector<Pending*> live;
    std::vector<rns::RnsPolynomial> polys;
    polys.reserve(batch.size() * 2);
    for (Pending& p : batch) {
        robust::Status valid = validateResidues(p.request, *basis);
        if (!valid.ok()) {
            sendStatus(*p.session, p.request.request_id, valid.code(),
                       valid.message());
            continue;
        }
        polys.push_back(assemblePoly(*basis, p.request, 0));
        polys.push_back(assemblePoly(*basis, p.request, 1));
        live.push_back(&p);
    }
    if (live.empty())
        return;
    std::vector<
        std::pair<const rns::RnsPolynomial*, const rns::RnsPolynomial*>>
        products;
    products.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i)
        products.emplace_back(&polys[2 * i], &polys[2 * i + 1]);
    try {
        std::vector<rns::RnsPolynomial> results =
            engine_.polymulNegacyclicBatch(products, nullptr);
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.coalesced_batches;
            stats_.coalesced_requests += live.size();
        }
        telemetry::counter("net.coalesced").add(live.size());
        for (size_t i = 0; i < live.size(); ++i) {
            Response resp;
            resp.code = robust::StatusCode::Ok;
            resp.request_id = live[i]->request.request_id;
            resp.basis = live[i]->request.basis;
            extractChannels(results[i], resp);
            telemetry::spanSite("net.request")
                .hist.record(telemetry::nowNs() - live[i]->admit_ns);
            respond(*live[i]->session, resp);
        }
    } catch (...) {
        robust::Status s = currentExceptionStatus();
        for (Pending* p : live)
            sendStatus(*p->session, p->request.request_id, s.code(),
                       s.message());
    }
}

void
PolymulServer::respond(Session& session, const Response& resp)
{
    std::vector<uint8_t> frame = encodeResponseFrame(resp);
    robust::Status s;
    {
        std::lock_guard<std::mutex> lock(session.write_mutex);
        try {
            s = session.sock.writeAll(frame.data(), frame.size(),
                                      kWriteTimeoutMs);
        } catch (const robust::StatusError& e) {
            s = e.status(); // injected net.write fault
        }
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.served;
    if (!s.ok())
        telemetry::counter("net.write_errors").add(1);
    telemetry::counter("net.served").add(1);
}

void
PolymulServer::sendStatus(Session& session, uint64_t request_id,
                          robust::StatusCode code,
                          const std::string& message)
{
    Response resp;
    resp.code = code;
    resp.request_id = request_id;
    resp.message = message.size() <= kMaxMessageBytes
                       ? message
                       : message.substr(0, kMaxMessageBytes);
    respond(session, resp);
}

PolymulServer::Stats
PolymulServer::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

DrainReport
PolymulServer::stop()
{
    if (stopped_)
        return last_drain_;
    draining_.store(true, std::memory_order_release);
    if (running_.load(std::memory_order_acquire)) {
        // The accept loop notices draining_ within one poll tick, so
        // join it BEFORE closing the listener — closing an fd another
        // thread is polling is a race (and an fd-reuse hazard).
        if (accept_thread_.joinable())
            accept_thread_.join();
        listener_.closeNow();
        // Finish everything already admitted before stopping the
        // dispatchers: that is the "graceful" in graceful drain.
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            drained_cv_.wait(lock, [&] {
                return queue_.empty() && busy_dispatchers_ == 0;
            });
        }
        stop_dispatch_.store(true, std::memory_order_release);
        queue_cv_.notify_all();
        for (std::thread& t : dispatch_threads_)
            t.join();
        dispatch_threads_.clear();
        std::vector<std::shared_ptr<Session>> sessions;
        {
            std::lock_guard<std::mutex> lock(sessions_mutex_);
            sessions.swap(sessions_);
        }
        for (auto& session : sessions) {
            session->stop.store(true, std::memory_order_release);
            // Serialized against the session thread's own closeNow()
            // and any in-flight response write.
            std::lock_guard<std::mutex> lock(session->write_mutex);
            session->sock.shutdownBoth();
        }
        for (auto& session : sessions) {
            if (session->thread.joinable())
                session->thread.join();
        }
        running_.store(false, std::memory_order_release);
    }
    DrainReport report;
    report.leased_at_drain = engine_.workspacePool().leasedCount();
    report.clean = report.leased_at_drain == 0;
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        report.served = stats_.served;
        report.shed = stats_.shed;
    }
    telemetry::counter("net.drains").add(1);
    stopped_ = true;
    last_drain_ = report;
    return report;
}

} // namespace net
} // namespace mqx
