/**
 * @file
 * In-process client for the polymul service (ISSUE 10 tentpole).
 *
 * call() sends one request frame and waits for the matching response,
 * retrying ONLY retryable outcomes (robust::statusRetryable — i.e.
 * ResourceExhausted backpressure sheds and injected test faults — plus
 * transport failures, which always reconnect-and-retry) under jittered
 * exponential backoff. Non-retryable codes (InvalidArgument,
 * DeadlineExceeded, DataCorruption, Internal) return immediately:
 * resending a request whose budget is gone or whose bytes are
 * malformed only amplifies an overload.
 *
 * Backoff: attempt k sleeps min(cap, base << k) scaled by a seeded
 * jitter in [0.5, 1.5) — deterministic per (seed, attempt), so chaos
 * tests replay identical retry schedules while concurrent clients with
 * different seeds still decorrelate their retry storms.
 */
#pragma once

#include <cstdint>

#include "bench_util/rng.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mqx {
namespace rns {
class RnsPolynomial;
}

namespace net {

struct ClientOptions {
    /** Server port on 127.0.0.1 (required). */
    uint16_t port = 0;
    /** Per-read/-write poll budget. */
    int io_timeout_ms = 5000;
    /** Total tries per call() (first attempt + retries). */
    int max_attempts = 4;
    uint64_t backoff_base_us = 200;
    uint64_t backoff_cap_us = 50000;
    /** Seed for the jitter stream (vary per client instance). */
    uint64_t jitter_seed = 1;
};

class Client
{
  public:
    explicit Client(ClientOptions options)
        : options_(options), rng_(options.jitter_seed)
    {
    }

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /**
     * Send @p req, fill @p out with the server's response. The
     * returned status is the transport verdict of the LAST attempt
     * (OK means @p out holds a decoded response — whose code may
     * still be any server-side status).
     */
    robust::Status call(const Request& req, Response& out);

    /** Retries performed across all call()s (tests/bench). */
    uint64_t retries() const { return retries_; }

    /** Drop the connection (next call reconnects). */
    void
    disconnect()
    {
        sock_.closeNow();
    }

    // -- Request builders ------------------------------------------------

    /** Polymul request from two same-basis Coeff polynomials. */
    static Request makePolymul(const rns::RnsPolynomial& a,
                               const rns::RnsPolynomial& b,
                               const BasisSpec& spec, uint64_t request_id,
                               uint64_t deadline_ns = 0);

  private:
    /** One wire round-trip; non-OK status = transport failure. Skips
     *  stale responses whose request_id matches neither @p expected_id
     *  nor 0 (protocol-error responses carry id 0). */
    robust::Status callOnce(const std::vector<uint8_t>& frame,
                            uint64_t expected_id, Response& out);
    void backoff(int attempt);

    ClientOptions options_;
    Socket sock_;
    SplitMix64 rng_;
    uint64_t retries_ = 0;
};

} // namespace net
} // namespace mqx
