/**
 * @file
 * Wire codec implementation. See wire.h for the frame layout and the
 * defensive-decoding contract.
 */
#include "net/wire.h"

#include <limits>

#include "core/config.h"
#include "rns/rns.h"

namespace mqx {
namespace net {

namespace {

/** Bounds-checked little-endian reader over a fixed buffer. */
class Reader
{
  public:
    Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

    bool
    u8(uint8_t& v)
    {
        if (len_ - pos_ < 1)
            return false;
        v = data_[pos_];
        pos_ += 1;
        return true;
    }

    bool
    u16(uint16_t& v)
    {
        if (len_ - pos_ < 2)
            return false;
        v = static_cast<uint16_t>(data_[pos_]) |
            static_cast<uint16_t>(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return true;
    }

    bool
    u32(uint32_t& v)
    {
        if (len_ - pos_ < 4)
            return false;
        v = loadU32(data_ + pos_);
        pos_ += 4;
        return true;
    }

    bool
    u64(uint64_t& v)
    {
        if (len_ - pos_ < 8)
            return false;
        v = static_cast<uint64_t>(loadU32(data_ + pos_)) |
            static_cast<uint64_t>(loadU32(data_ + pos_ + 4)) << 32;
        pos_ += 8;
        return true;
    }

    bool
    bytes(void* dst, size_t n)
    {
        if (len_ - pos_ < n)
            return false;
        std::memcpy(dst, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    size_t remaining() const { return len_ - pos_; }

    static uint32_t
    loadU32(const uint8_t* p)
    {
        return static_cast<uint32_t>(p[0]) |
               static_cast<uint32_t>(p[1]) << 8 |
               static_cast<uint32_t>(p[2]) << 16 |
               static_cast<uint32_t>(p[3]) << 24;
    }

  private:
    const uint8_t* data_;
    size_t len_;
    size_t pos_ = 0;
};

/** Little-endian appender. */
class Writer
{
  public:
    explicit Writer(std::vector<uint8_t>& out) : out_(out) {}

    void u8(uint8_t v) { out_.push_back(v); }

    void
    u16(uint16_t v)
    {
        u8(static_cast<uint8_t>(v));
        u8(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(static_cast<uint16_t>(v));
        u16(static_cast<uint16_t>(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(static_cast<uint32_t>(v));
        u32(static_cast<uint32_t>(v >> 32));
    }

    void
    bytes(const void* src, size_t n)
    {
        const uint8_t* p = static_cast<const uint8_t*>(src);
        out_.insert(out_.end(), p, p + n);
    }

  private:
    std::vector<uint8_t>& out_;
};

robust::Status
badFrame(const char* what)
{
    return robust::Status(robust::StatusCode::InvalidArgument,
                          std::string("wire: ") + what);
}

void
writeResidues(Writer& w, const ResidueVector& v)
{
    for (size_t i = 0; i < v.size(); ++i) {
        const U128 r = v.at(i);
        w.u64(r.lo);
        w.u64(r.hi);
    }
}

bool
readResidues(Reader& r, ResidueVector& v, uint32_t n)
{
    v.ensure(n);
    for (uint32_t i = 0; i < n; ++i) {
        uint64_t lo = 0, hi = 0;
        if (!r.u64(lo) || !r.u64(hi))
            return false;
        v.set(i, U128::fromParts(hi, lo));
    }
    return true;
}

/** Reject hostile shapes before any size multiplication. */
robust::Status
checkShape(const BasisSpec& basis, uint32_t n)
{
    if (n == 0 || n > kMaxN)
        return badFrame("n out of range");
    if (basis.channels == 0 || basis.channels > kMaxChannels)
        return badFrame("channel count out of range");
    if (basis.bits == 0 || basis.bits > 124)
        return badFrame("prime bits out of range");
    if (basis.two_adicity == 0 || basis.two_adicity > 64)
        return badFrame("two_adicity out of range");
    return robust::Status();
}

std::vector<uint8_t>
finishFrame(std::vector<uint8_t>&& frame)
{
    const uint64_t body = frame.size() - kHeaderBytes;
    checkArg(body <= kMaxBodyBytes, "wire: frame body exceeds cap");
    frame[4] = static_cast<uint8_t>(body);
    frame[5] = static_cast<uint8_t>(body >> 8);
    frame[6] = static_cast<uint8_t>(body >> 16);
    frame[7] = static_cast<uint8_t>(body >> 24);
    return std::move(frame);
}

void
beginFrame(Writer& w)
{
    w.u32(kFrameMagic);
    w.u32(0); // body_len patched by finishFrame
}

} // namespace

std::vector<uint8_t>
encodeRequestFrame(const Request& req)
{
    checkArg(req.basis.channels != 0 &&
                 req.operands.size() % req.basis.channels == 0,
             "wire: operands not a multiple of channel count");
    std::vector<uint8_t> frame;
    const size_t payload =
        req.operands.size() * static_cast<size_t>(req.n) * 16;
    frame.reserve(kHeaderBytes + 40 + payload);
    Writer w(frame);
    beginFrame(w);
    w.u8(static_cast<uint8_t>(MsgType::Request));
    w.u8(static_cast<uint8_t>(req.op));
    w.u16(kWireVersion);
    w.u64(req.request_id);
    w.u64(req.deadline_ns);
    w.u32(req.basis.bits);
    w.u32(req.basis.two_adicity);
    w.u32(req.basis.channels);
    w.u32(req.n);
    w.u32(static_cast<uint32_t>(req.operandCount()));
    for (const ResidueVector& v : req.operands) {
        checkArg(v.size() == req.n, "wire: operand length != n");
        writeResidues(w, v);
    }
    return finishFrame(std::move(frame));
}

std::vector<uint8_t>
encodeResponseFrame(const Response& resp)
{
    checkArg(resp.message.size() <= kMaxMessageBytes,
             "wire: response message exceeds cap");
    std::vector<uint8_t> frame;
    const size_t payload =
        resp.channels.size() * static_cast<size_t>(resp.n) * 16;
    frame.reserve(kHeaderBytes + 36 + resp.message.size() + payload);
    Writer w(frame);
    beginFrame(w);
    w.u8(static_cast<uint8_t>(MsgType::Response));
    w.u8(static_cast<uint8_t>(resp.code));
    w.u16(kWireVersion);
    w.u64(resp.request_id);
    w.u32(static_cast<uint32_t>(resp.message.size()));
    w.bytes(resp.message.data(), resp.message.size());
    w.u32(resp.basis.bits);
    w.u32(resp.basis.two_adicity);
    w.u32(resp.basis.channels);
    w.u32(resp.n);
    for (const ResidueVector& v : resp.channels) {
        checkArg(v.size() == resp.n, "wire: response channel length != n");
        writeResidues(w, v);
    }
    return finishFrame(std::move(frame));
}

robust::Status
decodeRequest(const uint8_t* body, size_t len, Request& out)
{
    Reader r(body, len);
    uint8_t msg_type = 0, op = 0;
    uint16_t version = 0;
    if (!r.u8(msg_type) || !r.u8(op) || !r.u16(version))
        return badFrame("truncated request header");
    if (msg_type != static_cast<uint8_t>(MsgType::Request))
        return badFrame("not a request frame");
    if (version != kWireVersion)
        return badFrame("unsupported wire version");
    if (op != static_cast<uint8_t>(OpKind::Polymul) &&
        op != static_cast<uint8_t>(OpKind::Fma) &&
        op != static_cast<uint8_t>(OpKind::Add))
        return badFrame("unknown op kind");
    out.op = static_cast<OpKind>(op);
    uint32_t operand_count = 0;
    if (!r.u64(out.request_id) || !r.u64(out.deadline_ns) ||
        !r.u32(out.basis.bits) || !r.u32(out.basis.two_adicity) ||
        !r.u32(out.basis.channels) || !r.u32(out.n) ||
        !r.u32(operand_count))
        return badFrame("truncated request header");
    robust::Status shape = checkShape(out.basis, out.n);
    if (!shape.ok())
        return shape;
    if (operand_count == 0 || operand_count > kMaxOperands)
        return badFrame("operand count out of range");
    if (out.op != OpKind::Fma && operand_count != 2)
        return badFrame("op requires exactly 2 operands");
    if (out.op == OpKind::Fma && operand_count % 2 != 0)
        return badFrame("fma requires operand pairs");
    // Caps hold, so this product is < 2^8 * 2^6 * 2^20 * 2^4 = 2^38:
    // no uint64 overflow is possible, and a lying body_len is caught
    // by the exact-length comparison rather than a wild read.
    const uint64_t vectors =
        static_cast<uint64_t>(operand_count) * out.basis.channels;
    const uint64_t payload = vectors * out.n * 16;
    if (r.remaining() != payload)
        return badFrame("payload length mismatch");
    out.operands.resize(static_cast<size_t>(vectors));
    for (ResidueVector& v : out.operands) {
        if (!readResidues(r, v, out.n))
            return badFrame("truncated payload");
    }
    if (r.remaining() != 0)
        return badFrame("trailing bytes after payload");
    return robust::Status();
}

robust::Status
decodeResponse(const uint8_t* body, size_t len, Response& out)
{
    Reader r(body, len);
    uint8_t msg_type = 0, code = 0;
    uint16_t version = 0;
    if (!r.u8(msg_type) || !r.u8(code) || !r.u16(version))
        return badFrame("truncated response header");
    if (msg_type != static_cast<uint8_t>(MsgType::Response))
        return badFrame("not a response frame");
    if (version != kWireVersion)
        return badFrame("unsupported wire version");
    if (code > static_cast<uint8_t>(robust::StatusCode::InvalidArgument))
        return badFrame("unknown status code");
    out.code = static_cast<robust::StatusCode>(code);
    uint32_t message_len = 0;
    if (!r.u64(out.request_id) || !r.u32(message_len))
        return badFrame("truncated response header");
    if (message_len > kMaxMessageBytes)
        return badFrame("message length out of range");
    out.message.resize(message_len);
    if (message_len != 0 && !r.bytes(&out.message[0], message_len))
        return badFrame("truncated message");
    if (!r.u32(out.basis.bits) || !r.u32(out.basis.two_adicity) ||
        !r.u32(out.basis.channels) || !r.u32(out.n))
        return badFrame("truncated response shape");
    out.channels.clear();
    if (out.basis.channels == 0 && out.n == 0) {
        if (r.remaining() != 0)
            return badFrame("trailing bytes after error response");
        return robust::Status();
    }
    robust::Status shape = checkShape(out.basis, out.n);
    if (!shape.ok())
        return shape;
    const uint64_t payload =
        static_cast<uint64_t>(out.basis.channels) * out.n * 16;
    if (r.remaining() != payload)
        return badFrame("payload length mismatch");
    out.channels.resize(out.basis.channels);
    for (ResidueVector& v : out.channels) {
        if (!readResidues(r, v, out.n))
            return badFrame("truncated payload");
    }
    return robust::Status();
}

robust::Status
validateResidues(const Request& req, const rns::RnsBasis& basis)
{
    const size_t k = req.basis.channels;
    for (size_t idx = 0; idx < req.operands.size(); ++idx) {
        const U128& q = basis.modulus(idx % k).value();
        const ResidueVector& v = req.operands[idx];
        for (size_t i = 0; i < v.size(); ++i) {
            if (!(v.at(i) < q))
                return robust::Status(
                    robust::StatusCode::InvalidArgument,
                    "wire: residue >= channel modulus");
        }
    }
    return robust::Status();
}

void
FrameReader::feed(const uint8_t* data, size_t len)
{
    if (poisoned_)
        return;
    // Compact consumed prefix before growing, so a long-lived session
    // does not accumulate every frame it ever parsed.
    if (pos_ > 0 && pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > 4096) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

FrameReader::Next
FrameReader::next(std::vector<uint8_t>& body)
{
    if (poisoned_)
        return Next::Error;
    if (buf_.size() - pos_ < kHeaderBytes)
        return Next::NeedMore;
    const uint8_t* hdr = buf_.data() + pos_;
    const uint32_t magic = Reader::loadU32(hdr);
    const uint32_t body_len = Reader::loadU32(hdr + 4);
    if (magic != kFrameMagic) {
        poisoned_ = true;
        error_ = badFrame("bad frame magic");
        return Next::Error;
    }
    if (body_len > kMaxBodyBytes) {
        poisoned_ = true;
        error_ = badFrame("frame body exceeds cap");
        return Next::Error;
    }
    if (buf_.size() - pos_ < kHeaderBytes + body_len)
        return Next::NeedMore;
    body.assign(buf_.begin() +
                    static_cast<ptrdiff_t>(pos_ + kHeaderBytes),
                buf_.begin() +
                    static_cast<ptrdiff_t>(pos_ + kHeaderBytes + body_len));
    pos_ += kHeaderBytes + body_len;
    return Next::Frame;
}

} // namespace net
} // namespace mqx
