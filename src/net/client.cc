/**
 * @file
 * Client implementation: reconnecting transport + retry-with-backoff
 * policy gated on robust::statusRetryable.
 */
#include "net/client.h"

#include <chrono>
#include <thread>

#include "rns/rns.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace net {

robust::Status
Client::callOnce(const std::vector<uint8_t>& frame, uint64_t expected_id,
                 Response& out)
{
    if (!sock_.valid()) {
        robust::Status s =
            connectLoopback(options_.port, options_.io_timeout_ms, sock_);
        if (!s.ok())
            return s;
    }
    robust::Status s = sock_.writeAll(frame.data(), frame.size(),
                                      options_.io_timeout_ms);
    if (!s.ok()) {
        sock_.closeNow();
        return s;
    }
    FrameReader reader;
    uint8_t buf[8192];
    const uint64_t start_ns = telemetry::nowNs();
    const uint64_t budget_ns =
        static_cast<uint64_t>(options_.io_timeout_ms) * 1000000ull;
    std::vector<uint8_t> body;
    for (;;) {
        if (telemetry::nowNs() - start_ns > budget_ns) {
            sock_.closeNow();
            return robust::Status(robust::StatusCode::DeadlineExceeded,
                                  "client: response timed out");
        }
        IoResult io = sock_.readSome(buf, sizeof(buf), 20);
        if (!io.status.ok() || io.eof) {
            sock_.closeNow();
            return io.status.ok()
                       ? robust::Status(
                             robust::StatusCode::ResourceExhausted,
                             "client: connection closed by server")
                       : io.status;
        }
        if (io.timed_out)
            continue;
        reader.feed(buf, io.bytes);
        for (;;) {
            FrameReader::Next next = reader.next(body);
            if (next == FrameReader::Next::NeedMore)
                break;
            if (next == FrameReader::Next::Error) {
                sock_.closeNow();
                return reader.error();
            }
            robust::Status decoded =
                decodeResponse(body.data(), body.size(), out);
            if (!decoded.ok()) {
                sock_.closeNow();
                return decoded;
            }
            // A stale response (an earlier attempt that timed out) is
            // discarded; id 0 marks a session-level protocol error
            // verdict, which is for us no matter what we sent.
            if (out.request_id == expected_id || out.request_id == 0)
                return decoded;
        }
    }
}

void
Client::backoff(int attempt)
{
    uint64_t delay_us = options_.backoff_base_us
                        << (attempt < 20 ? attempt : 20);
    if (delay_us > options_.backoff_cap_us)
        delay_us = options_.backoff_cap_us;
    // Jitter in [0.5, 1.5): decorrelates concurrent clients' retry
    // storms while staying deterministic per (seed, attempt).
    delay_us = delay_us / 2 + rng_.next() % (delay_us | 1);
    telemetry::counter("net.client_backoff_us").add(delay_us);
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
}

robust::Status
Client::call(const Request& req, Response& out)
{
    const std::vector<uint8_t> frame = encodeRequestFrame(req);
    robust::Status last;
    for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
        if (attempt > 0) {
            ++retries_;
            telemetry::counter("net.client_retries").add(1);
            backoff(attempt - 1);
        }
        last = callOnce(frame, req.request_id, out);
        if (!last.ok()) {
            // Transport failure: the connection is gone; whether the
            // op ran is unknown. Ops here are pure (no server-side
            // state mutates), so resending is always safe — but a
            // wire-level InvalidArgument (our frame is broken) or
            // timeout (budget spent) will not improve on resend.
            if (last.code() == robust::StatusCode::InvalidArgument ||
                last.code() == robust::StatusCode::DeadlineExceeded)
                return last;
            continue;
        }
        if (out.code == robust::StatusCode::Ok ||
            !robust::statusRetryable(out.code))
            return last;
        // Retryable server-side status (backpressure shed / injected
        // fault): back off and try again.
    }
    return last;
}

Request
Client::makePolymul(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                    const BasisSpec& spec, uint64_t request_id,
                    uint64_t deadline_ns)
{
    checkArg(a.basis().size() == spec.channels &&
                 b.basis().size() == spec.channels && a.n() == b.n(),
             "makePolymul: operand shape mismatch");
    Request req;
    req.op = OpKind::Polymul;
    req.request_id = request_id;
    req.deadline_ns = deadline_ns;
    req.basis = spec;
    req.n = static_cast<uint32_t>(a.n());
    req.operands.resize(2 * spec.channels);
    for (uint32_t c = 0; c < spec.channels; ++c) {
        req.operands[c] = a.channel(c);
        req.operands[spec.channels + c] = b.channel(c);
    }
    return req;
}

} // namespace net
} // namespace mqx
