/**
 * @file
 * Minimal RAII POSIX socket layer for the polymul service (ISSUE 10).
 *
 * This is the ONLY file in the tree allowed to touch raw socket
 * syscalls (enforced by the mqxlint `net-hygiene` rule): everything
 * above it speaks Status-returning reads/writes with explicit
 * timeouts. Every blocking primitive is poll-guarded — there is no
 * unbounded recv/send anywhere — so a stalled or malicious peer costs
 * one timeout tick, never a hung thread.
 *
 * Scope: loopback only (the server binds 127.0.0.1). The service is an
 * in-process/colocated boundary for the engine, not an internet-facing
 * endpoint; TLS, auth, and address configuration are out of scope.
 *
 * Fault points (fault-injection builds): `net.accept` (control) fires
 * on the accept path; `net.read` / `net.write` are byte points that
 * can flip bits or truncate lengths, turning torn frames and short
 * writes into deterministic, seeded chaos instead of flakes.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "robust/status.h"

namespace mqx {
namespace net {

/** Outcome of one bounded read attempt. */
struct IoResult {
    robust::Status status; ///< non-OK only on hard socket errors
    size_t bytes = 0;      ///< bytes read (0 on timeout/eof)
    bool timed_out = false;
    bool eof = false; ///< orderly peer shutdown
};

/** RAII connected-socket handle; move-only. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { closeNow(); }

    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket&
    operator=(Socket&& other) noexcept
    {
        if (this != &other) {
            closeNow();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Read up to @p cap bytes, waiting at most @p timeout_ms for data.
     * Returns bytes=0 with timed_out (no data in time) or eof (peer
     * closed); a non-OK status means the connection is unusable.
     */
    IoResult readSome(uint8_t* buf, size_t cap, int timeout_ms);

    /**
     * Write all @p len bytes, poll-guarding every chunk; fails with
     * DeadlineExceeded when @p timeout_ms elapses before completion
     * (the stalled-write guard) or ResourceExhausted/Internal on
     * socket errors.
     */
    robust::Status writeAll(const uint8_t* data, size_t len,
                            int timeout_ms);

    /** Shut down both directions (unblocks a peer mid-read). */
    void shutdownBoth();

    void closeNow();

    /** Give up ownership of the fd without closing it. */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/** RAII loopback listener; move-only. */
class ListenSocket
{
  public:
    ListenSocket() = default;
    ~ListenSocket() { closeNow(); }
    ListenSocket(ListenSocket&& other) noexcept
        : fd_(other.fd_), port_(other.port_)
    {
        other.fd_ = -1;
        other.port_ = 0;
    }
    ListenSocket& operator=(ListenSocket&&) = delete;
    ListenSocket(const ListenSocket&) = delete;
    ListenSocket& operator=(const ListenSocket&) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = kernel-assigned, read back via
     * port()) and listen.
     */
    static robust::Status listenLoopback(uint16_t port, ListenSocket& out);

    bool valid() const { return fd_ >= 0; }
    uint16_t port() const { return port_; }

    /**
     * Accept one connection, waiting at most @p timeout_ms.
     * timed_out=true with an OK status means "no one knocked".
     */
    robust::Status acceptOne(int timeout_ms, Socket& out, bool& timed_out);

    void closeNow();

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

/** Connect to 127.0.0.1:@p port (bounded by @p timeout_ms). */
robust::Status connectLoopback(uint16_t port, int timeout_ms, Socket& out);

} // namespace net
} // namespace mqx
