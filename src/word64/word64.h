/**
 * @file
 * Single-word (64-bit) modular kernels — the industry-standard mode of
 * CPU FHE libraries (Intel HEXL et al., paper Section 8: "the majority
 * of CPU-based solutions support only 32-bit or 64-bit arithmetic and
 * rely on RNS"). mqxlib's primary target is the 128-bit double-word
 * regime; this module provides the single-word counterpart so that
 * (a) users with 64-bit parameter sets get first-class kernels and
 * (b) the benches can quantify exactly how much the double-word
 * arithmetic costs per butterfly — the gap MQX exists to shrink.
 *
 * Same algorithms one level down: Barrett reduction with
 * mu = floor(2^2b / q) for q of b <= 62 bits, conditional-subtract
 * add/sub, Pease constant-geometry NTT — and the same Shoup-lazy
 * steady state as the double-word stack: compact power-table twiddles
 * with precomputed quotients floor(w * 2^64 / q), lazy [0, 2q)
 * butterfly operands (q < 2^62 leaves two bits of headroom), and a
 * single fused canonicalization in the last stage / n^-1 scaling.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/aligned.h"
#include "core/backend.h"
#include "u128/u128.h"

namespace mqx {
namespace w64 {

/** A single-word modulus with Barrett precomputation. */
class Modulus64
{
  public:
    /** @throws InvalidArgument unless 2 <= q < 2^62. */
    explicit Modulus64(uint64_t q);

    uint64_t value() const { return q_; }
    uint64_t mu() const { return mu_; }
    int bits() const { return bits_; }

    uint64_t
    addMod(uint64_t a, uint64_t b) const
    {
        uint64_t s = a + b; // cannot wrap: a, b < q < 2^62
        return s >= q_ ? s - q_ : s;
    }

    uint64_t
    subMod(uint64_t a, uint64_t b) const
    {
        return a >= b ? a - b : a - b + q_;
    }

    /** Barrett-reduced product for a, b < q. */
    uint64_t
    mulMod(uint64_t a, uint64_t b) const
    {
        uint64_t p_hi = 0, p_lo = 0;
        mulWide64(a, b, p_hi, p_lo);
        // x1 = x >> (b-1); e = (x1 * mu) >> (b+1); c = lo(x) - e*q.
        uint64_t x1 = shift1_ >= 64
                          ? p_hi >> (shift1_ - 64)
                          : (p_lo >> shift1_) | (p_hi << (64 - shift1_));
        uint64_t e_hi = 0, e_lo = 0;
        mulWide64(x1, mu_, e_hi, e_lo);
        uint64_t e = shift2_ >= 64
                         ? e_hi >> (shift2_ - 64)
                         : (e_lo >> shift2_) | (e_hi << (64 - shift2_));
        uint64_t c = p_lo - e * q_;
        if (c >= q_)
            c -= q_;
        if (c >= q_)
            c -= q_;
        return c;
    }

    /**
     * Shoup companion wq = floor(w * 2^64 / q) for a fixed w < q
     * (setup path; one BigUInt division).
     */
    uint64_t shoupPrecompute(uint64_t w) const;

    /**
     * Shoup multiply by fixed w with companion wq: r = a*w - h*q with
     * h = mulhi(a, wq); r is in [0, 2q) for ANY a (see
     * mod::mulModShoup for the estimate bound). No Barrett shifts, no
     * correction subtractions.
     */
    uint64_t
    mulModShoup(uint64_t a, uint64_t w, uint64_t wq) const
    {
        uint64_t h_hi = 0, h_lo = 0;
        mulWide64(a, wq, h_hi, h_lo);
        return a * w - h_hi * q_;
    }

    /** a^e mod q. */
    uint64_t powMod(uint64_t base, uint64_t exponent) const;

    /** Multiplicative inverse (q must be prime). */
    uint64_t inverse(uint64_t a) const;

  private:
    uint64_t q_ = 0;
    uint64_t mu_ = 0;
    int bits_ = 0;
    unsigned shift1_ = 0; ///< b - 1
    unsigned shift2_ = 0; ///< b + 1
};

/** Deterministic single-word NTT prime: q = c * 2^e + 1, b <= 62 bits. */
uint64_t findNttPrime64(int bits, int two_adicity);

/** Pease-NTT precomputation over a single-word modulus. */
class Ntt64Plan
{
  public:
    /**
     * @param q prime with n | q - 1
     * @param n power-of-two transform size
     */
    Ntt64Plan(uint64_t q, size_t n);

    const Modulus64& modulus() const { return mod_; }
    size_t n() const { return n_; }
    int logn() const { return logn_; }
    size_t half() const { return n_ / 2; }
    uint64_t omega() const { return omega_; }
    uint64_t nInv() const { return n_inv_; }
    uint64_t nInvShoup() const { return n_inv_shoup_; }

    /**
     * Compact twiddle addressing (same scheme as NttPlan): ONE power
     * table per direction, pow[k] = omega^k for k < n/2, and stage s
     * reads entry (j >> s) << s — stage s touches only its n/2^(s+1)
     * distinct twiddles instead of streaming a stretched n/2 row.
     */
    static size_t
    stageTwiddleIndex(int stage, size_t j)
    {
        return (j >> stage) << stage;
    }

    /**
     * Shared second-layer index for fused radix-4 butterfly p of stage
     * pair (s, s+1) — same scheme as NttPlan::stageTwiddlePair.
     */
    static size_t
    stageTwiddlePair(int stage, size_t p)
    {
        return ((p >> stage) << stage) << 1;
    }

    const uint64_t* twiddle() const { return fwd_.data(); }
    const uint64_t* twiddleShoup() const { return fwd_sh_.data(); }
    const uint64_t* twiddleInv() const { return inv_.data(); }
    const uint64_t* twiddleInvShoup() const { return inv_sh_.data(); }

    /** Bytes of twiddle storage (4 arrays of n/2 words). */
    size_t twiddleBytes() const { return 4 * half() * sizeof(uint64_t); }

  private:
    Modulus64 mod_;
    size_t n_ = 0;
    int logn_ = 0;
    uint64_t omega_ = 0;
    uint64_t n_inv_ = 0;
    uint64_t n_inv_shoup_ = 0;
    AlignedVec<uint64_t> fwd_, inv_;
    AlignedVec<uint64_t> fwd_sh_, inv_sh_;
};

/**
 * Forward Pease NTT (natural -> bit-reversed), single-word residues.
 * Supported backends: Scalar, Portable, Avx512 (single-word kernels are
 * provided for the tiers the comparison bench needs). Reduction selects
 * Shoup-lazy (default) or Barrett butterflies; StageFusion selects the
 * fused radix-4 passes (default, ceil(logn/2) sweeps) or the radix-2
 * stage loop. All combinations are bit-identical (Barrett always runs
 * radix-2, mirroring the double-word stack).
 */
void forward64(const Ntt64Plan& plan, Backend backend, const uint64_t* in,
               uint64_t* out, uint64_t* scratch,
               Reduction red = Reduction::ShoupLazy,
               StageFusion fusion = StageFusion::Radix4);

/** Inverse Pease NTT (bit-reversed -> natural, scaled by n^-1). */
void inverse64(const Ntt64Plan& plan, Backend backend, const uint64_t* in,
               uint64_t* out, uint64_t* scratch,
               Reduction red = Reduction::ShoupLazy,
               StageFusion fusion = StageFusion::Radix4);

/** c[i] = a[i] * b[i] mod q, single-word batch. */
void vmul64(Backend backend, const Modulus64& m, const uint64_t* a,
            const uint64_t* b, uint64_t* c, size_t n);

} // namespace w64
} // namespace mqx
