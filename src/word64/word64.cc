/**
 * @file
 * Single-word modulus, plan construction, scalar/portable kernels, and
 * backend dispatch for the 64-bit mode.
 */
#include "word64/word64.h"

#include "bigint/biguint.h"
#include "ntt/prime.h"
#include "simd/isa_portable.h"
#include "word64/ntt64_impl.h"

namespace mqx {
namespace w64 {

Modulus64::Modulus64(uint64_t q) : q_(q)
{
    checkArg(q >= 2, "Modulus64: modulus must be >= 2");
    bits_ = bitLength64(q);
    checkArg(bits_ <= 62, "Modulus64: modulus exceeds 62 bits (Barrett)");
    // mu = floor(2^2b / q) fits 64 bits for b <= 62 (mu < 2^(b+1)).
    BigUInt mu = (BigUInt{1} << (2 * bits_)) / BigUInt{q};
    mu_ = mu.toU128().lo;
    shift1_ = static_cast<unsigned>(bits_ - 1);
    shift2_ = static_cast<unsigned>(bits_ + 1);
}

uint64_t
Modulus64::shoupPrecompute(uint64_t w) const
{
    checkArg(w < q_, "Modulus64::shoupPrecompute: multiplicand must be < q");
    BigUInt wq = (BigUInt{w} << 64) / BigUInt{q_};
    return wq.toU128().lo; // < 2^64 since w < q
}

uint64_t
Modulus64::powMod(uint64_t base, uint64_t exponent) const
{
    uint64_t b = base % q_;
    uint64_t result = 1 % q_;
    for (int i = bitLength64(exponent) - 1; i >= 0; --i) {
        result = mulMod(result, result);
        if ((exponent >> i) & 1)
            result = mulMod(result, b);
    }
    return result;
}

uint64_t
Modulus64::inverse(uint64_t a) const
{
    checkArg(a % q_ != 0, "Modulus64::inverse: zero has no inverse");
    uint64_t inv = powMod(a, q_ - 2);
    checkArg(mulMod(inv, a % q_) == 1, "Modulus64::inverse: q not prime");
    return inv;
}

uint64_t
findNttPrime64(int bits, int two_adicity)
{
    checkArg(bits <= 62, "findNttPrime64: bits must be <= 62");
    // Reuse the 128-bit searcher; the result fits one word.
    return ntt::findNttPrime(bits, two_adicity).q.lo;
}

Ntt64Plan::Ntt64Plan(uint64_t q, size_t n) : mod_(q), n_(n)
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "Ntt64Plan: n must be a power of two >= 2");
    for (size_t t = n; t > 1; t >>= 1)
        ++logn_;
    checkArg(ntt::isPrime(U128{q}), "Ntt64Plan: modulus must be prime");

    // Root search through the generic 128-bit machinery (setup path);
    // all values fit a single word.
    Modulus wide(U128{q});
    omega_ = ntt::rootOfUnity(wide, U128{static_cast<uint64_t>(n)}).lo;
    n_inv_ = mod_.inverse(static_cast<uint64_t>(n % q));

    uint64_t omega_inv = mod_.inverse(omega_);
    size_t h = half();
    // Compact power tables (one entry per distinct twiddle) plus their
    // Shoup companions; stage s addresses them via stageTwiddleIndex().
    fwd_.reset(h);
    inv_.reset(h);
    fwd_sh_.reset(h);
    inv_sh_.reset(h);
    uint64_t acc_f = 1, acc_i = 1;
    for (size_t i = 0; i < h; ++i) {
        fwd_[i] = acc_f;
        inv_[i] = acc_i;
        fwd_sh_[i] = mod_.shoupPrecompute(acc_f);
        inv_sh_[i] = mod_.shoupPrecompute(acc_i);
        acc_f = mod_.mulMod(acc_f, omega_);
        acc_i = mod_.mulMod(acc_i, omega_inv);
    }
    n_inv_shoup_ = mod_.shoupPrecompute(n_inv_);
}

// AVX-512 entries (word64_avx512.cc).
namespace detail {
void forward64Avx512(const Ntt64Plan&, const uint64_t*, uint64_t*, uint64_t*,
                     Reduction, StageFusion);
void inverse64Avx512(const Ntt64Plan&, const uint64_t*, uint64_t*, uint64_t*,
                     Reduction, StageFusion);
void vmul64Avx512(const Modulus64&, const uint64_t*, const uint64_t*,
                  uint64_t*, size_t);
} // namespace detail

namespace {

/** kLanes = 1 scalar path shares the stage loop via the tail branches. */
struct ScalarTag
{
};

void
validate(const Ntt64Plan& plan, const uint64_t* in, const uint64_t* out,
         const uint64_t* scratch)
{
    checkArg(in && out && scratch, "ntt64: null buffer");
    checkArg(in != out && in != scratch && out != scratch,
             "ntt64: buffers must be distinct");
    (void)plan;
}

[[noreturn]] void
unsupported(Backend backend)
{
    throw BackendUnavailable(
        "word64 kernels support Scalar/Portable/Avx512; got " +
        backendName(backend));
}

/** Scalar forward, Barrett (the tail path of the template, full width). */
void
forward64Scalar(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    const uint64_t* tw = plan.twiddle();
    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = 0; s < m; ++s) {
        uint64_t* dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            uint64_t w = tw[Ntt64Plan::stageTwiddleIndex(s, j)];
            uint64_t u = mod.addMod(src[j], src[j + h]);
            uint64_t v = mod.mulMod(mod.subMod(src[j], src[j + h]), w);
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
    }
}

void
inverse64Scalar(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    const uint64_t* tw = plan.twiddleInv();
    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = m - 1; s >= 0; --s) {
        uint64_t* dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            uint64_t w = tw[Ntt64Plan::stageTwiddleIndex(s, j)];
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulMod(src[2 * j + 1], w);
            dst[j] = mod.addMod(u, t);
            dst[j + h] = mod.subMod(u, t);
        }
        src = dst;
        target ^= 1;
    }
    for (size_t i = 0; i < plan.n(); ++i)
        out[i] = mod.mulMod(out[i], plan.nInv());
}

/** Scalar forward, Shoup-lazy (see ntt64_impl.h for the ranges). */
void
forward64ScalarLazy(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                    uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddle();
    const uint64_t* twq = plan.twiddleShoup();
    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        uint64_t* dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            size_t e = Ntt64Plan::stageTwiddleIndex(s, j);
            uint64_t t = src[j] + src[j + h]; // < 4q < 2^64
            uint64_t u = t >= q2 ? t - q2 : t;
            uint64_t d = src[j] + q2 - src[j + h]; // (0, 4q)
            uint64_t v = mod.mulModShoup(d, tw[e], twq[e]);
            if (last) {
                u = u >= q ? u - q : u;
                v = v >= q ? v - q : v;
            }
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
    }
}

void
inverse64ScalarLazy(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                    uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddleInv();
    const uint64_t* twq = plan.twiddleInvShoup();
    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = m - 1; s >= 0; --s) {
        uint64_t* dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            size_t e = Ntt64Plan::stageTwiddleIndex(s, j);
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulModShoup(src[2 * j + 1], tw[e], twq[e]);
            uint64_t s0 = u + t;
            uint64_t s1 = u + q2 - t;
            dst[j] = s0 >= q2 ? s0 - q2 : s0;
            dst[j + h] = s1 >= q2 ? s1 - q2 : s1;
        }
        src = dst;
        target ^= 1;
    }
    const uint64_t n_inv = plan.nInv();
    const uint64_t n_inv_sh = plan.nInvShoup();
    for (size_t i = 0; i < plan.n(); ++i) {
        uint64_t r = mod.mulModShoup(out[i], n_inv, n_inv_sh);
        out[i] = r >= q ? r - q : r;
    }
}

/** Scalar fused radix-4 forward (kLanes = 1 tail of the template). */
void
forward64ScalarLazy4(const Ntt64Plan& plan, const uint64_t* in,
                     uint64_t* out, uint64_t* scratch)
{
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddle();
    const uint64_t* twq = plan.twiddleShoup();
    uint64_t* bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    int s = 0;
    if (m % 2 == 1) {
        const bool last = m == 1;
        uint64_t* dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            uint64_t t = src[j] + src[j + h];
            uint64_t u = t >= q2 ? t - q2 : t;
            uint64_t v = mod.mulModShoup(src[j] + q2 - src[j + h], tw[j],
                                         twq[j]);
            if (last) {
                u = u >= q ? u - q : u;
                v = v >= q ? v - q : v;
            }
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
        s = 1;
    }
    for (; s + 1 < m; s += 2) {
        const bool last = s + 2 == m;
        uint64_t* dst = bufs[target];
        // Run-split twiddle hoisting, mirroring the double-word scalar
        // kernel: the three twiddles are constant per 2^s-run and the
        // compiler cannot hoist the loads past the dst stores.
        const size_t run = size_t{1} << s;
        for (size_t base = 0; base < h2; base += run) {
            const size_t e0 = base, e1 = base + h2, eb = 2 * base;
            const uint64_t w0 = tw[e0], w0q = twq[e0];
            const uint64_t w1 = tw[e1], w1q = twq[e1];
            const uint64_t wb = tw[eb], wbq = twq[eb];
            for (size_t p = base; p < base + run; ++p)
                forwardButterfly64Lazy4Core(mod, q, q2, src, dst, w0, w0q,
                                            w1, w1q, wb, wbq, p, h, last);
        }
        src = dst;
        target ^= 1;
    }
}

/** Scalar fused radix-4 inverse + the n^-1 Shoup scaling pass. */
void
inverse64ScalarLazy4(const Ntt64Plan& plan, const uint64_t* in,
                     uint64_t* out, uint64_t* scratch)
{
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddleInv();
    const uint64_t* twq = plan.twiddleInvShoup();
    uint64_t* bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    int s = m - 1;
    for (; s >= 1; s -= 2) {
        const int sl = s - 1;
        uint64_t* dst = bufs[target];
        const size_t run = size_t{1} << sl;
        for (size_t base = 0; base < h2; base += run) {
            const size_t e0 = base, e1 = base + h2, eb = 2 * base;
            const uint64_t w0 = tw[e0], w0q = twq[e0];
            const uint64_t w1 = tw[e1], w1q = twq[e1];
            const uint64_t wb = tw[eb], wbq = twq[eb];
            for (size_t p = base; p < base + run; ++p)
                inverseButterfly64Lazy4Core(mod, q2, src, dst, w0, w0q, w1,
                                            w1q, wb, wbq, p, h);
        }
        src = dst;
        target ^= 1;
    }
    if (s == 0) {
        uint64_t* dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulModShoup(src[2 * j + 1], tw[j], twq[j]);
            uint64_t s0 = u + t;
            uint64_t s1 = u + q2 - t;
            dst[j] = s0 >= q2 ? s0 - q2 : s0;
            dst[j + h] = s1 >= q2 ? s1 - q2 : s1;
        }
    }
    const uint64_t n_inv = plan.nInv();
    const uint64_t n_inv_sh = plan.nInvShoup();
    for (size_t i = 0; i < plan.n(); ++i) {
        uint64_t r = mod.mulModShoup(out[i], n_inv, n_inv_sh);
        out[i] = r >= q ? r - q : r;
    }
}

} // namespace

void
forward64(const Ntt64Plan& plan, Backend backend, const uint64_t* in,
          uint64_t* out, uint64_t* scratch, Reduction red, StageFusion fusion)
{
    validate(plan, in, out, scratch);
    const bool lazy = red == Reduction::ShoupLazy;
    const bool fused = lazy && fusion == StageFusion::Radix4;
    switch (backend) {
      case Backend::Scalar:
        return fused ? forward64ScalarLazy4(plan, in, out, scratch)
               : lazy ? forward64ScalarLazy(plan, in, out, scratch)
                      : forward64Scalar(plan, in, out, scratch);
      case Backend::Portable:
        return fused ? forward64Lazy4Impl<simd::PortableIsa>(plan, in, out,
                                                             scratch)
               : lazy
                   ? forward64LazyImpl<simd::PortableIsa>(plan, in, out,
                                                          scratch)
                   : forward64Impl<simd::PortableIsa>(plan, in, out, scratch);
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        if (backendAvailable(Backend::Avx512))
            return detail::forward64Avx512(plan, in, out, scratch, red,
                                           fusion);
#endif
        unsupported(backend);
      default:
        unsupported(backend);
    }
}

void
inverse64(const Ntt64Plan& plan, Backend backend, const uint64_t* in,
          uint64_t* out, uint64_t* scratch, Reduction red, StageFusion fusion)
{
    validate(plan, in, out, scratch);
    const bool lazy = red == Reduction::ShoupLazy;
    const bool fused = lazy && fusion == StageFusion::Radix4;
    switch (backend) {
      case Backend::Scalar:
        return fused ? inverse64ScalarLazy4(plan, in, out, scratch)
               : lazy ? inverse64ScalarLazy(plan, in, out, scratch)
                      : inverse64Scalar(plan, in, out, scratch);
      case Backend::Portable:
        return fused ? inverse64Lazy4Impl<simd::PortableIsa>(plan, in, out,
                                                             scratch)
               : lazy
                   ? inverse64LazyImpl<simd::PortableIsa>(plan, in, out,
                                                          scratch)
                   : inverse64Impl<simd::PortableIsa>(plan, in, out, scratch);
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        if (backendAvailable(Backend::Avx512))
            return detail::inverse64Avx512(plan, in, out, scratch, red,
                                           fusion);
#endif
        unsupported(backend);
      default:
        unsupported(backend);
    }
}

void
vmul64(Backend backend, const Modulus64& m, const uint64_t* a,
       const uint64_t* b, uint64_t* c, size_t n)
{
    switch (backend) {
      case Backend::Scalar:
        for (size_t i = 0; i < n; ++i)
            c[i] = m.mulMod(a[i], b[i]);
        return;
      case Backend::Portable:
        return vmul64Impl<simd::PortableIsa>(m, a, b, c, n);
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        if (backendAvailable(Backend::Avx512))
            return detail::vmul64Avx512(m, a, b, c, n);
#endif
        unsupported(backend);
      default:
        unsupported(backend);
    }
}

} // namespace w64
} // namespace mqx
