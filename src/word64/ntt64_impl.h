/**
 * @file
 * Single-word SIMD kernels and the Pease NTT stage loop, templated over
 * the same ISA policy concept as the double-word kernels. One 64-bit
 * residue per lane — the layout every 64-bit FHE library uses.
 *
 * Both reduction strategies are provided (mirroring the double-word
 * stack): Barrett with canonical operands, and Shoup-lazy with [0, 2q)
 * operands, precomputed twiddle quotients, and one fused
 * canonicalization pass (last forward stage / inverse n^-1 scaling).
 * Twiddles come from the plan's compact power tables via the same
 * contiguous/step/broadcast stage addressing as the 128-bit kernels.
 */
#pragma once

#include "word64/word64.h"

namespace mqx {
namespace w64 {

/** Broadcast single-word modulus context. */
template <class Isa>
struct Ctx64
{
    typename Isa::V q, mu;
    typename Isa::V q2;      ///< 2q (lazy-reduction bound)
    unsigned s1 = 0, s2 = 0; ///< Barrett shifts b - 1, b + 1
};

template <class Isa>
inline Ctx64<Isa>
makeCtx64(const Modulus64& m)
{
    Ctx64<Isa> ctx;
    ctx.q = Isa::set1(m.value());
    ctx.mu = Isa::set1(m.mu());
    ctx.q2 = Isa::set1(m.value() * 2); // q < 2^62: no overflow
    ctx.s1 = static_cast<unsigned>(m.bits() - 1);
    ctx.s2 = static_cast<unsigned>(m.bits() + 1);
    return ctx;
}

/**
 * Stage-s gather from a compact power table (see
 * Ntt64Plan::stageTwiddleIndex): contiguous at stage 0, short step load
 * while the run length 2^s is under the lane count, one broadcast
 * afterwards.
 */
template <class Isa>
inline typename Isa::V
loadStageTwiddles64(const uint64_t* tw, size_t j, int s)
{
    if (s == 0)
        return Isa::loadu(tw + j);
    if ((size_t{1} << s) >= Isa::kLanes)
        return Isa::set1(tw[(j >> s) << s]);
    alignas(64) uint64_t t[Isa::kLanes];
    for (size_t i = 0; i < Isa::kLanes; ++i)
        t[i] = tw[((j + i) >> s) << s];
    return Isa::loadu(t);
}

/**
 * Second-layer twiddle load for the fused radix-4 pass (see
 * Ntt64Plan::stageTwiddlePair): stride-2/step gather below the lane
 * count, one broadcast afterwards.
 */
template <class Isa>
inline typename Isa::V
loadStageTwiddles64Pair(const uint64_t* tw, size_t p, int s)
{
    if ((size_t{1} << s) >= Isa::kLanes)
        return Isa::set1(tw[Ntt64Plan::stageTwiddlePair(s, p)]);
    alignas(64) uint64_t t[Isa::kLanes];
    for (size_t i = 0; i < Isa::kLanes; ++i)
        t[i] = tw[Ntt64Plan::stageTwiddlePair(s, p + i)];
    return Isa::loadu(t);
}

/** 4-way interleave from two interleave2 rounds (fused radix-4 store). */
template <class Isa>
inline void
interleave64x4(typename Isa::V z0, typename Isa::V z1, typename Isa::V z2,
               typename Isa::V z3, typename Isa::V& o0, typename Isa::V& o1,
               typename Isa::V& o2, typename Isa::V& o3)
{
    typename Isa::V a0, a1, b0, b1;
    Isa::interleave2(z0, z2, a0, a1);
    Isa::interleave2(z1, z3, b0, b1);
    Isa::interleave2(a0, b0, o0, o1);
    Isa::interleave2(a1, b1, o2, o3);
}

/** Exact inverse of interleave64x4 (fused radix-4 inverse load). */
template <class Isa>
inline void
deinterleave64x4(typename Isa::V o0, typename Isa::V o1, typename Isa::V o2,
                 typename Isa::V o3, typename Isa::V& z0, typename Isa::V& z1,
                 typename Isa::V& z2, typename Isa::V& z3)
{
    typename Isa::V a0, a1, b0, b1;
    Isa::deinterleave2(o0, o1, a0, b0);
    Isa::deinterleave2(o2, o3, a1, b1);
    Isa::deinterleave2(a0, a1, z0, z2);
    Isa::deinterleave2(b0, b1, z1, z3);
}

/** (a + b) mod q per lane; no wrap possible for q < 2^62. */
template <class Isa>
inline typename Isa::V
addMod64V(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    auto s = Isa::add(a, b);
    auto ge = Isa::cmpLeU(ctx.q, s);
    return Isa::maskSub(s, ge, s, ctx.q);
}

/** (a - b) mod q per lane. */
template <class Isa>
inline typename Isa::V
subMod64V(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    auto lt = Isa::cmpLtU(a, b);
    auto d = Isa::sub(a, b);
    return Isa::maskAdd(d, lt, d, ctx.q);
}

/** Lazy add: inputs [0, 2q) -> output [0, 2q) (transient < 4q < 2^64). */
template <class Isa>
inline typename Isa::V
addMod64LazyV(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    auto s = Isa::add(a, b);
    auto ge = Isa::cmpLeU(ctx.q2, s);
    return Isa::maskSub(s, ge, s, ctx.q2);
}

/** Raw lazy difference a - b + 2q in (0, 4q) for inputs in [0, 2q). */
template <class Isa>
inline typename Isa::V
subMod64LazyRawV(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    return Isa::sub(Isa::add(a, ctx.q2), b);
}

/** Per-lane x >= b ? x - b : x. */
template <class Isa>
inline typename Isa::V
condSub64V(typename Isa::V x, typename Isa::V b)
{
    auto ge = Isa::cmpLeU(b, x);
    return Isa::maskSub(x, ge, x, b);
}

/** Funnel shift (hi:lo) >> s for uniform s in [1, 127]. */
template <class Isa>
inline typename Isa::V
shr128V(typename Isa::V hi, typename Isa::V lo, unsigned s)
{
    if (s >= 64)
        return Isa::srlCount(hi, s - 64);
    return Isa::or_(Isa::srlCount(lo, s), Isa::sllCount(hi, 64 - s));
}

/** Barrett-reduced product per lane (a, b < q). */
template <class Isa>
inline typename Isa::V
mulMod64V(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    typename Isa::V p_hi, p_lo;
    Isa::mulWide(a, b, p_hi, p_lo);
    auto x1 = shr128V<Isa>(p_hi, p_lo, ctx.s1);
    typename Isa::V e_hi, e_lo;
    Isa::mulWide(x1, ctx.mu, e_hi, e_lo);
    auto e = shr128V<Isa>(e_hi, e_lo, ctx.s2);
    auto c = Isa::sub(p_lo, Isa::mullo(e, ctx.q));
    auto ge = Isa::cmpLeU(ctx.q, c);
    c = Isa::maskSub(c, ge, c, ctx.q);
    ge = Isa::cmpLeU(ctx.q, c);
    return Isa::maskSub(c, ge, c, ctx.q);
}

/**
 * Shoup product per lane: r = a*w - mulhi(a, wq)*q, in [0, 2q) for any
 * a. One widening multiply plus two low multiplies.
 */
template <class Isa>
inline typename Isa::V
mulMod64ShoupV(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V w,
               typename Isa::V wq)
{
    typename Isa::V h_hi, h_lo;
    Isa::mulWide(a, wq, h_hi, h_lo);
    return Isa::sub(Isa::mullo(a, w), Isa::mullo(h_hi, ctx.q));
}

/** Batch point-wise multiply. */
template <class Isa>
void
vmul64Impl(const Modulus64& m, const uint64_t* a, const uint64_t* b,
           uint64_t* c, size_t n)
{
    Ctx64<Isa> ctx = makeCtx64<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= n; i += Isa::kLanes) {
        Isa::storeu(c + i, mulMod64V<Isa>(ctx, Isa::loadu(a + i),
                                          Isa::loadu(b + i)));
    }
    for (; i < n; ++i)
        c[i] = m.mulMod(a[i], b[i]);
}

/** Forward Pease stage loop, Barrett arithmetic. */
template <class Isa>
void
forward64Impl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
              uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);
    const uint64_t* tw = plan.twiddle();

    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = 0; s < m; ++s) {
        uint64_t* dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = Isa::loadu(src + j);
            auto b = Isa::loadu(src + j + h);
            auto w = loadStageTwiddles64<Isa>(tw, j, s);
            auto u = addMod64V<Isa>(ctx, a, b);
            auto v = mulMod64V<Isa>(ctx, subMod64V<Isa>(ctx, a, b), w);
            typename Isa::V blk0, blk1;
            Isa::interleave2(u, v, blk0, blk1);
            Isa::storeu(dst + 2 * j, blk0);
            Isa::storeu(dst + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            uint64_t w = tw[Ntt64Plan::stageTwiddleIndex(s, j)];
            uint64_t u = mod.addMod(src[j], src[j + h]);
            uint64_t v = mod.mulMod(mod.subMod(src[j], src[j + h]), w);
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
    }
}

/** Inverse Pease stage loop + n^-1 scaling, Barrett arithmetic. */
template <class Isa>
void
inverse64Impl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
              uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);
    const uint64_t* tw = plan.twiddleInv();

    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = m - 1; s >= 0; --s) {
        uint64_t* dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0 = Isa::loadu(src + 2 * j);
            auto blk1 = Isa::loadu(src + 2 * j + Isa::kLanes);
            typename Isa::V u, v;
            Isa::deinterleave2(blk0, blk1, u, v);
            auto w = loadStageTwiddles64<Isa>(tw, j, s);
            auto t = mulMod64V<Isa>(ctx, v, w);
            Isa::storeu(dst + j, addMod64V<Isa>(ctx, u, t));
            Isa::storeu(dst + j + h, subMod64V<Isa>(ctx, u, t));
        }
        for (; j < h; ++j) {
            uint64_t w = tw[Ntt64Plan::stageTwiddleIndex(s, j)];
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulMod(src[2 * j + 1], w);
            dst[j] = mod.addMod(u, t);
            dst[j + h] = mod.subMod(u, t);
        }
        src = dst;
        target ^= 1;
    }

    const uint64_t n_inv = plan.nInv();
    auto vninv = Isa::set1(n_inv);
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes)
        Isa::storeu(out + i, mulMod64V<Isa>(ctx, Isa::loadu(out + i), vninv));
    for (; i < plan.n(); ++i)
        out[i] = mod.mulMod(out[i], n_inv);
}

/**
 * Forward Pease stage loop, Shoup-lazy arithmetic: canonical input,
 * canonical output; [0, 2q) between stages, canonicalization fused
 * into the last stage. Bit-identical to forward64Impl.
 */
template <class Isa>
void
forward64LazyImpl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                  uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddle();
    const uint64_t* twq = plan.twiddleShoup();

    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        uint64_t* dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = Isa::loadu(src + j);
            auto b = Isa::loadu(src + j + h);
            auto w = loadStageTwiddles64<Isa>(tw, j, s);
            auto wq = loadStageTwiddles64<Isa>(twq, j, s);
            auto u = addMod64LazyV<Isa>(ctx, a, b);
            auto d = subMod64LazyRawV<Isa>(ctx, a, b); // (0, 4q)
            auto v = mulMod64ShoupV<Isa>(ctx, d, w, wq);
            if (last) {
                u = condSub64V<Isa>(u, ctx.q);
                v = condSub64V<Isa>(v, ctx.q);
            }
            typename Isa::V blk0, blk1;
            Isa::interleave2(u, v, blk0, blk1);
            Isa::storeu(dst + 2 * j, blk0);
            Isa::storeu(dst + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            size_t e = Ntt64Plan::stageTwiddleIndex(s, j);
            uint64_t t = src[j] + src[j + h]; // < 4q < 2^64
            uint64_t u = t >= q2 ? t - q2 : t;
            uint64_t d = src[j] + q2 - src[j + h];
            uint64_t v = mod.mulModShoup(d, tw[e], twq[e]);
            if (last) {
                u = u >= q ? u - q : u;
                v = v >= q ? v - q : v;
            }
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
    }
}

/**
 * Inverse Pease stage loop, Shoup-lazy arithmetic; canonicalization is
 * fused into the n^-1 Shoup scaling pass. Bit-identical to
 * inverse64Impl.
 */
template <class Isa>
void
inverse64LazyImpl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                  uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddleInv();
    const uint64_t* twq = plan.twiddleInvShoup();

    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = m - 1; s >= 0; --s) {
        uint64_t* dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0 = Isa::loadu(src + 2 * j);
            auto blk1 = Isa::loadu(src + 2 * j + Isa::kLanes);
            typename Isa::V u, v;
            Isa::deinterleave2(blk0, blk1, u, v);
            auto w = loadStageTwiddles64<Isa>(tw, j, s);
            auto wq = loadStageTwiddles64<Isa>(twq, j, s);
            auto t = mulMod64ShoupV<Isa>(ctx, v, w, wq); // [0, 2q)
            auto x0 = addMod64LazyV<Isa>(ctx, u, t);
            auto x1 = condSub64V<Isa>(subMod64LazyRawV<Isa>(ctx, u, t),
                                      ctx.q2);
            Isa::storeu(dst + j, x0);
            Isa::storeu(dst + j + h, x1);
        }
        for (; j < h; ++j) {
            size_t e = Ntt64Plan::stageTwiddleIndex(s, j);
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulModShoup(src[2 * j + 1], tw[e], twq[e]);
            uint64_t s0 = u + t;
            uint64_t s1 = u + q2 - t;
            dst[j] = s0 >= q2 ? s0 - q2 : s0;
            dst[j + h] = s1 >= q2 ? s1 - q2 : s1;
        }
        src = dst;
        target ^= 1;
    }

    // Fused n^-1 scaling + canonicalization.
    const uint64_t n_inv = plan.nInv();
    const uint64_t n_inv_sh = plan.nInvShoup();
    auto vninv = Isa::set1(n_inv);
    auto vninvq = Isa::set1(n_inv_sh);
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto r = mulMod64ShoupV<Isa>(ctx, Isa::loadu(out + i), vninv, vninvq);
        Isa::storeu(out + i, condSub64V<Isa>(r, ctx.q));
    }
    for (; i < plan.n(); ++i) {
        uint64_t r = mod.mulModShoup(out[i], n_inv, n_inv_sh);
        out[i] = r >= q ? r - q : r;
    }
}

/**
 * Twiddle-valued core of the single-word fused radix-4 forward
 * butterfly: exactly two consecutive lazy radix-2 layers kept in
 * registers — bit-identical to the radix-2 path. [0, 2q) in/out;
 * canonical when @p last. Same run-split hoisting contract as the
 * double-word core (the compiler cannot hoist the twiddle loads past
 * the dst stores itself).
 */
inline void
forwardButterfly64Lazy4Core(const Modulus64& mod, uint64_t q, uint64_t q2,
                            const uint64_t* MQX_RESTRICT src,
                            uint64_t* MQX_RESTRICT dst, uint64_t w0,
                            uint64_t w0q, uint64_t w1, uint64_t w1q,
                            uint64_t wb, uint64_t wbq, size_t p, size_t h,
                            bool last)
{
    const size_t h2 = h / 2;
    const uint64_t a = src[p], b = src[p + h2];
    const uint64_t c = src[p + h], d = src[p + h + h2];
    uint64_t t = a + c;
    uint64_t u0 = t >= q2 ? t - q2 : t;
    uint64_t v0 = mod.mulModShoup(a + q2 - c, w0, w0q);
    t = b + d;
    uint64_t u1 = t >= q2 ? t - q2 : t;
    uint64_t v1 = mod.mulModShoup(b + q2 - d, w1, w1q);
    t = u0 + u1;
    uint64_t z0 = t >= q2 ? t - q2 : t;
    uint64_t z1 = mod.mulModShoup(u0 + q2 - u1, wb, wbq);
    t = v0 + v1;
    uint64_t z2 = t >= q2 ? t - q2 : t;
    uint64_t z3 = mod.mulModShoup(v0 + q2 - v1, wb, wbq);
    if (last) {
        z0 = z0 >= q ? z0 - q : z0;
        z1 = z1 >= q ? z1 - q : z1;
        z2 = z2 >= q ? z2 - q : z2;
        z3 = z3 >= q ? z3 - q : z3;
    }
    dst[4 * p] = z0;
    dst[4 * p + 1] = z1;
    dst[4 * p + 2] = z2;
    dst[4 * p + 3] = z3;
}

/** Index-computing wrapper (SIMD tail loops). */
inline void
forwardButterfly64Lazy4(const Modulus64& mod, uint64_t q, uint64_t q2,
                        const uint64_t* src, uint64_t* dst,
                        const uint64_t* tw, const uint64_t* twq, size_t p,
                        size_t h, int s, bool last)
{
    const size_t e0 = Ntt64Plan::stageTwiddleIndex(s, p);
    const size_t e1 = e0 + h / 2;
    const size_t eb = Ntt64Plan::stageTwiddlePair(s, p);
    forwardButterfly64Lazy4Core(mod, q, q2, src, dst, tw[e0], twq[e0],
                                tw[e1], twq[e1], tw[eb], twq[eb], p, h,
                                last);
}

/** Twiddle-valued core of the fused inverse (pair (s_lo+1, s_lo)). */
inline void
inverseButterfly64Lazy4Core(const Modulus64& mod, uint64_t q2,
                            const uint64_t* MQX_RESTRICT src,
                            uint64_t* MQX_RESTRICT dst, uint64_t w0,
                            uint64_t w0q, uint64_t w1, uint64_t w1q,
                            uint64_t wb, uint64_t wbq, size_t p, size_t h)
{
    const size_t h2 = h / 2;
    const uint64_t z0 = src[4 * p], z1 = src[4 * p + 1];
    const uint64_t z2 = src[4 * p + 2], z3 = src[4 * p + 3];
    const uint64_t ta = mod.mulModShoup(z1, wb, wbq);
    uint64_t t = z0 + ta;
    const uint64_t y0 = t >= q2 ? t - q2 : t;
    t = z0 + q2 - ta;
    const uint64_t yh0 = t >= q2 ? t - q2 : t;
    const uint64_t tb = mod.mulModShoup(z3, wb, wbq);
    t = z2 + tb;
    const uint64_t y1 = t >= q2 ? t - q2 : t;
    t = z2 + q2 - tb;
    const uint64_t yh1 = t >= q2 ? t - q2 : t;
    const uint64_t t0 = mod.mulModShoup(y1, w0, w0q);
    t = y0 + t0;
    dst[p] = t >= q2 ? t - q2 : t;
    t = y0 + q2 - t0;
    dst[p + h] = t >= q2 ? t - q2 : t;
    const uint64_t t1 = mod.mulModShoup(yh1, w1, w1q);
    t = yh0 + t1;
    dst[p + h2] = t >= q2 ? t - q2 : t;
    t = yh0 + q2 - t1;
    dst[p + h + h2] = t >= q2 ? t - q2 : t;
}

/** Index-computing wrapper (SIMD tail loops). */
inline void
inverseButterfly64Lazy4(const Modulus64& mod, uint64_t q2,
                        const uint64_t* src, uint64_t* dst,
                        const uint64_t* tw, const uint64_t* twq, size_t p,
                        size_t h, int s_lo)
{
    const size_t e0 = Ntt64Plan::stageTwiddleIndex(s_lo, p);
    const size_t e1 = e0 + h / 2;
    const size_t eb = Ntt64Plan::stageTwiddlePair(s_lo, p);
    inverseButterfly64Lazy4Core(mod, q2, src, dst, tw[e0], twq[e0], tw[e1],
                                twq[e1], tw[eb], twq[eb], p, h);
}

/**
 * Forward Pease stage loop with fused radix-4 passes, Shoup-lazy:
 * ceil(logn/2) sweeps (radix-2 pass first when logn is odd).
 * Bit-identical to forward64LazyImpl and forward64Impl.
 */
template <class Isa>
void
forward64Lazy4Impl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                   uint64_t* scratch)
{
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddle();
    const uint64_t* twq = plan.twiddleShoup();

    uint64_t* bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    int s = 0;
    if (m % 2 == 1) {
        const bool last = m == 1;
        uint64_t* dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = Isa::loadu(src + j);
            auto b = Isa::loadu(src + j + h);
            auto w = loadStageTwiddles64<Isa>(tw, j, 0);
            auto wq = loadStageTwiddles64<Isa>(twq, j, 0);
            auto u = addMod64LazyV<Isa>(ctx, a, b);
            auto v = mulMod64ShoupV<Isa>(ctx, subMod64LazyRawV<Isa>(ctx, a, b),
                                         w, wq);
            if (last) {
                u = condSub64V<Isa>(u, ctx.q);
                v = condSub64V<Isa>(v, ctx.q);
            }
            typename Isa::V blk0, blk1;
            Isa::interleave2(u, v, blk0, blk1);
            Isa::storeu(dst + 2 * j, blk0);
            Isa::storeu(dst + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            size_t e = Ntt64Plan::stageTwiddleIndex(0, j);
            uint64_t t = src[j] + src[j + h];
            uint64_t u = t >= q2 ? t - q2 : t;
            uint64_t v = mod.mulModShoup(src[j] + q2 - src[j + h], tw[e],
                                         twq[e]);
            if (last) {
                u = u >= q ? u - q : u;
                v = v >= q ? v - q : v;
            }
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
        s = 1;
    }
    for (; s + 1 < m; s += 2) {
        const bool last = s + 2 == m;
        uint64_t* dst = bufs[target];
        size_t p = 0;
        for (; p + Isa::kLanes <= h2; p += Isa::kLanes) {
            auto a = Isa::loadu(src + p);
            auto b = Isa::loadu(src + p + h2);
            auto c = Isa::loadu(src + p + h);
            auto d = Isa::loadu(src + p + h + h2);
            auto w0 = loadStageTwiddles64<Isa>(tw, p, s);
            auto w0q = loadStageTwiddles64<Isa>(twq, p, s);
            auto w1 = loadStageTwiddles64<Isa>(tw + h2, p, s);
            auto w1q = loadStageTwiddles64<Isa>(twq + h2, p, s);
            auto wb = loadStageTwiddles64Pair<Isa>(tw, p, s);
            auto wbq = loadStageTwiddles64Pair<Isa>(twq, p, s);
            auto u0 = addMod64LazyV<Isa>(ctx, a, c);
            auto v0 = mulMod64ShoupV<Isa>(
                ctx, subMod64LazyRawV<Isa>(ctx, a, c), w0, w0q);
            auto u1 = addMod64LazyV<Isa>(ctx, b, d);
            auto v1 = mulMod64ShoupV<Isa>(
                ctx, subMod64LazyRawV<Isa>(ctx, b, d), w1, w1q);
            auto z0 = addMod64LazyV<Isa>(ctx, u0, u1);
            auto z1 = mulMod64ShoupV<Isa>(
                ctx, subMod64LazyRawV<Isa>(ctx, u0, u1), wb, wbq);
            auto z2 = addMod64LazyV<Isa>(ctx, v0, v1);
            auto z3 = mulMod64ShoupV<Isa>(
                ctx, subMod64LazyRawV<Isa>(ctx, v0, v1), wb, wbq);
            if (last) {
                z0 = condSub64V<Isa>(z0, ctx.q);
                z1 = condSub64V<Isa>(z1, ctx.q);
                z2 = condSub64V<Isa>(z2, ctx.q);
                z3 = condSub64V<Isa>(z3, ctx.q);
            }
            typename Isa::V o0, o1, o2, o3;
            interleave64x4<Isa>(z0, z1, z2, z3, o0, o1, o2, o3);
            Isa::storeu(dst + 4 * p, o0);
            Isa::storeu(dst + 4 * p + Isa::kLanes, o1);
            Isa::storeu(dst + 4 * p + 2 * Isa::kLanes, o2);
            Isa::storeu(dst + 4 * p + 3 * Isa::kLanes, o3);
        }
        for (; p < h2; ++p)
            forwardButterfly64Lazy4(mod, q, q2, src, dst, tw, twq, p, h, s,
                                    last);
        src = dst;
        target ^= 1;
    }
}

/**
 * Inverse Pease stage loop with fused radix-4 passes, Shoup-lazy, plus
 * the fused n^-1 scaling. Bit-identical to inverse64LazyImpl.
 */
template <class Isa>
void
inverse64Lazy4Impl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                   uint64_t* scratch)
{
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);
    const uint64_t q = mod.value();
    const uint64_t q2 = 2 * q;
    const uint64_t* tw = plan.twiddleInv();
    const uint64_t* twq = plan.twiddleInvShoup();

    uint64_t* bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    int s = m - 1;
    for (; s >= 1; s -= 2) {
        const int sl = s - 1;
        uint64_t* dst = bufs[target];
        size_t p = 0;
        for (; p + Isa::kLanes <= h2; p += Isa::kLanes) {
            auto i0 = Isa::loadu(src + 4 * p);
            auto i1 = Isa::loadu(src + 4 * p + Isa::kLanes);
            auto i2 = Isa::loadu(src + 4 * p + 2 * Isa::kLanes);
            auto i3 = Isa::loadu(src + 4 * p + 3 * Isa::kLanes);
            typename Isa::V z0, z1, z2, z3;
            deinterleave64x4<Isa>(i0, i1, i2, i3, z0, z1, z2, z3);
            auto wb = loadStageTwiddles64Pair<Isa>(tw, p, sl);
            auto wbq = loadStageTwiddles64Pair<Isa>(twq, p, sl);
            auto ta = mulMod64ShoupV<Isa>(ctx, z1, wb, wbq);
            auto y0 = addMod64LazyV<Isa>(ctx, z0, ta);
            auto yh0 = condSub64V<Isa>(subMod64LazyRawV<Isa>(ctx, z0, ta),
                                       ctx.q2);
            auto tb = mulMod64ShoupV<Isa>(ctx, z3, wb, wbq);
            auto y1 = addMod64LazyV<Isa>(ctx, z2, tb);
            auto yh1 = condSub64V<Isa>(subMod64LazyRawV<Isa>(ctx, z2, tb),
                                       ctx.q2);
            auto w0 = loadStageTwiddles64<Isa>(tw, p, sl);
            auto w0q = loadStageTwiddles64<Isa>(twq, p, sl);
            auto w1 = loadStageTwiddles64<Isa>(tw + h2, p, sl);
            auto w1q = loadStageTwiddles64<Isa>(twq + h2, p, sl);
            auto t0 = mulMod64ShoupV<Isa>(ctx, y1, w0, w0q);
            Isa::storeu(dst + p, addMod64LazyV<Isa>(ctx, y0, t0));
            Isa::storeu(dst + p + h,
                        condSub64V<Isa>(subMod64LazyRawV<Isa>(ctx, y0, t0),
                                        ctx.q2));
            auto t1 = mulMod64ShoupV<Isa>(ctx, yh1, w1, w1q);
            Isa::storeu(dst + p + h2, addMod64LazyV<Isa>(ctx, yh0, t1));
            Isa::storeu(dst + p + h + h2,
                        condSub64V<Isa>(subMod64LazyRawV<Isa>(ctx, yh0, t1),
                                        ctx.q2));
        }
        for (; p < h2; ++p)
            inverseButterfly64Lazy4(mod, q2, src, dst, tw, twq, p, h, sl);
        src = dst;
        target ^= 1;
    }
    if (s == 0) {
        uint64_t* dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0 = Isa::loadu(src + 2 * j);
            auto blk1 = Isa::loadu(src + 2 * j + Isa::kLanes);
            typename Isa::V u, v;
            Isa::deinterleave2(blk0, blk1, u, v);
            auto w = loadStageTwiddles64<Isa>(tw, j, 0);
            auto wq = loadStageTwiddles64<Isa>(twq, j, 0);
            auto t = mulMod64ShoupV<Isa>(ctx, v, w, wq);
            Isa::storeu(dst + j, addMod64LazyV<Isa>(ctx, u, t));
            Isa::storeu(dst + j + h,
                        condSub64V<Isa>(subMod64LazyRawV<Isa>(ctx, u, t),
                                        ctx.q2));
        }
        for (; j < h; ++j) {
            size_t e = Ntt64Plan::stageTwiddleIndex(0, j);
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulModShoup(src[2 * j + 1], tw[e], twq[e]);
            uint64_t s0 = u + t;
            uint64_t s1 = u + q2 - t;
            dst[j] = s0 >= q2 ? s0 - q2 : s0;
            dst[j + h] = s1 >= q2 ? s1 - q2 : s1;
        }
    }

    // Fused n^-1 scaling + canonicalization.
    const uint64_t n_inv = plan.nInv();
    const uint64_t n_inv_sh = plan.nInvShoup();
    auto vninv = Isa::set1(n_inv);
    auto vninvq = Isa::set1(n_inv_sh);
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto r = mulMod64ShoupV<Isa>(ctx, Isa::loadu(out + i), vninv, vninvq);
        Isa::storeu(out + i, condSub64V<Isa>(r, ctx.q));
    }
    for (; i < plan.n(); ++i) {
        uint64_t r = mod.mulModShoup(out[i], n_inv, n_inv_sh);
        out[i] = r >= q ? r - q : r;
    }
}

} // namespace w64
} // namespace mqx
