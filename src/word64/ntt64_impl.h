/**
 * @file
 * Single-word SIMD kernels and the Pease NTT stage loop, templated over
 * the same ISA policy concept as the double-word kernels. One 64-bit
 * residue per lane — the layout every 64-bit FHE library uses.
 */
#pragma once

#include "word64/word64.h"

namespace mqx {
namespace w64 {

/** Broadcast single-word modulus context. */
template <class Isa>
struct Ctx64
{
    typename Isa::V q, mu;
    unsigned s1 = 0, s2 = 0; ///< Barrett shifts b - 1, b + 1
};

template <class Isa>
inline Ctx64<Isa>
makeCtx64(const Modulus64& m)
{
    Ctx64<Isa> ctx;
    ctx.q = Isa::set1(m.value());
    ctx.mu = Isa::set1(m.mu());
    ctx.s1 = static_cast<unsigned>(m.bits() - 1);
    ctx.s2 = static_cast<unsigned>(m.bits() + 1);
    return ctx;
}

/** (a + b) mod q per lane; no wrap possible for q < 2^62. */
template <class Isa>
inline typename Isa::V
addMod64V(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    auto s = Isa::add(a, b);
    auto ge = Isa::cmpLeU(ctx.q, s);
    return Isa::maskSub(s, ge, s, ctx.q);
}

/** (a - b) mod q per lane. */
template <class Isa>
inline typename Isa::V
subMod64V(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    auto lt = Isa::cmpLtU(a, b);
    auto d = Isa::sub(a, b);
    return Isa::maskAdd(d, lt, d, ctx.q);
}

/** Funnel shift (hi:lo) >> s for uniform s in [1, 127]. */
template <class Isa>
inline typename Isa::V
shr128V(typename Isa::V hi, typename Isa::V lo, unsigned s)
{
    if (s >= 64)
        return Isa::srlCount(hi, s - 64);
    return Isa::or_(Isa::srlCount(lo, s), Isa::sllCount(hi, 64 - s));
}

/** Barrett-reduced product per lane (a, b < q). */
template <class Isa>
inline typename Isa::V
mulMod64V(const Ctx64<Isa>& ctx, typename Isa::V a, typename Isa::V b)
{
    typename Isa::V p_hi, p_lo;
    Isa::mulWide(a, b, p_hi, p_lo);
    auto x1 = shr128V<Isa>(p_hi, p_lo, ctx.s1);
    typename Isa::V e_hi, e_lo;
    Isa::mulWide(x1, ctx.mu, e_hi, e_lo);
    auto e = shr128V<Isa>(e_hi, e_lo, ctx.s2);
    auto c = Isa::sub(p_lo, Isa::mullo(e, ctx.q));
    auto ge = Isa::cmpLeU(ctx.q, c);
    c = Isa::maskSub(c, ge, c, ctx.q);
    ge = Isa::cmpLeU(ctx.q, c);
    return Isa::maskSub(c, ge, c, ctx.q);
}

/** Batch point-wise multiply. */
template <class Isa>
void
vmul64Impl(const Modulus64& m, const uint64_t* a, const uint64_t* b,
           uint64_t* c, size_t n)
{
    Ctx64<Isa> ctx = makeCtx64<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= n; i += Isa::kLanes) {
        Isa::storeu(c + i, mulMod64V<Isa>(ctx, Isa::loadu(a + i),
                                          Isa::loadu(b + i)));
    }
    for (; i < n; ++i)
        c[i] = m.mulMod(a[i], b[i]);
}

/** Forward Pease stage loop (same wiring as the double-word version). */
template <class Isa>
void
forward64Impl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
              uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);

    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = 0; s < m; ++s) {
        uint64_t* dst = bufs[target];
        const uint64_t* tw = plan.twiddle(s);
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = Isa::loadu(src + j);
            auto b = Isa::loadu(src + j + h);
            auto w = Isa::loadu(tw + j);
            auto u = addMod64V<Isa>(ctx, a, b);
            auto v = mulMod64V<Isa>(ctx, subMod64V<Isa>(ctx, a, b), w);
            typename Isa::V blk0, blk1;
            Isa::interleave2(u, v, blk0, blk1);
            Isa::storeu(dst + 2 * j, blk0);
            Isa::storeu(dst + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            uint64_t u = mod.addMod(src[j], src[j + h]);
            uint64_t v = mod.mulMod(mod.subMod(src[j], src[j + h]), tw[j]);
            dst[2 * j] = u;
            dst[2 * j + 1] = v;
        }
        src = dst;
        target ^= 1;
    }
}

/** Inverse Pease stage loop + n^-1 scaling. */
template <class Isa>
void
inverse64Impl(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
              uint64_t* scratch)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus64& mod = plan.modulus();
    Ctx64<Isa> ctx = makeCtx64<Isa>(mod);

    uint64_t* bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src = in;
    for (int s = m - 1; s >= 0; --s) {
        uint64_t* dst = bufs[target];
        const uint64_t* tw = plan.twiddleInv(s);
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0 = Isa::loadu(src + 2 * j);
            auto blk1 = Isa::loadu(src + 2 * j + Isa::kLanes);
            typename Isa::V u, v;
            Isa::deinterleave2(blk0, blk1, u, v);
            auto t = mulMod64V<Isa>(ctx, v, Isa::loadu(tw + j));
            Isa::storeu(dst + j, addMod64V<Isa>(ctx, u, t));
            Isa::storeu(dst + j + h, subMod64V<Isa>(ctx, u, t));
        }
        for (; j < h; ++j) {
            uint64_t u = src[2 * j];
            uint64_t t = mod.mulMod(src[2 * j + 1], tw[j]);
            dst[j] = mod.addMod(u, t);
            dst[j + h] = mod.subMod(u, t);
        }
        src = dst;
        target ^= 1;
    }

    const uint64_t n_inv = plan.nInv();
    auto vninv = Isa::set1(n_inv);
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes)
        Isa::storeu(out + i, mulMod64V<Isa>(ctx, Isa::loadu(out + i), vninv));
    for (; i < plan.n(); ++i)
        out[i] = mod.mulMod(out[i], n_inv);
}

} // namespace w64
} // namespace mqx
