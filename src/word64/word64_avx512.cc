/**
 * @file
 * AVX-512 instantiations of the single-word kernels.
 */
#include "simd/isa_avx512.h"
#include "word64/ntt64_impl.h"

namespace mqx {
namespace w64 {
namespace detail {

void
forward64Avx512(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                uint64_t* scratch, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            forward64Lazy4Impl<simd::Avx512Isa>(plan, in, out, scratch);
        else
            forward64LazyImpl<simd::Avx512Isa>(plan, in, out, scratch);
    } else {
        forward64Impl<simd::Avx512Isa>(plan, in, out, scratch);
    }
}

void
inverse64Avx512(const Ntt64Plan& plan, const uint64_t* in, uint64_t* out,
                uint64_t* scratch, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            inverse64Lazy4Impl<simd::Avx512Isa>(plan, in, out, scratch);
        else
            inverse64LazyImpl<simd::Avx512Isa>(plan, in, out, scratch);
    } else {
        inverse64Impl<simd::Avx512Isa>(plan, in, out, scratch);
    }
}

void
vmul64Avx512(const Modulus64& m, const uint64_t* a, const uint64_t* b,
             uint64_t* c, size_t n)
{
    vmul64Impl<simd::Avx512Isa>(m, a, b, c, n);
}

} // namespace detail
} // namespace w64
} // namespace mqx
