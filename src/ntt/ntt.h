/**
 * @file
 * Public NTT API: per-backend transforms plus the high-level Engine.
 *
 * Ordering convention (see plan.h): forward() maps natural order to
 * bit-reversed order; inverse() maps bit-reversed back to natural. The
 * two compose to the identity with no explicit permutation, and
 * point-wise products between forward outputs are order-consistent, so
 * the polynomial-multiplication path never bit-reverses. Call
 * bitReversePermute() on the forward output if natural-order evaluations
 * are needed (the reference transforms produce natural order).
 */
#pragma once

#include "core/backend.h"
#include "ntt/plan.h"

namespace mqx {
namespace ntt {

/**
 * Forward NTT with the chosen backend.
 *
 * @param in      input, natural order (not modified)
 * @param out     result, bit-reversed order
 * @param scratch working buffer, same size; clobbered
 * @param red     Reduction::ShoupLazy (default) runs Harvey lazy
 *                butterflies on the plan's Shoup twiddle companions;
 *                Reduction::Barrett keeps the paper's per-butterfly
 *                full reduction. Outputs are bit-identical.
 * @param fusion  StageFusion::Auto (default) picks the measured-fastest
 *                shape per (backend, n) via resolveStageFusion();
 *                Radix4 fuses two Pease stages per ping-pong sweep,
 *                Radix2 keeps one stage per sweep (A/B baseline).
 *                Outputs are bit-identical; Barrett reduction always
 *                runs the radix-2 stage loop.
 *
 * Plans whose working set exceeds their L2 budget (plan.blocked())
 * dispatch through the four-step blocked driver: cache-resident
 * column/row sub-transforms plus a twiddle fixup, word-identical to the
 * direct path (see plan.h).
 *
 * @throws BackendUnavailable if @p backend cannot run on this host.
 */
void forward(const NttPlan& plan, Backend backend, DConstSpan in, DSpan out,
             DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook,
             Reduction red = Reduction::ShoupLazy,
             StageFusion fusion = StageFusion::Auto);

/** Inverse NTT (bit-reversed in, natural out, scaled by n^-1). */
void inverse(const NttPlan& plan, Backend backend, DConstSpan in, DSpan out,
             DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook,
             Reduction red = Reduction::ShoupLazy,
             StageFusion fusion = StageFusion::Auto);

/**
 * Resolve StageFusion::Auto to a concrete shape for (backend, n), from
 * the committed BENCH_ntt.json measurements: Scalar fuses everywhere
 * (fused_speedup 1.11-1.21x), while the vector/MQX tiers keep radix-2
 * below n = 65536 (fused_speedup 0.93-0.999 there) and fuse at and
 * above it. Radix4/Radix2 requests pass through unchanged; the backend
 * entry points never see Auto.
 */
StageFusion resolveStageFusion(Backend backend, size_t n, StageFusion fusion);

/**
 * Point-wise multiply by a fixed table with precomputed Shoup
 * companions: c[i] = a[i] * t[i] mod q, canonical in/out. The
 * negacyclic twist/untwist pass — one full product plus two low
 * products per element instead of a Barrett reduction. c == a exact
 * aliasing is legal (same contract as blas::vmul).
 *
 * @param tq per-element Shoup companions of @p t (mod::shoupPrecompute)
 */
void vmulShoup(Backend backend, const Modulus& m, DConstSpan a, DConstSpan t,
               DConstSpan tq, DSpan c, MulAlgo algo = MulAlgo::Schoolbook);

/**
 * Forward NTT with an explicit MQX feature variant (Fig. 6 ablation).
 * @param pisa true = PISA proxy timing mode (results are wrong by
 *             design), false = bit-exact Table-2 emulation.
 *
 * Ablation caveat for blocked plans: the four-step driver applies
 * @p variant to every sub-transform, but its twiddle-fixup sweep runs
 * the Full-MQX vmulShoup kernel (no variant-ablated pointwise kernels
 * exist). Results stay bit-identical; for a variant-faithful
 * instruction mix, measure on a direct plan (l2_budget = 0), as
 * bench_fig6_sensitivity does.
 */
void forwardMqx(const NttPlan& plan, MqxVariant variant, bool pisa,
                DConstSpan in, DSpan out, DSpan scratch,
                MulAlgo algo = MulAlgo::Schoolbook,
                Reduction red = Reduction::ShoupLazy,
                StageFusion fusion = StageFusion::Auto);

/** Inverse counterpart of forwardMqx. */
void inverseMqx(const NttPlan& plan, MqxVariant variant, bool pisa,
                DConstSpan in, DSpan out, DSpan scratch,
                MulAlgo algo = MulAlgo::Schoolbook,
                Reduction red = Reduction::ShoupLazy,
                StageFusion fusion = StageFusion::Auto);

/**
 * Interleave factor of the batch kernels for @p backend: how many
 * residue channels one stage sweep serves (the IL knob of the
 * channel-major tiled layout, core/batch_layout.h). 4 for the 4-lane
 * AVX2 tier and the narrow scalar/portable tiers, 8 for the 8-lane
 * AVX-512 and MQX tiers.
 */
size_t batchInterleave(Backend backend);

/**
 * True when @p plan is eligible for the interleaved batch kernels:
 * a direct (non-blocked) plan of at least 16 points. Blocked plans keep
 * the per-channel four-step driver — their sub-transforms are already
 * cache-resident, which is the very win batching trades away.
 */
bool batchSupported(const NttPlan& plan);

/**
 * Forward NTT over @p il channels packed in the interleaved batch
 * layout (batch::packLanes); buffers are il * plan.n() words per half.
 * Always the radix-2 Shoup-lazy wiring, so each lane's output is
 * word-identical to a per-channel forward() with any fusion/reduction.
 * @throws InvalidArgument when !batchSupported(plan).
 */
void forwardBatch(const NttPlan& plan, Backend backend, size_t il,
                  DConstSpan in, DSpan out, DSpan scratch,
                  MulAlgo algo = MulAlgo::Schoolbook);

/** Inverse counterpart of forwardBatch (includes the n^-1 pass). */
void inverseBatch(const NttPlan& plan, Backend backend, size_t il,
                  DConstSpan in, DSpan out, DSpan scratch,
                  MulAlgo algo = MulAlgo::Schoolbook);

/**
 * Batched vmulShoup: the n-entry table t/tq multiplies all @p il packed
 * lanes of @p a (il * t.n words per half); each table vector is loaded
 * once per sweep position. c == a exact aliasing is legal.
 */
void vmulShoupBatch(Backend backend, const Modulus& m, size_t il,
                    DConstSpan a, DConstSpan t, DConstSpan tq, DSpan c,
                    MulAlgo algo = MulAlgo::Schoolbook);

/**
 * Convenience wrapper owning the plan and work buffers. This is the
 * friendly entry point used by the examples; performance-critical code
 * should call forward()/inverse() on preallocated buffers.
 */
class Engine
{
  public:
    /** @param backend defaults to the best available on this host. */
    Engine(const NttPlan& plan, Backend backend);
    explicit Engine(const NttPlan& plan);

    const NttPlan& plan() const { return plan_; }
    Backend backend() const { return backend_; }

    /** Forward transform; returns bit-reversed-order evaluations. */
    std::vector<U128> forward(const std::vector<U128>& input);

    /** Inverse transform of bit-reversed-order evaluations. */
    std::vector<U128> inverse(const std::vector<U128>& input);

    /** Forward transform with natural-order output (extra permutation). */
    std::vector<U128> forwardNatural(const std::vector<U128>& input);

    /**
     * Cyclic polynomial multiplication via the convolution theorem:
     * INTT(NTT(f) .* NTT(g)).
     */
    std::vector<U128> polymulCyclic(const std::vector<U128>& f,
                                    const std::vector<U128>& g);

  private:
    NttPlan plan_;
    Backend backend_;
    ResidueVector buf_a_, buf_b_, buf_c_, scratch_;
    ResidueVector buf_in_, buf_in2_; ///< U128-boundary staging (reused)
};

} // namespace ntt
} // namespace mqx
