/**
 * @file
 * NttPlan construction: root finding and twiddle table precomputation.
 */
#include "ntt/plan.h"

namespace mqx {
namespace ntt {

NttPlan::NttPlan(const Modulus& modulus, size_t n) : mod_(modulus), n_(n)
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "NttPlan: n must be a power of two >= 2");
    logn_ = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn_;
    checkArg(isPrime(mod_.value()), "NttPlan: modulus must be prime");

    omega_ = rootOfUnity(mod_, U128{static_cast<uint64_t>(n)});
    omega_inv_ = mod_.inverse(omega_);
    n_inv_ = mod_.inverse(mod_.reduce(U128{static_cast<uint64_t>(n)}));

    // Shared power tables pow[k] = omega^k and powInv[k] = omega^-k,
    // k < n/2, plus the Shoup companion floor(w * 2^128 / q) for every
    // entry; stage s addresses them with stageTwiddleIndex(). One entry
    // per distinct twiddle — the stretched per-stage layout is gone.
    const size_t h = half();
    const mod::DW<uint64_t> qd = mod::toDw(mod_.value());
    fwd_hi_.reset(h);
    fwd_lo_.reset(h);
    fwd_sh_hi_.reset(h);
    fwd_sh_lo_.reset(h);
    inv_hi_.reset(h);
    inv_lo_.reset(h);
    inv_sh_hi_.reset(h);
    inv_sh_lo_.reset(h);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < h; ++i) {
        fwd_hi_[i] = acc_f.hi;
        fwd_lo_[i] = acc_f.lo;
        inv_hi_[i] = acc_i.hi;
        inv_lo_[i] = acc_i.lo;
        mod::DW<uint64_t> sf = mod::shoupPrecompute(mod::toDw(acc_f), qd);
        mod::DW<uint64_t> si = mod::shoupPrecompute(mod::toDw(acc_i), qd);
        fwd_sh_hi_[i] = sf.hi;
        fwd_sh_lo_[i] = sf.lo;
        inv_sh_hi_[i] = si.hi;
        inv_sh_lo_[i] = si.lo;
        acc_f = mod_.mul(acc_f, omega_);
        acc_i = mod_.mul(acc_i, omega_inv_);
    }
    n_inv_shoup_ =
        mod::fromDw(mod::shoupPrecompute(mod::toDw(n_inv_), qd));
}

size_t
NttPlan::twiddleBytes() const
{
    return 8 * half() * sizeof(uint64_t);
}

size_t
NttPlan::twiddleBytesStretched() const
{
    return 4 * static_cast<size_t>(logn_) * half() * sizeof(uint64_t);
}

void
bitReversePermute(DSpan data)
{
    size_t n = data.n;
    if (n < 2)
        return;
    int logn = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn;
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (int b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        if (r > i) {
            std::swap(data.hi[i], data.hi[r]);
            std::swap(data.lo[i], data.lo[r]);
        }
    }
}

} // namespace ntt
} // namespace mqx
