/**
 * @file
 * NttPlan construction: root finding, twiddle table precomputation, and
 * the four-step blocked decomposition for transforms whose working set
 * exceeds the L2 budget.
 */
#include "ntt/plan.h"

#include <cstdlib>

namespace mqx {
namespace ntt {

namespace {

/** Bit-reversal of @p i within @p bits bits. */
size_t
bitrev(size_t i, int bits)
{
    size_t r = 0;
    for (int b = 0; b < bits; ++b)
        r |= ((i >> b) & 1) << (bits - 1 - b);
    return r;
}

size_t
readL2BudgetEnv()
{
    if (const char* env = std::getenv("MQX_NTT_L2_BUDGET")) {
        char* end = nullptr;
        unsigned long long v = std::strtoull(env, &end, 10);
        if (end != env && *end == '\0')
            return static_cast<size_t>(v);
    }
    return size_t{1} << 20; // 1 MiB: conservative per-core L2
}

} // namespace

size_t
defaultL2Budget()
{
    static const size_t budget = readL2BudgetEnv();
    return budget;
}

NttPlan::NttPlan(const Modulus& modulus, size_t n)
    : NttPlan(modulus, n, nullptr, defaultL2Budget())
{
}

NttPlan::NttPlan(const Modulus& modulus, size_t n, size_t l2_budget)
    : NttPlan(modulus, n, nullptr, l2_budget)
{
}

NttPlan::NttPlan(const Modulus& modulus, size_t n, const U128& omega,
                 size_t l2_budget)
    : NttPlan(modulus, n, &omega, l2_budget)
{
}

NttPlan::NttPlan(const Modulus& modulus, size_t n, const U128* omega,
                 size_t l2_budget)
    : mod_(modulus), n_(n)
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "NttPlan: n must be a power of two >= 2");
    logn_ = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn_;
    checkArg(isPrime(mod_.value()), "NttPlan: modulus must be prime");

    if (omega) {
        // Caller-chosen root: order must be exactly n. For power-of-two
        // n it suffices that omega^(n/2) == -1 (then omega^n == 1 and
        // no smaller power-of-two order works).
        U128 minus_one = mod_.value() - U128{1};
        checkArg(mod_.pow(*omega, U128{static_cast<uint64_t>(n / 2)}) ==
                     minus_one,
                 "NttPlan: omega does not have order n");
        omega_ = mod_.reduce(*omega);
    } else {
        omega_ = rootOfUnity(mod_, U128{static_cast<uint64_t>(n)});
    }
    omega_inv_ = mod_.inverse(omega_);
    n_inv_ = mod_.inverse(mod_.reduce(U128{static_cast<uint64_t>(n)}));

    // Shared power tables pow[k] = omega^k and powInv[k] = omega^-k,
    // k < n/2, plus the Shoup companion floor(w * 2^128 / q) for every
    // entry; stage s addresses them with stageTwiddleIndex(). One entry
    // per distinct twiddle — the stretched per-stage layout is gone.
    const size_t h = half();
    const mod::DW<uint64_t> qd = mod::toDw(mod_.value());
    fwd_hi_.reset(h);
    fwd_lo_.reset(h);
    fwd_sh_hi_.reset(h);
    fwd_sh_lo_.reset(h);
    inv_hi_.reset(h);
    inv_lo_.reset(h);
    inv_sh_hi_.reset(h);
    inv_sh_lo_.reset(h);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < h; ++i) {
        fwd_hi_[i] = acc_f.hi;
        fwd_lo_[i] = acc_f.lo;
        inv_hi_[i] = acc_i.hi;
        inv_lo_[i] = acc_i.lo;
        mod::DW<uint64_t> sf = mod::shoupPrecompute(mod::toDw(acc_f), qd);
        mod::DW<uint64_t> si = mod::shoupPrecompute(mod::toDw(acc_i), qd);
        fwd_sh_hi_[i] = sf.hi;
        fwd_sh_lo_[i] = sf.lo;
        inv_sh_hi_[i] = si.hi;
        inv_sh_lo_[i] = si.lo;
        acc_f = mod_.mul(acc_f, omega_);
        acc_i = mod_.mul(acc_i, omega_inv_);
    }
    n_inv_shoup_ =
        mod::fromDw(mod::shoupPrecompute(mod::toDw(n_inv_), qd));

    buildBlocked(l2_budget);
}

void
NttPlan::buildBlocked(size_t l2_budget)
{
    // Working set of one direct transform: three split hi/lo buffers
    // (in/out/scratch) of n residues at 16 bytes each.
    const size_t working_set = 48 * n_;
    if (l2_budget == 0 || n_ < 16 || working_set <= l2_budget)
        return;

    auto blocked = std::make_shared<Blocked>();
    const int m1 = (logn_ + 1) / 2;
    const int m2 = logn_ - m1;
    blocked->n1 = size_t{1} << m1;
    blocked->n2 = size_t{1} << m2;
    const size_t n1 = blocked->n1;
    const size_t n2 = blocked->n2;

    // Sub-plans take the composing roots omega^n2 / omega^n1 so the
    // factorization reproduces the direct transform word for word; a
    // zero budget stops them from blocking recursively (they are
    // cache-resident by construction anyway).
    U128 w1 = mod_.pow(omega_, U128{static_cast<uint64_t>(n2)});
    U128 w2 = mod_.pow(omega_, U128{static_cast<uint64_t>(n1)});
    blocked->col = std::make_unique<NttPlan>(mod_, n1, w1, size_t{0});
    blocked->row = std::make_unique<NttPlan>(mod_, n2, w2, size_t{0});

    // Fixup tables in streaming layout (see the class comment), with
    // Shoup companions so the fixup pass is a single vmulShoup sweep.
    const mod::DW<uint64_t> qd = mod::toDw(mod_.value());
    blocked->fix_hi.reset(n_);
    blocked->fix_lo.reset(n_);
    blocked->fix_sh_hi.reset(n_);
    blocked->fix_sh_lo.reset(n_);
    blocked->ifix_hi.reset(n_);
    blocked->ifix_lo.reset(n_);
    blocked->ifix_sh_hi.reset(n_);
    blocked->ifix_sh_lo.reset(n_);
    for (size_t r1 = 0; r1 < n1; ++r1) {
        const size_t k1 = bitrev(r1, m1);
        // omega^(j2*k1) as a geometric row: one multiply per entry.
        const U128 step = mod_.pow(omega_, U128{static_cast<uint64_t>(k1)});
        const U128 istep =
            mod_.pow(omega_inv_, U128{static_cast<uint64_t>(k1)});
        U128 acc{1}, iacc{1};
        for (size_t j2 = 0; j2 < n2; ++j2) {
            const size_t fi = j2 * n1 + r1;  // forward: n2 x n1
            const size_t ii = r1 * n2 + j2;  // inverse: n1 x n2
            blocked->fix_hi[fi] = acc.hi;
            blocked->fix_lo[fi] = acc.lo;
            mod::DW<uint64_t> sf =
                mod::shoupPrecompute(mod::toDw(acc), qd);
            blocked->fix_sh_hi[fi] = sf.hi;
            blocked->fix_sh_lo[fi] = sf.lo;
            blocked->ifix_hi[ii] = iacc.hi;
            blocked->ifix_lo[ii] = iacc.lo;
            mod::DW<uint64_t> si =
                mod::shoupPrecompute(mod::toDw(iacc), qd);
            blocked->ifix_sh_hi[ii] = si.hi;
            blocked->ifix_sh_lo[ii] = si.lo;
            acc = mod_.mul(acc, step);
            iacc = mod_.mul(iacc, istep);
        }
    }
    blocked_ = std::move(blocked);
}

size_t
NttPlan::Blocked::bytes() const
{
    const size_t n = n1 * n2;
    // 8 arrays of n words: value + Shoup companion, hi/lo, per
    // direction (4 forward-fixup arrays + 4 inverse-fixup arrays).
    size_t fixup = 8 * n * sizeof(uint64_t);
    return fixup + col->twiddleBytes() + row->twiddleBytes();
}

size_t
NttPlan::twiddleBytes() const
{
    size_t bytes = 8 * half() * sizeof(uint64_t);
    if (blocked_)
        bytes += blocked_->bytes();
    return bytes;
}

size_t
NttPlan::twiddleBytesStretched() const
{
    return 4 * static_cast<size_t>(logn_) * half() * sizeof(uint64_t);
}

size_t
NttPlan::bytesSweptPerTransform(StageFusion fusion) const
{
    // One ping-pong pass reads and writes n split residues: 32n bytes.
    const size_t sweep = 32 * n_;
    if (blocked_) {
        // Two transposes + two cache-resident row-transform passes,
        // plus one streamed fixup direction (value + companion, hi/lo:
        // 32 bytes per element).
        return 4 * sweep + 32 * n_;
    }
    const size_t logn = static_cast<size_t>(logn_);
    const size_t passes =
        fusion == StageFusion::Radix4 ? (logn + 1) / 2 : logn;
    return passes * sweep;
}

void
bitReversePermute(DSpan data)
{
    size_t n = data.n;
    if (n < 2)
        return;
    int logn = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn;
    for (size_t i = 0; i < n; ++i) {
        size_t r = bitrev(i, logn);
        if (r > i) {
            std::swap(data.hi[i], data.hi[r]);
            std::swap(data.lo[i], data.lo[r]);
        }
    }
}

} // namespace ntt
} // namespace mqx
