/**
 * @file
 * NttPlan construction: root finding and twiddle table precomputation.
 */
#include "ntt/plan.h"

namespace mqx {
namespace ntt {

NttPlan::NttPlan(const Modulus& modulus, size_t n) : mod_(modulus), n_(n)
{
    checkArg(n >= 2 && (n & (n - 1)) == 0,
             "NttPlan: n must be a power of two >= 2");
    logn_ = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn_;
    checkArg(isPrime(mod_.value()), "NttPlan: modulus must be prime");

    omega_ = rootOfUnity(mod_, U128{static_cast<uint64_t>(n)});
    omega_inv_ = mod_.inverse(omega_);
    n_inv_ = mod_.inverse(mod_.reduce(U128{static_cast<uint64_t>(n)}));

    // Power tables pow[i] = omega^i and powInv[i] = omega^-i, i < n/2,
    // then the per-stage tables index them with (j >> s) << s.
    size_t h = half();
    std::vector<U128> pow_fwd(h), pow_inv(h);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < h; ++i) {
        pow_fwd[i] = acc_f;
        pow_inv[i] = acc_i;
        acc_f = mod_.mul(acc_f, omega_);
        acc_i = mod_.mul(acc_i, omega_inv_);
    }

    size_t stages = static_cast<size_t>(logn_);
    fwd_hi_.reset(stages * h);
    fwd_lo_.reset(stages * h);
    inv_hi_.reset(stages * h);
    inv_lo_.reset(stages * h);
    for (size_t s = 0; s < stages; ++s) {
        for (size_t j = 0; j < h; ++j) {
            size_t e = (j >> s) << s;
            size_t idx = s * h + j;
            fwd_hi_[idx] = pow_fwd[e].hi;
            fwd_lo_[idx] = pow_fwd[e].lo;
            inv_hi_[idx] = pow_inv[e].hi;
            inv_lo_[idx] = pow_inv[e].lo;
        }
    }
}

size_t
NttPlan::twiddleBytes() const
{
    return 4 * static_cast<size_t>(logn_) * half() * sizeof(uint64_t);
}

void
bitReversePermute(DSpan data)
{
    size_t n = data.n;
    if (n < 2)
        return;
    int logn = 0;
    for (size_t t = n; t > 1; t >>= 1)
        ++logn;
    for (size_t i = 0; i < n; ++i) {
        size_t r = 0;
        for (int b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        if (r > i) {
            std::swap(data.hi[i], data.hi[r]);
            std::swap(data.lo[i], data.lo[r]);
        }
    }
}

} // namespace ntt
} // namespace mqx
