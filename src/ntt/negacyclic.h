/**
 * @file
 * Negacyclic (twisted) NTT: polynomial products in Z_q[x]/(x^n + 1).
 *
 * The paper's kernels compute cyclic transforms; RLWE-based FHE schemes
 * (the workload motivating Section 1) actually multiply in the
 * negacyclic ring. The classic reduction: with psi a primitive 2n-th
 * root of unity (psi^2 = omega_n),
 *
 *     negacyclic_conv(f, g)[k]
 *         = psi^-k * INTT( NTT(psi^i f_i) .* NTT(psi^j g_j) )[k],
 *
 * so a negacyclic product costs one cyclic pipeline plus two twist
 * passes, which are plain point-wise multiplies — reusing the paper's
 * BLAS kernels. Requires 2n | q - 1 (one extra factor of two of
 * 2-adicity).
 */
#pragma once

#include <memory>

#include "core/backend.h"
#include "ntt/ntt.h"

namespace mqx {
namespace ntt {

/**
 * The immutable, shareable part of a negacyclic transform over one
 * (q, n): the cyclic plan plus psi and its twist tables. A pure
 * function of (q, n), so engine::PlanCache memoizes whole instances
 * and threads share them freely; per-call scratch lives in
 * NegacyclicEngine.
 *
 * @throws InvalidArgument unless n is a power of two and 2n divides
 * q - 1 (i.e. the prime's 2-adicity is at least log2(n) + 1).
 */
class NegacyclicTables
{
  public:
    explicit NegacyclicTables(std::shared_ptr<const NttPlan> plan);

    const NttPlan& plan() const { return *plan_; }
    U128 psi() const { return psi_; }
    const ResidueVector& twist() const { return twist_; }
    const ResidueVector& untwist() const { return untwist_; }

  private:
    std::shared_ptr<const NttPlan> plan_;
    U128 psi_;
    ResidueVector twist_;    ///< psi^i
    ResidueVector untwist_;  ///< psi^-i
};

/**
 * Negacyclic transform engine over one (q, n): shared tables plus the
 * per-instance work buffers (which make it single-threaded; give every
 * thread its own engine on top of shared tables).
 */
class NegacyclicEngine
{
  public:
    /** Derive plan and twist tables from scratch. */
    NegacyclicEngine(const NttPrime& prime, size_t n, Backend backend);
    NegacyclicEngine(const NttPrime& prime, size_t n);

    /**
     * Build on an existing cyclic plan (skips the O(n log n) twiddle
     * re-derivation; only the psi twist tables are computed).
     */
    NegacyclicEngine(std::shared_ptr<const NttPlan> plan, Backend backend);

    /**
     * Build on fully precomputed tables (e.g. from engine::PlanCache):
     * no modular math at all, just buffer allocation.
     */
    NegacyclicEngine(std::shared_ptr<const NegacyclicTables> tables,
                     Backend backend);

    const NttPlan& plan() const { return tables_->plan(); }
    Backend backend() const { return backend_; }
    U128 psi() const { return tables_->psi(); }

    /**
     * Forward negacyclic transform: twist by psi^i then cyclic forward.
     * Output in bit-reversed order (same convention as ntt::forward).
     */
    std::vector<U128> forward(const std::vector<U128>& input);

    /** Inverse: cyclic inverse then untwist by psi^-i. */
    std::vector<U128> inverse(const std::vector<U128>& input);

    /**
     * Point-wise product of two forward() outputs — the multiplication
     * stage of the negacyclic pipeline, exposed so operands resident in
     * the transform domain can be multiplied without re-transforming.
     * Order-consistent with forward()/inverse() (both bit-reversed).
     */
    std::vector<U128> pointwiseMul(const std::vector<U128>& f_eval,
                                   const std::vector<U128>& g_eval);

    /**
     * acc[i] += f_eval[i] * g_eval[i] mod q. The accumulation stage of a
     * transform-domain dot product: k products collapse into k calls of
     * this plus ONE inverse(), instead of k full inverse transforms.
     * The accumulator stays in split hi/lo layout across the whole
     * batch (convert with ResidueVector::toU128 only for the final
     * inverse). Exact modular arithmetic makes the result independent
     * of accumulation order, so fused sums are bit-identical to naive
     * ones.
     */
    void pointwiseAccumulate(ResidueVector& acc,
                             const std::vector<U128>& f_eval,
                             const std::vector<U128>& g_eval);

    /**
     * f * g mod (x^n + 1, q) — composed from the staged primitives:
     * inverse(pointwiseMul(forward(f), forward(g))).
     */
    std::vector<U128> polymulNegacyclic(const std::vector<U128>& f,
                                        const std::vector<U128>& g);

  private:
    std::shared_ptr<const NegacyclicTables> tables_;
    Backend backend_;
    ResidueVector buf_a_, buf_b_, buf_c_, scratch_;
};

/**
 * Reference negacyclic convolution via schoolbook + x^n = -1 reduction
 * (for tests and verification).
 */
std::vector<U128> negacyclicConvolution(const Modulus& modulus,
                                        const std::vector<U128>& f,
                                        const std::vector<U128>& g);

} // namespace ntt
} // namespace mqx
