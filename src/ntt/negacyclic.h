/**
 * @file
 * Negacyclic (twisted) NTT: polynomial products in Z_q[x]/(x^n + 1).
 *
 * The paper's kernels compute cyclic transforms; RLWE-based FHE schemes
 * (the workload motivating Section 1) actually multiply in the
 * negacyclic ring. The classic reduction: with psi a primitive 2n-th
 * root of unity (psi^2 = omega_n),
 *
 *     negacyclic_conv(f, g)[k]
 *         = psi^-k * INTT( NTT(psi^i f_i) .* NTT(psi^j g_j) )[k],
 *
 * so a negacyclic product costs one cyclic pipeline plus two twist
 * passes, which are plain point-wise multiplies — reusing the paper's
 * BLAS kernels. Requires 2n | q - 1 (one extra factor of two of
 * 2-adicity).
 *
 * Data layout: the staged primitives are span-based and SoA-native —
 * they consume and produce split hi/lo views (core/residue_span.h)
 * with NO layout conversion and NO allocation per call; all scratch
 * lives in the engine and is reused across calls. The std::vector<U128>
 * overloads are thin adapters retained for the public boundary and the
 * reference comparators (each conversion is counted in
 * layout::metrics()).
 *
 * Aliasing rules (every span primitive): an input may be the EXACT
 * same span as the output (in == out, in-place operation — every
 * backend loads a block before storing it), but a partial overlap is
 * rejected with InvalidArgument.
 */
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/backend.h"
#include "ntt/ntt.h"

namespace mqx {
namespace robust {
class CancelToken;
} // namespace robust

namespace ntt {

/**
 * The immutable, shareable part of a negacyclic transform over one
 * (q, n): the cyclic plan plus psi and its twist tables. A pure
 * function of (q, n), so engine::PlanCache memoizes whole instances
 * and threads share them freely; per-call scratch lives in
 * NegacyclicEngine.
 *
 * @throws InvalidArgument unless n is a power of two and 2n divides
 * q - 1 (i.e. the prime's 2-adicity is at least log2(n) + 1).
 */
class NegacyclicTables
{
  public:
    explicit NegacyclicTables(std::shared_ptr<const NttPlan> plan);

    const NttPlan& plan() const { return *plan_; }
    U128 psi() const { return psi_; }
    const ResidueVector& twist() const { return twist_; }
    const ResidueVector& untwist() const { return untwist_; }
    /** Shoup companions of twist()/untwist() (per-element quotients). */
    const ResidueVector& twistShoup() const { return twist_shoup_; }
    const ResidueVector& untwistShoup() const { return untwist_shoup_; }

    /**
     * Bytes of twist-table storage including the Shoup companions
     * (4 split-layout vectors of n elements) — the negacyclic side of
     * the plan-cache footprint accounting.
     */
    size_t
    tableBytes() const
    {
        return 4 * 2 * plan_->n() * sizeof(uint64_t);
    }

  private:
    std::shared_ptr<const NttPlan> plan_;
    U128 psi_;
    ResidueVector twist_;          ///< psi^i
    ResidueVector untwist_;        ///< psi^-i
    ResidueVector twist_shoup_;    ///< floor(psi^i * 2^128 / q)
    ResidueVector untwist_shoup_;  ///< floor(psi^-i * 2^128 / q)
};

/**
 * Negacyclic transform engine over one (q, n): shared tables plus the
 * per-instance work buffers (which make it single-threaded; give every
 * thread its own engine on top of shared tables — or lease one from a
 * NegacyclicWorkspacePool, which reuses the buffers across channels
 * and calls).
 */
class NegacyclicEngine
{
  public:
    /** Derive plan and twist tables from scratch. */
    NegacyclicEngine(const NttPrime& prime, size_t n, Backend backend);
    NegacyclicEngine(const NttPrime& prime, size_t n);

    /**
     * Build on an existing cyclic plan (skips the O(n log n) twiddle
     * re-derivation; only the psi twist tables are computed).
     */
    NegacyclicEngine(std::shared_ptr<const NttPlan> plan, Backend backend);

    /**
     * Build on fully precomputed tables (e.g. from engine::PlanCache):
     * no modular math at all, just buffer allocation.
     */
    NegacyclicEngine(std::shared_ptr<const NegacyclicTables> tables,
                     Backend backend);

    /**
     * Re-point this engine at different precomputed tables (another
     * residue channel, say) without constructing a new engine: the
     * work buffers are reused as-is when the transform length matches
     * and resized only when it changes — the workspace-recycling
     * primitive behind the allocation-free channel dispatch.
     */
    void rebind(std::shared_ptr<const NegacyclicTables> tables,
                Backend backend);

    const NttPlan& plan() const { return tables_->plan(); }
    Backend backend() const { return backend_; }
    U128 psi() const { return tables_->psi(); }

    // ------------------------------------------------------------------
    // Span-based staged primitives: SoA-native, in-place capable,
    // allocation-free. Sizes must equal plan().n(); in == out is legal,
    // partial overlaps throw InvalidArgument.
    // ------------------------------------------------------------------

    /**
     * Forward negacyclic transform: twist by psi^i then cyclic forward.
     * Output in bit-reversed order (same convention as ntt::forward).
     */
    void forward(DConstSpan in, DSpan out);

    /** Inverse: cyclic inverse then untwist by psi^-i. */
    void inverse(DConstSpan in, DSpan out);

    /**
     * Point-wise product of two forward() outputs — the multiplication
     * stage of the negacyclic pipeline, exposed so operands resident in
     * the transform domain can be multiplied without re-transforming.
     * Order-consistent with forward()/inverse() (both bit-reversed).
     */
    void pointwiseMul(DConstSpan f_eval, DConstSpan g_eval, DSpan out);

    /**
     * acc[i] += f_eval[i] * g_eval[i] mod q. The accumulation stage of a
     * transform-domain dot product: k products collapse into k calls of
     * this plus ONE inverse(), instead of k full inverse transforms.
     * Exact modular arithmetic makes the result independent of
     * accumulation order, so fused sums are bit-identical to naive ones.
     */
    void pointwiseAccumulate(DSpan acc, DConstSpan f_eval, DConstSpan g_eval);

    /**
     * f * g mod (x^n + 1, q) — composed from the staged primitives:
     * inverse(pointwiseMul(forward(f), forward(g))).
     */
    void polymul(DConstSpan f, DConstSpan g, DSpan out);

    /**
     * Auxiliary per-engine buffer (fma accumulators, eval staging),
     * lazily sized to plan().n() and retained across rebinds — so a
     * warmed-up workspace hands the fused dot product its scratch with
     * no allocation. @p slot < 3.
     */
    ResidueVector& auxBuffer(size_t slot);

    // ------------------------------------------------------------------
    // U128-vector adapters (public boundary / reference comparators).
    // Each one pays counted layout conversions; kernel code uses the
    // span primitives above instead.
    // ------------------------------------------------------------------

    std::vector<U128> forward(const std::vector<U128>& input);
    std::vector<U128> inverse(const std::vector<U128>& input);
    std::vector<U128> pointwiseMul(const std::vector<U128>& f_eval,
                                   const std::vector<U128>& g_eval);
    void pointwiseAccumulate(ResidueVector& acc,
                             const std::vector<U128>& f_eval,
                             const std::vector<U128>& g_eval);
    std::vector<U128> polymulNegacyclic(const std::vector<U128>& f,
                                        const std::vector<U128>& g);

  private:
    std::shared_ptr<const NegacyclicTables> tables_;
    Backend backend_;
    ResidueVector buf_a_, buf_b_, buf_c_, scratch_;
    std::array<ResidueVector, 3> aux_; ///< lazily sized, see auxBuffer()
};

/**
 * A mutex-guarded free-list of NegacyclicEngine workspaces shared by
 * the channel-dispatch layers (engine::Engine's pool threads, the
 * serial RnsKernels loop). acquire() leases an engine rebound to the
 * requested tables — popping a recycled instance when one is free, so
 * in steady state a channel op costs a mutex lock and a pointer pop
 * instead of four length-n buffer allocations. The lease returns the
 * engine on destruction.
 *
 * An optional capacity bound (max_workspaces > 0) caps total live
 * engines; at the cap, acquire() WAITS for a lease to return instead
 * of allocating — the service layer's memory ceiling under overload.
 * A waiting acquire consults its CancelToken before and while blocked
 * (1 ms poll), so a cancelled or deadline-blown request unblocks with
 * Cancelled/DeadlineExceeded instead of sitting on a contended pool.
 */
class NegacyclicWorkspacePool
{
  public:
    /** RAII lease; move-only. The engine is valid for the lease's life. */
    class Lease
    {
      public:
        Lease(Lease&& other) noexcept
            : pool_(other.pool_), engine_(std::move(other.engine_))
        {
            other.pool_ = nullptr;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;
        ~Lease();

        NegacyclicEngine& engine() { return *engine_; }

      private:
        friend class NegacyclicWorkspacePool;
        Lease(NegacyclicWorkspacePool* pool,
              std::unique_ptr<NegacyclicEngine> engine)
            : pool_(pool), engine_(std::move(engine))
        {
        }

        NegacyclicWorkspacePool* pool_;
        std::unique_ptr<NegacyclicEngine> engine_;
    };

    /** @p max_workspaces caps live engines; 0 = unbounded (default). */
    explicit NegacyclicWorkspacePool(size_t max_workspaces = 0)
        : max_workspaces_(max_workspaces)
    {
    }
    NegacyclicWorkspacePool(const NegacyclicWorkspacePool&) = delete;
    NegacyclicWorkspacePool& operator=(const NegacyclicWorkspacePool&) =
        delete;

    /**
     * Lease a workspace engine rebound to @p tables / @p backend.
     * Thread-safe; the pool must outlive every lease. When the pool is
     * bounded and every workspace is leased, blocks until one returns;
     * a non-null @p cancel is checked before and during the wait and a
     * cancelled/expired token throws StatusError (no lease taken).
     */
    Lease acquire(std::shared_ptr<const NegacyclicTables> tables,
                  Backend backend,
                  const robust::CancelToken* cancel = nullptr);

    /** Idle workspaces currently available for reuse (tests). */
    size_t idleCount() const;

    /** Configured capacity; 0 = unbounded. */
    size_t capacity() const { return max_workspaces_; }

    /**
     * Leases currently outstanding (acquired, not yet returned). Zero
     * whenever no op is in flight — the balance the fault-injection
     * tests assert after randomized failure runs: leases are returned
     * by RAII unwind, so an exception anywhere mid-pipeline can
     * neither leak nor double-return one.
     */
    size_t leasedCount() const
    {
        return leased_.load(std::memory_order_acquire);
    }

    /** Total successful acquire() calls since construction. */
    uint64_t totalLeases() const
    {
        return total_leases_.load(std::memory_order_relaxed);
    }

  private:
    void release(std::unique_ptr<NegacyclicEngine> engine);

    mutable std::mutex mutex_;
    std::condition_variable available_cv_;
    std::vector<std::unique_ptr<NegacyclicEngine>> free_;
    size_t max_workspaces_ = 0; ///< 0 = unbounded
    size_t live_ = 0;           ///< engines in existence, guarded by mutex_
    std::atomic<size_t> leased_{0};
    std::atomic<uint64_t> total_leases_{0};
};

/**
 * Reference negacyclic convolution via schoolbook + x^n = -1 reduction
 * (for tests and verification).
 */
std::vector<U128> negacyclicConvolution(const Modulus& modulus,
                                        const std::vector<U128>& f,
                                        const std::vector<U128>& g);

/**
 * Reference negacyclic convolution into preallocated storage: @p out
 * receives the n-length result and @p full_scratch holds the 2n-1
 * schoolbook product. Both are sized with assign(), so a caller looping
 * over channels or trials reuses their capacity instead of growing a
 * fresh 2n-1 vector per iteration (the naive path used to reallocate
 * the full product inside such loops).
 */
void negacyclicConvolutionInto(const Modulus& modulus,
                               const std::vector<U128>& f,
                               const std::vector<U128>& g,
                               std::vector<U128>& out,
                               std::vector<U128>& full_scratch);

} // namespace ntt
} // namespace mqx
