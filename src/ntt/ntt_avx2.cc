/**
 * @file
 * AVX2 instantiation of the Pease NTT (compiled with -mavx2).
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"
#include "simd/isa_avx2.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardAvx2(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
            MulAlgo algo)
{
    peaseForwardImpl<simd::Avx2Isa>(plan, in, out, scratch, algo);
}

void
inverseAvx2(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
            MulAlgo algo)
{
    peaseInverseImpl<simd::Avx2Isa>(plan, in, out, scratch, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
