/**
 * @file
 * AVX2 instantiation of the Pease NTT (compiled with -mavx2).
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"
#include "simd/isa_avx2.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardAvx2(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
            MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseForward4LazyImpl<simd::Avx2Isa>(plan, in, out, scratch,
                                                 algo);
        else
            peaseForwardLazyImpl<simd::Avx2Isa>(plan, in, out, scratch,
                                                algo);
    } else {
        peaseForwardImpl<simd::Avx2Isa>(plan, in, out, scratch, algo);
    }
}

void
inverseAvx2(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
            MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseInverse4LazyImpl<simd::Avx2Isa>(plan, in, out, scratch,
                                                 algo);
        else
            peaseInverseLazyImpl<simd::Avx2Isa>(plan, in, out, scratch,
                                                algo);
    } else {
        peaseInverseImpl<simd::Avx2Isa>(plan, in, out, scratch, algo);
    }
}

void
vmulShoupAvx2(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
              DSpan c, MulAlgo algo)
{
    vmulShoupImpl<simd::Avx2Isa>(m, a, t, tq, c, algo);
}

void
forwardBatchAvx2(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                 DSpan scratch, MulAlgo algo)
{
    peaseForwardBatchImpl<simd::Avx2Isa>(plan, il, in, out, scratch, algo);
}

void
inverseBatchAvx2(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                 DSpan scratch, MulAlgo algo)
{
    peaseInverseBatchImpl<simd::Avx2Isa>(plan, il, in, out, scratch, algo);
}

void
vmulShoupBatchAvx2(const Modulus& m, size_t il, DConstSpan a, DConstSpan t,
                   DConstSpan tq, DSpan c, MulAlgo algo)
{
    vmulShoupBatchImpl<simd::Avx2Isa>(m, il, a, t, tq, c, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
