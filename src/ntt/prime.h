/**
 * @file
 * NTT-friendly prime generation and roots of unity.
 *
 * A size-n power-of-two NTT over Z_q needs a primitive n-th root of
 * unity, which exists iff n | q - 1. We therefore search for primes of
 * the form q = c * 2^e + 1 ("NTT-friendly" primes with 2-adicity e).
 *
 * Finding a 2^e-order element needs no factorization of q - 1: for any
 * quadratic non-residue g (checked via Euler's criterion,
 * g^((q-1)/2) == -1), the element g^((q-1)/2^e) has order exactly 2^e.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "mod/modulus.h"
#include "u128/u128.h"

namespace mqx {
namespace ntt {

/**
 * Miller-Rabin primality test.
 *
 * @param n       candidate, must satisfy the Barrett range (< 2^124)
 * @param rounds  random witness rounds (error probability <= 4^-rounds)
 * @param seed    witness stream seed (deterministic for fixed inputs)
 */
bool isPrime(const U128& n, int rounds = 40, uint64_t seed = 0x5eed);

/** An NTT-friendly prime q = c * 2^e + 1. */
struct NttPrime
{
    U128 q;          ///< the prime
    int bits = 0;    ///< bit width of q
    int two_adicity = 0; ///< e: largest power of two dividing q - 1
};

/**
 * Deterministically find a prime with exactly @p bits bits and 2-adicity
 * of at least @p two_adicity (so NTTs up to size 2^two_adicity work).
 *
 * @throws InvalidArgument if bits < two_adicity + 2 or bits > 124.
 */
NttPrime findNttPrime(int bits, int two_adicity);

/**
 * Deterministically find @p count distinct NTT-friendly primes (the
 * residue basis of an RNS decomposition, Section 1 of the paper).
 * Scans the same candidate sequence as findNttPrime, so the first
 * element equals findNttPrime(bits, two_adicity).
 */
std::vector<NttPrime> findNttPrimes(int bits, int two_adicity, int count);

/**
 * A primitive root of unity of order @p order (a power of two dividing
 * the 2-adicity of q - 1) in Z_q for prime q.
 *
 * @throws InvalidArgument if order does not divide q - 1 or a root
 * cannot be found (q not prime).
 */
U128 rootOfUnity(const Modulus& modulus, const U128& order);

/** The default 124-bit benchmark prime used across benches and examples. */
const NttPrime& defaultBenchPrime();

/** A smaller 66-bit double-word prime for fast tests. */
const NttPrime& smallTestPrime();

} // namespace ntt
} // namespace mqx
