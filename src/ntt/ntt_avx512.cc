/**
 * @file
 * AVX-512 instantiation of the Pease NTT (compiled with AVX-512 flags).
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"
#include "simd/isa_avx512.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardAvx512(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseForward4LazyImpl<simd::Avx512Isa>(plan, in, out, scratch,
                                                   algo);
        else
            peaseForwardLazyImpl<simd::Avx512Isa>(plan, in, out, scratch,
                                                  algo);
    } else {
        peaseForwardImpl<simd::Avx512Isa>(plan, in, out, scratch, algo);
    }
}

void
inverseAvx512(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseInverse4LazyImpl<simd::Avx512Isa>(plan, in, out, scratch,
                                                   algo);
        else
            peaseInverseLazyImpl<simd::Avx512Isa>(plan, in, out, scratch,
                                                  algo);
    } else {
        peaseInverseImpl<simd::Avx512Isa>(plan, in, out, scratch, algo);
    }
}

void
vmulShoupAvx512(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
                DSpan c, MulAlgo algo)
{
    vmulShoupImpl<simd::Avx512Isa>(m, a, t, tq, c, algo);
}

void
forwardBatchAvx512(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                   DSpan scratch, MulAlgo algo)
{
    peaseForwardBatchImpl<simd::Avx512Isa>(plan, il, in, out, scratch, algo);
}

void
inverseBatchAvx512(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                   DSpan scratch, MulAlgo algo)
{
    peaseInverseBatchImpl<simd::Avx512Isa>(plan, il, in, out, scratch, algo);
}

void
vmulShoupBatchAvx512(const Modulus& m, size_t il, DConstSpan a, DConstSpan t,
                     DConstSpan tq, DSpan c, MulAlgo algo)
{
    vmulShoupBatchImpl<simd::Avx512Isa>(m, il, a, t, tq, c, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
