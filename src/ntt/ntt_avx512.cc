/**
 * @file
 * AVX-512 instantiation of the Pease NTT (compiled with AVX-512 flags).
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"
#include "simd/isa_avx512.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardAvx512(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo)
{
    peaseForwardImpl<simd::Avx512Isa>(plan, in, out, scratch, algo);
}

void
inverseAvx512(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo)
{
    peaseInverseImpl<simd::Avx512Isa>(plan, in, out, scratch, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
