/**
 * @file
 * Cache-blocked four-step NTT driver for large transforms.
 *
 * A direct Pease transform makes one full sweep over the ping-pong
 * buffers per stage (pair); once the working set outgrows L2 every
 * sweep streams from DRAM and the transform hits the bandwidth ceiling
 * the SoL roofline model predicts. The four-step factorization
 * n = n1 * n2 replaces the logn sweeps with a constant number:
 *
 *   1. transpose   in (n1 x n2)   -> scratch (n2 x n1)
 *   2. n2 column transforms of size n1 (now contiguous rows), each
 *      followed in-cache by the twiddle fixup omega^(j2 * k1)
 *   3. transpose   out (n2 x n1)  -> scratch (n1 x n2)
 *   4. n1 row transforms of size n2
 *
 * with n1 = 2^ceil(logn/2) and n2 = n/n1, so every sub-transform's
 * working set is O(sqrt(n)) and stays cache-resident. The constituent
 * kernels are the ordinary (fused radix-4) Pease kernels; because each
 * one maps natural order to bit-reversed order, the composition lands
 * every output word exactly where the direct transform puts it —
 * out[rev(k1)*n2 + rev(k2)] = X[k1 + n1*k2] = out[rev(k)] — so the
 * blocked path is word-identical to the direct path with no extra
 * permutation passes. The inverse runs the mirror image (row inverse
 * transforms + inverse fixup, transpose, column inverse transforms,
 * transpose), composing the n2^-1 and n1^-1 scalings into the direct
 * path's n^-1.
 *
 * Sub-transform plans carry the composing roots omega^n2 / omega^n1
 * (see NttPlan::buildBlocked) — this is what makes the factorization
 * reproduce the direct transform's exact values rather than some other
 * valid NTT.
 */
#include "ntt/ntt.h"

#include <algorithm>

#include "core/config.h"
#include "ntt/ntt_backends.h"
#include "ntt/pease_impl.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace ntt {
namespace detail {

namespace {

/** Tiled out-of-place transpose: dst[c*rows + r] = src[r*cols + c]. */
void
transposeWords(const uint64_t* MQX_RESTRICT src, uint64_t* MQX_RESTRICT dst,
               size_t rows, size_t cols)
{
    constexpr size_t kTile = 32; // 8 KiB src tile + 8 KiB dst tile
    for (size_t r0 = 0; r0 < rows; r0 += kTile) {
        const size_t r1 = std::min(rows, r0 + kTile);
        for (size_t c0 = 0; c0 < cols; c0 += kTile) {
            const size_t c1 = std::min(cols, c0 + kTile);
            for (size_t r = r0; r < r1; ++r) {
                for (size_t c = c0; c < c1; ++c)
                    dst[c * rows + r] = src[r * cols + c];
            }
        }
    }
}

void
transposeSplit(DConstSpan src, DSpan dst, size_t rows, size_t cols)
{
    transposeWords(src.hi, dst.hi, rows, cols);
    transposeWords(src.lo, dst.lo, rows, cols);
}

/**
 * Sub-transform ping-pong buffer, leased per thread so the steady
 * state stays allocation-free (the zero-allocs-per-call invariant the
 * span-based engine paths establish): O(sqrt n) words, grown once per
 * thread to the largest n1 seen and reused by every blocked transform
 * on that thread.
 */
DSpan
subTransformTemp(size_t n1)
{
    static thread_local ResidueVector temp;
    if (temp.size() < n1)
        temp = ResidueVector(n1);
    return DSpan{temp.span().hi, temp.span().lo, n1};
}

void
subForward(const BlockedRoute& route, const NttPlan& plan, DConstSpan in,
           DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
           StageFusion fusion)
{
    if (route.use_mqx)
        forwardMqx(plan, route.variant, route.pisa, in, out, scratch, algo,
                   red, fusion);
    else
        forward(plan, route.backend, in, out, scratch, algo, red, fusion);
}

void
subInverse(const BlockedRoute& route, const NttPlan& plan, DConstSpan in,
           DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
           StageFusion fusion)
{
    if (route.use_mqx)
        inverseMqx(plan, route.variant, route.pisa, in, out, scratch, algo,
                   red, fusion);
    else
        inverse(plan, route.backend, in, out, scratch, algo, red, fusion);
}

} // namespace

void
blockedForward(const NttPlan& plan, const BlockedRoute& route, DConstSpan in,
               DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
               StageFusion fusion)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const NttPlan::Blocked* blk = plan.blocked();
    checkArg(blk != nullptr, "blockedForward: plan has no decomposition");
    const size_t n1 = blk->n1;
    const size_t n2 = blk->n2;
    const Modulus& m = plan.modulus();
    DSpan temp1 = subTransformTemp(n1);

    // 1. Columns become contiguous rows.
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.transpose");
        transposeSplit(in, scratch, n1, n2);
    }

    // 2. Size-n1 transforms per row + streamed twiddle fixup (the fixup
    //    table layout matches this loop exactly; rows are still
    //    cache-hot from the transform when vmulShoup rewrites them).
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.cols");
        for (size_t j2 = 0; j2 < n2; ++j2) {
            const size_t off = j2 * n1;
            DConstSpan src_row{scratch.hi + off, scratch.lo + off, n1};
            DSpan dst_row{out.hi + off, out.lo + off, n1};
            subForward(route, *blk->col, src_row, dst_row, temp1, algo, red,
                       fusion);
            DConstSpan fix{blk->fix_hi.data() + off, blk->fix_lo.data() + off,
                           n1};
            DConstSpan fixq{blk->fix_sh_hi.data() + off,
                            blk->fix_sh_lo.data() + off, n1};
            MQX_SCOPED_SPAN(fixup_span, "ntt.blocked.fixup");
            vmulShoup(route.backend, m, dst_row, fix, fixq, dst_row, algo);
        }
    }

    // 3. Back to row-major over the final row index.
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.transpose");
        transposeSplit(out, scratch, n2, n1);
    }

    // 4. Size-n2 transforms per row; bit-reversed row/column outputs
    //    compose into the direct transform's bit-reversed order.
    DSpan temp2{temp1.hi, temp1.lo, n2};
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.rows");
        for (size_t r1 = 0; r1 < n1; ++r1) {
            const size_t off = r1 * n2;
            DConstSpan src_row{scratch.hi + off, scratch.lo + off, n2};
            DSpan dst_row{out.hi + off, out.lo + off, n2};
            subForward(route, *blk->row, src_row, dst_row, temp2, algo, red,
                       fusion);
        }
    }
}

void
blockedInverse(const NttPlan& plan, const BlockedRoute& route, DConstSpan in,
               DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
               StageFusion fusion)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const NttPlan::Blocked* blk = plan.blocked();
    checkArg(blk != nullptr, "blockedInverse: plan has no decomposition");
    const size_t n1 = blk->n1;
    const size_t n2 = blk->n2;
    const Modulus& m = plan.modulus();
    DSpan temp1 = subTransformTemp(n1);
    DSpan temp2{temp1.hi, temp1.lo, n2};

    // 1. Size-n2 inverse transforms per row (undoing forward step 4),
    //    then the inverse fixup omega^-(k1 * j2) while the row is hot.
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.rows");
        for (size_t r1 = 0; r1 < n1; ++r1) {
            const size_t off = r1 * n2;
            DConstSpan src_row{in.hi + off, in.lo + off, n2};
            DSpan dst_row{scratch.hi + off, scratch.lo + off, n2};
            subInverse(route, *blk->row, src_row, dst_row, temp2, algo, red,
                       fusion);
            DConstSpan fix{blk->ifix_hi.data() + off,
                           blk->ifix_lo.data() + off, n2};
            DConstSpan fixq{blk->ifix_sh_hi.data() + off,
                            blk->ifix_sh_lo.data() + off, n2};
            MQX_SCOPED_SPAN(fixup_span, "ntt.blocked.fixup");
            vmulShoup(route.backend, m, dst_row, fix, fixq, dst_row, algo);
        }
    }

    // 2. Columns become contiguous rows.
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.transpose");
        transposeSplit(scratch, out, n1, n2);
    }

    // 3. Size-n1 inverse transforms (undoing forward step 2); the
    //    composed n2^-1 * n1^-1 scaling equals the direct n^-1.
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.cols");
        for (size_t j2 = 0; j2 < n2; ++j2) {
            const size_t off = j2 * n1;
            DConstSpan src_row{out.hi + off, out.lo + off, n1};
            DSpan dst_row{scratch.hi + off, scratch.lo + off, n1};
            subInverse(route, *blk->col, src_row, dst_row, temp1, algo, red,
                       fusion);
        }
    }

    // 4. Natural row-major order.
    {
        MQX_SCOPED_SPAN(phase_span, "ntt.blocked.transpose");
        transposeSplit(scratch, out, n2, n1);
    }
}

} // namespace detail
} // namespace ntt
} // namespace mqx
