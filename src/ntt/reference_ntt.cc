/**
 * @file
 * Reference O(n^2) transforms.
 */
#include "ntt/reference_ntt.h"

namespace mqx {
namespace ntt {

std::vector<U128>
referenceNtt(const NttPlan& plan, const std::vector<U128>& input)
{
    checkArg(input.size() == plan.n(), "referenceNtt: size mismatch");
    const Modulus& m = plan.modulus();
    size_t n = plan.n();
    std::vector<U128> out(n);
    // Precompute omega^k row seeds to keep this O(n^2) multiplications.
    for (size_t k = 0; k < n; ++k) {
        U128 w_k = plan.modulus().pow(plan.omega(), U128{static_cast<uint64_t>(k)});
        U128 acc{0};
        U128 w{1};
        for (size_t j = 0; j < n; ++j) {
            acc = m.add(acc, m.mul(input[j], w));
            w = m.mul(w, w_k);
        }
        out[k] = acc;
    }
    return out;
}

std::vector<U128>
referenceIntt(const NttPlan& plan, const std::vector<U128>& input)
{
    checkArg(input.size() == plan.n(), "referenceIntt: size mismatch");
    const Modulus& m = plan.modulus();
    size_t n = plan.n();
    std::vector<U128> out(n);
    for (size_t k = 0; k < n; ++k) {
        U128 w_k =
            plan.modulus().pow(plan.omegaInv(), U128{static_cast<uint64_t>(k)});
        U128 acc{0};
        U128 w{1};
        for (size_t j = 0; j < n; ++j) {
            acc = m.add(acc, m.mul(input[j], w));
            w = m.mul(w, w_k);
        }
        out[k] = m.mul(acc, plan.nInv());
    }
    return out;
}

void
schoolbookPolyMulInto(const Modulus& modulus, const std::vector<U128>& f,
                      const std::vector<U128>& g, std::vector<U128>& out)
{
    checkArg(!f.empty() && !g.empty(), "schoolbookPolyMul: empty input");
    // out is resized and zeroed before the loop reads f/g, so it must
    // not alias an input (the span APIs throw on this too).
    checkArg(&out != &f && &out != &g,
             "schoolbookPolyMulInto: output aliases an input");
    out.assign(f.size() + g.size() - 1, U128{0});
    for (size_t i = 0; i < f.size(); ++i) {
        for (size_t j = 0; j < g.size(); ++j) {
            out[i + j] = modulus.add(out[i + j], modulus.mul(f[i], g[j]));
        }
    }
}

std::vector<U128>
schoolbookPolyMul(const Modulus& modulus, const std::vector<U128>& f,
                  const std::vector<U128>& g)
{
    std::vector<U128> out;
    schoolbookPolyMulInto(modulus, f, g, out);
    return out;
}

std::vector<U128>
cyclicConvolution(const Modulus& modulus, const std::vector<U128>& f,
                  const std::vector<U128>& g)
{
    checkArg(f.size() == g.size() && !f.empty(),
             "cyclicConvolution: length mismatch");
    size_t n = f.size();
    // schoolbookPolyMul already returns exactly 2n - 1 terms for
    // equal-length inputs; no resize needed.
    std::vector<U128> full = schoolbookPolyMul(modulus, f, g);
    std::vector<U128> out(n, U128{0});
    for (size_t i = 0; i < full.size(); ++i)
        out[i % n] = modulus.add(out[i % n], full[i]);
    return out;
}

} // namespace ntt
} // namespace mqx
