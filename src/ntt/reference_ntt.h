/**
 * @file
 * Reference transforms used as correctness oracles.
 *
 * referenceNtt evaluates Eq. 11 of the paper directly in O(n^2):
 *   y_k = sum_j x_j * omega^(jk) mod q.
 * Output is in natural order. referenceIntt inverts it. Both are far too
 * slow for production but are the ground truth every fast backend is
 * tested against. schoolbookPolyMul (Eq. 10) anchors the convolution
 * theorem tests.
 */
#pragma once

#include <vector>

#include "ntt/plan.h"
#include "u128/u128.h"

namespace mqx {
namespace ntt {

/** Direct Eq.-11 evaluation, natural-order output. */
std::vector<U128> referenceNtt(const NttPlan& plan,
                               const std::vector<U128>& input);

/** Inverse of referenceNtt (natural-order input and output). */
std::vector<U128> referenceIntt(const NttPlan& plan,
                                const std::vector<U128>& input);

/**
 * Schoolbook product of two degree < n polynomials over Z_q (Eq. 10);
 * result has length 2n - 1.
 */
std::vector<U128> schoolbookPolyMul(const Modulus& modulus,
                                    const std::vector<U128>& f,
                                    const std::vector<U128>& g);

/**
 * Schoolbook product into preallocated storage: @p out is assigned to
 * length |f| + |g| - 1, reusing its capacity — callers looping over
 * channels or trials pay the allocation once instead of per call.
 */
void schoolbookPolyMulInto(const Modulus& modulus,
                           const std::vector<U128>& f,
                           const std::vector<U128>& g,
                           std::vector<U128>& out);

/**
 * Cyclic (length-preserving) schoolbook convolution: the polynomial
 * product reduced mod x^n - 1. This is what pointwise multiplication in
 * the NTT domain computes.
 */
std::vector<U128> cyclicConvolution(const Modulus& modulus,
                                    const std::vector<U128>& f,
                                    const std::vector<U128>& g);

} // namespace ntt
} // namespace mqx
