/**
 * @file
 * Portable (plain C++) instantiation of the Pease NTT; correctness
 * fallback for hosts without AVX.
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"
#include "simd/isa_portable.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardPortable(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseForward4LazyImpl<simd::PortableIsa>(plan, in, out, scratch,
                                                     algo);
        else
            peaseForwardLazyImpl<simd::PortableIsa>(plan, in, out, scratch,
                                                    algo);
    } else {
        peaseForwardImpl<simd::PortableIsa>(plan, in, out, scratch, algo);
    }
}

void
inversePortable(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseInverse4LazyImpl<simd::PortableIsa>(plan, in, out, scratch,
                                                     algo);
        else
            peaseInverseLazyImpl<simd::PortableIsa>(plan, in, out, scratch,
                                                    algo);
    } else {
        peaseInverseImpl<simd::PortableIsa>(plan, in, out, scratch, algo);
    }
}

void
vmulShoupPortable(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
                  DSpan c, MulAlgo algo)
{
    vmulShoupImpl<simd::PortableIsa>(m, a, t, tq, c, algo);
}

void
forwardBatchPortable(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo)
{
    peaseForwardBatchImpl<simd::PortableIsa>(plan, il, in, out, scratch,
                                             algo);
}

void
inverseBatchPortable(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo)
{
    peaseInverseBatchImpl<simd::PortableIsa>(plan, il, in, out, scratch,
                                             algo);
}

void
vmulShoupBatchPortable(const Modulus& m, size_t il, DConstSpan a, DConstSpan t,
                       DConstSpan tq, DSpan c, MulAlgo algo)
{
    vmulShoupBatchImpl<simd::PortableIsa>(m, il, a, t, tq, c, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
