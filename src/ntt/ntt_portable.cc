/**
 * @file
 * Portable (plain C++) instantiation of the Pease NTT; correctness
 * fallback for hosts without AVX.
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"
#include "simd/isa_portable.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardPortable(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                MulAlgo algo)
{
    peaseForwardImpl<simd::PortableIsa>(plan, in, out, scratch, algo);
}

void
inversePortable(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                MulAlgo algo)
{
    peaseInverseImpl<simd::PortableIsa>(plan, in, out, scratch, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
