/**
 * @file
 * MQX instantiations of the Pease NTT: every Fig. 6 feature variant, in
 * both Table-2 emulation and PISA proxy modes, with both reduction
 * strategies (the Shoup-lazy path exercises the same adc/sbb/mulWide
 * policy ops, so the ablation stays apples-to-apples).
 */
#include "ntt/ntt_backends.h"

#include "mqxisa/isa_mqx.h"
#include "ntt/pease_impl.h"

namespace mqx {
namespace ntt {
namespace backends {

namespace {

using mqxisa::kMqxCarryOnly;
using mqxisa::kMqxFull;
using mqxisa::kMqxMulhi;
using mqxisa::kMqxMulOnly;
using mqxisa::kMqxPredicated;
using mqxisa::MqxIsa;
using mqxisa::MqxMode;

template <class Isa>
void
forwardWithIsa(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
               MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseForward4LazyImpl<Isa>(plan, in, out, scratch, algo);
        else
            peaseForwardLazyImpl<Isa>(plan, in, out, scratch, algo);
    } else {
        peaseForwardImpl<Isa>(plan, in, out, scratch, algo);
    }
}

template <class Isa>
void
inverseWithIsa(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
               MulAlgo algo, Reduction red, StageFusion fusion)
{
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            peaseInverse4LazyImpl<Isa>(plan, in, out, scratch, algo);
        else
            peaseInverseLazyImpl<Isa>(plan, in, out, scratch, algo);
    } else {
        peaseInverseImpl<Isa>(plan, in, out, scratch, algo);
    }
}

template <MqxMode Mode>
void
forwardWithVariant(const NttPlan& plan, MqxVariant variant, DConstSpan in,
                   DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
                   StageFusion fusion)
{
    switch (variant) {
      case MqxVariant::MulOnly:
        forwardWithIsa<MqxIsa<Mode, kMqxMulOnly>>(plan, in, out, scratch,
                                                  algo, red, fusion);
        break;
      case MqxVariant::CarryOnly:
        forwardWithIsa<MqxIsa<Mode, kMqxCarryOnly>>(plan, in, out, scratch,
                                                    algo, red, fusion);
        break;
      case MqxVariant::Full:
        forwardWithIsa<MqxIsa<Mode, kMqxFull>>(plan, in, out, scratch, algo,
                                               red, fusion);
        break;
      case MqxVariant::MulhiCarry:
        forwardWithIsa<MqxIsa<Mode, kMqxMulhi>>(plan, in, out, scratch, algo,
                                                red, fusion);
        break;
      case MqxVariant::FullPredicated:
        forwardWithIsa<MqxIsa<Mode, kMqxPredicated>>(plan, in, out, scratch,
                                                     algo, red, fusion);
        break;
    }
}

template <MqxMode Mode>
void
inverseWithVariant(const NttPlan& plan, MqxVariant variant, DConstSpan in,
                   DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
                   StageFusion fusion)
{
    switch (variant) {
      case MqxVariant::MulOnly:
        inverseWithIsa<MqxIsa<Mode, kMqxMulOnly>>(plan, in, out, scratch,
                                                  algo, red, fusion);
        break;
      case MqxVariant::CarryOnly:
        inverseWithIsa<MqxIsa<Mode, kMqxCarryOnly>>(plan, in, out, scratch,
                                                    algo, red, fusion);
        break;
      case MqxVariant::Full:
        inverseWithIsa<MqxIsa<Mode, kMqxFull>>(plan, in, out, scratch, algo,
                                               red, fusion);
        break;
      case MqxVariant::MulhiCarry:
        inverseWithIsa<MqxIsa<Mode, kMqxMulhi>>(plan, in, out, scratch, algo,
                                                red, fusion);
        break;
      case MqxVariant::FullPredicated:
        inverseWithIsa<MqxIsa<Mode, kMqxPredicated>>(plan, in, out, scratch,
                                                     algo, red, fusion);
        break;
    }
}

} // namespace

void
forwardMqxImpl(const NttPlan& plan, MqxVariant variant, bool pisa,
               DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo,
               Reduction red, StageFusion fusion)
{
    if (pisa)
        forwardWithVariant<MqxMode::Pisa>(plan, variant, in, out, scratch,
                                          algo, red, fusion);
    else
        forwardWithVariant<MqxMode::Emulate>(plan, variant, in, out, scratch,
                                             algo, red, fusion);
}

void
inverseMqxImpl(const NttPlan& plan, MqxVariant variant, bool pisa,
               DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo,
               Reduction red, StageFusion fusion)
{
    if (pisa)
        inverseWithVariant<MqxMode::Pisa>(plan, variant, in, out, scratch,
                                          algo, red, fusion);
    else
        inverseWithVariant<MqxMode::Emulate>(plan, variant, in, out, scratch,
                                             algo, red, fusion);
}

void
vmulShoupMqx(bool pisa, const Modulus& m, DConstSpan a, DConstSpan t,
             DConstSpan tq, DSpan c, MulAlgo algo)
{
    if (pisa)
        vmulShoupImpl<MqxIsa<MqxMode::Pisa, kMqxFull>>(m, a, t, tq, c, algo);
    else
        vmulShoupImpl<MqxIsa<MqxMode::Emulate, kMqxFull>>(m, a, t, tq, c,
                                                          algo);
}

// The batch path models only the full MQX feature set (the Fig. 6
// ablation variants stay per-channel; batching is orthogonal to the
// instruction-mix study).
void
forwardBatchMqx(bool pisa, const NttPlan& plan, size_t il, DConstSpan in,
                DSpan out, DSpan scratch, MulAlgo algo)
{
    if (pisa)
        peaseForwardBatchImpl<MqxIsa<MqxMode::Pisa, kMqxFull>>(
            plan, il, in, out, scratch, algo);
    else
        peaseForwardBatchImpl<MqxIsa<MqxMode::Emulate, kMqxFull>>(
            plan, il, in, out, scratch, algo);
}

void
inverseBatchMqx(bool pisa, const NttPlan& plan, size_t il, DConstSpan in,
                DSpan out, DSpan scratch, MulAlgo algo)
{
    if (pisa)
        peaseInverseBatchImpl<MqxIsa<MqxMode::Pisa, kMqxFull>>(
            plan, il, in, out, scratch, algo);
    else
        peaseInverseBatchImpl<MqxIsa<MqxMode::Emulate, kMqxFull>>(
            plan, il, in, out, scratch, algo);
}

void
vmulShoupBatchMqx(bool pisa, const Modulus& m, size_t il, DConstSpan a,
                  DConstSpan t, DConstSpan tq, DSpan c, MulAlgo algo)
{
    if (pisa)
        vmulShoupBatchImpl<MqxIsa<MqxMode::Pisa, kMqxFull>>(m, il, a, t, tq,
                                                            c, algo);
    else
        vmulShoupBatchImpl<MqxIsa<MqxMode::Emulate, kMqxFull>>(m, il, a, t,
                                                               tq, c, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
