/**
 * @file
 * MQX instantiations of the Pease NTT: every Fig. 6 feature variant, in
 * both Table-2 emulation and PISA proxy modes.
 */
#include "ntt/ntt_backends.h"

#include "mqxisa/isa_mqx.h"
#include "ntt/pease_impl.h"

namespace mqx {
namespace ntt {
namespace backends {

namespace {

using mqxisa::kMqxCarryOnly;
using mqxisa::kMqxFull;
using mqxisa::kMqxMulhi;
using mqxisa::kMqxMulOnly;
using mqxisa::kMqxPredicated;
using mqxisa::MqxIsa;
using mqxisa::MqxMode;

template <MqxMode Mode>
void
forwardWithVariant(const NttPlan& plan, MqxVariant variant, DConstSpan in,
                   DSpan out, DSpan scratch, MulAlgo algo)
{
    switch (variant) {
      case MqxVariant::MulOnly:
        peaseForwardImpl<MqxIsa<Mode, kMqxMulOnly>>(plan, in, out, scratch,
                                                    algo);
        break;
      case MqxVariant::CarryOnly:
        peaseForwardImpl<MqxIsa<Mode, kMqxCarryOnly>>(plan, in, out, scratch,
                                                      algo);
        break;
      case MqxVariant::Full:
        peaseForwardImpl<MqxIsa<Mode, kMqxFull>>(plan, in, out, scratch,
                                                 algo);
        break;
      case MqxVariant::MulhiCarry:
        peaseForwardImpl<MqxIsa<Mode, kMqxMulhi>>(plan, in, out, scratch,
                                                  algo);
        break;
      case MqxVariant::FullPredicated:
        peaseForwardImpl<MqxIsa<Mode, kMqxPredicated>>(plan, in, out, scratch,
                                                       algo);
        break;
    }
}

template <MqxMode Mode>
void
inverseWithVariant(const NttPlan& plan, MqxVariant variant, DConstSpan in,
                   DSpan out, DSpan scratch, MulAlgo algo)
{
    switch (variant) {
      case MqxVariant::MulOnly:
        peaseInverseImpl<MqxIsa<Mode, kMqxMulOnly>>(plan, in, out, scratch,
                                                    algo);
        break;
      case MqxVariant::CarryOnly:
        peaseInverseImpl<MqxIsa<Mode, kMqxCarryOnly>>(plan, in, out, scratch,
                                                      algo);
        break;
      case MqxVariant::Full:
        peaseInverseImpl<MqxIsa<Mode, kMqxFull>>(plan, in, out, scratch,
                                                 algo);
        break;
      case MqxVariant::MulhiCarry:
        peaseInverseImpl<MqxIsa<Mode, kMqxMulhi>>(plan, in, out, scratch,
                                                  algo);
        break;
      case MqxVariant::FullPredicated:
        peaseInverseImpl<MqxIsa<Mode, kMqxPredicated>>(plan, in, out, scratch,
                                                       algo);
        break;
    }
}

} // namespace

void
forwardMqxImpl(const NttPlan& plan, MqxVariant variant, bool pisa,
               DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo)
{
    if (pisa)
        forwardWithVariant<MqxMode::Pisa>(plan, variant, in, out, scratch,
                                          algo);
    else
        forwardWithVariant<MqxMode::Emulate>(plan, variant, in, out, scratch,
                                             algo);
}

void
inverseMqxImpl(const NttPlan& plan, MqxVariant variant, bool pisa,
               DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo)
{
    if (pisa)
        inverseWithVariant<MqxMode::Pisa>(plan, variant, in, out, scratch,
                                          algo);
    else
        inverseWithVariant<MqxMode::Emulate>(plan, variant, in, out, scratch,
                                             algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
