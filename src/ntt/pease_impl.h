/**
 * @file
 * The Pease constant-geometry NTT, templated over a SIMD ISA policy.
 *
 * Forward stage s (of log2 n), butterfly j in [0, n/2):
 *     u = x[j] + x[j + n/2]
 *     v = (x[j] - x[j + n/2]) * w[s][j],  w[s][j] = omega^((j >> s) << s)
 *     y[2j] = u;  y[2j+1] = v
 *
 * Reads are contiguous at stride n/2, writes are the perfect shuffle —
 * in SIMD the two result vectors are interleaved with
 * unpack/permutex2var-style shuffles (paper Section 3.2) and stored as
 * two contiguous blocks. Output ends up in bit-reversed order.
 *
 * The inverse runs the transposed stages in reverse order with inverse
 * twiddles (reads interleaved pairs, writes strided halves) and applies
 * one final scaling pass by n^-1; it consumes the forward's bit-reversed
 * output and restores natural order.
 *
 * Out-of-place ping-pong: the caller provides `out` and `scratch`
 * buffers; the stage parity is arranged so the final stage always lands
 * in `out`. Neither may alias the input.
 */
#pragma once

#include "ntt/plan.h"
#include "simd/dw_kernels.h"

namespace mqx {
namespace ntt {

namespace detail {

/** Scalar butterfly tail shared by every backend. */
inline void
forwardButterflyScalar(const mod::Barrett<uint64_t>& br,
                       const mod::DW<uint64_t>& q, const uint64_t* src_hi,
                       const uint64_t* src_lo, uint64_t* dst_hi,
                       uint64_t* dst_lo, const uint64_t* tw_hi,
                       const uint64_t* tw_lo, size_t j, size_t h,
                       MulAlgo algo)
{
    mod::DW<uint64_t> a{src_hi[j], src_lo[j]};
    mod::DW<uint64_t> b{src_hi[j + h], src_lo[j + h]};
    mod::DW<uint64_t> w{tw_hi[j], tw_lo[j]};
    auto u = mod::addMod(a, b, q);
    auto d = mod::subMod(a, b, q);
    auto v = algo == MulAlgo::Schoolbook ? mod::mulModSchool(d, w, br)
                                         : mod::mulModKaratsuba(d, w, br);
    dst_hi[2 * j] = u.hi;
    dst_lo[2 * j] = u.lo;
    dst_hi[2 * j + 1] = v.hi;
    dst_lo[2 * j + 1] = v.lo;
}

inline void
inverseButterflyScalar(const mod::Barrett<uint64_t>& br,
                       const mod::DW<uint64_t>& q, const uint64_t* src_hi,
                       const uint64_t* src_lo, uint64_t* dst_hi,
                       uint64_t* dst_lo, const uint64_t* tw_hi,
                       const uint64_t* tw_lo, size_t j, size_t h,
                       MulAlgo algo)
{
    mod::DW<uint64_t> u{src_hi[2 * j], src_lo[2 * j]};
    mod::DW<uint64_t> v{src_hi[2 * j + 1], src_lo[2 * j + 1]};
    mod::DW<uint64_t> w{tw_hi[j], tw_lo[j]};
    auto t = algo == MulAlgo::Schoolbook ? mod::mulModSchool(v, w, br)
                                         : mod::mulModKaratsuba(v, w, br);
    auto x0 = mod::addMod(u, t, q);
    auto x1 = mod::subMod(u, t, q);
    dst_hi[j] = x0.hi;
    dst_lo[j] = x0.lo;
    dst_hi[j + h] = x1.hi;
    dst_lo[j + h] = x1.lo;
}

inline void
validateNttArgs(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch)
{
    checkArg(in.n == plan.n() && out.n == plan.n() && scratch.n == plan.n(),
             "ntt: buffer sizes must equal the plan size");
    checkArg(in.hi != out.hi && in.hi != scratch.hi && out.hi != scratch.hi,
             "ntt: in/out/scratch must be distinct buffers");
}

} // namespace detail

/** Forward Pease NTT (natural order in, bit-reversed out). */
template <class Isa>
void
peaseForwardImpl(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                 MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const auto& br = mod.barrett();
    const mod::DW<uint64_t> q = mod::toDw(mod.value());

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = 0; s < m; ++s) {
        DSpan dst = bufs[target];
        const uint64_t* tw_hi = plan.twiddleHi(s);
        const uint64_t* tw_lo = plan.twiddleLo(s);
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = simd::loadDv<Isa>(src_hi, src_lo, j);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, j + h);
            auto w = simd::loadDv<Isa>(tw_hi, tw_lo, j);
            auto u = simd::addModV<Isa>(ctx, a, b);
            auto v = simd::mulModV<Isa>(ctx, simd::subModV<Isa>(ctx, a, b),
                                        w, algo);
            typename Isa::V blk0, blk1;
            Isa::interleave2(u.hi, v.hi, blk0, blk1);
            Isa::storeu(dst.hi + 2 * j, blk0);
            Isa::storeu(dst.hi + 2 * j + Isa::kLanes, blk1);
            Isa::interleave2(u.lo, v.lo, blk0, blk1);
            Isa::storeu(dst.lo + 2 * j, blk0);
            Isa::storeu(dst.lo + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            detail::forwardButterflyScalar(br, q, src_hi, src_lo, dst.hi,
                                           dst.lo, tw_hi, tw_lo, j, h, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/** Inverse Pease NTT (bit-reversed in, natural out, scaled by n^-1). */
template <class Isa>
void
peaseInverseImpl(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                 MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const auto& br = mod.barrett();
    const mod::DW<uint64_t> q = mod::toDw(mod.value());

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        const uint64_t* tw_hi = plan.twiddleInvHi(s);
        const uint64_t* tw_lo = plan.twiddleInvLo(s);
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0h = Isa::loadu(src_hi + 2 * j);
            auto blk1h = Isa::loadu(src_hi + 2 * j + Isa::kLanes);
            auto blk0l = Isa::loadu(src_lo + 2 * j);
            auto blk1l = Isa::loadu(src_lo + 2 * j + Isa::kLanes);
            simd::DV<Isa> u, v;
            Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
            Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
            auto w = simd::loadDv<Isa>(tw_hi, tw_lo, j);
            auto t = simd::mulModV<Isa>(ctx, v, w, algo);
            auto x0 = simd::addModV<Isa>(ctx, u, t);
            auto x1 = simd::subModV<Isa>(ctx, u, t);
            simd::storeDv<Isa>(dst.hi, dst.lo, j, x0);
            simd::storeDv<Isa>(dst.hi, dst.lo, j + h, x1);
        }
        for (; j < h; ++j) {
            detail::inverseButterflyScalar(br, q, src_hi, src_lo, dst.hi,
                                           dst.lo, tw_hi, tw_lo, j, h, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    // Final scaling by n^-1 (deferred from the per-stage halving).
    const U128 n_inv = plan.nInv();
    simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(out.hi, out.lo, i);
        simd::storeDv<Isa>(out.hi, out.lo, i,
                           simd::mulModV<Isa>(ctx, x, vninv, algo));
    }
    mod::DW<uint64_t> dn = mod::toDw(n_inv);
    for (; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = algo == MulAlgo::Schoolbook ? mod::mulModSchool(x, dn, br)
                                             : mod::mulModKaratsuba(x, dn, br);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

} // namespace ntt
} // namespace mqx
