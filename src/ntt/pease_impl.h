/**
 * @file
 * The Pease constant-geometry NTT, templated over a SIMD ISA policy.
 *
 * Forward stage s (of log2 n), butterfly j in [0, n/2):
 *     u = x[j] + x[j + n/2]
 *     v = (x[j] - x[j + n/2]) * w[s][j],  w[s][j] = omega^((j >> s) << s)
 *     y[2j] = u;  y[2j+1] = v
 *
 * Reads are contiguous at stride n/2, writes are the perfect shuffle —
 * in SIMD the two result vectors are interleaved with
 * unpack/permutex2var-style shuffles (paper Section 3.2) and stored as
 * two contiguous blocks. Output ends up in bit-reversed order.
 *
 * The inverse runs the transposed stages in reverse order with inverse
 * twiddles (reads interleaved pairs, writes strided halves) and applies
 * one final scaling pass by n^-1; it consumes the forward's bit-reversed
 * output and restores natural order.
 *
 * Two arithmetic strategies share the stage wiring (Reduction knob):
 *
 *  - Barrett: canonical [0, q) operands, full Eq.-4 reduction per
 *    butterfly multiply. The paper's original kernels; kept as the
 *    ablation baseline and cross-check oracle.
 *  - ShoupLazy (default): Harvey lazy butterflies. Operands live in
 *    [0, 2q) between stages (q < 2^124 leaves 4 bits of double-word
 *    headroom, so transients reach 4q safely), the twiddle multiply is
 *    the Shoup precomputed-quotient form with a [0, 2q) result and no
 *    correction subtractions, and canonicalization to [0, q) happens
 *    once — fused into the last forward stage, or into the inverse's
 *    n^-1 scaling pass. Bit-identical to Barrett after that pass.
 *
 * Twiddles come from the plan's compact shared power tables; stage s
 * addresses them as pow[(j >> s) << s] via loadStageTwiddles(): a
 * contiguous load at stage 0, a short step load while the run length
 * 2^s is below the lane count, and a single broadcast afterwards —
 * ~logn/2x less twiddle traffic than the old stretched tables.
 *
 * Out-of-place ping-pong: the caller provides `out` and `scratch`
 * buffers; the stage parity is arranged so the final stage always lands
 * in `out`. Neither may alias the input (any hi/lo storage overlap,
 * including lo-lo and mixed hi-lo, is rejected).
 */
#pragma once

#include "ntt/plan.h"
#include "simd/dw_kernels.h"

namespace mqx {
namespace ntt {

namespace detail {

/**
 * Stage-s twiddle gather from a compact power table: butterfly j uses
 * entry (j >> s) << s, so a vector of kLanes consecutive butterflies
 * needs a contiguous load (s == 0), a step load repeating each entry
 * 2^s times (0 < 2^s < kLanes — only the first log2(kLanes) stages),
 * or one broadcast (2^s >= kLanes).
 */
template <class Isa>
inline simd::DV<Isa>
loadStageTwiddles(const uint64_t* hi, const uint64_t* lo, size_t j, int s)
{
    if (s == 0)
        return simd::loadDv<Isa>(hi, lo, j);
    if ((size_t{1} << s) >= Isa::kLanes) {
        size_t e = (j >> s) << s;
        return simd::DV<Isa>{Isa::set1(hi[e]), Isa::set1(lo[e])};
    }
    alignas(64) uint64_t th[Isa::kLanes];
    alignas(64) uint64_t tl[Isa::kLanes];
    for (size_t i = 0; i < Isa::kLanes; ++i) {
        size_t e = ((j + i) >> s) << s;
        th[i] = hi[e];
        tl[i] = lo[e];
    }
    return simd::loadDv<Isa>(th, tl, 0);
}

/** Scalar butterfly tail shared by every backend (Barrett path). */
inline void
forwardButterflyScalar(const mod::Barrett<uint64_t>& br,
                       const mod::DW<uint64_t>& q, const uint64_t* src_hi,
                       const uint64_t* src_lo, uint64_t* dst_hi,
                       uint64_t* dst_lo, const uint64_t* tw_hi,
                       const uint64_t* tw_lo, size_t j, size_t h, int s,
                       MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    mod::DW<uint64_t> a{src_hi[j], src_lo[j]};
    mod::DW<uint64_t> b{src_hi[j + h], src_lo[j + h]};
    mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
    auto u = mod::addMod(a, b, q);
    auto d = mod::subMod(a, b, q);
    auto v = algo == MulAlgo::Schoolbook ? mod::mulModSchool(d, w, br)
                                         : mod::mulModKaratsuba(d, w, br);
    dst_hi[2 * j] = u.hi;
    dst_lo[2 * j] = u.lo;
    dst_hi[2 * j + 1] = v.hi;
    dst_lo[2 * j + 1] = v.lo;
}

inline void
inverseButterflyScalar(const mod::Barrett<uint64_t>& br,
                       const mod::DW<uint64_t>& q, const uint64_t* src_hi,
                       const uint64_t* src_lo, uint64_t* dst_hi,
                       uint64_t* dst_lo, const uint64_t* tw_hi,
                       const uint64_t* tw_lo, size_t j, size_t h, int s,
                       MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    mod::DW<uint64_t> u{src_hi[2 * j], src_lo[2 * j]};
    mod::DW<uint64_t> v{src_hi[2 * j + 1], src_lo[2 * j + 1]};
    mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
    auto t = algo == MulAlgo::Schoolbook ? mod::mulModSchool(v, w, br)
                                         : mod::mulModKaratsuba(v, w, br);
    auto x0 = mod::addMod(u, t, q);
    auto x1 = mod::subMod(u, t, q);
    dst_hi[j] = x0.hi;
    dst_lo[j] = x0.lo;
    dst_hi[j + h] = x1.hi;
    dst_lo[j + h] = x1.lo;
}

/** Scalar lazy forward butterfly: [0,2q) in, [0,2q) out (canonical when
 *  @p last — the fused final-stage canonicalization). */
inline void
forwardButterflyLazyScalar(const mod::DW<uint64_t>& q,
                           const mod::DW<uint64_t>& q2,
                           const uint64_t* src_hi, const uint64_t* src_lo,
                           uint64_t* dst_hi, uint64_t* dst_lo,
                           const uint64_t* tw_hi, const uint64_t* tw_lo,
                           const uint64_t* twq_hi, const uint64_t* twq_lo,
                           size_t j, size_t h, int s, bool last,
                           MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    mod::DW<uint64_t> a{src_hi[j], src_lo[j]};
    mod::DW<uint64_t> b{src_hi[j + h], src_lo[j + h]};
    mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
    mod::DW<uint64_t> wq{twq_hi[e], twq_lo[e]};
    mod::DW<uint64_t> t, d;
    mod::addDw(a, b, t);                     // < 4q
    auto u = mod::condSubDw(t, q2);          // [0, 2q)
    mod::addDw(a, q2, d);
    mod::subDw(d, b, d);                     // a - b + 2q in (0, 4q)
    auto v = mod::mulModShoup(d, w, wq, q, algo); // [0, 2q)
    if (last) {
        u = mod::condSubDw(u, q);
        v = mod::condSubDw(v, q);
    }
    dst_hi[2 * j] = u.hi;
    dst_lo[2 * j] = u.lo;
    dst_hi[2 * j + 1] = v.hi;
    dst_lo[2 * j + 1] = v.lo;
}

/** Scalar lazy inverse butterfly: [0,2q) in, [0,2q) out. */
inline void
inverseButterflyLazyScalar(const mod::DW<uint64_t>& q,
                           const mod::DW<uint64_t>& q2,
                           const uint64_t* src_hi, const uint64_t* src_lo,
                           uint64_t* dst_hi, uint64_t* dst_lo,
                           const uint64_t* tw_hi, const uint64_t* tw_lo,
                           const uint64_t* twq_hi, const uint64_t* twq_lo,
                           size_t j, size_t h, int s, MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    mod::DW<uint64_t> u{src_hi[2 * j], src_lo[2 * j]};
    mod::DW<uint64_t> v{src_hi[2 * j + 1], src_lo[2 * j + 1]};
    mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
    mod::DW<uint64_t> wq{twq_hi[e], twq_lo[e]};
    auto t = mod::mulModShoup(v, w, wq, q, algo); // [0, 2q)
    mod::DW<uint64_t> s0, s1;
    mod::addDw(u, t, s0);                         // < 4q
    auto x0 = mod::condSubDw(s0, q2);             // [0, 2q)
    mod::addDw(u, q2, s1);
    mod::subDw(s1, t, s1);                        // u - t + 2q in (0, 4q)
    auto x1 = mod::condSubDw(s1, q2);             // [0, 2q)
    dst_hi[j] = x0.hi;
    dst_lo[j] = x0.lo;
    dst_hi[j + h] = x1.hi;
    dst_lo[j + h] = x1.lo;
}

inline void
validateNttArgs(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch)
{
    checkArg(in.n == plan.n() && out.n == plan.n() && scratch.n == plan.n(),
             "ntt: buffer sizes must equal the plan size");
    // The ping-pong is out-of-place: reject ANY storage sharing between
    // the three buffers — identical spans, aliased lo arrays, and mixed
    // hi/lo overlap included (the span-overlap contract of the SoA
    // layout, not just hi-pointer distinctness).
    auto overlaps = [](DConstSpan a, DConstSpan b) {
        return sameSpan(a, b) || spansPartiallyOverlap(a, b);
    };
    checkArg(!overlaps(in, out) && !overlaps(in, scratch) &&
                 !overlaps(out, scratch),
             "ntt: in/out/scratch must be distinct, non-overlapping buffers");
}

} // namespace detail

/** Forward Pease NTT, Barrett arithmetic (natural in, bit-reversed out). */
template <class Isa>
void
peaseForwardImpl(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                 MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const auto& br = mod.barrett();
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = 0; s < m; ++s) {
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = simd::loadDv<Isa>(src_hi, src_lo, j);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, j + h);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto u = simd::addModV<Isa>(ctx, a, b);
            auto v = simd::mulModV<Isa>(ctx, simd::subModV<Isa>(ctx, a, b),
                                        w, algo);
            typename Isa::V blk0, blk1;
            Isa::interleave2(u.hi, v.hi, blk0, blk1);
            Isa::storeu(dst.hi + 2 * j, blk0);
            Isa::storeu(dst.hi + 2 * j + Isa::kLanes, blk1);
            Isa::interleave2(u.lo, v.lo, blk0, blk1);
            Isa::storeu(dst.lo + 2 * j, blk0);
            Isa::storeu(dst.lo + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            detail::forwardButterflyScalar(br, q, src_hi, src_lo, dst.hi,
                                           dst.lo, tw_hi, tw_lo, j, h, s,
                                           algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/** Inverse Pease NTT, Barrett arithmetic (bit-reversed in, natural out,
 *  scaled by n^-1). */
template <class Isa>
void
peaseInverseImpl(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                 MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const auto& br = mod.barrett();
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0h = Isa::loadu(src_hi + 2 * j);
            auto blk1h = Isa::loadu(src_hi + 2 * j + Isa::kLanes);
            auto blk0l = Isa::loadu(src_lo + 2 * j);
            auto blk1l = Isa::loadu(src_lo + 2 * j + Isa::kLanes);
            simd::DV<Isa> u, v;
            Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
            Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto t = simd::mulModV<Isa>(ctx, v, w, algo);
            auto x0 = simd::addModV<Isa>(ctx, u, t);
            auto x1 = simd::subModV<Isa>(ctx, u, t);
            simd::storeDv<Isa>(dst.hi, dst.lo, j, x0);
            simd::storeDv<Isa>(dst.hi, dst.lo, j + h, x1);
        }
        for (; j < h; ++j) {
            detail::inverseButterflyScalar(br, q, src_hi, src_lo, dst.hi,
                                           dst.lo, tw_hi, tw_lo, j, h, s,
                                           algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    // Final scaling by n^-1 (deferred from the per-stage halving).
    const U128 n_inv = plan.nInv();
    simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(out.hi, out.lo, i);
        simd::storeDv<Isa>(out.hi, out.lo, i,
                           simd::mulModV<Isa>(ctx, x, vninv, algo));
    }
    mod::DW<uint64_t> dn = mod::toDw(n_inv);
    for (; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = algo == MulAlgo::Schoolbook ? mod::mulModSchool(x, dn, br)
                                             : mod::mulModKaratsuba(x, dn, br);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

/**
 * Forward Pease NTT, Shoup-lazy arithmetic. Canonical [0, q) input,
 * canonical output (the last stage fuses the condSub-q pass); between
 * stages operands stay in the redundant [0, 2q) range and every twiddle
 * multiply is the Shoup precomputed-quotient form. Bit-identical to
 * peaseForwardImpl.
 */
template <class Isa>
void
peaseForwardLazyImpl(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();
    const uint64_t* twq_hi = plan.twiddleShoupHi();
    const uint64_t* twq_lo = plan.twiddleShoupLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = simd::loadDv<Isa>(src_hi, src_lo, j);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, j + h);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, s);
            auto u = simd::addModLazyV<Isa>(ctx, a, b);
            auto d = simd::subModLazyRawV<Isa>(ctx, a, b); // (0, 4q)
            auto v = simd::mulModShoupV<Isa>(ctx, d, w, wq, algo);
            if (last) {
                u = simd::condSubDwV<Isa>(ctx, u, ctx.qh, ctx.ql);
                v = simd::condSubDwV<Isa>(ctx, v, ctx.qh, ctx.ql);
            }
            typename Isa::V blk0, blk1;
            Isa::interleave2(u.hi, v.hi, blk0, blk1);
            Isa::storeu(dst.hi + 2 * j, blk0);
            Isa::storeu(dst.hi + 2 * j + Isa::kLanes, blk1);
            Isa::interleave2(u.lo, v.lo, blk0, blk1);
            Isa::storeu(dst.lo + 2 * j, blk0);
            Isa::storeu(dst.lo + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            detail::forwardButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, s, last, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/**
 * Inverse Pease NTT, Shoup-lazy arithmetic. Canonical input, canonical
 * output; canonicalization is fused into the n^-1 scaling pass (itself
 * a Shoup multiply against the plan's nInvShoup companion).
 * Bit-identical to peaseInverseImpl.
 */
template <class Isa>
void
peaseInverseLazyImpl(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();
    const uint64_t* twq_hi = plan.twiddleInvShoupHi();
    const uint64_t* twq_lo = plan.twiddleInvShoupLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0h = Isa::loadu(src_hi + 2 * j);
            auto blk1h = Isa::loadu(src_hi + 2 * j + Isa::kLanes);
            auto blk0l = Isa::loadu(src_lo + 2 * j);
            auto blk1l = Isa::loadu(src_lo + 2 * j + Isa::kLanes);
            simd::DV<Isa> u, v;
            Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
            Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, s);
            auto t = simd::mulModShoupV<Isa>(ctx, v, w, wq, algo); // [0,2q)
            auto x0 = simd::addModLazyV<Isa>(ctx, u, t);
            auto x1 = simd::subModLazyV<Isa>(ctx, u, t);
            simd::storeDv<Isa>(dst.hi, dst.lo, j, x0);
            simd::storeDv<Isa>(dst.hi, dst.lo, j + h, x1);
        }
        for (; j < h; ++j) {
            detail::inverseButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, s, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    // Fused n^-1 scaling + canonicalization: one Shoup multiply into
    // [0, 2q) and one conditional subtract of q per element.
    const U128 n_inv = plan.nInv();
    const U128 n_inv_sh = plan.nInvShoup();
    simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    simd::DV<Isa> vninvq{Isa::set1(n_inv_sh.hi), Isa::set1(n_inv_sh.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(out.hi, out.lo, i);
        auto r = simd::mulModShoupV<Isa>(ctx, x, vninv, vninvq, algo);
        r = simd::condSubDwV<Isa>(ctx, r, ctx.qh, ctx.ql);
        simd::storeDv<Isa>(out.hi, out.lo, i, r);
    }
    const mod::DW<uint64_t> dn = mod::toDw(n_inv);
    const mod::DW<uint64_t> dnq = mod::toDw(n_inv_sh);
    for (; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = mod::condSubDw(mod::mulModShoup(x, dn, dnq, q, algo), q);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

/**
 * Point-wise multiply by a fixed table with precomputed Shoup
 * companions: c[i] = a[i] * t[i] mod q, canonical output. This is the
 * negacyclic twist/untwist pass — the table is immutable, so the
 * quotient precomputation amortizes exactly like the twiddles'.
 * In-place (c == a) is legal, matching the blas::vmul contract.
 */
template <class Isa>
void
vmulShoupImpl(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
              DSpan c, MulAlgo algo = MulAlgo::Schoolbook)
{
    checkArg(a.n == t.n && a.n == tq.n && a.n == c.n,
             "vmulShoup: length mismatch");
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= a.n; i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(a.hi, a.lo, i);
        auto w = simd::loadDv<Isa>(t.hi, t.lo, i);
        auto wq = simd::loadDv<Isa>(tq.hi, tq.lo, i);
        auto r = simd::mulModShoupV<Isa>(ctx, x, w, wq, algo);
        r = simd::condSubDwV<Isa>(ctx, r, ctx.qh, ctx.ql);
        simd::storeDv<Isa>(c.hi, c.lo, i, r);
    }
    const mod::DW<uint64_t> q = mod::toDw(m.value());
    for (; i < a.n; ++i) {
        mod::DW<uint64_t> x{a.hi[i], a.lo[i]};
        mod::DW<uint64_t> w{t.hi[i], t.lo[i]};
        mod::DW<uint64_t> wq{tq.hi[i], tq.lo[i]};
        auto r = mod::condSubDw(mod::mulModShoup(x, w, wq, q, algo), q);
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

} // namespace ntt
} // namespace mqx
