/**
 * @file
 * The Pease constant-geometry NTT, templated over a SIMD ISA policy.
 *
 * Forward stage s (of log2 n), butterfly j in [0, n/2):
 *     u = x[j] + x[j + n/2]
 *     v = (x[j] - x[j + n/2]) * w[s][j],  w[s][j] = omega^((j >> s) << s)
 *     y[2j] = u;  y[2j+1] = v
 *
 * Reads are contiguous at stride n/2, writes are the perfect shuffle —
 * in SIMD the two result vectors are interleaved with
 * unpack/permutex2var-style shuffles (paper Section 3.2) and stored as
 * two contiguous blocks. Output ends up in bit-reversed order.
 *
 * The inverse runs the transposed stages in reverse order with inverse
 * twiddles (reads interleaved pairs, writes strided halves) and applies
 * one final scaling pass by n^-1; it consumes the forward's bit-reversed
 * output and restores natural order.
 *
 * Two arithmetic strategies share the stage wiring (Reduction knob):
 *
 *  - Barrett: canonical [0, q) operands, full Eq.-4 reduction per
 *    butterfly multiply. The paper's original kernels; kept as the
 *    ablation baseline and cross-check oracle.
 *  - ShoupLazy (default): Harvey lazy butterflies. Operands live in
 *    [0, 2q) between stages (q < 2^124 leaves 4 bits of double-word
 *    headroom, so transients reach 4q safely), the twiddle multiply is
 *    the Shoup precomputed-quotient form with a [0, 2q) result and no
 *    correction subtractions, and canonicalization to [0, q) happens
 *    once — fused into the last forward stage, or into the inverse's
 *    n^-1 scaling pass. Bit-identical to Barrett after that pass.
 *
 * Twiddles come from the plan's compact shared power tables; stage s
 * addresses them as pow[(j >> s) << s] via loadStageTwiddles(): a
 * contiguous load at stage 0, a short step load while the run length
 * 2^s is below the lane count, and a single broadcast afterwards —
 * ~logn/2x less twiddle traffic than the old stretched tables.
 *
 * Out-of-place ping-pong: the caller provides `out` and `scratch`
 * buffers; the stage parity is arranged so the final stage always lands
 * in `out`. Neither may alias the input (any hi/lo storage overlap,
 * including lo-lo and mixed hi-lo, is rejected).
 */
#pragma once

#include <cstdio>

#include "core/batch_layout.h"
#include "core/prefetch.h"
#include "mod/range_checked.h"
#include "ntt/plan.h"
#include "simd/dw_kernels.h"

namespace mqx {
namespace ntt {

namespace detail {

/**
 * Stage-s twiddle gather from a compact power table: butterfly j uses
 * entry (j >> s) << s, so a vector of kLanes consecutive butterflies
 * needs a contiguous load (s == 0), a step load repeating each entry
 * 2^s times (0 < 2^s < kLanes — only the first log2(kLanes) stages),
 * or one broadcast (2^s >= kLanes).
 */
template <class Isa>
inline simd::DV<Isa>
loadStageTwiddles(const uint64_t* hi, const uint64_t* lo, size_t j, int s)
{
    if (s == 0)
        return simd::loadDv<Isa>(hi, lo, j);
    if ((size_t{1} << s) >= Isa::kLanes) {
        size_t e = (j >> s) << s;
        return simd::DV<Isa>{Isa::set1(hi[e]), Isa::set1(lo[e])};
    }
    alignas(64) uint64_t th[Isa::kLanes];
    alignas(64) uint64_t tl[Isa::kLanes];
    for (size_t i = 0; i < Isa::kLanes; ++i) {
        size_t e = ((j + i) >> s) << s;
        th[i] = hi[e];
        tl[i] = lo[e];
    }
    return simd::loadDv<Isa>(th, tl, 0);
}

/**
 * Second-layer twiddle load for the fused radix-4 pass over stage pair
 * (s, s+1): butterfly p needs pow[stageTwiddlePair(s, p)] =
 * pow[2*((p >> s) << s)]. A stride-2 gather at stage 0, a short step
 * gather while the run length 2^s is under the lane count, one
 * broadcast afterwards — the same three shapes as the first layer.
 */
template <class Isa>
inline simd::DV<Isa>
loadStageTwiddlesPair(const uint64_t* hi, const uint64_t* lo, size_t p, int s)
{
    if ((size_t{1} << s) >= Isa::kLanes) {
        size_t e = NttPlan::stageTwiddlePair(s, p);
        return simd::DV<Isa>{Isa::set1(hi[e]), Isa::set1(lo[e])};
    }
    alignas(64) uint64_t th[Isa::kLanes];
    alignas(64) uint64_t tl[Isa::kLanes];
    for (size_t i = 0; i < Isa::kLanes; ++i) {
        size_t e = NttPlan::stageTwiddlePair(s, p + i);
        th[i] = hi[e];
        tl[i] = lo[e];
    }
    return simd::loadDv<Isa>(th, tl, 0);
}

/**
 * 4-way interleave built from two rounds of the ISA's interleave2:
 * lane p of (z0, z1, z2, z3) lands at memory positions 4p .. 4p+3 of
 * the concatenated outputs (o0, o1, o2, o3) — the fused radix-4 store
 * wiring y[4p+i] = zi.
 */
template <class Isa>
inline void
interleave4(typename Isa::V z0, typename Isa::V z1, typename Isa::V z2,
            typename Isa::V z3, typename Isa::V& o0, typename Isa::V& o1,
            typename Isa::V& o2, typename Isa::V& o3)
{
    typename Isa::V a0, a1, b0, b1;
    Isa::interleave2(z0, z2, a0, a1);
    Isa::interleave2(z1, z3, b0, b1);
    Isa::interleave2(a0, b0, o0, o1);
    Isa::interleave2(a1, b1, o2, o3);
}

/** Exact inverse of interleave4 (the fused radix-4 inverse load). */
template <class Isa>
inline void
deinterleave4(typename Isa::V o0, typename Isa::V o1, typename Isa::V o2,
              typename Isa::V o3, typename Isa::V& z0, typename Isa::V& z1,
              typename Isa::V& z2, typename Isa::V& z3)
{
    typename Isa::V a0, a1, b0, b1;
    Isa::deinterleave2(o0, o1, a0, b0);
    Isa::deinterleave2(o2, o3, a1, b1);
    Isa::deinterleave2(a0, a1, z0, z2);
    Isa::deinterleave2(b0, b1, z1, z3);
}

/** Scalar butterfly tail shared by every backend (Barrett path). */
inline void
forwardButterflyScalar(const mod::Barrett<uint64_t>& br,
                       const mod::DW<uint64_t>& q, const uint64_t* src_hi,
                       const uint64_t* src_lo, uint64_t* dst_hi,
                       uint64_t* dst_lo, const uint64_t* tw_hi,
                       const uint64_t* tw_lo, size_t j, size_t h, int s,
                       MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    mod::DW<uint64_t> a{src_hi[j], src_lo[j]};
    mod::DW<uint64_t> b{src_hi[j + h], src_lo[j + h]};
    mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
    auto u = mod::addMod(a, b, q);
    auto d = mod::subMod(a, b, q);
    auto v = algo == MulAlgo::Schoolbook ? mod::mulModSchool(d, w, br)
                                         : mod::mulModKaratsuba(d, w, br);
    dst_hi[2 * j] = u.hi;
    dst_lo[2 * j] = u.lo;
    dst_hi[2 * j + 1] = v.hi;
    dst_lo[2 * j + 1] = v.lo;
}

inline void
inverseButterflyScalar(const mod::Barrett<uint64_t>& br,
                       const mod::DW<uint64_t>& q, const uint64_t* src_hi,
                       const uint64_t* src_lo, uint64_t* dst_hi,
                       uint64_t* dst_lo, const uint64_t* tw_hi,
                       const uint64_t* tw_lo, size_t j, size_t h, int s,
                       MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    mod::DW<uint64_t> u{src_hi[2 * j], src_lo[2 * j]};
    mod::DW<uint64_t> v{src_hi[2 * j + 1], src_lo[2 * j + 1]};
    mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
    auto t = algo == MulAlgo::Schoolbook ? mod::mulModSchool(v, w, br)
                                         : mod::mulModKaratsuba(v, w, br);
    auto x0 = mod::addMod(u, t, q);
    auto x1 = mod::subMod(u, t, q);
    dst_hi[j] = x0.hi;
    dst_lo[j] = x0.lo;
    dst_hi[j + h] = x1.hi;
    dst_lo[j + h] = x1.lo;
}

/**
 * Scalar lazy forward butterfly: [0,2q) in, [0,2q) out (canonical when
 * @p last — the fused final-stage canonicalization).
 *
 * Templated over the range-contract arithmetic policy
 * (mod/range_checked.h): the default instantiation is the production
 * unchecked arithmetic (or the checked algebra under MQX_RANGE_AUDIT);
 * the contract tests instantiate mod::CheckedLazyOps explicitly. All
 * policies share this one source, so the checked kernels are
 * bit-identical to the unchecked ones by construction.
 */
template <class A = mod::DefaultLazyOps>
inline void
forwardButterflyLazyScalar(const mod::DW<uint64_t>& q,
                           const mod::DW<uint64_t>& q2,
                           const uint64_t* src_hi, const uint64_t* src_lo,
                           uint64_t* dst_hi, uint64_t* dst_lo,
                           const uint64_t* tw_hi, const uint64_t* tw_lo,
                           const uint64_t* twq_hi, const uint64_t* twq_lo,
                           size_t j, size_t h, int s, bool last,
                           MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    auto a = A::load2q(src_hi, src_lo, j, q);
    auto b = A::load2q(src_hi, src_lo, j + h, q);
    auto w = A::twiddle(mod::DW<uint64_t>{tw_hi[e], tw_lo[e]}, q);
    const mod::DW<uint64_t> wq{twq_hi[e], twq_lo[e]};
    auto u = A::condSub2q(A::add(a, b, q), q2, q);       // [0, 2q)
    auto v = A::mulShoup(A::subRaw(a, b, q2, q),         // a - b + 2q < 4q
                         w, wq, q, algo);                // [0, 2q)
    if (last) {
        A::store(dst_hi, dst_lo, 2 * j, A::canon(u, q));
        A::store(dst_hi, dst_lo, 2 * j + 1, A::canon(v, q));
    } else {
        A::store(dst_hi, dst_lo, 2 * j, u);
        A::store(dst_hi, dst_lo, 2 * j + 1, v);
    }
}

/** Scalar lazy inverse butterfly: [0,2q) in, [0,2q) out. Policy-
 *  templated like forwardButterflyLazyScalar. */
template <class A = mod::DefaultLazyOps>
inline void
inverseButterflyLazyScalar(const mod::DW<uint64_t>& q,
                           const mod::DW<uint64_t>& q2,
                           const uint64_t* src_hi, const uint64_t* src_lo,
                           uint64_t* dst_hi, uint64_t* dst_lo,
                           const uint64_t* tw_hi, const uint64_t* tw_lo,
                           const uint64_t* twq_hi, const uint64_t* twq_lo,
                           size_t j, size_t h, int s, MulAlgo algo)
{
    size_t e = NttPlan::stageTwiddleIndex(s, j);
    auto u = A::load2q(src_hi, src_lo, 2 * j, q);
    auto v = A::load2q(src_hi, src_lo, 2 * j + 1, q);
    auto w = A::twiddle(mod::DW<uint64_t>{tw_hi[e], tw_lo[e]}, q);
    const mod::DW<uint64_t> wq{twq_hi[e], twq_lo[e]};
    auto t = A::mulShoup(v, w, wq, q, algo);             // [0, 2q)
    auto x0 = A::condSub2q(A::add(u, t, q), q2, q);      // [0, 2q)
    auto x1 = A::condSub2q(A::subRaw(u, t, q2, q), q2, q);
    A::store(dst_hi, dst_lo, j, x0);
    A::store(dst_hi, dst_lo, j + h, x1);
}

/**
 * Twiddle-valued core of the fused forward butterfly p: reads x[p],
 * x[p+h/2], x[p+h], x[p+3h/2], applies both radix-2 layers in registers
 * with EXACTLY the arithmetic of two consecutive
 * forwardButterflyLazyScalar stages (bit-identical to the radix-2
 * path), and writes y[4p .. 4p+3]. [0, 2q) in/out, transients < 4q;
 * canonical outputs when @p last. Callers that know a run of
 * butterflies shares its three twiddles (run length 2^s) hoist the
 * loads out of the loop — the compiler cannot, because the dst stores
 * may alias the twiddle tables as far as it knows.
 */
template <class A = mod::DefaultLazyOps>
inline void
forwardButterfly4LazyCore(const mod::DW<uint64_t>& q,
                          const mod::DW<uint64_t>& q2,
                          const uint64_t* MQX_RESTRICT src_hi,
                          const uint64_t* MQX_RESTRICT src_lo,
                          uint64_t* MQX_RESTRICT dst_hi,
                          uint64_t* MQX_RESTRICT dst_lo,
                          const mod::DW<uint64_t>& w0,
                          const mod::DW<uint64_t>& w0q,
                          const mod::DW<uint64_t>& w1,
                          const mod::DW<uint64_t>& w1q,
                          const mod::DW<uint64_t>& wb,
                          const mod::DW<uint64_t>& wbq, size_t p, size_t h,
                          bool last, MulAlgo algo)
{
    const size_t h2 = h / 2;
    auto a = A::load2q(src_hi, src_lo, p, q);
    auto b = A::load2q(src_hi, src_lo, p + h2, q);
    auto c = A::load2q(src_hi, src_lo, p + h, q);
    auto d = A::load2q(src_hi, src_lo, p + h + h2, q);
    auto tw0 = A::twiddle(w0, q);
    auto tw1 = A::twiddle(w1, q);
    auto twb = A::twiddle(wb, q);
    // First layer (stage s): butterflies p and p + h/2.
    auto u0 = A::condSub2q(A::add(a, c, q), q2, q);
    auto v0 = A::mulShoup(A::subRaw(a, c, q2, q), tw0, w0q, q, algo);
    auto u1 = A::condSub2q(A::add(b, d, q), q2, q);
    auto v1 = A::mulShoup(A::subRaw(b, d, q2, q), tw1, w1q, q, algo);
    // Second layer (stage s+1): butterflies 2p and 2p+1 share pow[eb].
    auto z0 = A::condSub2q(A::add(u0, u1, q), q2, q);
    auto z1 = A::mulShoup(A::subRaw(u0, u1, q2, q), twb, wbq, q, algo);
    auto z2 = A::condSub2q(A::add(v0, v1, q), q2, q);
    auto z3 = A::mulShoup(A::subRaw(v0, v1, q2, q), twb, wbq, q, algo);
    if (last) {
        A::store(dst_hi, dst_lo, 4 * p, A::canon(z0, q));
        A::store(dst_hi, dst_lo, 4 * p + 1, A::canon(z1, q));
        A::store(dst_hi, dst_lo, 4 * p + 2, A::canon(z2, q));
        A::store(dst_hi, dst_lo, 4 * p + 3, A::canon(z3, q));
    } else {
        A::store(dst_hi, dst_lo, 4 * p, z0);
        A::store(dst_hi, dst_lo, 4 * p + 1, z1);
        A::store(dst_hi, dst_lo, 4 * p + 2, z2);
        A::store(dst_hi, dst_lo, 4 * p + 3, z3);
    }
}

/**
 * Scalar fused radix-4 forward butterfly p of stage pair (s, s+1):
 * index computation + twiddle loads + the core above. Used by the SIMD
 * kernels' tail loops (where runs may straddle the vector remainder).
 */
inline void
forwardButterfly4LazyScalar(const mod::DW<uint64_t>& q,
                            const mod::DW<uint64_t>& q2,
                            const uint64_t* src_hi, const uint64_t* src_lo,
                            uint64_t* dst_hi, uint64_t* dst_lo,
                            const uint64_t* tw_hi, const uint64_t* tw_lo,
                            const uint64_t* twq_hi, const uint64_t* twq_lo,
                            size_t p, size_t h, int s, bool last,
                            MulAlgo algo)
{
    const size_t h2 = h / 2;
    const size_t e0 = NttPlan::stageTwiddleIndex(s, p);
    const size_t e1 = e0 + h2;
    const size_t eb = NttPlan::stageTwiddlePair(s, p);
    mod::DW<uint64_t> w0{tw_hi[e0], tw_lo[e0]}, w0q{twq_hi[e0], twq_lo[e0]};
    mod::DW<uint64_t> w1{tw_hi[e1], tw_lo[e1]}, w1q{twq_hi[e1], twq_lo[e1]};
    mod::DW<uint64_t> wb{tw_hi[eb], tw_lo[eb]}, wbq{twq_hi[eb], twq_lo[eb]};
    forwardButterfly4LazyCore(q, q2, src_hi, src_lo, dst_hi, dst_lo, w0, w0q,
                              w1, w1q, wb, wbq, p, h, last, algo);
}

/** Twiddle-valued core of the fused inverse butterfly (see forward). */
template <class A = mod::DefaultLazyOps>
inline void
inverseButterfly4LazyCore(const mod::DW<uint64_t>& q,
                          const mod::DW<uint64_t>& q2,
                          const uint64_t* MQX_RESTRICT src_hi,
                          const uint64_t* MQX_RESTRICT src_lo,
                          uint64_t* MQX_RESTRICT dst_hi,
                          uint64_t* MQX_RESTRICT dst_lo,
                          const mod::DW<uint64_t>& w0,
                          const mod::DW<uint64_t>& w0q,
                          const mod::DW<uint64_t>& w1,
                          const mod::DW<uint64_t>& w1q,
                          const mod::DW<uint64_t>& wb,
                          const mod::DW<uint64_t>& wbq, size_t p, size_t h,
                          MulAlgo algo)
{
    const size_t h2 = h / 2;
    auto z0 = A::load2q(src_hi, src_lo, 4 * p, q);
    auto z1 = A::load2q(src_hi, src_lo, 4 * p + 1, q);
    auto z2 = A::load2q(src_hi, src_lo, 4 * p + 2, q);
    auto z3 = A::load2q(src_hi, src_lo, 4 * p + 3, q);
    auto tw0 = A::twiddle(w0, q);
    auto tw1 = A::twiddle(w1, q);
    auto twb = A::twiddle(wb, q);
    // First layer (inverse stage s_lo + 1): butterflies 2p and 2p+1.
    auto ta = A::mulShoup(z1, twb, wbq, q, algo);
    auto y0 = A::condSub2q(A::add(z0, ta, q), q2, q);
    auto yh0 = A::condSub2q(A::subRaw(z0, ta, q2, q), q2, q);
    auto tb = A::mulShoup(z3, twb, wbq, q, algo);
    auto y1 = A::condSub2q(A::add(z2, tb, q), q2, q);
    auto yh1 = A::condSub2q(A::subRaw(z2, tb, q2, q), q2, q);
    // Second layer (inverse stage s_lo): butterflies p and p + h/2.
    auto t0 = A::mulShoup(y1, tw0, w0q, q, algo);
    auto x0 = A::condSub2q(A::add(y0, t0, q), q2, q);
    auto x2 = A::condSub2q(A::subRaw(y0, t0, q2, q), q2, q);
    auto t1 = A::mulShoup(yh1, tw1, w1q, q, algo);
    auto x1 = A::condSub2q(A::add(yh0, t1, q), q2, q);
    auto x3 = A::condSub2q(A::subRaw(yh0, t1, q2, q), q2, q);
    A::store(dst_hi, dst_lo, p, x0);
    A::store(dst_hi, dst_lo, p + h2, x1);
    A::store(dst_hi, dst_lo, p + h, x2);
    A::store(dst_hi, dst_lo, p + h + h2, x3);
}

/**
 * Scalar fused radix-4 inverse butterfly p of the inverse stage pair
 * (s_lo + 1, s_lo): reads y[4p .. 4p+3], writes x[p], x[p+h/2],
 * x[p+h], x[p+3h/2]. Mirrors two consecutive inverseButterflyLazyScalar
 * stages exactly (bit-identical). @p tw/@p twq are the INVERSE tables.
 */
inline void
inverseButterfly4LazyScalar(const mod::DW<uint64_t>& q,
                            const mod::DW<uint64_t>& q2,
                            const uint64_t* src_hi, const uint64_t* src_lo,
                            uint64_t* dst_hi, uint64_t* dst_lo,
                            const uint64_t* tw_hi, const uint64_t* tw_lo,
                            const uint64_t* twq_hi, const uint64_t* twq_lo,
                            size_t p, size_t h, int s_lo, MulAlgo algo)
{
    const size_t h2 = h / 2;
    const size_t e0 = NttPlan::stageTwiddleIndex(s_lo, p);
    const size_t e1 = e0 + h2;
    const size_t eb = NttPlan::stageTwiddlePair(s_lo, p);
    mod::DW<uint64_t> w0{tw_hi[e0], tw_lo[e0]}, w0q{twq_hi[e0], twq_lo[e0]};
    mod::DW<uint64_t> w1{tw_hi[e1], tw_lo[e1]}, w1q{twq_hi[e1], twq_lo[e1]};
    mod::DW<uint64_t> wb{tw_hi[eb], tw_lo[eb]}, wbq{twq_hi[eb], twq_lo[eb]};
    inverseButterfly4LazyCore(q, q2, src_hi, src_lo, dst_hi, dst_lo, w0, w0q,
                              w1, w1q, wb, wbq, p, h, algo);
}

/**
 * One element of a canonicalizing Shoup multiply by a fixed canonical
 * multiplicand: dst[i] = src[i] * w mod q in [0, q), for src[i] in
 * [0, 2q). Shared by the scalar vmulShoup kernels (negacyclic
 * twist/untwist — src canonical there) and the inverse NTT's fused
 * n^-1 scaling pass (src in [0, 2q)). In-place (dst == src) is legal.
 * Policy-templated like the butterflies.
 */
template <class A = mod::DefaultLazyOps>
inline void
mulShoupCanonElementScalar(const mod::DW<uint64_t>& q,
                           const uint64_t* src_hi, const uint64_t* src_lo,
                           uint64_t* dst_hi, uint64_t* dst_lo,
                           const mod::DW<uint64_t>& w,
                           const mod::DW<uint64_t>& wq, size_t i,
                           MulAlgo algo)
{
    auto x = A::load2q(src_hi, src_lo, i, q);
    auto r = A::canon(A::mulShoup(x, A::twiddle(w, q), wq, q, algo), q);
    A::store(dst_hi, dst_lo, i, r);
}

/**
 * Cold half of validateNttArgs: formats the offending buffer geometry
 * (hi/lo base pointers and lengths, plus the plan's n) into the
 * exception message. Out of line and noinline so the per-transform hot
 * path pays only the comparisons, never the formatting.
 */
[[noreturn]] MQX_NO_INLINE inline void
failNttArgs(const char* reason, const NttPlan& plan, DConstSpan in,
            DConstSpan out, DConstSpan scratch)
{
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "%s (plan n=%zu; in hi=%p lo=%p n=%zu; "
                  "out hi=%p lo=%p n=%zu; scratch hi=%p lo=%p n=%zu)",
                  reason, plan.n(), static_cast<const void*>(in.hi),
                  static_cast<const void*>(in.lo), in.n,
                  static_cast<const void*>(out.hi),
                  static_cast<const void*>(out.lo), out.n,
                  static_cast<const void*>(scratch.hi),
                  static_cast<const void*>(scratch.lo), scratch.n);
    throw InvalidArgument(buf);
}

inline void
validateNttArgs(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch)
{
    if (in.n != plan.n() || out.n != plan.n() || scratch.n != plan.n())
        failNttArgs("ntt: buffer sizes must equal the plan size", plan, in,
                    out, scratch);
    // The ping-pong is out-of-place: reject ANY storage sharing between
    // the three buffers — identical spans, aliased lo arrays, and mixed
    // hi/lo overlap included (the span-overlap contract of the SoA
    // layout, not just hi-pointer distinctness).
    auto overlaps = [](DConstSpan a, DConstSpan b) {
        return sameSpan(a, b) || spansPartiallyOverlap(a, b);
    };
    if (overlaps(in, out) || overlaps(in, scratch) || overlaps(out, scratch))
        failNttArgs(
            "ntt: in/out/scratch must be distinct, non-overlapping buffers",
            plan, in, out, scratch);
}

} // namespace detail

/** Forward Pease NTT, Barrett arithmetic (natural in, bit-reversed out). */
template <class Isa>
void
peaseForwardImpl(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                 MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const auto& br = mod.barrett();
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = 0; s < m; ++s) {
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = simd::loadDv<Isa>(src_hi, src_lo, j);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, j + h);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto u = simd::addModV<Isa>(ctx, a, b);
            auto v = simd::mulModV<Isa>(ctx, simd::subModV<Isa>(ctx, a, b),
                                        w, algo);
            typename Isa::V blk0, blk1;
            Isa::interleave2(u.hi, v.hi, blk0, blk1);
            Isa::storeu(dst.hi + 2 * j, blk0);
            Isa::storeu(dst.hi + 2 * j + Isa::kLanes, blk1);
            Isa::interleave2(u.lo, v.lo, blk0, blk1);
            Isa::storeu(dst.lo + 2 * j, blk0);
            Isa::storeu(dst.lo + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            detail::forwardButterflyScalar(br, q, src_hi, src_lo, dst.hi,
                                           dst.lo, tw_hi, tw_lo, j, h, s,
                                           algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/** Inverse Pease NTT, Barrett arithmetic (bit-reversed in, natural out,
 *  scaled by n^-1). */
template <class Isa>
void
peaseInverseImpl(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
                 MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const auto& br = mod.barrett();
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0h = Isa::loadu(src_hi + 2 * j);
            auto blk1h = Isa::loadu(src_hi + 2 * j + Isa::kLanes);
            auto blk0l = Isa::loadu(src_lo + 2 * j);
            auto blk1l = Isa::loadu(src_lo + 2 * j + Isa::kLanes);
            simd::DV<Isa> u, v;
            Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
            Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto t = simd::mulModV<Isa>(ctx, v, w, algo);
            auto x0 = simd::addModV<Isa>(ctx, u, t);
            auto x1 = simd::subModV<Isa>(ctx, u, t);
            simd::storeDv<Isa>(dst.hi, dst.lo, j, x0);
            simd::storeDv<Isa>(dst.hi, dst.lo, j + h, x1);
        }
        for (; j < h; ++j) {
            detail::inverseButterflyScalar(br, q, src_hi, src_lo, dst.hi,
                                           dst.lo, tw_hi, tw_lo, j, h, s,
                                           algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    // Final scaling by n^-1 (deferred from the per-stage halving).
    const U128 n_inv = plan.nInv();
    simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(out.hi, out.lo, i);
        simd::storeDv<Isa>(out.hi, out.lo, i,
                           simd::mulModV<Isa>(ctx, x, vninv, algo));
    }
    mod::DW<uint64_t> dn = mod::toDw(n_inv);
    for (; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = algo == MulAlgo::Schoolbook ? mod::mulModSchool(x, dn, br)
                                             : mod::mulModKaratsuba(x, dn, br);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

/**
 * Forward Pease NTT, Shoup-lazy arithmetic. Canonical [0, q) input,
 * canonical output (the last stage fuses the condSub-q pass); between
 * stages operands stay in the redundant [0, 2q) range and every twiddle
 * multiply is the Shoup precomputed-quotient form. Bit-identical to
 * peaseForwardImpl.
 */
template <class Isa>
void
peaseForwardLazyImpl(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();
    const uint64_t* twq_hi = plan.twiddleShoupHi();
    const uint64_t* twq_lo = plan.twiddleShoupLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = simd::loadDv<Isa>(src_hi, src_lo, j);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, j + h);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, s);
            auto u = simd::addModLazyV<Isa>(ctx, a, b);
            auto d = simd::subModLazyRawV<Isa>(ctx, a, b); // (0, 4q)
            auto v = simd::mulModShoupV<Isa>(ctx, d, w, wq, algo);
            if (last) {
                u = simd::condSubDwV<Isa>(ctx, u, ctx.qh, ctx.ql);
                v = simd::condSubDwV<Isa>(ctx, v, ctx.qh, ctx.ql);
            }
            typename Isa::V blk0, blk1;
            Isa::interleave2(u.hi, v.hi, blk0, blk1);
            Isa::storeu(dst.hi + 2 * j, blk0);
            Isa::storeu(dst.hi + 2 * j + Isa::kLanes, blk1);
            Isa::interleave2(u.lo, v.lo, blk0, blk1);
            Isa::storeu(dst.lo + 2 * j, blk0);
            Isa::storeu(dst.lo + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            detail::forwardButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, s, last, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/**
 * Inverse Pease NTT, Shoup-lazy arithmetic. Canonical input, canonical
 * output; canonicalization is fused into the n^-1 scaling pass (itself
 * a Shoup multiply against the plan's nInvShoup companion).
 * Bit-identical to peaseInverseImpl.
 */
template <class Isa>
void
peaseInverseLazyImpl(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();
    const uint64_t* twq_hi = plan.twiddleInvShoupHi();
    const uint64_t* twq_lo = plan.twiddleInvShoupLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0h = Isa::loadu(src_hi + 2 * j);
            auto blk1h = Isa::loadu(src_hi + 2 * j + Isa::kLanes);
            auto blk0l = Isa::loadu(src_lo + 2 * j);
            auto blk1l = Isa::loadu(src_lo + 2 * j + Isa::kLanes);
            simd::DV<Isa> u, v;
            Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
            Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, s);
            auto t = simd::mulModShoupV<Isa>(ctx, v, w, wq, algo); // [0,2q)
            auto x0 = simd::addModLazyV<Isa>(ctx, u, t);
            auto x1 = simd::subModLazyV<Isa>(ctx, u, t);
            simd::storeDv<Isa>(dst.hi, dst.lo, j, x0);
            simd::storeDv<Isa>(dst.hi, dst.lo, j + h, x1);
        }
        for (; j < h; ++j) {
            detail::inverseButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, s, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    // Fused n^-1 scaling + canonicalization: one Shoup multiply into
    // [0, 2q) and one conditional subtract of q per element.
    const U128 n_inv = plan.nInv();
    const U128 n_inv_sh = plan.nInvShoup();
    simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    simd::DV<Isa> vninvq{Isa::set1(n_inv_sh.hi), Isa::set1(n_inv_sh.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(out.hi, out.lo, i);
        auto r = simd::mulModShoupV<Isa>(ctx, x, vninv, vninvq, algo);
        r = simd::condSubDwV<Isa>(ctx, r, ctx.qh, ctx.ql);
        simd::storeDv<Isa>(out.hi, out.lo, i, r);
    }
    const mod::DW<uint64_t> dn = mod::toDw(n_inv);
    const mod::DW<uint64_t> dnq = mod::toDw(n_inv_sh);
    for (; i < plan.n(); ++i) {
        detail::mulShoupCanonElementScalar(q, out.hi, out.lo, out.hi, out.lo,
                                           dn, dnq, i, algo);
    }
}

/**
 * Forward Pease NTT with fused radix-4 passes, Shoup-lazy arithmetic.
 * Each pass loads the operands of TWO consecutive stages once, applies
 * both butterfly layers in registers, and stores once: ceil(logn/2)
 * ping-pong sweeps instead of logn (a single radix-2 pass runs first
 * when logn is odd). Arithmetic and ranges are exactly the radix-2 lazy
 * path's, so the output is bit-identical to peaseForwardLazyImpl (and
 * therefore to the Barrett path).
 */
template <class Isa>
void
peaseForward4LazyImpl(const NttPlan& plan, DConstSpan in, DSpan out,
                      DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();
    const uint64_t* twq_hi = plan.twiddleShoupHi();
    const uint64_t* twq_lo = plan.twiddleShoupLo();

    DSpan bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    int s = 0;
    if (m % 2 == 1) {
        // Odd logn: one radix-2 stage first (stage 0), fused pairs after.
        const bool last = m == 1;
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto a = simd::loadDv<Isa>(src_hi, src_lo, j);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, j + h);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, 0);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, 0);
            auto u = simd::addModLazyV<Isa>(ctx, a, b);
            auto dd = simd::subModLazyRawV<Isa>(ctx, a, b);
            auto v = simd::mulModShoupV<Isa>(ctx, dd, w, wq, algo);
            if (last) {
                u = simd::condSubDwV<Isa>(ctx, u, ctx.qh, ctx.ql);
                v = simd::condSubDwV<Isa>(ctx, v, ctx.qh, ctx.ql);
            }
            typename Isa::V blk0, blk1;
            Isa::interleave2(u.hi, v.hi, blk0, blk1);
            Isa::storeu(dst.hi + 2 * j, blk0);
            Isa::storeu(dst.hi + 2 * j + Isa::kLanes, blk1);
            Isa::interleave2(u.lo, v.lo, blk0, blk1);
            Isa::storeu(dst.lo + 2 * j, blk0);
            Isa::storeu(dst.lo + 2 * j + Isa::kLanes, blk1);
        }
        for (; j < h; ++j) {
            detail::forwardButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, 0, last, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
        s = 1;
    }
    for (; s + 1 < m; s += 2) {
        const bool last = s + 2 == m;
        DSpan dst = bufs[target];
        size_t p = 0;
        for (; p + Isa::kLanes <= h2; p += Isa::kLanes) {
            // Live-range discipline: finish each first-layer butterfly
            // before loading the next one's operands — the fused body
            // otherwise overflows the vector register file.
            auto a = simd::loadDv<Isa>(src_hi, src_lo, p);
            auto c = simd::loadDv<Isa>(src_hi, src_lo, p + h);
            auto w0 = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, p, s);
            auto w0q = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, p, s);
            auto u0 = simd::addModLazyV<Isa>(ctx, a, c);
            auto v0 = simd::mulModShoupV<Isa>(
                ctx, simd::subModLazyRawV<Isa>(ctx, a, c), w0, w0q, algo);
            auto b = simd::loadDv<Isa>(src_hi, src_lo, p + h2);
            auto d = simd::loadDv<Isa>(src_hi, src_lo, p + h + h2);
            auto w1 =
                detail::loadStageTwiddles<Isa>(tw_hi + h2, tw_lo + h2, p, s);
            auto w1q = detail::loadStageTwiddles<Isa>(twq_hi + h2,
                                                      twq_lo + h2, p, s);
            auto u1 = simd::addModLazyV<Isa>(ctx, b, d);
            auto v1 = simd::mulModShoupV<Isa>(
                ctx, simd::subModLazyRawV<Isa>(ctx, b, d), w1, w1q, algo);
            auto wb = detail::loadStageTwiddlesPair<Isa>(tw_hi, tw_lo, p, s);
            auto wbq =
                detail::loadStageTwiddlesPair<Isa>(twq_hi, twq_lo, p, s);
            auto z0 = simd::addModLazyV<Isa>(ctx, u0, u1);
            auto z1 = simd::mulModShoupV<Isa>(
                ctx, simd::subModLazyRawV<Isa>(ctx, u0, u1), wb, wbq, algo);
            auto z2 = simd::addModLazyV<Isa>(ctx, v0, v1);
            auto z3 = simd::mulModShoupV<Isa>(
                ctx, simd::subModLazyRawV<Isa>(ctx, v0, v1), wb, wbq, algo);
            if (last) {
                z0 = simd::condSubDwV<Isa>(ctx, z0, ctx.qh, ctx.ql);
                z1 = simd::condSubDwV<Isa>(ctx, z1, ctx.qh, ctx.ql);
                z2 = simd::condSubDwV<Isa>(ctx, z2, ctx.qh, ctx.ql);
                z3 = simd::condSubDwV<Isa>(ctx, z3, ctx.qh, ctx.ql);
            }
            typename Isa::V o0, o1, o2, o3;
            detail::interleave4<Isa>(z0.hi, z1.hi, z2.hi, z3.hi, o0, o1, o2,
                                     o3);
            Isa::storeu(dst.hi + 4 * p, o0);
            Isa::storeu(dst.hi + 4 * p + Isa::kLanes, o1);
            Isa::storeu(dst.hi + 4 * p + 2 * Isa::kLanes, o2);
            Isa::storeu(dst.hi + 4 * p + 3 * Isa::kLanes, o3);
            detail::interleave4<Isa>(z0.lo, z1.lo, z2.lo, z3.lo, o0, o1, o2,
                                     o3);
            Isa::storeu(dst.lo + 4 * p, o0);
            Isa::storeu(dst.lo + 4 * p + Isa::kLanes, o1);
            Isa::storeu(dst.lo + 4 * p + 2 * Isa::kLanes, o2);
            Isa::storeu(dst.lo + 4 * p + 3 * Isa::kLanes, o3);
        }
        for (; p < h2; ++p) {
            detail::forwardButterfly4LazyScalar(q, q2, src_hi, src_lo,
                                                dst.hi, dst.lo, tw_hi, tw_lo,
                                                twq_hi, twq_lo, p, h, s, last,
                                                algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/**
 * Inverse Pease NTT with fused radix-4 passes, Shoup-lazy arithmetic:
 * stage pairs run high-to-low with a single radix-2 pass last when logn
 * is odd, then the fused n^-1 scaling + canonicalization. Bit-identical
 * to peaseInverseLazyImpl.
 */
template <class Isa>
void
peaseInverse4LazyImpl(const NttPlan& plan, DConstSpan in, DSpan out,
                      DSpan scratch, MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateNttArgs(plan, in, out, scratch);
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const mod::DW<uint64_t> q = mod::toDw(mod.value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();
    const uint64_t* twq_hi = plan.twiddleInvShoupHi();
    const uint64_t* twq_lo = plan.twiddleInvShoupLo();

    DSpan bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    int s = m - 1;
    for (; s >= 1; s -= 2) {
        const int sl = s - 1; // pair (s, s-1), indexed by the low stage
        DSpan dst = bufs[target];
        size_t p = 0;
        for (; p + Isa::kLanes <= h2; p += Isa::kLanes) {
            auto i0h = Isa::loadu(src_hi + 4 * p);
            auto i1h = Isa::loadu(src_hi + 4 * p + Isa::kLanes);
            auto i2h = Isa::loadu(src_hi + 4 * p + 2 * Isa::kLanes);
            auto i3h = Isa::loadu(src_hi + 4 * p + 3 * Isa::kLanes);
            auto i0l = Isa::loadu(src_lo + 4 * p);
            auto i1l = Isa::loadu(src_lo + 4 * p + Isa::kLanes);
            auto i2l = Isa::loadu(src_lo + 4 * p + 2 * Isa::kLanes);
            auto i3l = Isa::loadu(src_lo + 4 * p + 3 * Isa::kLanes);
            simd::DV<Isa> z0, z1, z2, z3;
            detail::deinterleave4<Isa>(i0h, i1h, i2h, i3h, z0.hi, z1.hi,
                                       z2.hi, z3.hi);
            detail::deinterleave4<Isa>(i0l, i1l, i2l, i3l, z0.lo, z1.lo,
                                       z2.lo, z3.lo);
            auto wb =
                detail::loadStageTwiddlesPair<Isa>(tw_hi, tw_lo, p, sl);
            auto wbq =
                detail::loadStageTwiddlesPair<Isa>(twq_hi, twq_lo, p, sl);
            // First layer (inverse stage s): butterflies 2p and 2p+1.
            auto ta = simd::mulModShoupV<Isa>(ctx, z1, wb, wbq, algo);
            auto y0 = simd::addModLazyV<Isa>(ctx, z0, ta);
            auto yh0 = simd::subModLazyV<Isa>(ctx, z0, ta);
            auto tb = simd::mulModShoupV<Isa>(ctx, z3, wb, wbq, algo);
            auto y1 = simd::addModLazyV<Isa>(ctx, z2, tb);
            auto yh1 = simd::subModLazyV<Isa>(ctx, z2, tb);
            // Second layer (inverse stage s-1): butterflies p, p + h/2.
            auto w0 = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, p, sl);
            auto w0q = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, p, sl);
            auto w1 = detail::loadStageTwiddles<Isa>(tw_hi + h2, tw_lo + h2,
                                                     p, sl);
            auto w1q = detail::loadStageTwiddles<Isa>(twq_hi + h2,
                                                      twq_lo + h2, p, sl);
            auto t0 = simd::mulModShoupV<Isa>(ctx, y1, w0, w0q, algo);
            simd::storeDv<Isa>(dst.hi, dst.lo, p,
                               simd::addModLazyV<Isa>(ctx, y0, t0));
            simd::storeDv<Isa>(dst.hi, dst.lo, p + h,
                               simd::subModLazyV<Isa>(ctx, y0, t0));
            auto t1 = simd::mulModShoupV<Isa>(ctx, yh1, w1, w1q, algo);
            simd::storeDv<Isa>(dst.hi, dst.lo, p + h2,
                               simd::addModLazyV<Isa>(ctx, yh0, t1));
            simd::storeDv<Isa>(dst.hi, dst.lo, p + h + h2,
                               simd::subModLazyV<Isa>(ctx, yh0, t1));
        }
        for (; p < h2; ++p) {
            detail::inverseButterfly4LazyScalar(q, q2, src_hi, src_lo,
                                                dst.hi, dst.lo, tw_hi, tw_lo,
                                                twq_hi, twq_lo, p, h, sl,
                                                algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
    if (s == 0) {
        // Odd logn: the leftover radix-2 inverse stage (stage 0).
        DSpan dst = bufs[target];
        size_t j = 0;
        for (; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto blk0h = Isa::loadu(src_hi + 2 * j);
            auto blk1h = Isa::loadu(src_hi + 2 * j + Isa::kLanes);
            auto blk0l = Isa::loadu(src_lo + 2 * j);
            auto blk1l = Isa::loadu(src_lo + 2 * j + Isa::kLanes);
            simd::DV<Isa> u, v;
            Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
            Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, 0);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, 0);
            auto t = simd::mulModShoupV<Isa>(ctx, v, w, wq, algo);
            auto x0 = simd::addModLazyV<Isa>(ctx, u, t);
            auto x1 = simd::subModLazyV<Isa>(ctx, u, t);
            simd::storeDv<Isa>(dst.hi, dst.lo, j, x0);
            simd::storeDv<Isa>(dst.hi, dst.lo, j + h, x1);
        }
        for (; j < h; ++j) {
            detail::inverseButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, 0, algo);
        }
    }

    // Fused n^-1 scaling + canonicalization (same as the radix-2 path).
    const U128 n_inv = plan.nInv();
    const U128 n_inv_sh = plan.nInvShoup();
    simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    simd::DV<Isa> vninvq{Isa::set1(n_inv_sh.hi), Isa::set1(n_inv_sh.lo)};
    size_t i = 0;
    for (; i + Isa::kLanes <= plan.n(); i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(out.hi, out.lo, i);
        auto r = simd::mulModShoupV<Isa>(ctx, x, vninv, vninvq, algo);
        r = simd::condSubDwV<Isa>(ctx, r, ctx.qh, ctx.ql);
        simd::storeDv<Isa>(out.hi, out.lo, i, r);
    }
    const mod::DW<uint64_t> dn = mod::toDw(n_inv);
    const mod::DW<uint64_t> dnq = mod::toDw(n_inv_sh);
    for (; i < plan.n(); ++i) {
        detail::mulShoupCanonElementScalar(q, out.hi, out.lo, out.hi, out.lo,
                                           dn, dnq, i, algo);
    }
}

/**
 * Point-wise multiply by a fixed table with precomputed Shoup
 * companions: c[i] = a[i] * t[i] mod q, canonical output. This is the
 * negacyclic twist/untwist pass — the table is immutable, so the
 * quotient precomputation amortizes exactly like the twiddles'.
 * In-place (c == a) is legal, matching the blas::vmul contract.
 */
template <class Isa>
void
vmulShoupImpl(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
              DSpan c, MulAlgo algo = MulAlgo::Schoolbook)
{
    checkArg(a.n == t.n && a.n == tq.n && a.n == c.n,
             "vmulShoup: length mismatch");
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(m);
    size_t i = 0;
    for (; i + Isa::kLanes <= a.n; i += Isa::kLanes) {
        auto x = simd::loadDv<Isa>(a.hi, a.lo, i);
        auto w = simd::loadDv<Isa>(t.hi, t.lo, i);
        auto wq = simd::loadDv<Isa>(tq.hi, tq.lo, i);
        auto r = simd::mulModShoupV<Isa>(ctx, x, w, wq, algo);
        r = simd::condSubDwV<Isa>(ctx, r, ctx.qh, ctx.ql);
        simd::storeDv<Isa>(c.hi, c.lo, i, r);
    }
    const mod::DW<uint64_t> q = mod::toDw(m.value());
    for (; i < a.n; ++i) {
        detail::mulShoupCanonElementScalar(
            q, a.hi, a.lo, c.hi, c.lo, mod::DW<uint64_t>{t.hi[i], t.lo[i]},
            mod::DW<uint64_t>{tq.hi[i], tq.lo[i]}, i, algo);
    }
}

// ======================================================================
// Interleaved batch kernels (ROADMAP item 2).
//
// One butterfly sweep serves IL residue channels at once over the
// channel-major tiled layout of core/batch_layout.h: element e of lane
// c lives at flat word batchIndex(e, c, il), so every vector load of
// kLanes consecutive elements of one lane is contiguous (kLanes divides
// the 8-word tile for every backend). Each stage's Shoup twiddle pair
// is loaded ONCE per vector of butterflies and reused across all IL
// lanes — the ParPar packed multi-region pattern — and the next
// group-row of both read streams is prefetched through
// core::prefetchNext. The per-lane arithmetic is EXACTLY the radix-2
// Shoup-lazy sequence of peaseForward/InverseLazyImpl, so each lane's
// output is word-identical to a per-channel transform.
// ======================================================================

namespace detail {

/** Flat word index of element @p e of lane @p c in one IL-lane group. */
MQX_FORCE_INLINE size_t
batchIndex(size_t e, size_t c, size_t il)
{
    constexpr size_t w = BatchLayout::kTileWords; // power of two
    return ((e / w) * il + c) * w + (e & (w - 1));
}

/** Batch flavour of validateNttArgs: buffers hold il lanes of plan.n()
 *  elements each; same no-overlap contract between the three. */
inline void
validateBatchNttArgs(const NttPlan& plan, size_t il, DConstSpan in,
                     DConstSpan out, DConstSpan scratch)
{
    checkArg(il >= 1 && il <= 64, "ntt batch: interleave factor out of range");
    checkArg(plan.n() >= 2 * BatchLayout::kTileWords,
             "ntt batch: plan size must be at least 16");
    const size_t want = il * plan.n();
    if (in.n != want || out.n != want || scratch.n != want)
        failNttArgs("ntt batch: buffer sizes must equal il * plan size", plan,
                    in, out, scratch);
    auto overlaps = [](DConstSpan a, DConstSpan b) {
        return sameSpan(a, b) || spansPartiallyOverlap(a, b);
    };
    if (overlaps(in, out) || overlaps(in, scratch) || overlaps(out, scratch))
        failNttArgs("ntt batch: in/out/scratch must be distinct, "
                    "non-overlapping buffers",
                    plan, in, out, scratch);
}

/**
 * Forward batch stage sweeps. IL = 0 instantiates the generic
 * runtime-il loop; IL in {4, 8} lets the compiler unroll the lane loop
 * around the hoisted twiddle registers (the knob values of
 * batchInterleave()).
 */
template <class Isa, size_t IL>
void
peaseForwardBatchLazyCore(const NttPlan& plan, size_t il_rt, DConstSpan in,
                          DSpan out, DSpan scratch, MulAlgo algo)
{
    const size_t il = IL ? IL : il_rt;
    constexpr size_t w8 = BatchLayout::kTileWords;
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();
    const uint64_t* twq_hi = plan.twiddleShoupHi();
    const uint64_t* twq_lo = plan.twiddleShoupLo();
    const size_t pf = core::prefetchDistance() * il * w8;

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        DSpan dst = bufs[target];
        // h >= 8 and kLanes divides 8, so the lane loop has no tail.
        for (size_t j = 0; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, s);
            const size_t ja = batchIndex(j, 0, il);
            const size_t jb = batchIndex(j + h, 0, il);
            const size_t jo0 = batchIndex(2 * j, 0, il);
            const size_t jo1 = batchIndex(2 * j + Isa::kLanes, 0, il);
            // One prefetch pair per read stream per group-row: the il
            // lane rows behind it are contiguous, so the hardware
            // streamer follows; issuing per lane was pure instruction
            // overhead (measurably slower on 8-lane tiers).
            if (pf && (j & (w8 - 1)) == 0) {
                core::prefetchNext(src_hi, src_lo, ja, pf);
                core::prefetchNext(src_hi, src_lo, jb, pf);
            }
            for (size_t c = 0; c < il; ++c) {
                const size_t ia = ja + c * w8;
                const size_t ib = jb + c * w8;
                auto a = simd::loadDv<Isa>(src_hi, src_lo, ia);
                auto b = simd::loadDv<Isa>(src_hi, src_lo, ib);
                auto u = simd::addModLazyV<Isa>(ctx, a, b);
                auto d = simd::subModLazyRawV<Isa>(ctx, a, b); // (0, 4q)
                auto v = simd::mulModShoupV<Isa>(ctx, d, w, wq, algo);
                if (last) {
                    u = simd::condSubDwV<Isa>(ctx, u, ctx.qh, ctx.ql);
                    v = simd::condSubDwV<Isa>(ctx, v, ctx.qh, ctx.ql);
                }
                typename Isa::V blk0, blk1;
                Isa::interleave2(u.hi, v.hi, blk0, blk1);
                Isa::storeu(dst.hi + jo0 + c * w8, blk0);
                Isa::storeu(dst.hi + jo1 + c * w8, blk1);
                Isa::interleave2(u.lo, v.lo, blk0, blk1);
                Isa::storeu(dst.lo + jo0 + c * w8, blk0);
                Isa::storeu(dst.lo + jo1 + c * w8, blk1);
            }
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/**
 * Inverse batch stage sweeps. Unlike the per-channel kernel, the n^-1
 * scaling + canonicalization is fused into the LAST stage sweep
 * (s == 0) rather than run as a separate flat pass: the scaled outputs
 * are the same values through the same mulModShoupV/condSubDwV ops, so
 * per-lane words are unchanged, but the batch path saves one full
 * read+write sweep over the il * n working set.
 */
template <class Isa, size_t IL>
void
peaseInverseBatchLazyCore(const NttPlan& plan, size_t il_rt, DConstSpan in,
                          DSpan out, DSpan scratch, MulAlgo algo)
{
    const size_t il = IL ? IL : il_rt;
    constexpr size_t w8 = BatchLayout::kTileWords;
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(mod);
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();
    const uint64_t* twq_hi = plan.twiddleInvShoupHi();
    const uint64_t* twq_lo = plan.twiddleInvShoupLo();
    const size_t pf = core::prefetchDistance() * il * w8;
    const U128 n_inv = plan.nInv();
    const U128 n_inv_sh = plan.nInvShoup();
    const simd::DV<Isa> vninv{Isa::set1(n_inv.hi), Isa::set1(n_inv.lo)};
    const simd::DV<Isa> vninvq{Isa::set1(n_inv_sh.hi),
                               Isa::set1(n_inv_sh.lo)};

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;

    for (int s = m - 1; s >= 0; --s) {
        const bool last = s == 0;
        DSpan dst = bufs[target];
        for (size_t j = 0; j + Isa::kLanes <= h; j += Isa::kLanes) {
            auto w = detail::loadStageTwiddles<Isa>(tw_hi, tw_lo, j, s);
            auto wq = detail::loadStageTwiddles<Isa>(twq_hi, twq_lo, j, s);
            const size_t ji0 = batchIndex(2 * j, 0, il);
            const size_t ji1 = batchIndex(2 * j + Isa::kLanes, 0, il);
            const size_t jx0 = batchIndex(j, 0, il);
            const size_t jx1 = batchIndex(j + h, 0, il);
            // See the forward sweep: one prefetch pair per stream per
            // group-row (the inverse reads two interleaved rows per j,
            // hence the doubled lookahead).
            if (pf && (j & (w8 - 1)) == 0) {
                core::prefetchNext(src_hi, src_lo, ji0, 2 * pf);
                core::prefetchNext(src_hi, src_lo, ji1, 2 * pf);
            }
            for (size_t c = 0; c < il; ++c) {
                const size_t i0 = ji0 + c * w8;
                const size_t i1 = ji1 + c * w8;
                auto blk0h = Isa::loadu(src_hi + i0);
                auto blk1h = Isa::loadu(src_hi + i1);
                auto blk0l = Isa::loadu(src_lo + i0);
                auto blk1l = Isa::loadu(src_lo + i1);
                simd::DV<Isa> u, v;
                Isa::deinterleave2(blk0h, blk1h, u.hi, v.hi);
                Isa::deinterleave2(blk0l, blk1l, u.lo, v.lo);
                auto t = simd::mulModShoupV<Isa>(ctx, v, w, wq, algo);
                auto x0 = simd::addModLazyV<Isa>(ctx, u, t);
                auto x1 = simd::subModLazyV<Isa>(ctx, u, t);
                if (last) {
                    x0 = simd::mulModShoupV<Isa>(ctx, x0, vninv, vninvq,
                                                 algo);
                    x0 = simd::condSubDwV<Isa>(ctx, x0, ctx.qh, ctx.ql);
                    x1 = simd::mulModShoupV<Isa>(ctx, x1, vninv, vninvq,
                                                 algo);
                    x1 = simd::condSubDwV<Isa>(ctx, x1, ctx.qh, ctx.ql);
                }
                simd::storeDv<Isa>(dst.hi, dst.lo, jx0 + c * w8, x0);
                simd::storeDv<Isa>(dst.hi, dst.lo, jx1 + c * w8, x1);
            }
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    // Padding lanes entered as zeros and every op above maps zero to
    // zero (0 * n^-1 = 0 canonical), so they leave as zeros too.
}

} // namespace detail

/**
 * Forward interleaved batch NTT: one call transforms il lanes packed by
 * batch::packLanes (buffers are il * plan.n() words per half).
 * Per-lane output is word-identical to peaseForwardLazyImpl — and so to
 * every other per-channel fusion/reduction variant.
 */
template <class Isa>
void
peaseForwardBatchImpl(const NttPlan& plan, size_t il, DConstSpan in,
                      DSpan out, DSpan scratch,
                      MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateBatchNttArgs(plan, il, in, out, scratch);
    switch (il) {
    case 4:
        detail::peaseForwardBatchLazyCore<Isa, 4>(plan, il, in, out, scratch,
                                                  algo);
        break;
    case 8:
        detail::peaseForwardBatchLazyCore<Isa, 8>(plan, il, in, out, scratch,
                                                  algo);
        break;
    default:
        detail::peaseForwardBatchLazyCore<Isa, 0>(plan, il, in, out, scratch,
                                                  algo);
        break;
    }
}

/** Inverse interleaved batch NTT (see peaseForwardBatchImpl). */
template <class Isa>
void
peaseInverseBatchImpl(const NttPlan& plan, size_t il, DConstSpan in,
                      DSpan out, DSpan scratch,
                      MulAlgo algo = MulAlgo::Schoolbook)
{
    detail::validateBatchNttArgs(plan, il, in, out, scratch);
    switch (il) {
    case 4:
        detail::peaseInverseBatchLazyCore<Isa, 4>(plan, il, in, out, scratch,
                                                  algo);
        break;
    case 8:
        detail::peaseInverseBatchLazyCore<Isa, 8>(plan, il, in, out, scratch,
                                                  algo);
        break;
    default:
        detail::peaseInverseBatchLazyCore<Isa, 0>(plan, il, in, out, scratch,
                                                  algo);
        break;
    }
}

/**
 * Batched vmulShoup: the n-entry table multiplies all il packed lanes,
 * each table vector loaded once per sweep position. In-place (c == a)
 * is legal, matching vmulShoupImpl.
 */
template <class Isa>
void
vmulShoupBatchImpl(const Modulus& m, size_t il, DConstSpan a, DConstSpan t,
                   DConstSpan tq, DSpan c, MulAlgo algo = MulAlgo::Schoolbook)
{
    constexpr size_t w8 = BatchLayout::kTileWords;
    checkArg(il >= 1 && il <= 64,
             "vmulShoupBatch: interleave factor out of range");
    checkArg(t.n == tq.n && (t.n & (w8 - 1)) == 0 && t.n > 0,
             "vmulShoupBatch: table length must be a positive multiple of 8");
    checkArg(a.n == il * t.n && c.n == a.n,
             "vmulShoupBatch: data length must be il * table length");
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(m);
    const size_t pf = core::prefetchDistance() * il * w8;
    for (size_t i = 0; i + Isa::kLanes <= t.n; i += Isa::kLanes) {
        auto w = simd::loadDv<Isa>(t.hi, t.lo, i);
        auto wq = simd::loadDv<Isa>(tq.hi, tq.lo, i);
        const size_t base = detail::batchIndex(i, 0, il);
        const bool row0 = (i & (w8 - 1)) == 0;
        for (size_t lane = 0; lane < il; ++lane) {
            const size_t idx = base + lane * w8;
            if (pf && row0)
                core::prefetchNext(a.hi, a.lo, idx, pf);
            auto x = simd::loadDv<Isa>(a.hi, a.lo, idx);
            auto r = simd::mulModShoupV<Isa>(ctx, x, w, wq, algo);
            r = simd::condSubDwV<Isa>(ctx, r, ctx.qh, ctx.ql);
            simd::storeDv<Isa>(c.hi, c.lo, idx, r);
        }
    }
}

/**
 * Scalar-backend batch kernels: the same tiled addressing driven by the
 * native-128-bit lazy scalar ops (mod::DefaultLazyOps accepts arbitrary
 * indices, so the packed index stands in for the linear one). Per-lane
 * arithmetic mirrors forwardButterflyLazyScalar exactly.
 */
inline void
peaseForwardBatchScalarImpl(const NttPlan& plan, size_t il, DConstSpan in,
                            DSpan out, DSpan scratch,
                            MulAlgo algo = MulAlgo::Schoolbook)
{
    using A = mod::DefaultLazyOps;
    detail::validateBatchNttArgs(plan, il, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();
    const uint64_t* twq_hi = plan.twiddleShoupHi();
    const uint64_t* twq_lo = plan.twiddleShoupLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            const size_t e = NttPlan::stageTwiddleIndex(s, j);
            const auto w = A::twiddle(mod::DW<uint64_t>{tw_hi[e], tw_lo[e]},
                                      q);
            const mod::DW<uint64_t> wq{twq_hi[e], twq_lo[e]};
            for (size_t c = 0; c < il; ++c) {
                auto a = A::load2q(src_hi, src_lo,
                                   detail::batchIndex(j, c, il), q);
                auto b = A::load2q(src_hi, src_lo,
                                   detail::batchIndex(j + h, c, il), q);
                auto u = A::condSub2q(A::add(a, b, q), q2, q);
                auto v = A::mulShoup(A::subRaw(a, b, q2, q), w, wq, q, algo);
                if (last) {
                    u = A::canon(u, q);
                    v = A::canon(v, q);
                }
                A::store(dst.hi, dst.lo, detail::batchIndex(2 * j, c, il), u);
                A::store(dst.hi, dst.lo, detail::batchIndex(2 * j + 1, c, il),
                         v);
            }
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/** Scalar-backend inverse batch kernel + fused n^-1 pass. */
inline void
peaseInverseBatchScalarImpl(const NttPlan& plan, size_t il, DConstSpan in,
                            DSpan out, DSpan scratch,
                            MulAlgo algo = MulAlgo::Schoolbook)
{
    using A = mod::DefaultLazyOps;
    detail::validateBatchNttArgs(plan, il, in, out, scratch);
    const size_t h = plan.half();
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();
    const uint64_t* twq_hi = plan.twiddleInvShoupHi();
    const uint64_t* twq_lo = plan.twiddleInvShoupLo();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            const size_t e = NttPlan::stageTwiddleIndex(s, j);
            const auto w = A::twiddle(mod::DW<uint64_t>{tw_hi[e], tw_lo[e]},
                                      q);
            const mod::DW<uint64_t> wq{twq_hi[e], twq_lo[e]};
            for (size_t c = 0; c < il; ++c) {
                auto u = A::load2q(src_hi, src_lo,
                                   detail::batchIndex(2 * j, c, il), q);
                auto v = A::load2q(src_hi, src_lo,
                                   detail::batchIndex(2 * j + 1, c, il), q);
                auto t = A::mulShoup(v, w, wq, q, algo);
                auto x0 = A::condSub2q(A::add(u, t, q), q2, q);
                auto x1 = A::condSub2q(A::subRaw(u, t, q2, q), q2, q);
                A::store(dst.hi, dst.lo, detail::batchIndex(j, c, il), x0);
                A::store(dst.hi, dst.lo, detail::batchIndex(j + h, c, il),
                         x1);
            }
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    const mod::DW<uint64_t> dn = mod::toDw(plan.nInv());
    const mod::DW<uint64_t> dnq = mod::toDw(plan.nInvShoup());
    for (size_t i = 0; i < il * plan.n(); ++i) {
        detail::mulShoupCanonElementScalar(q, out.hi, out.lo, out.hi, out.lo,
                                           dn, dnq, i, algo);
    }
}

/** Scalar-backend batched vmulShoup (see vmulShoupBatchImpl). */
inline void
vmulShoupBatchScalarImpl(const Modulus& m, size_t il, DConstSpan a,
                         DConstSpan t, DConstSpan tq, DSpan c,
                         MulAlgo algo = MulAlgo::Schoolbook)
{
    constexpr size_t w8 = BatchLayout::kTileWords;
    checkArg(il >= 1 && il <= 64,
             "vmulShoupBatch: interleave factor out of range");
    checkArg(t.n == tq.n && (t.n & (w8 - 1)) == 0 && t.n > 0,
             "vmulShoupBatch: table length must be a positive multiple of 8");
    checkArg(a.n == il * t.n && c.n == a.n,
             "vmulShoupBatch: data length must be il * table length");
    const mod::DW<uint64_t> q = mod::toDw(m.value());
    for (size_t i = 0; i < t.n; ++i) {
        const mod::DW<uint64_t> w{t.hi[i], t.lo[i]};
        const mod::DW<uint64_t> wq{tq.hi[i], tq.lo[i]};
        for (size_t lane = 0; lane < il; ++lane) {
            const size_t idx = detail::batchIndex(i, lane, il);
            detail::mulShoupCanonElementScalar(q, a.hi, a.lo, c.hi, c.lo, w,
                                               wq, idx, algo);
        }
    }
}

} // namespace ntt
} // namespace mqx
