/**
 * @file
 * Miller-Rabin primality testing and NTT-friendly prime search.
 */
#include "ntt/prime.h"

#include "bench_util/rng.h"

namespace mqx {
namespace ntt {

namespace {

/** Trial division by a handful of small primes to reject cheaply. */
bool
passesSmallPrimeSieve(const U128& n)
{
    static constexpr uint64_t kSmall[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                          29, 31, 37, 41, 43, 47, 53, 59};
    for (uint64_t p : kSmall) {
        if (n == U128{p})
            return true;
        if (mod128(n, U128{p}).isZero())
            return false;
    }
    return true;
}

/** One Miller-Rabin round with witness a (2 <= a <= n - 2). */
bool
millerRabinRound(const Modulus& m, const U128& n_minus_1, const U128& d,
                 int r, const U128& a)
{
    U128 x = m.pow(a, d);
    if (x == U128{1} || x == n_minus_1)
        return true;
    for (int i = 1; i < r; ++i) {
        x = m.mul(x, x);
        if (x == n_minus_1)
            return true;
    }
    return false;
}

} // namespace

bool
isPrime(const U128& n, int rounds, uint64_t seed)
{
    if (n < U128{2})
        return false;
    if (n == U128{2} || n == U128{3})
        return true;
    if ((n.lo & 1) == 0)
        return false;
    if (!passesSmallPrimeSieve(n))
        return false;

    // Write n - 1 = d * 2^r with d odd.
    U128 n_minus_1 = n - U128{1};
    U128 d = n_minus_1;
    int r = 0;
    while ((d.lo & 1) == 0) {
        d >>= 1;
        ++r;
    }

    Modulus m(n);
    SplitMix64 rng(seed ^ n.lo ^ (n.hi << 1));
    // Fixed small witnesses first (cheap, catches most composites),
    // then random witnesses.
    static constexpr uint64_t kFixed[] = {2, 3, 5, 7, 11, 13, 17, 19, 23,
                                          29, 31, 37};
    for (uint64_t a : kFixed) {
        if (n <= U128{a + 1})
            break;
        if (!millerRabinRound(m, n_minus_1, d, r, U128{a}))
            return false;
    }
    for (int i = 0; i < rounds; ++i) {
        U128 a = rng.nextBelow(n - U128{3}) + U128{2}; // [2, n-2]
        if (!millerRabinRound(m, n_minus_1, d, r, a))
            return false;
    }
    return true;
}

std::vector<NttPrime>
findNttPrimes(int bits, int two_adicity, int count)
{
    checkArg(bits <= 124, "findNttPrime: bits must be <= 124 (Barrett)");
    checkArg(two_adicity >= 1 && bits >= two_adicity + 2,
             "findNttPrime: need bits >= two_adicity + 2");
    checkArg(count >= 1, "findNttPrimes: count must be >= 1");

    // q = c * 2^e + 1 with exactly `bits` bits: c in
    // [2^(bits-1-e), 2^(bits-e) - 1], c odd so 2-adicity is exactly e.
    int e = two_adicity;
    U128 c_lo = U128{1} << (bits - 1 - e);
    U128 c_hi = (U128{1} << (bits - e)) - U128{1};
    // Deterministic scan from the top of the range downwards: the same
    // (bits, e) always yields the same primes.
    std::vector<NttPrime> found;
    U128 c = c_hi;
    if ((c.lo & 1) == 0)
        c -= U128{1};
    while (c >= c_lo) {
        U128 q = (c << e) + U128{1};
        if (isPrime(q)) {
            NttPrime p;
            p.q = q;
            p.bits = q.bits();
            p.two_adicity = e;
            found.push_back(p);
            if (static_cast<int>(found.size()) == count)
                return found;
        }
        c -= U128{2};
    }
    throw InvalidArgument("findNttPrimes: not enough primes in range");
}

NttPrime
findNttPrime(int bits, int two_adicity)
{
    return findNttPrimes(bits, two_adicity, 1).front();
}

U128
rootOfUnity(const Modulus& modulus, const U128& order)
{
    const U128& q = modulus.value();
    checkArg(!order.isZero(), "rootOfUnity: zero order");
    if (order == U128{1})
        return U128{1};
    U128 q_minus_1 = q - U128{1};
    // order must divide q - 1 (power-of-two orders only).
    checkArg((order & (order - U128{1})).isZero(),
             "rootOfUnity: order must be a power of two");
    U128 quot, rem;
    divmod128(q_minus_1, order, quot, rem);
    checkArg(rem.isZero(), "rootOfUnity: order does not divide q - 1");

    U128 half_order = order >> 1;
    SplitMix64 rng(0x9e3779b9u ^ q.lo);
    for (int attempt = 0; attempt < 256; ++attempt) {
        U128 g = rng.nextBelow(q - U128{3}) + U128{2}; // [2, q-2]
        // Euler's criterion: g is a quadratic non-residue iff
        // g^((q-1)/2) == -1. For a non-residue, g^((q-1)/order) has
        // order exactly `order` (its order/2-th power is -1 != 1).
        U128 legendre = modulus.pow(g, q_minus_1 >> 1);
        if (legendre != q_minus_1)
            continue;
        U128 root = modulus.pow(g, quot);
        // Defensive check (also catches a composite q).
        U128 check = modulus.pow(root, half_order);
        checkArg(check == q_minus_1, "rootOfUnity: modulus is not prime");
        return root;
    }
    throw InvalidArgument("rootOfUnity: no quadratic non-residue found");
}

const NttPrime&
defaultBenchPrime()
{
    // 124-bit prime with 2-adicity 32: supports every NTT size the paper
    // evaluates (2^10 .. 2^18) with huge headroom. Computed once.
    static const NttPrime prime = findNttPrime(124, 32);
    return prime;
}

const NttPrime&
smallTestPrime()
{
    // 66-bit double-word prime: exercises the hi-word paths while keeping
    // test-side oracle arithmetic fast.
    static const NttPrime prime = findNttPrime(66, 20);
    return prime;
}

} // namespace ntt
} // namespace mqx
