/**
 * @file
 * Negacyclic NTT implementation.
 */
#include "ntt/negacyclic.h"

#include <chrono>
#include <utility>

#include "blas/blas.h"
#include "ntt/reference_ntt.h"
#include "robust/cancel.h"
#include "robust/fault_injection.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace ntt {

NegacyclicEngine::NegacyclicEngine(const NttPrime& prime, size_t n,
                                   Backend backend)
    : NegacyclicEngine(std::make_shared<const NttPlan>(prime, n), backend)
{
}

namespace {

std::shared_ptr<const NttPlan>
requirePlan(std::shared_ptr<const NttPlan> plan)
{
    checkArg(plan != nullptr, "NegacyclicTables: null plan");
    return plan;
}

std::shared_ptr<const NegacyclicTables>
requireTables(std::shared_ptr<const NegacyclicTables> tables)
{
    checkArg(tables != nullptr, "NegacyclicEngine: null tables");
    return tables;
}

/**
 * Shared span validation: both views must be exactly n long, and an
 * input may alias the output only exactly (in == out); a partial
 * overlap would make the kernels read half-written data.
 */
void
checkSpans(DConstSpan in, DConstSpan out, size_t n, const char* what)
{
    if (in.n != n || out.n != n)
        throw InvalidArgument(std::string(what) + ": size mismatch");
    if (spansPartiallyOverlap(in, out)) {
        throw InvalidArgument(std::string(what) +
                              ": partially overlapping spans");
    }
}

} // namespace

NegacyclicTables::NegacyclicTables(std::shared_ptr<const NttPlan> plan)
    : plan_(requirePlan(std::move(plan))), twist_(plan_->n()),
      untwist_(plan_->n()), twist_shoup_(plan_->n()),
      untwist_shoup_(plan_->n())
{
    const size_t n = plan_->n();
    const Modulus& m = plan_->modulus();
    // psi: primitive 2n-th root with psi^2 == omega. rootOfUnity gives a
    // 2n-order element; square it and, since both psi^2 and omega
    // generate the same cyclic group of order n, re-derive the plan's
    // omega as a power of psi^2 is unnecessary — instead pick psi as a
    // square root of the plan's omega directly: psi = r^((order
    // alignment)). Simplest robust approach: search k odd with
    // r^k == candidate such that candidate^2 == omega, i.e. candidate =
    // r * omega^j where r^2 * omega^(2j) == omega. We use the standard
    // trick: r has order 2n, r^2 has order n, so omega = (r^2)^t for
    // some t coprime to n; then psi = r^t satisfies psi^2 = omega and
    // psi has order 2n (t odd).
    U128 r = rootOfUnity(m, U128{static_cast<uint64_t>(2 * n)});
    U128 r2 = m.mul(r, r);
    // Find t: omega = r2^t by baby-step enumeration (setup path; n is a
    // power of two and this is O(n) worst case).
    U128 acc{1};
    uint64_t t = 0;
    bool found = false;
    for (uint64_t i = 0; i < 2 * n; ++i) {
        if (acc == plan_->omega()) {
            t = i;
            found = true;
            break;
        }
        acc = m.mul(acc, r2);
    }
    checkArg(found, "NegacyclicTables: omega not in <r^2> (internal)");
    if ((t & 1) == 0)
        t += n; // r2 has order n: exponent t + n gives the same omega,
                // and one of t, t+n is odd (n even for n >= 2)
    psi_ = m.pow(r, U128{t});
    checkArg(m.mul(psi_, psi_) == plan_->omega(),
             "NegacyclicTables: psi^2 != omega (internal)");

    U128 psi_inv = m.inverse(psi_);
    const mod::DW<uint64_t> qd = mod::toDw(m.value());
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < n; ++i) {
        twist_.set(i, acc_f);
        untwist_.set(i, acc_i);
        // Shoup companions: the twist passes are multiplications by a
        // fixed table, so they get the same precomputed-quotient
        // treatment as the twiddles.
        twist_shoup_.set(
            i, mod::fromDw(mod::shoupPrecompute(mod::toDw(acc_f), qd)));
        untwist_shoup_.set(
            i, mod::fromDw(mod::shoupPrecompute(mod::toDw(acc_i), qd)));
        acc_f = m.mul(acc_f, psi_);
        acc_i = m.mul(acc_i, psi_inv);
    }
}

NegacyclicEngine::NegacyclicEngine(const NttPrime& prime, size_t n)
    : NegacyclicEngine(prime, n, bestBackend())
{
}

NegacyclicEngine::NegacyclicEngine(std::shared_ptr<const NttPlan> plan,
                                   Backend backend)
    : NegacyclicEngine(
          std::make_shared<const NegacyclicTables>(std::move(plan)), backend)
{
}

NegacyclicEngine::NegacyclicEngine(
    std::shared_ptr<const NegacyclicTables> tables, Backend backend)
    : tables_(requireTables(std::move(tables))), backend_(backend),
      buf_a_(tables_->plan().n()), buf_b_(tables_->plan().n()),
      buf_c_(tables_->plan().n()), scratch_(tables_->plan().n())
{
}

void
NegacyclicEngine::rebind(std::shared_ptr<const NegacyclicTables> tables,
                         Backend backend)
{
    tables_ = requireTables(std::move(tables));
    backend_ = backend;
    const size_t n = tables_->plan().n();
    buf_a_.ensure(n);
    buf_b_.ensure(n);
    buf_c_.ensure(n);
    scratch_.ensure(n);
    // aux_ stays as-is: auxBuffer() re-sizes lazily on next use.
}

ResidueVector&
NegacyclicEngine::auxBuffer(size_t slot)
{
    checkArg(slot < aux_.size(), "NegacyclicEngine::auxBuffer: bad slot");
    aux_[slot].ensure(tables_->plan().n());
    return aux_[slot];
}

void
NegacyclicEngine::forward(DConstSpan in, DSpan out)
{
    MQX_SCOPED_SPAN(op_span, "negacyclic.forward");
    const NttPlan& plan = tables_->plan();
    checkSpans(in, out, plan.n(), "NegacyclicEngine::forward");
    // Twist then cyclic forward. The twist is a fixed-table multiply, so
    // it runs as a Shoup pass against the precomputed companions. `in`
    // is fully consumed by the twist pass into buf_a_, so out == in is
    // safe.
    {
        MQX_SCOPED_SPAN(twist_span, "negacyclic.twist");
        ntt::vmulShoup(backend_, plan.modulus(), in,
                       tables_->twist().span(),
                       tables_->twistShoup().span(), buf_a_.span());
    }
    ntt::forward(plan, backend_, buf_a_.span(), out, scratch_.span());
}

void
NegacyclicEngine::inverse(DConstSpan in, DSpan out)
{
    MQX_SCOPED_SPAN(op_span, "negacyclic.inverse");
    const NttPlan& plan = tables_->plan();
    checkSpans(in, out, plan.n(), "NegacyclicEngine::inverse");
    ntt::inverse(plan, backend_, in, buf_a_.span(), scratch_.span());
    {
        MQX_SCOPED_SPAN(untwist_span, "negacyclic.untwist");
        ntt::vmulShoup(backend_, plan.modulus(), buf_a_.span(),
                       tables_->untwist().span(),
                       tables_->untwistShoup().span(), out);
    }
}

void
NegacyclicEngine::pointwiseMul(DConstSpan f_eval, DConstSpan g_eval,
                               DSpan out)
{
    MQX_SCOPED_SPAN(op_span, "negacyclic.pointwise");
    const NttPlan& plan = tables_->plan();
    checkSpans(f_eval, out, plan.n(), "NegacyclicEngine::pointwiseMul");
    checkSpans(g_eval, out, plan.n(), "NegacyclicEngine::pointwiseMul");
    // Every backend loads a block before storing it, so out may alias
    // either input exactly.
    blas::vmul(backend_, plan.modulus(), f_eval, g_eval, out);
}

void
NegacyclicEngine::pointwiseAccumulate(DSpan acc, DConstSpan f_eval,
                                      DConstSpan g_eval)
{
    MQX_SCOPED_SPAN(op_span, "negacyclic.pointwise_acc");
    const NttPlan& plan = tables_->plan();
    checkSpans(f_eval, acc, plan.n(), "NegacyclicEngine::pointwiseAccumulate");
    checkSpans(g_eval, acc, plan.n(), "NegacyclicEngine::pointwiseAccumulate");
    // Product into scratch, then fold into the accumulator in place
    // (vadd with c == a is the exact-alias case every backend handles).
    blas::vmul(backend_, plan.modulus(), f_eval, g_eval, buf_c_.span());
    blas::vadd(backend_, plan.modulus(), acc, buf_c_.span(), acc);
}

void
NegacyclicEngine::polymul(DConstSpan f, DConstSpan g, DSpan out)
{
    MQX_SCOPED_SPAN(op_span, "negacyclic.polymul");
    const NttPlan& plan = tables_->plan();
    checkSpans(f, out, plan.n(), "NegacyclicEngine::polymul");
    checkSpans(g, out, plan.n(), "NegacyclicEngine::polymul");
    forward(f, buf_b_.span());
    forward(g, buf_c_.span());
    // Point-wise product in place over buf_b_ (exact alias).
    blas::vmul(backend_, plan.modulus(), buf_b_.span(), buf_c_.span(),
               buf_b_.span());
    inverse(buf_b_.span(), out);
}

std::vector<U128>
NegacyclicEngine::forward(const std::vector<U128>& input)
{
    checkArg(input.size() == tables_->plan().n(),
             "NegacyclicEngine::forward: size mismatch");
    ResidueVector in = ResidueVector::fromU128(input);
    forward(in.span(), in.span()); // in-place: exact alias is legal
    return in.toU128();
}

std::vector<U128>
NegacyclicEngine::inverse(const std::vector<U128>& input)
{
    checkArg(input.size() == tables_->plan().n(),
             "NegacyclicEngine::inverse: size mismatch");
    ResidueVector in = ResidueVector::fromU128(input);
    inverse(in.span(), in.span());
    return in.toU128();
}

std::vector<U128>
NegacyclicEngine::pointwiseMul(const std::vector<U128>& f_eval,
                               const std::vector<U128>& g_eval)
{
    checkArg(f_eval.size() == tables_->plan().n() &&
                 g_eval.size() == tables_->plan().n(),
             "NegacyclicEngine::pointwiseMul: size mismatch");
    ResidueVector ta = ResidueVector::fromU128(f_eval);
    ResidueVector tb = ResidueVector::fromU128(g_eval);
    pointwiseMul(ta.span(), tb.span(), ta.span());
    return ta.toU128();
}

void
NegacyclicEngine::pointwiseAccumulate(ResidueVector& acc,
                                      const std::vector<U128>& f_eval,
                                      const std::vector<U128>& g_eval)
{
    checkArg(f_eval.size() == tables_->plan().n() &&
                 g_eval.size() == tables_->plan().n(),
             "NegacyclicEngine::pointwiseAccumulate: size mismatch");
    ResidueVector ta = ResidueVector::fromU128(f_eval);
    ResidueVector tb = ResidueVector::fromU128(g_eval);
    pointwiseAccumulate(acc.span(), ta.span(), tb.span());
}

std::vector<U128>
NegacyclicEngine::polymulNegacyclic(const std::vector<U128>& f,
                                    const std::vector<U128>& g)
{
    checkArg(f.size() == tables_->plan().n() &&
                 g.size() == tables_->plan().n(),
             "NegacyclicEngine::polymulNegacyclic: size mismatch");
    ResidueVector tf = ResidueVector::fromU128(f);
    ResidueVector tg = ResidueVector::fromU128(g);
    polymul(tf.span(), tg.span(), tf.span());
    return tf.toU128();
}

NegacyclicWorkspacePool::Lease::~Lease()
{
    if (pool_ && engine_)
        pool_->release(std::move(engine_));
}

NegacyclicWorkspacePool::Lease
NegacyclicWorkspacePool::acquire(
    std::shared_ptr<const NegacyclicTables> tables, Backend backend,
    const robust::CancelToken* cancel)
{
    // Before any accounting: an injected acquire failure must leave
    // leasedCount() untouched, or the balance tests would blame the
    // pool for a lease that never existed.
    MQX_FAULT_POINT("workspace_pool.acquire");
    std::unique_ptr<NegacyclicEngine> engine;
    bool fresh = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (!free_.empty()) {
                engine = std::move(free_.back());
                free_.pop_back();
                break;
            }
            if (max_workspaces_ == 0 || live_ < max_workspaces_) {
                ++live_; // claim the slot before unlocking to construct
                fresh = true;
                break;
            }
            // Saturated: wait for a lease to return. Poll the token at
            // 1 ms so a cancellation/deadline that lands mid-wait
            // unblocks promptly instead of when the pool next drains.
            if (cancel) {
                cancel->checkpoint("workspace_pool.acquire");
                available_cv_.wait_for(lock, std::chrono::milliseconds(1));
            } else {
                available_cv_.wait(lock);
            }
        }
    }
    if (fresh) {
        try {
            engine = std::make_unique<NegacyclicEngine>(std::move(tables),
                                                        backend);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            --live_; // slot never materialized; let waiters retry
            available_cv_.notify_one();
            throw;
        }
    } else {
        engine->rebind(std::move(tables), backend);
    }
    leased_.fetch_add(1, std::memory_order_acq_rel);
    total_leases_.fetch_add(1, std::memory_order_relaxed);
    return Lease(this, std::move(engine));
}

size_t
NegacyclicWorkspacePool::idleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size();
}

void
NegacyclicWorkspacePool::release(std::unique_ptr<NegacyclicEngine> engine)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(std::move(engine));
    }
    leased_.fetch_sub(1, std::memory_order_acq_rel);
    available_cv_.notify_one();
}

void
negacyclicConvolutionInto(const Modulus& modulus, const std::vector<U128>& f,
                          const std::vector<U128>& g, std::vector<U128>& out,
                          std::vector<U128>& full_scratch)
{
    checkArg(f.size() == g.size() && !f.empty(),
             "negacyclicConvolution: length mismatch");
    checkArg(&out != &full_scratch && &out != &f && &out != &g &&
                 &full_scratch != &f && &full_scratch != &g,
             "negacyclicConvolutionInto: aliased output/scratch");
    size_t n = f.size();
    // assign() reuses the scratch's capacity across calls — a caller
    // looping over channels/trials no longer grows a fresh 2n-1 product
    // vector per iteration.
    schoolbookPolyMulInto(modulus, f, g, full_scratch);
    out.assign(n, U128{0});
    for (size_t i = 0; i < full_scratch.size(); ++i) {
        if (i < n)
            out[i] = modulus.add(out[i], full_scratch[i]);
        else
            out[i - n] = modulus.sub(out[i - n], full_scratch[i]); // x^n = -1
    }
}

std::vector<U128>
negacyclicConvolution(const Modulus& modulus, const std::vector<U128>& f,
                      const std::vector<U128>& g)
{
    std::vector<U128> out, full;
    negacyclicConvolutionInto(modulus, f, g, out, full);
    return out;
}

} // namespace ntt
} // namespace mqx
