/**
 * @file
 * Negacyclic NTT implementation.
 */
#include "ntt/negacyclic.h"

#include <utility>

#include "blas/blas.h"
#include "ntt/reference_ntt.h"

namespace mqx {
namespace ntt {

NegacyclicEngine::NegacyclicEngine(const NttPrime& prime, size_t n,
                                   Backend backend)
    : NegacyclicEngine(std::make_shared<const NttPlan>(prime, n), backend)
{
}

namespace {

std::shared_ptr<const NttPlan>
requirePlan(std::shared_ptr<const NttPlan> plan)
{
    checkArg(plan != nullptr, "NegacyclicTables: null plan");
    return plan;
}

std::shared_ptr<const NegacyclicTables>
requireTables(std::shared_ptr<const NegacyclicTables> tables)
{
    checkArg(tables != nullptr, "NegacyclicEngine: null tables");
    return tables;
}

} // namespace

NegacyclicTables::NegacyclicTables(std::shared_ptr<const NttPlan> plan)
    : plan_(requirePlan(std::move(plan))), twist_(plan_->n()),
      untwist_(plan_->n())
{
    const size_t n = plan_->n();
    const Modulus& m = plan_->modulus();
    // psi: primitive 2n-th root with psi^2 == omega. rootOfUnity gives a
    // 2n-order element; square it and, since both psi^2 and omega
    // generate the same cyclic group of order n, re-derive the plan's
    // omega as a power of psi^2 is unnecessary — instead pick psi as a
    // square root of the plan's omega directly: psi = r^((order
    // alignment)). Simplest robust approach: search k odd with
    // r^k == candidate such that candidate^2 == omega, i.e. candidate =
    // r * omega^j where r^2 * omega^(2j) == omega. We use the standard
    // trick: r has order 2n, r^2 has order n, so omega = (r^2)^t for
    // some t coprime to n; then psi = r^t satisfies psi^2 = omega and
    // psi has order 2n (t odd).
    U128 r = rootOfUnity(m, U128{static_cast<uint64_t>(2 * n)});
    U128 r2 = m.mul(r, r);
    // Find t: omega = r2^t by baby-step enumeration (setup path; n is a
    // power of two and this is O(n) worst case).
    U128 acc{1};
    uint64_t t = 0;
    bool found = false;
    for (uint64_t i = 0; i < 2 * n; ++i) {
        if (acc == plan_->omega()) {
            t = i;
            found = true;
            break;
        }
        acc = m.mul(acc, r2);
    }
    checkArg(found, "NegacyclicTables: omega not in <r^2> (internal)");
    if ((t & 1) == 0)
        t += n; // r2 has order n: exponent t + n gives the same omega,
                // and one of t, t+n is odd (n even for n >= 2)
    psi_ = m.pow(r, U128{t});
    checkArg(m.mul(psi_, psi_) == plan_->omega(),
             "NegacyclicTables: psi^2 != omega (internal)");

    U128 psi_inv = m.inverse(psi_);
    U128 acc_f{1}, acc_i{1};
    for (size_t i = 0; i < n; ++i) {
        twist_.set(i, acc_f);
        untwist_.set(i, acc_i);
        acc_f = m.mul(acc_f, psi_);
        acc_i = m.mul(acc_i, psi_inv);
    }
}

NegacyclicEngine::NegacyclicEngine(const NttPrime& prime, size_t n)
    : NegacyclicEngine(prime, n, bestBackend())
{
}

NegacyclicEngine::NegacyclicEngine(std::shared_ptr<const NttPlan> plan,
                                   Backend backend)
    : NegacyclicEngine(
          std::make_shared<const NegacyclicTables>(std::move(plan)), backend)
{
}

NegacyclicEngine::NegacyclicEngine(
    std::shared_ptr<const NegacyclicTables> tables, Backend backend)
    : tables_(requireTables(std::move(tables))), backend_(backend),
      buf_a_(tables_->plan().n()), buf_b_(tables_->plan().n()),
      buf_c_(tables_->plan().n()), scratch_(tables_->plan().n())
{
}

std::vector<U128>
NegacyclicEngine::forward(const std::vector<U128>& input)
{
    const NttPlan& plan = tables_->plan();
    checkArg(input.size() == plan.n(),
             "NegacyclicEngine::forward: size mismatch");
    ResidueVector in = ResidueVector::fromU128(input);
    // Twist then cyclic forward.
    blas::vmul(backend_, plan.modulus(), in.span(), tables_->twist().span(),
               buf_a_.span());
    ntt::forward(plan, backend_, buf_a_.span(), buf_b_.span(),
                 scratch_.span());
    return buf_b_.toU128();
}

std::vector<U128>
NegacyclicEngine::inverse(const std::vector<U128>& input)
{
    const NttPlan& plan = tables_->plan();
    checkArg(input.size() == plan.n(),
             "NegacyclicEngine::inverse: size mismatch");
    ResidueVector in = ResidueVector::fromU128(input);
    ntt::inverse(plan, backend_, in.span(), buf_a_.span(), scratch_.span());
    blas::vmul(backend_, plan.modulus(), buf_a_.span(),
               tables_->untwist().span(), buf_b_.span());
    return buf_b_.toU128();
}

std::vector<U128>
NegacyclicEngine::pointwiseMul(const std::vector<U128>& f_eval,
                               const std::vector<U128>& g_eval)
{
    const NttPlan& plan = tables_->plan();
    checkArg(f_eval.size() == plan.n() && g_eval.size() == plan.n(),
             "NegacyclicEngine::pointwiseMul: size mismatch");
    ResidueVector ta = ResidueVector::fromU128(f_eval);
    ResidueVector tb = ResidueVector::fromU128(g_eval);
    blas::vmul(backend_, plan.modulus(), ta.span(), tb.span(),
               buf_c_.span());
    return buf_c_.toU128();
}

void
NegacyclicEngine::pointwiseAccumulate(ResidueVector& acc,
                                      const std::vector<U128>& f_eval,
                                      const std::vector<U128>& g_eval)
{
    const NttPlan& plan = tables_->plan();
    checkArg(acc.size() == plan.n() && f_eval.size() == plan.n() &&
                 g_eval.size() == plan.n(),
             "NegacyclicEngine::pointwiseAccumulate: size mismatch");
    ResidueVector ta = ResidueVector::fromU128(f_eval);
    ResidueVector tb = ResidueVector::fromU128(g_eval);
    blas::vmul(backend_, plan.modulus(), ta.span(), tb.span(),
               buf_c_.span());
    // Sum into a scratch buffer, then swap it in: the accumulator
    // never round-trips through U128 form and no backend is asked to
    // write a vadd output over one of its inputs.
    blas::vadd(backend_, plan.modulus(), acc.span(), buf_c_.span(),
               buf_a_.span());
    std::swap(acc, buf_a_);
}

std::vector<U128>
NegacyclicEngine::polymulNegacyclic(const std::vector<U128>& f,
                                    const std::vector<U128>& g)
{
    const NttPlan& plan = tables_->plan();
    checkArg(f.size() == plan.n() && g.size() == plan.n(),
             "NegacyclicEngine::polymulNegacyclic: size mismatch");
    return inverse(pointwiseMul(forward(f), forward(g)));
}

std::vector<U128>
negacyclicConvolution(const Modulus& modulus, const std::vector<U128>& f,
                      const std::vector<U128>& g)
{
    checkArg(f.size() == g.size() && !f.empty(),
             "negacyclicConvolution: length mismatch");
    size_t n = f.size();
    std::vector<U128> full = schoolbookPolyMul(modulus, f, g);
    full.resize(2 * n - 1, U128{0});
    std::vector<U128> out(n, U128{0});
    for (size_t i = 0; i < full.size(); ++i) {
        if (i < n)
            out[i] = modulus.add(out[i], full[i]);
        else
            out[i - n] = modulus.sub(out[i - n], full[i]); // x^n = -1
    }
    return out;
}

} // namespace ntt
} // namespace mqx
