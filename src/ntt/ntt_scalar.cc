/**
 * @file
 * Optimized scalar Pease NTT (paper Section 3.1 tier).
 *
 * Uses the native-128-bit scalar modular arithmetic — "used for
 * benchmarking, as it allows the compiler to exploit specialized
 * assembly instructions such as add with carry" — in the same
 * constant-geometry dataflow as the SIMD backends. Both reduction
 * strategies are provided: the Barrett baseline and the Shoup-lazy
 * steady state (see pease_impl.h for the range discipline).
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"

namespace mqx {
namespace ntt {
namespace backends {

namespace {

void
forwardStageScalar(const Modulus& m, const mod::Barrett<uint64_t>& br,
                   const uint64_t* src_hi, const uint64_t* src_lo,
                   uint64_t* dst_hi, uint64_t* dst_lo, const uint64_t* tw_hi,
                   const uint64_t* tw_lo, size_t h, int s, MulAlgo algo)
{
    for (size_t j = 0; j < h; ++j) {
        size_t e = NttPlan::stageTwiddleIndex(s, j);
        U128 a = U128::fromParts(src_hi[j], src_lo[j]);
        U128 b = U128::fromParts(src_hi[j + h], src_lo[j + h]);
        U128 w = U128::fromParts(tw_hi[e], tw_lo[e]);
        U128 u = m.add(a, b);
        mod::DW<uint64_t> d = mod::toDw(m.sub(a, b));
        mod::DW<uint64_t> dw = mod::toDw(w);
        auto v = algo == MulAlgo::Schoolbook ? mod::mulModSchool(d, dw, br)
                                             : mod::mulModKaratsuba(d, dw, br);
        dst_hi[2 * j] = u.hi;
        dst_lo[2 * j] = u.lo;
        dst_hi[2 * j + 1] = v.hi;
        dst_lo[2 * j + 1] = v.lo;
    }
}

void
inverseStageScalar(const Modulus& m, const mod::Barrett<uint64_t>& br,
                   const uint64_t* src_hi, const uint64_t* src_lo,
                   uint64_t* dst_hi, uint64_t* dst_lo, const uint64_t* tw_hi,
                   const uint64_t* tw_lo, size_t h, int s, MulAlgo algo)
{
    for (size_t j = 0; j < h; ++j) {
        size_t e = NttPlan::stageTwiddleIndex(s, j);
        U128 u = U128::fromParts(src_hi[2 * j], src_lo[2 * j]);
        mod::DW<uint64_t> v{src_hi[2 * j + 1], src_lo[2 * j + 1]};
        mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
        auto tm = algo == MulAlgo::Schoolbook ? mod::mulModSchool(v, w, br)
                                              : mod::mulModKaratsuba(v, w, br);
        U128 t = mod::fromDw(tm);
        U128 x0 = m.add(u, t);
        U128 x1 = m.sub(u, t);
        dst_hi[j] = x0.hi;
        dst_lo[j] = x0.lo;
        dst_hi[j + h] = x1.hi;
        dst_lo[j + h] = x1.lo;
    }
}

void
forwardScalarBarrett(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    const auto& br = mod.barrett();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = 0; s < m; ++s) {
        DSpan dst = bufs[target];
        forwardStageScalar(mod, br, src_hi, src_lo, dst.hi, dst.lo,
                           plan.twiddleHi(), plan.twiddleLo(), h, s, algo);
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

void
inverseScalarBarrett(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    const auto& br = mod.barrett();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        inverseStageScalar(mod, br, src_hi, src_lo, dst.hi, dst.lo,
                           plan.twiddleInvHi(), plan.twiddleInvLo(), h, s,
                           algo);
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    const mod::DW<uint64_t> dn = mod::toDw(plan.nInv());
    for (size_t i = 0; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = algo == MulAlgo::Schoolbook ? mod::mulModSchool(x, dn, br)
                                             : mod::mulModKaratsuba(x, dn, br);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

void
forwardScalarLazy(const NttPlan& plan, DConstSpan in, DSpan out,
                  DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            detail::forwardButterflyLazyScalar(
                q, q2, src_hi, src_lo, dst.hi, dst.lo, plan.twiddleHi(),
                plan.twiddleLo(), plan.twiddleShoupHi(), plan.twiddleShoupLo(),
                j, h, s, last, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

void
inverseScalarLazy(const NttPlan& plan, DConstSpan in, DSpan out,
                  DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            detail::inverseButterflyLazyScalar(
                q, q2, src_hi, src_lo, dst.hi, dst.lo, plan.twiddleInvHi(),
                plan.twiddleInvLo(), plan.twiddleInvShoupHi(),
                plan.twiddleInvShoupLo(), j, h, s, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    const mod::DW<uint64_t> dn = mod::toDw(plan.nInv());
    const mod::DW<uint64_t> dnq = mod::toDw(plan.nInvShoup());
    for (size_t i = 0; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = mod::condSubDw(mod::mulModShoup(x, dn, dnq, q, algo), q);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

} // namespace

void
forwardScalar(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo, Reduction red)
{
    detail::validateNttArgs(plan, in, out, scratch);
    if (red == Reduction::ShoupLazy)
        forwardScalarLazy(plan, in, out, scratch, algo);
    else
        forwardScalarBarrett(plan, in, out, scratch, algo);
}

void
inverseScalar(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo, Reduction red)
{
    detail::validateNttArgs(plan, in, out, scratch);
    if (red == Reduction::ShoupLazy)
        inverseScalarLazy(plan, in, out, scratch, algo);
    else
        inverseScalarBarrett(plan, in, out, scratch, algo);
}

void
vmulShoupScalar(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
                DSpan c, MulAlgo algo)
{
    checkArg(a.n == t.n && a.n == tq.n && a.n == c.n,
             "vmulShoup: length mismatch");
    const mod::DW<uint64_t> q = mod::toDw(m.value());
    for (size_t i = 0; i < a.n; ++i) {
        mod::DW<uint64_t> x{a.hi[i], a.lo[i]};
        mod::DW<uint64_t> w{t.hi[i], t.lo[i]};
        mod::DW<uint64_t> wq{tq.hi[i], tq.lo[i]};
        auto r = mod::condSubDw(mod::mulModShoup(x, w, wq, q, algo), q);
        c.hi[i] = r.hi;
        c.lo[i] = r.lo;
    }
}

} // namespace backends
} // namespace ntt
} // namespace mqx
