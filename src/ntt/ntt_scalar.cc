/**
 * @file
 * Optimized scalar Pease NTT (paper Section 3.1 tier).
 *
 * Uses the native-128-bit scalar modular arithmetic — "used for
 * benchmarking, as it allows the compiler to exploit specialized
 * assembly instructions such as add with carry" — in the same
 * constant-geometry dataflow as the SIMD backends. Both reduction
 * strategies are provided: the Barrett baseline and the Shoup-lazy
 * steady state (see pease_impl.h for the range discipline).
 */
#include "ntt/ntt_backends.h"

#include "ntt/pease_impl.h"

namespace mqx {
namespace ntt {
namespace backends {

namespace {

void
forwardStageScalar(const Modulus& m, const mod::Barrett<uint64_t>& br,
                   const uint64_t* src_hi, const uint64_t* src_lo,
                   uint64_t* dst_hi, uint64_t* dst_lo, const uint64_t* tw_hi,
                   const uint64_t* tw_lo, size_t h, int s, MulAlgo algo)
{
    for (size_t j = 0; j < h; ++j) {
        size_t e = NttPlan::stageTwiddleIndex(s, j);
        U128 a = U128::fromParts(src_hi[j], src_lo[j]);
        U128 b = U128::fromParts(src_hi[j + h], src_lo[j + h]);
        U128 w = U128::fromParts(tw_hi[e], tw_lo[e]);
        U128 u = m.add(a, b);
        mod::DW<uint64_t> d = mod::toDw(m.sub(a, b));
        mod::DW<uint64_t> dw = mod::toDw(w);
        auto v = algo == MulAlgo::Schoolbook ? mod::mulModSchool(d, dw, br)
                                             : mod::mulModKaratsuba(d, dw, br);
        dst_hi[2 * j] = u.hi;
        dst_lo[2 * j] = u.lo;
        dst_hi[2 * j + 1] = v.hi;
        dst_lo[2 * j + 1] = v.lo;
    }
}

void
inverseStageScalar(const Modulus& m, const mod::Barrett<uint64_t>& br,
                   const uint64_t* src_hi, const uint64_t* src_lo,
                   uint64_t* dst_hi, uint64_t* dst_lo, const uint64_t* tw_hi,
                   const uint64_t* tw_lo, size_t h, int s, MulAlgo algo)
{
    for (size_t j = 0; j < h; ++j) {
        size_t e = NttPlan::stageTwiddleIndex(s, j);
        U128 u = U128::fromParts(src_hi[2 * j], src_lo[2 * j]);
        mod::DW<uint64_t> v{src_hi[2 * j + 1], src_lo[2 * j + 1]};
        mod::DW<uint64_t> w{tw_hi[e], tw_lo[e]};
        auto tm = algo == MulAlgo::Schoolbook ? mod::mulModSchool(v, w, br)
                                              : mod::mulModKaratsuba(v, w, br);
        U128 t = mod::fromDw(tm);
        U128 x0 = m.add(u, t);
        U128 x1 = m.sub(u, t);
        dst_hi[j] = x0.hi;
        dst_lo[j] = x0.lo;
        dst_hi[j + h] = x1.hi;
        dst_lo[j + h] = x1.lo;
    }
}

void
forwardScalarBarrett(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    const auto& br = mod.barrett();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = 0; s < m; ++s) {
        DSpan dst = bufs[target];
        forwardStageScalar(mod, br, src_hi, src_lo, dst.hi, dst.lo,
                           plan.twiddleHi(), plan.twiddleLo(), h, s, algo);
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

void
inverseScalarBarrett(const NttPlan& plan, DConstSpan in, DSpan out,
                     DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const Modulus& mod = plan.modulus();
    const auto& br = mod.barrett();

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        inverseStageScalar(mod, br, src_hi, src_lo, dst.hi, dst.lo,
                           plan.twiddleInvHi(), plan.twiddleInvLo(), h, s,
                           algo);
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    const mod::DW<uint64_t> dn = mod::toDw(plan.nInv());
    for (size_t i = 0; i < plan.n(); ++i) {
        mod::DW<uint64_t> x{out.hi[i], out.lo[i]};
        auto r = algo == MulAlgo::Schoolbook ? mod::mulModSchool(x, dn, br)
                                             : mod::mulModKaratsuba(x, dn, br);
        out.hi[i] = r.hi;
        out.lo[i] = r.lo;
    }
}

void
forwardScalarLazy(const NttPlan& plan, DConstSpan in, DSpan out,
                  DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = 0; s < m; ++s) {
        const bool last = s == m - 1;
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            detail::forwardButterflyLazyScalar(
                q, q2, src_hi, src_lo, dst.hi, dst.lo, plan.twiddleHi(),
                plan.twiddleLo(), plan.twiddleShoupHi(), plan.twiddleShoupLo(),
                j, h, s, last, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

void
inverseScalarLazy(const NttPlan& plan, DConstSpan in, DSpan out,
                  DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);

    DSpan bufs[2] = {out, scratch};
    int target = (m % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    for (int s = m - 1; s >= 0; --s) {
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            detail::inverseButterflyLazyScalar(
                q, q2, src_hi, src_lo, dst.hi, dst.lo, plan.twiddleInvHi(),
                plan.twiddleInvLo(), plan.twiddleInvShoupHi(),
                plan.twiddleInvShoupLo(), j, h, s, algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }

    const mod::DW<uint64_t> dn = mod::toDw(plan.nInv());
    const mod::DW<uint64_t> dnq = mod::toDw(plan.nInvShoup());
    for (size_t i = 0; i < plan.n(); ++i) {
        detail::mulShoupCanonElementScalar(q, out.hi, out.lo, out.hi, out.lo,
                                           dn, dnq, i, algo);
    }
}

/** Fused radix-4 forward (see pease_impl.h): ceil(logn/2) sweeps. */
void
forwardScalarLazy4(const NttPlan& plan, DConstSpan in, DSpan out,
                   DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleHi();
    const uint64_t* tw_lo = plan.twiddleLo();
    const uint64_t* twq_hi = plan.twiddleShoupHi();
    const uint64_t* twq_lo = plan.twiddleShoupLo();

    DSpan bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    int s = 0;
    if (m % 2 == 1) {
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            detail::forwardButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, 0, m == 1,
                                               algo);
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
        s = 1;
    }
    for (; s + 1 < m; s += 2) {
        const bool last = s + 2 == m;
        DSpan dst = bufs[target];
        // The three twiddles are constant over runs of 2^s butterflies;
        // hoist their loads out of the inner loop (the compiler cannot:
        // the dst stores might alias the tables for all it knows).
        const size_t run = size_t{1} << s; // divides h2 (s <= logn - 2)
        for (size_t base = 0; base < h2; base += run) {
            const size_t e0 = base, e1 = base + h2, eb = 2 * base;
            const mod::DW<uint64_t> w0{tw_hi[e0], tw_lo[e0]};
            const mod::DW<uint64_t> w0q{twq_hi[e0], twq_lo[e0]};
            const mod::DW<uint64_t> w1{tw_hi[e1], tw_lo[e1]};
            const mod::DW<uint64_t> w1q{twq_hi[e1], twq_lo[e1]};
            const mod::DW<uint64_t> wb{tw_hi[eb], tw_lo[eb]};
            const mod::DW<uint64_t> wbq{twq_hi[eb], twq_lo[eb]};
            for (size_t p = base; p < base + run; ++p) {
                detail::forwardButterfly4LazyCore(q, q2, src_hi, src_lo,
                                                  dst.hi, dst.lo, w0, w0q,
                                                  w1, w1q, wb, wbq, p, h,
                                                  last, algo);
            }
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
}

/** Fused radix-4 inverse + the n^-1 Shoup scaling pass. */
void
inverseScalarLazy4(const NttPlan& plan, DConstSpan in, DSpan out,
                   DSpan scratch, MulAlgo algo)
{
    const size_t h = plan.half();
    const size_t h2 = h / 2;
    const int m = plan.logn();
    const mod::DW<uint64_t> q = mod::toDw(plan.modulus().value());
    const mod::DW<uint64_t> q2 = mod::shl1Dw(q);
    const uint64_t* tw_hi = plan.twiddleInvHi();
    const uint64_t* tw_lo = plan.twiddleInvLo();
    const uint64_t* twq_hi = plan.twiddleInvShoupHi();
    const uint64_t* twq_lo = plan.twiddleInvShoupLo();

    DSpan bufs[2] = {out, scratch};
    const int passes = (m + 1) / 2;
    int target = (passes % 2 == 1) ? 0 : 1;
    const uint64_t* src_hi = in.hi;
    const uint64_t* src_lo = in.lo;
    int s = m - 1;
    for (; s >= 1; s -= 2) {
        const int sl = s - 1;
        DSpan dst = bufs[target];
        // Same run-split twiddle hoisting as the forward pass.
        const size_t run = size_t{1} << sl;
        for (size_t base = 0; base < h2; base += run) {
            const size_t e0 = base, e1 = base + h2, eb = 2 * base;
            const mod::DW<uint64_t> w0{tw_hi[e0], tw_lo[e0]};
            const mod::DW<uint64_t> w0q{twq_hi[e0], twq_lo[e0]};
            const mod::DW<uint64_t> w1{tw_hi[e1], tw_lo[e1]};
            const mod::DW<uint64_t> w1q{twq_hi[e1], twq_lo[e1]};
            const mod::DW<uint64_t> wb{tw_hi[eb], tw_lo[eb]};
            const mod::DW<uint64_t> wbq{twq_hi[eb], twq_lo[eb]};
            for (size_t p = base; p < base + run; ++p) {
                detail::inverseButterfly4LazyCore(q, q2, src_hi, src_lo,
                                                  dst.hi, dst.lo, w0, w0q,
                                                  w1, w1q, wb, wbq, p, h,
                                                  algo);
            }
        }
        src_hi = dst.hi;
        src_lo = dst.lo;
        target ^= 1;
    }
    if (s == 0) {
        DSpan dst = bufs[target];
        for (size_t j = 0; j < h; ++j) {
            detail::inverseButterflyLazyScalar(q, q2, src_hi, src_lo, dst.hi,
                                               dst.lo, tw_hi, tw_lo, twq_hi,
                                               twq_lo, j, h, 0, algo);
        }
    }

    const mod::DW<uint64_t> dn = mod::toDw(plan.nInv());
    const mod::DW<uint64_t> dnq = mod::toDw(plan.nInvShoup());
    for (size_t i = 0; i < plan.n(); ++i) {
        detail::mulShoupCanonElementScalar(q, out.hi, out.lo, out.hi, out.lo,
                                           dn, dnq, i, algo);
    }
}

} // namespace

void
forwardScalar(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo, Reduction red, StageFusion fusion)
{
    detail::validateNttArgs(plan, in, out, scratch);
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            forwardScalarLazy4(plan, in, out, scratch, algo);
        else
            forwardScalarLazy(plan, in, out, scratch, algo);
    } else {
        forwardScalarBarrett(plan, in, out, scratch, algo);
    }
}

void
inverseScalar(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch,
              MulAlgo algo, Reduction red, StageFusion fusion)
{
    detail::validateNttArgs(plan, in, out, scratch);
    if (red == Reduction::ShoupLazy) {
        if (fusion == StageFusion::Radix4)
            inverseScalarLazy4(plan, in, out, scratch, algo);
        else
            inverseScalarLazy(plan, in, out, scratch, algo);
    } else {
        inverseScalarBarrett(plan, in, out, scratch, algo);
    }
}

void
vmulShoupScalar(const Modulus& m, DConstSpan a, DConstSpan t, DConstSpan tq,
                DSpan c, MulAlgo algo)
{
    checkArg(a.n == t.n && a.n == tq.n && a.n == c.n,
             "vmulShoup: length mismatch");
    const mod::DW<uint64_t> q = mod::toDw(m.value());
    for (size_t i = 0; i < a.n; ++i) {
        detail::mulShoupCanonElementScalar(
            q, a.hi, a.lo, c.hi, c.lo, mod::DW<uint64_t>{t.hi[i], t.lo[i]},
            mod::DW<uint64_t>{tq.hi[i], tq.lo[i]}, i, algo);
    }
}

void
forwardBatchScalar(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                   DSpan scratch, MulAlgo algo)
{
    peaseForwardBatchScalarImpl(plan, il, in, out, scratch, algo);
}

void
inverseBatchScalar(const NttPlan& plan, size_t il, DConstSpan in, DSpan out,
                   DSpan scratch, MulAlgo algo)
{
    peaseInverseBatchScalarImpl(plan, il, in, out, scratch, algo);
}

void
vmulShoupBatchScalar(const Modulus& m, size_t il, DConstSpan a, DConstSpan t,
                     DConstSpan tq, DSpan c, MulAlgo algo)
{
    vmulShoupBatchScalarImpl(m, il, a, t, tq, c, algo);
}

} // namespace backends
} // namespace ntt
} // namespace mqx
