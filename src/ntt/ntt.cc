/**
 * @file
 * Public NTT dispatch and the convenience Engine.
 */
#include "ntt/ntt.h"

#include "core/config.h"
#include "ntt/ntt_backends.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace ntt {

namespace {

void
requireAvailable(Backend backend)
{
    if (!backendAvailable(backend)) {
        throw BackendUnavailable("NTT backend not available on this host: " +
                                 backendName(backend));
    }
}

/** Route descriptor for the four-step blocked driver (blocked.cc). */
detail::BlockedRoute
makeRoute(Backend backend)
{
    detail::BlockedRoute route;
    route.backend = backend;
    if (backend == Backend::MqxEmulate || backend == Backend::MqxPisa) {
        route.use_mqx = true;
        route.pisa = backend == Backend::MqxPisa;
    }
    return route;
}

// Referenced only when the MQX TUs are compiled in.
[[maybe_unused]] detail::BlockedRoute
makeRoute(MqxVariant variant, bool pisa)
{
    detail::BlockedRoute route;
    route.backend = pisa ? Backend::MqxPisa : Backend::MqxEmulate;
    route.use_mqx = true;
    route.variant = variant;
    route.pisa = pisa;
    return route;
}

} // namespace

StageFusion
resolveStageFusion(Backend backend, size_t n, StageFusion fusion)
{
    if (fusion != StageFusion::Auto)
        return fusion;
    // BENCH_ntt.json (committed): Scalar fused_speedup is 1.11-1.21x at
    // every measured n, so it always fuses. Every vector/MQX tier
    // measures 0.93-0.999 below n = 65536 (the shuffle-heavy fused
    // bodies lose to the plain radix-2 sweeps while the working set is
    // cache-resident) and is neutral at 65536, where fewer sweeps start
    // to matter — so they keep radix-2 below that threshold.
    if (backend == Backend::Scalar)
        return StageFusion::Radix4;
    constexpr size_t kVectorRadix4MinN = 65536;
    return n >= kVectorRadix4MinN ? StageFusion::Radix4
                                  : StageFusion::Radix2;
}

void
forward(const NttPlan& plan, Backend backend, DConstSpan in, DSpan out,
        DSpan scratch, MulAlgo algo, Reduction red, StageFusion fusion)
{
    MQX_SCOPED_SPAN(ntt_span, "ntt.forward");
    requireAvailable(backend);
    fusion = resolveStageFusion(backend, plan.n(), fusion);
    if (plan.blocked()) {
        detail::blockedForward(plan, makeRoute(backend), in, out, scratch,
                               algo, red, fusion);
        return;
    }
    switch (backend) {
      case Backend::Scalar:
        backends::forwardScalar(plan, in, out, scratch, algo, red, fusion);
        return;
      case Backend::Portable:
        backends::forwardPortable(plan, in, out, scratch, algo, red, fusion);
        return;
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        backends::forwardAvx2(plan, in, out, scratch, algo, red, fusion);
        return;
#else
        break;
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        backends::forwardAvx512(plan, in, out, scratch, algo, red, fusion);
        return;
#else
        break;
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        backends::forwardMqxImpl(plan, MqxVariant::Full, false, in, out,
                                 scratch, algo, red, fusion);
        return;
#else
        break;
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        backends::forwardMqxImpl(plan, MqxVariant::Full, true, in, out,
                                 scratch, algo, red, fusion);
        return;
#else
        break;
#endif
    }
    throw BackendUnavailable("NTT backend not compiled in: " +
                             backendName(backend));
}

void
inverse(const NttPlan& plan, Backend backend, DConstSpan in, DSpan out,
        DSpan scratch, MulAlgo algo, Reduction red, StageFusion fusion)
{
    MQX_SCOPED_SPAN(ntt_span, "ntt.inverse");
    requireAvailable(backend);
    fusion = resolveStageFusion(backend, plan.n(), fusion);
    if (plan.blocked()) {
        detail::blockedInverse(plan, makeRoute(backend), in, out, scratch,
                               algo, red, fusion);
        return;
    }
    switch (backend) {
      case Backend::Scalar:
        backends::inverseScalar(plan, in, out, scratch, algo, red, fusion);
        return;
      case Backend::Portable:
        backends::inversePortable(plan, in, out, scratch, algo, red, fusion);
        return;
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        backends::inverseAvx2(plan, in, out, scratch, algo, red, fusion);
        return;
#else
        break;
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        backends::inverseAvx512(plan, in, out, scratch, algo, red, fusion);
        return;
#else
        break;
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        backends::inverseMqxImpl(plan, MqxVariant::Full, false, in, out,
                                 scratch, algo, red, fusion);
        return;
#else
        break;
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        backends::inverseMqxImpl(plan, MqxVariant::Full, true, in, out,
                                 scratch, algo, red, fusion);
        return;
#else
        break;
#endif
    }
    throw BackendUnavailable("NTT backend not compiled in: " +
                             backendName(backend));
}

void
vmulShoup(Backend backend, const Modulus& m, DConstSpan a, DConstSpan t,
          DConstSpan tq, DSpan c, MulAlgo algo)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        backends::vmulShoupScalar(m, a, t, tq, c, algo);
        return;
      case Backend::Portable:
        backends::vmulShoupPortable(m, a, t, tq, c, algo);
        return;
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        backends::vmulShoupAvx2(m, a, t, tq, c, algo);
        return;
#else
        break;
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        backends::vmulShoupAvx512(m, a, t, tq, c, algo);
        return;
#else
        break;
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        backends::vmulShoupMqx(false, m, a, t, tq, c, algo);
        return;
#else
        break;
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        backends::vmulShoupMqx(true, m, a, t, tq, c, algo);
        return;
#else
        break;
#endif
    }
    throw BackendUnavailable("NTT backend not compiled in: " +
                             backendName(backend));
}

void
forwardMqx(const NttPlan& plan, MqxVariant variant, bool pisa, DConstSpan in,
           DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
           StageFusion fusion)
{
    requireAvailable(Backend::MqxEmulate);
    fusion = resolveStageFusion(pisa ? Backend::MqxPisa : Backend::MqxEmulate,
                                plan.n(), fusion);
#if MQX_BUILD_AVX512
    if (plan.blocked()) {
        detail::blockedForward(plan, makeRoute(variant, pisa), in, out,
                               scratch, algo, red, fusion);
        return;
    }
    backends::forwardMqxImpl(plan, variant, pisa, in, out, scratch, algo,
                             red, fusion);
#else
    (void)plan;
    (void)variant;
    (void)pisa;
    (void)in;
    (void)out;
    (void)scratch;
    (void)algo;
    (void)red;
    (void)fusion;
    throw BackendUnavailable("MQX backend not compiled in");
#endif
}

void
inverseMqx(const NttPlan& plan, MqxVariant variant, bool pisa, DConstSpan in,
           DSpan out, DSpan scratch, MulAlgo algo, Reduction red,
           StageFusion fusion)
{
    requireAvailable(Backend::MqxEmulate);
    fusion = resolveStageFusion(pisa ? Backend::MqxPisa : Backend::MqxEmulate,
                                plan.n(), fusion);
#if MQX_BUILD_AVX512
    if (plan.blocked()) {
        detail::blockedInverse(plan, makeRoute(variant, pisa), in, out,
                               scratch, algo, red, fusion);
        return;
    }
    backends::inverseMqxImpl(plan, variant, pisa, in, out, scratch, algo,
                             red, fusion);
#else
    (void)plan;
    (void)variant;
    (void)pisa;
    (void)in;
    (void)out;
    (void)scratch;
    (void)algo;
    (void)red;
    (void)fusion;
    throw BackendUnavailable("MQX backend not compiled in");
#endif
}

size_t
batchInterleave(Backend backend)
{
    switch (backend) {
      case Backend::Scalar:
      case Backend::Portable:
      case Backend::Avx2:
        return 4;
      case Backend::Avx512:
      case Backend::MqxEmulate:
      case Backend::MqxPisa:
        return 8;
    }
    return 4;
}

bool
batchSupported(const NttPlan& plan)
{
    return plan.blocked() == nullptr && plan.n() >= 16;
}

namespace {

/** Shared batch accounting: spans plus the roofline-consistent sweep
 *  counters (il lanes, each sweeping the radix-2 per-transform bytes). */
void
noteBatchSweep(const NttPlan& plan, size_t il)
{
    telemetry::counter("batch.channels_per_sweep").add(il);
    telemetry::counter("batch.bytes_swept")
        .add(il * plan.bytesSweptPerTransform(StageFusion::Radix2));
}

} // namespace

void
forwardBatch(const NttPlan& plan, Backend backend, size_t il, DConstSpan in,
             DSpan out, DSpan scratch, MulAlgo algo)
{
    MQX_SCOPED_SPAN(ntt_span, "ntt.forward_batch");
    requireAvailable(backend);
    checkArg(batchSupported(plan),
             "forwardBatch: plan not batch-eligible (blocked or too small)");
    noteBatchSweep(plan, il);
    switch (backend) {
      case Backend::Scalar:
        backends::forwardBatchScalar(plan, il, in, out, scratch, algo);
        return;
      case Backend::Portable:
        backends::forwardBatchPortable(plan, il, in, out, scratch, algo);
        return;
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        backends::forwardBatchAvx2(plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        backends::forwardBatchAvx512(plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        backends::forwardBatchMqx(false, plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        backends::forwardBatchMqx(true, plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
    }
    throw BackendUnavailable("NTT backend not compiled in: " +
                             backendName(backend));
}

void
inverseBatch(const NttPlan& plan, Backend backend, size_t il, DConstSpan in,
             DSpan out, DSpan scratch, MulAlgo algo)
{
    MQX_SCOPED_SPAN(ntt_span, "ntt.inverse_batch");
    requireAvailable(backend);
    checkArg(batchSupported(plan),
             "inverseBatch: plan not batch-eligible (blocked or too small)");
    noteBatchSweep(plan, il);
    switch (backend) {
      case Backend::Scalar:
        backends::inverseBatchScalar(plan, il, in, out, scratch, algo);
        return;
      case Backend::Portable:
        backends::inverseBatchPortable(plan, il, in, out, scratch, algo);
        return;
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        backends::inverseBatchAvx2(plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        backends::inverseBatchAvx512(plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        backends::inverseBatchMqx(false, plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        backends::inverseBatchMqx(true, plan, il, in, out, scratch, algo);
        return;
#else
        break;
#endif
    }
    throw BackendUnavailable("NTT backend not compiled in: " +
                             backendName(backend));
}

void
vmulShoupBatch(Backend backend, const Modulus& m, size_t il, DConstSpan a,
               DConstSpan t, DConstSpan tq, DSpan c, MulAlgo algo)
{
    requireAvailable(backend);
    switch (backend) {
      case Backend::Scalar:
        backends::vmulShoupBatchScalar(m, il, a, t, tq, c, algo);
        return;
      case Backend::Portable:
        backends::vmulShoupBatchPortable(m, il, a, t, tq, c, algo);
        return;
      case Backend::Avx2:
#if MQX_BUILD_AVX2
        backends::vmulShoupBatchAvx2(m, il, a, t, tq, c, algo);
        return;
#else
        break;
#endif
      case Backend::Avx512:
#if MQX_BUILD_AVX512
        backends::vmulShoupBatchAvx512(m, il, a, t, tq, c, algo);
        return;
#else
        break;
#endif
      case Backend::MqxEmulate:
#if MQX_BUILD_AVX512
        backends::vmulShoupBatchMqx(false, m, il, a, t, tq, c, algo);
        return;
#else
        break;
#endif
      case Backend::MqxPisa:
#if MQX_BUILD_AVX512
        backends::vmulShoupBatchMqx(true, m, il, a, t, tq, c, algo);
        return;
#else
        break;
#endif
    }
    throw BackendUnavailable("NTT backend not compiled in: " +
                             backendName(backend));
}

Engine::Engine(const NttPlan& plan, Backend backend)
    : plan_(plan), backend_(backend), buf_a_(plan.n()), buf_b_(plan.n()),
      buf_c_(plan.n()), scratch_(plan.n())
{
    requireAvailable(backend_);
}

Engine::Engine(const NttPlan& plan) : Engine(plan, bestBackend()) {}

std::vector<U128>
Engine::forward(const std::vector<U128>& input)
{
    checkArg(input.size() == plan_.n(), "Engine::forward: size mismatch");
    buf_in_.assignFromU128(input);
    ntt::forward(plan_, backend_, buf_in_.span(), buf_a_.span(),
                 scratch_.span());
    return buf_a_.toU128();
}

std::vector<U128>
Engine::inverse(const std::vector<U128>& input)
{
    checkArg(input.size() == plan_.n(), "Engine::inverse: size mismatch");
    buf_in_.assignFromU128(input);
    ntt::inverse(plan_, backend_, buf_in_.span(), buf_a_.span(),
                 scratch_.span());
    return buf_a_.toU128();
}

std::vector<U128>
Engine::forwardNatural(const std::vector<U128>& input)
{
    checkArg(input.size() == plan_.n(),
             "Engine::forwardNatural: size mismatch");
    buf_in_.assignFromU128(input);
    ntt::forward(plan_, backend_, buf_in_.span(), buf_a_.span(),
                 scratch_.span());
    DSpan s = buf_a_.span();
    bitReversePermute(s);
    return buf_a_.toU128();
}

std::vector<U128>
Engine::polymulCyclic(const std::vector<U128>& f, const std::vector<U128>& g)
{
    checkArg(f.size() == plan_.n() && g.size() == plan_.n(),
             "Engine::polymulCyclic: size mismatch");
    buf_in_.assignFromU128(f);
    buf_in2_.assignFromU128(g);
    ntt::forward(plan_, backend_, buf_in_.span(), buf_a_.span(),
                 scratch_.span());
    ntt::forward(plan_, backend_, buf_in2_.span(), buf_b_.span(),
                 scratch_.span());
    // Point-wise multiply in the (bit-reversed) transformed domain.
    const Modulus& m = plan_.modulus();
    for (size_t i = 0; i < plan_.n(); ++i)
        buf_c_.set(i, m.mul(buf_a_.at(i), buf_b_.at(i)));
    ntt::inverse(plan_, backend_, buf_c_.span(), buf_a_.span(),
                 scratch_.span());
    return buf_a_.toU128();
}

} // namespace ntt
} // namespace mqx
