/**
 * @file
 * Internal per-backend NTT entry points. Each lives in a translation
 * unit compiled with the matching ISA flags; the public dispatcher in
 * ntt.cc routes to them. Not part of the public API.
 */
#pragma once

#include "core/backend.h"
#include "ntt/plan.h"

namespace mqx {
namespace ntt {
namespace backends {

void forwardScalar(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void inverseScalar(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void vmulShoupScalar(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                     DSpan, MulAlgo);

void forwardPortable(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                     Reduction, StageFusion);
void inversePortable(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                     Reduction, StageFusion);
void vmulShoupPortable(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                       DSpan, MulAlgo);

void forwardAvx2(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                 Reduction, StageFusion);
void inverseAvx2(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                 Reduction, StageFusion);
void vmulShoupAvx2(const Modulus&, DConstSpan, DConstSpan, DConstSpan, DSpan,
                   MulAlgo);

void forwardAvx512(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void inverseAvx512(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void vmulShoupAvx512(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                     DSpan, MulAlgo);

void forwardMqxImpl(const NttPlan&, MqxVariant, bool pisa, DConstSpan, DSpan,
                    DSpan, MulAlgo, Reduction, StageFusion);
void inverseMqxImpl(const NttPlan&, MqxVariant, bool pisa, DConstSpan, DSpan,
                    DSpan, MulAlgo, Reduction, StageFusion);
void vmulShoupMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan,
                  DConstSpan, DSpan, MulAlgo);

} // namespace backends

namespace detail {

/**
 * Four-step blocked drivers (blocked.cc): used by the public dispatch
 * when plan.blocked() is set. @p variant/@p pisa select the MQX entry
 * points for the sub-transforms when @p use_mqx is true.
 */
struct BlockedRoute
{
    Backend backend = Backend::Scalar;
    bool use_mqx = false;
    MqxVariant variant = MqxVariant::Full;
    bool pisa = false;
};

void blockedForward(const NttPlan& plan, const BlockedRoute& route,
                    DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo,
                    Reduction red, StageFusion fusion);
void blockedInverse(const NttPlan& plan, const BlockedRoute& route,
                    DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo,
                    Reduction red, StageFusion fusion);

} // namespace detail
} // namespace ntt
} // namespace mqx
