/**
 * @file
 * Internal per-backend NTT entry points. Each lives in a translation
 * unit compiled with the matching ISA flags; the public dispatcher in
 * ntt.cc routes to them. Not part of the public API.
 */
#pragma once

#include "core/backend.h"
#include "ntt/plan.h"

namespace mqx {
namespace ntt {
namespace backends {

void forwardScalar(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction);
void inverseScalar(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction);
void vmulShoupScalar(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                     DSpan, MulAlgo);

void forwardPortable(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                     Reduction);
void inversePortable(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                     Reduction);
void vmulShoupPortable(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                       DSpan, MulAlgo);

void forwardAvx2(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                 Reduction);
void inverseAvx2(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                 Reduction);
void vmulShoupAvx2(const Modulus&, DConstSpan, DConstSpan, DConstSpan, DSpan,
                   MulAlgo);

void forwardAvx512(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction);
void inverseAvx512(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction);
void vmulShoupAvx512(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                     DSpan, MulAlgo);

void forwardMqxImpl(const NttPlan&, MqxVariant, bool pisa, DConstSpan, DSpan,
                    DSpan, MulAlgo, Reduction);
void inverseMqxImpl(const NttPlan&, MqxVariant, bool pisa, DConstSpan, DSpan,
                    DSpan, MulAlgo, Reduction);
void vmulShoupMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan,
                  DConstSpan, DSpan, MulAlgo);

} // namespace backends
} // namespace ntt
} // namespace mqx
