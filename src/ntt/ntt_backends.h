/**
 * @file
 * Internal per-backend NTT entry points. Each lives in a translation
 * unit compiled with the matching ISA flags; the public dispatcher in
 * ntt.cc routes to them. Not part of the public API.
 */
#pragma once

#include "core/backend.h"
#include "ntt/plan.h"

namespace mqx {
namespace ntt {
namespace backends {

void forwardScalar(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void inverseScalar(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void vmulShoupScalar(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                     DSpan, MulAlgo);

void forwardPortable(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                     Reduction, StageFusion);
void inversePortable(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                     Reduction, StageFusion);
void vmulShoupPortable(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                       DSpan, MulAlgo);

void forwardAvx2(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                 Reduction, StageFusion);
void inverseAvx2(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                 Reduction, StageFusion);
void vmulShoupAvx2(const Modulus&, DConstSpan, DConstSpan, DConstSpan, DSpan,
                   MulAlgo);

void forwardAvx512(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void inverseAvx512(const NttPlan&, DConstSpan, DSpan, DSpan, MulAlgo,
                   Reduction, StageFusion);
void vmulShoupAvx512(const Modulus&, DConstSpan, DConstSpan, DConstSpan,
                     DSpan, MulAlgo);

void forwardMqxImpl(const NttPlan&, MqxVariant, bool pisa, DConstSpan, DSpan,
                    DSpan, MulAlgo, Reduction, StageFusion);
void inverseMqxImpl(const NttPlan&, MqxVariant, bool pisa, DConstSpan, DSpan,
                    DSpan, MulAlgo, Reduction, StageFusion);
void vmulShoupMqx(bool pisa, const Modulus&, DConstSpan, DConstSpan,
                  DConstSpan, DSpan, MulAlgo);

// Interleaved batch entry points (ROADMAP item 2): buffers are
// il * plan.n() words per half, packed by batch::packLanes. Always the
// radix-2 Shoup-lazy wiring — word-identical per lane to every
// per-channel variant.
void forwardBatchScalar(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                        MulAlgo);
void inverseBatchScalar(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                        MulAlgo);
void vmulShoupBatchScalar(const Modulus&, size_t il, DConstSpan, DConstSpan,
                          DConstSpan, DSpan, MulAlgo);

void forwardBatchPortable(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                          MulAlgo);
void inverseBatchPortable(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                          MulAlgo);
void vmulShoupBatchPortable(const Modulus&, size_t il, DConstSpan, DConstSpan,
                            DConstSpan, DSpan, MulAlgo);

void forwardBatchAvx2(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                      MulAlgo);
void inverseBatchAvx2(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                      MulAlgo);
void vmulShoupBatchAvx2(const Modulus&, size_t il, DConstSpan, DConstSpan,
                        DConstSpan, DSpan, MulAlgo);

void forwardBatchAvx512(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                        MulAlgo);
void inverseBatchAvx512(const NttPlan&, size_t il, DConstSpan, DSpan, DSpan,
                        MulAlgo);
void vmulShoupBatchAvx512(const Modulus&, size_t il, DConstSpan, DConstSpan,
                          DConstSpan, DSpan, MulAlgo);

void forwardBatchMqx(bool pisa, const NttPlan&, size_t il, DConstSpan, DSpan,
                     DSpan, MulAlgo);
void inverseBatchMqx(bool pisa, const NttPlan&, size_t il, DConstSpan, DSpan,
                     DSpan, MulAlgo);
void vmulShoupBatchMqx(bool pisa, const Modulus&, size_t il, DConstSpan,
                       DConstSpan, DConstSpan, DSpan, MulAlgo);

} // namespace backends

namespace detail {

/**
 * Four-step blocked drivers (blocked.cc): used by the public dispatch
 * when plan.blocked() is set. @p variant/@p pisa select the MQX entry
 * points for the sub-transforms when @p use_mqx is true.
 */
struct BlockedRoute
{
    Backend backend = Backend::Scalar;
    bool use_mqx = false;
    MqxVariant variant = MqxVariant::Full;
    bool pisa = false;
};

void blockedForward(const NttPlan& plan, const BlockedRoute& route,
                    DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo,
                    Reduction red, StageFusion fusion);
void blockedInverse(const NttPlan& plan, const BlockedRoute& route,
                    DConstSpan in, DSpan out, DSpan scratch, MulAlgo algo,
                    Reduction red, StageFusion fusion);

} // namespace detail
} // namespace ntt
} // namespace mqx
