/**
 * @file
 * NTT plans: validated parameters plus every precomputed table the
 * kernels need (twiddle factors per Pease stage, inverse twiddles,
 * n^-1, Barrett constants).
 *
 * Dataflow (paper Section 3.2): we use the Pease constant-geometry
 * radix-2 NTT. Every stage has identical wiring — butterfly j reads
 * positions (j, j + n/2) and writes (2j, 2j + 1):
 *
 *     u = x[j] + x[j + n/2]                 (mod q)
 *     v = (x[j] - x[j + n/2]) * w[s][j]     (mod q)
 *     y[2j] = u;  y[2j+1] = v
 *
 * with stage-s twiddle w[s][j] = omega^((j >> s) << s). After log2(n)
 * stages the output is in bit-reversed order. The inverse transform runs
 * the transposed stages in reverse order with inverse twiddles and a
 * final scale by n^-1, consuming bit-reversed input and producing
 * natural order — so inverse(forward(x)) == x with no explicit
 * permutation, and pointwise products in the transformed domain are
 * order-consistent (the convolution path needs no bit reversal either).
 *
 * Data layout: residue vectors are stored as split hi/lo uint64_t
 * arrays ("the vectorized implementation passes in two 512-bit vectors
 * per input" — Section 3.2).
 *
 * Twiddle storage is COMPACT: stage s has only n/2^(s+1) distinct
 * twiddles (w[s][j] depends on j only through (j >> s) << s), and every
 * stage's set {omega^(k*2^s)} is a stride-2^s subsample of the single
 * power table pow[k] = omega^k, k < n/2. So the plan stores ONE hi/lo
 * power table per direction — the per-stage tables of the old stretched
 * layout (logn * n/2 entries per direction) overlap into n/2 entries —
 * and the kernels address stage s with broadcast loads (late stages,
 * run length 2^s >= lane count) or short step loads (early stages).
 * Every twiddle also carries its Shoup companion floor(w * 2^128 / q)
 * so the butterfly multiply needs no Barrett reduction; even counting
 * the companions, total twiddle bytes shrink by logn/2 (6x at n=4096).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/aligned.h"
#include "core/backend.h"
#include "core/residue_span.h"
#include "mod/modulus.h"
#include "ntt/prime.h"
#include "u128/u128.h"

namespace mqx {
namespace ntt {

using mqx::DConstSpan;
using mqx::DSpan;
using mqx::ResidueVector;

/**
 * The L2 working-set budget (bytes) that decides when a plan carries a
 * four-step blocked decomposition: a transform whose ping-pong working
 * set (3 split hi/lo buffers of n elements = 48n bytes) exceeds the
 * budget is decomposed into cache-resident sub-transforms. Reads the
 * MQX_NTT_L2_BUDGET environment variable (bytes) once; defaults to
 * 1 MiB. Pass NttPlan's l2_budget parameter explicitly to override per
 * plan (0 = never block).
 */
size_t defaultL2Budget();

/**
 * Immutable per-(q, n) precomputation shared by all backends.
 */
class NttPlan
{
  public:
    /**
     * @param modulus prime modulus (primality is verified)
     * @param n       transform size, power of two, 2 <= n, n | q - 1
     * @param l2_budget working-set budget in bytes for the four-step
     *                  blocked decomposition (see defaultL2Budget());
     *                  0 disables blocking for this plan.
     * @throws InvalidArgument when the parameters cannot support an NTT.
     */
    NttPlan(const Modulus& modulus, size_t n);
    NttPlan(const Modulus& modulus, size_t n, size_t l2_budget);

    /**
     * Plan with a caller-chosen primitive n-th root of unity (the
     * four-step driver builds its n1/n2 sub-plans with omega^n2 and
     * omega^n1 so the blocked factorization reproduces the direct
     * transform word for word).
     *
     * @throws InvalidArgument unless omega has order exactly n.
     */
    NttPlan(const Modulus& modulus, size_t n, const U128& omega,
            size_t l2_budget);

    /** Convenience: plan from an NttPrime. */
    NttPlan(const NttPrime& prime, size_t n) : NttPlan(Modulus(prime.q), n) {}
    NttPlan(const NttPrime& prime, size_t n, size_t l2_budget)
        : NttPlan(Modulus(prime.q), n, l2_budget)
    {
    }

    const Modulus& modulus() const { return mod_; }
    size_t n() const { return n_; }
    int logn() const { return logn_; }
    U128 omega() const { return omega_; }
    U128 omegaInv() const { return omega_inv_; }
    U128 nInv() const { return n_inv_; }
    /** Shoup companion of n^-1 (for the lazy inverse scaling pass). */
    U128 nInvShoup() const { return n_inv_shoup_; }

    /**
     * Index into the shared power table for butterfly j of stage s:
     * stage s uses pow[(j >> s) << s] = omega^((j >> s) << s).
     */
    static size_t
    stageTwiddleIndex(int stage, size_t j)
    {
        return (j >> stage) << stage;
    }

    /**
     * Second-layer index for the fused radix-4 butterfly p of the stage
     * pair (s, s+1): both stage-(s+1) butterflies it contains (2p and
     * 2p+1) share the single twiddle pow[2 * ((p >> s) << s)] =
     * stageTwiddleIndex(s+1, 2p) = stageTwiddleIndex(s+1, 2p+1). The
     * first layer's two twiddles are stageTwiddleIndex(s, p) and
     * stageTwiddleIndex(s, p) + n/4 (p < n/4, so both stay below n/2).
     */
    static size_t
    stageTwiddlePair(int stage, size_t p)
    {
        return ((p >> stage) << stage) << 1;
    }

    /** Distinct twiddles of stage @p s: n/2^(s+1). */
    size_t stageTwiddles(int s) const { return half() >> s; }

    /** Forward twiddle w[s][j] = omega^((j >> s) << s), j < n/2. */
    U128
    twiddle(int stage, size_t j) const
    {
        size_t idx = stageTwiddleIndex(stage, j);
        return U128::fromParts(fwd_hi_[idx], fwd_lo_[idx]);
    }

    /** Inverse twiddle w^-1[s][j]. */
    U128
    twiddleInv(int stage, size_t j) const
    {
        size_t idx = stageTwiddleIndex(stage, j);
        return U128::fromParts(inv_hi_[idx], inv_lo_[idx]);
    }

    // Shared power tables (length n/2 each): pow[k] = omega^k and its
    // Shoup companion; likewise for omega^-k. Stage s addresses them
    // through stageTwiddleIndex().
    const uint64_t* twiddleHi() const { return fwd_hi_.data(); }
    const uint64_t* twiddleLo() const { return fwd_lo_.data(); }
    const uint64_t* twiddleShoupHi() const { return fwd_sh_hi_.data(); }
    const uint64_t* twiddleShoupLo() const { return fwd_sh_lo_.data(); }
    const uint64_t* twiddleInvHi() const { return inv_hi_.data(); }
    const uint64_t* twiddleInvLo() const { return inv_lo_.data(); }
    const uint64_t* twiddleInvShoupHi() const { return inv_sh_hi_.data(); }
    const uint64_t* twiddleInvShoupLo() const { return inv_sh_lo_.data(); }

    size_t half() const { return n_ / 2; }

    /**
     * Four-step decomposition tables, present when the transform's
     * working set (48n bytes) exceeded the plan's L2 budget. The
     * transform is factored as n = n1 * n2 (n1 >= n2, both
     * cache-resident): n2 column transforms of size n1 with
     * omega_n1 = omega^n2, a twiddle fixup by omega^(j2 * k1), and n1
     * row transforms of size n2 with omega_n2 = omega^n1. The fixup
     * tables are stored in the exact layout the driver streams them in
     * (see blocked.cc) with Shoup companions so the fixup pass is one
     * vmulShoup sweep. Immutable and shared across plan copies.
     */
    struct Blocked
    {
        size_t n1 = 0; ///< column-transform size (2^ceil(logn/2))
        size_t n2 = 0; ///< row-transform size (n / n1)
        std::unique_ptr<NttPlan> col; ///< size-n1 plan, omega^n2
        std::unique_ptr<NttPlan> row; ///< size-n2 plan, omega^n1
        /// Forward fixup, n2 x n1 layout: entry j2*n1 + r1 holds
        /// omega^(j2 * bitrev(r1)) and its Shoup companion.
        AlignedVec<uint64_t> fix_hi, fix_lo, fix_sh_hi, fix_sh_lo;
        /// Inverse fixup, n1 x n2 layout: entry r1*n2 + j2 holds
        /// omega^-(bitrev(r1) * j2) and its Shoup companion.
        AlignedVec<uint64_t> ifix_hi, ifix_lo, ifix_sh_hi, ifix_sh_lo;

        /// Table bytes owned by the decomposition: both fixup direction
        /// sets (8 arrays of n words) plus the sub-plans' twiddles.
        size_t bytes() const;
    };

    /** Non-null when this plan dispatches through the blocked driver. */
    const Blocked* blocked() const { return blocked_.get(); }

    /**
     * Bytes of twiddle storage (for the paper's L2 discussion, §5.4):
     * 8 arrays (fwd/inv x value/Shoup x hi/lo) of n/2 words, plus — for
     * blocked plans — the four-step fixup tables and sub-plan twiddles.
     */
    size_t twiddleBytes() const;

    /**
     * What the pre-compaction stretched layout would occupy (logn * n/2
     * entries per direction, no Shoup companions) — the baseline for
     * the bandwidth-reduction accounting.
     */
    size_t twiddleBytesStretched() const;

    /**
     * DRAM bytes one forward (or inverse) transform sweeps over the
     * ping-pong data, by construction of the kernels: every pass reads
     * and writes n split residues (32 bytes each). Radix2 makes logn
     * passes, Radix4 ceil(logn/2); a blocked plan makes two transpose
     * sweeps plus two cache-resident row-transform sweeps plus the
     * streamed fixup tables. Twiddle traffic for direct plans is
     * excluded (the compact tables are cache-resident).
     */
    size_t bytesSweptPerTransform(StageFusion fusion) const;

  private:
    NttPlan(const Modulus& modulus, size_t n, const U128* omega,
            size_t l2_budget);

    void buildBlocked(size_t l2_budget);

    Modulus mod_;
    size_t n_ = 0;
    int logn_ = 0;
    U128 omega_{};
    U128 omega_inv_{};
    U128 n_inv_{};
    U128 n_inv_shoup_{};
    AlignedVec<uint64_t> fwd_hi_, fwd_lo_;
    AlignedVec<uint64_t> fwd_sh_hi_, fwd_sh_lo_;
    AlignedVec<uint64_t> inv_hi_, inv_lo_;
    AlignedVec<uint64_t> inv_sh_hi_, inv_sh_lo_;
    std::shared_ptr<const Blocked> blocked_;
};

/** In-place bit-reversal permutation of a split-layout vector. */
void bitReversePermute(DSpan data);

} // namespace ntt
} // namespace mqx
