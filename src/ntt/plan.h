/**
 * @file
 * NTT plans: validated parameters plus every precomputed table the
 * kernels need (twiddle factors per Pease stage, inverse twiddles,
 * n^-1, Barrett constants).
 *
 * Dataflow (paper Section 3.2): we use the Pease constant-geometry
 * radix-2 NTT. Every stage has identical wiring — butterfly j reads
 * positions (j, j + n/2) and writes (2j, 2j + 1):
 *
 *     u = x[j] + x[j + n/2]                 (mod q)
 *     v = (x[j] - x[j + n/2]) * w[s][j]     (mod q)
 *     y[2j] = u;  y[2j+1] = v
 *
 * with stage-s twiddle w[s][j] = omega^((j >> s) << s). After log2(n)
 * stages the output is in bit-reversed order. The inverse transform runs
 * the transposed stages in reverse order with inverse twiddles and a
 * final scale by n^-1, consuming bit-reversed input and producing
 * natural order — so inverse(forward(x)) == x with no explicit
 * permutation, and pointwise products in the transformed domain are
 * order-consistent (the convolution path needs no bit reversal either).
 *
 * Data layout: residue vectors are stored as split hi/lo uint64_t
 * arrays ("the vectorized implementation passes in two 512-bit vectors
 * per input" — Section 3.2). Twiddles are stored the same way, flattened
 * per stage, so SIMD kernels stream them with aligned loads.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/aligned.h"
#include "core/residue_span.h"
#include "mod/modulus.h"
#include "ntt/prime.h"
#include "u128/u128.h"

namespace mqx {
namespace ntt {

using mqx::DConstSpan;
using mqx::DSpan;
using mqx::ResidueVector;

/**
 * Immutable per-(q, n) precomputation shared by all backends.
 */
class NttPlan
{
  public:
    /**
     * @param modulus prime modulus (primality is verified)
     * @param n       transform size, power of two, 2 <= n, n | q - 1
     * @throws InvalidArgument when the parameters cannot support an NTT.
     */
    NttPlan(const Modulus& modulus, size_t n);

    /** Convenience: plan from an NttPrime. */
    NttPlan(const NttPrime& prime, size_t n) : NttPlan(Modulus(prime.q), n) {}

    const Modulus& modulus() const { return mod_; }
    size_t n() const { return n_; }
    int logn() const { return logn_; }
    U128 omega() const { return omega_; }
    U128 omegaInv() const { return omega_inv_; }
    U128 nInv() const { return n_inv_; }

    /** Forward twiddle w[s][j] = omega^((j >> s) << s), j < n/2. */
    U128
    twiddle(int stage, size_t j) const
    {
        size_t idx = static_cast<size_t>(stage) * half() + j;
        return U128::fromParts(fwd_hi_[idx], fwd_lo_[idx]);
    }

    /** Inverse twiddle w^-1[s][j]. */
    U128
    twiddleInv(int stage, size_t j) const
    {
        size_t idx = static_cast<size_t>(stage) * half() + j;
        return U128::fromParts(inv_hi_[idx], inv_lo_[idx]);
    }

    /** SIMD-layout twiddle rows (length n/2 each). */
    const uint64_t* twiddleHi(int s) const { return fwd_hi_.data() + static_cast<size_t>(s) * half(); }
    const uint64_t* twiddleLo(int s) const { return fwd_lo_.data() + static_cast<size_t>(s) * half(); }
    const uint64_t* twiddleInvHi(int s) const { return inv_hi_.data() + static_cast<size_t>(s) * half(); }
    const uint64_t* twiddleInvLo(int s) const { return inv_lo_.data() + static_cast<size_t>(s) * half(); }

    size_t half() const { return n_ / 2; }

    /** Bytes of twiddle storage (for the paper's L2 discussion, §5.4). */
    size_t twiddleBytes() const;

  private:
    Modulus mod_;
    size_t n_ = 0;
    int logn_ = 0;
    U128 omega_{};
    U128 omega_inv_{};
    U128 n_inv_{};
    AlignedVec<uint64_t> fwd_hi_, fwd_lo_;
    AlignedVec<uint64_t> inv_hi_, inv_lo_;
};

/** In-place bit-reversal permutation of a split-layout vector. */
void bitReversePermute(DSpan data);

} // namespace ntt
} // namespace mqx
