/**
 * @file
 * NTT plans: validated parameters plus every precomputed table the
 * kernels need (twiddle factors per Pease stage, inverse twiddles,
 * n^-1, Barrett constants).
 *
 * Dataflow (paper Section 3.2): we use the Pease constant-geometry
 * radix-2 NTT. Every stage has identical wiring — butterfly j reads
 * positions (j, j + n/2) and writes (2j, 2j + 1):
 *
 *     u = x[j] + x[j + n/2]                 (mod q)
 *     v = (x[j] - x[j + n/2]) * w[s][j]     (mod q)
 *     y[2j] = u;  y[2j+1] = v
 *
 * with stage-s twiddle w[s][j] = omega^((j >> s) << s). After log2(n)
 * stages the output is in bit-reversed order. The inverse transform runs
 * the transposed stages in reverse order with inverse twiddles and a
 * final scale by n^-1, consuming bit-reversed input and producing
 * natural order — so inverse(forward(x)) == x with no explicit
 * permutation, and pointwise products in the transformed domain are
 * order-consistent (the convolution path needs no bit reversal either).
 *
 * Data layout: residue vectors are stored as split hi/lo uint64_t
 * arrays ("the vectorized implementation passes in two 512-bit vectors
 * per input" — Section 3.2).
 *
 * Twiddle storage is COMPACT: stage s has only n/2^(s+1) distinct
 * twiddles (w[s][j] depends on j only through (j >> s) << s), and every
 * stage's set {omega^(k*2^s)} is a stride-2^s subsample of the single
 * power table pow[k] = omega^k, k < n/2. So the plan stores ONE hi/lo
 * power table per direction — the per-stage tables of the old stretched
 * layout (logn * n/2 entries per direction) overlap into n/2 entries —
 * and the kernels address stage s with broadcast loads (late stages,
 * run length 2^s >= lane count) or short step loads (early stages).
 * Every twiddle also carries its Shoup companion floor(w * 2^128 / q)
 * so the butterfly multiply needs no Barrett reduction; even counting
 * the companions, total twiddle bytes shrink by logn/2 (6x at n=4096).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/aligned.h"
#include "core/residue_span.h"
#include "mod/modulus.h"
#include "ntt/prime.h"
#include "u128/u128.h"

namespace mqx {
namespace ntt {

using mqx::DConstSpan;
using mqx::DSpan;
using mqx::ResidueVector;

/**
 * Immutable per-(q, n) precomputation shared by all backends.
 */
class NttPlan
{
  public:
    /**
     * @param modulus prime modulus (primality is verified)
     * @param n       transform size, power of two, 2 <= n, n | q - 1
     * @throws InvalidArgument when the parameters cannot support an NTT.
     */
    NttPlan(const Modulus& modulus, size_t n);

    /** Convenience: plan from an NttPrime. */
    NttPlan(const NttPrime& prime, size_t n) : NttPlan(Modulus(prime.q), n) {}

    const Modulus& modulus() const { return mod_; }
    size_t n() const { return n_; }
    int logn() const { return logn_; }
    U128 omega() const { return omega_; }
    U128 omegaInv() const { return omega_inv_; }
    U128 nInv() const { return n_inv_; }
    /** Shoup companion of n^-1 (for the lazy inverse scaling pass). */
    U128 nInvShoup() const { return n_inv_shoup_; }

    /**
     * Index into the shared power table for butterfly j of stage s:
     * stage s uses pow[(j >> s) << s] = omega^((j >> s) << s).
     */
    static size_t
    stageTwiddleIndex(int stage, size_t j)
    {
        return (j >> stage) << stage;
    }

    /** Distinct twiddles of stage @p s: n/2^(s+1). */
    size_t stageTwiddles(int s) const { return half() >> s; }

    /** Forward twiddle w[s][j] = omega^((j >> s) << s), j < n/2. */
    U128
    twiddle(int stage, size_t j) const
    {
        size_t idx = stageTwiddleIndex(stage, j);
        return U128::fromParts(fwd_hi_[idx], fwd_lo_[idx]);
    }

    /** Inverse twiddle w^-1[s][j]. */
    U128
    twiddleInv(int stage, size_t j) const
    {
        size_t idx = stageTwiddleIndex(stage, j);
        return U128::fromParts(inv_hi_[idx], inv_lo_[idx]);
    }

    // Shared power tables (length n/2 each): pow[k] = omega^k and its
    // Shoup companion; likewise for omega^-k. Stage s addresses them
    // through stageTwiddleIndex().
    const uint64_t* twiddleHi() const { return fwd_hi_.data(); }
    const uint64_t* twiddleLo() const { return fwd_lo_.data(); }
    const uint64_t* twiddleShoupHi() const { return fwd_sh_hi_.data(); }
    const uint64_t* twiddleShoupLo() const { return fwd_sh_lo_.data(); }
    const uint64_t* twiddleInvHi() const { return inv_hi_.data(); }
    const uint64_t* twiddleInvLo() const { return inv_lo_.data(); }
    const uint64_t* twiddleInvShoupHi() const { return inv_sh_hi_.data(); }
    const uint64_t* twiddleInvShoupLo() const { return inv_sh_lo_.data(); }

    size_t half() const { return n_ / 2; }

    /**
     * Bytes of twiddle storage (for the paper's L2 discussion, §5.4):
     * 8 arrays (fwd/inv x value/Shoup x hi/lo) of n/2 words.
     */
    size_t twiddleBytes() const;

    /**
     * What the pre-compaction stretched layout would occupy (logn * n/2
     * entries per direction, no Shoup companions) — the baseline for
     * the bandwidth-reduction accounting.
     */
    size_t twiddleBytesStretched() const;

  private:
    Modulus mod_;
    size_t n_ = 0;
    int logn_ = 0;
    U128 omega_{};
    U128 omega_inv_{};
    U128 n_inv_{};
    U128 n_inv_shoup_{};
    AlignedVec<uint64_t> fwd_hi_, fwd_lo_;
    AlignedVec<uint64_t> fwd_sh_hi_, fwd_sh_lo_;
    AlignedVec<uint64_t> inv_hi_, inv_lo_;
    AlignedVec<uint64_t> inv_sh_hi_, inv_sh_lo_;
};

/** In-place bit-reversal permutation of a split-layout vector. */
void bitReversePermute(DSpan data);

} // namespace ntt
} // namespace mqx
