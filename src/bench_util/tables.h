/**
 * @file
 * Plain-text table rendering for the figure/table regeneration harnesses.
 *
 * Every bench binary prints the same rows/series the paper reports; this
 * tiny formatter keeps those tables aligned and consistent (and emits an
 * optional CSV form for plotting).
 */
#pragma once

#include <string>
#include <vector>

namespace mqx {

/** Column-aligned text table with an optional CSV dump. */
class TextTable
{
  public:
    /** @param title printed above the table. */
    explicit TextTable(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (cells already formatted). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal rule. */
    void addRule();

    /** Render aligned text. */
    std::string render() const;

    /** Render comma-separated values (no title, no rules). */
    std::string renderCsv() const;

    /** Print render() to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == rule
};

/** Format @p v with @p digits fractional digits. */
std::string formatFixed(double v, int digits);

/** Format a ratio as e.g. "3.8x". */
std::string formatSpeedup(double v);

/** Geometric mean of @p values (ignores non-positive entries). */
double geomean(const std::vector<double>& values);

} // namespace mqx
