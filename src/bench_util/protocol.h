/**
 * @file
 * The paper's timing protocol (Section 5.1).
 *
 * "For NTTs, we report the average runtime of the final 50 iterations out
 *  of 100 runs; for BLAS operations, we report the average runtime of the
 *  final 500 iterations out of 1,000 runs. This approach allows the cache
 *  to warm up and stabilize."
 *
 * runProtocol() implements exactly that: run the kernel total_iters
 * times, discard the first total_iters - kept_iters timings, and return
 * the mean of the rest. Iteration counts scale down for slow baselines at
 * large sizes so a full figure regeneration stays interactive; the scale
 * factor is reported alongside the measurement.
 */
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace mqx {

/** Result of one measured kernel configuration. */
struct Measurement
{
    double mean_ns = 0.0;   ///< mean wall time per iteration (kept window)
    double min_ns = 0.0;    ///< fastest kept iteration
    int total_iters = 0;    ///< iterations executed
    int kept_iters = 0;     ///< iterations averaged
};

/** Monotonic nanosecond timestamp. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Run @p kernel with the paper's discard-then-average protocol.
 *
 * @param kernel      callable executing one full kernel invocation
 * @param total_iters total runs (paper: 100 NTT / 1000 BLAS)
 * @param kept_iters  final runs to average (paper: 50 NTT / 500 BLAS)
 */
Measurement runProtocol(const std::function<void()>& kernel,
                        int total_iters, int kept_iters);

/**
 * The paper's NTT protocol (100/50), scaled by @p scale in (0, 1] for
 * slow baselines. At least 4/2 iterations are always run.
 */
Measurement runNttProtocol(const std::function<void()>& kernel,
                           double scale = 1.0);

/** The paper's BLAS protocol (1000/500) with the same scaling rule. */
Measurement runBlasProtocol(const std::function<void()>& kernel,
                            double scale = 1.0);

/**
 * Nanoseconds per butterfly for an n-point radix-2 NTT measurement:
 * an n-point NTT executes (n/2) * log2(n) butterflies (Section 2.3).
 */
double nsPerButterfly(const Measurement& m, size_t n);

/** Nanoseconds per element for a length-n BLAS measurement. */
double nsPerElement(const Measurement& m, size_t n);

} // namespace mqx
