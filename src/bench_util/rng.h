/**
 * @file
 * Deterministic pseudo-random generators for workload construction.
 *
 * Benchmarks and tests need reproducible residue vectors; SplitMix64 is
 * small, fast, and has no global state, so every workload carries its own
 * seeded stream.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "u128/u128.h"

namespace mqx {

/** SplitMix64: tiny, statistically solid, fully deterministic. */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

    constexpr uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform 128-bit value. */
    constexpr U128
    nextU128()
    {
        uint64_t lo = next();
        uint64_t hi = next();
        return U128::fromParts(hi, lo);
    }

    /**
     * Uniform value in [0, bound). Uses rejection sampling on the
     * top-aligned range so the distribution is exact.
     */
    U128
    nextBelow(const U128& bound)
    {
        checkArg(!bound.isZero(), "nextBelow: zero bound");
        int b = bound.bits();
        for (;;) {
            U128 candidate = nextU128() >> (128 - b);
            if (candidate < bound)
                return candidate;
        }
    }

  private:
    uint64_t state_;
};

/** A vector of uniformly random residues in [0, q). */
inline std::vector<U128>
randomResidues(size_t count, const U128& q, uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<U128> out(count);
    for (auto& v : out)
        v = rng.nextBelow(q);
    return out;
}

} // namespace mqx
