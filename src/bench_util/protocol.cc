/**
 * @file
 * Timing protocol implementation.
 */
#include "bench_util/protocol.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/config.h"

namespace mqx {

Measurement
runProtocol(const std::function<void()>& kernel, int total_iters,
            int kept_iters)
{
    checkArg(total_iters >= kept_iters && kept_iters >= 1,
             "runProtocol: bad iteration counts");
    std::vector<double> times(static_cast<size_t>(total_iters), 0.0);
    for (int i = 0; i < total_iters; ++i) {
        uint64_t t0 = nowNs();
        kernel();
        uint64_t t1 = nowNs();
        times[static_cast<size_t>(i)] = static_cast<double>(t1 - t0);
    }
    Measurement m;
    m.total_iters = total_iters;
    m.kept_iters = kept_iters;
    double sum = 0.0;
    double best = times.back();
    for (int i = total_iters - kept_iters; i < total_iters; ++i) {
        sum += times[static_cast<size_t>(i)];
        best = std::min(best, times[static_cast<size_t>(i)]);
    }
    m.mean_ns = sum / kept_iters;
    m.min_ns = best;
    return m;
}

namespace {

Measurement
runScaled(const std::function<void()>& kernel, int total, int kept,
          double scale)
{
    checkArg(scale > 0.0 && scale <= 1.0, "protocol scale must be in (0,1]");
    int t = std::max(4, static_cast<int>(std::lround(total * scale)));
    int k = std::max(2, static_cast<int>(std::lround(kept * scale)));
    k = std::min(k, t);
    return runProtocol(kernel, t, k);
}

} // namespace

Measurement
runNttProtocol(const std::function<void()>& kernel, double scale)
{
    return runScaled(kernel, 100, 50, scale);
}

Measurement
runBlasProtocol(const std::function<void()>& kernel, double scale)
{
    return runScaled(kernel, 1000, 500, scale);
}

double
nsPerButterfly(const Measurement& m, size_t n)
{
    checkArg(n >= 2, "nsPerButterfly: n too small");
    double log2n = std::log2(static_cast<double>(n));
    double butterflies = static_cast<double>(n) / 2.0 * log2n;
    return m.mean_ns / butterflies;
}

double
nsPerElement(const Measurement& m, size_t n)
{
    checkArg(n >= 1, "nsPerElement: n too small");
    return m.mean_ns / static_cast<double>(n);
}

} // namespace mqx
