/**
 * @file
 * TextTable implementation.
 */
#include "bench_util/tables.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace mqx {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addRule()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string>& row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    grow(header_);
    for (const auto& r : rows_)
        grow(r);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            out << row[i];
            for (size_t pad = row[i].size(); pad < widths[i] + 3 &&
                 i + 1 < row.size(); ++pad)
                out << ' ';
        }
        out << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        out << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_) {
        if (r.empty())
            out << std::string(total, '-') << "\n";
        else
            emit(r);
    }
    return out.str();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << row[i];
        }
        out << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto& r : rows_) {
        if (!r.empty())
            emit(r);
    }
    return out.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
formatFixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
formatSpeedup(double v)
{
    char buf[64];
    if (v >= 100.0)
        std::snprintf(buf, sizeof(buf), "%.0fx", v);
    else
        std::snprintf(buf, sizeof(buf), "%.1fx", v);
    return buf;
}

double
geomean(const std::vector<double>& values)
{
    double log_sum = 0.0;
    int n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(log_sum / n) : 0.0;
}

} // namespace mqx
