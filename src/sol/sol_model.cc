/**
 * @file
 * SOL model implementation and CPU spec tables.
 */
#include "sol/sol_model.h"

#include "core/config.h"

namespace mqx {
namespace sol {

const CpuSpec&
intelXeon8352Y()
{
    // Table 4 + public spec sheets: 32 cores, 2.2/3.4 GHz, 48 MB L3,
    // 8-channel DDR4-3200 (~205 GB/s).
    static const CpuSpec spec{"Intel Xeon 8352Y", 32, 2.2, 3.4, 2.8, 48.0,
                              205.0};
    return spec;
}

const CpuSpec&
amdEpyc9654()
{
    // Table 4: 96 cores, 2.4/3.7 GHz, 384 MB L3, 12-channel DDR5-4800
    // (~460 GB/s).
    static const CpuSpec spec{"AMD EPYC 9654", 96, 2.4, 3.7, 3.55, 384.0,
                              460.0};
    return spec;
}

const CpuSpec&
intelXeon6980P()
{
    // Section 6: 128 cores, 504 MB L3, all-core boost 3.2 GHz;
    // 12-channel MRDIMM (~840 GB/s).
    static const CpuSpec spec{"Intel Xeon 6980P", 128, 2.0, 3.9, 3.2, 504.0,
                              840.0};
    return spec;
}

const CpuSpec&
amdEpyc9965S()
{
    // Section 6: 192 cores, all-core boost 3.35 GHz, 384 MB L3;
    // 12-channel DDR5-6000 (~576 GB/s).
    static const CpuSpec spec{"AMD EPYC 9965S", 192, 2.25, 3.7, 3.35, 384.0,
                              576.0};
    return spec;
}

double
solRuntime(double t_measured_ns, int c1, int c2, double f_measured_ghz,
           double f_max_ghz)
{
    checkArg(t_measured_ns > 0.0, "solRuntime: non-positive runtime");
    checkArg(c1 >= 1 && c2 >= 1, "solRuntime: non-positive core counts");
    checkArg(f_measured_ghz > 0.0 && f_max_ghz > 0.0,
             "solRuntime: non-positive frequencies");
    return t_measured_ns * (static_cast<double>(c1) / c2) *
           (f_measured_ghz / f_max_ghz);
}

double
solRuntimeSingleCore(double t_measured_ns, double f_measured_ghz,
                     const CpuSpec& target)
{
    return solRuntime(t_measured_ns, 1, target.cores, f_measured_ghz,
                      target.allcore_boost_ghz);
}

double
dramFloorNs(size_t bytes, const CpuSpec& target)
{
    checkArg(target.mem_bw_gbs > 0.0, "dramFloorNs: no bandwidth in spec");
    return static_cast<double>(bytes) / target.mem_bw_gbs;
}

double
memoryBoundNsPerButterfly(const CpuSpec& target)
{
    checkArg(target.mem_bw_gbs > 0.0, "memoryBound: no bandwidth in spec");
    // Per butterfly and stage: read 2 residues (32 B), write 2 (32 B),
    // stream 1 twiddle (16 B) = 80 bytes of DRAM traffic in the
    // worst (cache-resident-nothing) case.
    constexpr double kBytesPerButterfly = 80.0;
    return kBytesPerButterfly / target.mem_bw_gbs; // GB/s = B/ns
}

double
rooflineSolNsPerButterfly(double measured_ns_per_butterfly,
                          double f_measured_ghz, const CpuSpec& target)
{
    double compute = solRuntimeSingleCore(measured_ns_per_butterfly,
                                          f_measured_ghz, target);
    double memory = memoryBoundNsPerButterfly(target);
    return compute > memory ? compute : memory;
}

} // namespace sol
} // namespace mqx
