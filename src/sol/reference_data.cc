/**
 * @file
 * Reference series constants and their derivations.
 *
 * Anchor: the paper's AVX-512 NTT on one EPYC 9654 core is set to
 * 100 ns/butterfly at 2^14 (flat across sizes — Section 5.4 observes the
 * AVX-512 kernel "remains relatively flat across all NTT sizes, as it
 * continues to be compute-bound"). Every other constant is that anchor
 * times a ratio quoted from the paper; each is cited inline.
 */
#include "sol/reference_data.h"

#include <map>

#include "core/config.h"

namespace mqx {
namespace sol {

double
ReferenceSeries::at(size_t n) const
{
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (sizes[i] == n)
            return ns_per_butterfly[i];
    }
    throw InvalidArgument("ReferenceSeries::at: size not covered by " + name);
}

bool
ReferenceSeries::covers(size_t n) const
{
    for (size_t s : sizes) {
        if (s == n)
            return true;
    }
    return false;
}

const std::vector<size_t>&
paperNttSizes()
{
    // "We validated PISA using an NTT size of 2^14, the average among
    // the NTT sizes targeted in this paper" -> sizes 2^10 .. 2^18.
    static const std::vector<size_t> sizes = {1u << 10, 1u << 11, 1u << 12,
                                              1u << 13, 1u << 14, 1u << 15,
                                              1u << 16, 1u << 17, 1u << 18};
    return sizes;
}

namespace {

std::vector<double>
flat(size_t count, double v)
{
    return std::vector<double>(count, v);
}

// ---- AMD EPYC 9654 tiers (Section 5.4, Fig. 5b ratios) ----------------
// anchor: avx512 = 100 ns/bfly.
// "AVX-512 delivers a further 1.7x speedup over AVX2"  -> avx2 = 170.
// "AVX2 outperforms the scalar implementation ... by an average of 1.2x"
//   -> scalar = 204.
// "our scalar implementation achieves an average 11x speedup over
//  OpenFHE" -> openfhe = 2244.
// "With MQX, we achieve another 3.7x speedup over AVX-512" -> mqx = 27.
// "GMP shows a 17.3x slowdown compared to the slowest of our
//  implementations" (Section 5.3; scalar is slowest) -> gmp = 3529.
// MQX degrades past the per-core L2 at 2^16+ (Section 5.4 observes this
// on Intel; EPYC's 1 MB L2 spills one size later) -> 1.35x at 2^17+.
const double kEpycAvx512 = 100.0;
const double kEpycAvx2 = 170.0;
const double kEpycScalar = 204.0;
const double kEpycOpenFhe = 2244.0;
const double kEpycMqx = 27.0;
const double kEpycGmp = 3529.0;

// ---- Intel Xeon 8352Y tiers (Section 5.4, Fig. 5a ratios) --------------
// "our scalar implementation outperforms ... OpenFHE by 13.5x"
// "AVX2 and scalar ... comparable, scalar slightly faster"
// "AVX-512 yields a 2.4x speedup over the scalar implementation"
// "MQX ... 2.1x speedup over the AVX-512 implementation"
// "our AVX-512-based NTT outperforms the GMP baseline by 53x on Intel"
// anchor: scalar_intel = 240 (slower clock than EPYC).
const double kXeonScalar = 240.0;
const double kXeonAvx2 = 245.0;
const double kXeonAvx512 = 100.0;
const double kXeonOpenFhe = 3240.0;
const double kXeonMqx = 47.6;
const double kXeonGmp = 5300.0;

std::vector<double>
mqxSeriesWithL2Knee(double base, size_t knee_size, double penalty)
{
    // "MQX performance begins to degrade at the NTT size of 2^16 ...
    //  the kernel becomes memory-bound, and spilling beyond L2 leads to
    //  the observed slowdown" (Section 5.4).
    std::vector<double> v;
    for (size_t n : paperNttSizes())
        v.push_back(n >= knee_size ? base * penalty : base);
    return v;
}

ReferenceSeries
makePaperSeries(const std::string& cpu, const std::string& tier, double value,
                std::vector<double> series = {})
{
    ReferenceSeries s;
    s.name = tier + " (" + cpu + ", paper-derived)";
    s.provenance = "ratio-derived from MICRO'25 Sections 5.3-5.4";
    s.sizes = paperNttSizes();
    s.ns_per_butterfly =
        series.empty() ? flat(s.sizes.size(), value) : std::move(series);
    return s;
}

} // namespace

const ReferenceSeries&
rpuReference()
{
    // RPU (ISPASS'23) supports NTT sizes 2^10..2^14 here. Derivation:
    //  - "MQX cuts the slowdown relative to ASICs to as low as 35x on a
    //    single CPU core": epyc mqx 27 / 35x at the most favorable size
    //    (2^10) -> 0.77 ns/bfly.
    //  - Fig. 7a: Intel MQX-SOL (0.40 ns/bfly) wins at 1k-8k, loses at
    //    16k, and is "on average 1.3x faster than RPU" -> the series
    //    falls from 0.77 to 0.30 across sizes.
    static const ReferenceSeries series = [] {
        ReferenceSeries s;
        s.name = "RPU (ASIC)";
        s.provenance = "ratio-derived: 35x single-core gap + Fig. 7 shape";
        s.sizes = {1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14};
        s.ns_per_butterfly = {0.77, 0.62, 0.50, 0.43, 0.30};
        return s;
    }();
    return series;
}

const ReferenceSeries&
fpmmReference()
{
    // FPMM (Zhou et al.) supports two NTT sizes. Derivation: Intel
    // MQX-SOL "delivers approximately the same performance as FPMM";
    // AMD MQX-SOL achieves "2.9x speedup over FPMM".
    static const ReferenceSeries series = [] {
        ReferenceSeries s;
        s.name = "FPMM (ASIC)";
        s.provenance = "ratio-derived: ~= Intel MQX-SOL, 2.9x vs AMD SOL";
        s.sizes = {1u << 10, 1u << 12};
        s.ns_per_butterfly = {0.45, 0.44};
        return s;
    }();
    return series;
}

const ReferenceSeries&
momaReference()
{
    // MoMA (CGO'25) on RTX 4090. Derivation: Intel MQX-SOL is "1.4x
    // slower" than MoMA; AMD MQX-SOL is "1.7x faster" -> ~0.28 ns/bfly
    // flat (GPU throughput is size-insensitive at these batch sizes).
    static const ReferenceSeries series = [] {
        ReferenceSeries s;
        s.name = "MoMA (RTX 4090)";
        s.provenance = "ratio-derived: 1.4x vs Intel SOL, 1.7x vs AMD SOL";
        s.sizes = paperNttSizes();
        s.ns_per_butterfly = flat(s.sizes.size(), 0.28);
        return s;
    }();
    return series;
}

const ReferenceSeries&
openFhe32CoreReference()
{
    // OpenFHE on 32 cores of EPYC 7502, as reported by RPU: "RPU
    // achieves a speedup of 545 to 1,485x compared to the CPU baseline
    // implemented using OpenFHE on a 32-core machine". Applying that
    // range to the RPU series brings the curve to ~450 ns/bfly; the
    // Fig. 1 cross-check is our AVX-512 single-core speedup of 3.8x
    // over this series (2244 / 32-core scaling ~= 4x would be ideal
    // linear; 450 reflects the sub-linear scaling RPU reports).
    static const ReferenceSeries series = [] {
        ReferenceSeries s;
        s.name = "OpenFHE (32-core EPYC 7502)";
        s.provenance = "ratio-derived: RPU's 545-1485x over this baseline";
        s.sizes = {1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14};
        s.ns_per_butterfly = {420.0, 496.0, 500.0, 516.0, 446.0};
        return s;
    }();
    return series;
}

const std::vector<std::string>&
paperTiers()
{
    static const std::vector<std::string> tiers = {
        "GMP", "OpenFHE", "Scalar", "AVX2", "AVX-512", "MQX"};
    return tiers;
}

const ReferenceSeries&
paperEpycSeries(const std::string& tier)
{
    static const std::map<std::string, ReferenceSeries> table = [] {
        std::map<std::string, ReferenceSeries> t;
        t["GMP"] = makePaperSeries("EPYC 9654", "GMP", kEpycGmp);
        t["OpenFHE"] = makePaperSeries("EPYC 9654", "OpenFHE", kEpycOpenFhe);
        t["Scalar"] = makePaperSeries("EPYC 9654", "Scalar", kEpycScalar);
        t["AVX2"] = makePaperSeries("EPYC 9654", "AVX2", kEpycAvx2);
        t["AVX-512"] = makePaperSeries("EPYC 9654", "AVX-512", kEpycAvx512);
        t["MQX"] = makePaperSeries("EPYC 9654", "MQX", kEpycMqx,
                                   mqxSeriesWithL2Knee(kEpycMqx, 1u << 17,
                                                       1.35));
        return t;
    }();
    auto it = table.find(tier);
    checkArg(it != table.end(), "paperEpycSeries: unknown tier");
    return it->second;
}

const ReferenceSeries&
paperXeonSeries(const std::string& tier)
{
    static const std::map<std::string, ReferenceSeries> table = [] {
        std::map<std::string, ReferenceSeries> t;
        t["GMP"] = makePaperSeries("Xeon 8352Y", "GMP", kXeonGmp);
        t["OpenFHE"] = makePaperSeries("Xeon 8352Y", "OpenFHE", kXeonOpenFhe);
        t["Scalar"] = makePaperSeries("Xeon 8352Y", "Scalar", kXeonScalar);
        t["AVX2"] = makePaperSeries("Xeon 8352Y", "AVX2", kXeonAvx2);
        t["AVX-512"] = makePaperSeries("Xeon 8352Y", "AVX-512", kXeonAvx512);
        t["MQX"] = makePaperSeries("Xeon 8352Y", "MQX", kXeonMqx,
                                   mqxSeriesWithL2Knee(kXeonMqx, 1u << 16,
                                                       1.5));
        return t;
    }();
    auto it = table.find(tier);
    checkArg(it != table.end(), "paperXeonSeries: unknown tier");
    return it->second;
}

} // namespace sol
} // namespace mqx
