/**
 * @file
 * Speed-of-light (SOL) performance model (paper Section 6, Eq. 13) and a
 * classic roofline bound.
 *
 * t_sol = t_m * (c1 / c2) * (f_m / f_max): scale a measured runtime from
 * c1 cores at frequency f_m to c2 cores at all-core boost f_max,
 * assuming perfect (embarrassingly parallel) scaling — an idealized
 * upper bound the paper uses to ask whether full-socket CPUs can reach
 * ASIC-class NTT throughput. The roofline helper adds the memory-side
 * ceiling so the model cannot promise more than DRAM bandwidth allows.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mqx {
namespace sol {

/** A CPU for measurement or SOL projection (Table 4 + Section 6). */
struct CpuSpec
{
    std::string name;
    int cores = 1;
    double base_ghz = 0.0;
    double max_boost_ghz = 0.0;     ///< single-core boost
    double allcore_boost_ghz = 0.0; ///< f_max in Eq. 13
    double l3_mb = 0.0;
    double mem_bw_gbs = 0.0; ///< aggregate DRAM bandwidth (roofline)
};

/** Intel Xeon 8352Y — the paper's Intel measurement CPU (Table 4). */
const CpuSpec& intelXeon8352Y();

/** AMD EPYC 9654 — the paper's AMD measurement CPU (Table 4). */
const CpuSpec& amdEpyc9654();

/** Intel Xeon 6980P — the Intel SOL target (Section 6). */
const CpuSpec& intelXeon6980P();

/** AMD EPYC 9965S — the AMD SOL target (Section 6). */
const CpuSpec& amdEpyc9965S();

/**
 * Eq. 13: t_sol = t_m * (c1/c2) * (f_m/f_max).
 *
 * @param t_measured_ns runtime measured on c1 cores at f_measured_ghz
 * @throws InvalidArgument on non-positive parameters.
 */
double solRuntime(double t_measured_ns, int c1, int c2, double f_measured_ghz,
                  double f_max_ghz);

/** Eq. 13 with c1 = 1 (all paper measurements are single-core). */
double solRuntimeSingleCore(double t_measured_ns, double f_measured_ghz,
                            const CpuSpec& target);

/**
 * Memory-side bound for one NTT stage pass: every stage streams the
 * n-point data (read + write) and its twiddle row. Returns ns per
 * butterfly at the target's full bandwidth.
 */
double memoryBoundNsPerButterfly(const CpuSpec& target);

/**
 * Roofline-limited SOL: the compute-scaled Eq.-13 projection clamped by
 * the memory ceiling.
 */
double rooflineSolNsPerButterfly(double measured_ns_per_butterfly,
                                 double f_measured_ghz,
                                 const CpuSpec& target);

/**
 * Time floor (ns) to stream @p bytes through the target's aggregate
 * DRAM bandwidth — the ceiling a whole transform cannot beat no matter
 * how cheap its butterflies are. Pair with
 * NttPlan::bytesSweptPerTransform() to turn the per-kernel sweep
 * accounting into an absolute ns bound (1 GB/s = 1 byte/ns).
 */
double dramFloorNs(size_t bytes, const CpuSpec& target);

} // namespace sol
} // namespace mqx
