/**
 * @file
 * Reference performance series for the comparison hardware in Figures 1
 * and 7: the RPU and FPMM ASICs, the MoMA GPU implementation, multi-core
 * OpenFHE, and the paper's own measured CPU tiers.
 *
 * PROVENANCE. The paper reports speedup *ratios*, not absolute numbers,
 * for most baselines. Every series here is derived from those stated
 * ratios, anchored at a plausible absolute scale (see reference_data.cc
 * for the derivation of each constant, with the quoted claim inline).
 * Benches compare measured-vs-reference *ratios*; EXPERIMENTS.md records
 * both. This is the substitution documented in DESIGN.md: we reproduce
 * who wins and by roughly what factor, not the authors' testbed.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mqx {
namespace sol {

/** One reference runtime series over NTT sizes. */
struct ReferenceSeries
{
    std::string name;             ///< e.g. "RPU (ASIC)"
    std::string provenance;       ///< which paper claims anchor it
    std::vector<size_t> sizes;    ///< NTT sizes covered
    std::vector<double> ns_per_butterfly;

    /** Value at @p n; throws if the series does not cover n. */
    double at(size_t n) const;

    /** True if the series covers @p n. */
    bool covers(size_t n) const;
};

/** The NTT sizes the paper evaluates: 2^10 .. 2^18. */
const std::vector<size_t>& paperNttSizes();

/** RPU ASIC (ISPASS'23), 128-bit NTT. */
const ReferenceSeries& rpuReference();

/** FPMM (Zhou et al., TCAD'24) pipelined modular-multiplier ASIC. */
const ReferenceSeries& fpmmReference();

/** MoMA (CGO'25) on NVIDIA RTX 4090. */
const ReferenceSeries& momaReference();

/** OpenFHE on 32 cores of EPYC 7502 (as reported by RPU). */
const ReferenceSeries& openFhe32CoreReference();

/** Paper-measured series for one backend tier on AMD EPYC 9654. */
const ReferenceSeries& paperEpycSeries(const std::string& tier);

/** Paper-measured series for one backend tier on Intel Xeon 8352Y. */
const ReferenceSeries& paperXeonSeries(const std::string& tier);

/** Tier names available from the two paper-measured tables. */
const std::vector<std::string>& paperTiers();

} // namespace sol
} // namespace mqx
