/**
 * @file
 * Instruction descriptors for the machine-code analysis model.
 *
 * The model is the simplified Sunny Cove microarchitecture of the
 * paper's Figure 3: six scheduler ports relevant to these kernels.
 * Port assignments for 512-bit integer operations follow published
 * Ice Lake/Sunny Cove scheduling (uops.info-style data, simplified):
 * 512-bit VALU ops issue on ports 0 and 5, compares-into-mask and
 * shuffles on port 5, mask (k-register) ALU ops on port 0, 64-bit
 * vector multiplies on port 0, loads on ports 2/3, stores on port 4.
 *
 * MQX instructions are assigned the same ports as their Table-3 proxy
 * instructions — the central PISA assumption ("each MQX instruction maps
 * to the same execution port as its proxy ISA counterpart").
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mqx {
namespace mca {

/** Scheduler ports of the simplified Sunny Cove model (Fig. 3). */
enum Port : unsigned
{
    kPort0 = 1u << 0, ///< ALU / VALU / VFMA / 64-bit vector multiply
    kPort1 = 1u << 1, ///< ALU / VALU (<= 256-bit) / MULH
    kPort2 = 1u << 2, ///< load AGU
    kPort3 = 1u << 3, ///< load AGU
    kPort4 = 1u << 4, ///< store data
    kPort5 = 1u << 5, ///< ALU / VALU / shuffle / mask compare
};

/** Number of modeled ports. */
inline constexpr int kNumPorts = 6;

/** Static description of one instruction class. */
struct InstrDesc
{
    std::string mnemonic;  ///< assembly mnemonic (e.g. "vpaddq")
    unsigned ports = 0;    ///< bitmask of ports its uop may issue to
    int uops = 1;          ///< fused-domain uop count
    int latency = 1;       ///< result latency in cycles
    bool proposed = false; ///< true for MQX instructions (not in silicon)
};

/**
 * Look up an instruction class by mnemonic.
 * @throws InvalidArgument for unknown mnemonics.
 */
const InstrDesc& instrDesc(const std::string& mnemonic);

/** All modeled instruction classes (for documentation/tests). */
const std::vector<InstrDesc>& instrTable();

} // namespace mca
} // namespace mqx
