/**
 * @file
 * Kernel tracing via the recording ISA policy.
 */
#include "mca/kernel_traces.h"

#include "simd/dw_kernels.h"

namespace mqx {
namespace mca {

TraceSink&
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

std::string
kernelName(Kernel k)
{
    switch (k) {
      case Kernel::AddMod:
        return "addmod128";
      case Kernel::SubMod:
        return "submod128";
      case Kernel::MulMod:
        return "mulmod128";
      case Kernel::Butterfly:
        return "ntt-butterfly";
    }
    return "unknown";
}

std::string
flavorName(TraceFlavor f)
{
    switch (f) {
      case TraceFlavor::Avx512:
        return "AVX-512";
      case TraceFlavor::MqxMulOnly:
        return "+M";
      case TraceFlavor::MqxCarryOnly:
        return "+C";
      case TraceFlavor::MqxFull:
        return "+M,C";
      case TraceFlavor::MqxMulhiCarry:
        return "+Mh,C";
      case TraceFlavor::MqxPredicated:
        return "+M,C,P";
    }
    return "unknown";
}

namespace {

template <TraceFeatures F>
std::vector<TracedInstr>
traceWith(Kernel kernel, const Modulus& m)
{
    using Isa = TraceIsa<F>;
    simd::ModCtx<Isa> ctx = simd::makeModCtx<Isa>(m);
    simd::DV<Isa> a{}, b{}, w{};
    TraceSink::instance().clear(); // ctx setup is not part of the body
    switch (kernel) {
      case Kernel::AddMod:
        simd::addModV<Isa>(ctx, a, b);
        break;
      case Kernel::SubMod:
        simd::subModV<Isa>(ctx, a, b);
        break;
      case Kernel::MulMod:
        simd::mulModV<Isa>(ctx, a, b);
        break;
      case Kernel::Butterfly: {
        auto u = simd::addModV<Isa>(ctx, a, b);
        (void)u;
        auto d = simd::subModV<Isa>(ctx, a, b);
        simd::mulModV<Isa>(ctx, d, w);
        break;
      }
    }
    return TraceSink::instance().take();
}

} // namespace

std::vector<TracedInstr>
traceKernel(Kernel kernel, TraceFlavor flavor, const Modulus& m)
{
    switch (flavor) {
      case TraceFlavor::Avx512:
        return traceWith<kTraceAvx512>(kernel, m);
      case TraceFlavor::MqxMulOnly:
        return traceWith<kTraceMqxMulOnly>(kernel, m);
      case TraceFlavor::MqxCarryOnly:
        return traceWith<kTraceMqxCarryOnly>(kernel, m);
      case TraceFlavor::MqxFull:
        return traceWith<kTraceMqxFull>(kernel, m);
      case TraceFlavor::MqxMulhiCarry:
        return traceWith<kTraceMqxMulhi>(kernel, m);
      case TraceFlavor::MqxPredicated:
        return traceWith<kTraceMqxPred>(kernel, m);
    }
    throw InvalidArgument("traceKernel: unknown flavor");
}

} // namespace mca
} // namespace mqx
