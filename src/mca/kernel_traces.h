/**
 * @file
 * Instruction traces of the shipped kernels, obtained by running the
 * real kernel templates with the recording TraceIsa policy.
 */
#pragma once

#include <string>
#include <vector>

#include "core/backend.h"
#include "mca/trace_isa.h"
#include "mod/modulus.h"

namespace mqx {
namespace mca {

/** Which kernel to trace. */
enum class Kernel
{
    AddMod, ///< double-word modular addition (Listing 2 / Listing 3)
    SubMod,
    MulMod,    ///< schoolbook product + Barrett
    Butterfly, ///< one NTT butterfly: add + sub + mul
};

/** Which instruction-set flavor to trace. */
enum class TraceFlavor
{
    Avx512,        ///< Fig. 6 "Base"
    MqxMulOnly,    ///< +M
    MqxCarryOnly,  ///< +C
    MqxFull,       ///< +M,C
    MqxMulhiCarry, ///< +Mh,C
    MqxPredicated, ///< +M,C,P
};

std::string kernelName(Kernel k);
std::string flavorName(TraceFlavor f);

/**
 * Trace @p kernel under @p flavor for the given modulus (the modulus
 * only affects Barrett shift constants, not the instruction sequence).
 * Register-register kernel body only: loads/stores and per-call
 * constant setup are excluded, matching Listing 4's scope.
 */
std::vector<TracedInstr> traceKernel(Kernel kernel, TraceFlavor flavor,
                                     const Modulus& m);

} // namespace mca
} // namespace mqx
