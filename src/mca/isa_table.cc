/**
 * @file
 * The instruction table for the simplified Sunny Cove model.
 */
#include "mca/isa_table.h"

#include "core/config.h"

namespace mqx {
namespace mca {

const std::vector<InstrDesc>&
instrTable()
{
    // Latencies/ports: simplified Ice Lake (Sunny Cove) values for
    // 512-bit operations. vpmullq is the notoriously slow 64-bit
    // multiply-low; vpmuludq is the fast 32x32 widening multiply.
    static const std::vector<InstrDesc> table = {
        // mnemonic        ports              uops latency proposed
        {"vpaddq",         kPort0 | kPort5,   1,   1,  false},
        {"vpsubq",         kPort0 | kPort5,   1,   1,  false},
        {"vpaddq{k}",      kPort0 | kPort5,   1,   1,  false},
        {"vpsubq{k}",      kPort0 | kPort5,   1,   1,  false},
        {"vpcmpuq",        kPort5,            1,   3,  false},
        {"vpcmpeqq",       kPort5,            1,   3,  false},
        {"vpmullq",        kPort0,            3,   15, false},
        {"vpmuludq",       kPort0,            1,   5,  false},
        {"vpsrlq",         kPort0,            1,   1,  false},
        {"vpsllq",         kPort0,            1,   1,  false},
        {"vporq",          kPort0 | kPort5,   1,   1,  false},
        {"vpandq",         kPort0 | kPort5,   1,   1,  false},
        {"vpxorq",         kPort0 | kPort5,   1,   1,  false},
        {"vpblendmq",      kPort0 | kPort5,   1,   1,  false},
        {"vmovdqa64",      kPort0 | kPort1 | kPort5, 1, 1, false},
        {"vpbroadcastq",   kPort5,            1,   3,  false},
        {"vpunpcklqdq",    kPort5,            1,   1,  false},
        {"vpunpckhqdq",    kPort5,            1,   1,  false},
        {"vpermt2q",       kPort5,            1,   3,  false},
        {"korb",           kPort0,            1,   1,  false},
        {"kandb",          kPort0,            1,   1,  false},
        {"knotb",          kPort0,            1,   1,  false},
        {"vmovdqu64.load", kPort2 | kPort3,   1,   5,  false},
        {"vmovdqu64.store", kPort4,           1,   1,  false},
        // MQX (proposed): same ports as the Table-3 proxies.
        {"vpmulq",         kPort0,            3,   15, true}, // ~ vpmullq
        {"vpmulhq",        kPort0,            3,   15, true}, // ~ vpmullq
        {"vpadcq",         kPort0 | kPort5,   1,   1,  true}, // ~ vpaddq{k}
        {"vpsbbq",         kPort0 | kPort5,   1,   1,  true}, // ~ vpsubq{k}
        {"vpadcq{p}",      kPort0 | kPort5,   1,   1,  true},
        {"vpsbbq{p}",      kPort0 | kPort5,   1,   1,  true},
    };
    return table;
}

const InstrDesc&
instrDesc(const std::string& mnemonic)
{
    for (const auto& d : instrTable()) {
        if (d.mnemonic == mnemonic)
            return d;
    }
    throw InvalidArgument("mca::instrDesc: unknown mnemonic " + mnemonic);
}

} // namespace mca
} // namespace mqx
