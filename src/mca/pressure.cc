/**
 * @file
 * Resource-pressure computation and rendering.
 */
#include "mca/pressure.h"

#include <algorithm>
#include <sstream>

#include "bench_util/tables.h"

namespace mqx {
namespace mca {

AnalysisResult
analyzeTrace(const std::vector<TracedInstr>& trace)
{
    AnalysisResult result;
    result.rows.reserve(trace.size());
    for (const auto& t : trace) {
        const InstrDesc& desc = instrDesc(t.mnemonic);
        AnalyzedInstr row;
        row.mnemonic = t.mnemonic;
        for (int u = 0; u < desc.uops; ++u) {
            // Least-loaded allowed port; ties break to the lowest index.
            int best = -1;
            for (int p = 0; p < kNumPorts; ++p) {
                if (!(desc.ports & (1u << p)))
                    continue;
                if (best < 0 || result.totals[static_cast<size_t>(p)] <
                                    result.totals[static_cast<size_t>(best)])
                    best = p;
            }
            if (best < 0)
                throw InvalidArgument("analyzeTrace: instruction with no ports");
            row.per_port[static_cast<size_t>(best)] += 1.0;
            result.totals[static_cast<size_t>(best)] += 1.0;
            ++result.total_uops;
        }
        result.latency_sum += desc.latency;
        result.rows.push_back(std::move(row));
    }
    result.rthroughput =
        *std::max_element(result.totals.begin(), result.totals.end());
    return result;
}

std::string
renderPressureTable(const std::string& title, const AnalysisResult& result)
{
    TextTable table(title + " - resource pressure by instruction:");
    std::vector<std::string> header;
    for (int p = 0; p < kNumPorts; ++p) {
        // Built by append rather than operator+ chaining: GCC 12's
        // -Wrestrict misfires on char*+string&& concatenation (PR105651).
        std::string label = "[";
        label += std::to_string(p);
        label += ']';
        header.push_back(std::move(label));
    }
    header.push_back("Instructions:");
    table.setHeader(std::move(header));
    auto cell = [](double v) {
        return v == 0.0 ? std::string("-") : formatFixed(v, 2);
    };
    for (const auto& row : result.rows) {
        std::vector<std::string> cells;
        for (int p = 0; p < kNumPorts; ++p)
            cells.push_back(cell(row.per_port[static_cast<size_t>(p)]));
        cells.push_back(row.mnemonic);
        table.addRow(std::move(cells));
    }
    table.addRule();
    std::vector<std::string> totals;
    for (int p = 0; p < kNumPorts; ++p)
        totals.push_back(cell(result.totals[static_cast<size_t>(p)]));
    totals.push_back("total port pressure");
    table.addRow(std::move(totals));
    return table.render();
}

std::string
summarizeAnalysis(const AnalysisResult& result)
{
    std::ostringstream out;
    out << "instructions: " << result.rows.size()
        << "  uops: " << result.total_uops
        << "  bottleneck rthroughput: " << formatFixed(result.rthroughput, 2)
        << " cyc  latency-chain bound: " << formatFixed(result.latency_sum, 0)
        << " cyc";
    return out.str();
}

} // namespace mca
} // namespace mqx
