/**
 * @file
 * Resource-pressure analysis (the Listing-4 view).
 *
 * Given an instruction trace and the simplified Sunny Cove port model
 * (Fig. 3), distribute each instruction's uops to their allowed ports
 * with a least-loaded greedy policy (the same first-order behaviour as
 * llvm-mca's resource-pressure view) and report per-port pressure, the
 * bottleneck reciprocal throughput, and a rendered pressure matrix.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "mca/isa_table.h"
#include "mca/trace_isa.h"

namespace mqx {
namespace mca {

/** Per-instruction port assignment. */
struct AnalyzedInstr
{
    std::string mnemonic;
    std::array<double, kNumPorts> per_port{}; ///< uops issued per port
};

/** Whole-trace analysis. */
struct AnalysisResult
{
    std::vector<AnalyzedInstr> rows;
    std::array<double, kNumPorts> totals{}; ///< per-port uop totals
    int total_uops = 0;
    double rthroughput = 0.0; ///< bottleneck port pressure (cycles/iter)
    double latency_sum = 0.0; ///< sum of instruction latencies (chain bound)
};

/** Analyze a trace under the port model. */
AnalysisResult analyzeTrace(const std::vector<TracedInstr>& trace);

/**
 * Render a Listing-4-style resource-pressure matrix:
 * one row per instruction, one column per port.
 */
std::string renderPressureTable(const std::string& title,
                                const AnalysisResult& result);

/** One-line summary: uops, bottleneck throughput, pressure by port. */
std::string summarizeAnalysis(const AnalysisResult& result);

} // namespace mca
} // namespace mqx
