/**
 * @file
 * A SIMD ISA policy that *records* instructions instead of executing
 * them. Running the real kernel templates (simd/dw_kernels.h) with
 * TraceIsa yields the exact instruction sequence each backend executes —
 * the machine-code analysis (Listing 4) therefore can never drift from
 * the shipped kernels.
 *
 * The mapping from policy ops to mnemonics mirrors what the intrinsic
 * headers emit: e.g. Avx512Isa::mulWide expands to one vpmullq plus four
 * vpmuludq partial products with shift/add/and fixups; Avx512Isa::adc
 * expands to the Table-1 six-instruction sequence. The MQX trace
 * variants emit the single proposed instructions instead.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"

namespace mqx {
namespace mca {

/** A recorded instruction (mnemonic resolved later via the ISA table). */
struct TracedInstr
{
    std::string mnemonic;
};

/** The recording sink; one active trace at a time (not thread-safe). */
class TraceSink
{
  public:
    static TraceSink& instance();

    void clear() { trace_.clear(); }
    void emit(const char* mnemonic) { trace_.push_back({mnemonic}); }
    const std::vector<TracedInstr>& trace() const { return trace_; }
    std::vector<TracedInstr> take() { return std::move(trace_); }

  private:
    std::vector<TracedInstr> trace_;
};

/** Feature knobs shared by the basic and MQX trace policies. */
struct TraceFeatures
{
    bool mqx_carry = false;     ///< emit vpadcq/vpsbbq
    bool mqx_wide_mul = false;  ///< emit single vpmulq
    bool mqx_mulhi = false;     ///< emit vpmullq + vpmulhq pair
    bool predicated = false;    ///< expose pAdc/pSbb

    constexpr bool operator==(const TraceFeatures&) const = default;
};

inline constexpr TraceFeatures kTraceAvx512{false, false, false, false};
inline constexpr TraceFeatures kTraceMqxFull{true, true, false, false};
inline constexpr TraceFeatures kTraceMqxMulOnly{false, true, false, false};
inline constexpr TraceFeatures kTraceMqxCarryOnly{true, false, false, false};
inline constexpr TraceFeatures kTraceMqxMulhi{true, false, true, false};
inline constexpr TraceFeatures kTraceMqxPred{true, true, false, true};

/**
 * The recording policy. V and M are value-free tokens; every operation
 * appends mnemonics to the TraceSink.
 */
template <TraceFeatures F>
struct TraceIsa
{
    static constexpr size_t kLanes = 8;
    static constexpr bool kIsMqx = F.mqx_carry || F.mqx_wide_mul || F.mqx_mulhi;
    static constexpr bool kHasPredicated = F.predicated;

    struct V
    {
    };

    struct M
    {
    };

    static void emit(const char* m) { TraceSink::instance().emit(m); }

    static V
    set1(uint64_t)
    {
        emit("vpbroadcastq");
        return {};
    }

    static V
    loadu(const uint64_t*)
    {
        emit("vmovdqu64.load");
        return {};
    }

    static void storeu(uint64_t*, V) { emit("vmovdqu64.store"); }

    static V add(V, V) { emit("vpaddq"); return {}; }
    static V sub(V, V) { emit("vpsubq"); return {}; }
    static V mullo(V, V) { emit("vpmullq"); return {}; }
    static V and_(V, V) { emit("vpandq"); return {}; }
    static V or_(V, V) { emit("vporq"); return {}; }
    static V srlCount(V, unsigned) { emit("vpsrlq"); return {}; }
    static V sllCount(V, unsigned) { emit("vpsllq"); return {}; }

    static M cmpLtU(V, V) { emit("vpcmpuq"); return {}; }
    static M cmpLeU(V, V) { emit("vpcmpuq"); return {}; }
    static M cmpGtU(V, V) { emit("vpcmpuq"); return {}; }
    static M cmpEqU(V, V) { emit("vpcmpeqq"); return {}; }

    static M maskOr(M, M) { emit("korb"); return {}; }
    static M maskAnd(M, M) { emit("kandb"); return {}; }
    static M maskNot(M) { emit("knotb"); return {}; }
    static M maskZero() { return {}; }
    static M initialCarryMask() { return {}; }

    static V maskAdd(V, M, V, V) { emit("vpaddq{k}"); return {}; }
    static V maskSub(V, M, V, V) { emit("vpsubq{k}"); return {}; }
    static V blend(M, V, V) { emit("vpblendmq"); return {}; }

    static V
    adc(V a, V b, M ci, M& co)
    {
        if constexpr (F.mqx_carry) {
            emit("vpadcq");
            co = {};
            return {};
        } else {
            // Table-1 AVX-512 sequence (Avx512Isa::adc).
            V t0 = add(a, b);
            V one = set1(1);
            V t1 = maskAdd(t0, ci, t0, one);
            M q0 = cmpLtU(t1, a);
            M q1 = cmpLtU(t1, b);
            co = maskOr(q0, q1);
            return t1;
        }
    }

    static V
    sbb(V a, V b, M bi, M& bo)
    {
        if constexpr (F.mqx_carry) {
            emit("vpsbbq");
            bo = {};
            return {};
        } else {
            // Avx512Isa::sbb emulation sequence.
            V t0 = sub(a, b);
            V one = set1(1);
            M q0 = cmpLtU(a, b);
            emit("vmovdqa64"); // maskz_mov of the borrow-in
            M q1 = cmpLtU(t0, t0);
            V t1 = maskSub(t0, bi, t0, one);
            bo = maskOr(q0, q1);
            return t1;
        }
    }

    static void
    mulWide(V a, V b, V& hi, V& lo)
    {
        if constexpr (F.mqx_mulhi) {
            emit("vpmullq");
            emit("vpmulhq");
            hi = {};
            lo = {};
        } else if constexpr (F.mqx_wide_mul) {
            emit("vpmulq");
            hi = {};
            lo = {};
        } else {
            // Avx512Isa::mulWide emulation: mask constant + two operand
            // splits, four 32-bit partial products, shift/add/and fixups,
            // and the vpmullq low half.
            (void)a;
            (void)b;
            emit("vpsrlq");   // a_hi
            emit("vpsrlq");   // b_hi
            emit("vpmuludq"); // p0
            emit("vpmuludq"); // p1
            emit("vpmuludq"); // p2
            emit("vpmuludq"); // p3
            emit("vpsrlq");   // p0 >> 32
            emit("vpandq");   // p1 & mask
            emit("vpaddq");
            emit("vpandq");   // p2 & mask
            emit("vpaddq");   // mid
            emit("vpsrlq");   // mid >> 32
            emit("vpaddq");
            emit("vpsrlq");   // p1 >> 32
            emit("vpsrlq");   // p2 >> 32
            emit("vpaddq");
            emit("vpaddq");   // hi
            emit("vpmullq");  // lo
            hi = {};
            lo = {};
        }
    }

    static V
    pAdc(V, V, M, M)
    {
        emit("vpadcq{p}");
        return {};
    }

    static V
    pSbb(V, V, M, M)
    {
        emit("vpsbbq{p}");
        return {};
    }

    static void
    interleave2(V, V, V& out_lo, V& out_hi)
    {
        emit("vpermt2q");
        emit("vpermt2q");
        out_lo = {};
        out_hi = {};
    }

    static void
    deinterleave2(V, V, V& even, V& odd)
    {
        emit("vpermt2q");
        emit("vpermt2q");
        even = {};
        odd = {};
    }
};

} // namespace mca
} // namespace mqx
