/**
 * @file
 * Plan-cache implementation.
 */
#include "engine/plan_cache.h"

#include <chrono>
#include <mutex>

#include "robust/fault_injection.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace engine {

namespace {

// Process-wide cache counters: every PlanCache instance feeds the same
// ones so plan churn is visible in telemetry::snapshotJson().
telemetry::Counter&
hitsCounter()
{
    static telemetry::Counter& c = telemetry::counter("plancache.hits");
    return c;
}

telemetry::Counter&
missesCounter()
{
    static telemetry::Counter& c = telemetry::counter("plancache.misses");
    return c;
}

telemetry::Counter&
buildsCounter()
{
    static telemetry::Counter& c = telemetry::counter("plancache.builds");
    return c;
}

} // namespace

template <typename Build>
auto
PlanCache::timedBuild(Build build) -> decltype(build())
{
    MQX_SCOPED_SPAN(span, "plancache.build");
    const uint64_t t0 = telemetry::nowNs();
    auto value = build();
    build_ns_.fetch_add(telemetry::nowNs() - t0, std::memory_order_relaxed);
    builds_.fetch_add(1, std::memory_order_relaxed);
    buildsCounter().add(1);
    return value;
}

template <typename T, typename Build>
std::shared_ptr<const T>
PlanCache::lookupOrBuild(SlotMap<T>& map, const Key& key, bool& hit,
                         Build build)
{
    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = map.find(key);
        if (it != map.end()) {
            hit = true;
            Slot<T> slot = it->second;
            lock.unlock();
            return slot.get(); // blocks only while the builder runs
        }
    }
    std::promise<std::shared_ptr<const T>> promise;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        auto it = map.find(key);
        if (it != map.end()) {
            // Lost the insert race: wait on the winner's slot.
            hit = true;
            Slot<T> slot = it->second;
            lock.unlock();
            return slot.get();
        }
        map.emplace(key, promise.get_future().share());
    }
    hit = false;
    // This caller is the builder; derivation runs with no lock held so
    // other keys can look up and build concurrently.
    try {
        std::shared_ptr<const T> value = build();
        promise.set_value(value);
        return value;
    } catch (...) {
        {
            std::unique_lock<std::shared_mutex> lock(mutex_);
            map.erase(key); // don't cache the failure
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

std::shared_ptr<const ntt::NttPlan>
PlanCache::planUncounted(const Key& key, const U128& q)
{
    bool hit = false;
    return lookupOrBuild(plans_, key, hit, [&] {
        return timedBuild([&] {
            return std::make_shared<const ntt::NttPlan>(Modulus(q), key.n);
        });
    });
}

std::shared_ptr<const ntt::NttPlan>
PlanCache::get(const U128& q, size_t n)
{
    Key key{q.hi, q.lo, n};
    bool hit = false;
    auto plan = lookupOrBuild(plans_, key, hit, [&] {
        return timedBuild([&] {
            // Inside the builder: an injected failure exercises the
            // failed-slot-erase path (the miss is NOT cached, so the
            // next caller rebuilds cleanly).
            MQX_FAULT_POINT("plan_cache.alloc");
            return std::make_shared<const ntt::NttPlan>(Modulus(q), n);
        });
    });
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    (hit ? hitsCounter() : missesCounter()).add(1);
    return plan;
}

std::shared_ptr<const ntt::NegacyclicTables>
PlanCache::getNegacyclic(const U128& q, size_t n)
{
    Key key{q.hi, q.lo, n};
    bool hit = false;
    auto tables = lookupOrBuild(negacyclic_, key, hit, [&] {
        // Resolve the underlying cyclic plan OUTSIDE the timed section:
        // a plan miss is its own timedBuild, so build_ns never counts
        // the same derivation twice.
        auto plan = planUncounted(key, q);
        return timedBuild([&] {
            MQX_FAULT_POINT("plan_cache.alloc");
            return std::make_shared<const ntt::NegacyclicTables>(
                std::move(plan));
        });
    });
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    (hit ? hitsCounter() : missesCounter()).add(1);
    return tables;
}

size_t
PlanCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return plans_.size() + negacyclic_.size();
}

size_t
PlanCache::planCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return plans_.size();
}

size_t
PlanCache::negacyclicCount() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return negacyclic_.size();
}

size_t
PlanCache::twiddleBytes() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    size_t bytes = 0;
    auto ready = [](const auto& slot) {
        return slot.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
    };
    for (const auto& [key, slot] : plans_) {
        if (ready(slot)) {
            if (auto plan = slot.get())
                bytes += plan->twiddleBytes();
        }
    }
    for (const auto& [key, slot] : negacyclic_) {
        if (ready(slot)) {
            if (auto tables = slot.get())
                bytes += tables->tableBytes();
        }
    }
    return bytes;
}

uint64_t
PlanCache::hits() const
{
    return hits_.load(std::memory_order_relaxed);
}

uint64_t
PlanCache::misses() const
{
    return misses_.load(std::memory_order_relaxed);
}

PlanCache::Stats
PlanCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.builds = builds_.load(std::memory_order_relaxed);
    s.build_ns = build_ns_.load(std::memory_order_relaxed);
    return s;
}

void
PlanCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    plans_.clear();
    negacyclic_.clear();
}

} // namespace engine
} // namespace mqx
