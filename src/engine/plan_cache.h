/**
 * @file
 * Memoized NTT plans keyed by (q, n).
 *
 * An NttPlan holds every twiddle table the kernels need (plan.h) and
 * costs O(n log n) modular exponentiations to derive. The RNS pipeline
 * re-enters the same handful of (prime, size) pairs on every polymul —
 * once per residue channel per call — so a process-wide cache turns all
 * but the first derivation into a shared_ptr copy. Plans are immutable
 * after construction, which is what makes sharing them across pool
 * threads safe.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "ntt/negacyclic.h"
#include "ntt/plan.h"
#include "ntt/prime.h"

namespace mqx {
namespace engine {

class PlanCache
{
  public:
    /**
     * The plan for (q, n), deriving and inserting it on first use.
     * Lookups take the mutex shared; a miss registers an in-flight slot
     * under the exclusive lock and then derives the plan with no lock
     * held, so each key is built exactly once — concurrent misses on
     * the same key wait on the builder's future while other keys build
     * in parallel. A failed build is not cached.
     *
     * @throws InvalidArgument if (q, n) cannot support an NTT.
     */
    std::shared_ptr<const ntt::NttPlan> get(const U128& q, size_t n);

    std::shared_ptr<const ntt::NttPlan>
    get(const ntt::NttPrime& prime, size_t n)
    {
        return get(prime.q, n);
    }

    /**
     * The negacyclic tables (plan + psi twist tables) for (q, n),
     * memoized the same way — so a warm polymul does no modular setup
     * math at all. Reuses the plan map: a tables miss that finds the
     * cyclic plan already cached builds only the twist tables.
     *
     * @throws InvalidArgument unless 2n | q - 1.
     */
    std::shared_ptr<const ntt::NegacyclicTables>
    getNegacyclic(const U128& q, size_t n);

    std::shared_ptr<const ntt::NegacyclicTables>
    getNegacyclic(const ntt::NttPrime& prime, size_t n)
    {
        return getNegacyclic(prime.q, n);
    }

    /**
     * Total cached (or in-flight) entries across BOTH maps: cyclic
     * plans plus negacyclic tables. A warm polymul caches two entries
     * per (q, n) — the plan and the tables built on it — and eviction
     * or reporting logic must see both.
     */
    size_t size() const;

    /** Distinct (q, n) pairs with a cached (or in-flight) cyclic plan. */
    size_t planCount() const;

    /** Distinct (q, n) pairs with cached (or in-flight) negacyclic tables. */
    size_t negacyclicCount() const;

    /**
     * Total bytes of precomputed-table storage held by the cache:
     * every ready plan's twiddleBytes() — which counts the compact
     * power tables AND their Shoup companions — plus every ready
     * negacyclic entry's twist tableBytes() (twist/untwist values and
     * companions). In-flight entries (still building) contribute 0.
     * This is the real L2 footprint the paper's §5.4 discussion cares
     * about, not just the twiddle values.
     */
    size_t twiddleBytes() const;

    /**
     * Lookup counters (monotonic; for tests and bench reporting). Each
     * get()/getNegacyclic() call counts exactly one hit or miss.
     */
    uint64_t hits() const;
    uint64_t misses() const;

    /**
     * Lookup and build accounting in one consistent-enough snapshot
     * (relaxed reads; exact once the cache is quiescent). builds
     * counts actual derivations — a miss that loses the insert race
     * and waits on another thread's in-flight build is a miss but not
     * a build, so builds <= misses, and a warm second lookup of the
     * same key is one hit and zero new builds. build_ns is the total
     * wall time spent inside derivations (twiddle/twist table math);
     * the per-build latency distribution is the "plancache.build"
     * telemetry span.
     */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t builds = 0;
        uint64_t build_ns = 0;
    };
    Stats stats() const;

    /** Drop every cached plan (outstanding shared_ptrs stay valid). */
    void clear();

  private:
    struct Key
    {
        uint64_t q_hi;
        uint64_t q_lo;
        size_t n;

        bool
        operator==(const Key& o) const
        {
            return q_hi == o.q_hi && q_lo == o.q_lo && n == o.n;
        }
    };

    struct KeyHash
    {
        size_t
        operator()(const Key& k) const
        {
            // splitmix-style mix of the three words.
            uint64_t h = k.q_hi;
            for (uint64_t w : {k.q_lo, static_cast<uint64_t>(k.n)}) {
                h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            }
            return static_cast<size_t>(h);
        }
    };

    /**
     * Map values are shared_futures so a key under construction is
     * visible (and waitable) before its derivation finishes.
     */
    template <typename T>
    using Slot = std::shared_future<std::shared_ptr<const T>>;
    template <typename T>
    using SlotMap = std::unordered_map<Key, Slot<T>, KeyHash>;

    /**
     * Find-or-build @p key in @p map: exactly one caller becomes the
     * builder (runs @p build with no lock held, publishes through the
     * slot's promise); everyone else waits on the slot. @p hit reports
     * whether the key was already present. On a failed build the slot
     * is removed and the exception propagates (to waiters too).
     */
    template <typename T, typename Build>
    std::shared_ptr<const T> lookupOrBuild(SlotMap<T>& map, const Key& key,
                                           bool& hit, Build build);

    /** Plan lookup without touching the hit/miss counters. */
    std::shared_ptr<const ntt::NttPlan> planUncounted(const Key& key,
                                                      const U128& q);

    /**
     * Run @p build timed: bumps builds_/build_ns_ (and the global
     * plancache telemetry counters + "plancache.build" span) around the
     * derivation.
     */
    template <typename Build>
    auto timedBuild(Build build) -> decltype(build());

    mutable std::shared_mutex mutex_;
    SlotMap<ntt::NttPlan> plans_;
    SlotMap<ntt::NegacyclicTables> negacyclic_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> builds_{0};
    std::atomic<uint64_t> build_ns_{0};
};

} // namespace engine
} // namespace mqx
