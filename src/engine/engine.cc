/**
 * @file
 * Engine facade implementation: batched RNS channel dispatch, with the
 * robustness plumbing (robust/) threaded through every op — optional
 * cancellation checkpoints at task boundaries, policy-driven Freivalds
 * verification with repair-through-the-serial-path, and a fallback from
 * the interleaved batch kernels to the per-channel path on injected
 * batch failures.
 */
#include "engine/engine.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "core/config.h"
#include "robust/status.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace engine {

namespace {

Backend
requireAvailable(Backend backend)
{
    checkArg(backendAvailable(backend), "Engine: backend unavailable");
    return backend;
}

// Process-wide robustness counters; every Engine instance feeds the
// same ones so verification and recovery activity is visible in
// telemetry::snapshotJson() regardless of which engine did the work.
telemetry::Counter&
verifyChecks()
{
    static telemetry::Counter& c = telemetry::counter("verify.checks");
    return c;
}

telemetry::Counter&
verifyFailures()
{
    static telemetry::Counter& c = telemetry::counter("verify.failures");
    return c;
}

telemetry::Counter&
robustRetries()
{
    static telemetry::Counter& c = telemetry::counter("robust.retries");
    return c;
}

telemetry::Counter&
robustRepairs()
{
    static telemetry::Counter& c = telemetry::counter("robust.repairs");
    return c;
}

telemetry::Counter&
robustFailures()
{
    static telemetry::Counter& c = telemetry::counter("robust.failures");
    return c;
}

telemetry::Counter&
batchFallbacks()
{
    static telemetry::Counter& c =
        telemetry::counter("robust.batch_fallbacks");
    return c;
}

/**
 * Whether a StatusError escaping a batch kernel should propagate
 * instead of falling back to the serial path: cancellation and
 * corruption verdicts are about the op, not the kernel, and must reach
 * the caller. An injected kernel fault (FaultInjected) is exactly the
 * failure the fallback exists for.
 */
bool
propagateFromBatchKernel(const robust::StatusError& e)
{
    return e.status().code() != robust::StatusCode::FaultInjected;
}

} // namespace

Engine::Engine(EngineOptions options)
    : backend_(requireAvailable(options.backend)), verify_(options.verify),
      pool_(options.threads), workspaces_(options.max_workspaces)
{
}

bool
Engine::shouldVerify(uint64_t seq) const
{
    switch (verify_.policy) {
    case robust::VerifyPolicy::Off:
        return false;
    case robust::VerifyPolicy::Always:
        return true;
    case robust::VerifyPolicy::Sample:
        return verify_.sample_period <= 1 ||
               seq % verify_.sample_period == 0;
    }
    return false;
}

void
Engine::verifyRepairPolymul(
    const rns::RnsBasis& basis, size_t channel,
    const std::shared_ptr<const ntt::NegacyclicTables>& tables,
    const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
    rns::RnsPolynomial& c)
{
    const Modulus& m = basis.modulus(channel);
    verifyChecks().add(1);
    if (robust::checkNegacyclicPolymul(
            backend_, m, tables->psi(), a.channel(channel).span(),
            b.channel(channel).span(), c.channel(channel).span(),
            verify_.seed))
        return;
    verifyFailures().add(1);
    // The channel failed the evaluation identity: recompute it through
    // the fault-free serial path (no pools, no fault points) and
    // re-check. The repair is a full recomputation, so re-checking at
    // the same cached point is sound — a correct product always passes.
    for (size_t attempt = 0; attempt < verify_.max_retries; ++attempt) {
        robustRetries().add(1);
        rns::detail::polymulChannelUnfaulted(backend_, basis, channel,
                                             tables, a, b, c);
        if (robust::checkNegacyclicPolymul(
                backend_, m, tables->psi(), a.channel(channel).span(),
                b.channel(channel).span(), c.channel(channel).span(),
                verify_.seed)) {
            robustRepairs().add(1);
            return;
        }
    }
    robustFailures().add(1);
    robust::throwStatus(
        robust::StatusCode::DataCorruption,
        "Engine::polymulNegacyclic: a channel failed Freivalds "
        "verification after every repair retry");
}

void
Engine::verifyRepairFma(
    const rns::RnsBasis& basis, size_t channel,
    const std::shared_ptr<const ntt::NegacyclicTables>& tables,
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products,
    rns::RnsPolynomial& c)
{
    const Modulus& m = basis.modulus(channel);
    std::vector<std::pair<DConstSpan, DConstSpan>> spans;
    spans.reserve(products.size());
    for (const auto& [a, b] : products) {
        spans.emplace_back(a->channel(channel).span(),
                           b->channel(channel).span());
    }
    verifyChecks().add(1);
    if (robust::checkNegacyclicFma(backend_, m, tables->psi(), spans,
                                   c.channel(channel).span(), verify_.seed))
        return;
    verifyFailures().add(1);
    for (size_t attempt = 0; attempt < verify_.max_retries; ++attempt) {
        robustRetries().add(1);
        rns::detail::fmaChannelUnfaulted(backend_, basis, channel, tables,
                                         products, c);
        if (robust::checkNegacyclicFma(backend_, m, tables->psi(), spans,
                                       c.channel(channel).span(),
                                       verify_.seed)) {
            robustRepairs().add(1);
            return;
        }
    }
    robustFailures().add(1);
    robust::throwStatus(robust::StatusCode::DataCorruption,
                        "Engine::fmaBatch: a channel failed Freivalds "
                        "verification after every repair retry");
}

void
Engine::verifyRepairAdd(const rns::RnsBasis& basis, size_t channel,
                        const rns::RnsPolynomial& a,
                        const rns::RnsPolynomial& b, rns::RnsPolynomial& c)
{
    const Modulus& m = basis.modulus(channel);
    verifyChecks().add(1);
    if (robust::checkAddDigest(m, a.channel(channel).span(),
                               b.channel(channel).span(),
                               c.channel(channel).span()))
        return;
    verifyFailures().add(1);
    for (size_t attempt = 0; attempt < verify_.max_retries; ++attempt) {
        robustRetries().add(1);
        rns::detail::addChannelUnfaulted(backend_, basis, channel, a, b, c);
        if (robust::checkAddDigest(m, a.channel(channel).span(),
                                   b.channel(channel).span(),
                                   c.channel(channel).span())) {
            robustRepairs().add(1);
            return;
        }
    }
    robustFailures().add(1);
    robust::throwStatus(robust::StatusCode::DataCorruption,
                        "Engine::add: a channel failed the guard digest "
                        "after every repair retry");
}

void
Engine::addInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                rns::RnsPolynomial& c, const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.add");
    if (cancel)
        cancel->checkpoint("Engine::add");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(b, a.form(), "Engine::add");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), a.form(), "Engine::addInto");
    const uint64_t seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
    // The guard digest only holds for out-of-place sums: with c aliasing
    // an operand the inputs are gone by check time.
    const bool check = verify_.guard_digest && shouldVerify(seq) &&
                       &c != &a && &c != &b;
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            rns::detail::addChannel(backend_, basis, i, a, b, c);
            if (check)
                verifyRepairAdd(basis, i, a, b, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::add(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    // Construct-and-delegate: addInto re-validates the operands before
    // any channel work, so no checks are duplicated here (same pattern
    // for every value-returning form below).
    rns::RnsPolynomial c(a.basis(), a.n(), a.form());
    addInto(a, b, c);
    return c;
}

void
Engine::mulInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                rns::RnsPolynomial& c, const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.mul");
    if (cancel)
        cancel->checkpoint("Engine::mul");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(b, a.form(), "Engine::mul");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), a.form(), "Engine::mulInto");
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            rns::detail::mulChannel(backend_, basis, i, a, b, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::mul(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    rns::RnsPolynomial c(a.basis(), a.n(), a.form());
    mulInto(a, b, c);
    return c;
}

void
Engine::polymulNegacyclicInto(const rns::RnsPolynomial& a,
                              const rns::RnsPolynomial& b,
                              rns::RnsPolynomial& c,
                              const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.polymul");
    if (cancel)
        cancel->checkpoint("Engine::polymulNegacyclic");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(a, rns::Form::Coeff, "Engine::polymulNegacyclic");
    rns::detail::checkForm(b, rns::Form::Coeff, "Engine::polymulNegacyclic");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Coeff,
                           "Engine::polymulNegacyclicInto");
    const uint64_t seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
    // Freivalds needs the operands intact after the product, so skip
    // the check when the destination aliases one.
    const bool check = shouldVerify(seq) && &c != &a && &c != &b;
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            auto tables = plan_cache_.getNegacyclic(basis.prime(i), a.n());
            rns::detail::polymulChannel(backend_, basis, i, tables,
                                        workspaces_, a, b, c, cancel);
            if (check)
                verifyRepairPolymul(basis, i, tables, a, b, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::polymulNegacyclic(const rns::RnsPolynomial& a,
                          const rns::RnsPolynomial& b)
{
    rns::RnsPolynomial c(a.basis(), a.n());
    polymulNegacyclicInto(a, b, c);
    return c;
}

void
Engine::toEvalInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c,
                   const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.to_eval");
    if (cancel)
        cancel->checkpoint("Engine::toEval");
    rns::detail::checkForm(a, rns::Form::Coeff, "Engine::toEval");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Eval,
                           "Engine::toEvalInto");
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            rns::detail::toEvalChannel(
                backend_, basis, i,
                plan_cache_.getNegacyclic(basis.prime(i), a.n()), workspaces_,
                a, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::toEval(const rns::RnsPolynomial& a)
{
    rns::RnsPolynomial c(a.basis(), a.n(), rns::Form::Eval);
    toEvalInto(a, c);
    return c;
}

void
Engine::toCoeffInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c,
                    const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.to_coeff");
    if (cancel)
        cancel->checkpoint("Engine::toCoeff");
    rns::detail::checkForm(a, rns::Form::Eval, "Engine::toCoeff");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Coeff,
                           "Engine::toCoeffInto");
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            rns::detail::toCoeffChannel(
                backend_, basis, i,
                plan_cache_.getNegacyclic(basis.prime(i), a.n()), workspaces_,
                a, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::toCoeff(const rns::RnsPolynomial& a)
{
    rns::RnsPolynomial c(a.basis(), a.n(), rns::Form::Coeff);
    toCoeffInto(a, c);
    return c;
}

void
Engine::mulEvalInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                    rns::RnsPolynomial& c, const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.mul_eval");
    if (cancel)
        cancel->checkpoint("Engine::mulEval");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(a, rns::Form::Eval, "Engine::mulEval");
    rns::detail::checkForm(b, rns::Form::Eval, "Engine::mulEval");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Eval,
                           "Engine::mulEvalInto");
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            rns::detail::mulChannel(backend_, basis, i, a, b, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::mulEval(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    rns::RnsPolynomial c(a.basis(), a.n(), rns::Form::Eval);
    mulEvalInto(a, b, c);
    return c;
}

void
Engine::fmaBatchInto(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products,
    rns::RnsPolynomial& c, const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.fma_batch");
    if (cancel)
        cancel->checkpoint("Engine::fmaBatch");
    checkArg(!products.empty(), "Engine::fmaBatch: empty batch");
    for (const auto& [a, b] : products) {
        checkArg(a != nullptr && b != nullptr,
                 "Engine::fmaBatch: null operand");
    }
    const rns::RnsPolynomial& first = *products.front().first;
    for (const auto& [a, b] : products) {
        rns::detail::checkCompatible(first.basis(), *a, *b);
        checkArg(a->n() == first.n(),
                 "Engine::fmaBatch: length mismatch across batch");
    }
    const rns::RnsBasis& basis = first.basis();
    rns::detail::checkDest(c, basis, first.n(), rns::Form::Coeff,
                           "Engine::fmaBatchInto");
    // Interleaved-batch eligibility: enough all-Coeff products to fill
    // at least one channel-major tile, on a batch-capable plan shape
    // (direct, n >= 16 — shared by every channel since n is uniform).
    const size_t il = ntt::batchInterleave(backend_);
    bool all_coeff = true;
    bool aliased = false;
    for (const auto& [a, b] : products) {
        all_coeff = all_coeff && a->form() == rns::Form::Coeff &&
                    b->form() == rns::Form::Coeff;
        aliased = aliased || a == &c || b == &c;
    }
    const bool batched =
        all_coeff && products.size() >= il &&
        ntt::batchSupported(
            plan_cache_.getNegacyclic(basis.prime(0), first.n())->plan());
    const uint64_t seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
    // The Freivalds dot-product identity evaluates the Coeff operands
    // at the check point, so it needs an all-Coeff, non-aliased batch.
    const bool check = shouldVerify(seq) && all_coeff && !aliased;
    pool_.parallelFor(
        0, basis.size(),
        [&](size_t i) {
            auto tables =
                plan_cache_.getNegacyclic(basis.prime(i), first.n());
            if (batched) {
                try {
                    rns::detail::fmaChannelBatched(backend_, basis, i,
                                                   tables, workspaces_,
                                                   products, il, c);
                } catch (const robust::StatusError& e) {
                    if (propagateFromBatchKernel(e))
                        throw;
                    // Injected batch-kernel failure: recompute this
                    // channel through the fault-free serial path so one
                    // broken tile can't sink the whole op.
                    batchFallbacks().add(1);
                    rns::detail::fmaChannelUnfaulted(backend_, basis, i,
                                                     tables, products, c);
                } catch (const std::exception&) {
                    batchFallbacks().add(1);
                    rns::detail::fmaChannelUnfaulted(backend_, basis, i,
                                                     tables, products, c);
                }
            } else {
                rns::detail::fmaChannel(backend_, basis, i, tables,
                                        workspaces_, products, c, cancel);
            }
            if (check)
                verifyRepairFma(basis, i, tables, products, c);
        },
        cancel);
}

rns::RnsPolynomial
Engine::fmaBatch(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products)
{
    // Only the checks needed to construct the destination; fmaBatchInto
    // re-validates the whole batch.
    checkArg(!products.empty(), "Engine::fmaBatch: empty batch");
    checkArg(products.front().first != nullptr,
             "Engine::fmaBatch: null operand");
    const rns::RnsPolynomial& first = *products.front().first;
    rns::RnsPolynomial c(first.basis(), first.n());
    fmaBatchInto(products, c);
    return c;
}

std::vector<rns::RnsPolynomial>
Engine::polymulNegacyclicBatch(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products,
    const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(op_span, "engine.polymul_batch");
    if (cancel)
        cancel->checkpoint("Engine::polymulNegacyclicBatch");
    // Validate everything and lay out results before dispatch; the flat
    // (product, channel) index space keeps the pool saturated when
    // operands have fewer channels than there are threads.
    std::vector<rns::RnsPolynomial> results;
    results.reserve(products.size());
    std::vector<size_t> first_task(products.size() + 1, 0);
    for (size_t p = 0; p < products.size(); ++p) {
        const auto& [a, b] = products[p];
        checkArg(a != nullptr && b != nullptr,
                 "Engine::polymulNegacyclicBatch: null operand");
        rns::detail::checkCompatible(a->basis(), *a, *b);
        rns::detail::checkForm(*a, rns::Form::Coeff,
                               "Engine::polymulNegacyclicBatch");
        rns::detail::checkForm(*b, rns::Form::Coeff,
                               "Engine::polymulNegacyclicBatch");
        results.emplace_back(a->basis(), a->n());
        first_task[p + 1] = first_task[p] + a->basis().size();
    }
    // One sequence draw covers the whole batch: destinations are
    // freshly constructed above, so aliasing can't occur.
    const uint64_t seq = op_seq_.fetch_add(1, std::memory_order_relaxed);
    const bool check = shouldVerify(seq);

    // Interleaved-batch eligibility: a uniform batch (one basis, one
    // length) with at least one whole tile of il products, on a
    // batch-capable plan shape. Mixed-basis batches keep the flat
    // per-(product, channel) path below.
    const rns::RnsPolynomial& first = *products.front().first;
    const size_t il = ntt::batchInterleave(backend_);
    bool uniform = true;
    for (const auto& [a, b] : products) {
        uniform = uniform && &a->basis() == &first.basis() &&
                  a->n() == first.n();
    }
    if (uniform && products.size() >= il &&
        ntt::batchSupported(
            plan_cache_.getNegacyclic(first.basis().prime(0), first.n())
                ->plan())) {
        // Flat (channel, tile-or-remainder) task space: each whole tile
        // of il products runs the interleaved kernels once; the k % il
        // remainder products run per-channel. Still one flat
        // parallelFor — tasks never nest.
        const rns::RnsBasis& basis = first.basis();
        const size_t tiles = products.size() / il;
        const size_t rem = products.size() % il;
        const size_t per_channel = tiles + rem;
        pool_.parallelFor(
            0, basis.size() * per_channel,
            [&](size_t task) {
                const size_t channel = task / per_channel;
                const size_t slot = task % per_channel;
                auto tables = plan_cache_.getNegacyclic(
                    basis.prime(channel), first.n());
                if (slot < tiles) {
                    const size_t p0 = slot * il;
                    // Injected batch-kernel failure: redo every lane of
                    // this tile through the serial path.
                    auto redoTile = [&] {
                        batchFallbacks().add(1);
                        for (size_t p = p0; p < p0 + il; ++p) {
                            rns::detail::polymulChannelUnfaulted(
                                backend_, basis, channel, tables,
                                *products[p].first, *products[p].second,
                                results[p]);
                        }
                    };
                    try {
                        rns::detail::polymulChannelBatch(
                            backend_, basis, channel, tables, products, p0,
                            il, results);
                    } catch (const robust::StatusError& e) {
                        if (propagateFromBatchKernel(e))
                            throw;
                        redoTile();
                    } catch (const std::exception&) {
                        redoTile();
                    }
                    if (check) {
                        for (size_t p = p0; p < p0 + il; ++p) {
                            verifyRepairPolymul(basis, channel, tables,
                                                *products[p].first,
                                                *products[p].second,
                                                results[p]);
                        }
                    }
                } else {
                    const size_t p = tiles * il + (slot - tiles);
                    rns::detail::polymulChannel(
                        backend_, basis, channel, tables, workspaces_,
                        *products[p].first, *products[p].second, results[p],
                        cancel);
                    if (check)
                        verifyRepairPolymul(basis, channel, tables,
                                            *products[p].first,
                                            *products[p].second, results[p]);
                }
            },
            cancel);
        return results;
    }

    pool_.parallelFor(
        0, first_task.back(),
        [&](size_t task) {
            // Binary search for the product this flat index belongs to.
            size_t p = static_cast<size_t>(
                std::upper_bound(first_task.begin(), first_task.end(),
                                 task) -
                first_task.begin() - 1);
            size_t channel = task - first_task[p];
            const rns::RnsPolynomial& a = *products[p].first;
            const rns::RnsPolynomial& b = *products[p].second;
            auto tables =
                plan_cache_.getNegacyclic(a.basis().prime(channel), a.n());
            rns::detail::polymulChannel(backend_, a.basis(), channel, tables,
                                        workspaces_, a, b, results[p],
                                        cancel);
            if (check)
                verifyRepairPolymul(a.basis(), channel, tables, a, b,
                                    results[p]);
        },
        cancel);
    return results;
}

} // namespace engine
} // namespace mqx
