/**
 * @file
 * Engine facade implementation: batched RNS channel dispatch.
 */
#include "engine/engine.h"

#include <algorithm>

#include "core/config.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace engine {

namespace {

Backend
requireAvailable(Backend backend)
{
    checkArg(backendAvailable(backend), "Engine: backend unavailable");
    return backend;
}

} // namespace

Engine::Engine(EngineOptions options)
    : backend_(requireAvailable(options.backend)), pool_(options.threads)
{
}

void
Engine::addInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.add");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(b, a.form(), "Engine::add");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), a.form(), "Engine::addInto");
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::addChannel(backend_, basis, i, a, b, c);
    });
}

rns::RnsPolynomial
Engine::add(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    // Construct-and-delegate: addInto re-validates the operands before
    // any channel work, so no checks are duplicated here (same pattern
    // for every value-returning form below).
    rns::RnsPolynomial c(a.basis(), a.n(), a.form());
    addInto(a, b, c);
    return c;
}

void
Engine::mulInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.mul");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(b, a.form(), "Engine::mul");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), a.form(), "Engine::mulInto");
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::mulChannel(backend_, basis, i, a, b, c);
    });
}

rns::RnsPolynomial
Engine::mul(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    rns::RnsPolynomial c(a.basis(), a.n(), a.form());
    mulInto(a, b, c);
    return c;
}

void
Engine::polymulNegacyclicInto(const rns::RnsPolynomial& a,
                              const rns::RnsPolynomial& b,
                              rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.polymul");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(a, rns::Form::Coeff, "Engine::polymulNegacyclic");
    rns::detail::checkForm(b, rns::Form::Coeff, "Engine::polymulNegacyclic");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Coeff,
                           "Engine::polymulNegacyclicInto");
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::polymulChannel(
            backend_, basis, i,
            plan_cache_.getNegacyclic(basis.prime(i), a.n()), workspaces_, a,
            b, c);
    });
}

rns::RnsPolynomial
Engine::polymulNegacyclic(const rns::RnsPolynomial& a,
                          const rns::RnsPolynomial& b)
{
    rns::RnsPolynomial c(a.basis(), a.n());
    polymulNegacyclicInto(a, b, c);
    return c;
}

void
Engine::toEvalInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.to_eval");
    rns::detail::checkForm(a, rns::Form::Coeff, "Engine::toEval");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Eval,
                           "Engine::toEvalInto");
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::toEvalChannel(
            backend_, basis, i,
            plan_cache_.getNegacyclic(basis.prime(i), a.n()), workspaces_, a,
            c);
    });
}

rns::RnsPolynomial
Engine::toEval(const rns::RnsPolynomial& a)
{
    rns::RnsPolynomial c(a.basis(), a.n(), rns::Form::Eval);
    toEvalInto(a, c);
    return c;
}

void
Engine::toCoeffInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.to_coeff");
    rns::detail::checkForm(a, rns::Form::Eval, "Engine::toCoeff");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Coeff,
                           "Engine::toCoeffInto");
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::toCoeffChannel(
            backend_, basis, i,
            plan_cache_.getNegacyclic(basis.prime(i), a.n()), workspaces_, a,
            c);
    });
}

rns::RnsPolynomial
Engine::toCoeff(const rns::RnsPolynomial& a)
{
    rns::RnsPolynomial c(a.basis(), a.n(), rns::Form::Coeff);
    toCoeffInto(a, c);
    return c;
}

void
Engine::mulEvalInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                    rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.mul_eval");
    rns::detail::checkCompatible(a.basis(), a, b);
    rns::detail::checkForm(a, rns::Form::Eval, "Engine::mulEval");
    rns::detail::checkForm(b, rns::Form::Eval, "Engine::mulEval");
    const rns::RnsBasis& basis = a.basis();
    rns::detail::checkDest(c, basis, a.n(), rns::Form::Eval,
                           "Engine::mulEvalInto");
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::mulChannel(backend_, basis, i, a, b, c);
    });
}

rns::RnsPolynomial
Engine::mulEval(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    rns::RnsPolynomial c(a.basis(), a.n(), rns::Form::Eval);
    mulEvalInto(a, b, c);
    return c;
}

void
Engine::fmaBatchInto(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products,
    rns::RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(op_span, "engine.fma_batch");
    checkArg(!products.empty(), "Engine::fmaBatch: empty batch");
    for (const auto& [a, b] : products) {
        checkArg(a != nullptr && b != nullptr,
                 "Engine::fmaBatch: null operand");
    }
    const rns::RnsPolynomial& first = *products.front().first;
    for (const auto& [a, b] : products) {
        rns::detail::checkCompatible(first.basis(), *a, *b);
        checkArg(a->n() == first.n(),
                 "Engine::fmaBatch: length mismatch across batch");
    }
    const rns::RnsBasis& basis = first.basis();
    rns::detail::checkDest(c, basis, first.n(), rns::Form::Coeff,
                           "Engine::fmaBatchInto");
    // Interleaved-batch eligibility: enough all-Coeff products to fill
    // at least one channel-major tile, on a batch-capable plan shape
    // (direct, n >= 16 — shared by every channel since n is uniform).
    const size_t il = ntt::batchInterleave(backend_);
    bool all_coeff = true;
    for (const auto& [a, b] : products) {
        all_coeff = all_coeff && a->form() == rns::Form::Coeff &&
                    b->form() == rns::Form::Coeff;
    }
    const bool batched =
        all_coeff && products.size() >= il &&
        ntt::batchSupported(
            plan_cache_.getNegacyclic(basis.prime(0), first.n())->plan());
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        auto tables = plan_cache_.getNegacyclic(basis.prime(i), first.n());
        if (batched) {
            rns::detail::fmaChannelBatched(backend_, basis, i,
                                           std::move(tables), workspaces_,
                                           products, il, c);
        } else {
            rns::detail::fmaChannel(backend_, basis, i, std::move(tables),
                                    workspaces_, products, c);
        }
    });
}

rns::RnsPolynomial
Engine::fmaBatch(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products)
{
    // Only the checks needed to construct the destination; fmaBatchInto
    // re-validates the whole batch.
    checkArg(!products.empty(), "Engine::fmaBatch: empty batch");
    checkArg(products.front().first != nullptr,
             "Engine::fmaBatch: null operand");
    const rns::RnsPolynomial& first = *products.front().first;
    rns::RnsPolynomial c(first.basis(), first.n());
    fmaBatchInto(products, c);
    return c;
}

std::vector<rns::RnsPolynomial>
Engine::polymulNegacyclicBatch(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products)
{
    MQX_SCOPED_SPAN(op_span, "engine.polymul_batch");
    // Validate everything and lay out results before dispatch; the flat
    // (product, channel) index space keeps the pool saturated when
    // operands have fewer channels than there are threads.
    std::vector<rns::RnsPolynomial> results;
    results.reserve(products.size());
    std::vector<size_t> first_task(products.size() + 1, 0);
    for (size_t p = 0; p < products.size(); ++p) {
        const auto& [a, b] = products[p];
        checkArg(a != nullptr && b != nullptr,
                 "Engine::polymulNegacyclicBatch: null operand");
        rns::detail::checkCompatible(a->basis(), *a, *b);
        rns::detail::checkForm(*a, rns::Form::Coeff,
                               "Engine::polymulNegacyclicBatch");
        rns::detail::checkForm(*b, rns::Form::Coeff,
                               "Engine::polymulNegacyclicBatch");
        results.emplace_back(a->basis(), a->n());
        first_task[p + 1] = first_task[p] + a->basis().size();
    }

    // Interleaved-batch eligibility: a uniform batch (one basis, one
    // length) with at least one whole tile of il products, on a
    // batch-capable plan shape. Mixed-basis batches keep the flat
    // per-(product, channel) path below.
    const rns::RnsPolynomial& first = *products.front().first;
    const size_t il = ntt::batchInterleave(backend_);
    bool uniform = true;
    for (const auto& [a, b] : products) {
        uniform = uniform && &a->basis() == &first.basis() &&
                  a->n() == first.n();
    }
    if (uniform && products.size() >= il &&
        ntt::batchSupported(
            plan_cache_.getNegacyclic(first.basis().prime(0), first.n())
                ->plan())) {
        // Flat (channel, tile-or-remainder) task space: each whole tile
        // of il products runs the interleaved kernels once; the k % il
        // remainder products run per-channel. Still one flat
        // parallelFor — tasks never nest.
        const rns::RnsBasis& basis = first.basis();
        const size_t tiles = products.size() / il;
        const size_t rem = products.size() % il;
        const size_t per_channel = tiles + rem;
        pool_.parallelFor(0, basis.size() * per_channel, [&](size_t task) {
            const size_t channel = task / per_channel;
            const size_t slot = task % per_channel;
            auto tables =
                plan_cache_.getNegacyclic(basis.prime(channel), first.n());
            if (slot < tiles) {
                rns::detail::polymulChannelBatch(backend_, basis, channel,
                                                 std::move(tables), products,
                                                 slot * il, il, results);
            } else {
                const size_t p = tiles * il + (slot - tiles);
                rns::detail::polymulChannel(backend_, basis, channel,
                                            std::move(tables), workspaces_,
                                            *products[p].first,
                                            *products[p].second, results[p]);
            }
        });
        return results;
    }

    pool_.parallelFor(0, first_task.back(), [&](size_t task) {
        // Binary search for the product this flat index belongs to.
        size_t p = static_cast<size_t>(
            std::upper_bound(first_task.begin(), first_task.end(), task) -
            first_task.begin() - 1);
        size_t channel = task - first_task[p];
        const rns::RnsPolynomial& a = *products[p].first;
        const rns::RnsPolynomial& b = *products[p].second;
        rns::detail::polymulChannel(
            backend_, a.basis(), channel,
            plan_cache_.getNegacyclic(a.basis().prime(channel), a.n()),
            workspaces_, a, b, results[p]);
    });
    return results;
}

} // namespace engine
} // namespace mqx
