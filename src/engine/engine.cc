/**
 * @file
 * Engine facade implementation: batched RNS channel dispatch.
 */
#include "engine/engine.h"

#include <algorithm>

#include "core/config.h"

namespace mqx {
namespace engine {

namespace {

Backend
requireAvailable(Backend backend)
{
    checkArg(backendAvailable(backend), "Engine: backend unavailable");
    return backend;
}

} // namespace

Engine::Engine(EngineOptions options)
    : backend_(requireAvailable(options.backend)), pool_(options.threads)
{
}

rns::RnsPolynomial
Engine::add(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    rns::detail::checkCompatible(a.basis(), a, b);
    const rns::RnsBasis& basis = a.basis();
    rns::RnsPolynomial c(basis, a.n());
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::addChannel(backend_, basis, i, a, b, c);
    });
    return c;
}

rns::RnsPolynomial
Engine::mul(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b)
{
    rns::detail::checkCompatible(a.basis(), a, b);
    const rns::RnsBasis& basis = a.basis();
    rns::RnsPolynomial c(basis, a.n());
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::mulChannel(backend_, basis, i, a, b, c);
    });
    return c;
}

rns::RnsPolynomial
Engine::polymulNegacyclic(const rns::RnsPolynomial& a,
                          const rns::RnsPolynomial& b)
{
    rns::detail::checkCompatible(a.basis(), a, b);
    const rns::RnsBasis& basis = a.basis();
    rns::RnsPolynomial c(basis, a.n());
    pool_.parallelFor(0, basis.size(), [&](size_t i) {
        rns::detail::polymulChannel(backend_, basis, i,
                                    plan_cache_.getNegacyclic(basis.prime(i), a.n()),
                                    a, b, c);
    });
    return c;
}

std::vector<rns::RnsPolynomial>
Engine::polymulNegacyclicBatch(
    const std::vector<std::pair<const rns::RnsPolynomial*,
                                const rns::RnsPolynomial*>>& products)
{
    // Validate everything and lay out results before dispatch; the flat
    // (product, channel) index space keeps the pool saturated when
    // operands have fewer channels than there are threads.
    std::vector<rns::RnsPolynomial> results;
    results.reserve(products.size());
    std::vector<size_t> first_task(products.size() + 1, 0);
    for (size_t p = 0; p < products.size(); ++p) {
        const auto& [a, b] = products[p];
        checkArg(a != nullptr && b != nullptr,
                 "Engine::polymulNegacyclicBatch: null operand");
        rns::detail::checkCompatible(a->basis(), *a, *b);
        results.emplace_back(a->basis(), a->n());
        first_task[p + 1] = first_task[p] + a->basis().size();
    }

    pool_.parallelFor(0, first_task.back(), [&](size_t task) {
        // Binary search for the product this flat index belongs to.
        size_t p = static_cast<size_t>(
            std::upper_bound(first_task.begin(), first_task.end(), task) -
            first_task.begin() - 1);
        size_t channel = task - first_task[p];
        const rns::RnsPolynomial& a = *products[p].first;
        const rns::RnsPolynomial& b = *products[p].second;
        rns::detail::polymulChannel(
            backend_, a.basis(), channel,
            plan_cache_.getNegacyclic(a.basis().prime(channel), a.n()), a, b,
            results[p]);
    });
    return results;
}

} // namespace engine
} // namespace mqx
