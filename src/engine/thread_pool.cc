/**
 * @file
 * Thread-pool implementation.
 */
#include "engine/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

#include "core/env.h"
#include "robust/fault_injection.h"

namespace mqx {
namespace engine {

namespace {

// Ceiling on pool width. Channel tasks are coarse (a full NTT pipeline
// each), so nothing past a few hundred OS threads can ever help — and
// an over-large MQX_THREADS must not exhaust thread handles.
constexpr size_t kMaxThreads = 512;

// Process-wide scheduling counters (every pool feeds the same ones, so
// the telemetry snapshot shows total scheduler activity). Interned
// once; the registry guarantees the references stay valid forever.
telemetry::Counter&
tasksCounter()
{
    static telemetry::Counter& c = telemetry::counter("pool.tasks");
    return c;
}

telemetry::Counter&
stealsCounter()
{
    static telemetry::Counter& c = telemetry::counter("pool.steals");
    return c;
}

telemetry::Counter&
submittedCounter()
{
    static telemetry::Counter& c = telemetry::counter("pool.submitted");
    return c;
}

telemetry::Counter&
idleNsCounter()
{
    static telemetry::Counter& c = telemetry::counter("pool.idle_ns");
    return c;
}

telemetry::Counter&
skippedCounter()
{
    static telemetry::Counter& c = telemetry::counter("pool.skipped");
    return c;
}

/** Shared flags coordinating one parallelFor call's drain-on-failure. */
struct DrainState {
    /** Set on first task failure or cancellation: siblings skip. */
    std::atomic<bool> abort{false};
    /** Set only by the cancellation path (failure takes precedence). */
    std::atomic<bool> cancelled{false};
};

} // namespace

size_t
defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const uint64_t fallback = hw > 0 ? hw : 1;
    // The pool ctor re-clamps to kMaxThreads, so a large-but-valid
    // MQX_THREADS stays a clamp while garbage/0/negative/overflow fall
    // back to the hardware default with a telemetry note (core/env.h).
    return std::min(static_cast<size_t>(core::envUint("MQX_THREADS", fallback,
                                                      /*min_ok=*/1)),
                    kMaxThreads);
}

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    thread_count_ = threads < 1 ? 1 : std::min(threads, kMaxThreads);
    if (thread_count_ <= 1)
        return; // inline serial pool: no workers
    // thread_count_ - 1 workers: parallelFor's caller always executes
    // tasks too, so N-way parallelism needs N-1 extra threads — a full
    // N would oversubscribe an N-core host by one compute thread.
    const size_t worker_count = thread_count_ - 1;
    worker_counters_ = std::make_unique<WorkerCounters[]>(worker_count);
    workers_.reserve(worker_count);
    try {
        for (size_t i = 0; i < worker_count; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    } catch (...) {
        // Partial spawn (e.g. EAGAIN in a thread-limited container):
        // shut down the workers that did start, then surface the error
        // — otherwise their vector destructor would std::terminate.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread& w : workers_)
            w.join();
        workers_.clear();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats s;
    const size_t worker_count = workers_.size();
    s.worker_tasks.reserve(worker_count);
    s.worker_idle_ns.reserve(worker_count);
    for (size_t i = 0; i < worker_count; ++i) {
        s.worker_tasks.push_back(
            worker_counters_[i].tasks.load(std::memory_order_relaxed));
        s.worker_idle_ns.push_back(
            worker_counters_[i].idle_ns.load(std::memory_order_relaxed));
    }
    s.caller_tasks = caller_tasks_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.skipped = skipped_.load(std::memory_order_relaxed);
    return s;
}

void
ThreadPool::noteCallerTask(bool stolen)
{
    caller_tasks_.fetch_add(1, std::memory_order_relaxed);
    tasksCounter().add(1);
    if (stolen) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        stealsCounter().add(1);
    }
}

void
ThreadPool::workerLoop(size_t worker_index)
{
    telemetry::setThreadName("pool-worker-" + std::to_string(worker_index));
    WorkerCounters& wc = worker_counters_[worker_index];
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (queue_.empty() && !stop_) {
            // Blocked on an empty queue: the pool-overhead number the
            // attribution report cites (workers waiting, not working).
            const uint64_t t0 = telemetry::nowNs();
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            const uint64_t idle = telemetry::nowNs() - t0;
            wc.idle_ns.fetch_add(idle, std::memory_order_relaxed);
            idleNsCounter().add(idle);
        }
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        // Attribute BEFORE executing: the task's future becomes ready
        // the instant the body finishes, and a caller observing that
        // future must already see the task counted — otherwise the
        // quiescent-Stats invariant would race with the last bump.
        wc.tasks.fetch_add(1, std::memory_order_relaxed);
        tasksCounter().add(1);
        runOneTask(lock);
    }
}

/**
 * Pop and run one task with @p lock held on entry; the lock is released
 * around the task body and re-acquired before returning. Returns false
 * if the queue was empty.
 */
bool
ThreadPool::runOneTask(std::unique_lock<std::mutex>& lock)
{
    if (queue_.empty())
        return false;
    std::packaged_task<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task(); // exceptions land in the task's future
    lock.lock();
    return true;
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);
    submittedCounter().add(1);
    if (serial()) {
        // Count before running (see workerLoop): the future is ready as
        // soon as packaged() returns, and Stats must already include it.
        noteCallerTask(/*stolen=*/false);
        packaged();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)>& body,
                        const robust::CancelToken* cancel)
{
    if (begin >= end)
        return;
    const uint64_t count = static_cast<uint64_t>(end - begin);
    submitted_.fetch_add(count, std::memory_order_relaxed);
    submittedCounter().add(count);
    if (serial() || end - begin == 1) {
        // Same contract as the threaded path: once one index fails (or
        // the token trips) the rest drain as counted no-ops, then the
        // first failure surfaces — so partial results never depend on
        // the pool width.
        std::exception_ptr first_error;
        bool cancelled = false;
        uint64_t skipped = 0;
        for (size_t i = begin; i < end; ++i) {
            noteCallerTask(/*stolen=*/false);
            if (first_error || cancelled) {
                ++skipped;
                continue;
            }
            if (cancel && cancel->cancelled()) {
                cancelled = true;
                ++skipped;
                continue;
            }
            try {
                MQX_FAULT_POINT("thread_pool.task");
                body(i);
            } catch (...) {
                first_error = std::current_exception();
            }
        }
        if (skipped != 0) {
            skipped_.fetch_add(skipped, std::memory_order_relaxed);
            skippedCounter().add(skipped);
        }
        if (first_error)
            std::rethrow_exception(first_error);
        if (cancelled)
            throw robust::StatusError(cancel->status());
        return;
    }

    // Shared by this call's task wrappers only; safe on the stack
    // because every future is harvested before parallelFor returns, so
    // no wrapper can outlive it. Per-call state means one caller's
    // failure never drains another caller's tasks.
    DrainState drain;
    auto runTask = [this, &body, &drain, cancel](size_t i) {
        if (drain.abort.load(std::memory_order_acquire)) {
            skipped_.fetch_add(1, std::memory_order_relaxed);
            skippedCounter().add(1);
            return;
        }
        if (cancel && cancel->cancelled()) {
            drain.cancelled.store(true, std::memory_order_relaxed);
            drain.abort.store(true, std::memory_order_release);
            skipped_.fetch_add(1, std::memory_order_relaxed);
            skippedCounter().add(1);
            return;
        }
        try {
            MQX_FAULT_POINT("thread_pool.task");
            body(i);
        } catch (...) {
            drain.abort.store(true, std::memory_order_release);
            throw; // lands in this task's future; rethrown below
        }
    };

    std::vector<std::future<void>> futures;
    futures.reserve(end - begin);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = begin; i < end; ++i) {
            std::packaged_task<void()> task([&runTask, i] { runTask(i); });
            futures.push_back(task.get_future());
            queue_.push_back(std::move(task));
        }
    }
    cv_.notify_all();

    // Keep stealing tasks until every one of OUR futures is ready. A
    // single drain-then-block would go idle as soon as the queue is
    // momentarily empty — and under concurrent batch submission it
    // would also keep executing other callers' entire backlogs after
    // this call's own results were already done. Instead: harvest ready
    // futures in order, steal one task whenever the next future is
    // pending and the queue is non-empty, and block on the future only
    // when the queue is empty (our task was popped and is running on a
    // worker). Every index completes before return (body must not
    // dangle); the first failure surfaces after that.
    std::exception_ptr first_error;
    size_t next = 0;
    while (next < futures.size()) {
        if (futures[next].wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            try {
                futures[next].get();
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
            ++next;
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (!queue_.empty()) {
            // Count the steal before the task body runs — its future
            // may belong to another caller whose Stats read must not
            // outrun this attribution.
            noteCallerTask(/*stolen=*/true);
            runOneTask(lock);
            lock.unlock();
            continue; // stole something; re-check our futures
        }
        lock.unlock();
        futures[next].wait(); // queue empty: task is on a worker
    }
    if (first_error)
        std::rethrow_exception(first_error);
    if (drain.cancelled.load(std::memory_order_acquire))
        throw robust::StatusError(cancel->status());
}

} // namespace engine
} // namespace mqx
