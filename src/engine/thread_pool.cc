/**
 * @file
 * Thread-pool implementation.
 */
#include "engine/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace mqx {
namespace engine {

namespace {

// Ceiling on pool width. Channel tasks are coarse (a full NTT pipeline
// each), so nothing past a few hundred OS threads can ever help — and
// an over-large MQX_THREADS must not exhaust thread handles.
constexpr size_t kMaxThreads = 512;

} // namespace

size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("MQX_THREADS")) {
        char* end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return std::min(static_cast<size_t>(v), kMaxThreads);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    thread_count_ = threads < 1 ? 1 : std::min(threads, kMaxThreads);
    if (thread_count_ <= 1)
        return; // inline serial pool: no workers
    // thread_count_ - 1 workers: parallelFor's caller always executes
    // tasks too, so N-way parallelism needs N-1 extra threads — a full
    // N would oversubscribe an N-core host by one compute thread.
    workers_.reserve(thread_count_ - 1);
    try {
        for (size_t i = 0; i + 1 < thread_count_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Partial spawn (e.g. EAGAIN in a thread-limited container):
        // shut down the workers that did start, then surface the error
        // — otherwise their vector destructor would std::terminate.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread& w : workers_)
            w.join();
        workers_.clear();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        runOneTask(lock);
    }
}

/**
 * Pop and run one task with @p lock held on entry; the lock is released
 * around the task body and re-acquired before returning. Returns false
 * if the queue was empty.
 */
bool
ThreadPool::runOneTask(std::unique_lock<std::mutex>& lock)
{
    if (queue_.empty())
        return false;
    std::packaged_task<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task(); // exceptions land in the task's future
    lock.lock();
    return true;
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    if (serial()) {
        packaged();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)>& body)
{
    if (begin >= end)
        return;
    if (serial() || end - begin == 1) {
        // Same exception contract as the threaded path: every index
        // runs, then the first failure surfaces — so partial results
        // never depend on the pool width.
        std::exception_ptr first_error;
        for (size_t i = begin; i < end; ++i) {
            try {
                body(i);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
        if (first_error)
            std::rethrow_exception(first_error);
        return;
    }

    std::vector<std::future<void>> futures;
    futures.reserve(end - begin);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = begin; i < end; ++i) {
            std::packaged_task<void()> task([&body, i] { body(i); });
            futures.push_back(task.get_future());
            queue_.push_back(std::move(task));
        }
    }
    cv_.notify_all();

    // Keep stealing tasks until every one of OUR futures is ready. A
    // single drain-then-block would go idle as soon as the queue is
    // momentarily empty — and under concurrent batch submission it
    // would also keep executing other callers' entire backlogs after
    // this call's own results were already done. Instead: harvest ready
    // futures in order, steal one task whenever the next future is
    // pending and the queue is non-empty, and block on the future only
    // when the queue is empty (our task was popped and is running on a
    // worker). Every index completes before return (body must not
    // dangle); the first failure surfaces after that.
    std::exception_ptr first_error;
    size_t next = 0;
    while (next < futures.size()) {
        if (futures[next].wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            try {
                futures[next].get();
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
            ++next;
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (runOneTask(lock))
            continue; // stole something; re-check our futures
        lock.unlock();
        futures[next].wait(); // queue empty: task is on a worker
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace engine
} // namespace mqx
