/**
 * @file
 * The parallel execution engine: thread pool + plan cache + resolved
 * backend behind one facade.
 *
 * The paper closes the per-core gap between CPUs and specialized
 * hardware (Sections 3-5); this layer goes after the other CPU
 * advantage, core count. RNS residue channels are independent by
 * construction, so every channel-wise op (`rns/rns.h`) fans out across
 * the pool, and a batch API runs many independent polymuls as one flat
 * task set — the same independent-lane scheduling that accelerators
 * like CRYPTONITE exploit, on commodity cores.
 *
 * Determinism: channel results never depend on execution order, so an
 * Engine with any thread count is bit-identical to the serial
 * RnsKernels path; with threads == 1 it IS the serial path (the pool
 * runs tasks inline on the caller, in channel order).
 */
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "engine/plan_cache.h"
#include "engine/thread_pool.h"
#include "rns/rns.h"

namespace mqx {
namespace engine {

struct EngineOptions
{
    /** Kernel tier for every channel op; must be available. */
    Backend backend = bestBackend();
    /** Pool width; 0 = MQX_THREADS env, else hardware concurrency. */
    size_t threads = 0;
};

class Engine
{
  public:
    explicit Engine(EngineOptions options);
    Engine() : Engine(EngineOptions{}) {}
    Engine(Backend backend, size_t threads = 0)
        : Engine(EngineOptions{backend, threads})
    {
    }

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    Backend backend() const { return backend_; }
    size_t threads() const { return pool_.threadCount(); }

    ThreadPool& pool() { return pool_; }
    PlanCache& planCache() { return plan_cache_; }

    /**
     * Recycled per-task transform workspaces: every channel task leases
     * a NegacyclicEngine (buffers + tables binding) from this pool, so
     * a warmed-up engine performs zero heap allocations per op — the
     * steady state is a mutex pop, not four length-n buffer
     * allocations. Grows to the peak concurrent task count and stays
     * there.
     */
    ntt::NegacyclicWorkspacePool& workspacePool() { return workspaces_; }

    /**
     * Every operation below has a value-returning convenience form and
     * an `*Into` form writing into a caller-preallocated destination
     * (matching basis/length, constructed in the result form). The Into
     * forms are the allocation-free steady-state path; the value forms
     * simply construct the destination and delegate.
     */

    /**
     * c = a + b: channels fanned out across the pool. Valid in either
     * form (the NTT is linear), but the operands must match; the result
     * carries their form.
     */
    rns::RnsPolynomial add(const rns::RnsPolynomial& a,
                           const rns::RnsPolynomial& b);
    void addInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                 rns::RnsPolynomial& c);

    /** c = a .* b (point-wise; same-form operands), channels fanned out. */
    rns::RnsPolynomial mul(const rns::RnsPolynomial& a,
                           const rns::RnsPolynomial& b);
    void mulInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                 rns::RnsPolynomial& c);

    /**
     * a * b mod (x^n + 1, Q) for Coeff-form operands: each channel runs
     * the full twist + NTT + point-wise + inverse pipeline on a pool
     * thread, with the cyclic plan taken from the cache and the scratch
     * leased from the workspace pool.
     */
    rns::RnsPolynomial polymulNegacyclic(const rns::RnsPolynomial& a,
                                         const rns::RnsPolynomial& b);
    void polymulNegacyclicInto(const rns::RnsPolynomial& a,
                               const rns::RnsPolynomial& b,
                               rns::RnsPolynomial& c);

    /**
     * Forward every channel into Eval form (cached NegacyclicTables,
     * channels fanned across the pool). In Eval form the ring product
     * is mulEval's point-wise pass — no transforms — so chained
     * products and sums can stay transform-resident and pay a single
     * toCoeff at the end. @throws InvalidArgument unless Coeff form.
     */
    rns::RnsPolynomial toEval(const rns::RnsPolynomial& a);
    void toEvalInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c);

    /** Inverse of toEval. @throws InvalidArgument unless Eval form. */
    rns::RnsPolynomial toCoeff(const rns::RnsPolynomial& a);
    void toCoeffInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c);

    /**
     * Negacyclic ring product of two Eval-form operands: one point-wise
     * multiply per channel, zero transforms. Result stays Eval.
     */
    rns::RnsPolynomial mulEval(const rns::RnsPolynomial& a,
                               const rns::RnsPolynomial& b);
    void mulEvalInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                     rns::RnsPolynomial& c);

    /**
     * Fused dot product sum_i a_i * b_i mod (x^n + 1, Q), one channel
     * per pool task. Pairs may mix forms (Coeff operands are forwarded
     * on the fly); accumulation runs in the transform domain so each
     * channel pays ONE inverse transform for the whole batch — 2k
     * forward + 1 inverse instead of the naive 2k + k. Exact modular
     * arithmetic makes the Coeff-form result bit-identical to summing k
     * polymulNegacyclic calls. @throws InvalidArgument on an empty
     * batch or mismatched operands.
     *
     * When every operand is Coeff form and the batch holds at least
     * ntt::batchInterleave(backend()) products on a batch-capable plan,
     * whole tiles of il products run their forward transforms through
     * the interleaved batch kernels (core/batch_layout.h) — still
     * bit-identical, since exact mod-q accumulation is
     * order-independent and each lane's transform is word-identical to
     * the per-channel kernel.
     */
    rns::RnsPolynomial fmaBatch(
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products);
    void fmaBatchInto(
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products,
        rns::RnsPolynomial& c);

    /**
     * Run many independent negacyclic products concurrently. All
     * (product, channel) pairs are dispatched as one flat task set, so
     * the pool stays saturated even when individual operands have fewer
     * channels than there are threads. Thread-safe: multiple caller
     * threads may submit batches (and single ops) concurrently.
     *
     * Uniform batches (one basis, one length) of at least
     * ntt::batchInterleave(backend()) products on a batch-capable plan
     * dispatch whole tiles of il products through the interleaved batch
     * kernels — one stage sweep serves il products per channel, with
     * per-lane results word-identical to the per-channel path.
     */
    std::vector<rns::RnsPolynomial> polymulNegacyclicBatch(
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products);

  private:
    Backend backend_;
    ThreadPool pool_;
    PlanCache plan_cache_;
    ntt::NegacyclicWorkspacePool workspaces_;
};

} // namespace engine
} // namespace mqx
