/**
 * @file
 * The parallel execution engine: thread pool + plan cache + resolved
 * backend behind one facade.
 *
 * The paper closes the per-core gap between CPUs and specialized
 * hardware (Sections 3-5); this layer goes after the other CPU
 * advantage, core count. RNS residue channels are independent by
 * construction, so every channel-wise op (`rns/rns.h`) fans out across
 * the pool, and a batch API runs many independent polymuls as one flat
 * task set — the same independent-lane scheduling that accelerators
 * like CRYPTONITE exploit, on commodity cores.
 *
 * Determinism: channel results never depend on execution order, so an
 * Engine with any thread count is bit-identical to the serial
 * RnsKernels path; with threads == 1 it IS the serial path (the pool
 * runs tasks inline on the caller, in channel order).
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "engine/plan_cache.h"
#include "engine/thread_pool.h"
#include "rns/rns.h"
#include "robust/cancel.h"
#include "robust/verify.h"

namespace mqx {
namespace engine {

struct EngineOptions
{
    /** Kernel tier for every channel op; must be available. */
    Backend backend = bestBackend();
    /** Pool width; 0 = MQX_THREADS env, else hardware concurrency. */
    size_t threads = 0;
    /**
     * Integrity verification (robust/verify.h): with a non-Off policy,
     * checked ops run a Freivalds evaluation identity per channel after
     * the kernels and transparently recompute failing channels through
     * the serial per-channel path (bounded retries, then
     * robust::StatusError with DataCorruption). Off by default: zero
     * overhead.
     */
    robust::VerifyOptions verify;
    /**
     * Cap on live negacyclic workspace engines; 0 = unbounded
     * (default, the library behaviour). The service layer bounds this
     * so overload waits on the pool — cancel-aware — instead of
     * growing workspace memory without limit.
     */
    size_t max_workspaces = 0;
};

class Engine
{
  public:
    explicit Engine(EngineOptions options);
    Engine() : Engine(EngineOptions{}) {}
    Engine(Backend backend, size_t threads = 0)
        : Engine(EngineOptions{backend, threads, {}})
    {
    }

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    Backend backend() const { return backend_; }
    size_t threads() const { return pool_.threadCount(); }

    ThreadPool& pool() { return pool_; }
    PlanCache& planCache() { return plan_cache_; }

    /**
     * Recycled per-task transform workspaces: every channel task leases
     * a NegacyclicEngine (buffers + tables binding) from this pool, so
     * a warmed-up engine performs zero heap allocations per op — the
     * steady state is a mutex pop, not four length-n buffer
     * allocations. Grows to the peak concurrent task count and stays
     * there.
     */
    ntt::NegacyclicWorkspacePool& workspacePool() { return workspaces_; }

    /** Verification policy this engine runs with (EngineOptions). */
    const robust::VerifyOptions& verifyOptions() const { return verify_; }

    /**
     * Every operation below has a value-returning convenience form and
     * an `*Into` form writing into a caller-preallocated destination
     * (matching basis/length, constructed in the result form). The Into
     * forms are the allocation-free steady-state path; the value forms
     * simply construct the destination and delegate.
     *
     * Cancellation: the *Into forms (and polymulNegacyclicBatch) take
     * an optional robust::CancelToken. When supplied, it is checked on
     * entry, at every pool task boundary, and between NTT stages of
     * transform-bearing channels; a tripped token (explicit cancel or
     * expired deadline) aborts the op with robust::StatusError, with
     * all workspace leases released and the pool consistent. The
     * destination's contents are unspecified after an abort.
     */

    /**
     * c = a + b: channels fanned out across the pool. Valid in either
     * form (the NTT is linear), but the operands must match; the result
     * carries their form.
     */
    rns::RnsPolynomial add(const rns::RnsPolynomial& a,
                           const rns::RnsPolynomial& b);
    void addInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                 rns::RnsPolynomial& c,
                 const robust::CancelToken* cancel = nullptr);

    /** c = a .* b (point-wise; same-form operands), channels fanned out. */
    rns::RnsPolynomial mul(const rns::RnsPolynomial& a,
                           const rns::RnsPolynomial& b);
    void mulInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                 rns::RnsPolynomial& c,
                 const robust::CancelToken* cancel = nullptr);

    /**
     * a * b mod (x^n + 1, Q) for Coeff-form operands: each channel runs
     * the full twist + NTT + point-wise + inverse pipeline on a pool
     * thread, with the cyclic plan taken from the cache and the scratch
     * leased from the workspace pool.
     */
    rns::RnsPolynomial polymulNegacyclic(const rns::RnsPolynomial& a,
                                         const rns::RnsPolynomial& b);
    void polymulNegacyclicInto(const rns::RnsPolynomial& a,
                               const rns::RnsPolynomial& b,
                               rns::RnsPolynomial& c,
                               const robust::CancelToken* cancel = nullptr);

    /**
     * Forward every channel into Eval form (cached NegacyclicTables,
     * channels fanned across the pool). In Eval form the ring product
     * is mulEval's point-wise pass — no transforms — so chained
     * products and sums can stay transform-resident and pay a single
     * toCoeff at the end. @throws InvalidArgument unless Coeff form.
     */
    rns::RnsPolynomial toEval(const rns::RnsPolynomial& a);
    void toEvalInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c,
                    const robust::CancelToken* cancel = nullptr);

    /** Inverse of toEval. @throws InvalidArgument unless Eval form. */
    rns::RnsPolynomial toCoeff(const rns::RnsPolynomial& a);
    void toCoeffInto(const rns::RnsPolynomial& a, rns::RnsPolynomial& c,
                     const robust::CancelToken* cancel = nullptr);

    /**
     * Negacyclic ring product of two Eval-form operands: one point-wise
     * multiply per channel, zero transforms. Result stays Eval.
     */
    rns::RnsPolynomial mulEval(const rns::RnsPolynomial& a,
                               const rns::RnsPolynomial& b);
    void mulEvalInto(const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
                     rns::RnsPolynomial& c,
                     const robust::CancelToken* cancel = nullptr);

    /**
     * Fused dot product sum_i a_i * b_i mod (x^n + 1, Q), one channel
     * per pool task. Pairs may mix forms (Coeff operands are forwarded
     * on the fly); accumulation runs in the transform domain so each
     * channel pays ONE inverse transform for the whole batch — 2k
     * forward + 1 inverse instead of the naive 2k + k. Exact modular
     * arithmetic makes the Coeff-form result bit-identical to summing k
     * polymulNegacyclic calls. @throws InvalidArgument on an empty
     * batch or mismatched operands.
     *
     * When every operand is Coeff form and the batch holds at least
     * ntt::batchInterleave(backend()) products on a batch-capable plan,
     * whole tiles of il products run their forward transforms through
     * the interleaved batch kernels (core/batch_layout.h) — still
     * bit-identical, since exact mod-q accumulation is
     * order-independent and each lane's transform is word-identical to
     * the per-channel kernel.
     */
    rns::RnsPolynomial fmaBatch(
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products);
    void fmaBatchInto(
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products,
        rns::RnsPolynomial& c, const robust::CancelToken* cancel = nullptr);

    /**
     * Run many independent negacyclic products concurrently. All
     * (product, channel) pairs are dispatched as one flat task set, so
     * the pool stays saturated even when individual operands have fewer
     * channels than there are threads. Thread-safe: multiple caller
     * threads may submit batches (and single ops) concurrently.
     *
     * Uniform batches (one basis, one length) of at least
     * ntt::batchInterleave(backend()) products on a batch-capable plan
     * dispatch whole tiles of il products through the interleaved batch
     * kernels — one stage sweep serves il products per channel, with
     * per-lane results word-identical to the per-channel path.
     */
    std::vector<rns::RnsPolynomial> polymulNegacyclicBatch(
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products,
        const robust::CancelToken* cancel = nullptr);

  private:
    /** True for ops whose sequence number the policy says to check. */
    bool shouldVerify(uint64_t seq) const;

    /**
     * Check-and-repair helpers: run the Freivalds (or digest) identity
     * on one finished channel; on mismatch recompute it through the
     * fault-free serial path up to verify_.max_retries times, then
     * surface DataCorruption. All checks of one (q, n) shape share the
     * cached evaluation point for verify_.seed — the point where any
     * single flipped word is detected deterministically.
     */
    void verifyRepairPolymul(
        const rns::RnsBasis& basis, size_t channel,
        const std::shared_ptr<const ntt::NegacyclicTables>& tables,
        const rns::RnsPolynomial& a, const rns::RnsPolynomial& b,
        rns::RnsPolynomial& c);
    void verifyRepairFma(
        const rns::RnsBasis& basis, size_t channel,
        const std::shared_ptr<const ntt::NegacyclicTables>& tables,
        const std::vector<std::pair<const rns::RnsPolynomial*,
                                    const rns::RnsPolynomial*>>& products,
        rns::RnsPolynomial& c);
    void verifyRepairAdd(const rns::RnsBasis& basis, size_t channel,
                         const rns::RnsPolynomial& a,
                         const rns::RnsPolynomial& b, rns::RnsPolynomial& c);

    Backend backend_;
    robust::VerifyOptions verify_;
    ThreadPool pool_;
    PlanCache plan_cache_;
    ntt::NegacyclicWorkspacePool workspaces_;
    /** Op sequence for the Sample verification policy. */
    std::atomic<uint64_t> op_seq_{0};
};

} // namespace engine
} // namespace mqx
