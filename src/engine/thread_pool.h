/**
 * @file
 * A small fixed-size thread pool for fanning independent kernel work
 * (RNS residue channels, batched polymuls) across cores.
 *
 * RNS channels are embarrassingly parallel by construction — the whole
 * point of the residue decomposition (paper Section 1) is that channel
 * arithmetic never communicates — so the pool needs no work stealing:
 * a single locked deque plus a condition variable is contention-free at
 * kernel granularity (each task is an NTT pipeline or a length-n
 * point-wise op, microseconds to milliseconds of work).
 *
 * Serial fallback: a pool constructed with <= 1 thread starts no worker
 * threads at all; submit() and parallelFor() execute inline on the
 * calling thread, in index order — bit-identical to (indeed, the same
 * code path as) a plain sequential loop.
 *
 * Scheduling accounting: every task execution is attributed to exactly
 * one executor — a worker thread (per-worker counter), or a caller
 * thread running tasks inline (serial pool) or stealing from the queue
 * while it waits in parallelFor. The per-pool Stats invariant
 * `sum(worker_tasks) + caller_tasks == submitted` holds whenever the
 * pool is quiescent, and the same events feed the process-wide
 * telemetry counters (pool.tasks / pool.steals / pool.submitted /
 * pool.idle_ns) so scheduler behaviour shows up in
 * telemetry::snapshotJson() next to the kernel spans. Workers also
 * name their trace lanes ("pool-worker-N"), which is what gives the
 * Chrome trace export one swimlane per worker.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "robust/cancel.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace engine {

/**
 * Worker thread count for pools created with threads == 0: the
 * MQX_THREADS environment variable when set to a positive integer,
 * otherwise std::thread::hardware_concurrency() (at least 1).
 * Hardened parsing (core/env.h): garbage, 0, negative, or overflowing
 * values fall back to hardware_concurrency() with a one-time
 * `env.fallback.MQX_THREADS` telemetry note — a typoed knob degrades
 * to the default instead of UB or a surprise clamp.
 */
size_t defaultThreadCount();

class ThreadPool
{
  public:
    /**
     * Scheduling counters since construction. Consistent (the
     * documented invariant holds exactly) once the pool is quiescent —
     * no parallelFor in flight and every submitted future ready;
     * mid-flight reads are approximate but tear-free.
     */
    struct Stats
    {
        /** Tasks executed by each worker thread (size threadCount()-1). */
        std::vector<uint64_t> worker_tasks;
        /** Nanoseconds each worker spent blocked on an empty queue. */
        std::vector<uint64_t> worker_idle_ns;
        /** Tasks executed on caller threads (inline serial + steals). */
        uint64_t caller_tasks = 0;
        /** Subset of caller_tasks stolen from the shared queue. */
        uint64_t steals = 0;
        /** Tasks handed to the pool (submit + parallelFor bodies). */
        uint64_t submitted = 0;
        /**
         * parallelFor bodies that were drained as no-ops after a
         * sibling task failed or the call's CancelToken tripped. A
         * skipped task still counts toward worker_tasks/caller_tasks
         * (its no-op wrapper runs on some executor), so the
         * sum(worker_tasks) + caller_tasks == submitted invariant is
         * unchanged; `skipped` says how many of those executions did
         * no useful work.
         */
        uint64_t skipped = 0;

        uint64_t
        executed() const
        {
            uint64_t total = caller_tasks;
            for (uint64_t t : worker_tasks)
                total += t;
            return total;
        }
    };

    /**
     * @param threads worker count; 0 means defaultThreadCount(). A
     *                resolved count <= 1 yields the inline serial pool.
     */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Parallelism this pool provides, counting the parallelFor caller
     * (which always executes tasks): threadCount() - 1 worker threads
     * exist, and 1 means the inline serial pool with none.
     */
    size_t threadCount() const { return thread_count_; }

    /** True when no worker threads exist and tasks run on the caller. */
    bool serial() const { return workers_.empty(); }

    /** Current scheduling counters (see Stats for the invariant). */
    Stats stats() const;

    /**
     * Enqueue @p task. The future reports completion and rethrows any
     * exception the task threw. On a serial pool the task runs before
     * submit() returns.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i) for every i in [begin, end), one task per index, and
     * wait for all of them. The calling thread keeps stealing queued
     * tasks until every one of its own futures is ready — not just
     * until the first time the queue drains — so under concurrent batch
     * submission a caller neither sits idle while its tasks wait behind
     * another batch nor keeps chewing through foreign backlogs after
     * its own results are done.
     *
     * Failure semantics: once any task of THIS call throws, the call's
     * remaining tasks are drained as cheap no-ops (a checked flag per
     * call; counted in Stats::skipped) instead of running to
     * completion, every future is still harvested (so @p body never
     * outlives the call), and then the first exception is rethrown.
     * Tasks already running when the failure happens do complete;
     * other concurrent parallelFor calls are unaffected.
     *
     * Cancellation: when @p cancel is non-null it is polled at every
     * task boundary. Once cancelled (explicitly or by deadline), not-
     * yet-started tasks drain as no-ops and the call throws
     * robust::StatusError with the token's status — unless a task
     * failure was observed first, which takes precedence. The token is
     * only read during the call; the caller keeps ownership.
     *
     * Safe to call from several external threads concurrently; must
     * not be called from inside a pool task.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)>& body,
                     const robust::CancelToken* cancel = nullptr);

  private:
    /** Per-worker slots, cache-line padded (each has one writer). */
    struct alignas(64) WorkerCounters
    {
        std::atomic<uint64_t> tasks{0};
        std::atomic<uint64_t> idle_ns{0};
    };

    void workerLoop(size_t worker_index);
    bool runOneTask(std::unique_lock<std::mutex>& lock);
    void noteCallerTask(bool stolen);

    size_t thread_count_ = 1;
    std::vector<std::thread> workers_;
    std::unique_ptr<WorkerCounters[]> worker_counters_;
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> caller_tasks_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> skipped_{0};
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace engine
} // namespace mqx
