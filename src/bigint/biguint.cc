/**
 * @file
 * BigUInt implementation: schoolbook multiplication and Knuth Algorithm D
 * division over 64-bit limbs, built on the carry/widening primitives in
 * u128.h so the same code compiles with or without native __int128.
 */
#include "bigint/biguint.h"

#include <algorithm>
#include <array>

namespace mqx {

namespace {

/**
 * Divide the 128-bit value hi:lo by a 64-bit divisor, assuming hi < d so
 * the quotient fits in 64 bits. Used by Algorithm D's qhat estimate.
 */
void
div128by64(uint64_t hi, uint64_t lo, uint64_t d, uint64_t& q, uint64_t& r)
{
#if MQX_HAVE_INT128
    unsigned __int128 n = (static_cast<unsigned __int128>(hi) << 64) | lo;
    q = static_cast<uint64_t>(n / d);
    r = static_cast<uint64_t>(n % d);
#else
    // Portable restoring division, one bit at a time.
    uint64_t quo = 0, rem = hi;
    for (int i = 63; i >= 0; --i) {
        uint64_t top = rem >> 63;
        rem = (rem << 1) | ((lo >> i) & 1);
        if (top || rem >= d) {
            rem -= d;
            quo |= uint64_t{1} << i;
        }
    }
    q = quo;
    r = rem;
#endif
}

int
countLeadingZeros64(uint64_t x)
{
    return x ? __builtin_clzll(x) : 64;
}

} // namespace

BigUInt::BigUInt(uint64_t value)
{
    if (value)
        limbs_.push_back(value);
}

BigUInt
BigUInt::fromU128(const U128& v)
{
    BigUInt r;
    if (v.hi) {
        r.limbs_ = {v.lo, v.hi};
    } else if (v.lo) {
        r.limbs_ = {v.lo};
    }
    return r;
}

U128
BigUInt::toU128() const
{
    return U128::fromParts(limb(1), limb(0));
}

int
BigUInt::bits() const
{
    if (limbs_.empty())
        return 0;
    return static_cast<int>(64 * (limbs_.size() - 1)) +
           bitLength64(limbs_.back());
}

void
BigUInt::normalize()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

int
BigUInt::compare(const BigUInt& a, const BigUInt& b)
{
    if (a.limbs_.size() != b.limbs_.size())
        return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i])
            return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigUInt
operator+(const BigUInt& a, const BigUInt& b)
{
    BigUInt r;
    size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    r.limbs_.resize(n + 1, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i)
        carry = addc64(a.limb(i), b.limb(i), carry, r.limbs_[i]);
    r.limbs_[n] = carry;
    r.normalize();
    return r;
}

BigUInt
operator-(const BigUInt& a, const BigUInt& b)
{
    checkArg(a >= b, "BigUInt subtraction underflow");
    BigUInt r;
    r.limbs_.resize(a.limbs_.size(), 0);
    uint64_t borrow = 0;
    for (size_t i = 0; i < a.limbs_.size(); ++i)
        borrow = subb64(a.limbs_[i], b.limb(i), borrow, r.limbs_[i]);
    r.normalize();
    return r;
}

BigUInt
operator*(const BigUInt& a, const BigUInt& b)
{
    if (a.isZero() || b.isZero())
        return BigUInt{};
    BigUInt r;
    r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
        uint64_t carry = 0;
        for (size_t j = 0; j < b.limbs_.size(); ++j) {
            uint64_t p_hi = 0, p_lo = 0;
            mulWide64(a.limbs_[i], b.limbs_[j], p_hi, p_lo);
            uint64_t c1 = addc64(r.limbs_[i + j], p_lo, 0, r.limbs_[i + j]);
            uint64_t c2 = addc64(r.limbs_[i + j], carry, 0, r.limbs_[i + j]);
            carry = p_hi + c1 + c2; // cannot overflow: p_hi <= 2^64 - 2
        }
        r.limbs_[i + b.limbs_.size()] += carry;
    }
    r.normalize();
    return r;
}

BigUInt
operator<<(const BigUInt& a, int s)
{
    checkArg(s >= 0, "BigUInt shift amount must be non-negative");
    if (a.isZero() || s == 0)
        return a;
    size_t word = static_cast<size_t>(s) / 64;
    int bitoff = s % 64;
    BigUInt r;
    r.limbs_.assign(a.limbs_.size() + word + 1, 0);
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
        r.limbs_[i + word] |= a.limbs_[i] << bitoff;
        if (bitoff)
            r.limbs_[i + word + 1] |= a.limbs_[i] >> (64 - bitoff);
    }
    r.normalize();
    return r;
}

BigUInt
operator>>(const BigUInt& a, int s)
{
    checkArg(s >= 0, "BigUInt shift amount must be non-negative");
    if (a.isZero() || s == 0)
        return a;
    size_t word = static_cast<size_t>(s) / 64;
    int bitoff = s % 64;
    if (word >= a.limbs_.size())
        return BigUInt{};
    BigUInt r;
    r.limbs_.assign(a.limbs_.size() - word, 0);
    for (size_t i = 0; i < r.limbs_.size(); ++i) {
        r.limbs_[i] = a.limbs_[i + word] >> bitoff;
        if (bitoff && i + word + 1 < a.limbs_.size())
            r.limbs_[i] |= a.limbs_[i + word + 1] << (64 - bitoff);
    }
    r.normalize();
    return r;
}

void
BigUInt::divmod(const BigUInt& a, const BigUInt& b,
                BigUInt& quotient, BigUInt& remainder)
{
    checkArg(!b.isZero(), "BigUInt division by zero");
    if (compare(a, b) < 0) {
        quotient = BigUInt{};
        remainder = a;
        return;
    }

    // Single-limb divisor: straightforward limb-by-limb division.
    if (b.limbs_.size() == 1) {
        uint64_t d = b.limbs_[0];
        BigUInt q;
        q.limbs_.assign(a.limbs_.size(), 0);
        uint64_t rem = 0;
        for (size_t i = a.limbs_.size(); i-- > 0;)
            div128by64(rem, a.limbs_[i], d, q.limbs_[i], rem);
        q.normalize();
        quotient = std::move(q);
        remainder = BigUInt{rem};
        return;
    }

    // Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
    size_t n = b.limbs_.size();
    size_t m = a.limbs_.size() - n;
    int shift = countLeadingZeros64(b.limbs_.back());

    BigUInt v = b << shift;            // normalized divisor, top bit set
    BigUInt ub = a << shift;
    std::vector<uint64_t> u(ub.limbs_);
    u.resize(a.limbs_.size() + 1, 0);  // u has m + n + 1 limbs

    BigUInt q;
    q.limbs_.assign(m + 1, 0);

    const uint64_t v1 = v.limbs_[n - 1];
    const uint64_t v2 = v.limbs_[n - 2];

    for (size_t j = m + 1; j-- > 0;) {
        // Estimate qhat = (u[j+n]B + u[j+n-1]) / v1, clamped to B - 1.
        uint64_t qhat = 0, rhat = 0;
        if (u[j + n] == v1) {
            qhat = ~uint64_t{0};
            // rhat = u[j+n]B + u[j+n-1] - qhat*v1 = u[j+n-1] + v1
            uint64_t overflow = addc64(u[j + n - 1], v1, 0, rhat);
            if (overflow)
                goto multiply_subtract; // rhat >= B: qhat is certainly ok
        } else {
            div128by64(u[j + n], u[j + n - 1], v1, qhat, rhat);
        }
        // Correct qhat down (at most twice) while
        // qhat * v2 > rhat * B + u[j+n-2].
        for (int fix = 0; fix < 2; ++fix) {
            uint64_t p_hi = 0, p_lo = 0;
            mulWide64(qhat, v2, p_hi, p_lo);
            if (p_hi > rhat || (p_hi == rhat && p_lo > u[j + n - 2])) {
                --qhat;
                uint64_t overflow = addc64(rhat, v1, 0, rhat);
                if (overflow)
                    break;
            } else {
                break;
            }
        }

      multiply_subtract:
        // u[j .. j+n] -= qhat * v
        uint64_t borrow = 0, mul_carry = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t p_hi = 0, p_lo = 0;
            mulWide64(qhat, v.limbs_[i], p_hi, p_lo);
            uint64_t lo_sum = 0;
            uint64_t c = addc64(p_lo, mul_carry, 0, lo_sum);
            mul_carry = p_hi + c;
            borrow = subb64(u[j + i], lo_sum, borrow, u[j + i]);
        }
        borrow = subb64(u[j + n], mul_carry, borrow, u[j + n]);

        if (borrow) {
            // qhat was one too large (rare); add the divisor back.
            --qhat;
            uint64_t carry = 0;
            for (size_t i = 0; i < n; ++i)
                carry = addc64(u[j + i], v.limbs_[i], carry, u[j + i]);
            u[j + n] += carry;
        }
        q.limbs_[j] = qhat;
    }

    q.normalize();
    BigUInt r;
    r.limbs_.assign(u.begin(), u.begin() + static_cast<long>(n));
    r.normalize();
    quotient = std::move(q);
    remainder = r >> shift;
}

BigUInt
operator/(const BigUInt& a, const BigUInt& b)
{
    BigUInt q, r;
    BigUInt::divmod(a, b, q, r);
    return q;
}

BigUInt
operator%(const BigUInt& a, const BigUInt& b)
{
    BigUInt q, r;
    BigUInt::divmod(a, b, q, r);
    return r;
}

BigUInt
BigUInt::addMod(const BigUInt& a, const BigUInt& b, const BigUInt& m)
{
    return (a + b) % m;
}

BigUInt
BigUInt::subMod(const BigUInt& a, const BigUInt& b, const BigUInt& m)
{
    if (a >= b)
        return (a - b) % m;
    return (a + m - b) % m;
}

BigUInt
BigUInt::mulMod(const BigUInt& a, const BigUInt& b, const BigUInt& m)
{
    return (a * b) % m;
}

BigUInt
BigUInt::powMod(const BigUInt& a, const BigUInt& e, const BigUInt& m)
{
    checkArg(!m.isZero(), "BigUInt::powMod: zero modulus");
    BigUInt result{1};
    result = result % m;
    BigUInt base = a % m;
    int nbits = e.bits();
    for (int i = nbits - 1; i >= 0; --i) {
        result = mulMod(result, result, m);
        size_t w = static_cast<size_t>(i) / 64;
        if ((e.limb(w) >> (i % 64)) & 1)
            result = mulMod(result, base, m);
    }
    return result;
}

BigUInt
BigUInt::fromString(const std::string& text)
{
    checkArg(!text.empty(), "BigUInt::fromString: empty string");
    BigUInt v;
    if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
        for (size_t i = 2; i < text.size(); ++i) {
            char c = text[i];
            uint64_t digit = 0;
            if (c >= '0' && c <= '9')
                digit = static_cast<uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<uint64_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<uint64_t>(c - 'A' + 10);
            else
                throw InvalidArgument("BigUInt::fromString: bad hex digit");
            v = (v << 4) + BigUInt{digit};
        }
        return v;
    }
    for (char c : text) {
        checkArg(c >= '0' && c <= '9', "BigUInt::fromString: bad decimal digit");
        v = v * BigUInt{10} + BigUInt{static_cast<uint64_t>(c - '0')};
    }
    return v;
}

std::string
BigUInt::toString() const
{
    if (isZero())
        return "0";
    std::string digits;
    BigUInt cur = *this;
    const BigUInt ten{10};
    while (!cur.isZero()) {
        BigUInt q, r;
        divmod(cur, ten, q, r);
        digits.push_back(static_cast<char>('0' + r.limb(0)));
        cur = std::move(q);
    }
    return std::string(digits.rbegin(), digits.rend());
}

std::string
BigUInt::toHexString() const
{
    static constexpr std::array<char, 16> kDigits = {
        '0', '1', '2', '3', '4', '5', '6', '7',
        '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
    if (isZero())
        return "0x0";
    std::string out = "0x";
    bool seen = false;
    for (size_t i = limbs_.size(); i-- > 0;) {
        for (int nib = 15; nib >= 0; --nib) {
            uint64_t d = (limbs_[i] >> (nib * 4)) & 0xf;
            if (d)
                seen = true;
            if (seen)
                out.push_back(kDigits[static_cast<size_t>(d)]);
        }
    }
    return out;
}

} // namespace mqx
