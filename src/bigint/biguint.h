/**
 * @file
 * Arbitrary-precision unsigned integers.
 *
 * BigUInt is the repository's from-scratch stand-in for GMP, the
 * arbitrary-precision baseline the paper benchmarks against (Section 5.3,
 * 5.4). It is deliberately a *generic* multi-precision design — dynamic
 * limb vectors, schoolbook multiplication, Knuth Algorithm D division —
 * because the baseline's cost profile (allocation, generality, division-
 * based reduction) is exactly what the paper's optimized kernels are
 * measured against. When real GMP is available the test suite uses it as
 * an oracle for BigUInt and the benches report both.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "u128/u128.h"

namespace mqx {

/**
 * Dynamically-sized unsigned integer with 64-bit limbs (little-endian
 * limb order). The zero value is represented by an empty limb vector.
 */
class BigUInt
{
  public:
    BigUInt() = default;

    /*implicit*/ BigUInt(uint64_t value);

    /** Build from a 128-bit value. */
    static BigUInt fromU128(const U128& v);

    /** Parse decimal or 0x-prefixed hex. @throws InvalidArgument. */
    static BigUInt fromString(const std::string& text);

    /** Value truncated to 128 bits. */
    U128 toU128() const;

    bool isZero() const { return limbs_.empty(); }

    /** Number of significant bits (0 for zero). */
    int bits() const;

    /** Limb count (zero has none). */
    size_t limbCount() const { return limbs_.size(); }

    /** Limb @p i, 0 beyond the top. */
    uint64_t limb(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

    /** Three-way comparison: negative, zero, or positive. */
    static int compare(const BigUInt& a, const BigUInt& b);

    friend bool operator==(const BigUInt& a, const BigUInt& b) { return compare(a, b) == 0; }
    friend bool operator!=(const BigUInt& a, const BigUInt& b) { return compare(a, b) != 0; }
    friend bool operator<(const BigUInt& a, const BigUInt& b) { return compare(a, b) < 0; }
    friend bool operator>(const BigUInt& a, const BigUInt& b) { return compare(a, b) > 0; }
    friend bool operator<=(const BigUInt& a, const BigUInt& b) { return compare(a, b) <= 0; }
    friend bool operator>=(const BigUInt& a, const BigUInt& b) { return compare(a, b) >= 0; }

    friend BigUInt operator+(const BigUInt& a, const BigUInt& b);

    /** @throws InvalidArgument if b > a (unsigned underflow). */
    friend BigUInt operator-(const BigUInt& a, const BigUInt& b);

    friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
    friend BigUInt operator<<(const BigUInt& a, int s);
    friend BigUInt operator>>(const BigUInt& a, int s);

    BigUInt& operator+=(const BigUInt& b) { *this = *this + b; return *this; }
    BigUInt& operator-=(const BigUInt& b) { *this = *this - b; return *this; }
    BigUInt& operator*=(const BigUInt& b) { *this = *this * b; return *this; }
    BigUInt& operator<<=(int s) { *this = *this << s; return *this; }
    BigUInt& operator>>=(int s) { *this = *this >> s; return *this; }

    /**
     * Quotient and remainder (Knuth Algorithm D for multi-limb divisors).
     * @throws InvalidArgument on division by zero.
     */
    static void divmod(const BigUInt& a, const BigUInt& b,
                       BigUInt& quotient, BigUInt& remainder);

    friend BigUInt operator/(const BigUInt& a, const BigUInt& b);
    friend BigUInt operator%(const BigUInt& a, const BigUInt& b);

    /** (a + b) mod m; inputs need not be reduced. */
    static BigUInt addMod(const BigUInt& a, const BigUInt& b, const BigUInt& m);

    /** (a - b) mod m for reduced inputs a, b < m. */
    static BigUInt subMod(const BigUInt& a, const BigUInt& b, const BigUInt& m);

    /** (a * b) mod m via full product + division (baseline-style). */
    static BigUInt mulMod(const BigUInt& a, const BigUInt& b, const BigUInt& m);

    /** a^e mod m, square-and-multiply. */
    static BigUInt powMod(const BigUInt& a, const BigUInt& e, const BigUInt& m);

    std::string toString() const;
    std::string toHexString() const;

  private:
    void normalize();

    std::vector<uint64_t> limbs_;
};

} // namespace mqx
