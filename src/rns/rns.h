/**
 * @file
 * Residue number system (RNS) over 128-bit NTT-friendly primes.
 *
 * The paper's opening motivation (Section 1): FHE coefficients exceed
 * 1,000 bits, and "prior works employ the residue number system (RNS)
 * to decompose very large coefficients into smaller components
 * (residues) that fit within machine words"; recent schemes use 128-bit
 * residues to shrink the basis. This module is that substrate: a basis
 * of distinct 124-bit NTT-friendly primes, CRT decomposition and
 * reconstruction, and coefficient-wise ring operations that run each
 * residue channel through the paper's BLAS/NTT kernels.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "bigint/biguint.h"
#include "core/backend.h"
#include "ntt/negacyclic.h"
#include "ntt/prime.h"

namespace mqx {

namespace engine {
class Engine;
}

namespace rns {

/**
 * A CRT basis q_0, ..., q_{k-1} of distinct NTT-friendly primes with
 * modulus Q = prod q_i, plus the precomputed reconstruction constants
 * Q_i = Q / q_i and Q_i^-1 mod q_i.
 */
class RnsBasis
{
  public:
    /**
     * Deterministically build a basis of @p count primes of @p bits bits
     * with 2-adicity @p two_adicity.
     */
    RnsBasis(int bits, int two_adicity, int count);

    /** Build from explicit primes (must be pairwise distinct). */
    explicit RnsBasis(std::vector<ntt::NttPrime> primes);

    size_t size() const { return primes_.size(); }
    const ntt::NttPrime& prime(size_t i) const { return primes_[i]; }
    const Modulus& modulus(size_t i) const { return moduli_[i]; }

    /** Q = product of the basis primes. */
    const BigUInt& bigModulus() const { return big_q_; }

    /** Residues (x mod q_i) of a value x < Q. */
    std::vector<U128> decompose(const BigUInt& x) const;

    /** CRT reconstruction of a residue tuple into [0, Q). */
    BigUInt reconstruct(const std::vector<U128>& residues) const;

  private:
    void precompute();

    std::vector<ntt::NttPrime> primes_;
    std::vector<Modulus> moduli_;
    BigUInt big_q_;
    std::vector<BigUInt> q_over_qi_;  ///< Q / q_i
    std::vector<U128> q_over_qi_inv_; ///< (Q / q_i)^-1 mod q_i
};

/**
 * A polynomial of length n over Z_Q, stored as k residue channels of
 * length n (the "RNS polynomial" every FHE library manipulates).
 */
class RnsPolynomial
{
  public:
    RnsPolynomial(const RnsBasis& basis, size_t n);

    /** Decompose big-integer coefficients (each < Q). */
    static RnsPolynomial fromCoefficients(const RnsBasis& basis,
                                          const std::vector<BigUInt>& coeffs);

    /** Reconstruct big-integer coefficients. */
    std::vector<BigUInt> toCoefficients() const;

    size_t n() const { return n_; }
    const RnsBasis& basis() const { return *basis_; }

    /** Residue channel i as a U128 vector (length n). */
    const std::vector<U128>& channel(size_t i) const { return channels_[i]; }
    std::vector<U128>& channel(size_t i) { return channels_[i]; }

  private:
    const RnsBasis* basis_;
    size_t n_;
    std::vector<std::vector<U128>> channels_;
};

/**
 * Uniform random polynomial over the basis: every channel residue drawn
 * below its prime. Deterministic in @p seed (tests, benches, examples
 * all sample through this one helper).
 */
RnsPolynomial randomPolynomial(const RnsBasis& basis, size_t n,
                               uint64_t seed);

/**
 * Coefficient-wise ring operations over Z_Q, executed channel-by-channel
 * with the chosen kernel backend.
 */
class RnsKernels
{
  public:
    /** Serial channel loop on @p backend (the original seed path). */
    RnsKernels(const RnsBasis& basis, Backend backend);

    /**
     * Route every op through @p engine: channels fan out across its
     * thread pool and polymuls reuse its NTT plan cache. Results are
     * bit-identical to the serial constructor (channels are
     * independent); @p engine must outlive this object.
     */
    RnsKernels(const RnsBasis& basis, engine::Engine& engine);

    /** c = a + b (coefficient-wise, mod Q via CRT channels). */
    RnsPolynomial add(const RnsPolynomial& a, const RnsPolynomial& b) const;

    /** c = a .* b (coefficient-wise product). */
    RnsPolynomial mul(const RnsPolynomial& a, const RnsPolynomial& b) const;

    /**
     * Negacyclic polynomial product a * b mod (x^n + 1, Q): each channel
     * runs the full twist + NTT + point-wise + inverse pipeline.
     */
    RnsPolynomial polymulNegacyclic(const RnsPolynomial& a,
                                    const RnsPolynomial& b) const;

  private:
    const RnsBasis* basis_;
    Backend backend_;
    engine::Engine* engine_ = nullptr;
};

namespace detail {

/**
 * Single-channel bodies shared by the serial RnsKernels loop and the
 * engine's parallel fan-out — both paths run exactly this code, which
 * is what makes threaded results bit-identical to serial ones.
 */
void addChannel(Backend backend, const RnsBasis& basis, size_t channel,
                const RnsPolynomial& a, const RnsPolynomial& b,
                RnsPolynomial& c);

void mulChannel(Backend backend, const RnsBasis& basis, size_t channel,
                const RnsPolynomial& a, const RnsPolynomial& b,
                RnsPolynomial& c);

/**
 * One channel of the negacyclic product. @p tables holds the cached
 * plan + twist tables for (q_channel, n); pass nullptr to derive them
 * on the spot (the serial path without a cache).
 */
void polymulChannel(Backend backend, const RnsBasis& basis, size_t channel,
                    std::shared_ptr<const ntt::NegacyclicTables> tables,
                    const RnsPolynomial& a, const RnsPolynomial& b,
                    RnsPolynomial& c);

/** Shared operand validation (same basis, same length). */
void checkCompatible(const RnsBasis& basis, const RnsPolynomial& a,
                     const RnsPolynomial& b);

} // namespace detail

} // namespace rns
} // namespace mqx
