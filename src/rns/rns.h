/**
 * @file
 * Residue number system (RNS) over 128-bit NTT-friendly primes.
 *
 * The paper's opening motivation (Section 1): FHE coefficients exceed
 * 1,000 bits, and "prior works employ the residue number system (RNS)
 * to decompose very large coefficients into smaller components
 * (residues) that fit within machine words"; recent schemes use 128-bit
 * residues to shrink the basis. This module is that substrate: a basis
 * of distinct 124-bit NTT-friendly primes, CRT decomposition and
 * reconstruction, and coefficient-wise ring operations that run each
 * residue channel through the paper's BLAS/NTT kernels.
 *
 * Storage: channels live NATIVELY in the split hi/lo SoA layout
 * (core/residue_span.h) the SIMD kernels consume — the kernel layers
 * hand channel spans straight to the backends with zero AoS<->SoA
 * conversion. U128/BigUInt adapters exist only at the public boundary
 * (fromCoefficients / toCoefficients and the reference comparators).
 */
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bigint/biguint.h"
#include "core/backend.h"
#include "ntt/negacyclic.h"
#include "ntt/prime.h"

namespace mqx {
namespace robust {
class CancelToken;
} // namespace robust
} // namespace mqx

namespace mqx {

namespace engine {
class Engine;
}

namespace rns {

/**
 * A CRT basis q_0, ..., q_{k-1} of distinct NTT-friendly primes with
 * modulus Q = prod q_i, plus the precomputed reconstruction constants
 * Q_i = Q / q_i and Q_i^-1 mod q_i.
 */
class RnsBasis
{
  public:
    /**
     * Deterministically build a basis of @p count primes of @p bits bits
     * with 2-adicity @p two_adicity.
     */
    RnsBasis(int bits, int two_adicity, int count);

    /** Build from explicit primes (must be pairwise distinct). */
    explicit RnsBasis(std::vector<ntt::NttPrime> primes);

    size_t size() const { return primes_.size(); }
    const ntt::NttPrime& prime(size_t i) const { return primes_[i]; }
    const Modulus& modulus(size_t i) const { return moduli_[i]; }

    /** Q = product of the basis primes. */
    const BigUInt& bigModulus() const { return big_q_; }

    /** Residues (x mod q_i) of a value x < Q. */
    std::vector<U128> decompose(const BigUInt& x) const;

    /**
     * Residues of x < Q written into @p out (resized to size()). No
     * big-integer division and no allocation beyond @p out itself: each
     * residue folds x's 64-bit limbs with a Horner recurrence over the
     * precomputed 2^64 mod q_i, so fromCoefficients() runs one pass of
     * word-sized modular arithmetic per (coefficient, prime) instead of
     * constructing a fresh BigUInt divisor for every pair.
     */
    void decomposeInto(const BigUInt& x, std::vector<U128>& out) const;

    /** CRT reconstruction of a residue tuple into [0, Q). */
    BigUInt reconstruct(const std::vector<U128>& residues) const;

  private:
    void precompute();

    std::vector<ntt::NttPrime> primes_;
    std::vector<Modulus> moduli_;
    BigUInt big_q_;
    std::vector<BigUInt> qi_big_;     ///< q_i as a BigUInt (per-prime divisor)
    std::vector<U128> pow2_64_mod_qi_; ///< 2^64 mod q_i (limb folding)
    std::vector<BigUInt> q_over_qi_;  ///< Q / q_i
    std::vector<U128> q_over_qi_inv_; ///< (Q / q_i)^-1 mod q_i
};

/**
 * Which domain an RnsPolynomial's channels currently live in.
 *
 * `Coeff` is the natural representation: channel i holds the
 * coefficients of the polynomial mod q_i. `Eval` holds the forward
 * negacyclic NTT of each channel (twist by psi^i then cyclic forward,
 * bit-reversed order — see ntt/negacyclic.h). In Eval form the
 * negacyclic ring product is a point-wise multiply, and addition is
 * point-wise in either form, so chains of products and sums can stay
 * resident in Eval form and pay a single inverse transform at the end —
 * the transform-domain residency that specialized accelerators exploit.
 */
enum class Form
{
    Coeff,
    Eval,
};

/** "coeff" / "eval" (diagnostics). */
const char* formName(Form form);

/**
 * A polynomial of length n over Z_Q, stored as k residue channels of
 * length n (the "RNS polynomial" every FHE library manipulates). Each
 * channel is a split hi/lo ResidueVector with 64-byte-aligned halves —
 * exactly what the SIMD backends load, so channel spans flow to the
 * kernels with no repacking.
 */
class RnsPolynomial
{
  public:
    RnsPolynomial(const RnsBasis& basis, size_t n,
                  Form form = Form::Coeff);

    /** Decompose big-integer coefficients (each < Q). */
    static RnsPolynomial fromCoefficients(const RnsBasis& basis,
                                          const std::vector<BigUInt>& coeffs);

    /**
     * Reconstruct big-integer coefficients.
     * @throws InvalidArgument unless the polynomial is in Coeff form.
     */
    std::vector<BigUInt> toCoefficients() const;

    size_t n() const { return n_; }
    const RnsBasis& basis() const { return *basis_; }

    /**
     * Domain the channels currently live in — fixed at construction;
     * the conversion paths (Engine/RnsKernels toEval/toCoeff) write
     * into a polynomial tagged with the target form rather than
     * re-tagging in place, so a tag can never drift from the data it
     * describes.
     */
    Form form() const { return form_; }

    /** Residue channel i in native split hi/lo layout (length n). */
    const ResidueVector& channel(size_t i) const { return channels_[i]; }
    ResidueVector& channel(size_t i) { return channels_[i]; }

    /** Channel i repacked as U128s — counted adapter, boundary use only. */
    std::vector<U128> channelToU128(size_t i) const
    {
        return channels_[i].toU128();
    }

    /** Overwrite channel i from U128s (counted adapter, boundary only). */
    void setChannelFromU128(size_t i, const std::vector<U128>& values);

  private:
    const RnsBasis* basis_;
    size_t n_;
    Form form_ = Form::Coeff;
    std::vector<ResidueVector> channels_;
};

/**
 * Uniform random polynomial over the basis: every channel residue drawn
 * below its prime. Deterministic in @p seed (tests, benches, examples
 * all sample through this one helper).
 */
RnsPolynomial randomPolynomial(const RnsBasis& basis, size_t n,
                               uint64_t seed);

/**
 * Coefficient-wise ring operations over Z_Q, executed channel-by-channel
 * with the chosen kernel backend.
 *
 * Every operation has two flavours: a value-returning convenience that
 * constructs the result polynomial, and an `*Into` variant that writes
 * into a caller-preallocated destination. The Into variants are the
 * steady-state path: with warmed caches they perform ZERO layout
 * conversions and ZERO heap allocations per call (layout::metrics()
 * proves it in tests/test_layout.cc) — the channel spans go straight to
 * the backends and all transform scratch is leased from a recycled
 * workspace pool. Destinations must match the operands' basis and
 * length and carry the result's form; a destination may alias an
 * operand (channels are updated with exact-alias-safe kernels).
 */
class RnsKernels
{
  public:
    /** Serial channel loop on @p backend (the original seed path). */
    RnsKernels(const RnsBasis& basis, Backend backend);

    /**
     * Route every op through @p engine: channels fan out across its
     * thread pool, polymuls reuse its NTT plan cache, and scratch comes
     * from its workspace pool. Results are bit-identical to the serial
     * constructor (channels are independent); @p engine must outlive
     * this object.
     */
    RnsKernels(const RnsBasis& basis, engine::Engine& engine);

    /**
     * c = a + b (point-wise, mod Q via CRT channels). Valid in either
     * form — the NTT is linear — but both operands must be in the SAME
     * form; the result carries it.
     */
    RnsPolynomial add(const RnsPolynomial& a, const RnsPolynomial& b) const;
    void addInto(const RnsPolynomial& a, const RnsPolynomial& b,
                 RnsPolynomial& c) const;

    /** c = a .* b (point-wise product; same-form operands, as add). */
    RnsPolynomial mul(const RnsPolynomial& a, const RnsPolynomial& b) const;
    void mulInto(const RnsPolynomial& a, const RnsPolynomial& b,
                 RnsPolynomial& c) const;

    /**
     * Negacyclic polynomial product a * b mod (x^n + 1, Q): each channel
     * runs the full twist + NTT + point-wise + inverse pipeline.
     * Operands and result are in Coeff form.
     */
    RnsPolynomial polymulNegacyclic(const RnsPolynomial& a,
                                    const RnsPolynomial& b) const;
    void polymulNegacyclicInto(const RnsPolynomial& a, const RnsPolynomial& b,
                               RnsPolynomial& c) const;

    /**
     * Forward every channel into Eval form (cached NegacyclicTables;
     * channels fan out across the engine's pool when engine-routed).
     * @throws InvalidArgument unless @p a is in Coeff form.
     */
    RnsPolynomial toEval(const RnsPolynomial& a) const;
    void toEvalInto(const RnsPolynomial& a, RnsPolynomial& c) const;

    /** Inverse of toEval. @throws InvalidArgument unless Eval form. */
    RnsPolynomial toCoeff(const RnsPolynomial& a) const;
    void toCoeffInto(const RnsPolynomial& a, RnsPolynomial& c) const;

    /**
     * Negacyclic ring product of two Eval-form operands: one point-wise
     * multiply per channel, no transforms. Result stays in Eval form.
     * @throws InvalidArgument unless both operands are Eval.
     */
    RnsPolynomial mulEval(const RnsPolynomial& a,
                          const RnsPolynomial& b) const;
    void mulEvalInto(const RnsPolynomial& a, const RnsPolynomial& b,
                     RnsPolynomial& c) const;

    /**
     * Fused dot product sum_i a_i * b_i mod (x^n + 1, Q). Operands may
     * mix forms per pair: Coeff operands are forwarded on the fly, Eval
     * operands are consumed as-is. Accumulation happens in the
     * transform domain, so the whole sum pays ONE inverse transform per
     * channel — versus one per product on the naive path — and the
     * result (Coeff form) is bit-identical to the naive sum of
     * polymulNegacyclic calls because every step is exact mod-q
     * arithmetic. @throws InvalidArgument on an empty batch.
     */
    RnsPolynomial fmaBatch(
        const std::vector<std::pair<const RnsPolynomial*,
                                    const RnsPolynomial*>>& products) const;
    void fmaBatchInto(
        const std::vector<std::pair<const RnsPolynomial*,
                                    const RnsPolynomial*>>& products,
        RnsPolynomial& c) const;

    /** Distinct cached NegacyclicTables on the serial path (tests). */
    size_t cachedTableCount() const;

  private:
    /**
     * Serial-path table cache, keyed by n (the basis is fixed): without
     * it every serial polymul re-derived the NTT plan and twist tables
     * for every channel — O(k n log n) setup per product. Engine-routed
     * kernels use the engine's PlanCache instead and never touch this.
     */
    std::shared_ptr<const ntt::NegacyclicTables>
    tablesFor(size_t channel, size_t n) const;

    const RnsBasis* basis_;
    Backend backend_;
    engine::Engine* engine_ = nullptr;
    mutable std::mutex tables_mutex_;
    mutable std::unordered_map<
        size_t, std::vector<std::shared_ptr<const ntt::NegacyclicTables>>>
        tables_by_n_;
    /**
     * Serial-path transform workspaces, recycled across calls so the
     * steady state allocates nothing (engine-routed kernels lease from
     * the engine's pool instead).
     */
    mutable ntt::NegacyclicWorkspacePool workspaces_;
};

namespace detail {

/**
 * Single-channel bodies shared by the serial RnsKernels loop and the
 * engine's parallel fan-out — both paths run exactly this code, which
 * is what makes threaded results bit-identical to serial ones. All of
 * them consume and produce channel spans in the native split layout;
 * the transform-bearing ones lease their scratch from @p workspaces.
 */
void addChannel(Backend backend, const RnsBasis& basis, size_t channel,
                const RnsPolynomial& a, const RnsPolynomial& b,
                RnsPolynomial& c);

void mulChannel(Backend backend, const RnsBasis& basis, size_t channel,
                const RnsPolynomial& a, const RnsPolynomial& b,
                RnsPolynomial& c);

/**
 * One channel of the negacyclic product. @p tables holds the cached
 * plan + twist tables for (q_channel, n); pass nullptr to derive them
 * on the spot (a cacheless path). A non-null @p cancel switches the
 * body to the staged pipeline (forward → pointwise → inverse with a
 * cancellation checkpoint at every stage boundary), so a tripped
 * deadline aborts within one NTT stage; the null fast path is the
 * fused eng.polymul call, unchanged.
 */
void polymulChannel(Backend backend, const RnsBasis& basis, size_t channel,
                    std::shared_ptr<const ntt::NegacyclicTables> tables,
                    ntt::NegacyclicWorkspacePool& workspaces,
                    const RnsPolynomial& a, const RnsPolynomial& b,
                    RnsPolynomial& c,
                    const robust::CancelToken* cancel = nullptr);

/**
 * Recovery flavour of polymulChannel: identical math, but it passes no
 * fault points and leases nothing from shared pools (a private engine
 * is built on the spot), so an armed FaultPlan can never re-corrupt a
 * repair. Allocation-heavy by design — only the verify-retry path
 * calls it.
 */
void polymulChannelUnfaulted(
    Backend backend, const RnsBasis& basis, size_t channel,
    std::shared_ptr<const ntt::NegacyclicTables> tables,
    const RnsPolynomial& a, const RnsPolynomial& b, RnsPolynomial& c);

/** One channel of the forward (Coeff -> Eval) conversion. */
void toEvalChannel(Backend backend, const RnsBasis& basis, size_t channel,
                   std::shared_ptr<const ntt::NegacyclicTables> tables,
                   ntt::NegacyclicWorkspacePool& workspaces,
                   const RnsPolynomial& a, RnsPolynomial& c);

/** One channel of the inverse (Eval -> Coeff) conversion. */
void toCoeffChannel(Backend backend, const RnsBasis& basis, size_t channel,
                    std::shared_ptr<const ntt::NegacyclicTables> tables,
                    ntt::NegacyclicWorkspacePool& workspaces,
                    const RnsPolynomial& a, RnsPolynomial& c);

/**
 * One channel of the fused transform-domain dot product: forward any
 * Coeff operand, point-wise accumulate every pair, then ONE inverse.
 * The accumulator and eval staging buffers live in the leased
 * workspace, so the whole batch touches no heap.
 */
void fmaChannel(Backend backend, const RnsBasis& basis, size_t channel,
                std::shared_ptr<const ntt::NegacyclicTables> tables,
                ntt::NegacyclicWorkspacePool& workspaces,
                const std::vector<std::pair<const RnsPolynomial*,
                                            const RnsPolynomial*>>& products,
                RnsPolynomial& c,
                const robust::CancelToken* cancel = nullptr);

/** Recovery flavour of fmaChannel (see polymulChannelUnfaulted). */
void fmaChannelUnfaulted(
    Backend backend, const RnsBasis& basis, size_t channel,
    std::shared_ptr<const ntt::NegacyclicTables> tables,
    const std::vector<std::pair<const RnsPolynomial*,
                                const RnsPolynomial*>>& products,
    RnsPolynomial& c);

/** Recovery flavour of addChannel (no fault points; for digest repair). */
void addChannelUnfaulted(Backend backend, const RnsBasis& basis,
                         size_t channel, const RnsPolynomial& a,
                         const RnsPolynomial& b, RnsPolynomial& c);

/**
 * One channel-tile of the interleaved-batch negacyclic product: packs
 * this channel's spans of products [p0, p0 + il) into the channel-major
 * batch layout (core/batch_layout.h), runs twist + forward + point-wise
 * + inverse + untwist ONCE across all il lanes with the batched kernels
 * (ntt::forwardBatch et al.), and unpacks into results[p0 .. p0 + il).
 * Per-lane word-identical to il polymulChannel calls. @p tables must be
 * non-null and batch-eligible (ntt::batchSupported). Packing staging is
 * thread-local and recycled, so steady-state calls are allocation-free.
 */
void polymulChannelBatch(
    Backend backend, const RnsBasis& basis, size_t channel,
    std::shared_ptr<const ntt::NegacyclicTables> tables,
    const std::vector<std::pair<const RnsPolynomial*,
                                const RnsPolynomial*>>& products,
    size_t p0, size_t il, std::vector<RnsPolynomial>& results);

/**
 * Interleaved-batch flavour of fmaChannel for uniform all-Coeff
 * batches: whole tiles of il products run their forwards through the
 * batched kernels and accumulate point-wise in the packed layout; the
 * lane partial sums are then folded into the channel accumulator, any
 * k % il remainder products take the classic per-product path, and the
 * whole sum still pays ONE inverse transform. Exact mod-q accumulation
 * is order-independent, so the result is bit-identical to fmaChannel.
 */
void fmaChannelBatched(
    Backend backend, const RnsBasis& basis, size_t channel,
    std::shared_ptr<const ntt::NegacyclicTables> tables,
    ntt::NegacyclicWorkspacePool& workspaces,
    const std::vector<std::pair<const RnsPolynomial*,
                                const RnsPolynomial*>>& products,
    size_t il, RnsPolynomial& c);

/** Shared operand validation (same basis, same length). */
void checkCompatible(const RnsBasis& basis, const RnsPolynomial& a,
                     const RnsPolynomial& b);

/** @throws InvalidArgument unless @p a is in @p expected form. */
void checkForm(const RnsPolynomial& a, Form expected, const char* what);

/**
 * Destination validation for the *Into APIs: @p c must be over
 * @p basis, of length @p n, and constructed in @p form.
 */
void checkDest(const RnsPolynomial& c, const RnsBasis& basis, size_t n,
               Form form, const char* what);

} // namespace detail

} // namespace rns
} // namespace mqx
