/**
 * @file
 * RNS implementation: CRT machinery plus channel-wise kernels.
 */
#include "rns/rns.h"

#include "bench_util/rng.h"
#include "blas/blas.h"
#include "core/batch_layout.h"
#include "engine/engine.h"
#include "robust/cancel.h"
#include "robust/fault_injection.h"
#include "telemetry/telemetry.h"

namespace mqx {
namespace rns {

RnsBasis::RnsBasis(int bits, int two_adicity, int count)
    : RnsBasis(ntt::findNttPrimes(bits, two_adicity, count))
{
}

RnsBasis::RnsBasis(std::vector<ntt::NttPrime> primes)
    : primes_(std::move(primes))
{
    checkArg(!primes_.empty(), "RnsBasis: empty basis");
    for (size_t i = 0; i < primes_.size(); ++i) {
        for (size_t j = i + 1; j < primes_.size(); ++j) {
            checkArg(primes_[i].q != primes_[j].q,
                     "RnsBasis: primes must be distinct");
        }
    }
    moduli_.reserve(primes_.size());
    for (const auto& p : primes_)
        moduli_.emplace_back(p.q);
    precompute();
}

void
RnsBasis::precompute()
{
    big_q_ = BigUInt{1};
    for (const auto& p : primes_)
        big_q_ *= BigUInt::fromU128(p.q);

    qi_big_.resize(primes_.size());
    pow2_64_mod_qi_.resize(primes_.size());
    q_over_qi_.resize(primes_.size());
    q_over_qi_inv_.resize(primes_.size());
    for (size_t i = 0; i < primes_.size(); ++i) {
        qi_big_[i] = BigUInt::fromU128(primes_[i].q);
        // 2^64 mod q_i: the per-limb radix for decomposeInto's Horner
        // fold (q_i may be smaller than 2^64, so reduce).
        pow2_64_mod_qi_[i] = moduli_[i].reduce(U128::fromParts(1, 0));
        q_over_qi_[i] = big_q_ / qi_big_[i];
        // (Q / q_i) mod q_i fits a U128; invert with Fermat.
        U128 rem = (q_over_qi_[i] % qi_big_[i]).toU128();
        q_over_qi_inv_[i] = moduli_[i].inverse(rem);
    }
}

std::vector<U128>
RnsBasis::decompose(const BigUInt& x) const
{
    std::vector<U128> out;
    decomposeInto(x, out);
    return out;
}

void
RnsBasis::decomposeInto(const BigUInt& x, std::vector<U128>& out) const
{
    checkArg(x < big_q_, "RnsBasis::decompose: value exceeds Q");
    out.resize(primes_.size());
    const size_t limbs = x.limbCount();
    for (size_t i = 0; i < primes_.size(); ++i) {
        // Horner over the 64-bit limbs, high to low:
        //   r = (r * 2^64 + limb) mod q_i
        // — word-sized Barrett arithmetic only, no BigUInt division.
        const Modulus& m = moduli_[i];
        const U128& radix = pow2_64_mod_qi_[i];
        U128 r{0};
        for (size_t j = limbs; j-- > 0;)
            r = m.add(m.mul(r, radix), m.reduce(U128{x.limb(j)}));
        out[i] = r;
    }
}

BigUInt
RnsBasis::reconstruct(const std::vector<U128>& residues) const
{
    checkArg(residues.size() == primes_.size(),
             "RnsBasis::reconstruct: residue count mismatch");
    // x = sum_i (r_i * (Q/q_i)^-1 mod q_i) * (Q/q_i)  mod Q.
    BigUInt acc{};
    for (size_t i = 0; i < primes_.size(); ++i) {
        U128 coeff = moduli_[i].mul(moduli_[i].reduce(residues[i]),
                                    q_over_qi_inv_[i]);
        acc += q_over_qi_[i] * BigUInt::fromU128(coeff);
    }
    return acc % big_q_;
}

const char*
formName(Form form)
{
    return form == Form::Coeff ? "coeff" : "eval";
}

RnsPolynomial::RnsPolynomial(const RnsBasis& basis, size_t n, Form form)
    : basis_(&basis), n_(n), form_(form), channels_(basis.size())
{
    // Channels allocate their split hi/lo halves directly — no U128
    // staging, zero-initialized by AlignedVec.
    for (auto& ch : channels_)
        ch.ensure(n);
}

RnsPolynomial
RnsPolynomial::fromCoefficients(const RnsBasis& basis,
                                const std::vector<BigUInt>& coeffs)
{
    RnsPolynomial poly(basis, coeffs.size());
    std::vector<U128> residues;
    for (size_t c = 0; c < coeffs.size(); ++c) {
        basis.decomposeInto(coeffs[c], residues);
        for (size_t i = 0; i < basis.size(); ++i)
            poly.channels_[i].set(c, residues[i]);
    }
    return poly;
}

std::vector<BigUInt>
RnsPolynomial::toCoefficients() const
{
    detail::checkForm(*this, Form::Coeff, "RnsPolynomial::toCoefficients");
    std::vector<BigUInt> out(n_);
    std::vector<U128> residues(basis_->size());
    for (size_t c = 0; c < n_; ++c) {
        for (size_t i = 0; i < basis_->size(); ++i)
            residues[i] = channels_[i].at(c);
        out[c] = basis_->reconstruct(residues);
    }
    return out;
}

void
RnsPolynomial::setChannelFromU128(size_t i, const std::vector<U128>& values)
{
    checkArg(values.size() == n_,
             "RnsPolynomial::setChannelFromU128: length mismatch");
    channels_[i].assignFromU128(values);
}

RnsPolynomial
randomPolynomial(const RnsBasis& basis, size_t n, uint64_t seed)
{
    RnsPolynomial p(basis, n);
    SplitMix64 rng(seed);
    for (size_t i = 0; i < basis.size(); ++i) {
        ResidueVector& ch = p.channel(i);
        for (size_t c = 0; c < n; ++c)
            ch.set(c, rng.nextBelow(basis.prime(i).q));
    }
    return p;
}

namespace detail {

void
checkCompatible(const RnsBasis& basis, const RnsPolynomial& a,
                const RnsPolynomial& b)
{
    checkArg(&a.basis() == &basis && &b.basis() == &basis,
             "RnsKernels: polynomial from a different basis");
    checkArg(a.n() == b.n(), "RnsKernels: length mismatch");
}

void
checkForm(const RnsPolynomial& a, Form expected, const char* what)
{
    if (a.form() != expected) {
        throw InvalidArgument(std::string(what) + ": operand is in " +
                              formName(a.form()) + " form, expected " +
                              formName(expected));
    }
}

void
checkDest(const RnsPolynomial& c, const RnsBasis& basis, size_t n, Form form,
          const char* what)
{
    if (&c.basis() != &basis) {
        throw InvalidArgument(std::string(what) +
                              ": destination from a different basis");
    }
    if (c.n() != n) {
        throw InvalidArgument(std::string(what) +
                              ": destination length mismatch");
    }
    if (c.form() != form) {
        throw InvalidArgument(std::string(what) + ": destination is in " +
                              formName(c.form()) + " form, expected " +
                              formName(form));
    }
}

void
addChannel(Backend backend, const RnsBasis& basis, size_t channel,
           const RnsPolynomial& a, const RnsPolynomial& b, RnsPolynomial& c)
{
    // Channel spans go straight to the backend — no repack, no scratch.
    blas::vadd(backend, basis.modulus(channel), a.channel(channel).span(),
               b.channel(channel).span(), c.channel(channel).span());
    MQX_FAULT_POINT_DATA("rns.add.out", c.channel(channel).span());
}

void
addChannelUnfaulted(Backend backend, const RnsBasis& basis, size_t channel,
                    const RnsPolynomial& a, const RnsPolynomial& b,
                    RnsPolynomial& c)
{
    blas::vadd(backend, basis.modulus(channel), a.channel(channel).span(),
               b.channel(channel).span(), c.channel(channel).span());
}

void
mulChannel(Backend backend, const RnsBasis& basis, size_t channel,
           const RnsPolynomial& a, const RnsPolynomial& b, RnsPolynomial& c)
{
    blas::vmul(backend, basis.modulus(channel), a.channel(channel).span(),
               b.channel(channel).span(), c.channel(channel).span());
}

namespace {

/** Tables for (basis.prime(channel), n), deriving when @p tables is null. */
std::shared_ptr<const ntt::NegacyclicTables>
tablesOrDerive(std::shared_ptr<const ntt::NegacyclicTables> tables,
               const RnsBasis& basis, size_t channel, size_t n)
{
    if (tables)
        return tables;
    return std::make_shared<const ntt::NegacyclicTables>(
        std::make_shared<const ntt::NttPlan>(basis.prime(channel), n));
}

} // namespace

void
polymulChannel(Backend backend, const RnsBasis& basis, size_t channel,
               std::shared_ptr<const ntt::NegacyclicTables> tables,
               ntt::NegacyclicWorkspacePool& workspaces,
               const RnsPolynomial& a, const RnsPolynomial& b,
               RnsPolynomial& c, const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(ch_span, "rns.channel.polymul");
    auto lease = workspaces.acquire(
        tablesOrDerive(std::move(tables), basis, channel, a.n()), backend,
        cancel);
    ntt::NegacyclicEngine& eng = lease.engine();
    DConstSpan fa_in = a.channel(channel).span();
    DConstSpan fb_in = b.channel(channel).span();
    DSpan out = c.channel(channel).span();
    if (cancel) {
        // Staged pipeline with a checkpoint at every stage boundary: a
        // deadline that trips mid-op aborts within one NTT stage, and
        // the lease is returned by RAII unwind. Stage math is the same
        // primitives eng.polymul fuses, so the result is bit-identical
        // — only the abort granularity differs.
        ResidueVector& fa = eng.auxBuffer(1);
        ResidueVector& fb = eng.auxBuffer(2);
        cancel->checkpoint("rns.polymul.forward");
        eng.forward(fa_in, fa.span());
        eng.forward(fb_in, fb.span());
        cancel->checkpoint("rns.polymul.pointwise");
        eng.pointwiseMul(fa.span(), fb.span(), fa.span());
        cancel->checkpoint("rns.polymul.inverse");
        eng.inverse(fa.span(), out);
    } else {
        eng.polymul(fa_in, fb_in, out);
    }
    MQX_FAULT_POINT_DATA("rns.polymul.out", out);
}

void
polymulChannelUnfaulted(Backend backend, const RnsBasis& basis,
                        size_t channel,
                        std::shared_ptr<const ntt::NegacyclicTables> tables,
                        const RnsPolynomial& a, const RnsPolynomial& b,
                        RnsPolynomial& c)
{
    ntt::NegacyclicEngine eng(
        tablesOrDerive(std::move(tables), basis, channel, a.n()), backend);
    eng.polymul(a.channel(channel).span(), b.channel(channel).span(),
                c.channel(channel).span());
}

void
toEvalChannel(Backend backend, const RnsBasis& basis, size_t channel,
              std::shared_ptr<const ntt::NegacyclicTables> tables,
              ntt::NegacyclicWorkspacePool& workspaces,
              const RnsPolynomial& a, RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(ch_span, "rns.channel.to_eval");
    auto lease = workspaces.acquire(
        tablesOrDerive(std::move(tables), basis, channel, a.n()), backend);
    lease.engine().forward(a.channel(channel).span(),
                           c.channel(channel).span());
}

void
toCoeffChannel(Backend backend, const RnsBasis& basis, size_t channel,
               std::shared_ptr<const ntt::NegacyclicTables> tables,
               ntt::NegacyclicWorkspacePool& workspaces,
               const RnsPolynomial& a, RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(ch_span, "rns.channel.to_coeff");
    auto lease = workspaces.acquire(
        tablesOrDerive(std::move(tables), basis, channel, a.n()), backend);
    lease.engine().inverse(a.channel(channel).span(),
                           c.channel(channel).span());
}

namespace {

/**
 * The fmaChannel math on an already-bound engine: accumulator and eval
 * staging live in the workspace (a warmed-up lease hands them back
 * sized, so the whole batch is heap-free). Shared by the pool-leased
 * fast path and the no-pool recovery path; a non-null @p cancel is
 * polled between products and before the final inverse.
 */
void
fmaChannelBody(ntt::NegacyclicEngine& eng, size_t channel,
               const std::vector<std::pair<const RnsPolynomial*,
                                           const RnsPolynomial*>>& products,
               RnsPolynomial& c, const robust::CancelToken* cancel)
{
    ResidueVector& acc = eng.auxBuffer(0);
    ResidueVector& fa = eng.auxBuffer(1);
    ResidueVector& fb = eng.auxBuffer(2);
    acc.zero();
    for (const auto& [a, b] : products) {
        if (cancel)
            cancel->checkpoint("rns.fma.accumulate");
        DConstSpan ea = a->channel(channel).span();
        DConstSpan eb = b->channel(channel).span();
        if (a->form() == Form::Coeff) {
            eng.forward(ea, fa.span());
            ea = fa.span();
        }
        if (b->form() == Form::Coeff) {
            eng.forward(eb, fb.span());
            eb = fb.span();
        }
        eng.pointwiseAccumulate(acc.span(), ea, eb);
    }
    if (cancel)
        cancel->checkpoint("rns.fma.inverse");
    // The whole sum pays this single inverse — the fusion the batch
    // exists for.
    eng.inverse(acc.span(), c.channel(channel).span());
}

} // namespace

void
fmaChannel(Backend backend, const RnsBasis& basis, size_t channel,
           std::shared_ptr<const ntt::NegacyclicTables> tables,
           ntt::NegacyclicWorkspacePool& workspaces,
           const std::vector<std::pair<const RnsPolynomial*,
                                       const RnsPolynomial*>>& products,
           RnsPolynomial& c, const robust::CancelToken* cancel)
{
    MQX_SCOPED_SPAN(ch_span, "rns.channel.fma");
    auto lease = workspaces.acquire(
        tablesOrDerive(std::move(tables), basis, channel, c.n()), backend,
        cancel);
    fmaChannelBody(lease.engine(), channel, products, c, cancel);
    MQX_FAULT_POINT_DATA("rns.fma.out", c.channel(channel).span());
}

void
fmaChannelUnfaulted(Backend backend, const RnsBasis& basis, size_t channel,
                    std::shared_ptr<const ntt::NegacyclicTables> tables,
                    const std::vector<std::pair<const RnsPolynomial*,
                                                const RnsPolynomial*>>&
                        products,
                    RnsPolynomial& c)
{
    ntt::NegacyclicEngine eng(
        tablesOrDerive(std::move(tables), basis, channel, c.n()), backend);
    fmaChannelBody(eng, channel, products, c, nullptr);
}

namespace {

/**
 * Thread-local staging for the interleaved batch pipelines: four packed
 * il*n ping-pong buffers, a packed eval accumulator, per-lane unpack
 * staging, and the span tables handed to pack/unpack. ensure()
 * reallocates only when (il, n) changes, so steady-state batch calls
 * never touch the heap.
 */
struct BatchScratch
{
    ResidueVector packed_a, packed_b, packed_c, packed_d, packed_acc;
    std::vector<ResidueVector> lane_buf;
    std::vector<DConstSpan> lane_src;
    std::vector<DSpan> lane_dst;
    /** Guarded by BatchScratchLease; nested leasing is a bug. */
    bool in_use = false;

    void
    ensure(size_t il, size_t n)
    {
        const size_t total = il * n;
        packed_a.ensure(total);
        packed_b.ensure(total);
        packed_c.ensure(total);
        packed_d.ensure(total);
        if (lane_buf.size() != il)
            lane_buf.resize(il);
        for (auto& v : lane_buf)
            v.ensure(n);
        lane_src.resize(il);
        lane_dst.resize(il);
    }
};

BatchScratch&
batchScratch()
{
    thread_local BatchScratch scratch;
    return scratch;
}

/**
 * RAII lease over the thread-local BatchScratch: sizes it for (il, n)
 * and marks it busy for this scope. The destructor clears the flag on
 * every exit path, so an exception (injected or real) mid-batch can
 * never leave the scratch latched busy; a nested lease — which would
 * clobber live packed buffers — throws instead of corrupting them.
 */
class BatchScratchLease
{
  public:
    BatchScratchLease(size_t il, size_t n) : s_(batchScratch())
    {
        checkArg(!s_.in_use,
                 "BatchScratch: nested lease on one thread");
        s_.in_use = true;
        s_.ensure(il, n);
    }
    ~BatchScratchLease() { s_.in_use = false; }
    BatchScratchLease(const BatchScratchLease&) = delete;
    BatchScratchLease& operator=(const BatchScratchLease&) = delete;

    BatchScratch* operator->() { return &s_; }

  private:
    BatchScratch& s_;
};

/**
 * Pack this channel's spans of @p il consecutive operands (starting at
 * product @p p0, side selected by @p second), twist them, and
 * batch-forward the whole tile into @p out, clobbering @p packed and
 * @p scratch.
 */
void
packTwistForward(Backend backend, const Modulus& m,
                 const ntt::NegacyclicTables& tables,
                 const BatchLayout& layout, size_t channel,
                 const std::vector<std::pair<const RnsPolynomial*,
                                             const RnsPolynomial*>>& products,
                 size_t p0, bool second, std::vector<DConstSpan>& src,
                 ResidueVector& packed, ResidueVector& out,
                 ResidueVector& scratch)
{
    MQX_FAULT_POINT("rns.batch.pack");
    const size_t il = layout.il;
    for (size_t lane = 0; lane < il; ++lane) {
        const auto& pair = products[p0 + lane];
        const RnsPolynomial& p = second ? *pair.second : *pair.first;
        src[lane] = p.channel(channel).span();
    }
    batch::packLanes(layout, src.data(), il, packed.span());
    ntt::vmulShoupBatch(backend, m, il, packed.span(), tables.twist().span(),
                        tables.twistShoup().span(), packed.span());
    ntt::forwardBatch(tables.plan(), backend, il, packed.span(), out.span(),
                      scratch.span());
}

} // namespace

void
polymulChannelBatch(Backend backend, const RnsBasis& basis, size_t channel,
                    std::shared_ptr<const ntt::NegacyclicTables> tables,
                    const std::vector<std::pair<const RnsPolynomial*,
                                                const RnsPolynomial*>>&
                        products,
                    size_t p0, size_t il, std::vector<RnsPolynomial>& results)
{
    MQX_SCOPED_SPAN(ch_span, "rns.channel.polymul_batch");
    const size_t n = results[p0].n();
    const Modulus& m = basis.modulus(channel);
    const BatchLayout layout(n, il, il);
    BatchScratchLease s(il, n);

    packTwistForward(backend, m, *tables, layout, channel, products, p0,
                     /*second=*/false, s->lane_src, s->packed_a, s->packed_b,
                     s->packed_c);
    packTwistForward(backend, m, *tables, layout, channel, products, p0,
                     /*second=*/true, s->lane_src, s->packed_a, s->packed_c,
                     s->packed_d);
    // Point-wise product over the whole packed tile: the layout is a
    // per-lane permutation, and vmul is element-wise, so one flat call
    // multiplies every lane at once.
    blas::vmul(backend, m, s->packed_b.span(), s->packed_c.span(),
               s->packed_b.span());
    ntt::inverseBatch(tables->plan(), backend, il, s->packed_b.span(),
                      s->packed_a.span(), s->packed_c.span());
    ntt::vmulShoupBatch(backend, m, il, s->packed_a.span(),
                        tables->untwist().span(),
                        tables->untwistShoup().span(), s->packed_a.span());
    MQX_FAULT_POINT("rns.batch.unpack");
    for (size_t lane = 0; lane < il; ++lane)
        s->lane_dst[lane] = results[p0 + lane].channel(channel).span();
    batch::unpackLanes(layout, s->packed_a.span(), s->lane_dst.data(), il);
    for (size_t lane = 0; lane < il; ++lane)
        MQX_FAULT_POINT_DATA("rns.batch.out", s->lane_dst[lane]);
}

void
fmaChannelBatched(Backend backend, const RnsBasis& basis, size_t channel,
                  std::shared_ptr<const ntt::NegacyclicTables> tables,
                  ntt::NegacyclicWorkspacePool& workspaces,
                  const std::vector<std::pair<const RnsPolynomial*,
                                              const RnsPolynomial*>>& products,
                  size_t il, RnsPolynomial& c)
{
    MQX_SCOPED_SPAN(ch_span, "rns.channel.fma_batch");
    auto lease = workspaces.acquire(tables, backend);
    ntt::NegacyclicEngine& eng = lease.engine();
    const size_t n = c.n();
    const Modulus& m = basis.modulus(channel);
    const size_t tiles = products.size() / il;
    const BatchLayout layout(n, il, il);
    BatchScratchLease s(il, n);

    ResidueVector& acc = eng.auxBuffer(0);
    acc.zero();
    s->packed_acc.ensure(il * n);
    s->packed_acc.zero();
    for (size_t t = 0; t < tiles; ++t) {
        const size_t p0 = t * il;
        packTwistForward(backend, m, *tables, layout, channel, products, p0,
                         /*second=*/false, s->lane_src, s->packed_a,
                         s->packed_b, s->packed_c);
        packTwistForward(backend, m, *tables, layout, channel, products, p0,
                         /*second=*/true, s->lane_src, s->packed_a,
                         s->packed_c, s->packed_d);
        blas::vmul(backend, m, s->packed_b.span(), s->packed_c.span(),
                   s->packed_b.span());
        blas::vadd(backend, m, s->packed_acc.span(), s->packed_b.span(),
                   s->packed_acc.span());
    }
    if (tiles > 0) {
        // Fold the packed per-lane partial sums into the channel
        // accumulator. Exact mod-q addition is order-independent, so
        // this regrouping leaves the final sum bit-identical to the
        // per-product fmaChannel path.
        MQX_FAULT_POINT("rns.batch.unpack");
        for (size_t lane = 0; lane < il; ++lane)
            s->lane_dst[lane] = s->lane_buf[lane].span();
        batch::unpackLanes(layout, s->packed_acc.span(), s->lane_dst.data(),
                           il);
        for (size_t lane = 0; lane < il; ++lane)
            blas::vadd(backend, m, acc.span(), s->lane_buf[lane].span(),
                       acc.span());
    }
    // Remainder products (k % il) take the classic per-product
    // transform-domain accumulate.
    ResidueVector& fa = eng.auxBuffer(1);
    ResidueVector& fb = eng.auxBuffer(2);
    for (size_t p = tiles * il; p < products.size(); ++p) {
        eng.forward(products[p].first->channel(channel).span(), fa.span());
        eng.forward(products[p].second->channel(channel).span(), fb.span());
        eng.pointwiseAccumulate(acc.span(), fa.span(), fb.span());
    }
    // One inverse for the whole batch, exactly as fmaChannel.
    eng.inverse(acc.span(), c.channel(channel).span());
    MQX_FAULT_POINT_DATA("rns.fma.out", c.channel(channel).span());
}

} // namespace detail

RnsKernels::RnsKernels(const RnsBasis& basis, Backend backend)
    : basis_(&basis), backend_(backend)
{
    checkArg(backendAvailable(backend), "RnsKernels: backend unavailable");
}

RnsKernels::RnsKernels(const RnsBasis& basis, engine::Engine& engine)
    : basis_(&basis), backend_(engine.backend()), engine_(&engine)
{
}

std::shared_ptr<const ntt::NegacyclicTables>
RnsKernels::tablesFor(size_t channel, size_t n) const
{
    std::lock_guard<std::mutex> lock(tables_mutex_);
    auto& per_channel = tables_by_n_[n];
    if (per_channel.empty())
        per_channel.resize(basis_->size());
    if (!per_channel[channel]) {
        per_channel[channel] = std::make_shared<const ntt::NegacyclicTables>(
            std::make_shared<const ntt::NttPlan>(basis_->prime(channel), n));
    }
    return per_channel[channel];
}

size_t
RnsKernels::cachedTableCount() const
{
    std::lock_guard<std::mutex> lock(tables_mutex_);
    size_t count = 0;
    for (const auto& [n, per_channel] : tables_by_n_) {
        for (const auto& tables : per_channel)
            count += tables != nullptr;
    }
    return count;
}

void
RnsKernels::addInto(const RnsPolynomial& a, const RnsPolynomial& b,
                    RnsPolynomial& c) const
{
    // Validate against THIS kernels' basis before delegating — the
    // engine can only check the operands against each other.
    detail::checkCompatible(*basis_, a, b);
    if (engine_) {
        engine_->addInto(a, b, c);
        return;
    }
    detail::checkForm(b, a.form(), "RnsKernels::add");
    detail::checkDest(c, *basis_, a.n(), a.form(), "RnsKernels::addInto");
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::addChannel(backend_, *basis_, i, a, b, c);
}

RnsPolynomial
RnsKernels::add(const RnsPolynomial& a, const RnsPolynomial& b) const
{
    // Construct-and-delegate: addInto re-validates the operands before
    // any channel work, so no checks are duplicated here (same pattern
    // for every value-returning form below).
    RnsPolynomial c(*basis_, a.n(), a.form());
    addInto(a, b, c);
    return c;
}

void
RnsKernels::mulInto(const RnsPolynomial& a, const RnsPolynomial& b,
                    RnsPolynomial& c) const
{
    detail::checkCompatible(*basis_, a, b);
    if (engine_) {
        engine_->mulInto(a, b, c);
        return;
    }
    detail::checkForm(b, a.form(), "RnsKernels::mul");
    detail::checkDest(c, *basis_, a.n(), a.form(), "RnsKernels::mulInto");
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::mulChannel(backend_, *basis_, i, a, b, c);
}

RnsPolynomial
RnsKernels::mul(const RnsPolynomial& a, const RnsPolynomial& b) const
{
    RnsPolynomial c(*basis_, a.n(), a.form());
    mulInto(a, b, c);
    return c;
}

void
RnsKernels::polymulNegacyclicInto(const RnsPolynomial& a,
                                  const RnsPolynomial& b,
                                  RnsPolynomial& c) const
{
    detail::checkCompatible(*basis_, a, b);
    if (engine_) {
        engine_->polymulNegacyclicInto(a, b, c);
        return;
    }
    detail::checkForm(a, Form::Coeff, "RnsKernels::polymulNegacyclic");
    detail::checkForm(b, Form::Coeff, "RnsKernels::polymulNegacyclic");
    detail::checkDest(c, *basis_, a.n(), Form::Coeff,
                      "RnsKernels::polymulNegacyclicInto");
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::polymulChannel(backend_, *basis_, i, tablesFor(i, a.n()),
                               workspaces_, a, b, c);
}

RnsPolynomial
RnsKernels::polymulNegacyclic(const RnsPolynomial& a,
                              const RnsPolynomial& b) const
{
    RnsPolynomial c(*basis_, a.n());
    polymulNegacyclicInto(a, b, c);
    return c;
}

void
RnsKernels::toEvalInto(const RnsPolynomial& a, RnsPolynomial& c) const
{
    checkArg(&a.basis() == basis_,
             "RnsKernels: polynomial from a different basis");
    if (engine_) {
        engine_->toEvalInto(a, c);
        return;
    }
    detail::checkForm(a, Form::Coeff, "RnsKernels::toEval");
    detail::checkDest(c, *basis_, a.n(), Form::Eval,
                      "RnsKernels::toEvalInto");
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::toEvalChannel(backend_, *basis_, i, tablesFor(i, a.n()),
                              workspaces_, a, c);
}

RnsPolynomial
RnsKernels::toEval(const RnsPolynomial& a) const
{
    RnsPolynomial c(*basis_, a.n(), Form::Eval);
    toEvalInto(a, c);
    return c;
}

void
RnsKernels::toCoeffInto(const RnsPolynomial& a, RnsPolynomial& c) const
{
    checkArg(&a.basis() == basis_,
             "RnsKernels: polynomial from a different basis");
    if (engine_) {
        engine_->toCoeffInto(a, c);
        return;
    }
    detail::checkForm(a, Form::Eval, "RnsKernels::toCoeff");
    detail::checkDest(c, *basis_, a.n(), Form::Coeff,
                      "RnsKernels::toCoeffInto");
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::toCoeffChannel(backend_, *basis_, i, tablesFor(i, a.n()),
                               workspaces_, a, c);
}

RnsPolynomial
RnsKernels::toCoeff(const RnsPolynomial& a) const
{
    RnsPolynomial c(*basis_, a.n(), Form::Coeff);
    toCoeffInto(a, c);
    return c;
}

void
RnsKernels::mulEvalInto(const RnsPolynomial& a, const RnsPolynomial& b,
                        RnsPolynomial& c) const
{
    detail::checkCompatible(*basis_, a, b);
    if (engine_) {
        engine_->mulEvalInto(a, b, c);
        return;
    }
    detail::checkForm(a, Form::Eval, "RnsKernels::mulEval");
    detail::checkForm(b, Form::Eval, "RnsKernels::mulEval");
    detail::checkDest(c, *basis_, a.n(), Form::Eval,
                      "RnsKernels::mulEvalInto");
    // In the transform domain the ring product IS the point-wise
    // product, channel by channel.
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::mulChannel(backend_, *basis_, i, a, b, c);
}

RnsPolynomial
RnsKernels::mulEval(const RnsPolynomial& a, const RnsPolynomial& b) const
{
    RnsPolynomial c(*basis_, a.n(), Form::Eval);
    mulEvalInto(a, b, c);
    return c;
}

void
RnsKernels::fmaBatchInto(
    const std::vector<std::pair<const RnsPolynomial*, const RnsPolynomial*>>&
        products,
    RnsPolynomial& c) const
{
    checkArg(!products.empty(), "RnsKernels::fmaBatch: empty batch");
    if (engine_) {
        // Pin the batch to THIS kernels' basis (the engine can only
        // check operands against each other); the engine re-validates
        // pair by pair, so don't duplicate the O(k) sweep here.
        checkArg(products.front().first != nullptr,
                 "RnsKernels::fmaBatch: null operand");
        checkArg(&products.front().first->basis() == basis_,
                 "RnsKernels: polynomial from a different basis");
        engine_->fmaBatchInto(products, c);
        return;
    }
    for (const auto& [a, b] : products) {
        checkArg(a != nullptr && b != nullptr,
                 "RnsKernels::fmaBatch: null operand");
        detail::checkCompatible(*basis_, *a, *b);
        checkArg(a->n() == products.front().first->n(),
                 "RnsKernels::fmaBatch: length mismatch across batch");
    }
    const size_t n = products.front().first->n();
    detail::checkDest(c, *basis_, n, Form::Coeff,
                      "RnsKernels::fmaBatchInto");
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::fmaChannel(backend_, *basis_, i, tablesFor(i, n),
                           workspaces_, products, c);
}

RnsPolynomial
RnsKernels::fmaBatch(
    const std::vector<std::pair<const RnsPolynomial*, const RnsPolynomial*>>&
        products) const
{
    // Only the checks needed to construct the destination; fmaBatchInto
    // re-validates the whole batch.
    checkArg(!products.empty(), "RnsKernels::fmaBatch: empty batch");
    checkArg(products.front().first != nullptr,
             "RnsKernels::fmaBatch: null operand");
    RnsPolynomial c(*basis_, products.front().first->n());
    fmaBatchInto(products, c);
    return c;
}

} // namespace rns
} // namespace mqx
