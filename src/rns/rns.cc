/**
 * @file
 * RNS implementation: CRT machinery plus channel-wise kernels.
 */
#include "rns/rns.h"

#include "bench_util/rng.h"
#include "blas/blas.h"
#include "engine/engine.h"

namespace mqx {
namespace rns {

RnsBasis::RnsBasis(int bits, int two_adicity, int count)
    : RnsBasis(ntt::findNttPrimes(bits, two_adicity, count))
{
}

RnsBasis::RnsBasis(std::vector<ntt::NttPrime> primes)
    : primes_(std::move(primes))
{
    checkArg(!primes_.empty(), "RnsBasis: empty basis");
    for (size_t i = 0; i < primes_.size(); ++i) {
        for (size_t j = i + 1; j < primes_.size(); ++j) {
            checkArg(primes_[i].q != primes_[j].q,
                     "RnsBasis: primes must be distinct");
        }
    }
    moduli_.reserve(primes_.size());
    for (const auto& p : primes_)
        moduli_.emplace_back(p.q);
    precompute();
}

void
RnsBasis::precompute()
{
    big_q_ = BigUInt{1};
    for (const auto& p : primes_)
        big_q_ *= BigUInt::fromU128(p.q);

    q_over_qi_.resize(primes_.size());
    q_over_qi_inv_.resize(primes_.size());
    for (size_t i = 0; i < primes_.size(); ++i) {
        BigUInt qi = BigUInt::fromU128(primes_[i].q);
        q_over_qi_[i] = big_q_ / qi;
        // (Q / q_i) mod q_i fits a U128; invert with Fermat.
        U128 rem = (q_over_qi_[i] % qi).toU128();
        q_over_qi_inv_[i] = moduli_[i].inverse(rem);
    }
}

std::vector<U128>
RnsBasis::decompose(const BigUInt& x) const
{
    checkArg(x < big_q_, "RnsBasis::decompose: value exceeds Q");
    std::vector<U128> out(primes_.size());
    for (size_t i = 0; i < primes_.size(); ++i)
        out[i] = (x % BigUInt::fromU128(primes_[i].q)).toU128();
    return out;
}

BigUInt
RnsBasis::reconstruct(const std::vector<U128>& residues) const
{
    checkArg(residues.size() == primes_.size(),
             "RnsBasis::reconstruct: residue count mismatch");
    // x = sum_i (r_i * (Q/q_i)^-1 mod q_i) * (Q/q_i)  mod Q.
    BigUInt acc{};
    for (size_t i = 0; i < primes_.size(); ++i) {
        U128 coeff = moduli_[i].mul(moduli_[i].reduce(residues[i]),
                                    q_over_qi_inv_[i]);
        acc += q_over_qi_[i] * BigUInt::fromU128(coeff);
    }
    return acc % big_q_;
}

RnsPolynomial::RnsPolynomial(const RnsBasis& basis, size_t n)
    : basis_(&basis), n_(n),
      channels_(basis.size(), std::vector<U128>(n, U128{0}))
{
}

RnsPolynomial
RnsPolynomial::fromCoefficients(const RnsBasis& basis,
                                const std::vector<BigUInt>& coeffs)
{
    RnsPolynomial poly(basis, coeffs.size());
    for (size_t c = 0; c < coeffs.size(); ++c) {
        auto residues = basis.decompose(coeffs[c]);
        for (size_t i = 0; i < basis.size(); ++i)
            poly.channels_[i][c] = residues[i];
    }
    return poly;
}

std::vector<BigUInt>
RnsPolynomial::toCoefficients() const
{
    std::vector<BigUInt> out(n_);
    std::vector<U128> residues(basis_->size());
    for (size_t c = 0; c < n_; ++c) {
        for (size_t i = 0; i < basis_->size(); ++i)
            residues[i] = channels_[i][c];
        out[c] = basis_->reconstruct(residues);
    }
    return out;
}

RnsPolynomial
randomPolynomial(const RnsBasis& basis, size_t n, uint64_t seed)
{
    RnsPolynomial p(basis, n);
    SplitMix64 rng(seed);
    for (size_t i = 0; i < basis.size(); ++i) {
        for (size_t c = 0; c < n; ++c)
            p.channel(i)[c] = rng.nextBelow(basis.prime(i).q);
    }
    return p;
}

namespace detail {

void
checkCompatible(const RnsBasis& basis, const RnsPolynomial& a,
                const RnsPolynomial& b)
{
    checkArg(&a.basis() == &basis && &b.basis() == &basis,
             "RnsKernels: polynomial from a different basis");
    checkArg(a.n() == b.n(), "RnsKernels: length mismatch");
}

void
addChannel(Backend backend, const RnsBasis& basis, size_t channel,
           const RnsPolynomial& a, const RnsPolynomial& b, RnsPolynomial& c)
{
    ResidueVector va = ResidueVector::fromU128(a.channel(channel));
    ResidueVector vb = ResidueVector::fromU128(b.channel(channel));
    ResidueVector vc(a.n());
    blas::vadd(backend, basis.modulus(channel), va.span(), vb.span(),
               vc.span());
    c.channel(channel) = vc.toU128();
}

void
mulChannel(Backend backend, const RnsBasis& basis, size_t channel,
           const RnsPolynomial& a, const RnsPolynomial& b, RnsPolynomial& c)
{
    ResidueVector va = ResidueVector::fromU128(a.channel(channel));
    ResidueVector vb = ResidueVector::fromU128(b.channel(channel));
    ResidueVector vc(a.n());
    blas::vmul(backend, basis.modulus(channel), va.span(), vb.span(),
               vc.span());
    c.channel(channel) = vc.toU128();
}

void
polymulChannel(Backend backend, const RnsBasis& basis, size_t channel,
               std::shared_ptr<const ntt::NegacyclicTables> tables,
               const RnsPolynomial& a, const RnsPolynomial& b,
               RnsPolynomial& c)
{
    if (!tables) {
        tables = std::make_shared<const ntt::NegacyclicTables>(
            std::make_shared<const ntt::NttPlan>(basis.prime(channel),
                                                 a.n()));
    }
    ntt::NegacyclicEngine engine(std::move(tables), backend);
    c.channel(channel) =
        engine.polymulNegacyclic(a.channel(channel), b.channel(channel));
}

} // namespace detail

RnsKernels::RnsKernels(const RnsBasis& basis, Backend backend)
    : basis_(&basis), backend_(backend)
{
    checkArg(backendAvailable(backend), "RnsKernels: backend unavailable");
}

RnsKernels::RnsKernels(const RnsBasis& basis, engine::Engine& engine)
    : basis_(&basis), backend_(engine.backend()), engine_(&engine)
{
}

RnsPolynomial
RnsKernels::add(const RnsPolynomial& a, const RnsPolynomial& b) const
{
    // Validate against THIS kernels' basis before delegating — the
    // engine can only check the operands against each other.
    detail::checkCompatible(*basis_, a, b);
    if (engine_)
        return engine_->add(a, b);
    RnsPolynomial c(*basis_, a.n());
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::addChannel(backend_, *basis_, i, a, b, c);
    return c;
}

RnsPolynomial
RnsKernels::mul(const RnsPolynomial& a, const RnsPolynomial& b) const
{
    // Validate against THIS kernels' basis before delegating — the
    // engine can only check the operands against each other.
    detail::checkCompatible(*basis_, a, b);
    if (engine_)
        return engine_->mul(a, b);
    RnsPolynomial c(*basis_, a.n());
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::mulChannel(backend_, *basis_, i, a, b, c);
    return c;
}

RnsPolynomial
RnsKernels::polymulNegacyclic(const RnsPolynomial& a,
                              const RnsPolynomial& b) const
{
    // Validate against THIS kernels' basis before delegating — the
    // engine can only check the operands against each other.
    detail::checkCompatible(*basis_, a, b);
    if (engine_)
        return engine_->polymulNegacyclic(a, b);
    RnsPolynomial c(*basis_, a.n());
    for (size_t i = 0; i < basis_->size(); ++i)
        detail::polymulChannel(backend_, *basis_, i, nullptr, a, b, c);
    return c;
}

} // namespace rns
} // namespace mqx
