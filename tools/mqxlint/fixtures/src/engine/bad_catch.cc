// catch-swallow fixture: a catch (...) handler that neither rethrows
// nor converts the failure into the robust::Status taxonomy — the
// error vanishes and the caller believes the call succeeded.
void mightThrow();

void
badCatch()
{
    try {
        mightThrow();
    } catch (...) {
        // swallowed: no rethrow, no conversion
    }
}
