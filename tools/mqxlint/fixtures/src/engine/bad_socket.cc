/**
 * Fixture for the net-hygiene rule: a raw global-qualified POSIX
 * socket syscall outside the src/net/ funnel. Must fire exactly once.
 */
#include <cstddef>

namespace mqx {
namespace engine {

long
drainDiagnosticsPort(int fd, unsigned char* buf, std::size_t cap)
{
    // BAD: raw syscall; socket I/O goes through net::Socket::readSome,
    // which owns the poll guard and the errno -> Status mapping.
    return ::recv(fd, buf, cap, 0);
}

} // namespace engine
} // namespace mqx
