/** Fixture: one atomic op with an explicit order, one silent seq_cst. */
#include <atomic>

namespace {

std::atomic<unsigned long long> counter{0};

unsigned long long
bump()
{
    counter.fetch_add(1, std::memory_order_relaxed); // explicit: clean
    return counter.load(); // atomic-order: silent seq_cst
}

} // namespace
