/**
 * Fixture backends header: three declarations in the scanned
 * `namespace backends` region.
 *  - forwardScalar: defined in ntt_scalar.cc with validation (clean).
 *  - rawScalar: defined WITHOUT validation (fires dspan-validate once).
 *  - missingScalar: never defined (fires backend-coverage once).
 */
#pragma once

namespace mqx {
namespace ntt {
namespace backends {

void forwardScalar(const NttPlan&, DConstSpan, DSpan, DSpan);
void rawScalar(const NttPlan&, DConstSpan, DSpan);
void missingScalar(const NttPlan&, DConstSpan, DSpan);

} // namespace backends
} // namespace ntt
} // namespace mqx
