// prefetch-hygiene fixture: a raw prefetch intrinsic outside the
// sanctioned core/prefetch.h funnel (must fire exactly once).
void
badPrefetch(const unsigned long* p)
{
    __builtin_prefetch(p + 64, 0, 3);
}
