/** Fixture: an unaligned channel buffer in a residue-data layer. */
#include <cstdint>
#include <vector>

namespace {

void
makeChannel()
{
    std::vector<uint64_t> buf(8); // aligned-alloc: bypasses the funnel
    buf[0] = 1;
}

} // namespace
