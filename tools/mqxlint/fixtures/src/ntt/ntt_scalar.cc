/** Fixture scalar TU: one validating entry point, one violating. */
#include "ntt/ntt_backends.h"

namespace mqx {
namespace ntt {
namespace backends {

void
forwardScalar(const NttPlan& plan, DConstSpan in, DSpan out, DSpan scratch)
{
    detail::validateNttArgs(plan, in, out, scratch);
}

void
rawScalar(const NttPlan& plan, DConstSpan in, DSpan out)
{
    // dspan-validate: DSpan arguments used with no validation call.
    out.hi[0] = in.hi[0];
}

} // namespace backends
} // namespace ntt
} // namespace mqx
