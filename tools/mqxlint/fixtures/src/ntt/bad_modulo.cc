/** Fixture: runtime-divisor modulo in a hot-path directory. */

namespace {

unsigned long
wrapIndex(unsigned long i, unsigned long n)
{
    unsigned long lane = i % 8; // literal divisor: clean (mask)
    return (i + lane) % n;      // hot-modulo: runtime divisor
}

} // namespace
