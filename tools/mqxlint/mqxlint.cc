/**
 * @file
 * mqxlint — the project's domain linter.
 *
 * Enforces invariants that generic tools (clang-tidy, cppcheck) cannot
 * see because they are about THIS codebase's contracts:
 *
 *   backend-coverage  every entry point declared in ntt_backends.h /
 *                     blas_backends.h is defined in its backend TU
 *                     (suffix Scalar/Portable/Avx2/Avx512/Mqx selects
 *                     the file). A dispatcher routing to a missing
 *                     symbol is a link error only in configurations
 *                     that compile that tier — this catches it always.
 *   dspan-validate    every backend entry point taking a DSpan/
 *                     DConstSpan validates its arguments: calls
 *                     validateNttArgs or checkArg directly, or routes
 *                     through a pease/blocked impl (which validate on
 *                     entry).
 *   atomic-order      every std::atomic load/store/RMW in
 *                     src/telemetry/ and src/engine/ names an explicit
 *                     memory_order — no silent seq_cst in the
 *                     counters/pool hot paths.
 *   aligned-alloc     no raw new[], malloc, or unaligned
 *                     std::vector<uint64_t> channel buffers in the
 *                     residue-data layers (core, rns, ntt, blas, simd,
 *                     word64) outside core/aligned.h — channel storage
 *                     must go through the 64-byte-aligned funnel.
 *   hot-modulo        no `%` with a non-literal divisor in the hot-path
 *                     directories (ntt, blas, simd, word64) — modular
 *                     arithmetic belongs to src/mod/'s Barrett/Shoup
 *                     pipelines, not hardware division.
 *   prefetch-hygiene  no raw `_mm_prefetch` / `__builtin_prefetch`
 *                     outside core/prefetch.h — the prefetch policy
 *                     (hint level, lookahead distance) lives in the
 *                     sanctioned prefetchRead/prefetchNext helpers,
 *                     mirroring the aligned-alloc funnel.
 *   net-hygiene       raw global-qualified POSIX socket syscalls
 *                     (`::socket(`, `::recv(`, ...) outside src/net/ —
 *                     socket I/O goes through net::Socket, which owns
 *                     fd lifetime, errno->Status mapping, and the
 *                     fault-injection points. Inside src/net/, every
 *                     blocking-capable syscall must sit in a function
 *                     with a poll/timeout guard.
 *
 * Usage:
 *   mqxlint --repo-root <dir> [--allowlist <file>] [--fix-dry-run]
 *   mqxlint --self-test --repo-root <fixtures-dir>
 *
 * Diagnostics are `file:line: [rule] message`, one per line, exit 1 if
 * any violation survives the allowlist. The allowlist file holds lines
 * of the form `rule relative/path substring-of-offending-line` (# for
 * comments); --fix-dry-run reports violations WITH ready-to-paste
 * allowlist lines and exits 0 (the CI report artifact). --self-test
 * lints the bundled fixture tree twice — once expecting each rule to
 * fire exactly once, once with <fixtures>/allowlist.txt expecting full
 * suppression.
 */
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Diagnostic
{
    std::string file; // repo-relative path
    int line = 0;
    std::string rule;
    std::string message;
    std::string source_line; // raw text, for allowlist matching
};

struct AllowEntry
{
    std::string rule;
    std::string path_substr;
    std::string line_substr; // may be empty: any line in the file
};

/**
 * Replace comments, string literals, and char literals with spaces,
 * preserving every newline so offsets map back to line numbers.
 */
std::string
stripCode(const std::string& text)
{
    std::string out(text);
    enum class St
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char
    } st = St::Code;
    for (size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char n = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
                out[i] = ' ';
            } else if (c == '"') {
                st = St::String;
                out[i] = ' ';
            } else if (c == '\'') {
                st = St::Char;
                out[i] = ' ';
            }
            break;
        case St::LineComment:
            if (c == '\n')
                st = St::Code;
            else
                out[i] = ' ';
            break;
        case St::BlockComment:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::String:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                out[i] = ' ';
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        case St::Char:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                if (n != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                out[i] = ' ';
                st = St::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

struct SourceFile
{
    std::string rel;  // repo-relative path with forward slashes
    std::string raw;  // file contents
    std::string code; // stripCode(raw)
};

int
lineOf(const std::string& text, size_t offset)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() + offset, '\n'));
}

std::string
rawLine(const std::string& raw, int line)
{
    std::istringstream in(raw);
    std::string s;
    for (int i = 0; i < line && std::getline(in, s); ++i) {
    }
    return s;
}

bool
readFile(const fs::path& p, std::string& out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Offset just past the parenthesized group opening at @p open. */
size_t
matchParen(const std::string& s, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
        if (s[i] == '(')
            ++depth;
        else if (s[i] == ')' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

size_t
matchBrace(const std::string& s, size_t open)
{
    int depth = 0;
    for (size_t i = open; i < s.size(); ++i) {
        if (s[i] == '{')
            ++depth;
        else if (s[i] == '}' && --depth == 0)
            return i + 1;
    }
    return std::string::npos;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Linter
{
  public:
    Linter(fs::path root, std::vector<AllowEntry> allow)
        : root_(std::move(root)), allow_(std::move(allow))
    {
    }

    std::vector<Diagnostic>
    run()
    {
        loadTree();
        ruleBackendCoverage();
        ruleDspanValidate();
        ruleAtomicOrder();
        ruleAlignedAlloc();
        ruleHotModulo();
        rulePrefetchHygiene();
        ruleCatchSwallow();
        ruleNetHygiene();
        std::sort(diags_.begin(), diags_.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                      return std::tie(a.file, a.line, a.rule) <
                             std::tie(b.file, b.line, b.rule);
                  });
        return diags_;
    }

    int suppressed() const { return suppressed_; }

  private:
    void
    loadTree()
    {
        fs::path src = root_ / "src";
        if (!fs::exists(src))
            return;
        for (const auto& e : fs::recursive_directory_iterator(src)) {
            if (!e.is_regular_file())
                continue;
            std::string ext = e.path().extension().string();
            if (ext != ".h" && ext != ".cc")
                continue;
            SourceFile f;
            if (!readFile(e.path(), f.raw))
                continue;
            f.rel = fs::relative(e.path(), root_).generic_string();
            f.code = stripCode(f.raw);
            files_.push_back(std::move(f));
        }
        std::sort(files_.begin(), files_.end(),
                  [](const SourceFile& a, const SourceFile& b) {
                      return a.rel < b.rel;
                  });
    }

    const SourceFile*
    find(const std::string& rel) const
    {
        for (const auto& f : files_)
            if (f.rel == rel)
                return &f;
        return nullptr;
    }

    void
    report(const SourceFile& f, int line, const std::string& rule,
           const std::string& message)
    {
        Diagnostic d{f.rel, line, rule, message, rawLine(f.raw, line)};
        for (const auto& a : allow_) {
            if (a.rule != rule)
                continue;
            if (d.file.find(a.path_substr) == std::string::npos)
                continue;
            if (!a.line_substr.empty() &&
                d.source_line.find(a.line_substr) == std::string::npos)
                continue;
            ++suppressed_;
            return;
        }
        diags_.push_back(std::move(d));
    }

    /**
     * Entry-point names declared in a backends header, restricted to
     * the `namespace backends { ... }` region, with the line each
     * declaration starts on. Declarations put the name on the `void`
     * line (project style).
     */
    std::map<std::string, int>
    declaredEntryPoints(const SourceFile& header) const
    {
        std::map<std::string, int> out;
        std::istringstream in(header.code);
        std::string line;
        int lineno = 0;
        bool inside = false;
        while (std::getline(in, line)) {
            ++lineno;
            if (line.find("namespace backends") != std::string::npos) {
                inside = true;
                continue;
            }
            if (inside && line.find('}') != std::string::npos &&
                line.find("namespace") == std::string::npos &&
                line.find('{') == std::string::npos) {
                // The closing brace of the backends namespace is a bare
                // `}` (the comment marker was stripped with the rest).
                inside = false;
                continue;
            }
            if (!inside)
                continue;
            size_t v = line.find("void ");
            if (v == std::string::npos)
                continue;
            size_t name_begin = v + 5;
            while (name_begin < line.size() && line[name_begin] == ' ')
                ++name_begin;
            size_t name_end = name_begin;
            while (name_end < line.size() && isIdentChar(line[name_end]))
                ++name_end;
            if (name_end == name_begin || name_end >= line.size() ||
                line[name_end] != '(')
                continue;
            out[line.substr(name_begin, name_end - name_begin)] = lineno;
        }
        return out;
    }

    /** The backend TU (repo-relative) implementing @p name, or "". */
    static std::string
    backendTu(const std::string& dir, const std::string& stem,
              const std::string& name)
    {
        auto ends = [&](const char* s) {
            std::string suf(s);
            return name.size() > suf.size() &&
                   name.compare(name.size() - suf.size(), suf.size(), suf) ==
                       0;
        };
        std::string tier;
        if (ends("Scalar"))
            tier = "scalar";
        else if (ends("Portable"))
            tier = "portable";
        else if (ends("Avx2"))
            tier = "avx2";
        else if (ends("Avx512"))
            tier = "avx512";
        else if (name.find("Mqx") != std::string::npos)
            tier = "mqx";
        else
            return "";
        return dir + "/" + stem + "_" + tier + ".cc";
    }

    /** True if @p tu defines @p name (project style: name at column 0). */
    static bool
    definesFunction(const SourceFile& tu, const std::string& name)
    {
        const std::string needle = "\n" + name + "(";
        if (tu.code.compare(0, name.size() + 1, name + "(") == 0)
            return true;
        return tu.code.find(needle) != std::string::npos;
    }

    void
    ruleBackendCoverage()
    {
        const struct
        {
            const char* header;
            const char* dir;
            const char* stem;
        } kHeaders[] = {
            {"src/ntt/ntt_backends.h", "src/ntt", "ntt"},
            {"src/blas/blas_backends.h", "src/blas", "blas"},
        };
        for (const auto& h : kHeaders) {
            const SourceFile* header = find(h.header);
            if (!header)
                continue;
            for (const auto& [name, line] : declaredEntryPoints(*header)) {
                entry_points_.insert(name);
                std::string tu_rel = backendTu(h.dir, h.stem, name);
                if (tu_rel.empty())
                    continue;
                const SourceFile* tu = find(tu_rel);
                if (!tu)
                    continue; // tier not present in this tree
                if (!definesFunction(*tu, name))
                    report(*header, line, "backend-coverage",
                           "entry point '" + name +
                               "' is declared here but not defined in " +
                               tu_rel);
            }
        }
    }

    void
    ruleDspanValidate()
    {
        // Satisfying calls: direct validation, or routing through an
        // impl that validates on entry — the ISA-templated pease/blas
        // impls (`...Impl<Isa>(`), the MQX variant routers, and the
        // blocked four-step drivers.
        const char* kValidators[] = {"validateNttArgs(", "checkArg(",
                                     "Impl(",           "Impl<",
                                     "WithVariant<",    "blockedForward(",
                                     "blockedInverse("};
        for (const auto& f : files_) {
            bool in_scope = (f.rel.rfind("src/ntt/", 0) == 0 ||
                             f.rel.rfind("src/blas/", 0) == 0) &&
                            f.rel.size() > 3 &&
                            f.rel.compare(f.rel.size() - 3, 3, ".cc") == 0;
            if (!in_scope)
                continue;
            size_t pos = 0;
            while (pos < f.code.size()) {
                size_t nl = f.code.find('\n', pos);
                std::string_view line(f.code.data() + pos,
                                      (nl == std::string::npos
                                           ? f.code.size()
                                           : nl) -
                                          pos);
                size_t name_end = 0;
                while (name_end < line.size() &&
                       isIdentChar(line[name_end]))
                    ++name_end;
                if (name_end > 0 && name_end < line.size() &&
                    line[name_end] == '(' &&
                    entry_points_.count(std::string(
                        line.substr(0, name_end)))) {
                    size_t open = pos + name_end;
                    size_t params_end = matchParen(f.code, open);
                    if (params_end != std::string::npos) {
                        std::string params = f.code.substr(
                            open, params_end - open);
                        size_t brace = f.code.find_first_not_of(
                            " \t\r\n", params_end);
                        if (brace != std::string::npos &&
                            f.code[brace] == '{' &&
                            (params.find("DSpan") != std::string::npos ||
                             params.find("DConstSpan") !=
                                 std::string::npos)) {
                            size_t body_end = matchBrace(f.code, brace);
                            std::string body = f.code.substr(
                                brace, (body_end == std::string::npos
                                            ? f.code.size()
                                            : body_end) -
                                           brace);
                            bool ok = false;
                            for (const char* v : kValidators)
                                if (body.find(v) != std::string::npos)
                                    ok = true;
                            if (!ok)
                                report(f, lineOf(f.code, pos),
                                       "dspan-validate",
                                       "backend entry point '" +
                                           std::string(line.substr(
                                               0, name_end)) +
                                           "' takes DSpan arguments but "
                                           "never validates them "
                                           "(validateNttArgs/checkArg)");
                        }
                    }
                }
                if (nl == std::string::npos)
                    break;
                pos = nl + 1;
            }
        }
    }

    void
    ruleAtomicOrder()
    {
        const char* kOps[] = {".load(",
                              ".store(",
                              ".fetch_add(",
                              ".fetch_sub(",
                              ".fetch_or(",
                              ".fetch_and(",
                              ".fetch_xor(",
                              ".exchange(",
                              ".compare_exchange_weak(",
                              ".compare_exchange_strong("};
        for (const auto& f : files_) {
            if (f.rel.rfind("src/telemetry/", 0) != 0 &&
                f.rel.rfind("src/engine/", 0) != 0)
                continue;
            for (const char* op : kOps) {
                size_t pos = 0;
                while ((pos = f.code.find(op, pos)) != std::string::npos) {
                    size_t open = pos + std::string(op).size() - 1;
                    size_t end = matchParen(f.code, open);
                    std::string args =
                        end == std::string::npos
                            ? std::string()
                            : f.code.substr(open, end - open);
                    if (args.find("memory_order") == std::string::npos)
                        report(f, lineOf(f.code, pos), "atomic-order",
                               std::string("atomic operation '") + op +
                                   "...)' without an explicit "
                                   "memory_order (silent seq_cst)");
                    pos = open;
                }
            }
        }
    }

    void
    ruleAlignedAlloc()
    {
        const char* kDirs[] = {"src/core/", "src/rns/",    "src/ntt/",
                               "src/blas/", "src/simd/",   "src/word64/"};
        for (const auto& f : files_) {
            bool in_scope = false;
            for (const char* d : kDirs)
                in_scope = in_scope || f.rel.rfind(d, 0) == 0;
            if (!in_scope || f.rel == "src/core/aligned.h")
                continue;
            size_t pos = 0;
            while ((pos = f.code.find("std::vector<uint64_t>", pos)) !=
                   std::string::npos) {
                report(f, lineOf(f.code, pos), "aligned-alloc",
                       "unaligned std::vector<uint64_t> channel buffer; "
                       "use AlignedVec / ResidueVector "
                       "(core/aligned.h funnel)");
                pos += 1;
            }
            pos = 0;
            while ((pos = f.code.find("malloc", pos)) !=
                   std::string::npos) {
                bool word = (pos == 0 || !isIdentChar(f.code[pos - 1])) &&
                            (pos + 6 >= f.code.size() ||
                             !isIdentChar(f.code[pos + 6]));
                if (word)
                    report(f, lineOf(f.code, pos), "aligned-alloc",
                           "raw malloc in a channel-data layer; use the "
                           "core/aligned.h funnel");
                pos += 1;
            }
            // `new <type>[` or `new[` — raw array allocation.
            pos = 0;
            while ((pos = f.code.find("new", pos)) != std::string::npos) {
                bool word = (pos == 0 || !isIdentChar(f.code[pos - 1])) &&
                            (pos + 3 < f.code.size() &&
                             !isIdentChar(f.code[pos + 3]));
                if (word) {
                    size_t i = pos + 3;
                    while (i < f.code.size() &&
                           (std::isspace(
                                static_cast<unsigned char>(f.code[i])) ||
                            isIdentChar(f.code[i]) || f.code[i] == ':' ||
                            f.code[i] == '<' || f.code[i] == '>'))
                        ++i;
                    if (i < f.code.size() && f.code[i] == '[')
                        report(f, lineOf(f.code, pos), "aligned-alloc",
                               "raw new[] in a channel-data layer; use "
                               "the core/aligned.h funnel");
                }
                pos += 3;
            }
        }
    }

    void
    ruleHotModulo()
    {
        const char* kDirs[] = {"src/ntt/", "src/blas/", "src/simd/",
                               "src/word64/"};
        for (const auto& f : files_) {
            bool in_scope = false;
            for (const char* d : kDirs)
                in_scope = in_scope || f.rel.rfind(d, 0) == 0;
            if (!in_scope)
                continue;
            for (size_t pos = 0; pos < f.code.size(); ++pos) {
                if (f.code[pos] != '%')
                    continue;
                // A literal divisor (power-of-two stage math like
                // `logn % 2`) compiles to masks; only runtime divisors
                // hit the divider.
                size_t r = pos + 1;
                if (r < f.code.size() && f.code[r] == '=')
                    ++r; // `%=` — same rule applies to the rhs
                while (r < f.code.size() &&
                       std::isspace(static_cast<unsigned char>(f.code[r])))
                    ++r;
                if (r < f.code.size() &&
                    std::isdigit(static_cast<unsigned char>(f.code[r])))
                    continue;
                report(f, lineOf(f.code, pos), "hot-modulo",
                       "'%' with a runtime divisor in a hot-path "
                       "directory; modular reduction belongs to "
                       "src/mod/ (Barrett/Shoup)");
            }
        }
    }

    void
    rulePrefetchHygiene()
    {
        const char* kIntrinsics[] = {"_mm_prefetch", "__builtin_prefetch"};
        for (const auto& f : files_) {
            if (f.rel == "src/core/prefetch.h")
                continue;
            for (const char* tok : kIntrinsics) {
                const size_t len = std::string(tok).size();
                size_t pos = 0;
                while ((pos = f.code.find(tok, pos)) != std::string::npos) {
                    bool word =
                        (pos == 0 || !isIdentChar(f.code[pos - 1])) &&
                        (pos + len >= f.code.size() ||
                         !isIdentChar(f.code[pos + len]));
                    if (word)
                        report(f, lineOf(f.code, pos), "prefetch-hygiene",
                               std::string("raw ") + tok +
                                   " outside core/prefetch.h; use the "
                                   "sanctioned prefetchRead/prefetchNext "
                                   "helpers");
                    pos += len;
                }
            }
        }
    }

    /**
     * `catch (...)` blocks that neither rethrow nor convert the failure
     * into the robust::Status taxonomy swallow errors silently — the
     * exact failure mode the fault-injection tests exist to catch.
     * Sanctioned shapes carry a `throw` (rethrow / translate) or a
     * `Status` (taxonomy conversion) token in the handler body;
     * deferred-rethrow funnels that stash std::current_exception() for
     * a later rethrow outside the block go on the allowlist with a
     * justifying comment.
     */
    void
    ruleCatchSwallow()
    {
        for (const auto& f : files_) {
            size_t pos = 0;
            while ((pos = f.code.find("catch", pos)) != std::string::npos) {
                const size_t kw = pos;
                pos += 5;
                bool word = (kw == 0 || !isIdentChar(f.code[kw - 1])) &&
                            (pos >= f.code.size() ||
                             !isIdentChar(f.code[pos]));
                if (!word)
                    continue;
                size_t open = pos;
                while (open < f.code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(f.code[open])))
                    ++open;
                if (open >= f.code.size() || f.code[open] != '(')
                    continue;
                size_t close = matchParen(f.code, open);
                if (close == std::string::npos)
                    continue;
                // Typed handlers name what they expect and routinely
                // translate it; only the catch-all form is audited.
                if (f.code.substr(open, close - open).find("...") ==
                    std::string::npos)
                    continue;
                size_t bopen = f.code.find('{', close);
                size_t bclose = bopen == std::string::npos
                                    ? std::string::npos
                                    : matchBrace(f.code, bopen);
                if (bclose == std::string::npos)
                    continue;
                std::string body =
                    f.code.substr(bopen, bclose - bopen);
                if (body.find("throw") == std::string::npos &&
                    body.find("Status") == std::string::npos)
                    report(f, lineOf(f.code, kw), "catch-swallow",
                           "catch (...) that neither rethrows nor "
                           "converts to robust::Status swallows the "
                           "failure");
            }
        }
    }

    /**
     * POSIX socket hygiene. (a) Raw global-qualified socket syscalls
     * belong to src/net/ — the rest of the tree talks to peers through
     * net::Socket, which owns fd lifetime, errno->Status mapping, and
     * the net.* fault-injection points. (b) Inside src/net/, every
     * blocking-capable syscall (`::recv(`, `::accept(`, `::connect(`)
     * must sit in a function that polls first (`::poll(` or the
     * pollOne funnel) so no service thread can park forever on a dead
     * peer; sanctioned exceptions go on the allowlist with a
     * justifying comment.
     */
    void
    ruleNetHygiene()
    {
        const char* kSyscalls[] = {"::socket(", "::accept(", "::connect(",
                                   "::bind(",   "::listen(", "::recv(",
                                   "::send(",   "::shutdown("};
        const char* kBlocking[] = {"::recv(", "::accept(", "::connect("};
        for (const auto& f : files_) {
            if (f.rel.rfind("src/net/", 0) != 0) {
                for (const char* tok : kSyscalls) {
                    const size_t len = std::string(tok).size();
                    size_t pos = 0;
                    while ((pos = f.code.find(tok, pos)) !=
                           std::string::npos) {
                        // `std::bind(` / `Foo::send(` qualify with an
                        // identifier before the `::`; raw syscalls do
                        // not.
                        if (pos == 0 || (!isIdentChar(f.code[pos - 1]) &&
                                         f.code[pos - 1] != ':'))
                            report(f, lineOf(f.code, pos), "net-hygiene",
                                   std::string("raw ") + tok +
                                       "...) outside src/net/; route "
                                       "socket I/O through net::Socket");
                        pos += len;
                    }
                }
                continue;
            }
            // (b) poll-guard audit inside the funnel itself.
            for (const char* tok : kBlocking) {
                const size_t len = std::string(tok).size();
                size_t pos = 0;
                while ((pos = f.code.find(tok, pos)) !=
                       std::string::npos) {
                    if ((pos == 0 || (!isIdentChar(f.code[pos - 1]) &&
                                      f.code[pos - 1] != ':')) &&
                        !polledFunction(f.code, pos))
                        report(f, lineOf(f.code, pos), "net-hygiene",
                               std::string("blocking ") + tok +
                                   "...) without a poll/timeout guard in "
                                   "the enclosing function");
                    pos += len;
                }
            }
        }
    }

    /**
     * True if the function body containing @p pos has a poll call.
     * Project style opens every function body with a column-0 `{`, so
     * the enclosing body is the brace region started by the nearest
     * preceding `\n{`.
     */
    static bool
    polledFunction(const std::string& code, size_t pos)
    {
        const size_t open = code.rfind("\n{", pos);
        if (open == std::string::npos)
            return false;
        const size_t close = matchBrace(code, open + 1);
        if (close == std::string::npos || close < pos)
            return false;
        const std::string body = code.substr(open, close - open);
        return body.find("::poll(") != std::string::npos ||
               body.find("pollOne(") != std::string::npos;
    }

    fs::path root_;
    std::vector<AllowEntry> allow_;
    std::vector<SourceFile> files_;
    std::set<std::string> entry_points_;
    std::vector<Diagnostic> diags_;
    int suppressed_ = 0;
};

std::vector<AllowEntry>
loadAllowlist(const fs::path& p)
{
    std::vector<AllowEntry> out;
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        AllowEntry e;
        ss >> e.rule >> e.path_substr;
        std::getline(ss, e.line_substr);
        size_t first = e.line_substr.find_first_not_of(" \t");
        e.line_substr = first == std::string::npos
                            ? std::string()
                            : e.line_substr.substr(first);
        if (!e.rule.empty() && !e.path_substr.empty())
            out.push_back(e);
    }
    return out;
}

void
printDiags(const std::vector<Diagnostic>& diags, bool fix_dry_run)
{
    std::map<std::string, int> per_rule;
    for (const auto& d : diags) {
        std::cout << d.file << ":" << d.line << ": [" << d.rule << "] "
                  << d.message << "\n";
        if (fix_dry_run) {
            std::string token = d.source_line;
            size_t first = token.find_first_not_of(" \t");
            if (first != std::string::npos)
                token = token.substr(first);
            std::cout << "    allowlist: " << d.rule << " " << d.file << " "
                      << token << "\n";
        }
        ++per_rule[d.rule];
    }
    for (const auto& [rule, n] : per_rule)
        std::cout << "mqxlint: " << n << " violation" << (n == 1 ? "" : "s")
                  << " of " << rule << "\n";
}

int
selfTest(const fs::path& fixtures)
{
    const char* kRules[] = {"backend-coverage", "dspan-validate",
                            "atomic-order",     "aligned-alloc",
                            "hot-modulo",       "prefetch-hygiene",
                            "catch-swallow",    "net-hygiene"};
    // Pass 1: no allowlist — every rule fires exactly once.
    auto diags = Linter(fixtures, {}).run();
    printDiags(diags, false);
    bool ok = true;
    for (const char* rule : kRules) {
        int n = static_cast<int>(
            std::count_if(diags.begin(), diags.end(),
                          [&](const Diagnostic& d) { return d.rule == rule; }));
        if (n != 1) {
            std::cerr << "self-test FAIL: rule " << rule << " fired " << n
                      << " times on the fixtures (want exactly 1)\n";
            ok = false;
        }
    }
    if (diags.size() != std::size(kRules)) {
        std::cerr << "self-test FAIL: " << diags.size()
                  << " total diagnostics (want " << std::size(kRules)
                  << ")\n";
        ok = false;
    }
    // Pass 2: the bundled allowlist suppresses every diagnostic.
    Linter allowed(fixtures, loadAllowlist(fixtures / "allowlist.txt"));
    auto diags2 = allowed.run();
    if (!diags2.empty()) {
        std::cerr << "self-test FAIL: " << diags2.size()
                  << " diagnostics survive the fixture allowlist\n";
        printDiags(diags2, false);
        ok = false;
    }
    if (allowed.suppressed() != static_cast<int>(std::size(kRules))) {
        std::cerr << "self-test FAIL: allowlist suppressed "
                  << allowed.suppressed() << " (want " << std::size(kRules)
                  << ")\n";
        ok = false;
    }
    std::cout << (ok ? "mqxlint self-test PASSED\n"
                     : "mqxlint self-test FAILED\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    fs::path root;
    fs::path allowlist;
    bool fix_dry_run = false;
    bool self_test = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--repo-root" && i + 1 < argc)
            root = argv[++i];
        else if (arg == "--allowlist" && i + 1 < argc)
            allowlist = argv[++i];
        else if (arg == "--fix-dry-run")
            fix_dry_run = true;
        else if (arg == "--self-test")
            self_test = true;
        else {
            std::cerr << "usage: mqxlint --repo-root <dir> "
                         "[--allowlist <file>] [--fix-dry-run] "
                         "[--self-test]\n";
            return 2;
        }
    }
    if (root.empty()) {
        std::cerr << "mqxlint: --repo-root is required\n";
        return 2;
    }
    if (self_test)
        return selfTest(root);

    std::vector<AllowEntry> allow;
    if (!allowlist.empty())
        allow = loadAllowlist(allowlist);
    Linter linter(root, allow);
    auto diags = linter.run();
    printDiags(diags, fix_dry_run);
    std::cout << "mqxlint: " << diags.size() << " violation"
              << (diags.size() == 1 ? "" : "s") << ", "
              << linter.suppressed() << " allowlisted\n";
    if (fix_dry_run)
        return 0;
    return diags.empty() ? 0 : 1;
}
