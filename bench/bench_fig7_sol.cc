/**
 * @file
 * Figure 7 regeneration (plus Table 4): speed-of-light NTT performance
 * on multi-core CPUs. Applies Eq. 13 to the measured single-core MQX
 * (PISA) series, targeting Intel Xeon 6980P (Fig. 7a) and AMD EPYC
 * 9965S (Fig. 7b), and compares against the RPU/FPMM ASIC and MoMA GPU
 * reference series plus multi-core OpenFHE.
 */
#include "bench_common.h"

using namespace mqx;
using namespace mqx::bench;

namespace {

void
printCpuSpec(const sol::CpuSpec& s)
{
    std::printf("  %-18s %3d cores  base %.2f GHz  boost %.2f GHz  "
                "all-core %.2f GHz  L3 %.0f MB  mem %.0f GB/s\n",
                s.name.c_str(), s.cores, s.base_ghz, s.max_boost_ghz,
                s.allcore_boost_ghz, s.l3_mb, s.mem_bw_gbs);
}

} // namespace

int
main()
{
    printHostHeader("Figure 7: speed-of-light NTT performance (Eq. 13)");

    std::printf("Table 4 + Section 6 CPU specifications:\n");
    printCpuSpec(sol::intelXeon8352Y());
    printCpuSpec(sol::amdEpyc9654());
    printCpuSpec(sol::intelXeon6980P());
    printCpuSpec(sol::amdEpyc9965S());
    std::printf("\n");

    if (!backendAvailable(Backend::MqxPisa)) {
        std::printf("AVX-512 not available; cannot project MQX-SOL.\n");
        return 0;
    }

    const auto& prime = ntt::defaultBenchPrime();
    const auto& sizes = sol::paperNttSizes();
    double anchor = hostAnchorFactor(prime);
    std::printf("host anchoring factor for reference series: %.4f "
                "(see bench_common.h)\n\n",
                anchor);

    // Measured single-core MQX (PISA) series on the host.
    std::vector<double> mqx_meas;
    for (size_t n : sizes) {
        mqx_meas.push_back(measureNtt(Tier::MqxPisa, prime, n));
        std::fprintf(stderr, "  measured n=%zu\n", n);
    }

    // The measured frequency: we conservatively use the paper CPUs'
    // single-core boost clocks for the paper-derived series and the
    // host's nominal clock for host-measured scaling. Host frequency is
    // approximated by the EPYC measurement clock; users can adjust (the
    // artifact appendix makes the same parameters customizable).
    const double host_fm_ghz = 2.1;

    struct Target
    {
        const sol::CpuSpec& spec;
        const sol::ReferenceSeries& paper_mqx;
        double paper_fm;
        const char* fig;
    };
    const Target targets[] = {
        {sol::intelXeon6980P(), sol::paperXeonSeries("MQX"),
         sol::intelXeon8352Y().max_boost_ghz, "Fig. 7a"},
        {sol::amdEpyc9965S(), sol::paperEpycSeries("MQX"),
         sol::amdEpyc9654().max_boost_ghz, "Fig. 7b"},
    };

    for (const auto& t : targets) {
        // The paper-derived columns live in paper units; host-measured
        // SOL and the anchored references live in host units. Both ratio
        // families are printed.
        TextTable table(std::string(t.fig) + ": SOL ns/butterfly on " +
                        t.spec.name + " (host units)");
        table.setHeader({"n", "MQX-SOL (host-measured)", "roofline clamp",
                         "RPU*", "FPMM*", "MoMA*", "OpenFHE-32c*"});
        std::vector<double> rpu_ratio_paper, rpu_ratio_host;
        for (size_t i = 0; i < sizes.size(); ++i) {
            size_t n = sizes[i];
            double host_sol =
                sol::solRuntimeSingleCore(mqx_meas[i], host_fm_ghz, t.spec);
            double clamped = sol::rooflineSolNsPerButterfly(
                mqx_meas[i], host_fm_ghz, t.spec);
            std::vector<std::string> row = {std::to_string(n),
                                            formatFixed(host_sol, 4),
                                            formatFixed(clamped, 4)};
            auto refCell = [&](const sol::ReferenceSeries& s) {
                return s.covers(n) ? formatFixed(s.at(n) * anchor, 4)
                                   : std::string("-");
            };
            row.push_back(refCell(sol::rpuReference()));
            row.push_back(refCell(sol::fpmmReference()));
            row.push_back(refCell(sol::momaReference()));
            row.push_back(refCell(sol::openFhe32CoreReference()));
            table.addRow(row);
            if (sol::rpuReference().covers(n)) {
                double paper_sol = sol::solRuntimeSingleCore(
                    t.paper_mqx.at(n), t.paper_fm, t.spec);
                rpu_ratio_paper.push_back(sol::rpuReference().at(n) /
                                          paper_sol);
                rpu_ratio_host.push_back(sol::rpuReference().at(n) * anchor /
                                         clamped);
            }
        }
        table.print();
        std::printf("  * references anchored to host units\n");
        std::printf("  MQX-SOL vs RPU (avg across RPU sizes): "
                    "paper-derived %s, host-measured %s  [paper: %s]\n\n",
                    formatSpeedup(geomean(rpu_ratio_paper)).c_str(),
                    formatSpeedup(geomean(rpu_ratio_host)).c_str(),
                    t.fig[6] == 'a' ? "1.3x" : "2.5x");
    }

    // Fused-NTT bandwidth vs the DRAM ceiling at n = 2^16: how much of
    // the roofline the stage-fused / four-step kernels actually use.
    // bytesSweptPerTransform is the analytic sweep model (plan.h); the
    // achieved GB/s divides it by the measured single-transform time,
    // and sol::dramFloorNs turns the same byte count into the absolute
    // floor at each paper CPU's aggregate bandwidth.
    {
        const size_t n = size_t{1} << 16;
        Backend be = bestBackend();
        ntt::NttPlan direct(prime, n, /*l2_budget=*/0);
        ntt::NttPlan blocked(prime, n, /*l2_budget=*/1 << 20);
        auto input_u = randomResidues(n, prime.q, 0xf00d);
        ResidueVector in = ResidueVector::fromU128(input_u);
        ResidueVector out(n), scratch(n);
        auto measure = [&](const ntt::NttPlan& plan, StageFusion fusion) {
            Measurement m = runNttProtocol(
                [&] {
                    ntt::forward(plan, be, in.span(), out.span(),
                                 scratch.span(), MulAlgo::Schoolbook,
                                 Reduction::ShoupLazy, fusion);
                },
                0.1);
            return m.mean_ns;
        };
        struct Row
        {
            const char* name;
            double ns;
            size_t bytes;
        };
        const Row rows[] = {
            {"radix-2 direct", measure(direct, StageFusion::Radix2),
             direct.bytesSweptPerTransform(StageFusion::Radix2)},
            {"radix-4 fused", measure(direct, StageFusion::Radix4),
             direct.bytesSweptPerTransform(StageFusion::Radix4)},
            {"four-step blocked", measure(blocked, StageFusion::Radix4),
             blocked.bytesSweptPerTransform(StageFusion::Radix4)},
        };
        TextTable bw("Fused-NTT sweep bandwidth vs DRAM ceilings, n = 2^16 (" +
                     backendName(be) + ")");
        bw.setHeader({"kernel", "measured ns", "swept bytes",
                      "achieved GB/s", "floor ns @8352Y", "floor ns @9654"});
        for (const Row& r : rows) {
            bw.addRow({r.name, formatFixed(r.ns, 0),
                       std::to_string(r.bytes),
                       formatFixed(static_cast<double>(r.bytes) / r.ns, 2),
                       formatFixed(sol::dramFloorNs(r.bytes,
                                                    sol::intelXeon8352Y()),
                                   0),
                       formatFixed(sol::dramFloorNs(r.bytes,
                                                    sol::amdEpyc9654()),
                                   0)});
        }
        bw.print();
        std::printf("  The radix-4 sweep model halves the bytes (and the\n"
                    "  DRAM floor); the blocked decomposition caps them at\n"
                    "  5 sweeps regardless of logn — the gap between the\n"
                    "  measured column and the floors is the compute share\n"
                    "  of the double-word butterflies on this host.\n\n");
    }

    // Single-core gap to the ASIC (Section 5/Intro claim).
    double best_gap = 1e30;
    for (size_t i = 0; i < sizes.size(); ++i) {
        if (sol::rpuReference().covers(sizes[i])) {
            best_gap = std::min(best_gap,
                                mqx_meas[i] / (sol::rpuReference().at(sizes[i]) *
                                               anchor));
        }
    }
    std::printf("Single-core MQX slowdown vs RPU (host units), best size: "
                "%.0fx [paper: \"as low as 35x\" on EPYC 9654]\n",
                best_gap);
    return 0;
}
