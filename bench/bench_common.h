/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses.
 *
 * Conventions (Section 5.1 of the paper): NTT runs use the 100/50
 * protocol and report ns per butterfly; BLAS runs use 1000/500 and
 * report ns per element; vector length 1024; timing includes data
 * movement. Iteration counts scale down for large sizes and slow
 * baselines so a full regeneration stays interactive; the applied scale
 * is part of the Measurement record.
 */
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baseline/biguint_kernels.h"
#include "baseline/gmp_kernels.h"
#include "baseline/openfhe_like.h"
#include "bench_util/protocol.h"
#include "bench_util/rng.h"
#include "bench_util/tables.h"
#include "core/backend.h"
#include "core/cpu_features.h"
#include "ntt/ntt.h"
#include "sol/reference_data.h"
#include "sol/sol_model.h"

namespace mqx {
namespace bench {

/** Kernel tiers measured by the harnesses, in figure-legend order. */
enum class Tier
{
    Gmp,         ///< real GMP (if built in)
    BigInt,      ///< BigUInt, the from-scratch GMP substitute
    OpenFheLike, ///< generic division-based 128-bit backend
    Scalar,
    Avx2,
    Avx512,
    MqxPisa, ///< MQX timing projection (PISA)
};

inline std::string
tierName(Tier t)
{
    switch (t) {
      case Tier::Gmp:
        return "GMP";
      case Tier::BigInt:
        return "BigUInt";
      case Tier::OpenFheLike:
        return "OpenFHE-like";
      case Tier::Scalar:
        return "Scalar";
      case Tier::Avx2:
        return "AVX2";
      case Tier::Avx512:
        return "AVX-512";
      case Tier::MqxPisa:
        return "MQX";
    }
    return "unknown";
}

/** Tiers runnable on this host/build. */
inline std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers;
#if MQX_WITH_GMP
    tiers.push_back(Tier::Gmp);
#endif
    tiers.push_back(Tier::BigInt);
    tiers.push_back(Tier::OpenFheLike);
    tiers.push_back(Tier::Scalar);
    if (backendAvailable(Backend::Avx2))
        tiers.push_back(Tier::Avx2);
    if (backendAvailable(Backend::Avx512))
        tiers.push_back(Tier::Avx512);
    if (backendAvailable(Backend::MqxPisa))
        tiers.push_back(Tier::MqxPisa);
    return tiers;
}

inline bool
tierIsSlowBaseline(Tier t)
{
    return t == Tier::Gmp || t == Tier::BigInt || t == Tier::OpenFheLike;
}

/** Paper-protocol scale for an NTT measurement at size @p n. */
inline double
nttProtocolScale(Tier tier, size_t n)
{
    double scale = 1.0;
    if (n > (1u << 14))
        scale *= static_cast<double>(1u << 14) / static_cast<double>(n);
    if (tierIsSlowBaseline(tier))
        scale *= 0.05;
    return scale < 0.002 ? 0.002 : scale;
}

/** Map a measured tier to the library Backend enum (fast tiers only). */
inline Backend
tierBackend(Tier t)
{
    switch (t) {
      case Tier::Scalar:
        return Backend::Scalar;
      case Tier::Avx2:
        return Backend::Avx2;
      case Tier::Avx512:
        return Backend::Avx512;
      case Tier::MqxPisa:
        return Backend::MqxPisa;
      default:
        throw InvalidArgument("tierBackend: not a library backend tier");
    }
}

/**
 * Measure one forward NTT of size @p n for @p tier. Returns ns per
 * butterfly under the paper protocol.
 */
inline double
measureNtt(Tier tier, const ntt::NttPrime& prime, size_t n)
{
    double scale = nttProtocolScale(tier, n);
    auto input_u = randomResidues(n, prime.q, 0xbe7c4 + n);

    if (tier == Tier::OpenFheLike) {
        baseline::OpenFheLikeNtt kernel(prime, n);
        auto data = input_u;
        Measurement m = runNttProtocol(
            [&] {
                data = input_u; // include data movement, as the paper does
                kernel.forward(data);
            },
            scale);
        return nsPerButterfly(m, n);
    }
    if (tier == Tier::BigInt) {
        baseline::BigUIntKernels kernel(prime, n);
        auto big = baseline::BigUIntKernels::fromU128(input_u);
        auto work = big;
        Measurement m = runNttProtocol(
            [&] {
                work = big;
                kernel.nttForward(work);
            },
            scale);
        return nsPerButterfly(m, n);
    }
#if MQX_WITH_GMP
    if (tier == Tier::Gmp) {
        baseline::GmpKernels kernel(prime, n);
        auto data = input_u;
        Measurement m = runNttProtocol(
            [&] {
                data = input_u;
                kernel.nttForward(data);
            },
            scale);
        return nsPerButterfly(m, n);
    }
#endif

    // Figure reproduction: pin a direct (unblocked) plan — the paper's
    // curves are per-butterfly over the direct Pease transform, and the
    // four-step driver's transposes/fixups are not butterflies.
    ntt::NttPlan plan(prime, n, /*l2_budget=*/0);
    ResidueVector in = ResidueVector::fromU128(input_u);
    ResidueVector out(n), scratch(n);
    Backend be = tierBackend(tier);
    // Figure reproduction: pin the paper's Barrett kernels so the
    // measurements stay comparable to the paper-derived reference
    // series (the Shoup-lazy default is ~2x faster and would skew the
    // calibration). bench_fig5_ntt --json measures both strategies.
    Measurement m = runNttProtocol(
        [&] {
            ntt::forward(plan, be, in.span(), out.span(), scratch.span(),
                         MulAlgo::Schoolbook, Reduction::Barrett);
        },
        scale);
    return nsPerButterfly(m, n);
}

/**
 * Host anchoring for cross-hardware comparisons. The reference series
 * (RPU, MoMA, OpenFHE-32c, paper tiers) are expressed in the paper's
 * absolute scale, anchored at AVX-512 = 100 ns/butterfly on EPYC 9654.
 * To compare against host measurements we rescale references by
 * (host AVX-512 ns/bfly at 2^14) / 100 — preserving every ratio while
 * placing both sides in host units. Falls back to scalar anchoring when
 * AVX-512 is unavailable.
 */
inline double
hostAnchorFactor(const ntt::NttPrime& prime)
{
    static double cached = -1.0;
    if (cached > 0.0)
        return cached;
    const size_t n = 1u << 14;
    if (backendAvailable(Backend::Avx512)) {
        cached = measureNtt(Tier::Avx512, prime, n) /
                 sol::paperEpycSeries("AVX-512").at(n);
    } else {
        cached = measureNtt(Tier::Scalar, prime, n) /
                 sol::paperEpycSeries("Scalar").at(n);
    }
    return cached;
}

/** Print the host context every harness shares. */
inline void
printHostHeader(const std::string& what)
{
    const CpuFeatures& f = hostCpuFeatures();
    std::printf("== %s ==\n", what.c_str());
    std::printf("host CPU : %s\n",
                f.brand.empty() ? "(unknown)" : f.brand.c_str());
    std::printf("features : avx2=%d avx512=%d\n", f.avx2 ? 1 : 0,
                f.hasAvx512() ? 1 : 0);
    std::printf("protocol : Section 5.1 (NTT 100/50, BLAS 1000/500, "
                "scaled for slow baselines/large sizes)\n");
    std::printf("note     : MQX rows use PISA proxy timing "
                "(Table 3); results are timing-only.\n\n");
}

} // namespace bench
} // namespace mqx
