/**
 * @file
 * Table 1 microbenchmark: add-with-carry three ways. The paper's Table 1
 * shows the same double-word carry step as (i) one scalar ADC, (ii) a
 * six-instruction AVX-512 sequence, and (iii) a single MQX vpadcq. This
 * bench measures the throughput of each formulation over a stream of
 * 8-lane adds (ns per 8-lane adc step) — scalar processes the 8 lanes
 * serially, AVX-512 uses the Table-1 emulation, MQX uses the PISA proxy.
 */
#include "bench_common.h"

#include "mqxisa/mqx_isa.h"

using namespace mqx;
using namespace mqx::bench;

namespace {

constexpr size_t kLanes = 8;
constexpr size_t kSteps = 4096; // chained adc steps per iteration

/** Scalar column of Table 1: per-lane addc64 chain. */
double
measureScalarAdc()
{
    std::vector<uint64_t> a(kLanes), b(kLanes);
    SplitMix64 rng(1);
    for (size_t i = 0; i < kLanes; ++i) {
        a[i] = rng.next();
        b[i] = rng.next();
    }
    volatile uint64_t sink = 0;
    Measurement m = runBlasProtocol([&] {
        uint64_t acc[kLanes];
        uint64_t carry[kLanes] = {0};
        for (size_t i = 0; i < kLanes; ++i)
            acc[i] = a[i];
        for (size_t s = 0; s < kSteps; ++s) {
            for (size_t i = 0; i < kLanes; ++i)
                carry[i] = addc64(acc[i], b[i], carry[i], acc[i]);
        }
        uint64_t x = 0;
        for (size_t i = 0; i < kLanes; ++i)
            x ^= acc[i] ^ carry[i];
        sink = x;
    });
    (void)sink;
    return m.mean_ns / kSteps;
}

} // namespace

// AVX-512 and MQX variants live behind the library's batch hooks when
// AVX-512 is compiled in; the adc streams are implemented here directly
// via the BLAS vadd kernels' building blocks is not possible without
// intrinsics in this TU, so we route through mqxAdcBatch-style loops
// exported by the library.
#include "blas/blas.h"

int
main()
{
    printHostHeader("Table 1: add-with-carry formulations");

    TextTable table("ns per 8-lane add-with-carry step (lower is better)");
    table.setHeader({"formulation", "instructions", "ns/step"});

    double scalar = measureScalarAdc();
    table.addRow({"scalar addc64 x8 (Table 1 left)", "1 ADC per word",
                  formatFixed(scalar, 2)});

    // Vectorized adc throughput is measured through the modular-add
    // kernels, whose inner loop is dominated by the carry sequences:
    // AVX-512 = Listing-2 compares+masked ops, MQX = vpadcq proxies.
    const auto& prime = ntt::defaultBenchPrime();
    Modulus m(prime.q);
    const size_t len = 4096;
    auto a_u = randomResidues(len, prime.q, 2);
    auto b_u = randomResidues(len, prime.q, 3);
    ResidueVector a = ResidueVector::fromU128(a_u);
    ResidueVector b = ResidueVector::fromU128(b_u);
    ResidueVector c(len);

    auto measureVadd = [&](Backend be) {
        Measurement meas = runBlasProtocol(
            [&] { blas::vadd(be, m, a.span(), b.span(), c.span()); });
        return meas.mean_ns / (static_cast<double>(len) / 8.0);
    };

    if (backendAvailable(Backend::Avx512)) {
        table.addRow({"AVX-512 modadd128 (Listing 2 path)",
                      "6-instr adc emulation (Table 1 middle)",
                      formatFixed(measureVadd(Backend::Avx512), 2)});
    }
    if (backendAvailable(Backend::MqxPisa)) {
        table.addRow({"MQX modadd128 (Listing 3 path, PISA)",
                      "single vpadcq (Table 1 right)",
                      formatFixed(measureVadd(Backend::MqxPisa), 2)});
    }
    table.print();
    std::printf("\nExpected shape: the MQX row approaches the scalar ADC "
                "cost per step while covering 8 lanes;\nthe AVX-512 row "
                "pays the multi-instruction emulation.\n");
    return 0;
}
