/**
 * @file
 * Figure 1 regeneration: the headline NTT comparison. One bar per
 * system — OpenFHE on 32 cores (as reported by RPU), our AVX-512 on a
 * single core, MQX on a single core, MQX-SOL scaled to 192 cores of
 * EPYC 9965S, and the RPU ASIC — at a representative NTT size (2^14,
 * the average of the paper's sizes).
 *
 * Reference systems are encoded in the paper's absolute scale; they are
 * rescaled to host units through the AVX-512 anchor (bench_common.h) so
 * that measured-vs-reference ratios reproduce the figure's shape.
 */
#include "bench_common.h"

using namespace mqx;
using namespace mqx::bench;

int
main()
{
    printHostHeader("Figure 1: NTT performance comparison (lower is better)");
    const auto& prime = ntt::defaultBenchPrime();
    const size_t n = 1u << 14;

    if (!backendAvailable(Backend::Avx512)) {
        std::printf("AVX-512 unavailable; Figure 1 needs the AVX-512 and "
                    "MQX tiers.\n");
        return 0;
    }

    double anchor = hostAnchorFactor(prime);
    double avx512 = measureNtt(Tier::Avx512, prime, n);
    double mqx = measureNtt(Tier::MqxPisa, prime, n);
    double scalar = measureNtt(Tier::Scalar, prime, n);

    const double host_fm_ghz = 2.1;
    const sol::CpuSpec& target = sol::amdEpyc9965S();
    double mqx_sol = sol::solRuntimeSingleCore(mqx, host_fm_ghz, target);

    double openfhe32 = sol::openFhe32CoreReference().at(n) * anchor;
    double rpu = sol::rpuReference().at(n) * anchor;

    TextTable table("NTT at n = 2^14, ns per butterfly (host units)");
    table.setHeader({"system", "ns/bfly", "vs OpenFHE-32c"});
    auto row = [&](const std::string& name, double v) {
        table.addRow({name, formatFixed(v, 3), formatSpeedup(openfhe32 / v)});
    };
    row("OpenFHE (32-core EPYC 7502, ref*)", openfhe32);
    row("Scalar, 1 core (measured)", scalar);
    row("AVX-512, 1 core (measured)", avx512);
    row("MQX, 1 core (measured, PISA)", mqx);
    row("MQX-SOL, 192-core EPYC 9965S (Eq. 13)", mqx_sol);
    row("RPU ASIC (ref*)", rpu);
    table.print();
    std::printf("* references rescaled to host units via the AVX-512 "
                "anchor (factor %.4f)\n\n",
                anchor);

    TextTable claims("Figure 1 claims: paper vs measured");
    claims.setHeader({"claim", "paper", "measured"});
    claims.addRow({"AVX-512 (1 core) vs OpenFHE (32 cores)", "3.8x",
                   formatSpeedup(openfhe32 / avx512)});
    claims.addRow({"MQX (1 core) vs AVX-512", "3.7x (AMD) / 2.1x (Intel)",
                   formatSpeedup(avx512 / mqx)});
    claims.addRow({"RPU vs OpenFHE-32c", "545-1485x",
                   formatSpeedup(openfhe32 / rpu)});
    claims.addRow({"MQX-SOL (192c) vs RPU", "~2.5x (near-ASIC)",
                   formatSpeedup(rpu / mqx_sol)});
    claims.print();
    return 0;
}
