/**
 * @file
 * Listing 4 regeneration: resource-pressure-by-instruction tables for
 * double-word modular addition with AVX-512 and with MQX, on the
 * simplified Sunny Cove port model (Fig. 3). Traces are recorded from
 * the shipped kernel templates, so the listing cannot drift from the
 * code. Also prints the mulmod and butterfly comparisons that motivate
 * Fig. 6.
 */
#include "bench_common.h"

#include "mca/kernel_traces.h"
#include "mca/pressure.h"

using namespace mqx;
using namespace mqx::bench;

int
main()
{
    printHostHeader("Listing 4: machine-code analysis on simplified "
                    "Sunny Cove (Fig. 3)");
    Modulus m(ntt::defaultBenchPrime().q);

    for (auto [kernel, name] :
         {std::pair{mca::Kernel::AddMod, "double-word modular addition"},
          std::pair{mca::Kernel::MulMod, "double-word modular multiply"}}) {
        auto avx = mca::analyzeTrace(
            mca::traceKernel(kernel, mca::TraceFlavor::Avx512, m));
        auto mqx = mca::analyzeTrace(
            mca::traceKernel(kernel, mca::TraceFlavor::MqxFull, m));
        std::printf("---- %s ----\n\n", name);
        std::fputs(mca::renderPressureTable("AVX-512", avx).c_str(), stdout);
        std::printf("%s\n\n", mca::summarizeAnalysis(avx).c_str());
        std::fputs(mca::renderPressureTable("MQX", mqx).c_str(), stdout);
        std::printf("%s\n\n", mca::summarizeAnalysis(mqx).c_str());
        std::printf("static bottleneck improvement (AVX-512 / MQX): %s\n\n",
                    formatSpeedup(avx.rthroughput / mqx.rthroughput).c_str());
    }

    // Butterfly roll-up across all Fig. 6 flavors.
    TextTable table("NTT butterfly: static model by MQX flavor");
    table.setHeader({"flavor", "instrs", "uops", "bottleneck cyc",
                     "norm vs AVX-512"});
    auto base = mca::analyzeTrace(mca::traceKernel(
        mca::Kernel::Butterfly, mca::TraceFlavor::Avx512, m));
    for (auto flavor :
         {mca::TraceFlavor::Avx512, mca::TraceFlavor::MqxMulOnly,
          mca::TraceFlavor::MqxCarryOnly, mca::TraceFlavor::MqxFull,
          mca::TraceFlavor::MqxMulhiCarry, mca::TraceFlavor::MqxPredicated}) {
        auto a = mca::analyzeTrace(
            mca::traceKernel(mca::Kernel::Butterfly, flavor, m));
        table.addRow({mca::flavorName(flavor), std::to_string(a.rows.size()),
                      std::to_string(a.total_uops),
                      formatFixed(a.rthroughput, 1),
                      formatFixed(a.rthroughput / base.rthroughput, 2)});
    }
    table.print();
    return 0;
}
