/**
 * @file
 * Figure 4 regeneration: BLAS operation runtime per element (ns) on a
 * single core for vector add / vector sub / point-wise vector mul /
 * axpy, across GMP, BigUInt, OpenFHE-like, scalar, AVX2, AVX-512, MQX.
 *
 * Paper protocol (Section 5.1): vector length 1024, average of the
 * final 500 of 1000 iterations, data movement included. The paper's
 * aggregate claims (4a Intel / 4b AMD) are printed next to the measured
 * counterparts.
 */
#include "bench_common.h"

#include "blas/blas.h"

using namespace mqx;
using namespace mqx::bench;

namespace {

constexpr size_t kLen = 1024; // "the vector length is set to 1,024"

double
measureBlas(Tier tier, blas::Op op, const Modulus& m, const ntt::NttPrime& p)
{
    auto a_u = randomResidues(kLen, p.q, 0xa);
    auto b_u = randomResidues(kLen, p.q, 0xb);
    double scale = tierIsSlowBaseline(tier) ? 0.1 : 1.0;

    if (tier == Tier::OpenFheLike) {
        baseline::OpenFheLikeBlas kernel(p.q);
        std::vector<U128> c(kLen);
        auto y = b_u;
        Measurement meas = runBlasProtocol(
            [&] {
                switch (op) {
                  case blas::Op::VectorAdd:
                    kernel.vadd(a_u, b_u, c);
                    break;
                  case blas::Op::VectorSub:
                    kernel.vsub(a_u, b_u, c);
                    break;
                  case blas::Op::VectorMul:
                    kernel.vmul(a_u, b_u, c);
                    break;
                  case blas::Op::Axpy:
                    kernel.axpy(a_u[0], a_u, y);
                    break;
                }
            },
            scale);
        return nsPerElement(meas, kLen);
    }
    if (tier == Tier::BigInt) {
        baseline::BigUIntKernels kernel(p.q);
        auto a = baseline::BigUIntKernels::fromU128(a_u);
        auto b = baseline::BigUIntKernels::fromU128(b_u);
        std::vector<BigUInt> c(kLen);
        auto y = b;
        Measurement meas = runBlasProtocol(
            [&] {
                switch (op) {
                  case blas::Op::VectorAdd:
                    kernel.vadd(a, b, c);
                    break;
                  case blas::Op::VectorSub:
                    kernel.vsub(a, b, c);
                    break;
                  case blas::Op::VectorMul:
                    kernel.vmul(a, b, c);
                    break;
                  case blas::Op::Axpy:
                    kernel.axpy(a[0], a, y);
                    break;
                }
            },
            scale);
        return nsPerElement(meas, kLen);
    }
#if MQX_WITH_GMP
    if (tier == Tier::Gmp) {
        baseline::GmpKernels kernel(p.q);
        std::vector<U128> c(kLen);
        auto y = b_u;
        Measurement meas = runBlasProtocol(
            [&] {
                switch (op) {
                  case blas::Op::VectorAdd:
                    kernel.vadd(a_u, b_u, c);
                    break;
                  case blas::Op::VectorSub:
                    kernel.vsub(a_u, b_u, c);
                    break;
                  case blas::Op::VectorMul:
                    kernel.vmul(a_u, b_u, c);
                    break;
                  case blas::Op::Axpy:
                    kernel.axpy(a_u[0], a_u, y);
                    break;
                }
            },
            scale);
        return nsPerElement(meas, kLen);
    }
#endif

    Backend be = tierBackend(tier);
    ResidueVector a = ResidueVector::fromU128(a_u);
    ResidueVector b = ResidueVector::fromU128(b_u);
    ResidueVector c(kLen);
    Measurement meas = runBlasProtocol(
        [&] { blas::runOp(op, be, m, a.span(), b.span(), c.span()); }, scale);
    return nsPerElement(meas, kLen);
}

} // namespace

int
main()
{
    printHostHeader(
        "Figure 4: BLAS operations, runtime per element (single core)");
    const auto& prime = ntt::defaultBenchPrime();
    Modulus m(prime.q);

    const blas::Op ops[] = {blas::Op::VectorAdd, blas::Op::VectorSub,
                            blas::Op::VectorMul, blas::Op::Axpy};
    auto tiers = availableTiers();

    TextTable table("Measured ns/element (length 1024)");
    std::vector<std::string> header = {"operation"};
    for (Tier t : tiers)
        header.push_back(tierName(t));
    table.setHeader(header);

    // measured[tier][op]
    std::vector<std::vector<double>> measured(
        tiers.size(), std::vector<double>(4, 0.0));
    for (size_t oi = 0; oi < 4; ++oi) {
        std::vector<std::string> row = {blas::opName(ops[oi])};
        for (size_t ti = 0; ti < tiers.size(); ++ti) {
            measured[ti][oi] = measureBlas(tiers[ti], ops[oi], m, prime);
            row.push_back(formatFixed(measured[ti][oi], 2));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n");

    auto tierIndex = [&](Tier t) -> int {
        for (size_t i = 0; i < tiers.size(); ++i) {
            if (tiers[i] == t)
                return static_cast<int>(i);
        }
        return -1;
    };
    // Geomean speedup across the four ops.
    auto speedup = [&](Tier slow, Tier fast) -> double {
        int si = tierIndex(slow), fi = tierIndex(fast);
        if (si < 0 || fi < 0)
            return 0.0;
        std::vector<double> r;
        for (size_t oi = 0; oi < 4; ++oi)
            r.push_back(measured[static_cast<size_t>(si)][oi] /
                        measured[static_cast<size_t>(fi)][oi]);
        return geomean(r);
    };
    // "the slowest of our implementations" for the GMP-slowdown claim.
    auto slowestOurs = [&]() -> Tier {
        Tier worst = Tier::Scalar;
        double worst_v = 0.0;
        for (Tier t : {Tier::Scalar, Tier::Avx2}) {
            int i = tierIndex(t);
            if (i < 0)
                continue;
            double v = measured[static_cast<size_t>(i)][2]; // vmul
            if (v > worst_v) {
                worst_v = v;
                worst = t;
            }
        }
        return worst;
    }();

    TextTable claims("Aggregate speedups: paper (Fig. 4) vs measured");
    claims.setHeader({"claim", "paper", "measured"});
    claims.addRow({"AVX-512 vs AVX2 (avg of 4 ops)",
                   "2.2x (Intel) / 1.6x (AMD)",
                   formatSpeedup(speedup(Tier::Avx2, Tier::Avx512))});
    claims.addRow({"MQX vs AVX-512 (avg of 4 ops)",
                   "2.2x (Intel) / 3.2x (AMD)",
                   formatSpeedup(speedup(Tier::Avx512, Tier::MqxPisa))});
    claims.addRow({"GMP vs slowest of ours",
                   "18.4x (Intel) / 17.3x (AMD) slower",
                   formatSpeedup(speedup(Tier::Gmp, slowestOurs))});
    claims.addRow({"BigUInt vs slowest of ours", "(same band as GMP)",
                   formatSpeedup(speedup(Tier::BigInt, slowestOurs))});
    claims.print();
    return 0;
}
