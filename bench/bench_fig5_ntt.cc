/**
 * @file
 * Figure 5 regeneration: NTT runtime per butterfly (ns) on a single
 * core, for every tier the paper plots — GMP, OpenFHE(-like), scalar,
 * AVX2, AVX-512, MQX — across NTT sizes 2^10..2^18, plus the
 * paper-derived reference series for both of the paper's CPUs.
 *
 * The paper's corresponding figures are 5a (Intel Xeon 8352Y) and 5b
 * (AMD EPYC 9654). We measure on the host CPU and compare the *ratios*
 * (who wins, by what factor) against both reference tables.
 */
#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/batch_layout.h"
#include "engine/thread_pool.h"

using namespace mqx;
using namespace mqx::bench;

namespace {

/**
 * Forward + inverse pair timing for one (plan, backend, reduction,
 * fusion) configuration, in ns per op (one op = fwd + inv), with
 * PINNED iteration counts so BENCH_ntt.json is diffable across PRs
 * (the interactive figure mode keeps the paper's 100/50 protocol).
 */
double
measureFwdInvNs(Backend be, const ntt::NttPlan& plan, size_t n,
                Reduction red, StageFusion fusion, int total, int kept)
{
    auto input_u = randomResidues(n, plan.modulus().value(), 0x15a9 + n);
    ResidueVector in = ResidueVector::fromU128(input_u);
    ResidueVector mid(n), out(n), scratch(n);
    Measurement m = runProtocol(
        [&] {
            ntt::forward(plan, be, in.span(), mid.span(), scratch.span(),
                         MulAlgo::Schoolbook, red, fusion);
            ntt::inverse(plan, be, mid.span(), out.span(), scratch.span(),
                         MulAlgo::Schoolbook, red, fusion);
        },
        total, kept);
    // Min of the kept window: the mean is hostage to scheduler noise on
    // shared hosts, and the trajectory file must be comparable across
    // PRs run on different machines.
    return m.min_ns;
}

/**
 * Batch scenario: k channels' fwd+inv through the interleaved batch
 * kernels (packed layout, pack/unpack excluded from the timed region)
 * vs k per-channel radix-2 transforms — the ROADMAP item 2 measurement.
 * Returns {per_channel_ns, batch_ns} for one (backend, k, n).
 */
std::pair<double, double>
measureBatchFwdInvNs(Backend be, const ntt::NttPlan& plan, size_t n, size_t k,
                     int total, int kept)
{
    const size_t il = ntt::batchInterleave(be);
    const BatchLayout layout(n, k, il);

    std::vector<ResidueVector> lanes;
    std::vector<DConstSpan> lane_spans;
    for (size_t c = 0; c < k; ++c) {
        lanes.push_back(ResidueVector::fromU128(
            randomResidues(n, plan.modulus().value(), 0xba7c + 31 * c)));
    }
    for (auto& v : lanes)
        lane_spans.push_back(v.span());

    // Per-channel baseline: k independent fwd+inv pairs, radix-2
    // Shoup-lazy (the same wiring the batch kernels run).
    ResidueVector mid(n), out(n), scratch(n);
    Measurement per = runProtocol(
        [&] {
            for (size_t c = 0; c < k; ++c) {
                ntt::forward(plan, be, lane_spans[c], mid.span(),
                             scratch.span(), MulAlgo::Schoolbook,
                             Reduction::ShoupLazy, StageFusion::Radix2);
                ntt::inverse(plan, be, mid.span(), out.span(), scratch.span(),
                             MulAlgo::Schoolbook, Reduction::ShoupLazy,
                             StageFusion::Radix2);
            }
        },
        total, kept);

    // Interleaved path: pack once outside the timed region (batch
    // residency — the Engine reuses packed operands across stages), then
    // sweep each group of il lanes with one batched fwd+inv.
    ResidueVector packed_in(layout.totalWords()),
        packed_mid(layout.totalWords()), packed_out(layout.totalWords()),
        packed_scratch(layout.totalWords());
    batch::packLanes(layout, lane_spans.data(), k, packed_in.span());
    const size_t group_words = il * n;
    Measurement bat = runProtocol(
        [&] {
            for (size_t g = 0; g < layout.groups(); ++g) {
                const size_t off = g * group_words;
                DSpan in{packed_in.span().hi + off, packed_in.span().lo + off,
                         group_words};
                DSpan gmid{packed_mid.span().hi + off,
                           packed_mid.span().lo + off, group_words};
                DSpan gout{packed_out.span().hi + off,
                           packed_out.span().lo + off, group_words};
                DSpan gscr{packed_scratch.span().hi + off,
                           packed_scratch.span().lo + off, group_words};
                ntt::forwardBatch(plan, be, il, in, gmid, gscr);
                ntt::inverseBatch(plan, be, il, gmid, gout, gscr);
            }
        },
        total, kept);
    return {per.min_ns, bat.min_ns};
}

/** Pinned per-size iteration counts (total/kept) for the JSON mode. */
void
pinnedIters(size_t n, int& total, int& kept)
{
    if (n <= 4096) {
        total = 40;
        kept = 20;
    } else if (n <= 16384) {
        total = 20;
        kept = 10;
    } else {
        total = 12;
        kept = 6;
    }
}

/**
 * --json mode: Radix2 vs Radix4 vs four-step-blocked ns/op per backend
 * x n (Shoup-lazy steady state), plus the Barrett ablation at the small
 * sizes, written as BENCH_ntt.json (or the path given after --json).
 * CI uploads this as an artifact AND the repo root carries a pinned
 * copy so the perf trajectory is diffable across PRs. Each row also
 * reports bytes_swept_per_transform (the analytic DRAM-sweep model from
 * NttPlan) so the traffic reduction is visible, not just inferred.
 */
int
runJsonMode(const char* path)
{
    const auto& prime = ntt::defaultBenchPrime();
    const std::vector<size_t> sizes = {256, 1024, 4096, 16384, 65536};
    std::vector<Backend> backends;
    for (Backend b : {Backend::Scalar, Backend::Portable, Backend::Avx2,
                      Backend::Avx512}) {
        if (backendAvailable(b))
            backends.push_back(b);
    }

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    os << "{\n  \"bench\": \"ntt\",\n";
    os << "  \"unit\": \"ns_per_op\",\n";
    os << "  \"op\": \"forward+inverse\",\n";
    os << "  \"modulus_bits\": " << Modulus(prime.q).bits() << ",\n";
    // Host metadata: which machine and build produced these numbers —
    // the trajectory file is diffed across PRs, so "what ran this" must
    // live next to the results. Brand strings come from CPUID; escape
    // the two characters that could break the JSON string.
    std::string cpu_brand = hostCpuFeatures().brand;
    std::string cpu_escaped;
    for (char ch : cpu_brand) {
        if (ch == '"' || ch == '\\')
            cpu_escaped += '\\';
        cpu_escaped += ch;
    }
    os << "  \"cpu\": \"" << cpu_escaped << "\",\n";
    os << "  \"threads\": " << engine::defaultThreadCount() << ",\n";
    os << "  \"compiled_backends\": [\"Scalar\", \"Portable\"";
#if MQX_BUILD_AVX2
    os << ", \"AVX2\"";
#endif
#if MQX_BUILD_AVX512
    os << ", \"AVX-512\", \"MQX\"";
#endif
    os << "],\n";
    os << "  \"results\": [\n";

    Backend best = bestBackend();
    // Headline: the strongest radix2 -> min(radix4, blocked) speedup at
    // n = 65536 across backends, and which backend achieved it. On
    // hosts whose LLC swallows the 65536 working set the emulated-SIMD
    // tiers stay compute-bound and show little; the scalar tier (cheap
    // native-128-bit butterflies, so bandwidth-bound — the paper's CPU
    // bottleneck) is where the sweep reduction lands in full.
    double best_fused_65536 = 0.0; // max over backends
    Backend best_fused_backend = best;
    double fastest_fused_65536 = 0.0; // on bestBackend()
    bool first = true;
    for (size_t n : sizes) {
        // Plans are backend-independent; build each size's pair once
        // (blocked-plan construction precomputes 2n fixup Shoup
        // quotients — one BigUInt division each — so rebuilding per
        // backend would dominate the smoke runtime). Force-direct plan
        // for the Radix2/Radix4 A/B; blocked plan at the sizes where
        // the four-step decomposition pays (forced below the default
        // threshold at 16384 so the crossover is visible).
        ntt::NttPlan direct(prime, n, /*l2_budget=*/0);
        std::unique_ptr<ntt::NttPlan> blocked;
        if (n >= 16384)
            blocked =
                std::make_unique<ntt::NttPlan>(prime, n, /*l2_budget=*/1024);
        int total = 0, kept = 0;
        pinnedIters(n, total, kept);
        for (Backend be : backends) {
            double r2 = measureFwdInvNs(be, direct, n, Reduction::ShoupLazy,
                                        StageFusion::Radix2, total, kept);
            double r4 = measureFwdInvNs(be, direct, n, Reduction::ShoupLazy,
                                        StageFusion::Radix4, total, kept);
            double blocked_ns = 0.0;
            size_t blocked_swept = 0;
            if (blocked) {
                blocked_ns =
                    measureFwdInvNs(be, *blocked, n, Reduction::ShoupLazy,
                                    StageFusion::Radix4, total, kept);
                blocked_swept =
                    blocked->bytesSweptPerTransform(StageFusion::Radix4);
            }
            double barrett = 0.0;
            if (n <= 4096) {
                barrett =
                    measureFwdInvNs(be, direct, n, Reduction::Barrett,
                                    StageFusion::Radix2, total / 2 + 1,
                                    kept / 2 + 1);
            }
            double fused_speedup =
                r4 > 0.0 ? r2 / (blocked_ns > 0.0 ? std::min(r4, blocked_ns)
                                                  : r4)
                         : 0.0;
            if (n == 65536) {
                if (be == best)
                    fastest_fused_65536 = fused_speedup;
                if (fused_speedup > best_fused_65536) {
                    best_fused_65536 = fused_speedup;
                    best_fused_backend = be;
                }
            }
            if (!first)
                os << ",\n";
            first = false;
            os << "    {\"backend\": \"" << backendName(be)
               << "\", \"n\": " << n
               << ", \"radix2_ns\": " << formatFixed(r2, 1)
               << ", \"radix4_ns\": " << formatFixed(r4, 1)
               << ", \"blocked_ns\": " << formatFixed(blocked_ns, 1)
               << ", \"barrett_ns\": " << formatFixed(barrett, 1)
               << ", \"fused_speedup\": " << formatFixed(fused_speedup, 3)
               // Per single transform (the ns fields are per fwd+inv
               // PAIR — two transforms).
               << ", \"bytes_swept_per_transform\": {\"radix2\": "
               << direct.bytesSweptPerTransform(StageFusion::Radix2)
               << ", \"radix4\": "
               << direct.bytesSweptPerTransform(StageFusion::Radix4)
               << ", \"blocked\": " << blocked_swept
               << "}, \"twiddle_bytes\": " << direct.twiddleBytes() << "}";
            std::fprintf(stderr,
                         "  %-10s n=%6zu radix2=%.0fns radix4=%.0fns "
                         "blocked=%.0fns (%.2fx)\n",
                         backendName(be).c_str(), n, r2, r4, blocked_ns,
                         fused_speedup);
        }
    }
    os << "\n  ],\n";

    // Batch scenario (ROADMAP item 2): k channels swept by the
    // interleaved kernels vs k per-channel transforms, at the FHE-core
    // size n = 4096. effective_gbps counts useful lane bytes only
    // (padding sweeps are the batch path's own overhead), and the DRAM
    // floor is the paper's Fig. 5a machine — roofline context for the
    // bytes-swept accounting.
    os << "  \"batch\": [\n";
    const size_t batch_n = 4096;
    ntt::NttPlan batch_plan(prime, batch_n, /*l2_budget=*/0);
    const size_t batch_swept =
        batch_plan.bytesSweptPerTransform(StageFusion::Radix2);
    double batch_speedup_k8 = 0.0;
    Backend batch_best_backend = best;
    first = true;
    for (Backend be : backends) {
        const size_t il = ntt::batchInterleave(be);
        for (size_t k : {size_t{4}, size_t{8}, size_t{16}}) {
            int total = 0, kept = 0;
            pinnedIters(batch_n, total, kept);
            auto [per_ns, bat_ns] = measureBatchFwdInvNs(
                be, batch_plan, batch_n, k, total, kept);
            const double speedup = bat_ns > 0.0 ? per_ns / bat_ns : 0.0;
            // One op = k fwd+inv pairs = 2k transforms' worth of sweeps.
            const double bytes =
                2.0 * static_cast<double>(k) *
                static_cast<double>(batch_swept);
            const double gbps = bat_ns > 0.0 ? bytes / bat_ns : 0.0;
            const double floor_ns = sol::dramFloorNs(
                static_cast<size_t>(bytes), sol::intelXeon8352Y());
            if (k == 8 &&
                (be == Backend::Avx2 || be == Backend::Avx512) &&
                speedup > batch_speedup_k8) {
                batch_speedup_k8 = speedup;
                batch_best_backend = be;
            }
            if (!first)
                os << ",\n";
            first = false;
            os << "    {\"backend\": \"" << backendName(be)
               << "\", \"n\": " << batch_n << ", \"k\": " << k
               << ", \"il\": " << il
               << ", \"per_channel_ns\": " << formatFixed(per_ns, 1)
               << ", \"batch_ns\": " << formatFixed(bat_ns, 1)
               << ", \"batch_speedup\": " << formatFixed(speedup, 3)
               << ", \"effective_gbps\": " << formatFixed(gbps, 2)
               << ", \"bytes_swept\": "
               << static_cast<size_t>(bytes)
               << ", \"dram_floor_ns_8352y\": " << formatFixed(floor_ns, 1)
               << "}";
            std::fprintf(stderr,
                         "  batch %-10s n=%zu k=%2zu il=%zu per=%.0fns "
                         "batch=%.0fns (%.2fx, %.1f GB/s)\n",
                         backendName(be).c_str(), batch_n, k, il, per_ns,
                         bat_ns, speedup, gbps);
        }
    }
    os << "\n  ],\n";
    os << "  \"batch_speedup_k8_n4096\": " << formatFixed(batch_speedup_k8, 3)
       << ",\n";
    os << "  \"batch_backend\": \"" << backendName(batch_best_backend)
       << "\",\n";
    os << "  \"iters\": \"pinned (40/20 <=4096, 20/10 <=16384, 12/6 above), "
          "min of kept window\",\n";
    os << "  \"fastest_backend\": \"" << backendName(best) << "\",\n";
    os << "  \"fastest_backend_speedup_n65536\": "
       << formatFixed(fastest_fused_65536, 3) << ",\n";
    os << "  \"best_fusion_backend\": \"" << backendName(best_fused_backend)
       << "\",\n";
    os << "  \"best_fwdinv_speedup_n65536\": "
       << formatFixed(best_fused_65536, 3) << "\n}\n";
    std::printf("wrote %s (best fused/blocked speedup at n=65536: %.2fx on "
                "%s; fastest backend %s at %.2fx)\n",
                path, best_fused_65536,
                backendName(best_fused_backend).c_str(),
                backendName(best).c_str(), fastest_fused_65536);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            const char* path =
                i + 1 < argc ? argv[i + 1] : "BENCH_ntt.json";
            return runJsonMode(path);
        }
    }
    printHostHeader("Figure 5: NTT runtime per butterfly (single core)");
    const auto& prime = ntt::defaultBenchPrime();
    std::printf("modulus  : %s (%d bits, 2-adicity %d)\n\n",
                toHexString(prime.q).c_str(), prime.bits, prime.two_adicity);

    const auto sizes = sol::paperNttSizes();
    auto tiers = availableTiers();

    TextTable table("Measured ns/butterfly (host CPU)");
    std::vector<std::string> header = {"n"};
    for (Tier t : tiers)
        header.push_back(tierName(t));
    table.setHeader(header);

    std::vector<std::vector<double>> measured(
        tiers.size(), std::vector<double>(sizes.size(), 0.0));
    for (size_t si = 0; si < sizes.size(); ++si) {
        size_t n = sizes[si];
        std::vector<std::string> row = {std::to_string(n)};
        for (size_t ti = 0; ti < tiers.size(); ++ti) {
            double ns = measureNtt(tiers[ti], prime, n);
            measured[ti][si] = ns;
            row.push_back(formatFixed(ns, 1));
        }
        table.addRow(row);
        std::fprintf(stderr, "  measured n=%zu\n", n);
    }
    table.print();
    std::printf("\n");

    // Paper reference series (ratio-derived; see sol/reference_data.cc).
    for (const char* cpu : {"EPYC 9654 (Fig. 5b)", "Xeon 8352Y (Fig. 5a)"}) {
        bool epyc = cpu[0] == 'E';
        TextTable ref(std::string("Paper-derived reference ns/butterfly, ") +
                      cpu);
        std::vector<std::string> h = {"n"};
        for (const auto& tier : sol::paperTiers())
            h.push_back(tier);
        ref.setHeader(h);
        for (size_t n : sizes) {
            std::vector<std::string> row = {std::to_string(n)};
            for (const auto& tier : sol::paperTiers()) {
                const auto& series = epyc ? sol::paperEpycSeries(tier)
                                          : sol::paperXeonSeries(tier);
                row.push_back(formatFixed(series.at(n), 1));
            }
            ref.addRow(row);
        }
        ref.print();
        std::printf("\n");
    }

    // Headline ratios: paper claim vs measured (geomean across sizes).
    auto tierIndex = [&](Tier t) -> int {
        for (size_t i = 0; i < tiers.size(); ++i) {
            if (tiers[i] == t)
                return static_cast<int>(i);
        }
        return -1;
    };
    auto ratioOf = [&](Tier slow, Tier fast) -> double {
        int si = tierIndex(slow), fi = tierIndex(fast);
        if (si < 0 || fi < 0)
            return 0.0;
        std::vector<double> r;
        for (size_t k = 0; k < sizes.size(); ++k)
            r.push_back(measured[static_cast<size_t>(si)][k] /
                        measured[static_cast<size_t>(fi)][k]);
        return geomean(r);
    };

    TextTable claims("Headline speedups: paper claim vs measured (host)");
    claims.setHeader({"claim", "paper", "measured"});
    claims.addRow({"Scalar vs OpenFHE(-like)", "11x (AMD) / 13.5x (Intel)",
                   formatSpeedup(ratioOf(Tier::OpenFheLike, Tier::Scalar))});
    claims.addRow({"AVX2 vs Scalar", "1.2x (AMD) / ~1x (Intel)",
                   formatSpeedup(ratioOf(Tier::Scalar, Tier::Avx2))});
    claims.addRow({"AVX-512 vs AVX2", "1.7x (AMD) / 2.4x vs scalar (Intel)",
                   formatSpeedup(ratioOf(Tier::Avx2, Tier::Avx512))});
    claims.addRow({"MQX vs AVX-512", "3.7x (AMD) / 2.1x (Intel)",
                   formatSpeedup(ratioOf(Tier::Avx512, Tier::MqxPisa))});
    claims.addRow({"AVX-512 vs GMP", "53x (Intel)",
                   formatSpeedup(ratioOf(Tier::Gmp, Tier::Avx512))});
    claims.addRow({"AVX-512 vs BigUInt (GMP substitute)", "(same band)",
                   formatSpeedup(ratioOf(Tier::BigInt, Tier::Avx512))});
    claims.addRow({"MQX vs OpenFHE(-like)", "86.5x (AMD) / 66.9x (Intel)",
                   formatSpeedup(ratioOf(Tier::OpenFheLike, Tier::MqxPisa))});
    claims.print();
    return 0;
}
