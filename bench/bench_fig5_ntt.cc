/**
 * @file
 * Figure 5 regeneration: NTT runtime per butterfly (ns) on a single
 * core, for every tier the paper plots — GMP, OpenFHE(-like), scalar,
 * AVX2, AVX-512, MQX — across NTT sizes 2^10..2^18, plus the
 * paper-derived reference series for both of the paper's CPUs.
 *
 * The paper's corresponding figures are 5a (Intel Xeon 8352Y) and 5b
 * (AMD EPYC 9654). We measure on the host CPU and compare the *ratios*
 * (who wins, by what factor) against both reference tables.
 */
#include "bench_common.h"

#include <cstring>
#include <fstream>

using namespace mqx;
using namespace mqx::bench;

namespace {

/**
 * Forward + inverse pair timing for one (backend, n, reduction), in
 * ns per op (one op = fwd + inv). The same 100/50 protocol as the
 * figure run, scaled to stay interactive in the CI smoke leg.
 */
double
measureFwdInvNs(Backend be, const ntt::NttPlan& plan, size_t n,
                Reduction red, double scale)
{
    auto input_u = randomResidues(n, plan.modulus().value(), 0x15a9 + n);
    ResidueVector in = ResidueVector::fromU128(input_u);
    ResidueVector mid(n), out(n), scratch(n);
    Measurement m = runNttProtocol(
        [&] {
            ntt::forward(plan, be, in.span(), mid.span(), scratch.span(),
                         MulAlgo::Schoolbook, red);
            ntt::inverse(plan, be, mid.span(), out.span(), scratch.span(),
                         MulAlgo::Schoolbook, red);
        },
        scale);
    return m.mean_ns;
}

/**
 * --json mode: Barrett vs Shoup ns/op per backend x n, written as
 * BENCH_ntt.json (or the path given after --json). CI uploads this as
 * an artifact so the reduction-strategy perf trajectory is tracked
 * per-commit.
 */
int
runJsonMode(const char* path)
{
    const auto& prime = ntt::defaultBenchPrime();
    const std::vector<size_t> sizes = {256, 1024, 4096};
    std::vector<Backend> backends;
    for (Backend b : {Backend::Scalar, Backend::Portable, Backend::Avx2,
                      Backend::Avx512}) {
        if (backendAvailable(b))
            backends.push_back(b);
    }

    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    os << "{\n  \"bench\": \"ntt\",\n";
    os << "  \"unit\": \"ns_per_op\",\n";
    os << "  \"op\": \"forward+inverse\",\n";
    os << "  \"modulus_bits\": " << Modulus(prime.q).bits() << ",\n";
    os << "  \"results\": [\n";

    Backend best = bestBackend();
    double best_speedup_4096 = 0.0;
    bool first = true;
    for (Backend be : backends) {
        for (size_t n : sizes) {
            ntt::NttPlan plan(prime, n);
            double scale = n >= 4096 ? 0.25 : 0.5;
            double barrett =
                measureFwdInvNs(be, plan, n, Reduction::Barrett, scale);
            double shoup =
                measureFwdInvNs(be, plan, n, Reduction::ShoupLazy, scale);
            double speedup = shoup > 0.0 ? barrett / shoup : 0.0;
            if (be == best && n == 4096)
                best_speedup_4096 = speedup;
            if (!first)
                os << ",\n";
            first = false;
            os << "    {\"backend\": \"" << backendName(be)
               << "\", \"n\": " << n << ", \"barrett_ns\": "
               << formatFixed(barrett, 1) << ", \"shoup_ns\": "
               << formatFixed(shoup, 1) << ", \"speedup\": "
               << formatFixed(speedup, 3) << ", \"twiddle_bytes\": "
               << plan.twiddleBytes() << ", \"twiddle_bytes_stretched\": "
               << plan.twiddleBytesStretched() << "}";
            std::fprintf(stderr,
                         "  %-10s n=%5zu barrett=%.0fns shoup=%.0fns "
                         "(%.2fx)\n",
                         backendName(be).c_str(), n, barrett, shoup,
                         speedup);
        }
    }
    os << "\n  ],\n";
    os << "  \"best_backend\": \"" << backendName(best) << "\",\n";
    os << "  \"best_speedup_n4096\": " << formatFixed(best_speedup_4096, 3)
       << "\n}\n";
    std::printf("wrote %s (best backend %s, n=4096 fwd+inv speedup %.2fx)\n",
                path, backendName(best).c_str(), best_speedup_4096);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            const char* path =
                i + 1 < argc ? argv[i + 1] : "BENCH_ntt.json";
            return runJsonMode(path);
        }
    }
    printHostHeader("Figure 5: NTT runtime per butterfly (single core)");
    const auto& prime = ntt::defaultBenchPrime();
    std::printf("modulus  : %s (%d bits, 2-adicity %d)\n\n",
                toHexString(prime.q).c_str(), prime.bits, prime.two_adicity);

    const auto sizes = sol::paperNttSizes();
    auto tiers = availableTiers();

    TextTable table("Measured ns/butterfly (host CPU)");
    std::vector<std::string> header = {"n"};
    for (Tier t : tiers)
        header.push_back(tierName(t));
    table.setHeader(header);

    std::vector<std::vector<double>> measured(
        tiers.size(), std::vector<double>(sizes.size(), 0.0));
    for (size_t si = 0; si < sizes.size(); ++si) {
        size_t n = sizes[si];
        std::vector<std::string> row = {std::to_string(n)};
        for (size_t ti = 0; ti < tiers.size(); ++ti) {
            double ns = measureNtt(tiers[ti], prime, n);
            measured[ti][si] = ns;
            row.push_back(formatFixed(ns, 1));
        }
        table.addRow(row);
        std::fprintf(stderr, "  measured n=%zu\n", n);
    }
    table.print();
    std::printf("\n");

    // Paper reference series (ratio-derived; see sol/reference_data.cc).
    for (const char* cpu : {"EPYC 9654 (Fig. 5b)", "Xeon 8352Y (Fig. 5a)"}) {
        bool epyc = cpu[0] == 'E';
        TextTable ref(std::string("Paper-derived reference ns/butterfly, ") +
                      cpu);
        std::vector<std::string> h = {"n"};
        for (const auto& tier : sol::paperTiers())
            h.push_back(tier);
        ref.setHeader(h);
        for (size_t n : sizes) {
            std::vector<std::string> row = {std::to_string(n)};
            for (const auto& tier : sol::paperTiers()) {
                const auto& series = epyc ? sol::paperEpycSeries(tier)
                                          : sol::paperXeonSeries(tier);
                row.push_back(formatFixed(series.at(n), 1));
            }
            ref.addRow(row);
        }
        ref.print();
        std::printf("\n");
    }

    // Headline ratios: paper claim vs measured (geomean across sizes).
    auto tierIndex = [&](Tier t) -> int {
        for (size_t i = 0; i < tiers.size(); ++i) {
            if (tiers[i] == t)
                return static_cast<int>(i);
        }
        return -1;
    };
    auto ratioOf = [&](Tier slow, Tier fast) -> double {
        int si = tierIndex(slow), fi = tierIndex(fast);
        if (si < 0 || fi < 0)
            return 0.0;
        std::vector<double> r;
        for (size_t k = 0; k < sizes.size(); ++k)
            r.push_back(measured[static_cast<size_t>(si)][k] /
                        measured[static_cast<size_t>(fi)][k]);
        return geomean(r);
    };

    TextTable claims("Headline speedups: paper claim vs measured (host)");
    claims.setHeader({"claim", "paper", "measured"});
    claims.addRow({"Scalar vs OpenFHE(-like)", "11x (AMD) / 13.5x (Intel)",
                   formatSpeedup(ratioOf(Tier::OpenFheLike, Tier::Scalar))});
    claims.addRow({"AVX2 vs Scalar", "1.2x (AMD) / ~1x (Intel)",
                   formatSpeedup(ratioOf(Tier::Scalar, Tier::Avx2))});
    claims.addRow({"AVX-512 vs AVX2", "1.7x (AMD) / 2.4x vs scalar (Intel)",
                   formatSpeedup(ratioOf(Tier::Avx2, Tier::Avx512))});
    claims.addRow({"MQX vs AVX-512", "3.7x (AMD) / 2.1x (Intel)",
                   formatSpeedup(ratioOf(Tier::Avx512, Tier::MqxPisa))});
    claims.addRow({"AVX-512 vs GMP", "53x (Intel)",
                   formatSpeedup(ratioOf(Tier::Gmp, Tier::Avx512))});
    claims.addRow({"AVX-512 vs BigUInt (GMP substitute)", "(same band)",
                   formatSpeedup(ratioOf(Tier::BigInt, Tier::Avx512))});
    claims.addRow({"MQX vs OpenFHE(-like)", "86.5x (AMD) / 66.9x (Intel)",
                   formatSpeedup(ratioOf(Tier::OpenFheLike, Tier::MqxPisa))});
    claims.print();
    return 0;
}
