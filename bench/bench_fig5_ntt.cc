/**
 * @file
 * Figure 5 regeneration: NTT runtime per butterfly (ns) on a single
 * core, for every tier the paper plots — GMP, OpenFHE(-like), scalar,
 * AVX2, AVX-512, MQX — across NTT sizes 2^10..2^18, plus the
 * paper-derived reference series for both of the paper's CPUs.
 *
 * The paper's corresponding figures are 5a (Intel Xeon 8352Y) and 5b
 * (AMD EPYC 9654). We measure on the host CPU and compare the *ratios*
 * (who wins, by what factor) against both reference tables.
 */
#include "bench_common.h"

using namespace mqx;
using namespace mqx::bench;

int
main()
{
    printHostHeader("Figure 5: NTT runtime per butterfly (single core)");
    const auto& prime = ntt::defaultBenchPrime();
    std::printf("modulus  : %s (%d bits, 2-adicity %d)\n\n",
                toHexString(prime.q).c_str(), prime.bits, prime.two_adicity);

    const auto sizes = sol::paperNttSizes();
    auto tiers = availableTiers();

    TextTable table("Measured ns/butterfly (host CPU)");
    std::vector<std::string> header = {"n"};
    for (Tier t : tiers)
        header.push_back(tierName(t));
    table.setHeader(header);

    std::vector<std::vector<double>> measured(
        tiers.size(), std::vector<double>(sizes.size(), 0.0));
    for (size_t si = 0; si < sizes.size(); ++si) {
        size_t n = sizes[si];
        std::vector<std::string> row = {std::to_string(n)};
        for (size_t ti = 0; ti < tiers.size(); ++ti) {
            double ns = measureNtt(tiers[ti], prime, n);
            measured[ti][si] = ns;
            row.push_back(formatFixed(ns, 1));
        }
        table.addRow(row);
        std::fprintf(stderr, "  measured n=%zu\n", n);
    }
    table.print();
    std::printf("\n");

    // Paper reference series (ratio-derived; see sol/reference_data.cc).
    for (const char* cpu : {"EPYC 9654 (Fig. 5b)", "Xeon 8352Y (Fig. 5a)"}) {
        bool epyc = cpu[0] == 'E';
        TextTable ref(std::string("Paper-derived reference ns/butterfly, ") +
                      cpu);
        std::vector<std::string> h = {"n"};
        for (const auto& tier : sol::paperTiers())
            h.push_back(tier);
        ref.setHeader(h);
        for (size_t n : sizes) {
            std::vector<std::string> row = {std::to_string(n)};
            for (const auto& tier : sol::paperTiers()) {
                const auto& series = epyc ? sol::paperEpycSeries(tier)
                                          : sol::paperXeonSeries(tier);
                row.push_back(formatFixed(series.at(n), 1));
            }
            ref.addRow(row);
        }
        ref.print();
        std::printf("\n");
    }

    // Headline ratios: paper claim vs measured (geomean across sizes).
    auto tierIndex = [&](Tier t) -> int {
        for (size_t i = 0; i < tiers.size(); ++i) {
            if (tiers[i] == t)
                return static_cast<int>(i);
        }
        return -1;
    };
    auto ratioOf = [&](Tier slow, Tier fast) -> double {
        int si = tierIndex(slow), fi = tierIndex(fast);
        if (si < 0 || fi < 0)
            return 0.0;
        std::vector<double> r;
        for (size_t k = 0; k < sizes.size(); ++k)
            r.push_back(measured[static_cast<size_t>(si)][k] /
                        measured[static_cast<size_t>(fi)][k]);
        return geomean(r);
    };

    TextTable claims("Headline speedups: paper claim vs measured (host)");
    claims.setHeader({"claim", "paper", "measured"});
    claims.addRow({"Scalar vs OpenFHE(-like)", "11x (AMD) / 13.5x (Intel)",
                   formatSpeedup(ratioOf(Tier::OpenFheLike, Tier::Scalar))});
    claims.addRow({"AVX2 vs Scalar", "1.2x (AMD) / ~1x (Intel)",
                   formatSpeedup(ratioOf(Tier::Scalar, Tier::Avx2))});
    claims.addRow({"AVX-512 vs AVX2", "1.7x (AMD) / 2.4x vs scalar (Intel)",
                   formatSpeedup(ratioOf(Tier::Avx2, Tier::Avx512))});
    claims.addRow({"MQX vs AVX-512", "3.7x (AMD) / 2.1x (Intel)",
                   formatSpeedup(ratioOf(Tier::Avx512, Tier::MqxPisa))});
    claims.addRow({"AVX-512 vs GMP", "53x (Intel)",
                   formatSpeedup(ratioOf(Tier::Gmp, Tier::Avx512))});
    claims.addRow({"AVX-512 vs BigUInt (GMP substitute)", "(same band)",
                   formatSpeedup(ratioOf(Tier::BigInt, Tier::Avx512))});
    claims.addRow({"MQX vs OpenFHE(-like)", "86.5x (AMD) / 66.9x (Intel)",
                   formatSpeedup(ratioOf(Tier::OpenFheLike, Tier::MqxPisa))});
    claims.print();
    return 0;
}
