/**
 * @file
 * Section 5.5 regeneration: schoolbook vs Karatsuba double-word
 * multiplication across NTT variants. The paper finds schoolbook wins
 * on CPUs in almost all variants (average 1.1x where it wins) — the
 * opposite of the GPU result it cites (Karatsuba 2.1x faster on an
 * RTX 4090), because trading one multiply for several additions only
 * pays off when multiplies are disproportionately expensive.
 */
#include "bench_common.h"

using namespace mqx;
using namespace mqx::bench;

namespace {

double
measureNttAlgo(Backend be, const ntt::NttPrime& prime, size_t n, MulAlgo algo)
{
    ntt::NttPlan plan(prime, n, /*l2_budget=*/0); // direct: 5.5 ablation
    auto input_u = randomResidues(n, prime.q, 0x5e5);
    ResidueVector in = ResidueVector::fromU128(input_u);
    ResidueVector out(n), scratch(n);
    // Section 5.5 compares the product algorithms inside the BARRETT
    // butterflies (three full products each); pin the reduction so the
    // Shoup-lazy default (one full product) doesn't dilute the ablation.
    Measurement m = runNttProtocol(
        [&] {
            ntt::forward(plan, be, in.span(), out.span(), scratch.span(),
                         algo, Reduction::Barrett);
        },
        nttProtocolScale(Tier::Scalar, n));
    return nsPerButterfly(m, n);
}

} // namespace

int
main()
{
    printHostHeader(
        "Section 5.5: schoolbook vs Karatsuba multiplication in the NTT");
    const auto& prime = ntt::defaultBenchPrime();
    const size_t sizes[] = {1u << 10, 1u << 12, 1u << 14};

    TextTable table("ns/butterfly by multiplication algorithm");
    table.setHeader({"backend", "n", "schoolbook", "Karatsuba",
                     "school vs karat"});

    std::vector<Backend> backends = {Backend::Scalar};
    if (backendAvailable(Backend::Avx2))
        backends.push_back(Backend::Avx2);
    if (backendAvailable(Backend::Avx512))
        backends.push_back(Backend::Avx512);
    if (backendAvailable(Backend::MqxPisa))
        backends.push_back(Backend::MqxPisa);

    std::vector<double> wins;
    for (Backend be : backends) {
        for (size_t n : sizes) {
            double school = measureNttAlgo(be, prime, n, MulAlgo::Schoolbook);
            double karat = measureNttAlgo(be, prime, n, MulAlgo::Karatsuba);
            table.addRow({backendName(be), std::to_string(n),
                          formatFixed(school, 1), formatFixed(karat, 1),
                          formatSpeedup(karat / school)});
            wins.push_back(karat / school);
        }
        std::fprintf(stderr, "  %s done\n", backendName(be).c_str());
    }
    table.print();
    std::printf("\nGeomean Karatsuba/schoolbook ratio: %s "
                "[paper: schoolbook ~1.1x faster on CPUs; Karatsuba 2.1x "
                "faster on the RTX 4090 GPU]\n",
                formatSpeedup(geomean(wins)).c_str());
    return 0;
}
