/**
 * @file
 * Table 6 regeneration: PISA validation. For each Table-5 pair, run the
 * full NTT (size 2^14, "the average among the NTT sizes targeted in this
 * paper") with the target instruction and with its proxy substituted,
 * and report the Eq.-12 relative error. The paper's measured errors are
 * printed for comparison.
 */
#include "bench_common.h"

#include "pisa/pisa.h"

using namespace mqx;
using namespace mqx::bench;

int
main()
{
    printHostHeader("Table 6: relative error of PISA-projected runtime");
    const auto& prime = ntt::defaultBenchPrime();
    const size_t n = 1u << 14; // Section 5.2

    ntt::NttPlan plan(prime, n, /*l2_budget=*/0); // direct: Table 6 mix
    auto input_u = randomResidues(n, prime.q, 0x7ab1e6);
    ResidueVector in = ResidueVector::fromU128(input_u);
    ResidueVector out(n), scratch(n);

    struct PaperRow
    {
        pisa::ValidationPair pair;
        const char* intel;
        const char* amd;
    };
    const PaperRow rows[] = {
        {pisa::ValidationPair::Avx2WideningMul, "3.23%", "2.64%"},
        {pisa::ValidationPair::Avx512MaskAdd, "-7.68%", "5.25%"},
        {pisa::ValidationPair::Avx512MaskSub, "-4.30%", "1.27%"},
    };

    TextTable table("Relative error (Eq. 12) of proxy vs target, NTT 2^14");
    table.setHeader({"target instruction", "proxy instruction",
                     "measured eps", "paper Intel", "paper AMD"});

    for (const auto& row : rows) {
        auto mapping = pisa::validationMapping(row.pair);
        bool avx512_pair = row.pair != pisa::ValidationPair::Avx2WideningMul;
        bool available = avx512_pair ? backendAvailable(Backend::Avx512)
                                     : backendAvailable(Backend::Avx2);
        if (!available) {
            table.addRow({mapping.target, mapping.proxy, "(ISA unavailable)",
                          row.intel, row.amd});
            continue;
        }
        Measurement target = runNttProtocol([&] {
            pisa::runValidationNtt(row.pair, false, plan, in.span(),
                                   out.span(), scratch.span());
        });
        Measurement proxy = runNttProtocol([&] {
            pisa::runValidationNtt(row.pair, true, plan, in.span(),
                                   out.span(), scratch.span());
        });
        double eps = pisa::relativeErrorPct(target.mean_ns, proxy.mean_ns);
        table.addRow({mapping.target, mapping.proxy,
                      formatFixed(eps, 2) + "%", row.intel, row.amd});
        std::fprintf(stderr, "  %s done\n", mapping.target.c_str());
    }
    table.print();
    std::printf("\nPISA passes its sanity check if |eps| stays within a "
                "single-digit percentage\n(paper: all six cases below "
                "8%%; negative = conservative projection).\n");
    return 0;
}
